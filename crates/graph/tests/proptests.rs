//! Property-based tests for graph substrate invariants.

use gnnmark_graph::datasets::{barabasi_albert, proteins_like_sized, sst_like};
use gnnmark_graph::kwl::{kwl_transform, KwlConnectivity};
use gnnmark_graph::sampler::{MinibatchSampler, RandomWalkSampler};
use gnnmark_graph::{BatchedGraph, Graph, TreeBatch};
use gnnmark_tensor::{IntTensor, Tensor};
use proptest::prelude::*;
use rand::SeedableRng;

fn random_graph(n: usize, seed: u64) -> Graph {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let edges = barabasi_albert(n, 2, &mut rng);
    Graph::from_undirected_edges(n, &edges, Tensor::ones(&[n, 3])).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn normalized_adjacency_is_symmetric_and_bounded(n in 4usize..40, seed in any::<u64>()) {
        let g = random_graph(n, seed);
        let a = g.normalized_adjacency().unwrap().to_dense();
        for i in 0..n {
            for j in 0..n {
                let (x, y) = (a.get(&[i, j]), a.get(&[j, i]));
                prop_assert!((x - y).abs() < 1e-5, "asymmetric at ({i},{j})");
                prop_assert!((0.0..=1.0 + 1e-6).contains(&x));
            }
            prop_assert!(a.get(&[i, i]) > 0.0, "missing self-loop at {i}");
        }
    }

    #[test]
    fn mean_adjacency_rows_are_stochastic(n in 4usize..40, seed in any::<u64>()) {
        let g = random_graph(n, seed);
        let a = g.mean_adjacency().unwrap().to_dense();
        for i in 0..n {
            let s: f32 = (0..n).map(|j| a.get(&[i, j])).sum();
            // Isolated nodes have zero rows; BA graphs are connected.
            prop_assert!((s - 1.0).abs() < 1e-5, "row {i} sums to {s}");
        }
    }

    #[test]
    fn batched_graph_preserves_nodes_edges_features(
        sizes in proptest::collection::vec(2usize..10, 1..6),
        seed in any::<u64>(),
    ) {
        let graphs: Vec<Graph> = sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| random_graph(n, seed.wrapping_add(i as u64)))
            .collect();
        let batch = BatchedGraph::from_graphs(&graphs).unwrap();
        let total_nodes: usize = graphs.iter().map(Graph::num_nodes).sum();
        let total_edges: usize = graphs.iter().map(Graph::num_edges).sum();
        prop_assert_eq!(batch.graph().num_nodes(), total_nodes);
        prop_assert_eq!(batch.graph().num_edges(), total_edges);
        // Block-diagonal: no cross-graph edges.
        for i in 0..batch.num_graphs() {
            let (lo, hi) = batch.node_range(i);
            for node in lo..hi {
                for &nb in batch.graph().neighbors(node) {
                    prop_assert!((lo..hi).contains(&nb));
                }
            }
        }
    }

    #[test]
    fn minibatch_partitions_exactly(n in 1usize..200, batch in 1usize..32, seed in any::<u64>()) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut s = MinibatchSampler::new(n, batch, &mut rng).unwrap();
        let mut seen = Vec::new();
        while let Some(b) = s.next_batch() {
            prop_assert!(b.numel() <= batch);
            seen.extend_from_slice(b.as_slice());
        }
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..n as i64).collect::<Vec<_>>());
    }

    #[test]
    fn random_walk_neighborhoods_are_valid(
        n in 6usize..40,
        walks in 1usize..16,
        len in 1usize..5,
        top in 1usize..8,
        seed in any::<u64>(),
    ) {
        let g = random_graph(n, seed);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 1);
        let seeds = IntTensor::from_vec(&[3], vec![0, (n / 2) as i64, (n - 1) as i64]).unwrap();
        let hoods = RandomWalkSampler::new(walks, len, top).sample(&g, &seeds, &mut rng);
        for h in &hoods {
            prop_assert!(!h.neighbors.is_empty());
            prop_assert!(h.neighbors.len() <= top.max(1));
            let total: f32 = h.weights.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-4);
            for &nb in &h.neighbors {
                prop_assert!((0..n as i64).contains(&nb));
            }
        }
    }

    #[test]
    fn kwl_two_set_count_is_binomial(n in 3usize..12, seed in any::<u64>()) {
        let g = random_graph(n, seed);
        let ks = kwl_transform(&g, 2, KwlConnectivity::Global).unwrap();
        prop_assert_eq!(ks.num_sets(), n * (n - 1) / 2);
        // Every set vertex has the augmented feature width.
        prop_assert_eq!(ks.graph().feature_dim(), g.feature_dim() + 1);
        // Local edges are a subset of global edges.
        let local = kwl_transform(&g, 2, KwlConnectivity::Local).unwrap();
        prop_assert!(local.graph().num_edges() <= ks.graph().num_edges());
    }

    #[test]
    fn tree_batches_cover_every_node_once(trees in 1usize..6, seed in any::<u64>()) {
        let ts = sst_like(trees, 50, seed).unwrap();
        let batch = TreeBatch::from_trees(&ts).unwrap();
        let mut covered: Vec<i64> = batch
            .levels()
            .iter()
            .flat_map(|l| l.nodes.as_slice().to_vec())
            .collect();
        covered.sort_unstable();
        prop_assert_eq!(covered, (0..batch.total_nodes() as i64).collect::<Vec<_>>());
        // Children always live at strictly lower levels.
        let mut level_of = vec![usize::MAX; batch.total_nodes()];
        for (li, level) in batch.levels().iter().enumerate() {
            for &nd in level.nodes.as_slice() {
                level_of[nd as usize] = li;
            }
        }
        for (li, level) in batch.levels().iter().enumerate() {
            for &c in level.child_ids.as_slice() {
                if c >= 0 {
                    prop_assert!(level_of[c as usize] < li);
                }
            }
        }
    }

    #[test]
    fn proteins_generator_is_deterministic_and_labeled(n in 1usize..8, seed in any::<u64>()) {
        let a = proteins_like_sized(n, 6, 12, seed).unwrap();
        let b = proteins_like_sized(n, 6, 12, seed).unwrap();
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.num_nodes(), y.num_nodes());
            prop_assert_eq!(x.num_edges(), y.num_edges());
            prop_assert_eq!(x.graph_label(), y.graph_label());
            prop_assert!(x.graph_label().is_some());
        }
    }
}
