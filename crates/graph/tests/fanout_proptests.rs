//! Property-based tests of the layer-wise fanout sampling engine.
//!
//! Four families of invariants, over random Barabási–Albert graphs and
//! random sampler configurations:
//!
//! * **Structural validity** — every block is a well-formed CSR slice:
//!   column ids in bounds, rows sorted ascending with no duplicates, no
//!   dangling source (every column referenced by the id maps exists).
//! * **Fanout bounds** — no destination row carries more sampled edges
//!   than its fanout allows (or its degree, whichever is smaller), and
//!   fanout `0` keeps the full neighborhood with unscaled weights.
//! * **Determinism** — the sampled structure is a pure function of
//!   (sampler seed, batch id, level, node): resampling reproduces it
//!   bit-for-bit, and a sampler rebuilt from the same seed agrees.
//! * **Thread-count invariance** — sampling is host-thread independent:
//!   the same batch drawn under 1 and 4 tensor-engine threads is
//!   identical (the per-node RNG never observes global iteration state).

use gnnmark_graph::dataset::{GraphDataset, InMemoryDataset};
use gnnmark_graph::datasets::barabasi_albert;
use gnnmark_graph::{FanoutSampler, Graph, SampledBatch};
use gnnmark_tensor::Tensor;
use proptest::prelude::*;
use rand::SeedableRng;

fn random_dataset(n: usize, seed: u64) -> InMemoryDataset {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let edges = barabasi_albert(n, 2, &mut rng);
    let g = Graph::from_undirected_edges(n, &edges, Tensor::ones(&[n, 3])).unwrap();
    InMemoryDataset::new("ba", g).unwrap()
}

fn seed_set(n: usize, count: usize) -> Vec<i64> {
    (0..count).map(|i| ((i * 7 + 1) % n) as i64).collect()
}

/// Flattens a batch into a comparable structure: per block, the local CSR
/// triplets plus both global id maps.
#[allow(clippy::type_complexity)]
fn fingerprint(b: &SampledBatch) -> Vec<(Vec<(usize, usize, u32)>, Vec<i64>, Vec<i64>)> {
    b.blocks
        .iter()
        .map(|blk| {
            let mut trips = Vec::with_capacity(blk.num_edges());
            for r in 0..blk.num_dst() {
                let (cols, vals) = blk.adj.row(r);
                for (&c, &v) in cols.iter().zip(vals) {
                    trips.push((r, c, v.to_bits()));
                }
            }
            (trips, blk.dst_nodes.clone(), blk.src_nodes.clone())
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn blocks_are_valid_csr_slices(
        n in 8usize..60,
        gseed in any::<u64>(),
        sseed in any::<u64>(),
        fanouts in proptest::collection::vec(0usize..5, 1..4),
        batch_id in any::<u64>(),
    ) {
        let ds = random_dataset(n, gseed);
        let sampler = FanoutSampler::new(&fanouts, sseed).unwrap();
        let batch = sampler.sample(ds.adjacency(), &seed_set(n, 4), batch_id).unwrap();
        prop_assert_eq!(batch.blocks.len(), fanouts.len());
        let mut edge_total = 0u64;
        for blk in &batch.blocks {
            prop_assert_eq!(blk.dst_nodes.len(), blk.num_dst());
            prop_assert_eq!(blk.src_nodes.len(), blk.num_src());
            edge_total += blk.num_edges() as u64;
            for r in 0..blk.num_dst() {
                let (cols, vals) = blk.adj.row(r);
                prop_assert_eq!(cols.len(), vals.len());
                // Sorted ascending, no duplicates, in bounds.
                for w in cols.windows(2) {
                    prop_assert!(w[0] < w[1], "row {r} not strictly sorted");
                }
                for &c in cols {
                    prop_assert!(c < blk.num_src(), "dangling column {c}");
                    // The id map resolves every referenced source.
                    prop_assert!((blk.src_nodes[c] as usize) < n);
                }
            }
            // Global ids are real nodes.
            for &d in &blk.dst_nodes {
                prop_assert!((0..n as i64).contains(&d));
            }
        }
        prop_assert_eq!(batch.edges, edge_total);
        // Chaining: each block's sources are the next block's destinations.
        for w in batch.blocks.windows(2) {
            prop_assert_eq!(&w[0].dst_nodes, &w[1].src_nodes);
        }
        prop_assert_eq!(&batch.blocks[batch.blocks.len() - 1].dst_nodes, &batch.seeds);
    }

    #[test]
    fn fanout_bounds_hold_per_row(
        n in 8usize..60,
        gseed in any::<u64>(),
        sseed in any::<u64>(),
        fanouts in proptest::collection::vec(0usize..5, 1..4),
    ) {
        let ds = random_dataset(n, gseed);
        let sampler = FanoutSampler::new(&fanouts, sseed).unwrap();
        let batch = sampler.sample(ds.adjacency(), &seed_set(n, 3), 9).unwrap();
        for (blk, &fanout) in batch.blocks.iter().zip(&fanouts) {
            for r in 0..blk.num_dst() {
                let deg = ds.adjacency().degree(blk.dst_nodes[r] as usize).unwrap();
                let nnz = blk.adj.row_nnz(r);
                if fanout == 0 {
                    prop_assert_eq!(nnz, deg, "unlimited fanout keeps the row");
                } else {
                    prop_assert!(nnz <= fanout.min(deg), "row {r}: {nnz} > {}", fanout.min(deg));
                }
            }
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed_and_batch(
        n in 8usize..60,
        gseed in any::<u64>(),
        sseed in any::<u64>(),
        batch_id in any::<u64>(),
    ) {
        let ds = random_dataset(n, gseed);
        let sampler = FanoutSampler::new(&[3, 2], sseed).unwrap();
        let seeds = seed_set(n, 5);
        let a = sampler.sample(ds.adjacency(), &seeds, batch_id).unwrap();
        let b = sampler.sample(ds.adjacency(), &seeds, batch_id).unwrap();
        prop_assert_eq!(fingerprint(&a), fingerprint(&b));
        // A sampler rebuilt from the same config agrees bit-for-bit.
        let rebuilt = FanoutSampler::new(&[3, 2], sseed).unwrap();
        let c = rebuilt.sample(ds.adjacency(), &seeds, batch_id).unwrap();
        prop_assert_eq!(fingerprint(&a), fingerprint(&c));
    }

    #[test]
    fn sampling_is_thread_count_invariant(
        n in 8usize..48,
        gseed in any::<u64>(),
        sseed in any::<u64>(),
    ) {
        let ds = random_dataset(n, gseed);
        let sampler = FanoutSampler::new(&[2, 2], sseed).unwrap();
        let seeds = seed_set(n, 4);
        gnnmark_tensor::par::set_threads(1);
        let single = sampler.sample(ds.adjacency(), &seeds, 1).unwrap();
        gnnmark_tensor::par::set_threads(4);
        let multi = sampler.sample(ds.adjacency(), &seeds, 1).unwrap();
        gnnmark_tensor::par::set_threads(1);
        prop_assert_eq!(fingerprint(&single), fingerprint(&multi));
    }
}
