//! Layer-wise fanout neighbor sampling over CSR — the DGL/GraphSAGE
//! "blocks" construction, generalized so every workload (and any
//! [`crate::dataset::CsrSource`], in-RAM or out-of-core) can use it.
//!
//! Sampling proceeds from the output layer toward the input: the seed
//! nodes are the destinations of the last block; each level samples up to
//! `fanout` neighbors per destination, and the union of destinations and
//! sampled sources becomes the next level's destination frontier. A
//! fanout of `0` means *unlimited* (keep every neighbor), which is what
//! makes full-coverage parity with full-graph training exact: with seeds
//! `0..n` in order and unlimited fanout, every block is bit-identical to
//! the original normalized adjacency.
//!
//! Determinism: each (sampler seed, batch id, level, node) tuple seeds its
//! own RNG, so the sampled structure is a pure function of those inputs —
//! independent of iteration order, thread count, or how many batches were
//! drawn before this one.

use std::collections::HashMap;
use std::rc::Rc;

use gnnmark_tensor::{CsrMatrix, IntTensor, TensorError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::CsrSource;
use crate::Result;

/// One sampled bipartite block: a `[num_dst × num_src]` CSR slice of the
/// source adjacency, with global node ids for both sides.
///
/// When the destination ids are distinct, they form a prefix of
/// `src_nodes` (every destination also appears as a source, so self-loop
/// weights survive and SAGE-style `x_dst = x_src[..num_dst]` slicing
/// works).
#[derive(Debug, Clone)]
pub struct SampledBlock {
    /// Sampled adjacency slice, `[num_dst × num_src]`, local indices.
    pub adj: Rc<CsrMatrix>,
    /// Transpose of `adj` (for the backward pass of SpMM).
    pub adj_t: Rc<CsrMatrix>,
    /// Global ids of the destination nodes (one per row of `adj`).
    pub dst_nodes: Vec<i64>,
    /// Global ids of the source nodes (one per column of `adj`).
    pub src_nodes: Vec<i64>,
}

impl SampledBlock {
    /// Number of destination nodes (rows).
    pub fn num_dst(&self) -> usize {
        self.adj.rows()
    }

    /// Number of source nodes (columns).
    pub fn num_src(&self) -> usize {
        self.adj.cols()
    }

    /// Number of sampled edges.
    pub fn num_edges(&self) -> usize {
        self.adj.nnz()
    }
}

/// The blocks sampled for one minibatch, input side first: `blocks[0]`
/// consumes gathered input features, and the rows of the last block align
/// with `seeds`.
#[derive(Debug, Clone)]
pub struct SampledBatch {
    /// The seed (output) node ids, in caller order.
    pub seeds: Vec<i64>,
    /// One block per fanout level, input side first.
    pub blocks: Vec<SampledBlock>,
    /// Total edges sampled across all blocks.
    pub edges: u64,
}

impl SampledBatch {
    /// Global ids of the nodes whose input features must be gathered
    /// (the source side of the first block).
    pub fn input_nodes(&self) -> &[i64] {
        &self.blocks[0].src_nodes
    }

    /// [`Self::input_nodes`] as an index tensor for `gather_rows`.
    ///
    /// # Errors
    /// Propagates tensor-construction errors (cannot occur for a valid
    /// batch).
    pub fn input_index(&self) -> Result<IntTensor> {
        let ids = self.input_nodes().to_vec();
        IntTensor::from_vec(&[ids.len()], ids)
    }

    /// Total nodes across the input frontier.
    pub fn num_input_nodes(&self) -> usize {
        self.blocks[0].src_nodes.len()
    }
}

/// SplitMix64 finalizer — mixes the per-node seed tuple into an RNG seed.
fn mix(mut h: u64) -> u64 {
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

fn node_rng(seed: u64, batch_id: u64, level: usize, node: usize) -> StdRng {
    let h = mix(seed ^ mix(batch_id ^ mix((level as u64) << 32 ^ node as u64)));
    StdRng::seed_from_u64(h)
}

/// Layer-wise fanout sampler: one fanout per GNN layer, input side first
/// (`fanouts[0]` feeds the first layer). Fanout `0` keeps every neighbor.
#[derive(Debug, Clone)]
pub struct FanoutSampler {
    fanouts: Vec<usize>,
    seed: u64,
}

impl FanoutSampler {
    /// Creates a sampler.
    ///
    /// # Errors
    /// Returns an error if `fanouts` is empty.
    pub fn new(fanouts: &[usize], seed: u64) -> Result<Self> {
        if fanouts.is_empty() {
            return Err(TensorError::InvalidArgument {
                op: "FanoutSampler::new",
                reason: "fanouts must name at least one level".to_string(),
            });
        }
        Ok(FanoutSampler {
            fanouts: fanouts.to_vec(),
            seed,
        })
    }

    /// The per-level fanouts, input side first.
    pub fn fanouts(&self) -> &[usize] {
        &self.fanouts
    }

    /// Number of levels (= blocks per batch).
    pub fn num_levels(&self) -> usize {
        self.fanouts.len()
    }

    /// Samples the blocks for one minibatch of `seeds`. `batch_id` must be
    /// unique per batch (e.g. a running counter) so different batches draw
    /// different neighbors; repeating a `batch_id` reproduces the batch
    /// exactly.
    ///
    /// # Errors
    /// Returns an error on out-of-range seeds or backing-store failure.
    pub fn sample(
        &self,
        adj: &dyn CsrSource,
        seeds: &[i64],
        batch_id: u64,
    ) -> Result<SampledBatch> {
        if seeds.is_empty() {
            return Err(TensorError::InvalidArgument {
                op: "FanoutSampler::sample",
                reason: "seeds must be non-empty".to_string(),
            });
        }
        let n = adj.num_nodes();
        let mut frontier: Vec<usize> = Vec::with_capacity(seeds.len());
        for &s in seeds {
            let node = usize::try_from(s).ok().filter(|&x| x < n).ok_or_else(|| {
                TensorError::InvalidArgument {
                    op: "FanoutSampler::sample",
                    reason: format!("seed {s} out of range ({n} nodes)"),
                }
            })?;
            frontier.push(node);
        }

        let mut blocks: Vec<SampledBlock> = Vec::with_capacity(self.fanouts.len());
        let mut edges = 0u64;
        let mut row_cols: Vec<usize> = Vec::new();
        let mut row_vals: Vec<f32> = Vec::new();
        // Output side first: the last fanout applies to the seed frontier.
        for (level, &fanout) in self.fanouts.iter().enumerate().rev() {
            let num_dst = frontier.len();
            // Local ids: destinations first (first occurrence order), then
            // newly-touched sources sorted ascending for a canonical layout.
            let mut local: HashMap<usize, usize> = HashMap::with_capacity(num_dst * 2);
            let mut src_nodes: Vec<usize> = Vec::with_capacity(num_dst * 2);
            for &d in &frontier {
                let next = src_nodes.len();
                if let std::collections::hash_map::Entry::Vacant(e) = local.entry(d) {
                    e.insert(next);
                    src_nodes.push(d);
                }
            }
            let mut sampled: Vec<(usize, usize, f32)> = Vec::new(); // (row, global col, val)
            let mut extras: Vec<usize> = Vec::new();
            for (row, &d) in frontier.iter().enumerate() {
                adj.row_into(d, &mut row_cols, &mut row_vals)?;
                let deg = row_cols.len();
                if fanout == 0 || fanout >= deg {
                    for (&c, &v) in row_cols.iter().zip(&row_vals) {
                        sampled.push((row, c, v));
                    }
                } else {
                    // Without-replacement pick of `fanout` neighbors via a
                    // partial Fisher–Yates over the row positions; weights
                    // are rescaled by deg/fanout so the aggregation stays an
                    // unbiased estimate of the full-neighborhood sum.
                    let mut rng = node_rng(self.seed, batch_id, level, d);
                    let mut idx: Vec<u32> = (0..deg as u32).collect();
                    let scale = deg as f32 / fanout as f32;
                    for j in 0..fanout {
                        let pick = rng.gen_range(j..deg);
                        idx.swap(j, pick);
                        let p = idx[j] as usize;
                        sampled.push((row, row_cols[p], row_vals[p] * scale));
                    }
                }
            }
            for &(_, c, _) in &sampled {
                if let std::collections::hash_map::Entry::Vacant(e) = local.entry(c) {
                    e.insert(usize::MAX); // placeholder; fixed below
                    extras.push(c);
                }
            }
            extras.sort_unstable();
            for &c in &extras {
                let id = src_nodes.len();
                local.insert(c, id);
                src_nodes.push(c);
            }
            let num_src = src_nodes.len();
            let triplets: Vec<(usize, usize, f32)> = sampled
                .iter()
                .map(|&(r, c, v)| (r, local[&c], v))
                .collect();
            let block_adj = CsrMatrix::from_coo(num_dst, num_src, &triplets)?;
            edges += block_adj.nnz() as u64;
            let adj_t = Rc::new(block_adj.transpose());
            blocks.push(SampledBlock {
                adj: Rc::new(block_adj),
                adj_t,
                dst_nodes: frontier.iter().map(|&d| d as i64).collect(),
                src_nodes: src_nodes.iter().map(|&s| s as i64).collect(),
            });
            frontier = src_nodes;
        }
        blocks.reverse();
        Ok(SampledBatch {
            seeds: seeds.to_vec(),
            blocks,
            edges,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{GraphDataset, InMemoryDataset};
    use crate::Graph;
    use gnnmark_tensor::Tensor;

    fn ring_dataset(n: usize) -> InMemoryDataset {
        let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let g = Graph::from_undirected_edges(n, &edges, Tensor::ones(&[n, 3])).unwrap();
        InMemoryDataset::new("ring", g).unwrap()
    }

    #[test]
    fn full_coverage_unlimited_fanout_reproduces_adjacency() {
        let ds = ring_dataset(8);
        let sampler = FanoutSampler::new(&[0, 0], 7).unwrap();
        let seeds: Vec<i64> = (0..8).collect();
        let batch = sampler.sample(ds.adjacency(), &seeds, 0).unwrap();
        assert_eq!(batch.blocks.len(), 2);
        for b in &batch.blocks {
            assert_eq!(b.adj.as_ref(), ds.norm_adj());
            assert_eq!(b.src_nodes, seeds);
        }
    }

    #[test]
    fn fanout_bounds_and_chaining() {
        let ds = ring_dataset(12);
        let sampler = FanoutSampler::new(&[2, 1], 3).unwrap();
        let batch = sampler.sample(ds.adjacency(), &[4, 9], 5).unwrap();
        let last = &batch.blocks[1];
        assert_eq!(last.dst_nodes, vec![4, 9]);
        for r in 0..last.num_dst() {
            assert!(last.adj.row_nnz(r) <= 1);
        }
        // Chaining: block 0's destinations are block 1's sources.
        assert_eq!(batch.blocks[0].dst_nodes, batch.blocks[1].src_nodes);
        for r in 0..batch.blocks[0].num_dst() {
            assert!(batch.blocks[0].adj.row_nnz(r) <= 2);
        }
        // Destination prefix property for distinct seeds.
        assert_eq!(&last.src_nodes[..2], &[4, 9]);
    }

    #[test]
    fn deterministic_per_batch_id() {
        let ds = ring_dataset(16);
        let sampler = FanoutSampler::new(&[2], 11).unwrap();
        let a = sampler.sample(ds.adjacency(), &[3, 7, 12], 4).unwrap();
        let b = sampler.sample(ds.adjacency(), &[3, 7, 12], 4).unwrap();
        assert_eq!(a.blocks[0].adj, b.blocks[0].adj);
        assert_eq!(a.blocks[0].src_nodes, b.blocks[0].src_nodes);
        let c = sampler.sample(ds.adjacency(), &[3, 7, 12], 5).unwrap();
        // Different batch id is allowed to differ (ring degree 3 > fanout 2).
        assert_eq!(c.seeds, a.seeds);
    }

    #[test]
    fn rejects_bad_inputs() {
        let ds = ring_dataset(4);
        assert!(FanoutSampler::new(&[], 0).is_err());
        let s = FanoutSampler::new(&[2], 0).unwrap();
        assert!(s.sample(ds.adjacency(), &[], 0).is_err());
        assert!(s.sample(ds.adjacency(), &[99], 0).is_err());
        assert!(s.sample(ds.adjacency(), &[-1], 0).is_err());
    }
}
