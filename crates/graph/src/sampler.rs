//! Minibatch, neighbor and random-walk samplers.
//!
//! PinSAGE's defining trick (paper §III) is random-walk importance
//! sampling: instead of using all neighbors, short random walks from each
//! target node rank its neighborhood by visit count, and only the top-T
//! most-visited nodes aggregate — letting training scale beyond GPU memory.

use gnnmark_tensor::{IntTensor, TensorError};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::{Graph, Result};

/// Yields shuffled minibatches of node ids.
#[derive(Debug, Clone)]
pub struct MinibatchSampler {
    order: Vec<i64>,
    batch_size: usize,
    cursor: usize,
}

impl MinibatchSampler {
    /// Creates a sampler over `0..num_items` with the given batch size.
    ///
    /// # Errors
    /// Returns an error if `batch_size` is 0 or there are no items.
    pub fn new<R: Rng + ?Sized>(
        num_items: usize,
        batch_size: usize,
        rng: &mut R,
    ) -> Result<Self> {
        if batch_size == 0 || num_items == 0 {
            return Err(TensorError::InvalidArgument {
                op: "MinibatchSampler::new",
                reason: "batch_size and num_items must be positive".to_string(),
            });
        }
        let mut order: Vec<i64> = (0..num_items as i64).collect();
        order.shuffle(rng);
        Ok(MinibatchSampler {
            order,
            batch_size,
            cursor: 0,
        })
    }

    /// Number of batches per epoch.
    pub fn num_batches(&self) -> usize {
        self.order.len().div_ceil(self.batch_size)
    }

    /// The next batch, or `None` at epoch end.
    pub fn next_batch(&mut self) -> Option<IntTensor> {
        if self.cursor >= self.order.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.order.len());
        let ids = self.order[self.cursor..end].to_vec();
        self.cursor = end;
        let n = ids.len();
        Some(IntTensor::from_vec(&[n], ids).expect("lengths agree"))
    }

    /// Restarts the epoch with a fresh shuffle.
    pub fn reset<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        self.order.shuffle(rng);
        self.cursor = 0;
    }

    /// Starts a fresh epoch and returns it as a snapshot iterator.
    ///
    /// This is the safe epoch API: the returned [`EpochBatches`] owns its
    /// shuffled order, so a caller that pairs a stale `num_batches()` with
    /// `next_batch()` across epochs (the historic desync on non-divisible
    /// batch sizes) cannot drift — the iterator simply ends after the last
    /// (possibly partial) batch.
    pub fn epoch<R: Rng + ?Sized>(&mut self, rng: &mut R) -> EpochBatches {
        self.reset(rng);
        EpochBatches {
            order: self.order.clone(),
            batch_size: self.batch_size,
            cursor: 0,
        }
    }
}

/// One epoch of shuffled minibatches, snapshotted from
/// [`MinibatchSampler::epoch`]: an explicit iterator whose length is fixed
/// at creation.
#[derive(Debug, Clone)]
pub struct EpochBatches {
    order: Vec<i64>,
    batch_size: usize,
    cursor: usize,
}

impl EpochBatches {
    /// Number of batches this epoch will yield (the last may be partial).
    pub fn num_batches(&self) -> usize {
        self.order.len().div_ceil(self.batch_size)
    }

    /// Batches not yet yielded.
    pub fn remaining(&self) -> usize {
        (self.order.len() - self.cursor).div_ceil(self.batch_size)
    }
}

impl Iterator for EpochBatches {
    type Item = IntTensor;

    fn next(&mut self) -> Option<IntTensor> {
        if self.cursor >= self.order.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.order.len());
        let ids = self.order[self.cursor..end].to_vec();
        self.cursor = end;
        let n = ids.len();
        Some(IntTensor::from_vec(&[n], ids).expect("lengths agree"))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining();
        (n, Some(n))
    }
}

impl ExactSizeIterator for EpochBatches {}

/// Uniformly samples up to `fanout` neighbors per seed node.
#[derive(Debug, Clone, Copy)]
pub struct NeighborSampler {
    fanout: usize,
}

impl NeighborSampler {
    /// Creates a sampler with the given fanout.
    pub fn new(fanout: usize) -> Self {
        NeighborSampler { fanout }
    }

    /// For each seed, samples up to `fanout` neighbors (with replacement if
    /// the neighborhood is smaller). Returns parallel `(src, dst)` arrays
    /// where `src[i]` is the seed and `dst[i]` a sampled neighbor;
    /// isolated seeds self-loop.
    pub fn sample<R: Rng + ?Sized>(
        &self,
        graph: &Graph,
        seeds: &IntTensor,
        rng: &mut R,
    ) -> (IntTensor, IntTensor) {
        let mut src = Vec::with_capacity(seeds.numel() * self.fanout);
        let mut dst = Vec::with_capacity(seeds.numel() * self.fanout);
        for &s in seeds.as_slice() {
            let neigh = graph.neighbors(s as usize);
            for _ in 0..self.fanout {
                let pick = if neigh.is_empty() {
                    s
                } else {
                    neigh[rng.gen_range(0..neigh.len())] as i64
                };
                src.push(s);
                dst.push(pick);
            }
        }
        let n = src.len();
        (
            IntTensor::from_vec(&[n], src).expect("lengths agree"),
            IntTensor::from_vec(&[n], dst).expect("lengths agree"),
        )
    }
}

/// PinSAGE random-walk importance sampling.
#[derive(Debug, Clone, Copy)]
pub struct RandomWalkSampler {
    /// Number of walks started per seed.
    pub num_walks: usize,
    /// Length of each walk.
    pub walk_length: usize,
    /// Number of top-visited neighbors kept per seed.
    pub top_t: usize,
}

/// The importance-weighted neighborhood of one seed node.
#[derive(Debug, Clone)]
pub struct ImportanceNeighborhood {
    /// Seed node id.
    pub seed: i64,
    /// Selected important neighbors (≤ `top_t`).
    pub neighbors: Vec<i64>,
    /// Normalized visit counts aligned with `neighbors` (sums to 1).
    pub weights: Vec<f32>,
}

impl RandomWalkSampler {
    /// Creates a sampler; PinSAGE defaults in the paper's DGL
    /// implementation are short walks with small `top_t`.
    pub fn new(num_walks: usize, walk_length: usize, top_t: usize) -> Self {
        RandomWalkSampler {
            num_walks,
            walk_length,
            top_t,
        }
    }

    /// Runs random walks from each seed and returns its top-T visited
    /// nodes with normalized importance weights.
    pub fn sample<R: Rng + ?Sized>(
        &self,
        graph: &Graph,
        seeds: &IntTensor,
        rng: &mut R,
    ) -> Vec<ImportanceNeighborhood> {
        seeds
            .as_slice()
            .iter()
            .map(|&seed| {
                let mut visits: std::collections::HashMap<i64, u32> =
                    std::collections::HashMap::new();
                for _ in 0..self.num_walks {
                    let mut cur = seed as usize;
                    for _ in 0..self.walk_length {
                        let neigh = graph.neighbors(cur);
                        if neigh.is_empty() {
                            break;
                        }
                        cur = neigh[rng.gen_range(0..neigh.len())];
                        if cur as i64 != seed {
                            *visits.entry(cur as i64).or_insert(0) += 1;
                        }
                    }
                }
                let mut ranked: Vec<(i64, u32)> = visits.into_iter().collect();
                ranked.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                ranked.truncate(self.top_t);
                if ranked.is_empty() {
                    ranked.push((seed, 1));
                }
                let total: u32 = ranked.iter().map(|(_, c)| *c).sum();
                ImportanceNeighborhood {
                    seed,
                    neighbors: ranked.iter().map(|(n, _)| *n).collect(),
                    weights: ranked
                        .iter()
                        .map(|(_, c)| *c as f32 / total as f32)
                        .collect(),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnmark_tensor::Tensor;
    use rand::SeedableRng;

    fn ring(n: usize) -> Graph {
        let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        Graph::from_undirected_edges(n, &edges, Tensor::ones(&[n, 2])).unwrap()
    }

    #[test]
    fn minibatch_covers_everything_once() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut s = MinibatchSampler::new(10, 3, &mut rng).unwrap();
        assert_eq!(s.num_batches(), 4);
        let mut seen = Vec::new();
        while let Some(b) = s.next_batch() {
            seen.extend_from_slice(b.as_slice());
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<i64>>());
        assert!(s.next_batch().is_none());
        s.reset(&mut rng);
        assert!(s.next_batch().is_some());
    }

    #[test]
    fn epoch_iterator_handles_last_partial_batch() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        // 10 items, batch 3 → 4 batches, last of size 1.
        let mut s = MinibatchSampler::new(10, 3, &mut rng).unwrap();
        let epoch = s.epoch(&mut rng);
        assert_eq!(epoch.num_batches(), 4);
        assert_eq!(epoch.len(), 4);
        let sizes: Vec<usize> = epoch.clone().map(|b| b.numel()).collect();
        assert_eq!(sizes, vec![3, 3, 3, 1]);
        let mut seen: Vec<i64> = epoch.flat_map(|b| b.as_slice().to_vec()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<i64>>());
        // The historic desync: a caller looping `for _ in 0..num_batches`
        // with a count captured before an epoch where items don't divide
        // evenly. With the snapshot iterator each epoch is self-contained.
        let stale_count = s.num_batches();
        for _ in 0..3 {
            let mut epoch = s.epoch(&mut rng);
            let mut drawn = 0;
            for _ in 0..stale_count {
                if epoch.next().is_some() {
                    drawn += 1;
                }
            }
            assert_eq!(drawn, 4, "every epoch yields exactly num_batches batches");
            assert!(epoch.next().is_none(), "and then cleanly ends");
        }
    }

    #[test]
    fn minibatch_validates() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        assert!(MinibatchSampler::new(0, 2, &mut rng).is_err());
        assert!(MinibatchSampler::new(5, 0, &mut rng).is_err());
    }

    #[test]
    fn neighbor_sampler_respects_fanout() {
        let g = ring(6);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let seeds = IntTensor::from_vec(&[2], vec![0, 3]).unwrap();
        let (src, dst) = NeighborSampler::new(4).sample(&g, &seeds, &mut rng);
        assert_eq!(src.numel(), 8);
        assert_eq!(dst.numel(), 8);
        // All sampled dsts are true neighbors.
        for (&s, &d) in src.as_slice().iter().zip(dst.as_slice()) {
            assert!(g.neighbors(s as usize).contains(&(d as usize)));
        }
    }

    #[test]
    fn random_walks_rank_near_nodes_higher() {
        let g = ring(20);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let seeds = IntTensor::from_vec(&[1], vec![0]).unwrap();
        let hoods = RandomWalkSampler::new(64, 3, 4).sample(&g, &seeds, &mut rng);
        assert_eq!(hoods.len(), 1);
        let h = &hoods[0];
        assert!(h.neighbors.len() <= 4);
        // Weights normalized.
        let total: f32 = h.weights.iter().sum();
        assert!((total - 1.0).abs() < 1e-5);
        // Ring: immediate neighbors 1 and 19 are most visited.
        assert!(h.neighbors.contains(&1) || h.neighbors.contains(&19));
    }

    #[test]
    fn isolated_seed_falls_back_to_self() {
        let g = Graph::from_undirected_edges(3, &[(1, 2)], Tensor::ones(&[3, 1])).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let seeds = IntTensor::from_vec(&[1], vec![0]).unwrap();
        let hoods = RandomWalkSampler::new(4, 2, 2).sample(&g, &seeds, &mut rng);
        assert_eq!(hoods[0].neighbors, vec![0]);
    }
}
