//! Out-of-core streaming CSR store: a chunked on-disk graph format read
//! through a byte-budgeted LRU chunk cache, so graph scale is bounded by
//! disk rather than RAM.
//!
//! No mmap — chunks are plain `seek + read` blobs, each guarded by an
//! FNV-1a checksum so a torn write (crash mid-flush, truncated copy) is
//! detected at read time with a clear error instead of silently corrupt
//! training data.
//!
//! ## File layout
//!
//! ```text
//! header (64 B): magic "GNMKOOC1" · num_nodes u64 · num_edges u64
//!                feature_dim u32 · num_classes u32 · chunk_nodes u32
//!                num_chunks u32 · table_offset u64 · reserved 16 B
//! chunk 0 … chunk k-1 (variable-size blobs, see below)
//! table: num_chunks × { offset u64, len u64, checksum u64 }
//! ```
//!
//! Each chunk holds `chunk_nodes` consecutive nodes (the last may be
//! short): chunk-local `row_ptr` (u64), `col_idx` (u64, global ids),
//! `values` (f32), dense `features` (f32) and `labels` (i64). All
//! integers little-endian.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::rc::Rc;

use gnnmark_tensor::{IntTensor, Tensor, TensorError};

use crate::dataset::{CsrSource, GraphDataset};
use crate::{Graph, Result};

const MAGIC: &[u8; 8] = b"GNMKOOC1";
const HEADER_LEN: u64 = 64;
const TABLE_ENTRY_LEN: u64 = 24;

fn io_err(op: &'static str, e: &std::io::Error) -> TensorError {
    TensorError::InvalidArgument {
        op,
        reason: format!("io error: {e}"),
    }
}

fn corrupt(reason: String) -> TensorError {
    TensorError::InvalidArgument {
        op: "StreamGraph",
        reason,
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn read_u64(b: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(b[at..at + 8].try_into().expect("8 bytes"))
}

fn read_u32(b: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(b[at..at + 4].try_into().expect("4 bytes"))
}

/// Metadata of an on-disk streaming graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamMeta {
    /// Total nodes.
    pub num_nodes: u64,
    /// Total stored (directed) edges.
    pub num_edges: u64,
    /// Node feature width.
    pub feature_dim: u32,
    /// Number of label classes (0 if unlabeled).
    pub num_classes: u32,
    /// Nodes per chunk (last chunk may be short).
    pub chunk_nodes: u32,
    /// Number of chunks.
    pub num_chunks: u32,
}

impl StreamMeta {
    /// Bytes an in-RAM full-graph load of this dataset would need, using
    /// the same accounting as [`gnnmark_tensor::CsrMatrix::byte_len`]
    /// (4-byte indices) plus dense features and labels.
    pub fn full_graph_bytes(&self) -> u64 {
        let csr = (self.num_nodes + 1 + self.num_edges) * 4 + self.num_edges * 4;
        let feats = self.num_nodes * self.feature_dim as u64 * 4;
        let labels = self.num_nodes * 8;
        csr + feats + labels
    }
}

#[derive(Debug, Clone, Copy)]
struct ChunkEntry {
    offset: u64,
    len: u64,
    checksum: u64,
}

/// One decoded chunk, resident in the cache.
#[derive(Debug)]
struct Chunk {
    first_node: usize,
    row_ptr: Vec<u64>,
    col_idx: Vec<u64>,
    values: Vec<f32>,
    features: Vec<f32>,
    labels: Vec<i64>,
}

impl Chunk {
    fn bytes(&self) -> u64 {
        (self.row_ptr.len() * 8
            + self.col_idx.len() * 8
            + self.values.len() * 4
            + self.features.len() * 4
            + self.labels.len() * 8) as u64
    }

    fn decode(first_node: usize, expect_nodes: usize, feature_dim: usize, blob: &[u8]) -> Result<Chunk> {
        let need = |n: usize| -> Result<()> {
            if blob.len() < n {
                Err(corrupt(format!(
                    "chunk blob too short: {} bytes, need ≥ {n}",
                    blob.len()
                )))
            } else {
                Ok(())
            }
        };
        need(4)?;
        let nodes = read_u32(blob, 0) as usize;
        if nodes != expect_nodes {
            return Err(corrupt(format!(
                "chunk node count {nodes} != expected {expect_nodes}"
            )));
        }
        let mut at = 4usize;
        let mut row_ptr = Vec::with_capacity(nodes + 1);
        need(at + (nodes + 1) * 8)?;
        for _ in 0..=nodes {
            row_ptr.push(read_u64(blob, at));
            at += 8;
        }
        let nnz = *row_ptr.last().expect("non-empty") as usize;
        if row_ptr[0] != 0 || row_ptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(corrupt("chunk row_ptr not monotonic from 0".to_string()));
        }
        need(at + nnz * 12 + nodes * feature_dim * 4 + nodes * 8)?;
        let mut col_idx = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            col_idx.push(read_u64(blob, at));
            at += 8;
        }
        let mut values = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            values.push(f32::from_le_bytes(blob[at..at + 4].try_into().expect("4 bytes")));
            at += 4;
        }
        let mut features = Vec::with_capacity(nodes * feature_dim);
        for _ in 0..nodes * feature_dim {
            features.push(f32::from_le_bytes(blob[at..at + 4].try_into().expect("4 bytes")));
            at += 4;
        }
        let mut labels = Vec::with_capacity(nodes);
        for _ in 0..nodes {
            labels.push(i64::from_le_bytes(blob[at..at + 8].try_into().expect("8 bytes")));
            at += 8;
        }
        Ok(Chunk {
            first_node,
            row_ptr,
            col_idx,
            values,
            features,
            labels,
        })
    }
}

/// Cache hit/miss/eviction counters (monotonic over the store's lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Chunk lookups served from the cache.
    pub hits: u64,
    /// Chunk lookups that read from disk.
    pub misses: u64,
    /// Chunks evicted to stay under the byte budget.
    pub evictions: u64,
    /// Bytes currently resident in the cache.
    pub resident_bytes: u64,
}

struct CacheState {
    file: File,
    chunks: HashMap<usize, (Rc<Chunk>, u64)>,
    tick: u64,
    budget: u64,
    stats: CacheStats,
}

/// An out-of-core graph: CSR adjacency + features + labels streamed from
/// disk chunk by chunk through an LRU cache.
///
/// Implements [`CsrSource`] and [`GraphDataset`], so the fanout sampler
/// and minibatch training run over it exactly as over an in-RAM graph —
/// and byte-identically, since chunking never changes row contents.
pub struct StreamGraph {
    path: PathBuf,
    name: String,
    meta: StreamMeta,
    table: Vec<ChunkEntry>,
    state: RefCell<CacheState>,
}

impl std::fmt::Debug for StreamGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "StreamGraph({:?}, {} nodes, {} chunks)",
            self.path, self.meta.num_nodes, self.meta.num_chunks
        )
    }
}

impl StreamGraph {
    /// Opens a streaming graph with the given cache byte budget (at least
    /// one chunk is always kept regardless of budget).
    ///
    /// # Errors
    /// Returns a clear error for a missing/truncated file, bad magic, or an
    /// inconsistent chunk table.
    pub fn open(path: &Path, cache_bytes: u64) -> Result<StreamGraph> {
        let mut file = File::open(path).map_err(|e| io_err("StreamGraph::open", &e))?;
        let file_len = file
            .metadata()
            .map_err(|e| io_err("StreamGraph::open", &e))?
            .len();
        if file_len < HEADER_LEN {
            return Err(corrupt(format!(
                "file {} is {} bytes — too short for the {HEADER_LEN}-byte header (truncated?)",
                path.display(),
                file_len
            )));
        }
        let mut header = [0u8; HEADER_LEN as usize];
        file.read_exact(&mut header)
            .map_err(|e| io_err("StreamGraph::open", &e))?;
        if &header[..8] != MAGIC {
            return Err(corrupt(format!(
                "bad magic in {} (not a GNMKOOC1 stream graph)",
                path.display()
            )));
        }
        let meta = StreamMeta {
            num_nodes: read_u64(&header, 8),
            num_edges: read_u64(&header, 16),
            feature_dim: read_u32(&header, 24),
            num_classes: read_u32(&header, 28),
            chunk_nodes: read_u32(&header, 32),
            num_chunks: read_u32(&header, 36),
        };
        let table_offset = read_u64(&header, 40);
        if meta.chunk_nodes == 0 {
            return Err(corrupt("chunk_nodes is 0".to_string()));
        }
        let expect_chunks = meta.num_nodes.div_ceil(meta.chunk_nodes as u64);
        if meta.num_chunks as u64 != expect_chunks {
            return Err(corrupt(format!(
                "num_chunks {} inconsistent with {} nodes / {} per chunk",
                meta.num_chunks, meta.num_nodes, meta.chunk_nodes
            )));
        }
        let table_len = meta.num_chunks as u64 * TABLE_ENTRY_LEN;
        if file_len < table_offset.saturating_add(table_len) {
            return Err(corrupt(format!(
                "file {} truncated: {} bytes, chunk table needs {}..{}",
                path.display(),
                file_len,
                table_offset,
                table_offset + table_len
            )));
        }
        file.seek(SeekFrom::Start(table_offset))
            .map_err(|e| io_err("StreamGraph::open", &e))?;
        let mut raw = vec![0u8; table_len as usize];
        file.read_exact(&mut raw)
            .map_err(|e| io_err("StreamGraph::open", &e))?;
        let mut table = Vec::with_capacity(meta.num_chunks as usize);
        for k in 0..meta.num_chunks as usize {
            let at = k * TABLE_ENTRY_LEN as usize;
            let entry = ChunkEntry {
                offset: read_u64(&raw, at),
                len: read_u64(&raw, at + 8),
                checksum: read_u64(&raw, at + 16),
            };
            if entry.offset < HEADER_LEN || entry.offset.saturating_add(entry.len) > table_offset {
                return Err(corrupt(format!(
                    "chunk {k} extent {}..{} outside data region {HEADER_LEN}..{table_offset}",
                    entry.offset,
                    entry.offset + entry.len
                )));
            }
            table.push(entry);
        }
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "stream".to_string());
        Ok(StreamGraph {
            path: path.to_path_buf(),
            name,
            meta,
            table,
            state: RefCell::new(CacheState {
                file,
                chunks: HashMap::new(),
                tick: 0,
                budget: cache_bytes,
                stats: CacheStats::default(),
            }),
        })
    }

    /// The on-disk metadata.
    pub fn meta(&self) -> StreamMeta {
        self.meta
    }

    /// Cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.state.borrow().stats
    }

    fn chunk_of(&self, node: usize) -> usize {
        node / self.meta.chunk_nodes as usize
    }

    fn chunk_nodes_in(&self, k: usize) -> usize {
        let first = k as u64 * self.meta.chunk_nodes as u64;
        (self.meta.num_nodes - first).min(self.meta.chunk_nodes as u64) as usize
    }

    fn load_chunk(&self, k: usize) -> Result<Rc<Chunk>> {
        let mut st = self.state.borrow_mut();
        st.tick += 1;
        let tick = st.tick;
        if let Some((chunk, stamp)) = st.chunks.get_mut(&k) {
            *stamp = tick;
            let hit = Rc::clone(chunk);
            st.stats.hits += 1;
            return Ok(hit);
        }
        st.stats.misses += 1;
        let entry = self.table[k];
        st.file
            .seek(SeekFrom::Start(entry.offset))
            .map_err(|e| io_err("StreamGraph::load_chunk", &e))?;
        let mut blob = vec![0u8; entry.len as usize];
        st.file
            .read_exact(&mut blob)
            .map_err(|e| io_err("StreamGraph::load_chunk", &e))?;
        let sum = fnv1a(&blob);
        if sum != entry.checksum {
            return Err(corrupt(format!(
                "chunk {k} of {} failed checksum (stored {:016x}, computed {sum:016x}) — torn or corrupt write",
                self.path.display(),
                entry.checksum
            )));
        }
        let first_node = k * self.meta.chunk_nodes as usize;
        let chunk = Rc::new(Chunk::decode(
            first_node,
            self.chunk_nodes_in(k),
            self.meta.feature_dim as usize,
            &blob,
        )?);
        st.stats.resident_bytes += chunk.bytes();
        st.chunks.insert(k, (Rc::clone(&chunk), tick));
        // Evict least-recently-used chunks past the budget, keeping the
        // one just loaded.
        while st.stats.resident_bytes > st.budget && st.chunks.len() > 1 {
            let victim = st
                .chunks
                .iter()
                .filter(|(&id, _)| id != k)
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(&id, _)| id);
            match victim {
                Some(id) => {
                    if let Some((gone, _)) = st.chunks.remove(&id) {
                        st.stats.resident_bytes -= gone.bytes();
                        st.stats.evictions += 1;
                    }
                }
                None => break,
            }
        }
        Ok(chunk)
    }

    fn locate(&self, node: usize) -> Result<(Rc<Chunk>, usize)> {
        if node as u64 >= self.meta.num_nodes {
            return Err(TensorError::InvalidArgument {
                op: "StreamGraph::locate",
                reason: format!("node {node} out of range ({})", self.meta.num_nodes),
            });
        }
        let chunk = self.load_chunk(self.chunk_of(node))?;
        let local = node - chunk.first_node;
        Ok((chunk, local))
    }
}

impl CsrSource for StreamGraph {
    fn num_nodes(&self) -> usize {
        self.meta.num_nodes as usize
    }

    fn num_edges(&self) -> u64 {
        self.meta.num_edges
    }

    fn degree(&self, node: usize) -> Result<usize> {
        let (chunk, local) = self.locate(node)?;
        Ok((chunk.row_ptr[local + 1] - chunk.row_ptr[local]) as usize)
    }

    fn row_into(&self, node: usize, cols: &mut Vec<usize>, vals: &mut Vec<f32>) -> Result<()> {
        let (chunk, local) = self.locate(node)?;
        let (lo, hi) = (chunk.row_ptr[local] as usize, chunk.row_ptr[local + 1] as usize);
        cols.clear();
        vals.clear();
        cols.extend(chunk.col_idx[lo..hi].iter().map(|&c| c as usize));
        vals.extend_from_slice(&chunk.values[lo..hi]);
        Ok(())
    }
}

impl GraphDataset for StreamGraph {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_nodes(&self) -> usize {
        self.meta.num_nodes as usize
    }

    fn feature_dim(&self) -> usize {
        self.meta.feature_dim as usize
    }

    fn num_classes(&self) -> usize {
        self.meta.num_classes as usize
    }

    fn adjacency(&self) -> &dyn CsrSource {
        self
    }

    fn gather_features(&self, nodes: &[i64]) -> Result<Tensor> {
        let d = self.meta.feature_dim as usize;
        let mut out = vec![0.0f32; nodes.len() * d];
        for (i, &n) in nodes.iter().enumerate() {
            let node = usize::try_from(n).map_err(|_| TensorError::InvalidArgument {
                op: "StreamGraph::gather_features",
                reason: format!("negative node id {n}"),
            })?;
            let (chunk, local) = self.locate(node)?;
            out[i * d..(i + 1) * d].copy_from_slice(&chunk.features[local * d..(local + 1) * d]);
        }
        Tensor::from_vec(&[nodes.len(), d], out)
    }

    fn gather_labels(&self, nodes: &[i64]) -> Result<IntTensor> {
        let mut out = Vec::with_capacity(nodes.len());
        for &n in nodes {
            let node = usize::try_from(n).map_err(|_| TensorError::InvalidArgument {
                op: "StreamGraph::gather_labels",
                reason: format!("negative node id {n}"),
            })?;
            let (chunk, local) = self.locate(node)?;
            out.push(chunk.labels[local]);
        }
        IntTensor::from_vec(&[nodes.len()], out)
    }

    fn resident_bytes(&self) -> u64 {
        let table = self.table.len() as u64 * TABLE_ENTRY_LEN;
        HEADER_LEN + table + self.state.borrow().stats.resident_bytes
    }
}

/// Incremental writer for the streaming format: push nodes in id order,
/// then [`StreamGraphWriter::finish`].
pub struct StreamGraphWriter {
    file: File,
    path: PathBuf,
    feature_dim: usize,
    num_classes: u32,
    chunk_nodes: usize,
    offset: u64,
    num_nodes: u64,
    num_edges: u64,
    table: Vec<ChunkEntry>,
    // Current chunk buffers.
    row_ptr: Vec<u64>,
    col_idx: Vec<u64>,
    values: Vec<f32>,
    features: Vec<f32>,
    labels: Vec<i64>,
}

impl StreamGraphWriter {
    /// Creates (truncates) the file at `path`.
    ///
    /// # Errors
    /// Returns an error on zero `chunk_nodes`/`feature_dim` or I/O failure.
    pub fn create(
        path: &Path,
        feature_dim: usize,
        num_classes: u32,
        chunk_nodes: usize,
    ) -> Result<StreamGraphWriter> {
        if chunk_nodes == 0 || feature_dim == 0 {
            return Err(TensorError::InvalidArgument {
                op: "StreamGraphWriter::create",
                reason: "chunk_nodes and feature_dim must be positive".to_string(),
            });
        }
        let mut file = File::create(path).map_err(|e| io_err("StreamGraphWriter::create", &e))?;
        // Placeholder header; rewritten by finish().
        file.write_all(&[0u8; HEADER_LEN as usize])
            .map_err(|e| io_err("StreamGraphWriter::create", &e))?;
        Ok(StreamGraphWriter {
            file,
            path: path.to_path_buf(),
            feature_dim,
            num_classes,
            chunk_nodes,
            offset: HEADER_LEN,
            num_nodes: 0,
            num_edges: 0,
            table: Vec::new(),
            row_ptr: vec![0],
            col_idx: Vec::new(),
            values: Vec::new(),
            features: Vec::new(),
            labels: Vec::new(),
        })
    }

    /// Appends the next node (ids are implicit and sequential): its
    /// adjacency row, feature row and label.
    ///
    /// # Errors
    /// Returns an error on length mismatches or I/O failure.
    pub fn push_node(&mut self, cols: &[usize], vals: &[f32], feats: &[f32], label: i64) -> Result<()> {
        if cols.len() != vals.len() || feats.len() != self.feature_dim {
            return Err(TensorError::InvalidArgument {
                op: "StreamGraphWriter::push_node",
                reason: format!(
                    "row lengths {}:{} or feature width {} (want {}) mismatch",
                    cols.len(),
                    vals.len(),
                    feats.len(),
                    self.feature_dim
                ),
            });
        }
        self.col_idx.extend(cols.iter().map(|&c| c as u64));
        self.values.extend_from_slice(vals);
        self.row_ptr.push(self.col_idx.len() as u64);
        self.features.extend_from_slice(feats);
        self.labels.push(label);
        self.num_nodes += 1;
        self.num_edges += cols.len() as u64;
        if self.row_ptr.len() - 1 == self.chunk_nodes {
            self.flush_chunk()?;
        }
        Ok(())
    }

    fn flush_chunk(&mut self) -> Result<()> {
        let nodes = self.row_ptr.len() - 1;
        if nodes == 0 {
            return Ok(());
        }
        let mut blob = Vec::with_capacity(
            4 + self.row_ptr.len() * 8 + self.col_idx.len() * 12 + self.features.len() * 4 + self.labels.len() * 8,
        );
        blob.extend_from_slice(&(nodes as u32).to_le_bytes());
        for &p in &self.row_ptr {
            blob.extend_from_slice(&p.to_le_bytes());
        }
        for &c in &self.col_idx {
            blob.extend_from_slice(&c.to_le_bytes());
        }
        for &v in &self.values {
            blob.extend_from_slice(&v.to_le_bytes());
        }
        for &x in &self.features {
            blob.extend_from_slice(&x.to_le_bytes());
        }
        for &l in &self.labels {
            blob.extend_from_slice(&l.to_le_bytes());
        }
        self.file
            .write_all(&blob)
            .map_err(|e| io_err("StreamGraphWriter::flush_chunk", &e))?;
        self.table.push(ChunkEntry {
            offset: self.offset,
            len: blob.len() as u64,
            checksum: fnv1a(&blob),
        });
        self.offset += blob.len() as u64;
        self.row_ptr.clear();
        self.row_ptr.push(0);
        self.col_idx.clear();
        self.values.clear();
        self.features.clear();
        self.labels.clear();
        Ok(())
    }

    /// Flushes the last chunk, writes the chunk table and final header, and
    /// syncs the file.
    ///
    /// # Errors
    /// Returns an error on I/O failure or an empty graph.
    pub fn finish(mut self) -> Result<StreamMeta> {
        if self.num_nodes == 0 {
            return Err(TensorError::InvalidArgument {
                op: "StreamGraphWriter::finish",
                reason: "no nodes were written".to_string(),
            });
        }
        self.flush_chunk()?;
        let table_offset = self.offset;
        for e in &self.table {
            self.file
                .write_all(&e.offset.to_le_bytes())
                .and_then(|_| self.file.write_all(&e.len.to_le_bytes()))
                .and_then(|_| self.file.write_all(&e.checksum.to_le_bytes()))
                .map_err(|e| io_err("StreamGraphWriter::finish", &e))?;
        }
        let meta = StreamMeta {
            num_nodes: self.num_nodes,
            num_edges: self.num_edges,
            feature_dim: self.feature_dim as u32,
            num_classes: self.num_classes,
            chunk_nodes: self.chunk_nodes as u32,
            num_chunks: self.table.len() as u32,
        };
        let mut header = [0u8; HEADER_LEN as usize];
        header[..8].copy_from_slice(MAGIC);
        header[8..16].copy_from_slice(&meta.num_nodes.to_le_bytes());
        header[16..24].copy_from_slice(&meta.num_edges.to_le_bytes());
        header[24..28].copy_from_slice(&meta.feature_dim.to_le_bytes());
        header[28..32].copy_from_slice(&meta.num_classes.to_le_bytes());
        header[32..36].copy_from_slice(&meta.chunk_nodes.to_le_bytes());
        header[36..40].copy_from_slice(&meta.num_chunks.to_le_bytes());
        header[40..48].copy_from_slice(&table_offset.to_le_bytes());
        self.file
            .seek(SeekFrom::Start(0))
            .and_then(|_| self.file.write_all(&header))
            .and_then(|_| self.file.sync_all())
            .map_err(|e| io_err("StreamGraphWriter::finish", &e))?;
        let _ = self.path;
        Ok(meta)
    }
}

/// Writes an in-RAM [`Graph`] (normalized adjacency + features + labels)
/// to the streaming format, so streaming and in-RAM runs read identical
/// rows.
///
/// # Errors
/// Propagates writer errors.
pub fn write_graph(path: &Path, graph: &Graph, chunk_nodes: usize) -> Result<StreamMeta> {
    let norm = graph.normalized_adjacency()?;
    let num_classes = graph
        .labels()
        .map(|l| l.as_slice().iter().map(|&c| c + 1).max().unwrap_or(0) as u32)
        .unwrap_or(0);
    let mut w = StreamGraphWriter::create(path, graph.feature_dim(), num_classes, chunk_nodes)?;
    let feats = graph.features().as_slice();
    let d = graph.feature_dim();
    for node in 0..graph.num_nodes() {
        let (cols, vals) = norm.row(node);
        let label = graph.labels().map(|l| l.as_slice()[node]).unwrap_or(0);
        w.push_node(cols, vals, &feats[node * d..(node + 1) * d], label)?;
    }
    w.finish()
}

/// Parameters of the deterministic synthetic graph generator used for the
/// out-of-core demo: a ring augmented with hashed long-range edges, mean-
/// normalized rows with self-loops, and features that weakly encode the
/// label so a GCN can actually learn.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticSpec {
    /// Node count (the demo uses ≥ 1M).
    pub nodes: u64,
    /// Extra hashed edges per node on top of the ring (average degree ≈
    /// `2 + extra_edges`).
    pub extra_edges: u32,
    /// Feature width.
    pub feature_dim: u32,
    /// Label classes.
    pub num_classes: u32,
    /// RNG seed.
    pub seed: u64,
}

fn mix64(mut h: u64) -> u64 {
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Streams a synthetic graph straight to disk, never materializing it in
/// RAM — O(chunk) memory regardless of node count.
///
/// # Errors
/// Propagates writer errors.
pub fn write_synthetic(path: &Path, spec: &SyntheticSpec, chunk_nodes: usize) -> Result<StreamMeta> {
    if spec.nodes < 3 || spec.num_classes == 0 || spec.feature_dim < spec.num_classes {
        return Err(TensorError::InvalidArgument {
            op: "write_synthetic",
            reason: "need ≥3 nodes, ≥1 class, feature_dim ≥ num_classes".to_string(),
        });
    }
    let n = spec.nodes;
    let mut w = StreamGraphWriter::create(path, spec.feature_dim as usize, spec.num_classes, chunk_nodes)?;
    let mut cols: Vec<usize> = Vec::new();
    let mut feats: Vec<f32> = Vec::with_capacity(spec.feature_dim as usize);
    for i in 0..n {
        cols.clear();
        cols.push(i as usize); // self-loop
        cols.push(((i + n - 1) % n) as usize);
        cols.push(((i + 1) % n) as usize);
        for j in 0..spec.extra_edges as u64 {
            let t = mix64(spec.seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (j << 1 | 1)) % n;
            if t != i {
                cols.push(t as usize);
            }
        }
        cols.sort_unstable();
        cols.dedup();
        let wgt = 1.0 / cols.len() as f32;
        let vals = vec![wgt; cols.len()];
        let label = (mix64(spec.seed ^ mix64(i)) >> 17) % spec.num_classes as u64;
        feats.clear();
        for k in 0..spec.feature_dim as u64 {
            let noise = (mix64(spec.seed ^ (i << 20) ^ k) % 1000) as f32 / 1000.0 * 0.2;
            let signal = if k % spec.num_classes as u64 == label { 1.0 } else { 0.0 };
            feats.push(signal + noise);
        }
        w.push_node(&cols, &vals, &feats, label as i64)?;
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnmark_tensor::Tensor;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("gnnmark-stream-tests");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir.join(name)
    }

    fn small_graph() -> Graph {
        let edges: Vec<(usize, usize)> = (0..19).map(|i| (i, i + 1)).collect();
        Graph::from_undirected_edges(20, &edges, Tensor::from_fn(&[20, 3], |i| i as f32 * 0.1))
            .unwrap()
            .with_labels(IntTensor::from_vec(&[20], (0..20).map(|i| i % 4).collect()).unwrap())
            .unwrap()
    }

    #[test]
    fn roundtrip_rows_match_in_ram() {
        let path = tmp("roundtrip.gnm");
        let g = small_graph();
        let meta = write_graph(&path, &g, 6).unwrap();
        assert_eq!(meta.num_nodes, 20);
        assert_eq!(meta.num_chunks, 4);
        assert_eq!(meta.num_classes, 4);
        let sg = StreamGraph::open(&path, 1 << 20).unwrap();
        let norm = g.normalized_adjacency().unwrap();
        let (mut c, mut v) = (Vec::new(), Vec::new());
        for node in 0..20 {
            sg.row_into(node, &mut c, &mut v).unwrap();
            let (ec, ev) = norm.row(node);
            assert_eq!(c, ec, "row {node} cols");
            assert_eq!(v, ev, "row {node} vals");
            assert_eq!(sg.degree(node).unwrap(), ec.len());
        }
        let f = sg.gather_features(&[19, 0, 7]).unwrap();
        let idx = IntTensor::from_vec(&[3], vec![19, 0, 7]).unwrap();
        assert_eq!(f.as_slice(), g.features().gather_rows(&idx).unwrap().as_slice());
        assert_eq!(sg.gather_labels(&[5, 13]).unwrap().as_slice(), &[1, 1]);
    }

    #[test]
    fn lru_cache_evicts_under_budget() {
        let path = tmp("lru.gnm");
        write_graph(&path, &small_graph(), 4).unwrap();
        // Budget of 1 byte: only the most recent chunk stays.
        let sg = StreamGraph::open(&path, 1).unwrap();
        let (mut c, mut v) = (Vec::new(), Vec::new());
        for node in [0usize, 19, 0, 19] {
            sg.row_into(node, &mut c, &mut v).unwrap();
        }
        let stats = sg.cache_stats();
        assert_eq!(stats.misses, 4, "every access misses under a 1-byte budget");
        assert_eq!(stats.evictions, 3);
        // Generous budget: repeats hit.
        let sg2 = StreamGraph::open(&path, 1 << 20).unwrap();
        for node in [0usize, 19, 0, 19] {
            sg2.row_into(node, &mut c, &mut v).unwrap();
        }
        let stats2 = sg2.cache_stats();
        assert_eq!(stats2.misses, 2);
        assert_eq!(stats2.hits, 2);
        assert_eq!(stats2.evictions, 0);
    }

    #[test]
    fn torn_chunk_is_detected() {
        let path = tmp("torn.gnm");
        write_graph(&path, &small_graph(), 5).unwrap();
        // Flip one byte inside chunk 1's blob.
        let mut bytes = std::fs::read(&path).unwrap();
        let sg = StreamGraph::open(&path, 1 << 20).unwrap();
        let off = sg.table[1].offset as usize + 10;
        drop(sg);
        bytes[off] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let sg = StreamGraph::open(&path, 1 << 20).unwrap();
        let (mut c, mut v) = (Vec::new(), Vec::new());
        // Chunk 0 still reads fine.
        sg.row_into(0, &mut c, &mut v).unwrap();
        // Chunk 1 (nodes 5..10) reports the torn write.
        let err = sg.row_into(7, &mut c, &mut v).unwrap_err().to_string();
        assert!(err.contains("checksum"), "unexpected error: {err}");
        assert!(err.contains("torn"), "unexpected error: {err}");
    }

    #[test]
    fn truncated_file_is_detected() {
        let path = tmp("trunc.gnm");
        write_graph(&path, &small_graph(), 5).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 30]).unwrap();
        let err = StreamGraph::open(&path, 1 << 20).unwrap_err().to_string();
        assert!(err.contains("truncated"), "unexpected error: {err}");
        // Header-only truncation.
        std::fs::write(&path, &bytes[..20]).unwrap();
        assert!(StreamGraph::open(&path, 1 << 20).is_err());
        // Bad magic.
        let mut garbled = bytes.clone();
        garbled[0] = b'X';
        std::fs::write(&path, &garbled).unwrap();
        let err = StreamGraph::open(&path, 1 << 20).unwrap_err().to_string();
        assert!(err.contains("magic"), "unexpected error: {err}");
    }

    #[test]
    fn synthetic_generator_is_bounded_and_learnable_shape() {
        let path = tmp("synth.gnm");
        let spec = SyntheticSpec {
            nodes: 1000,
            extra_edges: 3,
            feature_dim: 8,
            num_classes: 4,
            seed: 42,
        };
        let meta = write_synthetic(&path, &spec, 128).unwrap();
        assert_eq!(meta.num_nodes, 1000);
        assert_eq!(meta.num_chunks, 8);
        let sg = StreamGraph::open(&path, 64 << 10).unwrap();
        let (mut c, mut v) = (Vec::new(), Vec::new());
        for node in [0usize, 499, 999] {
            sg.row_into(node, &mut c, &mut v).unwrap();
            assert!(c.contains(&node), "self-loop present");
            assert!(c.windows(2).all(|w| w[0] < w[1]), "sorted unique cols");
            let s: f32 = v.iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "mean-normalized row sums to 1");
        }
        let labels = sg.gather_labels(&[0, 1, 2, 3, 4, 5, 6, 7]).unwrap();
        assert!(labels.as_slice().iter().all(|&l| (0..4).contains(&l)));
        assert!(meta.full_graph_bytes() > StreamGraph::open(&path, 1 << 10).unwrap().resident_bytes());
    }
}
