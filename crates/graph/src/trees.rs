//! Tree structures for Tree-LSTM-style models.
//!
//! Sentiment trees (SST-style) are binary trees whose leaves carry word
//! ids; internal nodes combine children bottom-up. [`TreeBatch`] implements
//! DGL's batching trick: many small trees are merged and processed
//! level-by-level so each level is one batched kernel launch.

use gnnmark_tensor::{IntTensor, TensorError};

use crate::Result;

/// One node of a [`Tree`].
#[derive(Debug, Clone)]
pub struct TreeNode {
    /// Children indices (empty for leaves).
    pub children: Vec<usize>,
    /// Word id for leaves, `None` for internal nodes.
    pub word: Option<i64>,
    /// Sentiment label of the subtree rooted here.
    pub label: i64,
}

/// A rooted tree with per-node labels (sentiment treebank style).
#[derive(Debug, Clone)]
pub struct Tree {
    nodes: Vec<TreeNode>,
    root: usize,
}

impl Tree {
    /// Builds a tree from nodes; `root` is the index of the root node.
    ///
    /// # Errors
    /// Returns an error if `root` or any child index is out of range, or a
    /// node is its own child.
    pub fn new(nodes: Vec<TreeNode>, root: usize) -> Result<Self> {
        let n = nodes.len();
        if root >= n {
            return Err(TensorError::IndexOutOfBounds {
                op: "Tree::new",
                index: root,
                bound: n,
            });
        }
        for (i, node) in nodes.iter().enumerate() {
            for &c in &node.children {
                if c >= n || c == i {
                    return Err(TensorError::InvalidArgument {
                        op: "Tree::new",
                        reason: format!("node {i} has invalid child {c}"),
                    });
                }
            }
        }
        Ok(Tree { nodes, root })
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the tree has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Root node index.
    pub fn root(&self) -> usize {
        self.root
    }

    /// The nodes, by index.
    pub fn nodes(&self) -> &[TreeNode] {
        &self.nodes
    }

    /// Height of each node (leaves are 0; parents one more than their
    /// tallest child). Used to schedule level-parallel processing.
    pub fn heights(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.nodes.len()];
        // Nodes may appear in any order; iterate until fixpoint (tree depth
        // bounded by node count).
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..self.nodes.len() {
                let want = self.nodes[i]
                    .children
                    .iter()
                    .map(|&c| h[c] + 1)
                    .max()
                    .unwrap_or(0);
                if h[i] != want {
                    h[i] = want;
                    changed = true;
                }
            }
        }
        h
    }
}

/// One processing level of a [`TreeBatch`].
#[derive(Debug, Clone)]
pub struct TreeLevel {
    /// Global node ids processed at this level.
    pub nodes: IntTensor,
    /// For each node at this level: global ids of its (up to 2) children,
    /// or -1 padding. Shape `[level_size, max_children]`, flattened.
    pub child_ids: IntTensor,
    /// Maximum child count at this level.
    pub max_children: usize,
}

/// Many trees batched for level-parallel bottom-up evaluation.
#[derive(Debug, Clone)]
pub struct TreeBatch {
    levels: Vec<TreeLevel>,
    words: IntTensor,
    labels: IntTensor,
    root_ids: IntTensor,
    total_nodes: usize,
}

impl TreeBatch {
    /// Batches trees, assigning each node a global id and grouping nodes of
    /// equal height into levels (all leaves first, then height 1, …).
    ///
    /// # Errors
    /// Returns an error for an empty tree list.
    pub fn from_trees(trees: &[Tree]) -> Result<Self> {
        if trees.is_empty() {
            return Err(TensorError::InvalidArgument {
                op: "TreeBatch::from_trees",
                reason: "empty tree list".to_string(),
            });
        }
        let mut words = Vec::new();
        let mut labels = Vec::new();
        let mut root_ids = Vec::new();
        // (height, global_id, global children ids)
        let mut annotated: Vec<(usize, usize, Vec<usize>)> = Vec::new();
        let mut offset = 0usize;
        let mut max_height = 0usize;
        for tree in trees {
            let heights = tree.heights();
            for (i, node) in tree.nodes().iter().enumerate() {
                let gid = offset + i;
                words.push(node.word.unwrap_or(-1));
                labels.push(node.label);
                let children: Vec<usize> =
                    node.children.iter().map(|&c| offset + c).collect();
                max_height = max_height.max(heights[i]);
                annotated.push((heights[i], gid, children));
            }
            root_ids.push((offset + tree.root()) as i64);
            offset += tree.len();
        }
        let mut levels = Vec::with_capacity(max_height + 1);
        for h in 0..=max_height {
            let members: Vec<&(usize, usize, Vec<usize>)> =
                annotated.iter().filter(|(hh, _, _)| *hh == h).collect();
            if members.is_empty() {
                continue;
            }
            let max_children = members
                .iter()
                .map(|(_, _, c)| c.len())
                .max()
                .unwrap_or(0)
                .max(1);
            let node_ids: Vec<i64> = members.iter().map(|(_, g, _)| *g as i64).collect();
            let mut child_ids = Vec::with_capacity(members.len() * max_children);
            for (_, _, children) in &members {
                for j in 0..max_children {
                    child_ids.push(children.get(j).map_or(-1, |&c| c as i64));
                }
            }
            let len = node_ids.len();
            levels.push(TreeLevel {
                nodes: IntTensor::from_vec(&[len], node_ids)?,
                child_ids: IntTensor::from_vec(&[len * max_children], child_ids)?,
                max_children,
            });
        }
        let n_words = words.len();
        let n_roots = root_ids.len();
        Ok(TreeBatch {
            levels,
            words: IntTensor::from_vec(&[n_words], words)?,
            labels: IntTensor::from_vec(&[n_words], labels)?,
            root_ids: IntTensor::from_vec(&[n_roots], root_ids)?,
            total_nodes: offset,
        })
    }

    /// Levels in bottom-up order (leaves first).
    pub fn levels(&self) -> &[TreeLevel] {
        &self.levels
    }

    /// Word id per global node (-1 for internal nodes).
    pub fn words(&self) -> &IntTensor {
        &self.words
    }

    /// Label per global node.
    pub fn labels(&self) -> &IntTensor {
        &self.labels
    }

    /// Global id of each tree's root.
    pub fn root_ids(&self) -> &IntTensor {
        &self.root_ids
    }

    /// Total node count across all trees.
    pub fn total_nodes(&self) -> usize {
        self.total_nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(word: i64, label: i64) -> TreeNode {
        TreeNode {
            children: vec![],
            word: Some(word),
            label,
        }
    }

    fn internal(children: Vec<usize>, label: i64) -> TreeNode {
        TreeNode {
            children,
            word: None,
            label,
        }
    }

    fn small_tree() -> Tree {
        // (w0 w1) w2 → root combines node3=(0,1) and 2.
        Tree::new(
            vec![
                leaf(10, 0),
                leaf(11, 1),
                leaf(12, 0),
                internal(vec![0, 1], 1),
                internal(vec![3, 2], 2),
            ],
            4,
        )
        .unwrap()
    }

    #[test]
    fn heights_are_bottom_up() {
        let t = small_tree();
        assert_eq!(t.heights(), vec![0, 0, 0, 1, 2]);
        assert_eq!(t.root(), 4);
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn tree_validation() {
        assert!(Tree::new(vec![leaf(0, 0)], 3).is_err());
        assert!(Tree::new(vec![internal(vec![5], 0)], 0).is_err());
        assert!(Tree::new(vec![internal(vec![0], 0)], 0).is_err()); // self-child
    }

    #[test]
    fn batch_levels_group_by_height() {
        let batch = TreeBatch::from_trees(&[small_tree(), small_tree()]).unwrap();
        assert_eq!(batch.total_nodes(), 10);
        assert_eq!(batch.levels().len(), 3);
        // Level 0: 6 leaves from both trees.
        assert_eq!(batch.levels()[0].nodes.numel(), 6);
        // Level 1: one internal node per tree.
        assert_eq!(batch.levels()[1].nodes.numel(), 2);
        assert_eq!(batch.levels()[1].max_children, 2);
        // Children of the level-1 node of tree 2 are offset by 5.
        assert_eq!(batch.levels()[1].child_ids.as_slice(), &[0, 1, 5, 6]);
        assert_eq!(batch.root_ids().as_slice(), &[4, 9]);
    }

    #[test]
    fn batch_requires_trees() {
        assert!(TreeBatch::from_trees(&[]).is_err());
    }
}
