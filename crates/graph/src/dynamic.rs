//! Dynamic / spatio-temporal graphs.
//!
//! Two flavors appear in the suite:
//!
//! * [`SpatioTemporal`] — a fixed spatial graph whose node *signals* evolve
//!   over time (traffic sensor networks; STGCN's input), sampled as sliding
//!   windows.
//! * [`DynamicGraph`] — a sequence of timestamped snapshots whose edge
//!   structure itself evolves (social/communication networks).

use gnnmark_tensor::{Tensor, TensorError};

use crate::{Graph, Result};

/// A fixed graph with a time series of node signals.
///
/// `signal[t]` is the `[nodes, channels]` observation at timestep `t`.
#[derive(Debug, Clone)]
pub struct SpatioTemporal {
    graph: Graph,
    signal: Vec<Tensor>,
}

impl SpatioTemporal {
    /// Builds a spatio-temporal dataset.
    ///
    /// # Errors
    /// Returns an error if any timestep's signal does not match the graph's
    /// node count or if timesteps disagree on channel width.
    pub fn new(graph: Graph, signal: Vec<Tensor>) -> Result<Self> {
        let channels = signal.first().map(|t| t.dim(1));
        for (t, s) in signal.iter().enumerate() {
            if s.rank() != 2 || s.dim(0) != graph.num_nodes() || Some(s.dim(1)) != channels {
                return Err(TensorError::InvalidArgument {
                    op: "SpatioTemporal::new",
                    reason: format!("signal at t={t} has shape {:?}", s.dims()),
                });
            }
        }
        Ok(SpatioTemporal { graph, signal })
    }

    /// The (static) spatial graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of timesteps.
    pub fn num_steps(&self) -> usize {
        self.signal.len()
    }

    /// Signal channels per node.
    pub fn channels(&self) -> usize {
        self.signal.first().map_or(0, |t| t.dim(1))
    }

    /// Signal at a timestep.
    ///
    /// # Panics
    /// Panics if `t` is out of range.
    pub fn signal(&self, t: usize) -> &Tensor {
        &self.signal[t]
    }

    /// Extracts a training window: input of `history` steps and target of
    /// the following `horizon` steps, both as `[steps, nodes, channels]`
    /// stacked tensors flattened to `[steps, nodes*channels]`.
    ///
    /// # Errors
    /// Returns an error if the window does not fit the series.
    pub fn window(&self, start: usize, history: usize, horizon: usize) -> Result<(Tensor, Tensor)> {
        let end = start + history + horizon;
        if end > self.num_steps() {
            return Err(TensorError::IndexOutOfBounds {
                op: "SpatioTemporal::window",
                index: end,
                bound: self.num_steps(),
            });
        }
        let stack = |lo: usize, hi: usize| -> Result<Tensor> {
            let parts: Vec<Tensor> = (lo..hi)
                .map(|t| {
                    let s = &self.signal[t];
                    s.reshape(&[1, s.numel()])
                })
                .collect::<Result<_>>()?;
            let refs: Vec<&Tensor> = parts.iter().collect();
            Tensor::concat_rows(&refs)
        };
        Ok((
            stack(start, start + history)?,
            stack(start + history, end)?,
        ))
    }

    /// Number of distinct `(history, horizon)` windows available.
    pub fn num_windows(&self, history: usize, horizon: usize) -> usize {
        self.num_steps().saturating_sub(history + horizon) + 1
    }
}

/// A timestamped snapshot of an evolving graph.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Time index of this snapshot.
    pub time: usize,
    /// Graph structure and features at this time.
    pub graph: Graph,
}

/// A dynamic graph: an ordered sequence of structural snapshots.
#[derive(Debug, Clone, Default)]
pub struct DynamicGraph {
    snapshots: Vec<Snapshot>,
}

impl DynamicGraph {
    /// Creates an empty dynamic graph.
    pub fn new() -> Self {
        DynamicGraph::default()
    }

    /// Appends a snapshot (times must be non-decreasing).
    ///
    /// # Errors
    /// Returns an error if `time` precedes the last snapshot.
    pub fn push(&mut self, time: usize, graph: Graph) -> Result<()> {
        if let Some(last) = self.snapshots.last() {
            if time < last.time {
                return Err(TensorError::InvalidArgument {
                    op: "DynamicGraph::push",
                    reason: format!("time {time} precedes {}", last.time),
                });
            }
        }
        self.snapshots.push(Snapshot { time, graph });
        Ok(())
    }

    /// Number of snapshots.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// `true` if there are no snapshots.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// The snapshots in time order.
    pub fn snapshots(&self) -> &[Snapshot] {
        &self.snapshots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_st() -> SpatioTemporal {
        let g =
            Graph::from_undirected_edges(2, &[(0, 1)], Tensor::ones(&[2, 1])).unwrap();
        let signal = (0..10)
            .map(|t| Tensor::full(&[2, 1], t as f32))
            .collect();
        SpatioTemporal::new(g, signal).unwrap()
    }

    #[test]
    fn windows() {
        let st = tiny_st();
        assert_eq!(st.num_steps(), 10);
        assert_eq!(st.channels(), 1);
        let (x, y) = st.window(2, 3, 2).unwrap();
        assert_eq!(x.dims(), &[3, 2]);
        assert_eq!(y.dims(), &[2, 2]);
        assert_eq!(x.get(&[0, 0]), 2.0);
        assert_eq!(y.get(&[0, 0]), 5.0);
        assert_eq!(st.num_windows(3, 2), 6);
        assert!(st.window(8, 3, 2).is_err());
    }

    #[test]
    fn signal_shape_validated() {
        let g =
            Graph::from_undirected_edges(2, &[(0, 1)], Tensor::ones(&[2, 1])).unwrap();
        let bad = vec![Tensor::ones(&[3, 1])];
        assert!(SpatioTemporal::new(g.clone(), bad).is_err());
        let mixed = vec![Tensor::ones(&[2, 1]), Tensor::ones(&[2, 2])];
        assert!(SpatioTemporal::new(g, mixed).is_err());
    }

    #[test]
    fn dynamic_graph_time_ordering() {
        let g =
            Graph::from_undirected_edges(2, &[(0, 1)], Tensor::ones(&[2, 1])).unwrap();
        let mut d = DynamicGraph::new();
        d.push(0, g.clone()).unwrap();
        d.push(5, g.clone()).unwrap();
        assert!(d.push(3, g).is_err());
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
        assert_eq!(d.snapshots()[1].time, 5);
    }
}
