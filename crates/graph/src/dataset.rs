//! The `GraphDataset` abstraction: a uniform view over node-classification
//! graphs that mini-batch training iterates, whether the graph lives in RAM
//! ([`InMemoryDataset`]) or on disk ([`crate::stream::StreamGraph`]).
//!
//! Two traits split the concern:
//!
//! * [`CsrSource`] — random access to the rows of a (normalized) adjacency
//!   matrix. The fanout sampling engine ([`crate::fanout`]) only needs this,
//!   so it works identically over an in-RAM [`gnnmark_tensor::CsrMatrix`]
//!   and an out-of-core chunked store.
//! * [`GraphDataset`] — adds feature/label gathering and metadata, which is
//!   what a training loop needs on top of sampling.

use gnnmark_tensor::{CsrMatrix, IntTensor, Tensor, TensorError};

use crate::{Graph, Result};

/// Random access to the rows of a sparse `[n × n]` matrix.
///
/// Implementations must be deterministic: the same `node` always yields the
/// same neighbor list in the same order (sorted ascending by column for the
/// provided impls, matching [`CsrMatrix`]'s storage order).
pub trait CsrSource {
    /// Number of rows (= nodes).
    fn num_nodes(&self) -> usize;

    /// Total number of stored entries (directed edges).
    fn num_edges(&self) -> u64;

    /// Number of stored entries in `node`'s row.
    ///
    /// # Errors
    /// Returns an error if `node` is out of range or the backing store
    /// fails.
    fn degree(&self, node: usize) -> Result<usize>;

    /// Appends the column indices and values of `node`'s row to `cols` /
    /// `vals` (the buffers are cleared first).
    ///
    /// # Errors
    /// Returns an error if `node` is out of range or the backing store
    /// fails.
    fn row_into(&self, node: usize, cols: &mut Vec<usize>, vals: &mut Vec<f32>) -> Result<()>;
}

impl CsrSource for CsrMatrix {
    fn num_nodes(&self) -> usize {
        self.rows()
    }

    fn num_edges(&self) -> u64 {
        self.nnz() as u64
    }

    fn degree(&self, node: usize) -> Result<usize> {
        if node >= self.rows() {
            return Err(TensorError::InvalidArgument {
                op: "CsrSource::degree",
                reason: format!("node {node} out of range ({})", self.rows()),
            });
        }
        Ok(self.row_nnz(node))
    }

    fn row_into(&self, node: usize, cols: &mut Vec<usize>, vals: &mut Vec<f32>) -> Result<()> {
        if node >= self.rows() {
            return Err(TensorError::InvalidArgument {
                op: "CsrSource::row_into",
                reason: format!("node {node} out of range ({})", self.rows()),
            });
        }
        let (c, v) = self.row(node);
        cols.clear();
        vals.clear();
        cols.extend_from_slice(c);
        vals.extend_from_slice(v);
        Ok(())
    }
}

/// A node-classification graph dataset that mini-batch training can
/// iterate: adjacency rows for sampling, plus feature/label gathering for
/// the sampled node sets.
pub trait GraphDataset {
    /// Dataset name (for logs and figures).
    fn name(&self) -> &str;

    /// Number of nodes.
    fn num_nodes(&self) -> usize;

    /// Node feature width.
    fn feature_dim(&self) -> usize;

    /// Number of label classes (0 if unlabeled).
    fn num_classes(&self) -> usize;

    /// The adjacency rows the sampler draws from (normalized weights).
    fn adjacency(&self) -> &dyn CsrSource;

    /// Gathers the feature rows of `nodes` into a dense `[len × d]` tensor.
    ///
    /// # Errors
    /// Returns an error on out-of-range ids or backing-store failure.
    fn gather_features(&self, nodes: &[i64]) -> Result<Tensor>;

    /// Gathers the labels of `nodes`.
    ///
    /// # Errors
    /// Returns an error on out-of-range ids, missing labels, or
    /// backing-store failure.
    fn gather_labels(&self, nodes: &[i64]) -> Result<IntTensor>;

    /// Bytes this dataset keeps resident in RAM (cache + metadata for
    /// streaming stores; the full graph for in-memory ones).
    fn resident_bytes(&self) -> u64;
}

/// A [`GraphDataset`] backed by an in-RAM [`Graph`] with a precomputed
/// normalized adjacency — the view full-graph workloads already use,
/// repackaged for batched iteration.
#[derive(Debug, Clone)]
pub struct InMemoryDataset {
    name: String,
    graph: Graph,
    norm_adj: CsrMatrix,
    num_classes: usize,
}

impl InMemoryDataset {
    /// Wraps a graph, precomputing the GCN-normalized adjacency
    /// (`Â = D̃^{-1/2}(A+I)D̃^{-1/2}`) the sampler draws from.
    ///
    /// # Errors
    /// Propagates sparse-construction errors.
    pub fn new(name: &str, graph: Graph) -> Result<Self> {
        let norm_adj = graph.normalized_adjacency()?;
        let num_classes = graph
            .labels()
            .map(|l| l.as_slice().iter().map(|&c| c + 1).max().unwrap_or(0) as usize)
            .unwrap_or(0);
        Ok(InMemoryDataset {
            name: name.to_string(),
            graph,
            norm_adj,
            num_classes,
        })
    }

    /// The wrapped graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The precomputed normalized adjacency.
    pub fn norm_adj(&self) -> &CsrMatrix {
        &self.norm_adj
    }
}

impl GraphDataset for InMemoryDataset {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    fn feature_dim(&self) -> usize {
        self.graph.feature_dim()
    }

    fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn adjacency(&self) -> &dyn CsrSource {
        &self.norm_adj
    }

    fn gather_features(&self, nodes: &[i64]) -> Result<Tensor> {
        let idx = IntTensor::from_vec(&[nodes.len()], nodes.to_vec())?;
        self.graph.features().gather_rows(&idx)
    }

    fn gather_labels(&self, nodes: &[i64]) -> Result<IntTensor> {
        let labels = self.graph.labels().ok_or_else(|| TensorError::InvalidArgument {
            op: "InMemoryDataset::gather_labels",
            reason: "graph has no labels".to_string(),
        })?;
        let src = labels.as_slice();
        let mut out = Vec::with_capacity(nodes.len());
        for &n in nodes {
            let i = usize::try_from(n).map_err(|_| TensorError::InvalidArgument {
                op: "InMemoryDataset::gather_labels",
                reason: format!("negative node id {n}"),
            })?;
            let v = *src.get(i).ok_or_else(|| TensorError::InvalidArgument {
                op: "InMemoryDataset::gather_labels",
                reason: format!("node {i} out of range ({})", src.len()),
            })?;
            out.push(v);
        }
        IntTensor::from_vec(&[nodes.len()], out)
    }

    fn resident_bytes(&self) -> u64 {
        let feats = (self.graph.features().numel() * 4) as u64;
        let labels = self.graph.labels().map(|l| l.numel() as u64 * 8).unwrap_or(0);
        self.graph.adjacency().byte_len() + self.norm_adj.byte_len() + feats + labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labeled_path() -> Graph {
        Graph::from_undirected_edges(4, &[(0, 1), (1, 2), (2, 3)], Tensor::from_fn(&[4, 2], |i| i as f32))
            .unwrap()
            .with_labels(IntTensor::from_vec(&[4], vec![0, 1, 1, 0]).unwrap())
            .unwrap()
    }

    #[test]
    fn csr_source_over_matrix() {
        let m = CsrMatrix::from_coo(3, 3, &[(0, 1, 2.0), (0, 2, 3.0), (2, 0, 1.0)]).unwrap();
        assert_eq!(CsrSource::num_nodes(&m), 3);
        assert_eq!(CsrSource::num_edges(&m), 3);
        assert_eq!(m.degree(0).unwrap(), 2);
        let (mut c, mut v) = (Vec::new(), Vec::new());
        m.row_into(0, &mut c, &mut v).unwrap();
        assert_eq!(c, vec![1, 2]);
        assert_eq!(v, vec![2.0, 3.0]);
        assert!(m.row_into(9, &mut c, &mut v).is_err());
    }

    #[test]
    fn in_memory_dataset_gathers() {
        let ds = InMemoryDataset::new("path4", labeled_path()).unwrap();
        assert_eq!(ds.num_nodes(), 4);
        assert_eq!(ds.feature_dim(), 2);
        assert_eq!(ds.num_classes(), 2);
        let f = ds.gather_features(&[2, 0]).unwrap();
        assert_eq!(f.dims(), vec![2, 2]);
        assert_eq!(f.as_slice(), &[4.0, 5.0, 0.0, 1.0]);
        let l = ds.gather_labels(&[3, 1]).unwrap();
        assert_eq!(l.as_slice(), &[0, 1]);
        assert!(ds.gather_labels(&[7]).is_err());
        assert!(ds.resident_bytes() > 0);
    }
}
