//! # gnnmark-graph
//!
//! Graph substrates for the GNNMark reproduction: the three graph families
//! the paper builds its suite around (homogeneous, heterogeneous and
//! dynamic/spatio-temporal graphs), plus trees, block-diagonal graph
//! batching, neighbor/random-walk samplers, the k-WL graph transform used
//! by k-GNNs, and seeded synthetic dataset generators shaped like the
//! paper's datasets (MovieLens, Nowplaying, METR-LA, ogbg-molhiv, AGENDA,
//! PROTEINS, Cora/PubMed/CiteSeer, SST).
//!
//! ## Example
//!
//! ```
//! use gnnmark_graph::datasets::{citation, CitationKind};
//!
//! let g = citation(CitationKind::Cora, 0.1, 7).expect("generator");
//! assert!(g.num_nodes() > 100);
//! let adj = g.normalized_adjacency().expect("well-formed graph");
//! assert_eq!(adj.rows(), g.num_nodes());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batch;
pub mod dataset;
pub mod datasets;
pub mod dynamic;
pub mod fanout;
pub mod hetero;
pub mod homo;
pub mod kwl;
pub mod sampler;
pub mod stream;
pub mod trees;

pub use batch::BatchedGraph;
pub use dataset::{CsrSource, GraphDataset, InMemoryDataset};
pub use dynamic::SpatioTemporal;
pub use fanout::{FanoutSampler, SampledBatch, SampledBlock};
pub use hetero::{HeteroGraph, NodeTypeId, Relation};
pub use homo::Graph;
pub use sampler::EpochBatches;
pub use stream::{StreamGraph, StreamMeta};
pub use trees::{Tree, TreeBatch};

/// Result alias re-used from the tensor crate.
pub type Result<T> = gnnmark_tensor::Result<T>;
