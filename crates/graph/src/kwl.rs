//! k-WL graph transforms for k-GNNs (Morris et al., AAAI 2019).
//!
//! A k-GNN operates on the *k-set graph*: each vertex is a k-element subset
//! of the original vertices; two subsets are adjacent (in the *local*
//! construction) when they share exactly k−1 elements and the differing
//! pair of vertices is an edge of the original graph, or (in the *global*
//! construction) whenever they share k−1 elements. Subset features combine
//! member-node features with the isomorphism type of the induced subgraph.
//!
//! GNNMark includes a low-order (`KGNNL`, k=2) and higher-order (`KGNNH`,
//! k=3 hierarchical) variant to study how cost grows with dimension; the
//! transforms here implement both.

use gnnmark_tensor::Tensor;

use crate::{Graph, Result};

/// How k-sets are connected in the transformed graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KwlConnectivity {
    /// Local construction: differing vertices must be adjacent in the
    /// original graph (sparser; scales to larger k).
    Local,
    /// Global construction: any two sets sharing k−1 vertices are adjacent.
    Global,
}

/// The result of a k-WL transform: the k-set graph plus bookkeeping to map
/// set-vertices back to their member original vertices.
#[derive(Debug, Clone)]
pub struct KSetGraph {
    graph: Graph,
    members: Vec<Vec<usize>>,
    k: usize,
}

impl KSetGraph {
    /// The transformed graph (one node per k-set).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Member original-vertex ids of set-vertex `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn members(&self, i: usize) -> &[usize] {
        &self.members[i]
    }

    /// The order `k` of the construction.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of set-vertices.
    pub fn num_sets(&self) -> usize {
        self.members.len()
    }
}

fn combinations(n: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cur = Vec::with_capacity(k);
    fn rec(start: usize, n: usize, k: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if cur.len() == k {
            out.push(cur.clone());
            return;
        }
        for v in start..n {
            // Prune when not enough vertices remain.
            if n - v < k - cur.len() {
                break;
            }
            cur.push(v);
            rec(v + 1, n, k, cur, out);
            cur.pop();
        }
    }
    rec(0, n, k, &mut cur, &mut out);
    out
}

/// Builds the k-set graph of `graph`.
///
/// Set features are the sum of member node features concatenated with a
/// one-hot-ish isomorphism-type scalar (the induced edge count among
/// members, normalized by `k·(k−1)/2`).
///
/// # Errors
/// Returns an error if `k` is 0 or exceeds the node count.
pub fn kwl_transform(graph: &Graph, k: usize, conn: KwlConnectivity) -> Result<KSetGraph> {
    let n = graph.num_nodes();
    if k == 0 || k > n {
        return Err(gnnmark_tensor::TensorError::InvalidArgument {
            op: "kwl_transform",
            reason: format!("k = {k} invalid for {n} nodes"),
        });
    }
    let sets = combinations(n, k);
    let num_sets = sets.len();
    let d = graph.feature_dim();

    // Adjacency lookup for induced-subgraph typing and local connectivity.
    let is_edge = |a: usize, b: usize| graph.neighbors(a).contains(&b);

    // Features: sum of member features ++ induced edge density.
    let src = graph.features().as_slice();
    let mut feats = vec![0.0f32; num_sets * (d + 1)];
    for (si, set) in sets.iter().enumerate() {
        for &v in set {
            for j in 0..d {
                feats[si * (d + 1) + j] += src[v * d + j];
            }
        }
        let mut edges_in = 0usize;
        for i in 0..k {
            for j in (i + 1)..k {
                if is_edge(set[i], set[j]) {
                    edges_in += 1;
                }
            }
        }
        let max_edges = (k * (k - 1) / 2).max(1);
        feats[si * (d + 1) + d] = edges_in as f32 / max_edges as f32;
    }
    let features = Tensor::from_vec(&[num_sets, d + 1], feats)?;

    // Edges between sets sharing k−1 members.
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for i in 0..num_sets {
        for j in (i + 1)..num_sets {
            let a = &sets[i];
            let b = &sets[j];
            // Sorted sets: count shared members by merge.
            let mut shared = 0usize;
            let (mut x, mut y) = (0usize, 0usize);
            while x < k && y < k {
                match a[x].cmp(&b[y]) {
                    std::cmp::Ordering::Equal => {
                        shared += 1;
                        x += 1;
                        y += 1;
                    }
                    std::cmp::Ordering::Less => x += 1,
                    std::cmp::Ordering::Greater => y += 1,
                }
            }
            if shared != k - 1 {
                continue;
            }
            if conn == KwlConnectivity::Local {
                // The two differing vertices must be adjacent.
                let da = a.iter().find(|v| !b.contains(v)).copied();
                let db = b.iter().find(|v| !a.contains(v)).copied();
                match (da, db) {
                    (Some(u), Some(w)) if is_edge(u, w) => {}
                    _ => continue,
                }
            }
            edges.push((i, j));
        }
    }
    let graph2 = Graph::from_undirected_edges(num_sets, &edges, features)?;
    Ok(KSetGraph {
        graph: graph2,
        members: sets,
        k,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_tail() -> Graph {
        // Triangle 0-1-2 plus tail 2-3.
        Graph::from_undirected_edges(
            4,
            &[(0, 1), (1, 2), (0, 2), (2, 3)],
            Tensor::from_fn(&[4, 2], |i| i as f32),
        )
        .unwrap()
    }

    #[test]
    fn two_set_graph_size() {
        let g = triangle_plus_tail();
        let ks = kwl_transform(&g, 2, KwlConnectivity::Global).unwrap();
        assert_eq!(ks.num_sets(), 6); // C(4,2)
        assert_eq!(ks.k(), 2);
        assert_eq!(ks.graph().feature_dim(), 3); // 2 + isomorphism scalar
        assert_eq!(ks.members(0), &[0, 1]);
    }

    #[test]
    fn local_is_subgraph_of_global() {
        let g = triangle_plus_tail();
        let local = kwl_transform(&g, 2, KwlConnectivity::Local).unwrap();
        let global = kwl_transform(&g, 2, KwlConnectivity::Global).unwrap();
        assert!(local.graph().num_edges() <= global.graph().num_edges());
        assert!(local.graph().num_edges() > 0);
    }

    #[test]
    fn isomorphism_feature_distinguishes_edge_pairs() {
        let g = triangle_plus_tail();
        let ks = kwl_transform(&g, 2, KwlConnectivity::Global).unwrap();
        // Find the set {0,1} (edge) and {1,3} (non-edge).
        let f = ks.graph().features();
        let idx_of = |pair: &[usize]| {
            (0..ks.num_sets())
                .find(|&i| ks.members(i) == pair)
                .unwrap()
        };
        let edge_set = idx_of(&[0, 1]);
        let non_edge_set = idx_of(&[1, 3]);
        assert_eq!(f.get(&[edge_set, 2]), 1.0);
        assert_eq!(f.get(&[non_edge_set, 2]), 0.0);
    }

    #[test]
    fn three_set_graph() {
        let g = triangle_plus_tail();
        let ks = kwl_transform(&g, 3, KwlConnectivity::Global).unwrap();
        assert_eq!(ks.num_sets(), 4); // C(4,3)
        // {0,1,2} is the triangle: density 1.
        let tri = (0..4).find(|&i| ks.members(i) == [0, 1, 2]).unwrap();
        assert_eq!(ks.graph().features().get(&[tri, 2]), 1.0);
    }

    #[test]
    fn validates_k() {
        let g = triangle_plus_tail();
        assert!(kwl_transform(&g, 0, KwlConnectivity::Local).is_err());
        assert!(kwl_transform(&g, 5, KwlConnectivity::Local).is_err());
    }

    #[test]
    fn combinations_count() {
        assert_eq!(combinations(5, 2).len(), 10);
        assert_eq!(combinations(5, 3).len(), 10);
        assert_eq!(combinations(3, 3).len(), 1);
    }
}
