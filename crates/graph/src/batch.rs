//! Block-diagonal batching of many small graphs into one large graph.
//!
//! DGL-style batching (used by Tree-LSTM, DeepGCN and k-GNN in the paper)
//! merges a list of small graphs into a single graph whose adjacency is
//! block-diagonal, so one SpMM aggregates every graph in the batch at once.

use gnnmark_tensor::{IntTensor, Tensor, TensorError};

use crate::{Graph, Result};

/// A batch of small graphs merged into one block-diagonal graph.
#[derive(Debug, Clone)]
pub struct BatchedGraph {
    merged: Graph,
    graph_ids: IntTensor,
    offsets: Vec<usize>,
    graph_labels: Option<IntTensor>,
}

impl BatchedGraph {
    /// Merges graphs into a batch.
    ///
    /// # Errors
    /// Returns an error for an empty list or mismatched feature widths.
    pub fn from_graphs(graphs: &[Graph]) -> Result<Self> {
        if graphs.is_empty() {
            return Err(TensorError::InvalidArgument {
                op: "BatchedGraph::from_graphs",
                reason: "empty graph list".to_string(),
            });
        }
        let d = graphs[0].feature_dim();
        let mut offsets = Vec::with_capacity(graphs.len() + 1);
        let mut triplets = Vec::new();
        let mut ids = Vec::new();
        let mut offset = 0usize;
        offsets.push(0);
        for (gi, g) in graphs.iter().enumerate() {
            if g.feature_dim() != d {
                return Err(TensorError::ShapeMismatch {
                    op: "BatchedGraph::from_graphs",
                    lhs: vec![graphs[0].num_nodes(), d],
                    rhs: vec![g.num_nodes(), g.feature_dim()],
                });
            }
            for r in 0..g.num_nodes() {
                let (cols, vals) = g.adjacency().row(r);
                for (&c, &v) in cols.iter().zip(vals) {
                    triplets.push((offset + r, offset + c, v));
                }
                ids.push(gi as i64);
            }
            offset += g.num_nodes();
            offsets.push(offset);
        }
        let feats: Vec<&Tensor> = graphs.iter().map(Graph::features).collect();
        let features = Tensor::concat_rows(&feats)?;
        let merged = Graph::from_triplets(offset, &triplets, features)?;
        let labels: Option<Vec<i64>> = graphs.iter().map(Graph::graph_label).collect();
        let graph_labels = match labels {
            Some(l) => Some(IntTensor::from_vec(&[graphs.len()], l)?),
            None => None,
        };
        Ok(BatchedGraph {
            merged,
            graph_ids: IntTensor::from_vec(&[offset], ids)?,
            offsets,
            graph_labels,
        })
    }

    /// The merged block-diagonal graph.
    pub fn graph(&self) -> &Graph {
        &self.merged
    }

    /// Mutable access to the merged graph (e.g. to swap features).
    pub fn graph_mut(&mut self) -> &mut Graph {
        &mut self.merged
    }

    /// Per-node graph id (`[total_nodes]`), the scatter index for readout.
    pub fn graph_ids(&self) -> &IntTensor {
        &self.graph_ids
    }

    /// Number of member graphs.
    pub fn num_graphs(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Node range `[start, end)` of member graph `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn node_range(&self, i: usize) -> (usize, usize) {
        (self.offsets[i], self.offsets[i + 1])
    }

    /// Whole-graph labels, if every member graph carries one.
    pub fn graph_labels(&self) -> Option<&IntTensor> {
        self.graph_labels.as_ref()
    }

    /// Mean-pools node rows into per-graph rows (`[num_graphs, d]`) given
    /// node values aligned with the merged graph.
    ///
    /// # Errors
    /// Returns an error if `node_values` rows mismatch the batch.
    pub fn mean_readout(&self, node_values: &Tensor) -> Result<Tensor> {
        if node_values.rank() != 2 || node_values.dim(0) != self.merged.num_nodes() {
            return Err(TensorError::ShapeMismatch {
                op: "BatchedGraph::mean_readout",
                lhs: vec![self.merged.num_nodes()],
                rhs: node_values.dims().to_vec(),
            });
        }
        let sums = node_values.scatter_add_rows(&self.graph_ids, self.num_graphs())?;
        let inv_counts: Vec<f32> = (0..self.num_graphs())
            .map(|i| {
                let (s, e) = self.node_range(i);
                1.0 / (e - s).max(1) as f32
            })
            .collect();
        let inv = Tensor::from_vec(&[self.num_graphs()], inv_counts)?;
        sums.scale_rows(&inv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_graphs() -> Vec<Graph> {
        let g1 = Graph::from_undirected_edges(2, &[(0, 1)], Tensor::full(&[2, 3], 1.0))
            .unwrap()
            .with_graph_label(0);
        let g2 = Graph::from_undirected_edges(3, &[(0, 1), (1, 2)], Tensor::full(&[3, 3], 2.0))
            .unwrap()
            .with_graph_label(1);
        vec![g1, g2]
    }

    #[test]
    fn batch_is_block_diagonal() {
        let b = BatchedGraph::from_graphs(&two_graphs()).unwrap();
        assert_eq!(b.num_graphs(), 2);
        assert_eq!(b.graph().num_nodes(), 5);
        assert_eq!(b.graph().num_edges(), 2 + 4);
        assert_eq!(b.node_range(0), (0, 2));
        assert_eq!(b.node_range(1), (2, 5));
        // No cross-graph edges.
        for r in 0..2 {
            for &c in b.graph().neighbors(r) {
                assert!(c < 2);
            }
        }
        for r in 2..5 {
            for &c in b.graph().neighbors(r) {
                assert!(c >= 2);
            }
        }
        assert_eq!(b.graph_ids().as_slice(), &[0, 0, 1, 1, 1]);
        assert_eq!(b.graph_labels().unwrap().as_slice(), &[0, 1]);
    }

    #[test]
    fn mean_readout_pools_per_graph() {
        let b = BatchedGraph::from_graphs(&two_graphs()).unwrap();
        let values = b.graph().features().clone();
        let pooled = b.mean_readout(&values).unwrap();
        assert_eq!(pooled.dims(), &[2, 3]);
        assert!((pooled.get(&[0, 0]) - 1.0).abs() < 1e-6);
        assert!((pooled.get(&[1, 0]) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn rejects_bad_batches() {
        assert!(BatchedGraph::from_graphs(&[]).is_err());
        let g1 = Graph::from_undirected_edges(1, &[], Tensor::ones(&[1, 2])).unwrap();
        let g2 = Graph::from_undirected_edges(1, &[], Tensor::ones(&[1, 3])).unwrap();
        assert!(BatchedGraph::from_graphs(&[g1, g2]).is_err());
    }
}
