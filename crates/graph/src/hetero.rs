//! Heterogeneous graphs: multiple node types connected by typed relations.
//!
//! PinSAGE-style recommendation operates on a bipartite user–item graph;
//! GraphWriter operates on a knowledge graph with entity and relation
//! types. Both are instances of [`HeteroGraph`].

use std::collections::HashMap;

use gnnmark_tensor::{CsrMatrix, Tensor, TensorError};

use crate::Result;

/// Identifier of a node type within a [`HeteroGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeTypeId(pub usize);

/// A typed edge set between two node types, stored as CSR from source to
/// destination.
#[derive(Debug, Clone)]
pub struct Relation {
    name: String,
    src: NodeTypeId,
    dst: NodeTypeId,
    edges: CsrMatrix,
}

impl Relation {
    /// Relation name (e.g. `"rated"`, `"listened"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Source node type.
    pub fn src(&self) -> NodeTypeId {
        self.src
    }

    /// Destination node type.
    pub fn dst(&self) -> NodeTypeId {
        self.dst
    }

    /// The CSR edge structure (`[|src|, |dst|]`).
    pub fn edges(&self) -> &CsrMatrix {
        &self.edges
    }
}

#[derive(Debug, Clone)]
struct NodeType {
    name: String,
    features: Tensor,
}

/// A heterogeneous graph: named node types with features, and named typed
/// relations between them.
#[derive(Debug, Clone, Default)]
pub struct HeteroGraph {
    node_types: Vec<NodeType>,
    relations: Vec<Relation>,
    type_by_name: HashMap<String, NodeTypeId>,
}

impl HeteroGraph {
    /// Creates an empty heterogeneous graph.
    pub fn new() -> Self {
        HeteroGraph::default()
    }

    /// Adds a node type with its feature matrix (`[count, dim]`).
    ///
    /// # Errors
    /// Returns an error for duplicate names or non-matrix features.
    pub fn add_node_type(
        &mut self,
        name: impl Into<String>,
        features: Tensor,
    ) -> Result<NodeTypeId> {
        let name = name.into();
        if self.type_by_name.contains_key(&name) {
            return Err(TensorError::InvalidArgument {
                op: "HeteroGraph::add_node_type",
                reason: format!("duplicate node type `{name}`"),
            });
        }
        if features.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "HeteroGraph::add_node_type",
                expected: 2,
                actual: features.rank(),
            });
        }
        let id = NodeTypeId(self.node_types.len());
        self.type_by_name.insert(name.clone(), id);
        self.node_types.push(NodeType { name, features });
        Ok(id)
    }

    /// Adds a typed relation from weighted `(src, dst, w)` triplets.
    ///
    /// # Errors
    /// Returns an error for unknown type ids or out-of-range endpoints.
    pub fn add_relation(
        &mut self,
        name: impl Into<String>,
        src: NodeTypeId,
        dst: NodeTypeId,
        triplets: &[(usize, usize, f32)],
    ) -> Result<usize> {
        let src_n = self.num_nodes_checked(src)?;
        let dst_n = self.num_nodes_checked(dst)?;
        let edges = CsrMatrix::from_coo(src_n, dst_n, triplets)?;
        self.relations.push(Relation {
            name: name.into(),
            src,
            dst,
            edges,
        });
        Ok(self.relations.len() - 1)
    }

    fn num_nodes_checked(&self, ty: NodeTypeId) -> Result<usize> {
        self.node_types
            .get(ty.0)
            .map(|t| t.features.dim(0))
            .ok_or(TensorError::IndexOutOfBounds {
                op: "HeteroGraph",
                index: ty.0,
                bound: self.node_types.len(),
            })
    }

    /// Looks up a node type by name.
    pub fn node_type(&self, name: &str) -> Option<NodeTypeId> {
        self.type_by_name.get(name).copied()
    }

    /// Name of a node type.
    ///
    /// # Panics
    /// Panics if the id is invalid.
    pub fn type_name(&self, ty: NodeTypeId) -> &str {
        &self.node_types[ty.0].name
    }

    /// Number of node types.
    pub fn num_node_types(&self) -> usize {
        self.node_types.len()
    }

    /// Number of relations.
    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }

    /// Node count of a type.
    ///
    /// # Panics
    /// Panics if the id is invalid.
    pub fn num_nodes(&self, ty: NodeTypeId) -> usize {
        self.node_types[ty.0].features.dim(0)
    }

    /// Total node count across all types.
    pub fn total_nodes(&self) -> usize {
        self.node_types.iter().map(|t| t.features.dim(0)).sum()
    }

    /// Total directed edge count across all relations.
    pub fn total_edges(&self) -> usize {
        self.relations.iter().map(|r| r.edges.nnz()).sum()
    }

    /// Feature matrix of a type.
    ///
    /// # Panics
    /// Panics if the id is invalid.
    pub fn features(&self, ty: NodeTypeId) -> &Tensor {
        &self.node_types[ty.0].features
    }

    /// The relations, in insertion order.
    pub fn relations(&self) -> &[Relation] {
        &self.relations
    }

    /// Finds a relation by name.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.relations.iter().find(|r| r.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bipartite() -> (HeteroGraph, NodeTypeId, NodeTypeId) {
        let mut g = HeteroGraph::new();
        let users = g.add_node_type("user", Tensor::ones(&[3, 8])).unwrap();
        let items = g.add_node_type("item", Tensor::ones(&[5, 16])).unwrap();
        g.add_relation(
            "rated",
            users,
            items,
            &[(0, 1, 5.0), (1, 4, 3.0), (2, 0, 1.0)],
        )
        .unwrap();
        (g, users, items)
    }

    #[test]
    fn construction() {
        let (g, users, items) = bipartite();
        assert_eq!(g.num_node_types(), 2);
        assert_eq!(g.num_nodes(users), 3);
        assert_eq!(g.num_nodes(items), 5);
        assert_eq!(g.total_nodes(), 8);
        assert_eq!(g.total_edges(), 3);
        assert_eq!(g.type_name(users), "user");
        assert_eq!(g.node_type("item"), Some(items));
        assert!(g.node_type("missing").is_none());
    }

    #[test]
    fn relation_lookup() {
        let (g, users, items) = bipartite();
        let r = g.relation("rated").unwrap();
        assert_eq!(r.src(), users);
        assert_eq!(r.dst(), items);
        assert_eq!(r.edges().nnz(), 3);
        assert_eq!(r.name(), "rated");
    }

    #[test]
    fn rejects_duplicates_and_bad_edges() {
        let (mut g, users, _) = bipartite();
        assert!(g.add_node_type("user", Tensor::ones(&[1, 1])).is_err());
        assert!(g
            .add_relation("self", users, users, &[(0, 9, 1.0)])
            .is_err());
        assert!(g
            .add_relation("bad", NodeTypeId(9), users, &[])
            .is_err());
    }
}
