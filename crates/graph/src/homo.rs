//! Homogeneous graphs: a single node type with CSR adjacency, node
//! features and (optionally) node labels.

use gnnmark_tensor::{CsrMatrix, IntTensor, Tensor, TensorError};

use crate::Result;

/// A homogeneous graph with node features.
///
/// The adjacency is stored as CSR over `f32` edge weights; citation
/// networks, social graphs and molecule graphs all use this type.
#[derive(Debug, Clone)]
pub struct Graph {
    adjacency: CsrMatrix,
    features: Tensor,
    labels: Option<IntTensor>,
    graph_label: Option<i64>,
}

impl Graph {
    /// Builds a graph from an undirected edge list (each pair is inserted
    /// in both directions) and node features.
    ///
    /// # Errors
    /// Returns an error if edges reference nodes outside the feature matrix
    /// or features are not rank 2.
    pub fn from_undirected_edges(
        num_nodes: usize,
        edges: &[(usize, usize)],
        features: Tensor,
    ) -> Result<Self> {
        let mut triplets = Vec::with_capacity(edges.len() * 2);
        for &(a, b) in edges {
            triplets.push((a, b, 1.0));
            if a != b {
                triplets.push((b, a, 1.0));
            }
        }
        Self::from_triplets(num_nodes, &triplets, features)
    }

    /// Builds a directed graph from weighted triplets `(src, dst, w)`.
    ///
    /// # Errors
    /// Returns an error on out-of-range endpoints or malformed features.
    pub fn from_triplets(
        num_nodes: usize,
        triplets: &[(usize, usize, f32)],
        features: Tensor,
    ) -> Result<Self> {
        if features.rank() != 2 || features.dim(0) != num_nodes {
            return Err(TensorError::InvalidArgument {
                op: "Graph::from_triplets",
                reason: format!(
                    "features {:?} do not match {num_nodes} nodes",
                    features.dims()
                ),
            });
        }
        let adjacency = CsrMatrix::from_coo(num_nodes, num_nodes, triplets)?;
        Ok(Graph {
            adjacency,
            features,
            labels: None,
            graph_label: None,
        })
    }

    /// Attaches per-node class labels.
    ///
    /// # Errors
    /// Returns an error if the label count differs from the node count.
    pub fn with_labels(mut self, labels: IntTensor) -> Result<Self> {
        if labels.numel() != self.num_nodes() {
            return Err(TensorError::InvalidArgument {
                op: "Graph::with_labels",
                reason: format!(
                    "{} labels for {} nodes",
                    labels.numel(),
                    self.num_nodes()
                ),
            });
        }
        self.labels = Some(labels);
        Ok(self)
    }

    /// Attaches a whole-graph label (for graph classification tasks).
    pub fn with_graph_label(mut self, label: i64) -> Self {
        self.graph_label = Some(label);
        self
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adjacency.rows()
    }

    /// Number of stored directed edges.
    pub fn num_edges(&self) -> usize {
        self.adjacency.nnz()
    }

    /// Node feature width.
    pub fn feature_dim(&self) -> usize {
        self.features.dim(1)
    }

    /// The raw adjacency matrix.
    pub fn adjacency(&self) -> &CsrMatrix {
        &self.adjacency
    }

    /// The node feature matrix (`[n, d]`).
    pub fn features(&self) -> &Tensor {
        &self.features
    }

    /// Replaces the node feature matrix.
    ///
    /// # Errors
    /// Returns an error if the row count changes.
    pub fn set_features(&mut self, features: Tensor) -> Result<()> {
        if features.rank() != 2 || features.dim(0) != self.num_nodes() {
            return Err(TensorError::InvalidArgument {
                op: "Graph::set_features",
                reason: "feature rows must equal node count".to_string(),
            });
        }
        self.features = features;
        Ok(())
    }

    /// Per-node class labels, if attached.
    pub fn labels(&self) -> Option<&IntTensor> {
        self.labels.as_ref()
    }

    /// Whole-graph label, if attached.
    pub fn graph_label(&self) -> Option<i64> {
        self.graph_label
    }

    /// Out-neighbors of `node` (column indices of its adjacency row).
    ///
    /// # Panics
    /// Panics if `node` is out of range.
    pub fn neighbors(&self, node: usize) -> &[usize] {
        self.adjacency.row(node).0
    }

    /// Out-degree of every node.
    pub fn degrees(&self) -> Vec<usize> {
        (0..self.num_nodes())
            .map(|n| self.adjacency.row_nnz(n))
            .collect()
    }

    /// The GCN-normalized adjacency with self-loops:
    /// `Â = D̃^{-1/2} (A + I) D̃^{-1/2}`.
    ///
    /// # Errors
    /// Propagates sparse-construction errors (cannot occur for a valid
    /// graph).
    pub fn normalized_adjacency(&self) -> Result<CsrMatrix> {
        let n = self.num_nodes();
        let mut triplets: Vec<(usize, usize, f32)> = Vec::with_capacity(self.num_edges() + n);
        for r in 0..n {
            let (cols, vals) = self.adjacency.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                triplets.push((r, c, v));
            }
            triplets.push((r, r, 1.0));
        }
        // Degrees of A + I.
        let mut deg = vec![0.0f32; n];
        for &(r, _, v) in &triplets {
            deg[r] += v.abs();
        }
        let inv_sqrt: Vec<f32> = deg
            .iter()
            .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
            .collect();
        for t in &mut triplets {
            t.2 *= inv_sqrt[t.0] * inv_sqrt[t.1];
        }
        CsrMatrix::from_coo(n, n, &triplets)
    }

    /// Row-normalized adjacency `D^{-1} A` (mean aggregation).
    ///
    /// # Errors
    /// Propagates sparse-construction errors.
    pub fn mean_adjacency(&self) -> Result<CsrMatrix> {
        let n = self.num_nodes();
        let mut triplets: Vec<(usize, usize, f32)> = Vec::with_capacity(self.num_edges());
        for r in 0..n {
            let (cols, vals) = self.adjacency.row(r);
            let deg = cols.len().max(1) as f32;
            for (&c, &v) in cols.iter().zip(vals) {
                triplets.push((r, c, v / deg));
            }
        }
        CsrMatrix::from_coo(n, n, &triplets)
    }

    /// Fraction of adjacency entries that are zero (graph sparsity).
    pub fn density(&self) -> f64 {
        let n = self.num_nodes();
        if n == 0 {
            return 0.0;
        }
        self.num_edges() as f64 / (n as f64 * n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph() -> Graph {
        // 0 - 1 - 2
        Graph::from_undirected_edges(3, &[(0, 1), (1, 2)], Tensor::ones(&[3, 4])).unwrap()
    }

    #[test]
    fn construction_and_counts() {
        let g = path_graph();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 4); // both directions
        assert_eq!(g.feature_dim(), 4);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.degrees(), vec![1, 2, 1]);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(Graph::from_undirected_edges(2, &[(0, 5)], Tensor::ones(&[2, 1])).is_err());
        assert!(Graph::from_undirected_edges(2, &[], Tensor::ones(&[3, 1])).is_err());
        let g = path_graph();
        assert!(g
            .clone()
            .with_labels(IntTensor::from_vec(&[2], vec![0, 1]).unwrap())
            .is_err());
    }

    #[test]
    fn normalized_adjacency_rows_behave() {
        let g = path_graph();
        let a = g.normalized_adjacency().unwrap();
        // Self-loops present.
        let d = a.to_dense();
        assert!(d.get(&[0, 0]) > 0.0);
        assert!(d.get(&[1, 1]) > 0.0);
        // Symmetric for undirected input.
        assert!((d.get(&[0, 1]) - d.get(&[1, 0])).abs() < 1e-6);
        // Known value: deg̃(0)=2, deg̃(1)=3 → Â₀₁ = 1/√6.
        assert!((d.get(&[0, 1]) - 1.0 / 6.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn mean_adjacency_rows_sum_to_one() {
        let g = path_graph();
        let a = g.mean_adjacency().unwrap().to_dense();
        for r in 0..3 {
            let s: f32 = (0..3).map(|c| a.get(&[r, c])).sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn labels_roundtrip() {
        let g = path_graph()
            .with_labels(IntTensor::from_vec(&[3], vec![0, 1, 2]).unwrap())
            .unwrap()
            .with_graph_label(1);
        assert_eq!(g.labels().unwrap().as_slice(), &[0, 1, 2]);
        assert_eq!(g.graph_label(), Some(1));
    }

    #[test]
    fn density_of_path() {
        let g = path_graph();
        assert!((g.density() - 4.0 / 9.0).abs() < 1e-12);
    }
}
