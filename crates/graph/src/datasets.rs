//! Seeded synthetic dataset generators shaped like the GNNMark datasets.
//!
//! The paper's datasets are public but large; what its characterization
//! actually depends on are their *structural knobs*: node/edge counts,
//! feature width (PSAGE's element-wise share jumps from 36 % to 78 % when
//! features grow 10×), degree skew (drives divergence and cache behavior),
//! feature sparsity (drives transfer sparsity) and graph type. Each
//! generator here reproduces those knobs at a configurable scale and is
//! fully deterministic given a seed.

use gnnmark_tensor::{IntTensor, Tensor, TensorError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dynamic::SpatioTemporal;
use crate::hetero::{HeteroGraph, NodeTypeId};
use crate::trees::{Tree, TreeNode};
use crate::{Graph, Result};

/// Generates a Barabási–Albert preferential-attachment edge list:
/// power-law degree distribution like real citation/social graphs.
pub fn barabasi_albert<R: Rng + ?Sized>(
    n: usize,
    m: usize,
    rng: &mut R,
) -> Vec<(usize, usize)> {
    assert!(m >= 1, "attachment count must be positive");
    let mut edges = Vec::new();
    let mut targets: Vec<usize> = Vec::new(); // node repeated per degree
    let seed_nodes = (m + 1).min(n);
    for i in 0..seed_nodes {
        for j in (i + 1)..seed_nodes {
            edges.push((i, j));
            targets.push(i);
            targets.push(j);
        }
    }
    for v in seed_nodes..n {
        // BTreeSet: deterministic iteration order (HashSet would make the
        // generated structure vary run-to-run).
        let mut chosen = std::collections::BTreeSet::new();
        while chosen.len() < m && chosen.len() < v {
            let t = targets[rng.gen_range(0..targets.len())];
            if t != v {
                chosen.insert(t);
            }
        }
        for &t in &chosen {
            edges.push((v, t));
            targets.push(v);
            targets.push(t);
        }
    }
    edges
}

/// Generates a `[n, d]` binary bag-of-words feature matrix with the given
/// nonzero density (citation features are ~1–2 % dense).
pub fn sparse_binary_features<R: Rng + ?Sized>(
    n: usize,
    d: usize,
    density: f64,
    rng: &mut R,
) -> Tensor {
    Tensor::from_fn(&[n, d], |_| {
        if rng.gen_bool(density) {
            1.0
        } else {
            0.0
        }
    })
}

/// The three citation benchmarks used by ARGA (and GCN evaluation broadly).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CitationKind {
    /// ~2.7 k nodes, 1433-d binary features, 7 classes.
    Cora,
    /// ~3.3 k nodes, 3703-d binary features, 6 classes.
    CiteSeer,
    /// ~19.7 k nodes, 500-d TF-IDF features, 3 classes.
    PubMed,
}

impl CitationKind {
    /// `(nodes, feature_dim, classes, feature_density)` at scale 1.0.
    pub fn profile(self) -> (usize, usize, usize, f64) {
        match self {
            CitationKind::Cora => (2708, 1433, 7, 0.0127),
            CitationKind::CiteSeer => (3327, 3703, 6, 0.0086),
            CitationKind::PubMed => (19717, 500, 3, 0.10),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            CitationKind::Cora => "Cora",
            CitationKind::CiteSeer => "CiteSeer",
            CitationKind::PubMed => "PubMed",
        }
    }
}

/// Generates a citation-style homogeneous graph with class labels.
///
/// `scale` multiplies the node count (feature width is preserved — it is
/// the characterization-relevant knob).
///
/// # Errors
/// Returns an error if `scale` produces fewer than 8 nodes.
pub fn citation(kind: CitationKind, scale: f64, seed: u64) -> Result<Graph> {
    let (base_n, d, classes, density) = kind.profile();
    let n = ((base_n as f64 * scale).round() as usize).max(1);
    if n < 8 {
        return Err(TensorError::InvalidArgument {
            op: "citation",
            reason: format!("scale {scale} yields only {n} nodes"),
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let edges = barabasi_albert(n, 2, &mut rng);
    let features = sparse_binary_features(n, d, density, &mut rng);
    let labels = IntTensor::from_vec(
        &[n],
        (0..n).map(|_| rng.gen_range(0..classes as i64)).collect(),
    )?;
    // Correlate features with labels so training can actually learn:
    // each class gets a handful of "marker" words set with high probability.
    let mut g = Graph::from_undirected_edges(n, &edges, features)?;
    let mut f = g.features().clone();
    {
        let data = f.as_mut_slice();
        let markers_per_class = 8.min(d / classes.max(1)).max(1);
        for (i, &lab) in labels.as_slice().iter().enumerate() {
            for m in 0..markers_per_class {
                let col = (lab as usize * markers_per_class + m) % d;
                if rng.gen_bool(0.75) {
                    data[i * d + col] = 1.0;
                }
            }
        }
    }
    g.set_features(f)?;
    g.with_labels(labels)
}

/// A PinSAGE-style recommendation dataset: a bipartite user–item
/// heterogeneous graph plus the projected item–item co-interaction graph
/// that random-walk sampling operates on.
#[derive(Debug, Clone)]
pub struct Recommendation {
    /// The bipartite interaction graph.
    pub graph: HeteroGraph,
    /// Item–item projection (edges between co-interacted items).
    pub item_item: Graph,
    /// Node type id of users.
    pub users: NodeTypeId,
    /// Node type id of items.
    pub items: NodeTypeId,
}

fn recommendation_like(
    base_users: usize,
    base_items: usize,
    item_dim: usize,
    item_zero_prob: f64,
    scale: f64,
    seed: u64,
) -> Result<Recommendation> {
    let users_n = ((base_users as f64 * scale).round() as usize).max(4);
    let items_n = ((base_items as f64 * scale).round() as usize).max(4);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = HeteroGraph::new();
    let user_feats = Tensor::from_fn(&[users_n, 32], |_| {
        if rng.gen_bool(0.2) {
            rng.gen_range(0.1..1.0)
        } else {
            0.0
        }
    });
    // Item features: dense embeddings-plus-metadata. Width is the MVL/NWP
    // differentiator (the paper's 10× observation).
    let item_feats = Tensor::from_fn(&[items_n, item_dim], |_| {
        if rng.gen_bool(item_zero_prob) {
            0.0
        } else {
            rng.gen_range(-1.0..1.0)
        }
    });
    let users = g.add_node_type("user", user_feats)?;
    let items = g.add_node_type("item", item_feats)?;

    // Zipf-ish item popularity: user interactions preferentially hit
    // popular items (drives skewed gather locality, like real logs).
    let interactions_per_user = 12usize;
    let mut fwd = Vec::new();
    let mut bwd = Vec::new();
    for u in 0..users_n {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..interactions_per_user {
            let r: f64 = rng.gen::<f64>();
            let item = ((items_n as f64) * r * r) as usize % items_n;
            if seen.insert(item) {
                let rating = rng.gen_range(1.0..5.0);
                fwd.push((u, item, rating));
                bwd.push((item, u, rating));
            }
        }
    }
    g.add_relation("interacted", users, items, &fwd)?;
    g.add_relation("interacted_by", items, users, &bwd)?;

    // Item–item projection: co-interaction within each user's list.
    let mut proj = std::collections::BTreeSet::new();
    let mut per_user: Vec<Vec<usize>> = vec![Vec::new(); users_n];
    for &(u, i, _) in &fwd {
        per_user[u].push(i);
    }
    for list in &per_user {
        for w in list.windows(2) {
            let (a, b) = (w[0].min(w[1]), w[0].max(w[1]));
            if a != b {
                proj.insert((a, b));
            }
        }
    }
    let proj_edges: Vec<(usize, usize)> = proj.into_iter().collect();
    let item_item = Graph::from_undirected_edges(
        items_n,
        &proj_edges,
        g.features(items).clone(),
    )?;
    Ok(Recommendation {
        graph: g,
        item_item,
        users,
        items,
    })
}

/// Recommendation dataset with a caller-chosen item feature width — used
/// by the feature-width ablation that sweeps the paper's MVL→NWP (10×)
/// observation continuously.
///
/// # Errors
/// Propagates construction errors for degenerate scales.
pub fn recommendation_with_width(
    item_dim: usize,
    scale: f64,
    seed: u64,
) -> Result<Recommendation> {
    recommendation_like(6040, 3706, item_dim, 0.2, scale, seed)
}

/// MovieLens-like dataset (`MVL`): 64-wide item features.
///
/// # Errors
/// Propagates construction errors for degenerate scales.
pub fn movielens_like(scale: f64, seed: u64) -> Result<Recommendation> {
    // 60-wide features (240 B rows — deliberately not a multiple of the
    // 128 B line, like real metadata vectors) with ~22 % zeros, matching
    // the paper's measured MVL sparsity.
    recommendation_like(6040, 3706, 60, 0.22, scale, seed)
}

/// Nowplaying-like dataset (`NWP`): item features 10× wider than MVL,
/// reproducing the paper's element-wise blow-up observation.
///
/// # Errors
/// Propagates construction errors for degenerate scales.
pub fn nowplaying_like(scale: f64, seed: u64) -> Result<Recommendation> {
    // Denser features than MVL (~11 % zeros), as the paper measures.
    recommendation_like(8000, 5000, 600, 0.11, scale, seed)
}

/// METR-LA-like traffic dataset for STGCN: 207 sensors (scaled), k-nearest
/// sensor graph, and a daily-periodic speed signal with noise.
///
/// # Errors
/// Propagates construction errors for degenerate inputs.
pub fn metr_la_like(scale: f64, num_steps: usize, seed: u64) -> Result<SpatioTemporal> {
    let n = ((207.0 * scale).round() as usize).max(8);
    let mut rng = StdRng::seed_from_u64(seed);
    // Random 2-D sensor layout; connect each sensor to its 4 nearest.
    let pos: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen(), rng.gen())).collect();
    let mut edges = Vec::new();
    for i in 0..n {
        let mut dists: Vec<(usize, f64)> = (0..n)
            .filter(|&j| j != i)
            .map(|j| {
                let dx = pos[i].0 - pos[j].0;
                let dy = pos[i].1 - pos[j].1;
                (j, dx * dx + dy * dy)
            })
            .collect();
        dists.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        for &(j, _) in dists.iter().take(4) {
            edges.push((i, j.max(i).min(j.max(i))));
            edges.push((i.min(j), i.max(j)));
        }
    }
    edges.dedup();
    let static_feats = Tensor::from_fn(&[n, 2], |i| {
        if i % 2 == 0 {
            pos[i / 2].0 as f32
        } else {
            pos[i / 2].1 as f32
        }
    });
    let graph = Graph::from_undirected_edges(n, &edges, static_feats)?;
    // Speed signal: per-sensor base speed + daily sinusoid + rush-hour dips.
    let base: Vec<f32> = (0..n).map(|_| rng.gen_range(40.0..70.0)).collect();
    let phase: Vec<f32> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
    let signal: Vec<Tensor> = (0..num_steps)
        .map(|t| {
            let day = (t % 288) as f32 / 288.0;
            Tensor::from_fn(&[n, 1], |i| {
                let rush = (-((day - 0.35 - 0.02 * phase[i]) * 24.0).powi(2)).exp()
                    + (-((day - 0.72 - 0.02 * phase[i]) * 24.0).powi(2)).exp();
                base[i] - 25.0 * rush + rng.gen_range(-2.0..2.0)
            })
        })
        .collect();
    SpatioTemporal::new(graph, signal)
}

/// ogbg-molhiv-like molecule graphs for DeepGCN: small graphs of 9-d atom
/// features with ring-and-chain structure and a binary activity label.
///
/// # Errors
/// Propagates construction errors.
pub fn molhiv_like(num_graphs: usize, seed: u64) -> Result<Vec<Graph>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..num_graphs)
        .map(|_| {
            let n = rng.gen_range(10..26);
            let mut edges: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
            // Add a few rings.
            for _ in 0..rng.gen_range(1..4) {
                let a = rng.gen_range(0..n);
                let len = rng.gen_range(3..6).min(n - 1);
                let b = (a + len) % n;
                if a != b {
                    edges.push((a.min(b), a.max(b)));
                }
            }
            let feats = Tensor::from_fn(&[n, 9], |flat| {
                let col = flat % 9;
                if col == 0 {
                    rng.gen_range(1.0..8.0) // atomic number bucket
                } else if rng.gen_bool(0.3) {
                    1.0
                } else {
                    0.0
                }
            });
            // Label correlated with ring count so the model can learn.
            let label = i64::from(edges.len() > n);
            Ok(Graph::from_undirected_edges(n, &edges, feats)?.with_graph_label(label))
        })
        .collect()
}

/// PROTEINS-like graphs for k-GNN: small graphs with 3-d node features and
/// a binary (enzyme / non-enzyme) label.
///
/// # Errors
/// Propagates construction errors.
pub fn proteins_like(num_graphs: usize, seed: u64) -> Result<Vec<Graph>> {
    proteins_like_sized(num_graphs, 8, 20, seed)
}

/// PROTEINS-like graphs with an explicit node-count range, used by the
/// higher-order k-GNN whose k-set graphs grow combinatorially.
///
/// # Errors
/// Propagates construction errors.
pub fn proteins_like_sized(
    num_graphs: usize,
    min_nodes: usize,
    max_nodes: usize,
    seed: u64,
) -> Result<Vec<Graph>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..num_graphs)
        .map(|_| {
            let n = rng.gen_range(min_nodes..max_nodes);
            let mut edges = Vec::new();
            for i in 0..n {
                let deg = rng.gen_range(1..4);
                for _ in 0..deg {
                    let j = rng.gen_range(0..n);
                    if i != j {
                        edges.push((i.min(j), i.max(j)));
                    }
                }
            }
            edges.sort_unstable();
            edges.dedup();
            let feats = Tensor::from_fn(&[n, 3], |_| {
                if rng.gen_bool(0.4) {
                    1.0
                } else {
                    0.0
                }
            });
            let label = i64::from(edges.len() * 2 > n * 3);
            Ok(Graph::from_undirected_edges(n, &edges, feats)?.with_graph_label(label))
        })
        .collect()
}

/// One AGENDA-like document: a knowledge graph of entities plus the target
/// abstract as a token sequence (for GraphWriter).
#[derive(Debug, Clone)]
pub struct KnowledgeDoc {
    /// Entity graph; features embed entity types.
    pub graph: Graph,
    /// Target abstract tokens (indices into a shared vocabulary).
    pub target: IntTensor,
    /// Entity ids mentioned, aligned with graph nodes.
    pub entity_ids: IntTensor,
}

/// Generates AGENDA-like knowledge-graph-to-text documents.
///
/// `vocab` is the shared token vocabulary size.
///
/// # Errors
/// Propagates construction errors.
pub fn agenda_like(num_docs: usize, vocab: usize, seed: u64) -> Result<Vec<KnowledgeDoc>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..num_docs)
        .map(|_| {
            let n = rng.gen_range(8..20);
            let edges = barabasi_albert(n, 2, &mut rng);
            let feats = Tensor::from_fn(&[n, 16], |_| {
                if rng.gen_bool(0.25) {
                    rng.gen_range(0.1..1.0)
                } else {
                    0.0
                }
            });
            let graph = Graph::from_undirected_edges(n, &edges, feats)?;
            let len = rng.gen_range(12..30);
            let target = IntTensor::from_vec(
                &[len],
                (0..len).map(|_| rng.gen_range(0..vocab as i64)).collect(),
            )?;
            let entity_ids = IntTensor::from_vec(
                &[n],
                (0..n).map(|_| rng.gen_range(0..vocab as i64)).collect(),
            )?;
            Ok(KnowledgeDoc {
                graph,
                target,
                entity_ids,
            })
        })
        .collect()
}

/// An evolving social-network-like [`crate::dynamic::DynamicGraph`]:
/// starts from a preferential-attachment graph and, per snapshot, adds
/// new members and friendships and drops a few old edges — the "dynamic
/// graph" category of the paper's taxonomy (§II-B) beyond the
/// fixed-topology spatio-temporal case.
///
/// # Errors
/// Propagates construction errors.
pub fn social_snapshots_like(
    base_nodes: usize,
    snapshots: usize,
    seed: u64,
) -> Result<crate::dynamic::DynamicGraph> {
    let mut rng = StdRng::seed_from_u64(seed);
    let max_nodes = base_nodes + snapshots * (base_nodes / 10).max(1);
    let mut edges: Vec<(usize, usize)> = barabasi_albert(base_nodes, 2, &mut rng);
    let mut n = base_nodes;
    let mut dynamic = crate::dynamic::DynamicGraph::new();
    for t in 0..snapshots {
        // Feature = activity vector; re-sampled per snapshot (profiles
        // evolve), padded to the final member count for shape stability.
        let feats = Tensor::from_fn(&[max_nodes, 8], |flat| {
            let node = flat / 8;
            if node < n && rng.gen_bool(0.3) {
                rng.gen_range(0.1..1.0)
            } else {
                0.0
            }
        });
        let graph = Graph::from_undirected_edges(max_nodes, &edges, feats)?;
        dynamic.push(t, graph)?;
        // Evolve: new members attach preferentially; some edges churn out.
        let join = (base_nodes / 10).max(1);
        for _ in 0..join {
            if n >= max_nodes {
                break;
            }
            let degreeish = edges.len().max(1);
            let (a, b) = edges[rng.gen_range(0..degreeish)];
            let target = if rng.gen_bool(0.5) { a } else { b };
            edges.push((n, target));
            n += 1;
        }
        let drop = edges.len() / 20;
        for _ in 0..drop {
            let idx = rng.gen_range(0..edges.len());
            edges.swap_remove(idx);
        }
    }
    Ok(dynamic)
}

/// SST-like sentiment trees for Tree-LSTM: random binarized parse trees
/// whose leaves carry word ids and every node a 5-way sentiment label.
///
/// # Errors
/// Propagates construction errors.
pub fn sst_like(num_trees: usize, vocab: usize, seed: u64) -> Result<Vec<Tree>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..num_trees)
        .map(|_| {
            let num_leaves = rng.gen_range(4..18);
            // Build a random binary tree bottom-up: start with leaves,
            // repeatedly merge two adjacent subtrees.
            let mut nodes: Vec<TreeNode> = Vec::new();
            let mut roots: Vec<usize> = Vec::new();
            for _ in 0..num_leaves {
                nodes.push(TreeNode {
                    children: vec![],
                    word: Some(rng.gen_range(0..vocab as i64)),
                    label: rng.gen_range(0..5),
                });
                roots.push(nodes.len() - 1);
            }
            while roots.len() > 1 {
                let i = rng.gen_range(0..roots.len() - 1);
                let (a, b) = (roots[i], roots[i + 1]);
                nodes.push(TreeNode {
                    children: vec![a, b],
                    word: None,
                    label: rng.gen_range(0..5),
                });
                let merged = nodes.len() - 1;
                roots.remove(i + 1);
                roots[i] = merged;
            }
            Tree::new(nodes, roots[0])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn citation_profiles_match_paper_scale() {
        let g = citation(CitationKind::Cora, 1.0, 7).unwrap();
        assert_eq!(g.num_nodes(), 2708);
        assert_eq!(g.feature_dim(), 1433);
        let labels = g.labels().unwrap();
        assert!(labels.as_slice().iter().all(|&l| (0..7).contains(&l)));
        // Bag-of-words features are highly sparse, like real Cora.
        assert!(g.features().sparsity() > 0.95);
    }

    #[test]
    fn citation_is_deterministic() {
        let a = citation(CitationKind::CiteSeer, 0.05, 3).unwrap();
        let b = citation(CitationKind::CiteSeer, 0.05, 3).unwrap();
        assert_eq!(a.features().as_slice(), b.features().as_slice());
        assert_eq!(a.num_edges(), b.num_edges());
    }

    #[test]
    fn citation_rejects_tiny_scale() {
        assert!(citation(CitationKind::Cora, 0.0001, 1).is_err());
    }

    #[test]
    fn ba_graphs_have_power_law_hubs() {
        let mut rng = StdRng::seed_from_u64(5);
        let edges = barabasi_albert(500, 2, &mut rng);
        let g =
            Graph::from_undirected_edges(500, &edges, Tensor::ones(&[500, 1])).unwrap();
        let degs = g.degrees();
        let max = *degs.iter().max().unwrap();
        let mean = degs.iter().sum::<usize>() as f64 / degs.len() as f64;
        assert!(
            max as f64 > mean * 5.0,
            "expected hub: max {max}, mean {mean}"
        );
    }

    #[test]
    fn recommendation_feature_widths_differ_10x() {
        let mvl = movielens_like(0.02, 11).unwrap();
        let nwp = nowplaying_like(0.02, 11).unwrap();
        let mvl_d = mvl.graph.features(mvl.items).dim(1);
        let nwp_d = nwp.graph.features(nwp.items).dim(1);
        assert_eq!(nwp_d, mvl_d * 10);
        assert!(mvl.item_item.num_edges() > 0);
        assert!(mvl.graph.total_edges() > 0);
    }

    #[test]
    fn metr_la_signal_is_periodic_and_shaped() {
        let st = metr_la_like(0.1, 64, 3).unwrap();
        assert!(st.graph().num_nodes() >= 8);
        assert_eq!(st.num_steps(), 64);
        assert_eq!(st.channels(), 1);
        // Speeds are plausible (positive, below free-flow).
        for t in 0..4 {
            for &v in st.signal(t).as_slice() {
                assert!(v > 0.0 && v < 90.0);
            }
        }
    }

    #[test]
    fn molecules_are_connected_chains_with_labels() {
        let mols = molhiv_like(10, 4).unwrap();
        assert_eq!(mols.len(), 10);
        for m in &mols {
            assert!(m.num_nodes() >= 10);
            assert!(m.graph_label().is_some());
            assert_eq!(m.feature_dim(), 9);
            // Chain backbone keeps everything connected: every node has a
            // neighbor.
            assert!(m.degrees().iter().all(|&d| d > 0));
        }
    }

    #[test]
    fn proteins_and_trees_generate() {
        let prots = proteins_like(6, 5).unwrap();
        assert_eq!(prots.len(), 6);
        assert!(prots.iter().all(|p| p.feature_dim() == 3));

        let trees = sst_like(5, 100, 6).unwrap();
        assert_eq!(trees.len(), 5);
        for t in &trees {
            // Binary tree with L leaves has 2L-1 nodes.
            assert!(t.len() % 2 == 1);
            let leaves = t.nodes().iter().filter(|n| n.children.is_empty()).count();
            assert_eq!(t.len(), 2 * leaves - 1);
        }
    }

    #[test]
    fn agenda_docs_have_graphs_and_targets() {
        let docs = agenda_like(4, 500, 7).unwrap();
        assert_eq!(docs.len(), 4);
        for d in &docs {
            assert!(d.graph.num_nodes() >= 8);
            assert!(d.target.numel() >= 12);
            assert!(d
                .target
                .as_slice()
                .iter()
                .all(|&t| (0..500).contains(&t)));
            assert_eq!(d.entity_ids.numel(), d.graph.num_nodes());
        }
    }

    #[test]
    fn social_snapshots_evolve() {
        let d = social_snapshots_like(40, 5, 9).unwrap();
        assert_eq!(d.len(), 5);
        let first = &d.snapshots()[0];
        let last = &d.snapshots()[4];
        // Stable node-count padding, evolving structure: new members have
        // joined (degree > 0 beyond the original 40) only in later
        // snapshots.
        assert_eq!(first.graph.num_nodes(), last.graph.num_nodes());
        assert_eq!(first.graph.degrees()[41], 0);
        assert!(last.graph.degrees().iter().skip(40).any(|&d| d > 0));
        assert!(last.time > first.time);
    }
}
