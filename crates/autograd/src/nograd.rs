//! Inference-mode guard: a thread-local flag that turns any autograd tape
//! activity into a hard error.
//!
//! Forward-only inference (`gnnmark infer`) must never allocate tape nodes
//! — the whole point of the fast path is that no activation is retained and
//! no backward graph exists. A silent `Tape::push` (via a stray `Var` op or
//! `tape.constant`) would quietly re-grow the tape and invalidate the
//! zero-allocation accounting the inference metrics assert on. With a
//! [`NoGradGuard`] installed, [`crate::Tape`] panics on any push or
//! backward instead.
//!
//! The flag is thread-local, matching the tape itself (tapes are `!Send`
//! and the suite runs one workload per thread), and the guard is RAII with
//! panic-safe restore, like `PrecisionGuard`.

use std::cell::Cell;

thread_local! {
    static INFERENCE_MODE: Cell<bool> = const { Cell::new(false) };
}

/// `true` while a [`NoGradGuard`] is alive on this thread.
pub fn active() -> bool {
    INFERENCE_MODE.with(Cell::get)
}

/// RAII guard enabling inference mode on the current thread for its
/// lifetime. Nesting is allowed; the previous state is restored on drop
/// (including during unwinding, so a panicking inference run cannot leak
/// the mode into the next workload on a pooled thread).
#[derive(Debug)]
pub struct NoGradGuard {
    prev: bool,
}

impl NoGradGuard {
    /// Enters inference mode on this thread.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        let prev = INFERENCE_MODE.with(|f| f.replace(true));
        NoGradGuard { prev }
    }
}

impl Drop for NoGradGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        INFERENCE_MODE.with(|f| f.set(prev));
    }
}

/// Panics when inference mode is active — the choke point [`crate::Tape`]
/// calls from `push` and `backward`.
pub(crate) fn forbid(what: &str) {
    assert!(
        !active(),
        "autograd {what} inside inference mode (NoGradGuard active): \
         forward-only execution must use tensor-level ops, not the tape"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tape;
    use gnnmark_tensor::Tensor;

    #[test]
    fn guard_toggles_and_restores() {
        assert!(!active());
        {
            let _g = NoGradGuard::new();
            assert!(active());
            {
                let _inner = NoGradGuard::new();
                assert!(active());
            }
            assert!(active(), "nested drop restores the outer guard's state");
        }
        assert!(!active());
    }

    #[test]
    fn tape_works_again_after_guard_drops() {
        {
            let _g = NoGradGuard::new();
        }
        let tape = Tape::new();
        let x = tape.leaf(Tensor::ones(&[2]));
        let s = x.sum_all();
        tape.backward(&s).unwrap();
        assert_eq!(x.grad().unwrap().as_slice(), &[1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "inference mode")]
    fn tape_push_is_a_hard_error_under_guard() {
        let _g = NoGradGuard::new();
        let tape = Tape::new();
        let _ = tape.constant(Tensor::ones(&[2]));
    }

    #[test]
    #[should_panic(expected = "inference mode")]
    fn var_op_is_a_hard_error_under_guard() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::ones(&[2]));
        let _g = NoGradGuard::new();
        let _ = x.square();
    }

    #[test]
    #[should_panic(expected = "inference mode")]
    fn backward_is_a_hard_error_under_guard() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::ones(&[2]));
        let s = x.sum_all();
        let _g = NoGradGuard::new();
        let _ = tape.backward(&s);
    }
}
