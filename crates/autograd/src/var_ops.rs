//! Differentiable operations on [`Var`].
//!
//! Each operation computes its forward value through the instrumented
//! tensor engine and registers a backward closure that itself runs through
//! the tensor engine — so profiling a training step observes both halves
//! of every kernel pair (gather ↔ scatter, GEMM ↔ transposed GEMM, …).

use std::rc::Rc;

use gnnmark_tensor::ops::conv::Conv2dSpec;
use gnnmark_tensor::{CsrMatrix, IntTensor, Tensor};
use rand::Rng;

use crate::tape::BackwardFn;
use crate::{Result, Var};

impl Var {
    fn unary(&self, value: Tensor, backward: BackwardFn) -> Var {
        self.tape_handle()
            .push(value, vec![self.id], Some(backward), None)
    }

    fn binary(&self, other: &Var, value: Tensor, backward: BackwardFn) -> Var {
        assert!(self.same_tape(other), "operands belong to different tapes");
        self.tape_handle()
            .push(value, vec![self.id, other.id], Some(backward), None)
    }

    // ----- element-wise binary -------------------------------------------

    /// Element-wise addition.
    ///
    /// # Errors
    /// Propagates shape mismatches from the tensor engine.
    pub fn add(&self, other: &Var) -> Result<Var> {
        let value = self.with_value(|a| other.with_value(|b| a.add(b)))?;
        Ok(self.binary(
            other,
            value,
            Box::new(|up, _, _| Ok(vec![Some(up.clone()), Some(up.clone())])),
        ))
    }

    /// Element-wise subtraction.
    ///
    /// # Errors
    /// Propagates shape mismatches from the tensor engine.
    pub fn sub(&self, other: &Var) -> Result<Var> {
        let value = self.with_value(|a| other.with_value(|b| a.sub(b)))?;
        Ok(self.binary(
            other,
            value,
            Box::new(|up, _, _| Ok(vec![Some(up.clone()), Some(up.neg())])),
        ))
    }

    /// Element-wise multiplication.
    ///
    /// # Errors
    /// Propagates shape mismatches from the tensor engine.
    pub fn mul(&self, other: &Var) -> Result<Var> {
        let value = self.with_value(|a| other.with_value(|b| a.mul(b)))?;
        Ok(self.binary(
            other,
            value,
            Box::new(|up, _, parents| {
                Ok(vec![Some(up.mul(parents[1])?), Some(up.mul(parents[0])?)])
            }),
        ))
    }

    /// Element-wise division.
    ///
    /// # Errors
    /// Propagates shape mismatches from the tensor engine.
    pub fn div(&self, other: &Var) -> Result<Var> {
        let value = self.with_value(|a| other.with_value(|b| a.div(b)))?;
        Ok(self.binary(
            other,
            value,
            Box::new(|up, _, parents| {
                let da = up.div(parents[1])?;
                let db = up
                    .mul(parents[0])?
                    .div(&parents[1].square())?
                    .neg();
                Ok(vec![Some(da), Some(db)])
            }),
        ))
    }

    // ----- element-wise unary --------------------------------------------

    /// Element-wise negation.
    pub fn neg(&self) -> Var {
        let value = self.with_value(Tensor::neg);
        self.unary(value, Box::new(|up, _, _| Ok(vec![Some(up.neg())])))
    }

    /// Adds a scalar to every element.
    pub fn add_scalar(&self, s: f32) -> Var {
        let value = self.with_value(|t| t.add_scalar(s));
        self.unary(value, Box::new(|up, _, _| Ok(vec![Some(up.clone())])))
    }

    /// Multiplies every element by a scalar.
    pub fn mul_scalar(&self, s: f32) -> Var {
        let value = self.with_value(|t| t.mul_scalar(s));
        self.unary(
            value,
            Box::new(move |up, _, _| Ok(vec![Some(up.mul_scalar(s))])),
        )
    }

    /// Rectified linear unit.
    pub fn relu(&self) -> Var {
        let value = self.with_value(Tensor::relu);
        self.unary(
            value,
            Box::new(|up, _, parents| Ok(vec![Some(up.mul(&parents[0].gt_zero_mask())?)])),
        )
    }

    /// Leaky ReLU with fixed negative slope.
    pub fn leaky_relu(&self, alpha: f32) -> Var {
        let value = self.with_value(|t| t.leaky_relu(alpha));
        self.unary(
            value,
            Box::new(move |up, _, parents| {
                let m = parents[0].gt_zero_mask();
                let slope = m.mul_scalar(1.0 - alpha).add_scalar(alpha);
                Ok(vec![Some(up.mul(&slope)?)])
            }),
        )
    }

    /// Parametric ReLU; `alpha` is a (typically single-element) learned
    /// variable broadcast over all elements.
    ///
    /// # Errors
    /// Returns an error if `alpha` is not a single-element variable.
    pub fn prelu(&self, alpha: &Var) -> Result<Var> {
        let a = alpha.with_value(|t| t.item())?;
        let value = self.with_value(|t| t.prelu(a));
        Ok(self.binary(
            alpha,
            value,
            Box::new(move |up, _, parents| {
                let x = parents[0];
                let m = x.gt_zero_mask();
                let slope = m.mul_scalar(1.0 - a).add_scalar(a);
                let dx = up.mul(&slope)?;
                // dα = Σ up ⊙ x over the negative part.
                let neg_mask = m.neg().add_scalar(1.0);
                let dalpha = up.mul(x)?.mul(&neg_mask)?.sum_all();
                let dalpha = dalpha.reshape(&[1])?;
                Ok(vec![Some(dx), Some(dalpha)])
            }),
        ))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self) -> Var {
        let value = self.with_value(Tensor::sigmoid);
        self.unary(
            value,
            Box::new(|up, y, _| {
                let one_minus = y.neg().add_scalar(1.0);
                Ok(vec![Some(up.mul(y)?.mul(&one_minus)?)])
            }),
        )
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> Var {
        let value = self.with_value(Tensor::tanh);
        self.unary(
            value,
            Box::new(|up, y, _| {
                let one_minus_sq = y.square().neg().add_scalar(1.0);
                Ok(vec![Some(up.mul(&one_minus_sq)?)])
            }),
        )
    }

    /// Element-wise exponential.
    pub fn exp(&self) -> Var {
        let value = self.with_value(Tensor::exp);
        self.unary(
            value,
            Box::new(|up, y, _| Ok(vec![Some(up.mul(y)?)])),
        )
    }

    /// Element-wise natural logarithm.
    pub fn ln(&self) -> Var {
        let value = self.with_value(Tensor::ln);
        self.unary(
            value,
            Box::new(|up, _, parents| Ok(vec![Some(up.div(parents[0])?)])),
        )
    }

    /// Element-wise square.
    pub fn square(&self) -> Var {
        let value = self.with_value(Tensor::square);
        self.unary(
            value,
            Box::new(|up, _, parents| {
                Ok(vec![Some(up.mul(&parents[0].mul_scalar(2.0))?)])
            }),
        )
    }

    /// Element-wise square root.
    pub fn sqrt(&self) -> Var {
        let value = self.with_value(Tensor::sqrt);
        self.unary(
            value,
            Box::new(|up, y, _| Ok(vec![Some(up.div(y)?.mul_scalar(0.5))])),
        )
    }

    /// Element-wise reciprocal.
    pub fn recip(&self) -> Var {
        let value = self.with_value(Tensor::recip);
        self.unary(
            value,
            Box::new(|up, y, _| Ok(vec![Some(up.mul(&y.square())?.neg())])),
        )
    }

    /// Extracts columns `[start, end)` of a matrix.
    ///
    /// # Errors
    /// Propagates range errors from the tensor engine.
    pub fn slice_cols(&self, start: usize, end: usize) -> Result<Var> {
        let value = self.with_value(|t| t.slice_cols(start, end))?;
        let dims = self.dims();
        let (n, d) = (dims[0], dims[1]);
        Ok(self.unary(
            value,
            Box::new(move |up, _, _| {
                let left = Tensor::zeros(&[n, start]);
                let right = Tensor::zeros(&[n, d - end]);
                let g = Tensor::concat_cols(&[&left, up, &right])?;
                Ok(vec![Some(g)])
            }),
        ))
    }

    /// Inverted dropout with keep mask drawn from `rng`.
    ///
    /// # Errors
    /// Returns an error if `p` is outside `[0, 1)`.
    pub fn dropout<R: Rng + ?Sized>(&self, p: f32, rng: &mut R) -> Result<Var> {
        if !(0.0..1.0).contains(&p) {
            return Err(gnnmark_tensor::TensorError::InvalidArgument {
                op: "dropout",
                reason: format!("p = {p} outside [0, 1)"),
            });
        }
        if p == 0.0 {
            // Identity; keep the graph shallow.
            let value = self.with_value(Clone::clone);
            return Ok(self.unary(value, Box::new(|up, _, _| Ok(vec![Some(up.clone())]))));
        }
        let dims = self.dims();
        let mask = Tensor::from_fn(&dims, |_| if rng.gen::<f32>() < p { 0.0 } else { 1.0 });
        let value = self.with_value(|t| t.apply_dropout_mask(&mask, p))?;
        Ok(self.unary(
            value,
            Box::new(move |up, _, _| Ok(vec![Some(up.apply_dropout_mask(&mask, p)?)])),
        ))
    }

    // ----- matrix ops ------------------------------------------------------

    /// Matrix product (`[m, k] × [k, n]`).
    ///
    /// The backward pass uses transposed-layout GEMMs (`gemm_nt` /
    /// `gemm_tn`), as cuBLAS does — no transpose kernels are launched.
    ///
    /// # Errors
    /// Propagates shape mismatches from the tensor engine.
    pub fn matmul(&self, other: &Var) -> Result<Var> {
        let value = self.with_value(|a| other.with_value(|b| a.matmul(b)))?;
        Ok(self.binary(
            other,
            value,
            Box::new(|up, _, parents| {
                let da = up.matmul_nt(parents[1])?;
                let db = parents[0].matmul_tn(up)?;
                Ok(vec![Some(da), Some(db)])
            }),
        ))
    }

    /// Matrix product with transposed right operand: `self · otherᵀ`
    /// (`self` is `[m, k]`, `other` is `[n, k]`).
    ///
    /// # Errors
    /// Propagates shape mismatches from the tensor engine.
    pub fn matmul_nt(&self, other: &Var) -> Result<Var> {
        let value = self.with_value(|a| other.with_value(|b| a.matmul_nt(b)))?;
        Ok(self.binary(
            other,
            value,
            Box::new(|up, _, parents| {
                // C = A·Bᵀ ⇒ dA = dC·B, dB = dCᵀ·A.
                let da = up.matmul(parents[1])?;
                let db = up.matmul_tn(parents[0])?;
                Ok(vec![Some(da), Some(db)])
            }),
        ))
    }

    /// Matrix product with transposed left operand: `selfᵀ · other`
    /// (`self` is `[k, m]`, `other` is `[k, n]`).
    ///
    /// # Errors
    /// Propagates shape mismatches from the tensor engine.
    pub fn matmul_tn(&self, other: &Var) -> Result<Var> {
        let value = self.with_value(|a| other.with_value(|b| a.matmul_tn(b)))?;
        Ok(self.binary(
            other,
            value,
            Box::new(|up, _, parents| {
                // C = Aᵀ·B ⇒ dA = B·dCᵀ, dB = A·dC.
                let da = parents[1].matmul_nt(up)?;
                let db = parents[0].matmul(up)?;
                Ok(vec![Some(da), Some(db)])
            }),
        ))
    }

    /// Batched matrix product (`[b, m, k] × [b, k, n]`).
    ///
    /// # Errors
    /// Propagates shape mismatches from the tensor engine.
    pub fn bmm(&self, other: &Var) -> Result<Var> {
        let value = self.with_value(|a| other.with_value(|b| a.bmm(b)))?;
        Ok(self.binary(
            other,
            value,
            Box::new(|up, _, parents| {
                let da = up.bmm_nt(parents[1])?;
                let db = parents[0].bmm_tn(up)?;
                Ok(vec![Some(da), Some(db)])
            }),
        ))
    }

    /// Batched matrix product with a transposed right operand:
    /// `self` (`[b, m, k]`) × `otherᵀ` where `other` is `[b, n, k]`.
    ///
    /// # Errors
    /// Propagates shape mismatches from the tensor engine.
    pub fn bmm_nt(&self, other: &Var) -> Result<Var> {
        let value = self.with_value(|a| other.with_value(|b| a.bmm_nt(b)))?;
        Ok(self.binary(
            other,
            value,
            Box::new(|up, _, parents| {
                // C = A·Bᵀ ⇒ dA = dC·B, dB = dCᵀ·A (batched).
                let da = up.bmm(parents[1])?;
                let db = up.bmm_tn(parents[0])?;
                Ok(vec![Some(da), Some(db)])
            }),
        ))
    }

    /// Matrix transpose.
    ///
    /// # Errors
    /// Propagates rank errors from the tensor engine.
    pub fn transpose2d(&self) -> Result<Var> {
        let value = self.with_value(Tensor::transpose2d)?;
        Ok(self.unary(
            value,
            Box::new(|up, _, _| Ok(vec![Some(up.transpose2d()?)])),
        ))
    }

    /// Reshape to new dimensions.
    ///
    /// # Errors
    /// Propagates element-count mismatches.
    pub fn reshape(&self, dims: &[usize]) -> Result<Var> {
        let value = self.with_value(|t| t.reshape(dims))?;
        let old_dims = self.dims();
        Ok(self.unary(
            value,
            Box::new(move |up, _, _| Ok(vec![Some(up.reshape(&old_dims)?)])),
        ))
    }

    /// Adds a bias row-vector to each row of a matrix.
    ///
    /// # Errors
    /// Propagates shape mismatches from the tensor engine.
    pub fn add_bias(&self, bias: &Var) -> Result<Var> {
        let value = self.with_value(|a| bias.with_value(|b| a.add_bias(b)))?;
        Ok(self.binary(
            bias,
            value,
            Box::new(|up, _, _| Ok(vec![Some(up.clone()), Some(up.sum_cols()?)])),
        ))
    }

    /// Scales each row by the matching entry of a vector variable.
    ///
    /// # Errors
    /// Propagates shape mismatches from the tensor engine.
    pub fn scale_rows(&self, scales: &Var) -> Result<Var> {
        let value = self.with_value(|a| scales.with_value(|s| a.scale_rows(s)))?;
        Ok(self.binary(
            scales,
            value,
            Box::new(|up, _, parents| {
                let dx = up.scale_rows(parents[1])?;
                let ds = up.mul(parents[0])?.sum_rows()?;
                Ok(vec![Some(dx), Some(ds)])
            }),
        ))
    }

    /// Scales each column by the matching entry of a vector variable
    /// (learned per-feature scales).
    ///
    /// # Errors
    /// Propagates shape mismatches from the tensor engine.
    pub fn scale_cols(&self, scales: &Var) -> Result<Var> {
        let value = self.with_value(|a| scales.with_value(|s| a.scale_cols(s)))?;
        Ok(self.binary(
            scales,
            value,
            Box::new(|up, _, parents| {
                let dx = up.scale_cols(parents[1])?;
                let ds = up.mul(parents[0])?.sum_cols()?;
                Ok(vec![Some(dx), Some(ds)])
            }),
        ))
    }

    /// Scales each row by a constant vector (degree normalization).
    ///
    /// # Errors
    /// Propagates shape mismatches from the tensor engine.
    pub fn scale_rows_const(&self, scales: &Tensor) -> Result<Var> {
        let value = self.with_value(|a| a.scale_rows(scales))?;
        let s = scales.clone();
        Ok(self.unary(
            value,
            Box::new(move |up, _, _| Ok(vec![Some(up.scale_rows(&s)?)])),
        ))
    }

    /// Concatenates variables along the row axis.
    ///
    /// # Errors
    /// Propagates shape mismatches; requires a non-empty list on one tape.
    ///
    /// # Panics
    /// Panics if the variables live on different tapes.
    pub fn concat_rows(parts: &[Var]) -> Result<Var> {
        assert!(!parts.is_empty(), "concat_rows requires at least one Var");
        let first = &parts[0];
        for p in parts {
            assert!(first.same_tape(p), "operands belong to different tapes");
        }
        let tensors: Vec<Tensor> = parts.iter().map(|p| p.value()).collect();
        let refs: Vec<&Tensor> = tensors.iter().collect();
        let value = Tensor::concat_rows(&refs)?;
        let row_counts: Vec<usize> = tensors.iter().map(|t| t.dim(0)).collect();
        let parent_ids: Vec<usize> = parts.iter().map(|p| p.id).collect();
        Ok(first.tape_handle().push(
            value,
            parent_ids,
            Some(Box::new(move |up, _, _| {
                let mut grads = Vec::with_capacity(row_counts.len());
                let mut start = 0usize;
                for &rows in &row_counts {
                    grads.push(Some(up.slice_rows(start, start + rows)?));
                    start += rows;
                }
                Ok(grads)
            })),
            None,
        ))
    }

    /// Concatenates variables along the column axis.
    ///
    /// # Errors
    /// Propagates shape mismatches; requires a non-empty list on one tape.
    ///
    /// # Panics
    /// Panics if the variables live on different tapes.
    pub fn concat_cols(parts: &[Var]) -> Result<Var> {
        assert!(!parts.is_empty(), "concat_cols requires at least one Var");
        let first = &parts[0];
        for p in parts {
            assert!(first.same_tape(p), "operands belong to different tapes");
        }
        let tensors: Vec<Tensor> = parts.iter().map(|p| p.value()).collect();
        let refs: Vec<&Tensor> = tensors.iter().collect();
        let value = Tensor::concat_cols(&refs)?;
        let col_counts: Vec<usize> = tensors.iter().map(|t| t.dim(1)).collect();
        let parent_ids: Vec<usize> = parts.iter().map(|p| p.id).collect();
        Ok(first.tape_handle().push(
            value,
            parent_ids,
            Some(Box::new(move |up, _, _| {
                let mut grads = Vec::with_capacity(col_counts.len());
                let mut start = 0usize;
                for &cols in &col_counts {
                    grads.push(Some(up.slice_cols(start, start + cols)?));
                    start += cols;
                }
                Ok(grads)
            })),
            None,
        ))
    }

    /// Extracts rows `[start, end)`.
    ///
    /// # Errors
    /// Propagates range errors from the tensor engine.
    pub fn slice_rows(&self, start: usize, end: usize) -> Result<Var> {
        let value = self.with_value(|t| t.slice_rows(start, end))?;
        let n = self.dims()[0];
        Ok(self.unary(
            value,
            Box::new(move |up, _, _| {
                let idx = IntTensor::from_vec(
                    &[end - start],
                    (start as i64..end as i64).collect(),
                )?;
                Ok(vec![Some(up.scatter_add_rows(&idx, n)?)])
            }),
        ))
    }

    // ----- graph / irregular ops -------------------------------------------

    /// Aggregation via SpMM with a constant sparse matrix.
    ///
    /// `adj_t` must be the transpose of `adj` (precomputed once by the
    /// caller, as GNN frameworks do); it drives the backward pass.
    ///
    /// # Errors
    /// Propagates shape mismatches from the tensor engine.
    pub fn spmm(adj: &Rc<CsrMatrix>, adj_t: &Rc<CsrMatrix>, x: &Var) -> Result<Var> {
        let value = x.with_value(|t| adj.spmm(t))?;
        let at = Rc::clone(adj_t);
        Ok(x.unary(
            value,
            Box::new(move |up, _, _| Ok(vec![Some(at.spmm(up)?)])),
        ))
    }

    /// Aggregation via SpMM with a *symmetric* constant sparse matrix
    /// (normalized undirected adjacency), avoiding a transpose.
    ///
    /// # Errors
    /// Propagates shape mismatches from the tensor engine.
    pub fn spmm_sym(adj: &Rc<CsrMatrix>, x: &Var) -> Result<Var> {
        Var::spmm(adj, adj, x)
    }

    /// Gathers rows by a constant index tensor.
    ///
    /// # Errors
    /// Propagates bounds errors from the tensor engine.
    pub fn gather_rows(&self, index: &IntTensor) -> Result<Var> {
        let value = self.with_value(|t| t.gather_rows(index))?;
        let n = self.dims()[0];
        let idx = index.clone();
        Ok(self.unary(
            value,
            Box::new(move |up, _, _| Ok(vec![Some(up.scatter_add_rows(&idx, n)?)])),
        ))
    }

    /// Index-select of rows by a constant index tensor.
    ///
    /// # Errors
    /// Propagates bounds errors from the tensor engine.
    pub fn index_select(&self, index: &IntTensor) -> Result<Var> {
        let value = self.with_value(|t| t.index_select(index))?;
        let n = self.dims()[0];
        let idx = index.clone();
        Ok(self.unary(
            value,
            Box::new(move |up, _, _| Ok(vec![Some(up.scatter_add_rows(&idx, n)?)])),
        ))
    }

    /// Embedding lookup: `self` is the `[vocab, d]` table.
    ///
    /// # Errors
    /// Propagates bounds errors from the tensor engine.
    pub fn embedding_lookup(&self, ids: &IntTensor) -> Result<Var> {
        let value = self.with_value(|t| t.embedding_lookup(ids))?;
        let vocab = self.dims()[0];
        let idx = ids.clone();
        Ok(self.unary(
            value,
            Box::new(move |up, _, _| Ok(vec![Some(up.scatter_add_rows(&idx, vocab)?)])),
        ))
    }

    /// Scatter-add of rows into `out_rows` destinations.
    ///
    /// # Errors
    /// Propagates bounds errors from the tensor engine.
    pub fn scatter_add_rows(&self, index: &IntTensor, out_rows: usize) -> Result<Var> {
        let value = self.with_value(|t| t.scatter_add_rows(index, out_rows))?;
        let idx = index.clone();
        Ok(self.unary(
            value,
            Box::new(move |up, _, _| Ok(vec![Some(up.gather_rows(&idx)?)])),
        ))
    }

    /// Selects one element per row (NLL-style lookup).
    ///
    /// # Errors
    /// Propagates bounds errors from the tensor engine.
    pub fn select_per_row(&self, index: &IntTensor) -> Result<Var> {
        let value = self.with_value(|t| t.select_per_row(index))?;
        let d = self.dims()[1];
        let idx = index.clone();
        Ok(self.unary(
            value,
            Box::new(move |up, _, _| Ok(vec![Some(up.scatter_per_row(&idx, d)?)])),
        ))
    }

    /// Fused mean binary-cross-entropy-with-logits against a constant
    /// target (one reduction kernel forward, one element-wise backward,
    /// matching PyTorch's fused loss).
    ///
    /// # Errors
    /// Propagates shape mismatches from the tensor engine.
    pub fn bce_with_logits_mean(&self, target: &Tensor) -> Result<Var> {
        let value = self.with_value(|z| z.bce_with_logits_mean(target))?;
        let y = target.clone();
        Ok(self.unary(
            value,
            Box::new(move |up, _, parents| {
                let g = parents[0].bce_with_logits_backward(&y)?;
                Ok(vec![Some(g.mul_scalar(up.item()?))])
            }),
        ))
    }

    // ----- normalization / softmax ------------------------------------------

    /// Row-wise softmax.
    ///
    /// # Errors
    /// Propagates rank errors from the tensor engine.
    pub fn softmax_rows(&self) -> Result<Var> {
        let value = self.with_value(Tensor::softmax_rows)?;
        Ok(self.unary(
            value,
            Box::new(|up, y, _| {
                let t = up.mul(y)?;
                let s = t.sum_rows()?;
                Ok(vec![Some(t.sub(&y.scale_rows(&s)?)?)])
            }),
        ))
    }

    /// Row-wise log-softmax.
    ///
    /// # Errors
    /// Propagates rank errors from the tensor engine.
    pub fn log_softmax_rows(&self) -> Result<Var> {
        let value = self.with_value(Tensor::log_softmax_rows)?;
        Ok(self.unary(
            value,
            Box::new(|up, y, _| {
                let p = y.exp();
                let s = up.sum_rows()?;
                Ok(vec![Some(up.sub(&p.scale_rows(&s)?)?)])
            }),
        ))
    }

    /// Batch normalization with learned `gamma`/`beta` variables.
    ///
    /// # Errors
    /// Propagates shape errors from the tensor engine.
    pub fn batch_norm(&self, gamma: &Var, beta: &Var, eps: f32) -> Result<Var> {
        assert!(
            self.same_tape(gamma) && self.same_tape(beta),
            "operands belong to different tapes"
        );
        let (value, mean, var) = self.with_value(|x| {
            gamma.with_value(|g| beta.with_value(|b| x.batch_norm(g, b, eps)))
        })?;
        Ok(self.tape_handle().push(
            value,
            vec![self.id, gamma.id, beta.id],
            Some(Box::new(move |up, _, parents| {
                let (dx, dgamma, dbeta) =
                    parents[0].batch_norm_backward(parents[1], &mean, &var, eps, up)?;
                Ok(vec![Some(dx), Some(dgamma), Some(dbeta)])
            })),
            None,
        ))
    }

    /// 2-D convolution with a learned filter variable.
    ///
    /// # Errors
    /// Propagates shape errors from the tensor engine.
    pub fn conv2d(&self, weight: &Var, spec: Conv2dSpec) -> Result<Var> {
        let value = self.with_value(|x| weight.with_value(|w| x.conv2d(w, spec)))?;
        Ok(self.binary(
            weight,
            value,
            Box::new(move |up, _, parents| {
                let (dx, dw) = parents[0].conv2d_backward(parents[1], spec, up)?;
                Ok(vec![Some(dx), Some(dw)])
            }),
        ))
    }

    // ----- reductions --------------------------------------------------------

    /// Sum of all elements (scalar output).
    pub fn sum_all(&self) -> Var {
        let value = self.with_value(Tensor::sum_all);
        let dims = self.dims();
        self.unary(
            value,
            Box::new(move |up, _, _| {
                let g = up.item()?;
                Ok(vec![Some(Tensor::full(&dims, g))])
            }),
        )
    }

    /// Mean of all elements (scalar output).
    pub fn mean_all(&self) -> Var {
        let value = self.with_value(Tensor::mean_all);
        let dims = self.dims();
        let n: usize = dims.iter().product();
        self.unary(
            value,
            Box::new(move |up, _, _| {
                let g = up.item()? / n as f32;
                Ok(vec![Some(Tensor::full(&dims, g))])
            }),
        )
    }

    /// Row-wise sum of a matrix (`[n, d]` → `[n]`).
    ///
    /// # Errors
    /// Propagates rank errors from the tensor engine.
    pub fn sum_rows(&self) -> Result<Var> {
        let value = self.with_value(Tensor::sum_rows)?;
        let dims = self.dims();
        Ok(self.unary(
            value,
            Box::new(move |up, _, _| {
                Ok(vec![Some(Tensor::ones(&dims).scale_rows(up)?)])
            }),
        ))
    }

    /// Row-wise mean of a matrix (`[n, d]` → `[n]`).
    ///
    /// # Errors
    /// Propagates rank errors from the tensor engine.
    pub fn mean_rows(&self) -> Result<Var> {
        let value = self.with_value(Tensor::mean_rows)?;
        let dims = self.dims();
        let d = dims[1] as f32;
        Ok(self.unary(
            value,
            Box::new(move |up, _, _| {
                Ok(vec![Some(
                    Tensor::ones(&dims).scale_rows(up)?.mul_scalar(1.0 / d),
                )])
            }),
        ))
    }

    /// Column-wise sum of a matrix (`[n, d]` → `[d]`).
    ///
    /// # Errors
    /// Propagates rank errors from the tensor engine.
    pub fn sum_cols(&self) -> Result<Var> {
        let value = self.with_value(Tensor::sum_cols)?;
        let dims = self.dims();
        Ok(self.unary(
            value,
            Box::new(move |up, _, _| Ok(vec![Some(Tensor::zeros(&dims).add_bias(up)?)])),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tape;
    use rand::SeedableRng;

    /// Finite-difference gradient check of a scalar-valued function of one
    /// leaf tensor.
    fn grad_check(
        dims: &[usize],
        build: impl Fn(&Tape, &Var) -> Var,
        seed: u64,
        tol: f32,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x0 = Tensor::uniform(dims, 0.2, 1.5, &mut rng);
        let tape = Tape::new();
        let x = tape.leaf(x0.clone());
        let loss = build(&tape, &x);
        tape.backward(&loss).unwrap();
        let analytic = x.grad().expect("leaf grad");

        let eps = 1e-2f32;
        for flat in 0..x0.numel().min(6) {
            let mut xp = x0.clone();
            xp.as_mut_slice()[flat] += eps;
            let mut xm = x0.clone();
            xm.as_mut_slice()[flat] -= eps;
            let f = |t: Tensor| -> f32 {
                let tape = Tape::new();
                let v = tape.leaf(t);
                build(&tape, &v).value().item().unwrap()
            };
            let fd = (f(xp) - f(xm)) / (2.0 * eps);
            let a = analytic.as_slice()[flat];
            assert!(
                (a - fd).abs() < tol * (1.0 + fd.abs()),
                "grad[{flat}] analytic {a} vs fd {fd}"
            );
        }
    }

    #[test]
    fn grad_elementwise_chain() {
        grad_check(
            &[2, 3],
            |_, x| x.relu().square().mul_scalar(0.5).sum_all(),
            1,
            1e-2,
        );
        grad_check(&[4], |_, x| x.sigmoid().sum_all(), 2, 1e-2);
        grad_check(&[4], |_, x| x.tanh().sum_all(), 3, 1e-2);
        grad_check(&[4], |_, x| x.exp().mean_all(), 4, 1e-2);
        grad_check(&[4], |_, x| x.ln().sum_all(), 5, 2e-2);
        grad_check(&[4], |_, x| x.sqrt().sum_all(), 6, 2e-2);
        grad_check(&[4], |_, x| x.leaky_relu(0.2).sum_all(), 7, 1e-2);
    }

    #[test]
    fn grad_binary_ops() {
        grad_check(
            &[3],
            |tape, x| {
                let c = tape.constant(Tensor::from_vec(&[3], vec![2.0, -1.0, 0.5]).unwrap());
                x.mul(&c).unwrap().sum_all()
            },
            8,
            1e-2,
        );
        grad_check(
            &[3],
            |tape, x| {
                let c = tape.constant(Tensor::from_vec(&[3], vec![2.0, 4.0, 0.5]).unwrap());
                x.div(&c).unwrap().sum_all()
            },
            9,
            1e-2,
        );
        grad_check(
            &[3],
            |_, x| {
                let y = x.mul_scalar(2.0);
                x.sub(&y).unwrap().square().sum_all()
            },
            10,
            1e-2,
        );
    }

    #[test]
    fn grad_matmul() {
        grad_check(
            &[3, 4],
            |tape, x| {
                let w = tape.constant(Tensor::from_fn(&[4, 2], |i| 0.1 * i as f32 - 0.3));
                x.matmul(&w).unwrap().square().sum_all()
            },
            11,
            1e-2,
        );
    }

    #[test]
    fn grad_bmm_nt() {
        grad_check(
            &[12],
            |tape, x| {
                let a = x.reshape(&[2, 2, 3]).unwrap();
                let b = tape.constant(Tensor::from_fn(&[2, 4, 3], |i| 0.1 * (i as f32) - 0.5));
                a.bmm_nt(&b).unwrap().square().sum_all()
            },
            42,
            2e-2,
        );
    }

    #[test]
    fn grad_matmul_nt_and_tn() {
        grad_check(
            &[3, 4],
            |tape, x| {
                let w = tape.constant(Tensor::from_fn(&[2, 4], |i| 0.1 * i as f32 - 0.3));
                x.matmul_nt(&w).unwrap().square().sum_all()
            },
            40,
            1e-2,
        );
        grad_check(
            &[4, 3],
            |tape, x| {
                let w = tape.constant(Tensor::from_fn(&[4, 2], |i| 0.1 * i as f32 - 0.3));
                x.matmul_tn(&w).unwrap().square().sum_all()
            },
            41,
            1e-2,
        );
    }

    #[test]
    fn grad_softmax_and_logsoftmax() {
        grad_check(
            &[2, 4],
            |tape, x| {
                let w = tape.constant(Tensor::from_fn(&[2, 4], |i| ((i % 3) as f32) - 1.0));
                x.softmax_rows().unwrap().mul(&w).unwrap().sum_all()
            },
            12,
            2e-2,
        );
        grad_check(
            &[2, 4],
            |tape, x| {
                let w = tape.constant(Tensor::from_fn(&[2, 4], |i| ((i % 3) as f32) - 1.0));
                x.log_softmax_rows().unwrap().mul(&w).unwrap().sum_all()
            },
            13,
            2e-2,
        );
    }

    #[test]
    fn grad_gather_scatter() {
        let idx = IntTensor::from_vec(&[3], vec![1, 0, 1]).unwrap();
        grad_check(
            &[2, 3],
            move |_, x| {
                let g = x.gather_rows(&idx).unwrap();
                g.square().sum_all()
            },
            14,
            1e-2,
        );
        let idx2 = IntTensor::from_vec(&[3], vec![0, 2, 0]).unwrap();
        grad_check(
            &[3, 2],
            move |_, x| x.scatter_add_rows(&idx2, 3).unwrap().square().sum_all(),
            15,
            1e-2,
        );
    }

    #[test]
    fn grad_spmm() {
        let adj = Rc::new(
            CsrMatrix::from_coo(3, 3, &[(0, 1, 0.5), (1, 2, 1.5), (2, 0, 1.0), (2, 2, 0.25)])
                .unwrap(),
        );
        let adj_t = Rc::new(adj.transpose());
        grad_check(
            &[3, 2],
            move |_, x| {
                let y = Var::spmm(&adj, &adj_t, x).unwrap();
                y.square().sum_all()
            },
            16,
            1e-2,
        );
    }

    #[test]
    fn grad_bias_and_reductions() {
        grad_check(
            &[3, 2],
            |tape, x| {
                let b = tape.constant(Tensor::from_vec(&[2], vec![0.5, -0.5]).unwrap());
                x.add_bias(&b).unwrap().square().sum_all()
            },
            17,
            1e-2,
        );
        grad_check(&[3, 2], |_, x| x.sum_rows().unwrap().square().sum_all(), 18, 1e-2);
        grad_check(&[3, 2], |_, x| x.sum_cols().unwrap().square().sum_all(), 19, 1e-2);
        grad_check(&[3, 2], |_, x| x.mean_rows().unwrap().square().sum_all(), 20, 1e-2);
    }

    #[test]
    fn grad_scale_cols() {
        grad_check(
            &[3, 2],
            |tape, x| {
                let s = tape.constant(Tensor::from_vec(&[2], vec![2.0, -0.5]).unwrap());
                x.scale_cols(&s).unwrap().square().sum_all()
            },
            43,
            1e-2,
        );
    }

    #[test]
    fn grad_concat_and_slice() {
        grad_check(
            &[4, 2],
            |_, x| {
                let a = x.slice_rows(0, 2).unwrap();
                let b = x.slice_rows(2, 4).unwrap();
                let cat = Var::concat_cols(&[a, b]).unwrap();
                cat.square().sum_all()
            },
            21,
            1e-2,
        );
        grad_check(
            &[2, 3],
            |_, x| {
                let y = Var::concat_rows(&[x.clone(), x.mul_scalar(2.0)]).unwrap();
                y.square().sum_all()
            },
            22,
            1e-2,
        );
    }

    #[test]
    fn grad_conv2d_via_var() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let w0 = Tensor::randn(&[2, 1, 2, 2], 0.5, &mut rng);
        grad_check(
            &[8],
            move |tape, x| {
                let img = x.reshape(&[1, 1, 4, 2]).unwrap();
                let w = tape.constant(w0.clone());
                img.conv2d(&w, Conv2dSpec::default())
                    .unwrap()
                    .square()
                    .sum_all()
            },
            24,
            2e-2,
        );
    }

    #[test]
    fn grad_batch_norm_via_var() {
        grad_check(
            &[6, 2],
            |tape, x| {
                let g = tape.constant(Tensor::ones(&[2]));
                let b = tape.constant(Tensor::zeros(&[2]));
                let y = x.batch_norm(&g, &b, 1e-5).unwrap();
                let w = tape.constant(Tensor::from_fn(&[6, 2], |i| (i as f32) * 0.1));
                y.mul(&w).unwrap().sum_all()
            },
            25,
            5e-2,
        );
    }

    #[test]
    fn grad_prelu_learns_alpha() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(&[3], vec![-1.0, 2.0, -3.0]).unwrap());
        let alpha = tape.leaf(Tensor::from_vec(&[1], vec![0.25]).unwrap());
        let y = x.prelu(&alpha).unwrap();
        let loss = y.sum_all();
        tape.backward(&loss).unwrap();
        // dα = Σ x over negative part = -1 + -3 = -4.
        assert!((alpha.grad().unwrap().as_slice()[0] + 4.0).abs() < 1e-5);
    }

    #[test]
    fn grad_recip_and_slice_cols() {
        grad_check(&[4], |_, x| x.recip().sum_all(), 31, 2e-2);
        grad_check(
            &[2, 4],
            |_, x| x.slice_cols(1, 3).unwrap().square().sum_all(),
            32,
            1e-2,
        );
    }

    #[test]
    fn grad_select_per_row() {
        let idx = IntTensor::from_vec(&[2], vec![1, 0]).unwrap();
        grad_check(
            &[2, 3],
            move |_, x| x.select_per_row(&idx).unwrap().square().sum_all(),
            26,
            1e-2,
        );
    }

    #[test]
    fn grad_embedding() {
        let ids = IntTensor::from_vec(&[3], vec![0, 2, 0]).unwrap();
        grad_check(
            &[3, 2],
            move |_, x| x.embedding_lookup(&ids).unwrap().square().sum_all(),
            27,
            1e-2,
        );
    }

    #[test]
    fn grad_bmm() {
        grad_check(
            &[12],
            |tape, x| {
                let a = x.reshape(&[2, 2, 3]).unwrap();
                let b = tape.constant(Tensor::from_fn(&[2, 3, 2], |i| 0.1 * (i as f32) - 0.4));
                a.bmm(&b).unwrap().square().sum_all()
            },
            28,
            2e-2,
        );
    }

    #[test]
    fn dropout_zero_p_is_identity_and_differentiable() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(29);
        let tape = Tape::new();
        let x = tape.leaf(Tensor::ones(&[4]));
        let y = x.dropout(0.0, &mut rng).unwrap();
        let loss = y.sum_all();
        tape.backward(&loss).unwrap();
        assert_eq!(x.grad().unwrap().as_slice(), &[1.0; 4]);
        assert!(x.dropout(1.5, &mut rng).is_err());
    }

    #[test]
    fn dropout_mask_consistent_between_passes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(30);
        let tape = Tape::new();
        let x = tape.leaf(Tensor::ones(&[64]));
        let y = x.dropout(0.5, &mut rng).unwrap();
        let loss = y.sum_all();
        tape.backward(&loss).unwrap();
        let g = x.grad().unwrap();
        let yv = y.value();
        // Gradient is nonzero exactly where the output is nonzero.
        for (gv, ov) in g.as_slice().iter().zip(yv.as_slice()) {
            assert_eq!(*gv == 0.0, *ov == 0.0);
        }
    }
}
