//! Trainable parameters that persist across training steps.

use std::cell::{Ref, RefCell};
use std::fmt;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

use gnnmark_tensor::half::{self, Precision};
use gnnmark_tensor::Tensor;

static NEXT_PARAM_ID: AtomicU64 = AtomicU64::new(0);

/// Master copy of a reduced-precision parameter: the 16-bit encodings are
/// the storage of record, and the f32 `value` tensor is the convert-on-load
/// working copy (always exactly `decode(bits)`, so the two never diverge).
struct HalfStore {
    bits: Vec<u16>,
    precision: Precision,
}

impl HalfStore {
    /// Rounds `value` into 16-bit master storage and rewrites the f32
    /// working copy with the decoded (quantized) values.
    fn store(&mut self, value: &mut Tensor) {
        let xs = value.as_mut_slice();
        self.bits.clear();
        self.bits.reserve(xs.len());
        for v in xs.iter_mut() {
            let b = self.precision.encode(*v);
            self.bits.push(b);
            *v = self.precision.decode(b);
        }
    }
}

struct ParamInner {
    id: u64,
    name: String,
    value: RefCell<Tensor>,
    grad: RefCell<Option<Tensor>>,
    half: RefCell<Option<HalfStore>>,
}

/// A named, trainable tensor with an accumulated gradient slot.
///
/// `Param` is a cheap-to-clone handle (reference semantics, like
/// `torch.nn.Parameter`). A model owns its `Param`s across steps; each
/// training step reads them onto a fresh [`crate::Tape`] via
/// [`crate::Tape::read`], and [`crate::Tape::backward`] accumulates
/// gradients back into them.
#[derive(Clone)]
pub struct Param {
    inner: Rc<ParamInner>,
}

impl Param {
    /// Creates a parameter with an initial value.
    ///
    /// When the thread's storage precision (see
    /// [`gnnmark_tensor::half::set_thread_precision`]) is f16 or bf16, the
    /// parameter keeps a 16-bit master copy: the initial value is rounded
    /// into it, and every [`Param::set_value`] round-trips through it, so
    /// optimizer updates below the format's resolution are genuinely lost —
    /// the behavior loss scaling exists to compensate.
    pub fn new(name: impl Into<String>, mut value: Tensor) -> Self {
        let half = match half::thread_precision() {
            Precision::Fp32 => None,
            precision => {
                let mut store = HalfStore {
                    bits: Vec::new(),
                    precision,
                };
                store.store(&mut value);
                Some(store)
            }
        };
        Param {
            inner: Rc::new(ParamInner {
                id: NEXT_PARAM_ID.fetch_add(1, Ordering::Relaxed),
                name: name.into(),
                value: RefCell::new(value),
                grad: RefCell::new(None),
                half: RefCell::new(half),
            }),
        }
    }

    /// Globally unique id (used as optimizer state key).
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// The parameter's name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Borrow of the current value.
    ///
    /// # Panics
    /// Panics if the value is currently mutably borrowed (optimizer step in
    /// progress).
    pub fn value(&self) -> Ref<'_, Tensor> {
        self.inner.value.borrow()
    }

    /// Replaces the value (used by optimizers). Reduced-precision parameters
    /// round the new value through their 16-bit master storage.
    pub fn set_value(&self, mut value: Tensor) {
        if let Some(store) = self.inner.half.borrow_mut().as_mut() {
            store.store(&mut value);
        }
        *self.inner.value.borrow_mut() = value;
    }

    /// The precision of the master storage ([`Precision::Fp32`] unless the
    /// parameter was created under a reduced thread precision).
    pub fn storage_precision(&self) -> Precision {
        self.inner
            .half
            .borrow()
            .as_ref()
            .map_or(Precision::Fp32, |s| s.precision)
    }

    /// A clone of the accumulated gradient, if any.
    pub fn grad(&self) -> Option<Tensor> {
        self.inner.grad.borrow().clone()
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&self) {
        *self.inner.grad.borrow_mut() = None;
    }

    /// Adds `g` into the accumulated gradient.
    ///
    /// # Errors
    /// Returns a shape error if `g` does not match previous accumulations.
    pub fn accumulate_grad(&self, g: Tensor) -> crate::Result<()> {
        let mut slot = self.inner.grad.borrow_mut();
        *slot = Some(match slot.take() {
            None => g,
            Some(prev) => prev.add(&g)?,
        });
        Ok(())
    }

    /// Number of scalar elements.
    pub fn numel(&self) -> usize {
        self.inner.value.borrow().numel()
    }

    /// Size in bytes of the master storage (what DDP all-reduces per step):
    /// 2 bytes per element for f16/bf16 parameters, 4 for fp32.
    pub fn byte_len(&self) -> u64 {
        let elem = self.storage_precision().elem_bytes() as u64;
        self.inner.value.borrow().numel() as u64 * elem
    }
}

impl fmt::Debug for Param {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Param(\"{}\", {:?}, grad={})",
            self.inner.name,
            self.inner.value.borrow().dims(),
            self.inner.grad.borrow().is_some()
        )
    }
}

/// An ordered collection of a model's parameters.
///
/// Provides the aggregate queries DDP and the optimizers need: total
/// parameter count (all-reduce volume) and bulk gradient operations.
#[derive(Debug, Clone, Default)]
pub struct ParamSet {
    params: Vec<Param>,
}

impl ParamSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        ParamSet { params: Vec::new() }
    }

    /// Adds a parameter and returns it for convenient chaining.
    pub fn register(&mut self, param: Param) -> Param {
        self.params.push(param.clone());
        param
    }

    /// Appends all parameters of another set.
    pub fn extend(&mut self, other: &ParamSet) {
        self.params.extend(other.params.iter().cloned());
    }

    /// Iterates over the parameters.
    pub fn iter(&self) -> std::slice::Iter<'_, Param> {
        self.params.iter()
    }

    /// Number of parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// `true` if the set contains no parameters.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of scalar parameters.
    pub fn total_scalars(&self) -> usize {
        self.params.iter().map(Param::numel).sum()
    }

    /// Total parameter bytes (the DDP all-reduce payload).
    pub fn total_bytes(&self) -> u64 {
        self.params.iter().map(Param::byte_len).sum()
    }

    /// Clears every parameter's gradient.
    pub fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    /// Global L2 norm of all gradients (0 if none are populated).
    pub fn grad_norm(&self) -> f64 {
        let mut acc = 0.0f64;
        for p in &self.params {
            if let Some(g) = p.grad() {
                for &v in g.as_slice() {
                    acc += (v as f64) * (v as f64);
                }
            }
        }
        acc.sqrt()
    }

    /// Clips gradients to a maximum global L2 norm (PyTorch's
    /// `clip_grad_norm_`). Returns the pre-clip norm.
    ///
    /// # Errors
    /// Propagates tensor errors from the scaling kernels.
    pub fn clip_grad_norm(&self, max_norm: f64) -> crate::Result<f64> {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let scale = (max_norm / norm) as f32;
            for p in &self.params {
                if let Some(g) = p.grad() {
                    p.zero_grad();
                    p.accumulate_grad(g.mul_scalar(scale))?;
                }
            }
        }
        Ok(norm)
    }
}

impl FromIterator<Param> for ParamSet {
    fn from_iter<T: IntoIterator<Item = Param>>(iter: T) -> Self {
        ParamSet {
            params: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a ParamSet {
    type Item = &'a Param;
    type IntoIter = std::slice::Iter<'a, Param>;

    fn into_iter(self) -> Self::IntoIter {
        self.params.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_handles_share_state() {
        let p = Param::new("w", Tensor::zeros(&[2]));
        let q = p.clone();
        q.set_value(Tensor::ones(&[2]));
        assert_eq!(p.value().as_slice(), &[1.0, 1.0]);
        assert_eq!(p.id(), q.id());
    }

    #[test]
    fn grad_accumulates() {
        let p = Param::new("w", Tensor::zeros(&[2]));
        assert!(p.grad().is_none());
        p.accumulate_grad(Tensor::ones(&[2])).unwrap();
        p.accumulate_grad(Tensor::ones(&[2])).unwrap();
        assert_eq!(p.grad().unwrap().as_slice(), &[2.0, 2.0]);
        p.zero_grad();
        assert!(p.grad().is_none());
    }

    #[test]
    fn ids_are_unique() {
        let a = Param::new("a", Tensor::zeros(&[1]));
        let b = Param::new("b", Tensor::zeros(&[1]));
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn param_set_aggregates() {
        let mut set = ParamSet::new();
        set.register(Param::new("a", Tensor::zeros(&[2, 3])));
        set.register(Param::new("b", Tensor::zeros(&[4])));
        assert_eq!(set.len(), 2);
        assert_eq!(set.total_scalars(), 10);
        assert_eq!(set.total_bytes(), 40);
    }

    #[test]
    fn clip_grad_norm_scales_down_only() {
        let mut set = ParamSet::new();
        let p = set.register(Param::new("a", Tensor::zeros(&[2])));
        p.accumulate_grad(Tensor::from_vec(&[2], vec![3.0, 4.0]).unwrap())
            .unwrap();
        // Norm 5 clipped to 1 → grads scaled by 0.2.
        let pre = set.clip_grad_norm(1.0).unwrap();
        assert!((pre - 5.0).abs() < 1e-9);
        let g = p.grad().unwrap();
        assert!((g.as_slice()[0] - 0.6).abs() < 1e-6);
        assert!((set.grad_norm() - 1.0).abs() < 1e-5);
        // Already below the bound → untouched.
        let pre2 = set.clip_grad_norm(10.0).unwrap();
        assert!((pre2 - 1.0).abs() < 1e-5);
        assert!((set.grad_norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn half_precision_param_round_trips_storage() {
        let _g = half::PrecisionGuard::new(Precision::Fp16);
        let p = Param::new(
            "w",
            Tensor::from_vec(&[3], vec![1.0, 0.3333333, 100.1]).unwrap(),
        );
        assert_eq!(p.storage_precision(), Precision::Fp16);
        // 3 elements × 2 bytes of master storage.
        assert_eq!(p.byte_len(), 6);
        // The working copy is the quantized value, not the raw f32.
        let v = p.value().as_slice().to_vec();
        assert_eq!(v[0], 1.0);
        assert_eq!(v[1], Precision::Fp16.quantize(0.3333333));
        assert_ne!(v[1], 0.3333333);
        // Updates below f16 resolution are genuinely lost on store.
        let nudged: Vec<f32> = v.iter().map(|x| x + 1e-8).collect();
        p.set_value(Tensor::from_vec(&[3], nudged).unwrap());
        assert_eq!(p.value().as_slice(), &v[..]);
    }

    #[test]
    fn fp32_param_storage_unchanged() {
        let p = Param::new("w", Tensor::from_vec(&[2], vec![0.1, 0.2]).unwrap());
        assert_eq!(p.storage_precision(), Precision::Fp32);
        assert_eq!(p.byte_len(), 8);
        assert_eq!(p.value().as_slice(), &[0.1, 0.2]);
    }

    #[test]
    fn grad_norm_is_euclidean() {
        let mut set = ParamSet::new();
        let p = set.register(Param::new("a", Tensor::zeros(&[2])));
        p.accumulate_grad(Tensor::from_vec(&[2], vec![3.0, 4.0]).unwrap())
            .unwrap();
        assert!((set.grad_norm() - 5.0).abs() < 1e-9);
    }
}
