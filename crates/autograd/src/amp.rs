//! Dynamic loss scaling for mixed-precision training.
//!
//! With f16 storage, small gradients underflow to zero (f16 has no values
//! below 2⁻²⁴). The standard fix — used by Apex/PyTorch AMP and assumed by
//! GNNMark's mixed-precision runs — multiplies the loss by a scale factor
//! before backward, so gradients travel through the tape amplified, then
//! divides them back out in the optimizer just before the update. The scale
//! adapts dynamically: halve on overflow (non-finite gradients, skip the
//! step), double after a stretch of clean steps.
//!
//! State is thread-local because the resilient suite runner trains each
//! workload on its own worker thread; one workload's overflow must not
//! perturb another's scale.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use gnnmark_tensor::half::Precision;

/// Scale growth interval: double after this many consecutive finite steps.
const GROWTH_INTERVAL: u64 = 200;
/// Upper bound on the loss scale (2¹⁶, as in Apex).
const MAX_SCALE: f32 = 65536.0;
/// Lower bound: below 1.0 the scale would *shrink* gradients.
const MIN_SCALE: f32 = 1.0;

#[derive(Debug, Clone, Copy)]
struct AmpState {
    scale: f32,
    good_steps: u64,
    skipped: u64,
    overflows: u64,
}

thread_local! {
    static AMP: RefCell<Option<AmpState>> = const { RefCell::new(None) };
}

/// Process-wide mirrors of the per-thread state, for the run-level metrics
/// registry (which reads from the main thread, not the training threads).
static SKIPPED_TOTAL: AtomicU64 = AtomicU64::new(0);
static OVERFLOWS_TOTAL: AtomicU64 = AtomicU64::new(0);
static LAST_SCALE_BITS: AtomicU32 = AtomicU32::new(0x3f80_0000); // 1.0f32

/// Total optimizer steps skipped by loss scaling across all threads since
/// process start (or the last [`reset_counters`]).
pub fn skipped_steps_total() -> u64 {
    SKIPPED_TOTAL.load(Ordering::Relaxed)
}

/// Total overflow events across all threads since process start (or the
/// last [`reset_counters`]).
pub fn overflows_total() -> u64 {
    OVERFLOWS_TOTAL.load(Ordering::Relaxed)
}

/// The most recently installed or adjusted loss scale on any thread
/// (1.0 before any mixed-precision run).
pub fn last_loss_scale() -> f32 {
    f32::from_bits(LAST_SCALE_BITS.load(Ordering::Relaxed))
}

/// Zeroes the process-wide skip/overflow counters (per-run accounting).
pub fn reset_counters() {
    SKIPPED_TOTAL.store(0, Ordering::Relaxed);
    OVERFLOWS_TOTAL.store(0, Ordering::Relaxed);
}

/// Snapshot of the loss-scaling state, for telemetry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AmpStats {
    /// Current loss scale.
    pub scale: f32,
    /// Optimizer steps skipped due to non-finite scaled gradients.
    pub skipped_steps: u64,
    /// Number of overflow events (each halves the scale).
    pub overflows: u64,
}

/// Enables loss scaling on the current thread for the given storage
/// precision. f16's narrow exponent range needs headroom (initial scale
/// 1024); bf16 shares f32's exponent range and starts at 1.0 — the
/// machinery still guards against non-finite gradients.
///
/// [`Precision::Fp32`] disables scaling (same as [`disable`]).
pub fn enable(precision: Precision) {
    let scale = match precision {
        Precision::Fp32 => {
            disable();
            return;
        }
        Precision::Fp16 => 1024.0,
        Precision::Bf16 => 1.0,
    };
    AMP.with(|a| {
        *a.borrow_mut() = Some(AmpState {
            scale,
            good_steps: 0,
            skipped: 0,
            overflows: 0,
        });
    });
    LAST_SCALE_BITS.store(scale.to_bits(), Ordering::Relaxed);
}

/// Turns loss scaling off on the current thread.
pub fn disable() {
    AMP.with(|a| *a.borrow_mut() = None);
}

/// Whether loss scaling is active on this thread.
pub fn is_active() -> bool {
    AMP.with(|a| a.borrow().is_some())
}

/// The current loss scale (1.0 when scaling is inactive).
pub fn thread_loss_scale() -> f32 {
    AMP.with(|a| a.borrow().map_or(1.0, |s| s.scale))
}

/// Records an overflow: the scale halves (floored at 1.0) and the skipped
/// counter increments. The optimizer calls this when unscaled gradients
/// come out non-finite, then skips the update.
pub fn on_overflow() {
    AMP.with(|a| {
        if let Some(s) = a.borrow_mut().as_mut() {
            s.scale = (s.scale / 2.0).max(MIN_SCALE);
            s.good_steps = 0;
            s.skipped += 1;
            s.overflows += 1;
            LAST_SCALE_BITS.store(s.scale.to_bits(), Ordering::Relaxed);
            SKIPPED_TOTAL.fetch_add(1, Ordering::Relaxed);
            OVERFLOWS_TOTAL.fetch_add(1, Ordering::Relaxed);
        }
    });
}

/// Records a clean (finite-gradient) step; after [`GROWTH_INTERVAL`]
/// consecutive clean steps the scale doubles, capped at 2¹⁶.
pub fn on_good_step() {
    AMP.with(|a| {
        if let Some(s) = a.borrow_mut().as_mut() {
            s.good_steps += 1;
            if s.good_steps >= GROWTH_INTERVAL {
                s.scale = (s.scale * 2.0).min(MAX_SCALE);
                s.good_steps = 0;
                LAST_SCALE_BITS.store(s.scale.to_bits(), Ordering::Relaxed);
            }
        }
    });
}

/// Telemetry snapshot, or `None` when scaling is inactive.
pub fn stats() -> Option<AmpStats> {
    AMP.with(|a| {
        a.borrow().map(|s| AmpStats {
            scale: s.scale,
            skipped_steps: s.skipped,
            overflows: s.overflows,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fp16_starts_at_1024_and_adapts() {
        enable(Precision::Fp16);
        assert!(is_active());
        assert_eq!(thread_loss_scale(), 1024.0);
        on_overflow();
        assert_eq!(thread_loss_scale(), 512.0);
        for _ in 0..GROWTH_INTERVAL {
            on_good_step();
        }
        assert_eq!(thread_loss_scale(), 1024.0);
        let s = stats().unwrap();
        assert_eq!(s.skipped_steps, 1);
        assert_eq!(s.overflows, 1);
        disable();
        assert!(!is_active());
        assert_eq!(thread_loss_scale(), 1.0);
    }

    #[test]
    fn scale_stays_bounded() {
        enable(Precision::Bf16);
        assert_eq!(thread_loss_scale(), 1.0);
        for _ in 0..40 {
            on_overflow();
        }
        assert_eq!(thread_loss_scale(), MIN_SCALE);
        for _ in 0..(GROWTH_INTERVAL * 64) {
            on_good_step();
        }
        assert!(thread_loss_scale() <= MAX_SCALE);
        disable();
    }

    #[test]
    fn fp32_enable_is_disable() {
        enable(Precision::Fp16);
        enable(Precision::Fp32);
        assert!(!is_active());
        assert!(stats().is_none());
    }
}
