//! The autodiff tape: nodes, variables and the reverse pass.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

use gnnmark_tensor::half::{self, Precision};
use gnnmark_tensor::Tensor;

use crate::{amp, Param, Result};

/// Process-wide count of nodes ever pushed onto any tape. One relaxed add
/// per recorded op; read by the telemetry metrics registry at run level.
static NODES_RECORDED: AtomicU64 = AtomicU64::new(0);

/// Live activation bytes across all tapes (node values at their storage
/// precision), and the high-water mark since the last reset. Pushing a node
/// adds its footprint; dropping a tape subtracts it — so the peak tracks the
/// largest set of simultaneously live activations, the quantity that halves
/// under f16/bf16 storage.
static ACTIVATION_BYTES: AtomicU64 = AtomicU64::new(0);
static ACTIVATION_PEAK: AtomicU64 = AtomicU64::new(0);

/// Total autodiff nodes recorded across every tape and thread since process
/// start (or the last [`reset_tape_node_counter`]).
pub fn tape_nodes_recorded() -> u64 {
    NODES_RECORDED.load(Ordering::Relaxed)
}

/// Zeroes the process-wide tape node counter (per-run accounting).
pub fn reset_tape_node_counter() {
    NODES_RECORDED.store(0, Ordering::Relaxed);
}

/// High-water mark of live activation bytes (at storage precision) across
/// all tapes since process start or the last [`reset_activation_peak`].
pub fn activation_bytes_peak() -> u64 {
    ACTIVATION_PEAK.load(Ordering::Relaxed)
}

/// Resets the activation high-water mark to the currently live volume
/// (per-run accounting).
pub fn reset_activation_peak() {
    ACTIVATION_PEAK.store(ACTIVATION_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Gradient function of one node: maps `(upstream_grad, own_value,
/// parent_values)` to one optional gradient contribution per parent.
pub(crate) type BackwardFn = Box<dyn Fn(&Tensor, &Tensor, &[&Tensor]) -> Result<Vec<Option<Tensor>>>>;

pub(crate) struct Node {
    pub(crate) value: Tensor,
    pub(crate) grad: Option<Tensor>,
    pub(crate) parents: Vec<usize>,
    pub(crate) backward: Option<BackwardFn>,
    pub(crate) param: Option<Param>,
    /// Footprint of `value` at the storage precision active when it was
    /// recorded; subtracted from the live-activation counter on tape drop.
    pub(crate) act_bytes: u64,
}

#[derive(Default)]
pub(crate) struct TapeInner {
    pub(crate) nodes: Vec<Node>,
}

impl Drop for TapeInner {
    fn drop(&mut self) {
        // Hand every node's buffers back to the tensor pool. The next
        // training step records an identically shaped tape, so these exact
        // lengths are reused instead of faulting in fresh pages each step.
        let freed: u64 = self.nodes.iter().map(|n| n.act_bytes).sum();
        ACTIVATION_BYTES.fetch_sub(freed, Ordering::Relaxed);
        for node in self.nodes.drain(..) {
            gnnmark_tensor::pool::recycle(node.value);
            if let Some(g) = node.grad {
                gnnmark_tensor::pool::recycle(g);
            }
        }
    }
}

/// A single-step computation tape.
///
/// Create one per training step, build the forward computation with
/// [`Var`] operations, then call [`Tape::backward`] on the (scalar) loss.
/// The tape is intentionally `!Send`: the multi-GPU simulator runs one
/// independent tape per modeled device thread.
#[derive(Clone, Default)]
pub struct Tape {
    pub(crate) inner: Rc<RefCell<TapeInner>>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Tape::default()
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.inner.borrow().nodes.len()
    }

    /// `true` if no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub(crate) fn push(
        &self,
        mut value: Tensor,
        parents: Vec<usize>,
        backward: Option<BackwardFn>,
        param: Option<Param>,
    ) -> Var {
        crate::nograd::forbid("tape push");
        NODES_RECORDED.fetch_add(1, Ordering::Relaxed);
        // Under reduced thread precision every activation is rounded through
        // 16-bit storage as it lands on the tape ("round-on-store"): the
        // forward computed in f32, the stored result carries f16/bf16
        // resolution into every downstream op and into the backward pass.
        let precision = half::thread_precision();
        if precision != Precision::Fp32 {
            precision.quantize_slice(value.as_mut_slice());
        }
        let act_bytes = value.numel() as u64 * precision.elem_bytes() as u64;
        let live = ACTIVATION_BYTES.fetch_add(act_bytes, Ordering::Relaxed) + act_bytes;
        ACTIVATION_PEAK.fetch_max(live, Ordering::Relaxed);
        let mut inner = self.inner.borrow_mut();
        let id = inner.nodes.len();
        inner.nodes.push(Node {
            value,
            grad: None,
            parents,
            backward,
            param,
            act_bytes,
        });
        Var {
            id,
            tape: Rc::clone(&self.inner),
        }
    }

    /// Records a constant (non-differentiable) input.
    pub fn constant(&self, value: Tensor) -> Var {
        self.push(value, Vec::new(), None, None)
    }

    /// Records a differentiable leaf whose gradient can be inspected with
    /// [`Var::grad`] after the backward pass.
    pub fn leaf(&self, value: Tensor) -> Var {
        // A leaf participates in grad accumulation but has no parents.
        self.push(value, Vec::new(), None, None)
    }

    /// Reads a [`Param`] onto the tape; after [`Tape::backward`] its
    /// gradient is accumulated into the parameter.
    pub fn read(&self, param: &Param) -> Var {
        let value = param.value().clone();
        self.push(value, Vec::new(), None, Some(param.clone()))
    }

    /// Runs the reverse pass from `loss`, accumulating gradients into every
    /// node and into linked parameters.
    ///
    /// # Errors
    /// Propagates tensor errors from gradient kernels (these indicate a bug
    /// in an op's backward function, e.g. a shape mismatch).
    ///
    /// # Panics
    /// Panics if `loss` belongs to a different tape.
    pub fn backward(&self, loss: &Var) -> Result<()> {
        crate::nograd::forbid("backward");
        assert!(
            Rc::ptr_eq(&self.inner, &loss.tape),
            "loss Var belongs to a different tape"
        );
        {
            let mut inner = self.inner.borrow_mut();
            // With loss scaling active the seed is the scale itself —
            // algebraically identical to multiplying the loss before
            // backward, without perturbing the recorded forward values.
            let scale = amp::thread_loss_scale();
            let dims = inner.nodes[loss.id].value.dims();
            let seed = if scale == 1.0 {
                Tensor::ones(dims)
            } else {
                Tensor::full(dims, scale)
            };
            inner.nodes[loss.id].grad = Some(seed);
        }
        for i in (0..=loss.id).rev() {
            // Take this node's gradient out to avoid aliasing the borrow of
            // parent values during the gradient computation.
            let upstream = {
                let mut inner = self.inner.borrow_mut();
                inner.nodes[i].grad.take()
            };
            let Some(upstream) = upstream else { continue };

            let (parents, contribs) = {
                let inner = self.inner.borrow();
                let node = &inner.nodes[i];
                match &node.backward {
                    None => (node.parents.clone(), None),
                    Some(bf) => {
                        let parent_vals: Vec<&Tensor> = node
                            .parents
                            .iter()
                            .map(|&p| &inner.nodes[p].value)
                            .collect();
                        let c = bf(&upstream, &node.value, &parent_vals)?;
                        (node.parents.clone(), Some(c))
                    }
                }
            };

            {
                let mut inner = self.inner.borrow_mut();
                if let Some(contribs) = contribs {
                    debug_assert_eq!(contribs.len(), parents.len());
                    for (p, c) in parents.into_iter().zip(contribs) {
                        if let Some(c) = c {
                            let slot = &mut inner.nodes[p].grad;
                            *slot = Some(match slot.take() {
                                None => c,
                                Some(prev) => {
                                    let sum = prev.add(&c)?;
                                    // Both temporaries are dead; feed their
                                    // buffers back to the tensor pool.
                                    gnnmark_tensor::pool::recycle(prev);
                                    gnnmark_tensor::pool::recycle(c);
                                    sum
                                }
                            });
                        }
                    }
                }
                // Restore the node's grad for inspection / param flush.
                inner.nodes[i].grad = Some(upstream);
            }
        }
        // Flush gradients into linked parameters.
        let inner = self.inner.borrow();
        for node in &inner.nodes {
            if let (Some(param), Some(grad)) = (&node.param, &node.grad) {
                param.accumulate_grad(grad.clone())?;
            }
        }
        Ok(())
    }
}

impl fmt::Debug for Tape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tape({} nodes)", self.len())
    }
}

/// A handle to a value on a [`Tape`].
///
/// `Var` is a cheap clone (id + tape reference). All differentiable
/// operations are defined as inherent methods (see the crate docs for an
/// end-to-end example).
#[derive(Clone)]
pub struct Var {
    pub(crate) id: usize,
    pub(crate) tape: Rc<RefCell<TapeInner>>,
}

impl Var {
    /// A deep copy of the current value.
    pub fn value(&self) -> Tensor {
        self.tape.borrow().nodes[self.id].value.clone()
    }

    /// Applies `f` to a borrow of the value without copying.
    pub fn with_value<R>(&self, f: impl FnOnce(&Tensor) -> R) -> R {
        f(&self.tape.borrow().nodes[self.id].value)
    }

    /// Dimensions of the value.
    pub fn dims(&self) -> Vec<usize> {
        self.with_value(|t| t.dims().to_vec())
    }

    /// A deep copy of the accumulated gradient (populated by
    /// [`Tape::backward`]).
    pub fn grad(&self) -> Option<Tensor> {
        self.tape.borrow().nodes[self.id].grad.clone()
    }

    /// Re-enters the value as a constant, cutting the gradient flow
    /// (PyTorch's `detach`). Used by adversarial training loops.
    pub fn detach(&self) -> Var {
        let value = self.value();
        self.constant_like(value)
    }

    /// Records `value` as a new constant on the same tape as `self`.
    pub fn constant_like(&self, value: Tensor) -> Var {
        let tape = Tape {
            inner: Rc::clone(&self.tape),
        };
        tape.constant(value)
    }

    pub(crate) fn same_tape(&self, other: &Var) -> bool {
        Rc::ptr_eq(&self.tape, &other.tape)
    }

    pub(crate) fn tape_handle(&self) -> Tape {
        Tape {
            inner: Rc::clone(&self.tape),
        }
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.with_value(|t| write!(f, "Var#{} {:?}", self.id, t.dims()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_counter_tracks_pushes() {
        // Process-global counter shared with concurrent tests: delta, >=.
        let before = tape_nodes_recorded();
        let tape = Tape::new();
        let a = tape.leaf(Tensor::ones(&[2]));
        let _s = a.sum_all();
        assert!(tape_nodes_recorded() >= before + 2);
    }

    #[test]
    fn constant_has_no_grad_flow() {
        let tape = Tape::new();
        let c = tape.constant(Tensor::ones(&[2]));
        let s = c.sum_all();
        tape.backward(&s).unwrap();
        // Constants do receive a grad slot but flow nowhere.
        assert!(c.grad().is_some());
    }

    #[test]
    fn leaf_grad_of_sum_is_ones() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(&[3], vec![1.0, 2.0, 3.0]).unwrap());
        let s = x.sum_all();
        tape.backward(&s).unwrap();
        assert_eq!(x.grad().unwrap().as_slice(), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn param_receives_gradient() {
        let p = Param::new("p", Tensor::from_vec(&[2], vec![2.0, 3.0]).unwrap());
        let tape = Tape::new();
        let v = tape.read(&p);
        let loss = v.square().sum_all();
        tape.backward(&loss).unwrap();
        // d/dx sum(x²) = 2x
        assert_eq!(p.grad().unwrap().as_slice(), &[4.0, 6.0]);
    }

    #[test]
    fn grad_accumulates_across_uses() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(&[1], vec![3.0]).unwrap());
        let y = x.add(&x).unwrap(); // y = 2x
        let loss = y.sum_all();
        tape.backward(&loss).unwrap();
        assert_eq!(x.grad().unwrap().as_slice(), &[2.0]);
    }

    #[test]
    fn detach_cuts_gradient() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(&[1], vec![3.0]).unwrap());
        let d = x.detach();
        let loss = d.square().sum_all();
        tape.backward(&loss).unwrap();
        assert!(x.grad().is_none());
    }

    #[test]
    #[should_panic(expected = "different tape")]
    fn cross_tape_backward_panics() {
        let t1 = Tape::new();
        let t2 = Tape::new();
        let x = t2.leaf(Tensor::ones(&[1]));
        let loss = x.sum_all();
        t1.backward(&loss).unwrap();
    }
}
