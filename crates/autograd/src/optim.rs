//! Optimizers: SGD (with momentum and weight decay) and Adam.
//!
//! Optimizer steps run through the instrumented tensor engine, so profiled
//! training includes the element-wise parameter-update kernels — Adam in
//! particular contributes a noticeable slice of the element-wise operation
//! time that Figure 2 of the paper attributes to training.

use std::cell::Cell;
use std::collections::HashMap;

use gnnmark_tensor::Tensor;

use crate::{amp, Param, ParamSet, Result};

thread_local! {
    static GRAD_CLIP: Cell<Option<f64>> = const { Cell::new(None) };
}

/// Enables (or disables, with `None`) gradient clipping for every optimizer
/// step on the *current thread*: before updating parameters, [`Sgd::step`]
/// and [`Adam::step`] rescale gradients so their global L2 norm does not
/// exceed `max_norm` (see [`ParamSet::clip_grad_norm`]).
///
/// Thread-local on purpose: the resilient suite runner executes each
/// workload on its own worker thread and enables clipping only for the
/// fallback retry of a workload that diverged, without perturbing
/// concurrently training workloads.
pub fn set_thread_grad_clip(max_norm: Option<f64>) {
    GRAD_CLIP.with(|c| c.set(max_norm));
}

/// The current thread's gradient-clipping threshold, if any.
pub fn thread_grad_clip() -> Option<f64> {
    GRAD_CLIP.with(Cell::get)
}

/// Prepares gradients for a mixed-precision optimizer step.
///
/// With loss scaling active (see [`crate::amp`]), gradients arrive from the
/// backward pass multiplied by the loss scale. This divides the scale back
/// out, but first checks finiteness: a non-finite scaled gradient means the
/// scale overshot — the gradients are discarded, the scale halves, and the
/// step is skipped (returns `false`). Runs *before* gradient clipping so
/// the clip threshold applies to true-magnitude gradients.
///
/// A no-op returning `true` when loss scaling is inactive.
fn amp_prepare(params: &ParamSet) -> Result<bool> {
    if !amp::is_active() {
        return Ok(true);
    }
    let finite = params.iter().all(|p| {
        p.grad()
            .is_none_or(|g| g.as_slice().iter().all(|v| v.is_finite()))
    });
    if !finite {
        params.zero_grad();
        amp::on_overflow();
        return Ok(false);
    }
    let scale = amp::thread_loss_scale();
    if scale != 1.0 {
        let inv = 1.0 / scale;
        for p in params {
            if let Some(g) = p.grad() {
                p.zero_grad();
                p.accumulate_grad(g.mul_scalar(inv))?;
            }
        }
    }
    amp::on_good_step();
    Ok(true)
}

/// Common interface of parameter-updating optimizers.
pub trait Optimizer {
    /// Applies one update step using the gradients accumulated in `params`,
    /// then leaves the gradients untouched (call
    /// [`ParamSet::zero_grad`] before the next forward pass).
    ///
    /// # Errors
    /// Propagates tensor shape errors (indicating corrupted gradients).
    fn step(&mut self, params: &ParamSet) -> Result<()>;

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Replaces the learning rate (for schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with optional momentum and weight decay.
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: HashMap<u64, Tensor>,
}

impl Sgd {
    /// Plain SGD with learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            velocity: HashMap::new(),
        }
    }

    /// SGD with momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Sgd {
            momentum,
            ..Sgd::new(lr)
        }
    }

    /// Adds L2 weight decay.
    pub fn weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    fn update(&mut self, p: &Param, grad: &Tensor) -> Result<()> {
        let new_value = if self.momentum > 0.0 {
            let mut vel = self
                .velocity
                .remove(&p.id())
                .unwrap_or_else(|| Tensor::zeros(grad.dims()));
            let nv = p.value().sgd_step_fused(
                grad,
                Some(&mut vel),
                self.lr,
                self.momentum,
                self.weight_decay,
            )?;
            self.velocity.insert(p.id(), vel);
            nv
        } else {
            p.value()
                .sgd_step_fused(grad, None, self.lr, 0.0, self.weight_decay)?
        };
        p.set_value(new_value);
        Ok(())
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &ParamSet) -> Result<()> {
        if !amp_prepare(params)? {
            return Ok(());
        }
        if let Some(max_norm) = thread_grad_clip() {
            params.clip_grad_norm(max_norm)?;
        }
        for p in params {
            if let Some(grad) = p.grad() {
                self.update(p, &grad)?;
            }
        }
        Ok(())
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// The Adam optimizer (Kingma & Ba, 2015) with bias correction.
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: HashMap<u64, Tensor>,
    v: HashMap<u64, Tensor>,
}

impl Adam {
    /// Adam with standard hyper-parameters (β₁ = 0.9, β₂ = 0.999, ε = 1e-8).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: HashMap::new(),
            v: HashMap::new(),
        }
    }

    /// Overrides β₁/β₂.
    pub fn with_betas(mut self, beta1: f32, beta2: f32) -> Self {
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &ParamSet) -> Result<()> {
        if !amp_prepare(params)? {
            return Ok(());
        }
        if let Some(max_norm) = thread_grad_clip() {
            params.clip_grad_norm(max_norm)?;
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for p in params {
            let Some(grad) = p.grad() else { continue };
            let mut m = self
                .m
                .remove(&p.id())
                .unwrap_or_else(|| Tensor::zeros(grad.dims()));
            let mut v = self
                .v
                .remove(&p.id())
                .unwrap_or_else(|| Tensor::zeros(grad.dims()));
            let new_value = p.value().adam_step_fused(
                &grad,
                &mut m,
                &mut v,
                self.lr,
                self.beta1,
                self.beta2,
                self.eps,
                bc1,
                bc2,
            )?;
            p.set_value(new_value);
            self.m.insert(p.id(), m);
            self.v.insert(p.id(), v);
        }
        Ok(())
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tape;

    /// Minimizes `(w - 3)²` and checks convergence.
    fn converges(opt: &mut dyn Optimizer) -> f32 {
        let mut set = ParamSet::new();
        let w = set.register(Param::new("w", Tensor::from_vec(&[1], vec![0.0]).unwrap()));
        for _ in 0..200 {
            set.zero_grad();
            let tape = Tape::new();
            let wv = tape.read(&w);
            let loss = wv.add_scalar(-3.0).square().sum_all();
            tape.backward(&loss).unwrap();
            opt.step(&set).unwrap();
        }
        let out = w.value().as_slice()[0];
        out
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let w = converges(&mut opt);
        assert!((w - 3.0).abs() < 1e-3, "w = {w}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut opt = Sgd::with_momentum(0.05, 0.9);
        let w = converges(&mut opt);
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        let w = converges(&mut opt);
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        let mut set = ParamSet::new();
        let w = set.register(Param::new("w", Tensor::from_vec(&[1], vec![5.0]).unwrap()));
        let mut opt = Sgd::new(0.1).weight_decay(0.5);
        for _ in 0..50 {
            set.zero_grad();
            let tape = Tape::new();
            let wv = tape.read(&w);
            // Zero data loss: only decay acts.
            let loss = wv.mul_scalar(0.0).sum_all();
            tape.backward(&loss).unwrap();
            opt.step(&set).unwrap();
        }
        assert!(w.value().as_slice()[0].abs() < 0.5);
    }

    #[test]
    fn learning_rate_is_adjustable() {
        let mut opt = Adam::new(0.1);
        assert_eq!(opt.learning_rate(), 0.1);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }

    #[test]
    fn thread_grad_clip_caps_update_magnitude() {
        let run = |clip: Option<f64>| -> f32 {
            let mut set = ParamSet::new();
            let w = set.register(Param::new("w", Tensor::from_vec(&[1], vec![0.0]).unwrap()));
            let tape = Tape::new();
            let wv = tape.read(&w);
            // d(loss)/dw = 100 at w = 0: an exploding gradient.
            let loss = wv.mul_scalar(100.0).sum_all();
            tape.backward(&loss).unwrap();
            set_thread_grad_clip(clip);
            let mut opt = Sgd::new(1.0);
            opt.step(&set).unwrap();
            set_thread_grad_clip(None);
            let out = w.value().as_slice()[0];
            out
        };
        let unclipped = run(None);
        let clipped = run(Some(1.0));
        assert!((unclipped + 100.0).abs() < 1e-3, "w = {unclipped}");
        assert!((clipped + 1.0).abs() < 1e-3, "w = {clipped}");
        assert_eq!(thread_grad_clip(), None, "clip leaked out of the test");
    }

    #[test]
    fn loss_scaling_unscales_before_update() {
        use gnnmark_tensor::half::Precision;
        amp::enable(Precision::Fp16);
        let mut set = ParamSet::new();
        let w = set.register(Param::new("w", Tensor::from_vec(&[1], vec![0.0]).unwrap()));
        let tape = Tape::new();
        let wv = tape.read(&w);
        // d(loss)/dw = 2.
        let loss = wv.mul_scalar(2.0).sum_all();
        tape.backward(&loss).unwrap();
        // The raw gradient arrives amplified by the loss scale...
        let raw = w.grad().unwrap().as_slice()[0];
        assert_eq!(raw, 2.0 * amp::thread_loss_scale());
        // ...but the applied update matches the true gradient.
        let mut opt = Sgd::new(0.5);
        opt.step(&set).unwrap();
        amp::disable();
        assert!((w.value().as_slice()[0] + 1.0).abs() < 1e-6);
    }

    #[test]
    fn overflow_skips_step_and_halves_scale() {
        use gnnmark_tensor::half::Precision;
        amp::enable(Precision::Fp16);
        let before = amp::thread_loss_scale();
        let mut set = ParamSet::new();
        let w = set.register(Param::new("w", Tensor::from_vec(&[1], vec![1.0]).unwrap()));
        w.accumulate_grad(Tensor::from_vec(&[1], vec![f32::INFINITY]).unwrap())
            .unwrap();
        let mut opt = Adam::new(0.1);
        opt.step(&set).unwrap();
        // Parameter untouched, gradient discarded, scale halved, retry
        // accounted: the NumericGuard-style skip-and-continue contract.
        assert_eq!(w.value().as_slice()[0], 1.0);
        assert!(w.grad().is_none());
        assert_eq!(amp::thread_loss_scale(), before / 2.0);
        let stats = amp::stats().unwrap();
        assert_eq!(stats.skipped_steps, 1);
        amp::disable();
    }

    #[test]
    fn fp16_training_converges_with_loss_scaling() {
        use gnnmark_tensor::half::{Precision, PrecisionGuard};
        let _g = PrecisionGuard::new(Precision::Fp16);
        amp::enable(Precision::Fp16);
        let mut opt = Sgd::new(0.1);
        let w = converges(&mut opt);
        amp::disable();
        // f16 resolution near 3.0 is 2^-10·2 ≈ 2e-3.
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn step_without_grads_is_noop() {
        let mut set = ParamSet::new();
        let w = set.register(Param::new("w", Tensor::from_vec(&[1], vec![1.0]).unwrap()));
        let mut opt = Adam::new(0.1);
        opt.step(&set).unwrap();
        assert_eq!(w.value().as_slice()[0], 1.0);
    }
}
