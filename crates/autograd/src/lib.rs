//! # gnnmark-autograd
//!
//! Tape-based reverse-mode automatic differentiation over
//! [`gnnmark_tensor`], plus the SGD and Adam optimizers.
//!
//! The design mirrors PyTorch's define-by-run model at minibatch
//! granularity: a [`Tape`] is created per training step, [`Var`]s are built
//! by applying operations, and [`Tape::backward`] walks the tape in reverse
//! emitting *real* tensor operations for every gradient kernel. Because
//! backward passes execute through the same instrumented tensor engine,
//! profiled GNN training includes its backward half — gathers turn into
//! scatters, GEMMs into transposed GEMMs — exactly the property the GNNMark
//! paper's training-time characterization depends on.
//!
//! ## Example
//!
//! ```
//! use gnnmark_autograd::{Param, Tape};
//! use gnnmark_tensor::Tensor;
//!
//! let w = Param::new("w", Tensor::from_vec(&[2, 1], vec![0.5, -0.5])?);
//! let tape = Tape::new();
//! let x = tape.constant(Tensor::from_vec(&[1, 2], vec![1.0, 2.0])?);
//! let y = x.matmul(&tape.read(&w))?;     // y = x·w = -0.5
//! let loss = y.square().mean_all();      // loss = 0.25
//! tape.backward(&loss)?;
//! let g = w.grad().expect("gradient populated");
//! assert!((g.get(&[0, 0]) - (2.0 * -0.5 * 1.0)).abs() < 1e-6);
//! # Ok::<(), gnnmark_tensor::TensorError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod amp;
pub mod nograd;
mod optim;
mod param;
mod tape;
mod var_ops;

pub use nograd::NoGradGuard;
pub use optim::{set_thread_grad_clip, thread_grad_clip, Adam, Optimizer, Sgd};
pub use param::{Param, ParamSet};
pub use tape::{
    activation_bytes_peak, reset_activation_peak, reset_tape_node_counter, tape_nodes_recorded,
    Tape, Var,
};

/// Result alias re-used from the tensor crate.
pub type Result<T> = gnnmark_tensor::Result<T>;
