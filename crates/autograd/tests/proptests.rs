//! Property-based gradient checks: random compositions of differentiable
//! ops must match finite differences.

use gnnmark_autograd::{Tape, Var};
use gnnmark_tensor::Tensor;
use proptest::prelude::*;

/// One differentiable unary stage usable in a random chain (restricted to
/// ops that are smooth on positive inputs so finite differences behave).
#[derive(Debug, Clone, Copy)]
enum Stage {
    Sigmoid,
    Tanh,
    Square,
    MulScalar,
    AddScalar,
    Exp,
    SoftmaxRows,
    Relu,
}

fn arb_stage() -> impl Strategy<Value = Stage> {
    proptest::sample::select(vec![
        Stage::Sigmoid,
        Stage::Tanh,
        Stage::Square,
        Stage::MulScalar,
        Stage::AddScalar,
        Stage::Exp,
        Stage::SoftmaxRows,
        Stage::Relu,
    ])
}

fn apply(stage: Stage, v: &Var) -> Var {
    match stage {
        Stage::Sigmoid => v.sigmoid(),
        Stage::Tanh => v.tanh(),
        Stage::Square => v.square(),
        Stage::MulScalar => v.mul_scalar(0.7),
        Stage::AddScalar => v.add_scalar(0.3),
        Stage::Exp => v.mul_scalar(0.2).exp(),
        Stage::SoftmaxRows => v.softmax_rows().expect("rank 2"),
        Stage::Relu => v.add_scalar(0.05).relu(),
    }
}

fn loss_of(stages: &[Stage], x0: &Tensor) -> (f64, Option<Tensor>) {
    let tape = Tape::new();
    let x = tape.leaf(x0.clone());
    let mut h = x.clone();
    for &s in stages {
        h = apply(s, &h);
    }
    let loss = h.square().mean_all();
    tape.backward(&loss).expect("backward");
    (
        loss.value().item().expect("scalar") as f64,
        x.grad(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_chains_match_finite_differences(
        stages in proptest::collection::vec(arb_stage(), 1..5),
        rows in 1usize..4,
        cols in 1usize..5,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x0 = Tensor::from_fn(&[rows, cols], |_| rng.gen_range(0.1..0.9));
        let (_, grad) = loss_of(&stages, &x0);
        let grad = grad.expect("leaf grad");

        let eps = 1e-2f32;
        for flat in 0..x0.numel() {
            let mut xp = x0.clone();
            xp.as_mut_slice()[flat] += eps;
            let mut xm = x0.clone();
            xm.as_mut_slice()[flat] -= eps;
            let (lp, _) = loss_of(&stages, &xp);
            let (lm, _) = loss_of(&stages, &xm);
            let fd = (lp - lm) / (2.0 * eps as f64);
            let a = grad.as_slice()[flat] as f64;
            prop_assert!(
                (a - fd).abs() < 5e-2 * (1.0 + fd.abs()),
                "stage chain {stages:?}: grad[{flat}] analytic {a} vs fd {fd}"
            );
        }
    }

    #[test]
    fn backward_is_linear_in_upstream_scale(
        rows in 1usize..4,
        cols in 1usize..5,
        scale in 0.5f32..4.0,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x0 = Tensor::from_fn(&[rows, cols], |_| rng.gen_range(0.2..1.0));

        let grad_of = |s: f32| -> Tensor {
            let tape = Tape::new();
            let x = tape.leaf(x0.clone());
            let loss = x.square().sum_all().mul_scalar(s);
            tape.backward(&loss).unwrap();
            x.grad().unwrap()
        };
        let g1 = grad_of(1.0);
        let gs = grad_of(scale);
        for (a, b) in g1.as_slice().iter().zip(gs.as_slice()) {
            prop_assert!((a * scale - b).abs() < 1e-3 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn grad_accumulates_additively_across_terms(
        n in 1usize..8,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x0 = Tensor::from_fn(&[n], |_| rng.gen_range(-1.0..1.0));
        // loss = sum(x) + sum(x) must give grad 2 everywhere.
        let tape = Tape::new();
        let x = tape.leaf(x0);
        let loss = x.sum_all().add(&x.sum_all()).unwrap();
        tape.backward(&loss).unwrap();
        let g = x.grad().unwrap();
        for &v in g.as_slice() {
            prop_assert!((v - 2.0).abs() < 1e-6);
        }
    }
}
