use std::fmt;

/// Error type returned by fallible tensor operations.
///
/// Every public operation that can fail (shape mismatch, bad index, invalid
/// sparse structure, …) returns `Result<T, TensorError>` rather than
/// panicking, so callers can surface precise diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two shapes that were required to match (or be compatible) do not.
    ShapeMismatch {
        /// Human-readable name of the operation that failed.
        op: &'static str,
        /// Shape of the left-hand / first operand.
        lhs: Vec<usize>,
        /// Shape of the right-hand / second operand.
        rhs: Vec<usize>,
    },
    /// The tensor rank (number of dimensions) is not what the op requires.
    RankMismatch {
        /// Human-readable name of the operation that failed.
        op: &'static str,
        /// Rank the operation expected.
        expected: usize,
        /// Rank that was provided.
        actual: usize,
    },
    /// An index (element, row, or axis) is out of bounds.
    IndexOutOfBounds {
        /// Human-readable name of the operation that failed.
        op: &'static str,
        /// Offending index value.
        index: usize,
        /// Exclusive bound the index must stay below.
        bound: usize,
    },
    /// A sparse matrix failed structural validation.
    InvalidSparse {
        /// Description of the structural violation.
        reason: String,
    },
    /// A numeric argument was invalid (e.g. zero-sized dimension, p∉(0,1)).
    InvalidArgument {
        /// Human-readable name of the operation that failed.
        op: &'static str,
        /// Description of why the argument is invalid.
        reason: String,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "shape mismatch in `{op}`: {lhs:?} vs {rhs:?}")
            }
            TensorError::RankMismatch {
                op,
                expected,
                actual,
            } => {
                write!(f, "rank mismatch in `{op}`: expected {expected}, got {actual}")
            }
            TensorError::IndexOutOfBounds { op, index, bound } => {
                write!(f, "index {index} out of bounds ({bound}) in `{op}`")
            }
            TensorError::InvalidSparse { reason } => {
                write!(f, "invalid sparse structure: {reason}")
            }
            TensorError::InvalidArgument { op, reason } => {
                write!(f, "invalid argument to `{op}`: {reason}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TensorError::ShapeMismatch {
            op: "matmul",
            lhs: vec![2, 3],
            rhs: vec![4, 5],
        };
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("[2, 3]"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
