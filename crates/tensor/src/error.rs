use std::fmt;

/// Error type returned by fallible tensor operations.
///
/// Every public operation that can fail (shape mismatch, bad index, invalid
/// sparse structure, …) returns `Result<T, TensorError>` rather than
/// panicking, so callers can surface precise diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two shapes that were required to match (or be compatible) do not.
    ShapeMismatch {
        /// Human-readable name of the operation that failed.
        op: &'static str,
        /// Shape of the left-hand / first operand.
        lhs: Vec<usize>,
        /// Shape of the right-hand / second operand.
        rhs: Vec<usize>,
    },
    /// The tensor rank (number of dimensions) is not what the op requires.
    RankMismatch {
        /// Human-readable name of the operation that failed.
        op: &'static str,
        /// Rank the operation expected.
        expected: usize,
        /// Rank that was provided.
        actual: usize,
    },
    /// An index (element, row, or axis) is out of bounds.
    IndexOutOfBounds {
        /// Human-readable name of the operation that failed.
        op: &'static str,
        /// Offending index value.
        index: usize,
        /// Exclusive bound the index must stay below.
        bound: usize,
    },
    /// A sparse matrix failed structural validation.
    InvalidSparse {
        /// Description of the structural violation.
        reason: String,
    },
    /// A numeric argument was invalid (e.g. zero-sized dimension, p∉(0,1)).
    InvalidArgument {
        /// Human-readable name of the operation that failed.
        op: &'static str,
        /// Description of why the argument is invalid.
        reason: String,
    },
    /// Training produced a numeric anomaly (NaN/Inf loss, exploding
    /// gradients, divergence) and was aborted rather than left to train
    /// garbage.
    NumericAnomaly {
        /// What was being monitored (e.g. `"epoch loss"`, `"grad norm"`).
        what: &'static str,
        /// Epoch at which the anomaly was detected (0-based).
        epoch: usize,
        /// Description of the anomalous value.
        value: String,
    },
    /// An error annotated with the workload it occurred in, so suite-level
    /// failures name their workload instead of a bare tensor error.
    InWorkload {
        /// The workload's display label (e.g. `"PSAGE-MVL"`).
        workload: String,
        /// The underlying error.
        source: Box<TensorError>,
    },
}

impl TensorError {
    /// Wraps the error with the workload it occurred in (idempotent: an
    /// already-annotated error is returned unchanged).
    #[must_use]
    pub fn in_workload(self, workload: &str) -> TensorError {
        match self {
            TensorError::InWorkload { .. } => self,
            other => TensorError::InWorkload {
                workload: workload.to_string(),
                source: Box::new(other),
            },
        }
    }

    /// The innermost error, unwrapping any workload annotation.
    pub fn root_cause(&self) -> &TensorError {
        match self {
            TensorError::InWorkload { source, .. } => source.root_cause(),
            other => other,
        }
    }
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "shape mismatch in `{op}`: {lhs:?} vs {rhs:?}")
            }
            TensorError::RankMismatch {
                op,
                expected,
                actual,
            } => {
                write!(f, "rank mismatch in `{op}`: expected {expected}, got {actual}")
            }
            TensorError::IndexOutOfBounds { op, index, bound } => {
                write!(f, "index {index} out of bounds ({bound}) in `{op}`")
            }
            TensorError::InvalidSparse { reason } => {
                write!(f, "invalid sparse structure: {reason}")
            }
            TensorError::InvalidArgument { op, reason } => {
                write!(f, "invalid argument to `{op}`: {reason}")
            }
            TensorError::NumericAnomaly { what, epoch, value } => {
                write!(f, "numeric anomaly at epoch {epoch}: {what} {value}")
            }
            TensorError::InWorkload { workload, source } => {
                write!(f, "{workload}: {source}")
            }
        }
    }
}

impl std::error::Error for TensorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TensorError::InWorkload { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TensorError::ShapeMismatch {
            op: "matmul",
            lhs: vec![2, 3],
            rhs: vec![4, 5],
        };
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("[2, 3]"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }

    #[test]
    fn workload_context_wraps_and_unwraps() {
        let e = TensorError::ShapeMismatch {
            op: "matmul",
            lhs: vec![2, 3],
            rhs: vec![4, 5],
        };
        let wrapped = e.clone().in_workload("PSAGE-MVL");
        let s = wrapped.to_string();
        assert!(s.starts_with("PSAGE-MVL: "), "{s}");
        assert!(s.contains("matmul"));
        assert_eq!(wrapped.root_cause(), &e);
        // Idempotent: re-wrapping keeps the original workload name.
        let twice = wrapped.clone().in_workload("OTHER");
        assert!(twice.to_string().starts_with("PSAGE-MVL: "));
        // std::error::Error::source exposes the cause chain.
        use std::error::Error as _;
        assert!(wrapped.source().is_some());
    }

    #[test]
    fn numeric_anomaly_displays_epoch_and_value() {
        let e = TensorError::NumericAnomaly {
            what: "epoch loss",
            epoch: 3,
            value: "NaN".to_string(),
        };
        let s = e.to_string();
        assert!(s.contains("epoch 3") && s.contains("NaN"), "{s}");
    }
}
