use std::fmt;

use crate::{Result, Tensor, TensorError};

/// A sparse matrix in Compressed Sparse Row (CSR) format.
///
/// CSR is the storage format used for graph adjacency (and normalized
/// adjacency) throughout the suite; SpMM over a `CsrMatrix` is the
/// aggregation primitive of GCN-style layers.
///
/// # Example
///
/// ```
/// use gnnmark_tensor::CsrMatrix;
///
/// // 2×3 matrix [[0, 1, 0], [2, 0, 3]]
/// let m = CsrMatrix::from_coo(2, 3, &[(0, 1, 1.0), (1, 0, 2.0), (1, 2, 3.0)])?;
/// assert_eq!(m.nnz(), 3);
/// assert_eq!(m.row(1), (&[0usize, 2][..], &[2.0f32, 3.0][..]));
/// # Ok::<(), gnnmark_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from raw components.
    ///
    /// # Errors
    /// Returns [`TensorError::InvalidSparse`] if the structure is malformed:
    /// wrong `row_ptr` length, non-monotonic row pointers, column indices out
    /// of range, or mismatched `col_idx`/`values` lengths.
    pub fn new(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f32>,
    ) -> Result<Self> {
        if row_ptr.len() != rows + 1 {
            return Err(TensorError::InvalidSparse {
                reason: format!("row_ptr length {} != rows+1 ({})", row_ptr.len(), rows + 1),
            });
        }
        if row_ptr[0] != 0 || row_ptr[rows] != col_idx.len() {
            return Err(TensorError::InvalidSparse {
                reason: "row_ptr must start at 0 and end at nnz".to_string(),
            });
        }
        if col_idx.len() != values.len() {
            return Err(TensorError::InvalidSparse {
                reason: format!(
                    "col_idx length {} != values length {}",
                    col_idx.len(),
                    values.len()
                ),
            });
        }
        for w in row_ptr.windows(2) {
            if w[0] > w[1] {
                return Err(TensorError::InvalidSparse {
                    reason: "row_ptr is not monotonically non-decreasing".to_string(),
                });
            }
        }
        if let Some(&bad) = col_idx.iter().find(|&&c| c >= cols) {
            return Err(TensorError::InvalidSparse {
                reason: format!("column index {bad} out of range ({cols})"),
            });
        }
        Ok(CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Builds a CSR matrix from COO triplets `(row, col, value)`.
    ///
    /// Duplicate coordinates are summed. Triplets need not be sorted.
    ///
    /// # Errors
    /// Returns [`TensorError::InvalidSparse`] if any coordinate is out of
    /// range.
    pub fn from_coo(rows: usize, cols: usize, triplets: &[(usize, usize, f32)]) -> Result<Self> {
        for &(r, c, _) in triplets {
            if r >= rows || c >= cols {
                return Err(TensorError::InvalidSparse {
                    reason: format!("coordinate ({r}, {c}) out of range ({rows}×{cols})"),
                });
            }
        }
        let mut sorted: Vec<(usize, usize, f32)> = triplets.to_vec();
        sorted.sort_unstable_by_key(|&(r, c, _)| (r, c));
        // Merge duplicates.
        let mut merged: Vec<(usize, usize, f32)> = Vec::with_capacity(sorted.len());
        for (r, c, v) in sorted {
            match merged.last_mut() {
                Some(last) if last.0 == r && last.1 == c => last.2 += v,
                _ => merged.push((r, c, v)),
            }
        }
        let mut row_ptr = vec![0usize; rows + 1];
        for &(r, _, _) in &merged {
            row_ptr[r + 1] += 1;
        }
        for i in 0..rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        let col_idx = merged.iter().map(|&(_, c, _)| c).collect();
        let values = merged.iter().map(|&(_, _, v)| v).collect();
        CsrMatrix::new(rows, cols, row_ptr, col_idx, values)
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            rows: n,
            cols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (structural) nonzeros.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Row-pointer array (`rows + 1` entries).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column-index array (`nnz` entries).
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// Value array (`nnz` entries).
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Mutable value array (structure is fixed; values may be rescaled).
    pub fn values_mut(&mut self) -> &mut [f32] {
        &mut self.values
    }

    /// The column indices and values of row `r`.
    ///
    /// # Panics
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> (&[usize], &[f32]) {
        let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Number of nonzeros in row `r`.
    ///
    /// # Panics
    /// Panics if `r >= rows`.
    pub fn row_nnz(&self, r: usize) -> usize {
        self.row_ptr[r + 1] - self.row_ptr[r]
    }

    /// Materializes the matrix as a dense [`Tensor`].
    pub fn to_dense(&self) -> Tensor {
        let mut out = Tensor::zeros(&[self.rows, self.cols]);
        let data = out.as_mut_slice();
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                data[r * self.cols + c] += v;
            }
        }
        out
    }

    /// Returns the transposed matrix (CSR of the transpose, i.e. CSC view
    /// materialized as CSR).
    pub fn transpose(&self) -> CsrMatrix {
        let mut triplets = Vec::with_capacity(self.nnz());
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                triplets.push((c, r, v));
            }
        }
        CsrMatrix::from_coo(self.cols, self.rows, &triplets)
            .expect("transpose of a valid matrix is valid")
    }

    /// Size of the structural arrays plus values, in bytes (as a GPU would
    /// store them with 4-byte indices).
    pub fn byte_len(&self) -> u64 {
        ((self.row_ptr.len() + self.col_idx.len()) * 4 + self.values.len() * 4) as u64
    }
}

impl fmt::Display for CsrMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CsrMatrix {}×{} nnz={}", self.rows, self.cols, self.nnz())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_coo_and_to_dense() {
        let m = CsrMatrix::from_coo(2, 3, &[(1, 2, 3.0), (0, 1, 1.0), (1, 0, 2.0)]).unwrap();
        let d = m.to_dense();
        assert_eq!(d.as_slice(), &[0.0, 1.0, 0.0, 2.0, 0.0, 3.0]);
    }

    #[test]
    fn duplicates_are_summed() {
        let m = CsrMatrix::from_coo(1, 1, &[(0, 0, 1.0), (0, 0, 2.5)]).unwrap();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.values(), &[3.5]);
    }

    #[test]
    fn validation_rejects_bad_structure() {
        assert!(CsrMatrix::new(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        assert!(CsrMatrix::new(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 1.0]).is_err());
        assert!(CsrMatrix::new(1, 2, vec![0, 1], vec![5], vec![1.0]).is_err());
        assert!(CsrMatrix::from_coo(2, 2, &[(3, 0, 1.0)]).is_err());
    }

    #[test]
    fn identity_matrix() {
        let m = CsrMatrix::identity(3);
        assert_eq!(m.nnz(), 3);
        let d = m.to_dense();
        assert_eq!(d.get(&[0, 0]), 1.0);
        assert_eq!(d.get(&[1, 1]), 1.0);
        assert_eq!(d.get(&[0, 1]), 0.0);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = CsrMatrix::from_coo(2, 3, &[(0, 2, 1.0), (1, 0, 2.0)]).unwrap();
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn row_access() {
        let m = CsrMatrix::from_coo(3, 3, &[(1, 0, 1.0), (1, 2, 2.0)]).unwrap();
        assert_eq!(m.row_nnz(0), 0);
        assert_eq!(m.row_nnz(1), 2);
        let (cols, vals) = m.row(1);
        assert_eq!(cols, &[0, 2]);
        assert_eq!(vals, &[1.0, 2.0]);
    }
}
