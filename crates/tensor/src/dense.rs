use std::fmt;

use rand::Rng;

use crate::{Result, Shape, TensorError};

/// A dense, row-major, contiguous `f32` tensor of arbitrary rank.
///
/// `Tensor` is the workhorse value type of the suite: every GNN layer's
/// activations, weights and gradients are `Tensor`s. Operations are defined
/// in [`crate::ops`] as inherent methods and free functions; each one
/// executes on CPU and emits an instrumentation event when recording is
/// enabled (see [`crate::record`]).
///
/// # Example
///
/// ```
/// use gnnmark_tensor::Tensor;
///
/// let t = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0])?;
/// assert_eq!(t.get(&[1, 0]), 3.0);
/// assert_eq!(t.numel(), 4);
/// # Ok::<(), gnnmark_tensor::TensorError>(())
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    /// Creates a tensor of zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: vec![0.0; shape.numel()],
            shape,
        }
    }

    /// Creates a tensor of ones.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: vec![value; shape.numel()],
            shape,
        }
    }

    /// Creates a rank-0 scalar tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            data: vec![value],
            shape: Shape::new(&[]),
        }
    }

    /// Creates a tensor from existing data.
    ///
    /// # Errors
    /// Returns [`TensorError::InvalidArgument`] if `data.len()` does not
    /// match the number of elements implied by `dims`.
    pub fn from_vec(dims: &[usize], data: Vec<f32>) -> Result<Self> {
        let shape = Shape::new(dims);
        if shape.numel() != data.len() {
            return Err(TensorError::InvalidArgument {
                op: "from_vec",
                reason: format!(
                    "shape {shape} implies {} elements, data has {}",
                    shape.numel(),
                    data.len()
                ),
            });
        }
        Ok(Tensor { data, shape })
    }

    /// Creates a tensor whose elements are produced by `f(flat_index)`.
    pub fn from_fn(dims: &[usize], mut f: impl FnMut(usize) -> f32) -> Self {
        let shape = Shape::new(dims);
        let data = (0..shape.numel()).map(&mut f).collect();
        Tensor { data, shape }
    }

    /// Creates a tensor of i.i.d. normal samples with the given std-dev.
    pub fn randn<R: Rng + ?Sized>(dims: &[usize], std: f32, rng: &mut R) -> Self {
        let shape = Shape::new(dims);
        let n = shape.numel();
        let mut data = Vec::with_capacity(n);
        // Box–Muller transform; draws pairs of uniforms.
        while data.len() < n {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen::<f32>();
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos() * std);
            if data.len() < n {
                data.push(r * theta.sin() * std);
            }
        }
        Tensor { data, shape }
    }

    /// Creates a tensor of i.i.d. uniform samples in `[lo, hi)`.
    pub fn uniform<R: Rng + ?Sized>(dims: &[usize], lo: f32, hi: f32, rng: &mut R) -> Self {
        let shape = Shape::new(dims);
        let data = (0..shape.numel()).map(|_| rng.gen_range(lo..hi)).collect();
        Tensor { data, shape }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension extents as a slice.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Number of elements.
    pub fn numel(&self) -> usize {
        self.shape.numel()
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Extent of dimension `axis`.
    ///
    /// # Panics
    /// Panics if `axis` is out of range.
    pub fn dim(&self, axis: usize) -> usize {
        self.shape.dim(axis)
    }

    /// Read-only view of the underlying row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its data buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    /// Panics if the index is out of bounds; use [`Shape::offset`] via
    /// [`Tensor::shape`] for a fallible variant.
    pub fn get(&self, index: &[usize]) -> f32 {
        let off = self.shape.offset(index).expect("index out of bounds");
        self.data[off]
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Panics
    /// Panics if the index is out of bounds.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.shape.offset(index).expect("index out of bounds");
        self.data[off] = value;
    }

    /// The single element of a one-element tensor.
    ///
    /// # Errors
    /// Returns [`TensorError::InvalidArgument`] if the tensor has more than
    /// one element.
    pub fn item(&self) -> Result<f32> {
        if self.numel() != 1 {
            return Err(TensorError::InvalidArgument {
                op: "item",
                reason: format!("tensor has {} elements", self.numel()),
            });
        }
        Ok(self.data[0])
    }

    /// Returns a tensor with the same data viewed under a new shape.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] if the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Tensor> {
        let new_shape = Shape::new(dims);
        if new_shape.numel() != self.numel() {
            return Err(TensorError::ShapeMismatch {
                op: "reshape",
                lhs: self.dims().to_vec(),
                rhs: dims.to_vec(),
            });
        }
        Ok(Tensor {
            data: self.data.clone(),
            shape: new_shape,
        })
    }

    /// Fraction of elements that are exactly zero.
    ///
    /// This is the quantity the paper measures for CPU→GPU transfer
    /// sparsity (Figures 7 and 8).
    pub fn sparsity(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        let zeros = self.data.iter().filter(|v| **v == 0.0).count();
        zeros as f64 / self.data.len() as f64
    }

    /// Size of the tensor's data in bytes.
    pub fn byte_len(&self) -> u64 {
        (self.data.len() * std::mem::size_of::<f32>()) as u64
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        if self.numel() <= 8 {
            write!(f, "{:?}", self.data)
        } else {
            write!(
                f,
                "[{:.4}, {:.4}, … ; {} elems]",
                self.data[0],
                self.data[1],
                self.numel()
            )
        }
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::scalar(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constructors() {
        assert_eq!(Tensor::zeros(&[2, 3]).numel(), 6);
        assert_eq!(Tensor::ones(&[3]).as_slice(), &[1.0, 1.0, 1.0]);
        assert_eq!(Tensor::full(&[2], 7.0).as_slice(), &[7.0, 7.0]);
        assert_eq!(Tensor::scalar(2.5).item().unwrap(), 2.5);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(&[2, 2], vec![1.0; 3]).is_err());
        assert!(Tensor::from_vec(&[2, 2], vec![1.0; 4]).is_ok());
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t = Tensor::zeros(&[3, 4]);
        t.set(&[2, 1], 9.0);
        assert_eq!(t.get(&[2, 1]), 9.0);
        assert_eq!(t.as_slice()[2 * 4 + 1], 9.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_fn(&[2, 6], |i| i as f32);
        let r = t.reshape(&[3, 4]).unwrap();
        assert_eq!(r.as_slice(), t.as_slice());
        assert!(t.reshape(&[5, 5]).is_err());
    }

    #[test]
    fn randn_is_deterministic_and_roughly_normal() {
        let mut rng = StdRng::seed_from_u64(42);
        let t = Tensor::randn(&[10_000], 1.0, &mut rng);
        let mean: f32 = t.as_slice().iter().sum::<f32>() / 10_000.0;
        let var: f32 =
            t.as_slice().iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 10_000.0;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");

        let mut rng2 = StdRng::seed_from_u64(42);
        let t2 = Tensor::randn(&[10_000], 1.0, &mut rng2);
        assert_eq!(t.as_slice(), t2.as_slice());
    }

    #[test]
    fn sparsity_counts_zeros() {
        let t = Tensor::from_vec(&[4], vec![0.0, 1.0, 0.0, 2.0]).unwrap();
        assert!((t.sparsity() - 0.5).abs() < 1e-9);
        assert_eq!(Tensor::zeros(&[5]).sparsity(), 1.0);
    }

    #[test]
    fn item_requires_single_element() {
        assert!(Tensor::zeros(&[2]).item().is_err());
    }
}
