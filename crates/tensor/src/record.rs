//! Thread-local recording of [`OpEvent`]s.
//!
//! Recording is off by default; ops run at full speed and drop their events.
//! A profiling session turns recording on for the current thread, runs a
//! workload, then drains the buffer:
//!
//! ```
//! use gnnmark_tensor::{record, Tensor};
//!
//! record::start_recording();
//! let _ = Tensor::ones(&[2, 2]).relu();
//! let events = record::stop_recording();
//! assert_eq!(events.len(), 1);
//! assert!(!record::is_recording());
//! ```
//!
//! The recorder is strictly per-thread, so the multi-GPU simulator can run
//! one worker thread per modeled GPU, each with an independent event stream.

use std::cell::RefCell;

use crate::instrument::OpEvent;

thread_local! {
    static RECORDER: RefCell<Option<Vec<OpEvent>>> = const { RefCell::new(None) };
}

/// Starts (or restarts) event recording on the current thread.
///
/// Any events buffered by a previous, un-drained recording are discarded.
pub fn start_recording() {
    RECORDER.with(|r| *r.borrow_mut() = Some(Vec::new()));
}

/// Stops recording on the current thread and returns the buffered events.
///
/// Returns an empty vector if recording was not active.
pub fn stop_recording() -> Vec<OpEvent> {
    RECORDER.with(|r| r.borrow_mut().take().unwrap_or_default())
}

/// Returns `true` if the current thread is recording op events.
pub fn is_recording() -> bool {
    RECORDER.with(|r| r.borrow().is_some())
}

/// Number of events buffered so far on this thread (0 when not recording).
pub fn pending_events() -> usize {
    RECORDER.with(|r| r.borrow().as_ref().map_or(0, |v| v.len()))
}

/// Emits an event if the current thread is recording; a no-op otherwise.
///
/// The event is built lazily by `f` so that disabled recording costs only a
/// thread-local flag check.
pub fn emit_with(f: impl FnOnce() -> OpEvent) {
    RECORDER.with(|r| {
        if let Some(buf) = r.borrow_mut().as_mut() {
            buf.push(f());
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instrument::OpClass;

    fn dummy_event() -> OpEvent {
        OpEvent {
            class: OpClass::ElementWise,
            kernel: "dummy",
            flops: 1,
            iops: 1,
            bytes_read: 4,
            bytes_written: 4,
            threads: 1,
            reads: vec![],
            writes: vec![],
        }
    }

    #[test]
    fn emit_only_while_recording() {
        emit_with(dummy_event);
        assert_eq!(pending_events(), 0);
        start_recording();
        emit_with(dummy_event);
        emit_with(dummy_event);
        assert_eq!(pending_events(), 2);
        let events = stop_recording();
        assert_eq!(events.len(), 2);
        assert_eq!(pending_events(), 0);
        emit_with(dummy_event);
        assert!(stop_recording().is_empty());
    }

    #[test]
    fn restart_discards_old_events() {
        start_recording();
        emit_with(dummy_event);
        start_recording();
        assert_eq!(pending_events(), 0);
        let _ = stop_recording();
    }

    #[test]
    fn recording_is_thread_local() {
        start_recording();
        let handle = std::thread::spawn(|| {
            assert!(!is_recording());
            emit_with(dummy_event);
            pending_events()
        });
        assert_eq!(handle.join().unwrap(), 0);
        assert!(is_recording());
        let _ = stop_recording();
    }
}
