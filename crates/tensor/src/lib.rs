//! # gnnmark-tensor
//!
//! An instrumented CPU tensor engine implementing the operator taxonomy that
//! the GNNMark paper (Baruah et al., ISPASS 2021) uses to characterize GNN
//! training: GEMM, GEMV, SpMM, 2-D convolution, batch normalization,
//! scatter, gather, reductions, index selection, sorting, softmax, embedding
//! lookups and element-wise operations.
//!
//! Every operation both *executes for real* on CPU and emits an [`OpEvent`]
//! describing what a GPU would have had to do: exact floating-point and
//! integer work, bytes moved, logical thread count, and the memory access
//! pattern (including the *actual* index arrays used by irregular
//! operations). The `gnnmark-gpusim` crate lowers these events onto an
//! analytical NVIDIA V100 model to reproduce the paper's architectural
//! metrics.
//!
//! ## Example
//!
//! ```
//! use gnnmark_tensor::{record, Tensor};
//!
//! record::start_recording();
//! let a = Tensor::ones(&[4, 8]);
//! let b = Tensor::ones(&[8, 2]);
//! let c = a.matmul(&b).unwrap();
//! assert_eq!(c.get(&[0, 0]), 8.0);
//! let events = record::stop_recording();
//! assert_eq!(events.len(), 1); // one GEMM kernel
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cost;
mod dense;
mod error;
pub mod half;
mod int;
pub mod instrument;
pub mod ops;
pub mod par;
pub mod pool;
pub mod record;
mod shape;
pub mod simd;
mod sparse;

pub use dense::Tensor;
pub use error::TensorError;
pub use instrument::{AccessDesc, OpClass, OpEvent};
pub use int::IntTensor;
pub use shape::Shape;
pub use sparse::CsrMatrix;

/// Convenience result alias used throughout the tensor crate.
pub type Result<T> = std::result::Result<T, TensorError>;
