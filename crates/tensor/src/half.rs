//! Reduced-precision (f16 / bf16) storage support.
//!
//! GNNMark's mixed-precision characterization stores parameters and
//! activations in 16-bit formats while computing in f32 ("convert-on-load
//! f32 compute, round-on-store"). This module provides the bit-level
//! conversions — IEEE 754 binary16 with round-to-nearest-even, and
//! bfloat16 (truncated-f32 layout, also rounded-to-nearest-even) — plus a
//! thread-local precision mode that the training loop sets so parameter
//! stores and tape activations quantize transparently.

use std::cell::Cell;

/// Numeric storage precision for parameters and activations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Precision {
    /// 32-bit IEEE single precision (the default; no quantization).
    Fp32,
    /// 16-bit IEEE half precision: 5 exponent bits, 10 mantissa bits.
    Fp16,
    /// bfloat16: f32's 8 exponent bits, 7 mantissa bits.
    Bf16,
}

impl Precision {
    /// Bytes per element in this storage format.
    pub fn elem_bytes(self) -> usize {
        match self {
            Precision::Fp32 => 4,
            Precision::Fp16 | Precision::Bf16 => 2,
        }
    }

    /// Lower-case name as used by `--precision`.
    pub fn as_str(self) -> &'static str {
        match self {
            Precision::Fp32 => "fp32",
            Precision::Fp16 => "fp16",
            Precision::Bf16 => "bf16",
        }
    }

    /// Parses a `--precision` spelling.
    pub fn parse(s: &str) -> Option<Precision> {
        match s {
            "fp32" | "f32" => Some(Precision::Fp32),
            "fp16" | "f16" | "half" => Some(Precision::Fp16),
            "bf16" | "bfloat16" => Some(Precision::Bf16),
            _ => None,
        }
    }

    /// Encodes one f32 into this format's bit pattern (low 16 bits used for
    /// the half formats; fp32 round-trips through the identity).
    pub fn encode(self, v: f32) -> u16 {
        match self {
            Precision::Fp32 => 0, // not used; fp32 params keep their Vec<f32>
            Precision::Fp16 => f32_to_f16_bits(v),
            Precision::Bf16 => f32_to_bf16_bits(v),
        }
    }

    /// Decodes one bit pattern produced by [`Precision::encode`].
    pub fn decode(self, bits: u16) -> f32 {
        match self {
            Precision::Fp32 => 0.0,
            Precision::Fp16 => f16_bits_to_f32(bits),
            Precision::Bf16 => bf16_bits_to_f32(bits),
        }
    }

    /// Rounds `v` through this storage format and back to f32. Identity for
    /// [`Precision::Fp32`]; idempotent for all formats.
    pub fn quantize(self, v: f32) -> f32 {
        match self {
            Precision::Fp32 => v,
            _ => self.decode(self.encode(v)),
        }
    }

    /// Quantizes a whole slice in place (no-op for fp32).
    pub fn quantize_slice(self, xs: &mut [f32]) {
        if self == Precision::Fp32 {
            return;
        }
        for v in xs.iter_mut() {
            *v = self.quantize(*v);
        }
    }
}

/// Right-shift with round-to-nearest-even: `v >> s`, rounding ties to even.
fn rne_shift(v: u32, s: u32) -> u32 {
    let q = v >> s;
    let rem = v & ((1u32 << s) - 1);
    let half = 1u32 << (s - 1);
    if rem > half || (rem == half && (q & 1) == 1) {
        q + 1
    } else {
        q
    }
}

/// Converts an f32 to IEEE binary16 bits with round-to-nearest-even.
pub fn f32_to_f16_bits(v: f32) -> u16 {
    let bits = v.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let man = bits & 0x007f_ffff;

    if exp == 0xff {
        // Inf / NaN: keep NaN-ness (set a mantissa bit for NaN).
        return sign | 0x7c00 | if man != 0 { 0x0200 } else { 0 };
    }
    // Unbiased exponent, then rebias for f16 (bias 15).
    let e = exp - 127 + 15;
    if e >= 0x1f {
        // Overflow → infinity.
        return sign | 0x7c00;
    }
    if e <= 0 {
        // Subnormal (or zero) in f16.
        if e < -10 {
            return sign; // Rounds to zero.
        }
        // Implicit leading 1 becomes explicit, then shift into place.
        let man = man | 0x0080_0000;
        let shift = (14 - e) as u32;
        return sign | rne_shift(man, shift) as u16;
    }
    // Normal: round the 23-bit mantissa to 10 bits. A mantissa carry
    // naturally increments the exponent (and can round up to infinity).
    let rounded = rne_shift(man, 13);
    sign | (((e as u32) << 10) + rounded) as u16
}

/// Converts IEEE binary16 bits back to f32 (exact).
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1f) as u32;
    let man = (h & 0x03ff) as u32;
    if exp == 0x1f {
        // Inf / NaN.
        let bits = sign | 0x7f80_0000 | (man << 13);
        return f32::from_bits(bits);
    }
    if exp == 0 {
        if man == 0 {
            return f32::from_bits(sign);
        }
        // Subnormal: value is man * 2^-24, exactly representable in f32.
        let mag = man as f32 * (-24f32).exp2();
        return if sign != 0 { -mag } else { mag };
    }
    let bits = sign | ((exp + 127 - 15) << 23) | (man << 13);
    f32::from_bits(bits)
}

/// Converts an f32 to bfloat16 bits with round-to-nearest-even.
pub fn f32_to_bf16_bits(v: f32) -> u16 {
    let bits = v.to_bits();
    if v.is_nan() {
        // Quiet the NaN so truncation can't produce an infinity.
        return ((bits >> 16) as u16) | 0x0040;
    }
    // Round-to-nearest-even via the add-shift trick.
    let round = ((bits >> 16) & 1) + 0x7fff;
    ((bits + round) >> 16) as u16
}

/// Converts bfloat16 bits back to f32 (exact).
pub fn bf16_bits_to_f32(b: u16) -> f32 {
    f32::from_bits((b as u32) << 16)
}

thread_local! {
    static THREAD_PRECISION: Cell<Precision> = const { Cell::new(Precision::Fp32) };
}

/// Sets the storage precision for parameters/activations created on this
/// thread, returning the previous value. The training loop sets this before
/// building a workload and restores it afterwards.
pub fn set_thread_precision(p: Precision) -> Precision {
    THREAD_PRECISION.with(|c| c.replace(p))
}

/// The storage precision active on this thread (default [`Precision::Fp32`]).
pub fn thread_precision() -> Precision {
    THREAD_PRECISION.with(Cell::get)
}

/// Restores the previous thread precision on drop — use in training loops so
/// a panicking workload doesn't leak its precision onto a pooled thread.
pub struct PrecisionGuard {
    prev: Precision,
}

impl PrecisionGuard {
    /// Sets `p` as the thread precision until the guard drops.
    pub fn new(p: Precision) -> Self {
        PrecisionGuard {
            prev: set_thread_precision(p),
        }
    }
}

impl Drop for PrecisionGuard {
    fn drop(&mut self) {
        set_thread_precision(self.prev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_round_trips_exact_values() {
        for v in [0.0f32, -0.0, 1.0, -1.0, 0.5, 2.0, 65504.0, 6.1035156e-5] {
            let q = Precision::Fp16.quantize(v);
            assert_eq!(q, v, "{v} should be exactly representable in f16");
        }
        assert_eq!(f32_to_f16_bits(0.0), 0);
        assert_eq!(f32_to_f16_bits(-0.0), 0x8000);
    }

    #[test]
    fn f16_rounds_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and 1+2^-10 → ties to even (1.0).
        let v = 1.0 + (-11f32).exp2();
        assert_eq!(Precision::Fp16.quantize(v), 1.0);
        // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9 → ties to even (1+2^-9).
        let v = 1.0 + 3.0 * (-11f32).exp2();
        assert_eq!(Precision::Fp16.quantize(v), 1.0 + (-9f32).exp2());
    }

    #[test]
    fn f16_overflow_and_subnormals() {
        assert_eq!(Precision::Fp16.quantize(1e6), f32::INFINITY);
        assert_eq!(Precision::Fp16.quantize(-1e6), f32::NEG_INFINITY);
        assert!(Precision::Fp16.quantize(f32::NAN).is_nan());
        // Smallest f16 subnormal is 2^-24; half of it rounds to zero (ties-to-even).
        let tiny = (-24f32).exp2();
        assert_eq!(Precision::Fp16.quantize(tiny), tiny);
        assert_eq!(Precision::Fp16.quantize(tiny / 2.0), 0.0);
        assert_eq!(Precision::Fp16.quantize(tiny * 1.5), tiny * 2.0);
    }

    #[test]
    fn f16_quantize_is_idempotent() {
        for i in 0..1000 {
            let v = (i as f32 * 0.731 - 300.0).tan();
            let q = Precision::Fp16.quantize(v);
            let qq = Precision::Fp16.quantize(q);
            assert!(q == qq || (q.is_nan() && qq.is_nan()), "{v} -> {q} -> {qq}");
        }
    }

    #[test]
    fn bf16_round_trips_and_rounds() {
        for v in [0.0f32, -0.0, 1.0, -2.5, 3.0e38, 1.0e-38] {
            let q = Precision::Bf16.quantize(v);
            let rel = if v == 0.0 { 0.0 } else { ((q - v) / v).abs() };
            assert!(rel <= 1.0 / 128.0, "{v} -> {q}");
        }
        // bf16 keeps f32's exponent range: no overflow at f32::MAX.
        assert!(Precision::Bf16.quantize(f32::MAX).is_finite() || f32::MAX.to_bits() & 0xffff > 0x7fff);
        assert!(Precision::Bf16.quantize(f32::NAN).is_nan());
        // Idempotent.
        for i in 0..1000 {
            let v = (i as f32 * 1.371 - 500.0).tan();
            let q = Precision::Bf16.quantize(v);
            let qq = Precision::Bf16.quantize(q);
            assert!(q == qq || (q.is_nan() && qq.is_nan()));
        }
    }

    #[test]
    fn f16_matches_reference_table() {
        // Spot-checked against the IEEE 754 binary16 tables.
        assert_eq!(f32_to_f16_bits(1.0), 0x3c00);
        assert_eq!(f32_to_f16_bits(-2.0), 0xc000);
        assert_eq!(f32_to_f16_bits(65504.0), 0x7bff);
        assert_eq!(f16_bits_to_f32(0x3555), 0.333_251_95);
        assert_eq!(f32_to_f16_bits(0.333_251_95), 0x3555);
    }

    #[test]
    fn precision_parse_and_bytes() {
        assert_eq!(Precision::parse("fp16"), Some(Precision::Fp16));
        assert_eq!(Precision::parse("bf16"), Some(Precision::Bf16));
        assert_eq!(Precision::parse("fp32"), Some(Precision::Fp32));
        assert_eq!(Precision::parse("int8"), None);
        assert_eq!(Precision::Fp16.elem_bytes(), 2);
        assert_eq!(Precision::Fp32.elem_bytes(), 4);
        assert_eq!(Precision::Bf16.as_str(), "bf16");
    }

    #[test]
    fn thread_precision_guard_restores() {
        assert_eq!(thread_precision(), Precision::Fp32);
        {
            let _g = PrecisionGuard::new(Precision::Fp16);
            assert_eq!(thread_precision(), Precision::Fp16);
        }
        assert_eq!(thread_precision(), Precision::Fp32);
    }
}
