//! Runtime-dispatched SIMD microkernels for the hot tensor loops.
//!
//! Every dense kernel in [`crate::ops`] funnels its innermost loop through
//! this module: an explicit f32x8/f32x4 lane layer with implementations for
//! AVX2+FMA (256-bit), SSE2 (128-bit), NEON (128-bit, aarch64) and a scalar
//! reference. The active lane is picked **at runtime** — the binary is
//! compiled for the baseline target, CPU features are detected once, and the
//! `GNNMARK_SIMD={auto,avx2,sse2,neon,scalar}` environment variable (or
//! [`set_level`]) overrides the choice.
//!
//! # Determinism contract: two lanes
//!
//! * **Scalar lane** ([`SimdLevel::Scalar`]): the reference loops are the
//!   exact expressions the pre-SIMD kernels used, so results are
//!   *byte-identical* to historical runs at every thread count. Golden
//!   snapshots and the bit-exact determinism tests run in this lane.
//! * **SIMD lanes** (`Sse2`/`Avx2`/`Neon`): the AVX2 and NEON lanes contract
//!   multiply-adds with FMA and the reductions use multiple accumulators, so
//!   results differ from the scalar lane in final ULPs. Each lane is still
//!   fully deterministic and — like the scalar kernels — accumulates every
//!   output element in a fixed k-order, so results remain bit-identical at
//!   every *thread* count within a lane. SIMD-vs-scalar agreement is
//!   verified by tolerance proptests (`tests/simd_parity.rs`).
//!
//! Thread composition: the `par` pool partitions rows/chunks, each worker
//! then runs these lane kernels, so threads × lanes multiply. Kernels accept
//! the level as an argument — callers resolve [`level`] once *on the
//! requesting thread* (so a thread-local override set by a test or by the
//! verification gate is honored) and capture it into the parallel closure.

use std::cell::Cell;
use std::sync::atomic::{AtomicU8, Ordering};

/// Instruction-set lane the microkernels execute with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdLevel {
    /// Reference Rust loops — byte-identical to the pre-SIMD kernels.
    Scalar,
    /// 128-bit SSE2 lanes (x86-64 baseline, no FMA contraction).
    Sse2,
    /// 256-bit AVX2 lanes with FMA contraction (requires `avx2` + `fma`).
    Avx2,
    /// 128-bit NEON lanes with FMA contraction (aarch64).
    Neon,
}

impl SimdLevel {
    /// Lower-case name, matching the `GNNMARK_SIMD` spellings.
    pub fn as_str(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse2 => "sse2",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Neon => "neon",
        }
    }
}

/// 0 = not yet initialized from the environment.
static LEVEL: AtomicU8 = AtomicU8::new(0);

thread_local! {
    static LEVEL_OVERRIDE: Cell<Option<SimdLevel>> = const { Cell::new(None) };
}

fn encode(l: SimdLevel) -> u8 {
    match l {
        SimdLevel::Scalar => 1,
        SimdLevel::Sse2 => 2,
        SimdLevel::Avx2 => 3,
        SimdLevel::Neon => 4,
    }
}

fn decode(v: u8) -> Option<SimdLevel> {
    match v {
        1 => Some(SimdLevel::Scalar),
        2 => Some(SimdLevel::Sse2),
        3 => Some(SimdLevel::Avx2),
        4 => Some(SimdLevel::Neon),
        _ => None,
    }
}

/// The widest lane the running CPU supports.
pub fn detect() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        if std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("fma") {
            return SimdLevel::Avx2;
        }
        // SSE2 is part of the x86-64 baseline.
        return SimdLevel::Sse2;
    }
    #[cfg(target_arch = "aarch64")]
    {
        // NEON is part of the aarch64 baseline.
        return SimdLevel::Neon;
    }
    #[allow(unreachable_code)]
    SimdLevel::Scalar
}

/// Clamps a requested level to what the CPU actually supports (falling back
/// to the detected best level when the request is unsupported here).
fn clamp_supported(requested: SimdLevel) -> SimdLevel {
    let best = detect();
    match requested {
        SimdLevel::Scalar => SimdLevel::Scalar,
        SimdLevel::Sse2 => {
            if cfg!(target_arch = "x86_64") {
                SimdLevel::Sse2
            } else {
                best
            }
        }
        SimdLevel::Avx2 => {
            if best == SimdLevel::Avx2 {
                SimdLevel::Avx2
            } else {
                best
            }
        }
        SimdLevel::Neon => {
            if cfg!(target_arch = "aarch64") {
                SimdLevel::Neon
            } else {
                best
            }
        }
    }
}

fn level_from_env() -> SimdLevel {
    match std::env::var("GNNMARK_SIMD").as_deref() {
        Ok("scalar") => SimdLevel::Scalar,
        Ok("sse2") => clamp_supported(SimdLevel::Sse2),
        Ok("avx2") => clamp_supported(SimdLevel::Avx2),
        Ok("neon") => clamp_supported(SimdLevel::Neon),
        // "auto", unset, or unrecognized: detect.
        _ => detect(),
    }
}

/// The active SIMD level: a thread-local override (see [`with_level`]) if
/// one is set, else the process-wide setting (initialized lazily from
/// `GNNMARK_SIMD` / CPU detection).
pub fn level() -> SimdLevel {
    if let Some(l) = LEVEL_OVERRIDE.with(Cell::get) {
        return l;
    }
    match decode(LEVEL.load(Ordering::Relaxed)) {
        Some(l) => l,
        None => {
            let l = level_from_env();
            LEVEL.store(encode(l), Ordering::Relaxed);
            l
        }
    }
}

/// Sets the process-wide SIMD level (clamped to what the CPU supports).
/// Returns the level actually installed.
pub fn set_level(requested: SimdLevel) -> SimdLevel {
    let l = clamp_supported(requested);
    LEVEL.store(encode(l), Ordering::Relaxed);
    l
}

/// Runs `f` with a *thread-local* SIMD level override (clamped to what the
/// CPU supports), restoring the previous override afterwards — including on
/// panic. Kernels dispatched from this thread (even when their inner loops
/// run on pool workers — callers resolve the level before forking) use the
/// override; other threads are unaffected, so concurrently running tests
/// don't interfere.
pub fn with_level<R>(requested: SimdLevel, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<SimdLevel>);
    impl Drop for Restore {
        fn drop(&mut self) {
            LEVEL_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let prev = LEVEL_OVERRIDE.with(|c| c.replace(Some(clamp_supported(requested))));
    let _restore = Restore(prev);
    f()
}

/// Element-wise binary kernels with a dedicated SIMD path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BinOp {
    /// `a + b`
    Add,
    /// `a - b`
    Sub,
    /// `a * b`
    Mul,
    /// `a / b`
    Div,
    /// `max(a, b)`
    Max,
    /// `a + alpha * b`
    Axpy(f32),
    /// `a * b * s` (dropout mask-and-rescale)
    MulScale(f32),
}

/// Element-wise unary kernels with a dedicated SIMD path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UnOp {
    /// `max(x, 0)`
    Relu,
    /// `-x`
    Neg,
    /// `x * x`
    Square,
    /// `x * s`
    MulScalar(f32),
    /// `x + s`
    AddScalar(f32),
}

// ---------------------------------------------------------------------------
// Scalar reference lane. These loops ARE the determinism contract: they must
// stay expression-for-expression identical to the historical kernels.
// ---------------------------------------------------------------------------

mod scalar {
    use super::{BinOp, UnOp};

    pub fn binary(op: BinOp, a: &[f32], b: &[f32], out: &mut [f32]) {
        match op {
            BinOp::Add => each(a, b, out, |x, y| x + y),
            BinOp::Sub => each(a, b, out, |x, y| x - y),
            BinOp::Mul => each(a, b, out, |x, y| x * y),
            BinOp::Div => each(a, b, out, |x, y| x / y),
            BinOp::Max => each(a, b, out, f32::max),
            BinOp::Axpy(alpha) => each(a, b, out, move |x, y| x + alpha * y),
            BinOp::MulScale(s) => each(a, b, out, move |x, y| x * y * s),
        }
    }

    #[inline]
    fn each(a: &[f32], b: &[f32], out: &mut [f32], f: impl Fn(f32, f32) -> f32) {
        for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
            *o = f(x, y);
        }
    }

    pub fn unary(op: UnOp, src: &[f32], out: &mut [f32]) {
        match op {
            UnOp::Relu => each1(src, out, |x| x.max(0.0)),
            UnOp::Neg => each1(src, out, |x| -x),
            UnOp::Square => each1(src, out, |x| x * x),
            UnOp::MulScalar(s) => each1(src, out, move |x| x * s),
            UnOp::AddScalar(s) => each1(src, out, move |x| x + s),
        }
    }

    #[inline]
    fn each1(src: &[f32], out: &mut [f32], f: impl Fn(f32) -> f32) {
        for (o, &x) in out.iter_mut().zip(src) {
            *o = f(x);
        }
    }

    pub fn accumulate(dst: &mut [f32], src: &[f32]) {
        for (o, &x) in dst.iter_mut().zip(src) {
            *o += x;
        }
    }

    pub fn axpy(dst: &mut [f32], alpha: f32, src: &[f32]) {
        for (o, &s) in dst.iter_mut().zip(src) {
            *o += alpha * s;
        }
    }

    pub fn axpy8(dst: &mut [f32], a: &[f32; 8], b: &[f32], stride: usize) {
        let (b0, b1, b2, b3) = (b, &b[stride..], &b[2 * stride..], &b[3 * stride..]);
        let (b4, b5, b6, b7) = (&b[4 * stride..], &b[5 * stride..], &b[6 * stride..], &b[7 * stride..]);
        let (a0, a1, a2, a3) = (a[0], a[1], a[2], a[3]);
        let (a4, a5, a6, a7) = (a[4], a[5], a[6], a[7]);
        for (j, o) in dst.iter_mut().enumerate() {
            *o += a0 * b0[j]
                + a1 * b1[j]
                + a2 * b2[j]
                + a3 * b3[j]
                + a4 * b4[j]
                + a5 * b5[j]
                + a6 * b6[j]
                + a7 * b7[j];
        }
    }

    pub fn vsum(xs: &[f32]) -> f32 {
        xs.iter().sum()
    }

    pub fn vsumsq(xs: &[f32]) -> f32 {
        xs.iter().map(|&v| v * v).sum()
    }

    pub fn vdot(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(&x, &y)| x * y).sum()
    }

    pub fn vmax(xs: &[f32]) -> f32 {
        xs.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    pub fn div_scalar(inout: &mut [f32], denom: f32) {
        for o in inout.iter_mut() {
            *o /= denom;
        }
    }

    pub fn sub2(src: &[f32], s1: f32, s2: f32, out: &mut [f32]) {
        for (o, &v) in out.iter_mut().zip(src) {
            *o = v - s1 - s2;
        }
    }
}

// ---------------------------------------------------------------------------
// x86-64: SSE2 (baseline, mul+add — matches the scalar association per
// element for the map kernels) and AVX2+FMA (runtime-detected).
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    #![allow(unsafe_op_in_unsafe_fn)]

    use super::{BinOp, UnOp};
    use std::arch::x86_64::*;

    // ---- SSE2 (always available on x86_64) --------------------------------

    pub fn binary_sse2(op: BinOp, a: &[f32], b: &[f32], out: &mut [f32]) {
        let n = out.len();
        let mut j = 0;
        unsafe {
            macro_rules! lanes {
                ($combine:expr, $tail:expr) => {{
                    while j + 4 <= n {
                        let x = _mm_loadu_ps(a.as_ptr().add(j));
                        let y = _mm_loadu_ps(b.as_ptr().add(j));
                        _mm_storeu_ps(out.as_mut_ptr().add(j), $combine(x, y));
                        j += 4;
                    }
                    while j < n {
                        out[j] = $tail(a[j], b[j]);
                        j += 1;
                    }
                }};
            }
            match op {
                BinOp::Add => lanes!(|x, y| _mm_add_ps(x, y), |x: f32, y: f32| x + y),
                BinOp::Sub => lanes!(|x, y| _mm_sub_ps(x, y), |x: f32, y: f32| x - y),
                BinOp::Mul => lanes!(|x, y| _mm_mul_ps(x, y), |x: f32, y: f32| x * y),
                BinOp::Div => lanes!(|x, y| _mm_div_ps(x, y), |x: f32, y: f32| x / y),
                BinOp::Max => lanes!(|x, y| _mm_max_ps(x, y), f32::max),
                BinOp::Axpy(alpha) => {
                    let va = _mm_set1_ps(alpha);
                    lanes!(
                        |x, y| _mm_add_ps(x, _mm_mul_ps(va, y)),
                        |x: f32, y: f32| x + alpha * y
                    )
                }
                BinOp::MulScale(s) => {
                    let vs = _mm_set1_ps(s);
                    lanes!(
                        |x, y| _mm_mul_ps(_mm_mul_ps(x, y), vs),
                        |x: f32, y: f32| x * y * s
                    )
                }
            }
        }
    }

    pub fn unary_sse2(op: UnOp, src: &[f32], out: &mut [f32]) {
        let n = out.len();
        let mut j = 0;
        unsafe {
            macro_rules! lanes {
                ($map:expr, $tail:expr) => {{
                    while j + 4 <= n {
                        let x = _mm_loadu_ps(src.as_ptr().add(j));
                        _mm_storeu_ps(out.as_mut_ptr().add(j), $map(x));
                        j += 4;
                    }
                    while j < n {
                        out[j] = $tail(src[j]);
                        j += 1;
                    }
                }};
            }
            match op {
                UnOp::Relu => {
                    let z = _mm_setzero_ps();
                    // max(x, 0): maxps returns the second operand on NaN,
                    // matching `f32::max(NaN, 0.0) == 0.0`.
                    lanes!(|x| _mm_max_ps(x, z), |x: f32| x.max(0.0))
                }
                UnOp::Neg => {
                    let sign = _mm_set1_ps(-0.0);
                    lanes!(|x| _mm_xor_ps(x, sign), |x: f32| -x)
                }
                UnOp::Square => lanes!(|x| _mm_mul_ps(x, x), |x: f32| x * x),
                UnOp::MulScalar(s) => {
                    let vs = _mm_set1_ps(s);
                    lanes!(|x| _mm_mul_ps(x, vs), |x: f32| x * s)
                }
                UnOp::AddScalar(s) => {
                    let vs = _mm_set1_ps(s);
                    lanes!(|x| _mm_add_ps(x, vs), |x: f32| x + s)
                }
            }
        }
    }

    pub fn accumulate_sse2(dst: &mut [f32], src: &[f32]) {
        let n = dst.len();
        let mut j = 0;
        unsafe {
            while j + 4 <= n {
                let d = _mm_loadu_ps(dst.as_ptr().add(j));
                let s = _mm_loadu_ps(src.as_ptr().add(j));
                _mm_storeu_ps(dst.as_mut_ptr().add(j), _mm_add_ps(d, s));
                j += 4;
            }
        }
        while j < n {
            dst[j] += src[j];
            j += 1;
        }
    }

    pub fn axpy_sse2(dst: &mut [f32], alpha: f32, src: &[f32]) {
        let n = dst.len();
        let mut j = 0;
        unsafe {
            let va = _mm_set1_ps(alpha);
            while j + 4 <= n {
                let d = _mm_loadu_ps(dst.as_ptr().add(j));
                let s = _mm_loadu_ps(src.as_ptr().add(j));
                _mm_storeu_ps(dst.as_mut_ptr().add(j), _mm_add_ps(d, _mm_mul_ps(va, s)));
                j += 4;
            }
        }
        while j < n {
            dst[j] += alpha * src[j];
            j += 1;
        }
    }

    pub fn axpy8_sse2(dst: &mut [f32], a: &[f32; 8], b: &[f32], stride: usize) {
        let n = dst.len();
        let mut j = 0;
        unsafe {
            let va: [__m128; 8] = std::array::from_fn(|r| _mm_set1_ps(a[r]));
            while j + 4 <= n {
                // Same association as the scalar lane: the eight products
                // are tree-summed, then added into the accumulator.
                let p = |r: usize| _mm_mul_ps(va[r], _mm_loadu_ps(b.as_ptr().add(r * stride + j)));
                let t01 = _mm_add_ps(p(0), p(1));
                let t23 = _mm_add_ps(p(2), p(3));
                let t45 = _mm_add_ps(p(4), p(5));
                let t67 = _mm_add_ps(p(6), p(7));
                let t = _mm_add_ps(_mm_add_ps(t01, t23), _mm_add_ps(t45, t67));
                let c = _mm_loadu_ps(dst.as_ptr().add(j));
                _mm_storeu_ps(dst.as_mut_ptr().add(j), _mm_add_ps(c, t));
                j += 4;
            }
        }
        while j < n {
            let mut t = 0.0f32;
            // Pairwise like the vector path to stay self-consistent.
            let t01 = a[0] * b[j] + a[1] * b[stride + j];
            let t23 = a[2] * b[2 * stride + j] + a[3] * b[3 * stride + j];
            let t45 = a[4] * b[4 * stride + j] + a[5] * b[5 * stride + j];
            let t67 = a[6] * b[6 * stride + j] + a[7] * b[7 * stride + j];
            t += (t01 + t23) + (t45 + t67);
            dst[j] += t;
            j += 1;
        }
    }

    pub fn vsum_sse2(xs: &[f32]) -> f32 {
        let n = xs.len();
        let mut j = 0;
        let mut acc = unsafe {
            let mut a0 = _mm_setzero_ps();
            let mut a1 = _mm_setzero_ps();
            while j + 8 <= n {
                a0 = _mm_add_ps(a0, _mm_loadu_ps(xs.as_ptr().add(j)));
                a1 = _mm_add_ps(a1, _mm_loadu_ps(xs.as_ptr().add(j + 4)));
                j += 8;
            }
            hsum128(_mm_add_ps(a0, a1))
        };
        while j < n {
            acc += xs[j];
            j += 1;
        }
        acc
    }

    pub fn vsumsq_sse2(xs: &[f32]) -> f32 {
        let n = xs.len();
        let mut j = 0;
        let mut acc = unsafe {
            let mut a0 = _mm_setzero_ps();
            let mut a1 = _mm_setzero_ps();
            while j + 8 <= n {
                let x0 = _mm_loadu_ps(xs.as_ptr().add(j));
                let x1 = _mm_loadu_ps(xs.as_ptr().add(j + 4));
                a0 = _mm_add_ps(a0, _mm_mul_ps(x0, x0));
                a1 = _mm_add_ps(a1, _mm_mul_ps(x1, x1));
                j += 8;
            }
            hsum128(_mm_add_ps(a0, a1))
        };
        while j < n {
            acc += xs[j] * xs[j];
            j += 1;
        }
        acc
    }

    pub fn vdot_sse2(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len().min(b.len());
        let mut j = 0;
        let mut acc = unsafe {
            let mut a0 = _mm_setzero_ps();
            let mut a1 = _mm_setzero_ps();
            while j + 8 <= n {
                a0 = _mm_add_ps(
                    a0,
                    _mm_mul_ps(_mm_loadu_ps(a.as_ptr().add(j)), _mm_loadu_ps(b.as_ptr().add(j))),
                );
                a1 = _mm_add_ps(
                    a1,
                    _mm_mul_ps(
                        _mm_loadu_ps(a.as_ptr().add(j + 4)),
                        _mm_loadu_ps(b.as_ptr().add(j + 4)),
                    ),
                );
                j += 8;
            }
            hsum128(_mm_add_ps(a0, a1))
        };
        while j < n {
            acc += a[j] * b[j];
            j += 1;
        }
        acc
    }

    pub fn vmax_sse2(xs: &[f32]) -> f32 {
        let n = xs.len();
        let mut j = 0;
        let mut m = f32::NEG_INFINITY;
        unsafe {
            if n >= 4 {
                let mut vm = _mm_set1_ps(f32::NEG_INFINITY);
                while j + 4 <= n {
                    vm = _mm_max_ps(vm, _mm_loadu_ps(xs.as_ptr().add(j)));
                    j += 4;
                }
                let mut lanes = [0.0f32; 4];
                _mm_storeu_ps(lanes.as_mut_ptr(), vm);
                for &l in &lanes {
                    m = m.max(l);
                }
            }
        }
        while j < n {
            m = m.max(xs[j]);
            j += 1;
        }
        m
    }

    pub fn div_scalar_sse2(inout: &mut [f32], denom: f32) {
        let n = inout.len();
        let mut j = 0;
        unsafe {
            let vd = _mm_set1_ps(denom);
            while j + 4 <= n {
                let x = _mm_loadu_ps(inout.as_ptr().add(j));
                _mm_storeu_ps(inout.as_mut_ptr().add(j), _mm_div_ps(x, vd));
                j += 4;
            }
        }
        while j < n {
            inout[j] /= denom;
            j += 1;
        }
    }

    pub fn sub2_sse2(src: &[f32], s1: f32, s2: f32, out: &mut [f32]) {
        let n = out.len();
        let mut j = 0;
        unsafe {
            let v1 = _mm_set1_ps(s1);
            let v2 = _mm_set1_ps(s2);
            while j + 4 <= n {
                let x = _mm_loadu_ps(src.as_ptr().add(j));
                _mm_storeu_ps(out.as_mut_ptr().add(j), _mm_sub_ps(_mm_sub_ps(x, v1), v2));
                j += 4;
            }
        }
        while j < n {
            out[j] = src[j] - s1 - s2;
            j += 1;
        }
    }

    /// Horizontal sum of one 128-bit register, low lane to high lane —
    /// fixed order so results are reproducible.
    #[inline]
    unsafe fn hsum128(v: __m128) -> f32 {
        let mut lanes = [0.0f32; 4];
        _mm_storeu_ps(lanes.as_mut_ptr(), v);
        ((lanes[0] + lanes[1]) + lanes[2]) + lanes[3]
    }

    // ---- AVX2 + FMA (runtime detected) ------------------------------------

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn binary_avx2(op: BinOp, a: &[f32], b: &[f32], out: &mut [f32]) {
        let n = out.len();
        let mut j = 0;
        macro_rules! lanes {
            ($combine:expr, $tail:expr) => {{
                while j + 8 <= n {
                    let x = _mm256_loadu_ps(a.as_ptr().add(j));
                    let y = _mm256_loadu_ps(b.as_ptr().add(j));
                    _mm256_storeu_ps(out.as_mut_ptr().add(j), $combine(x, y));
                    j += 8;
                }
                while j < n {
                    out[j] = $tail(a[j], b[j]);
                    j += 1;
                }
            }};
        }
        match op {
            BinOp::Add => lanes!(|x, y| _mm256_add_ps(x, y), |x: f32, y: f32| x + y),
            BinOp::Sub => lanes!(|x, y| _mm256_sub_ps(x, y), |x: f32, y: f32| x - y),
            BinOp::Mul => lanes!(|x, y| _mm256_mul_ps(x, y), |x: f32, y: f32| x * y),
            BinOp::Div => lanes!(|x, y| _mm256_div_ps(x, y), |x: f32, y: f32| x / y),
            BinOp::Max => lanes!(|x, y| _mm256_max_ps(x, y), f32::max),
            BinOp::Axpy(alpha) => {
                let va = _mm256_set1_ps(alpha);
                lanes!(
                    |x, y| _mm256_fmadd_ps(va, y, x),
                    |x: f32, y: f32| alpha.mul_add(y, x)
                )
            }
            BinOp::MulScale(s) => {
                let vs = _mm256_set1_ps(s);
                lanes!(
                    |x, y| _mm256_mul_ps(_mm256_mul_ps(x, y), vs),
                    |x: f32, y: f32| x * y * s
                )
            }
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn unary_avx2(op: UnOp, src: &[f32], out: &mut [f32]) {
        let n = out.len();
        let mut j = 0;
        macro_rules! lanes {
            ($map:expr, $tail:expr) => {{
                while j + 8 <= n {
                    let x = _mm256_loadu_ps(src.as_ptr().add(j));
                    _mm256_storeu_ps(out.as_mut_ptr().add(j), $map(x));
                    j += 8;
                }
                while j < n {
                    out[j] = $tail(src[j]);
                    j += 1;
                }
            }};
        }
        match op {
            UnOp::Relu => {
                let z = _mm256_setzero_ps();
                lanes!(|x| _mm256_max_ps(x, z), |x: f32| x.max(0.0))
            }
            UnOp::Neg => {
                let sign = _mm256_set1_ps(-0.0);
                lanes!(|x| _mm256_xor_ps(x, sign), |x: f32| -x)
            }
            UnOp::Square => lanes!(|x| _mm256_mul_ps(x, x), |x: f32| x * x),
            UnOp::MulScalar(s) => {
                let vs = _mm256_set1_ps(s);
                lanes!(|x| _mm256_mul_ps(x, vs), |x: f32| x * s)
            }
            UnOp::AddScalar(s) => {
                let vs = _mm256_set1_ps(s);
                lanes!(|x| _mm256_add_ps(x, vs), |x: f32| x + s)
            }
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn accumulate_avx2(dst: &mut [f32], src: &[f32]) {
        let n = dst.len();
        let mut j = 0;
        while j + 8 <= n {
            let d = _mm256_loadu_ps(dst.as_ptr().add(j));
            let s = _mm256_loadu_ps(src.as_ptr().add(j));
            _mm256_storeu_ps(dst.as_mut_ptr().add(j), _mm256_add_ps(d, s));
            j += 8;
        }
        while j < n {
            dst[j] += src[j];
            j += 1;
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn axpy_avx2(dst: &mut [f32], alpha: f32, src: &[f32]) {
        let n = dst.len();
        let va = _mm256_set1_ps(alpha);
        let mut j = 0;
        while j + 16 <= n {
            let d0 = _mm256_loadu_ps(dst.as_ptr().add(j));
            let d1 = _mm256_loadu_ps(dst.as_ptr().add(j + 8));
            let s0 = _mm256_loadu_ps(src.as_ptr().add(j));
            let s1 = _mm256_loadu_ps(src.as_ptr().add(j + 8));
            _mm256_storeu_ps(dst.as_mut_ptr().add(j), _mm256_fmadd_ps(va, s0, d0));
            _mm256_storeu_ps(dst.as_mut_ptr().add(j + 8), _mm256_fmadd_ps(va, s1, d1));
            j += 16;
        }
        while j + 8 <= n {
            let d = _mm256_loadu_ps(dst.as_ptr().add(j));
            let s = _mm256_loadu_ps(src.as_ptr().add(j));
            _mm256_storeu_ps(dst.as_mut_ptr().add(j), _mm256_fmadd_ps(va, s, d));
            j += 8;
        }
        while j < n {
            dst[j] = alpha.mul_add(src[j], dst[j]);
            j += 1;
        }
    }

    /// Two-row variant of [`axpy8_avx2`]: updates two independent output
    /// rows against the same 8-row B panel, so each B lane is loaded once
    /// and FMA'd twice. Per-element accumulation order is identical to two
    /// sequential single-row updates (the rows never mix).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn axpy8x2_avx2(
        dst0: &mut [f32],
        dst1: &mut [f32],
        a0: &[f32; 8],
        a1: &[f32; 8],
        b: &[f32],
        stride: usize,
    ) {
        let n = dst0.len();
        debug_assert_eq!(dst1.len(), n);
        let bp = b.as_ptr();
        let mut j = 0;
        while j + 8 <= n {
            let mut c0 = _mm256_loadu_ps(dst0.as_ptr().add(j));
            let mut c1 = _mm256_loadu_ps(dst1.as_ptr().add(j));
            macro_rules! step {
                ($r:expr) => {{
                    let bv = _mm256_loadu_ps(bp.add($r * stride + j));
                    c0 = _mm256_fmadd_ps(_mm256_set1_ps(a0[$r]), bv, c0);
                    c1 = _mm256_fmadd_ps(_mm256_set1_ps(a1[$r]), bv, c1);
                }};
            }
            step!(0);
            step!(1);
            step!(2);
            step!(3);
            step!(4);
            step!(5);
            step!(6);
            step!(7);
            _mm256_storeu_ps(dst0.as_mut_ptr().add(j), c0);
            _mm256_storeu_ps(dst1.as_mut_ptr().add(j), c1);
            j += 8;
        }
        while j < n {
            let mut c0 = dst0[j];
            let mut c1 = dst1[j];
            for r in 0..8 {
                let bv = b[r * stride + j];
                c0 = a0[r].mul_add(bv, c0);
                c1 = a1[r].mul_add(bv, c1);
            }
            dst0[j] = c0;
            dst1[j] = c1;
            j += 1;
        }
    }

    /// `dst[j] += Σ_r a[r]·b[r·stride + j]`, FMA'd in fixed r-order per
    /// element — the 8-deep GEMM panel update.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn axpy8_avx2(dst: &mut [f32], a: &[f32; 8], b: &[f32], stride: usize) {
        let n = dst.len();
        let va: [__m256; 8] = std::array::from_fn(|r| _mm256_set1_ps(a[r]));
        let bp = b.as_ptr();
        let mut j = 0;
        while j + 16 <= n {
            let mut c0 = _mm256_loadu_ps(dst.as_ptr().add(j));
            let mut c1 = _mm256_loadu_ps(dst.as_ptr().add(j + 8));
            macro_rules! step {
                ($r:expr) => {{
                    let row = bp.add($r * stride + j);
                    c0 = _mm256_fmadd_ps(va[$r], _mm256_loadu_ps(row), c0);
                    c1 = _mm256_fmadd_ps(va[$r], _mm256_loadu_ps(row.add(8)), c1);
                }};
            }
            step!(0);
            step!(1);
            step!(2);
            step!(3);
            step!(4);
            step!(5);
            step!(6);
            step!(7);
            _mm256_storeu_ps(dst.as_mut_ptr().add(j), c0);
            _mm256_storeu_ps(dst.as_mut_ptr().add(j + 8), c1);
            j += 16;
        }
        while j + 8 <= n {
            let mut c = _mm256_loadu_ps(dst.as_ptr().add(j));
            macro_rules! step {
                ($r:expr) => {
                    c = _mm256_fmadd_ps(va[$r], _mm256_loadu_ps(bp.add($r * stride + j)), c)
                };
            }
            step!(0);
            step!(1);
            step!(2);
            step!(3);
            step!(4);
            step!(5);
            step!(6);
            step!(7);
            _mm256_storeu_ps(dst.as_mut_ptr().add(j), c);
            j += 8;
        }
        while j < n {
            let mut c = dst[j];
            for r in 0..8 {
                c = a[r].mul_add(b[r * stride + j], c);
            }
            dst[j] = c;
            j += 1;
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn vsum_avx2(xs: &[f32]) -> f32 {
        let n = xs.len();
        let mut j = 0;
        let mut a0 = _mm256_setzero_ps();
        let mut a1 = _mm256_setzero_ps();
        let mut a2 = _mm256_setzero_ps();
        let mut a3 = _mm256_setzero_ps();
        while j + 32 <= n {
            a0 = _mm256_add_ps(a0, _mm256_loadu_ps(xs.as_ptr().add(j)));
            a1 = _mm256_add_ps(a1, _mm256_loadu_ps(xs.as_ptr().add(j + 8)));
            a2 = _mm256_add_ps(a2, _mm256_loadu_ps(xs.as_ptr().add(j + 16)));
            a3 = _mm256_add_ps(a3, _mm256_loadu_ps(xs.as_ptr().add(j + 24)));
            j += 32;
        }
        while j + 8 <= n {
            a0 = _mm256_add_ps(a0, _mm256_loadu_ps(xs.as_ptr().add(j)));
            j += 8;
        }
        let mut acc = hsum256(_mm256_add_ps(_mm256_add_ps(a0, a1), _mm256_add_ps(a2, a3)));
        while j < n {
            acc += xs[j];
            j += 1;
        }
        acc
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn vsumsq_avx2(xs: &[f32]) -> f32 {
        let n = xs.len();
        let mut j = 0;
        let mut a0 = _mm256_setzero_ps();
        let mut a1 = _mm256_setzero_ps();
        while j + 16 <= n {
            let x0 = _mm256_loadu_ps(xs.as_ptr().add(j));
            let x1 = _mm256_loadu_ps(xs.as_ptr().add(j + 8));
            a0 = _mm256_fmadd_ps(x0, x0, a0);
            a1 = _mm256_fmadd_ps(x1, x1, a1);
            j += 16;
        }
        while j + 8 <= n {
            let x = _mm256_loadu_ps(xs.as_ptr().add(j));
            a0 = _mm256_fmadd_ps(x, x, a0);
            j += 8;
        }
        let mut acc = hsum256(_mm256_add_ps(a0, a1));
        while j < n {
            acc = xs[j].mul_add(xs[j], acc);
            j += 1;
        }
        acc
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn vdot_avx2(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len().min(b.len());
        let mut j = 0;
        let mut a0 = _mm256_setzero_ps();
        let mut a1 = _mm256_setzero_ps();
        while j + 16 <= n {
            a0 = _mm256_fmadd_ps(
                _mm256_loadu_ps(a.as_ptr().add(j)),
                _mm256_loadu_ps(b.as_ptr().add(j)),
                a0,
            );
            a1 = _mm256_fmadd_ps(
                _mm256_loadu_ps(a.as_ptr().add(j + 8)),
                _mm256_loadu_ps(b.as_ptr().add(j + 8)),
                a1,
            );
            j += 16;
        }
        while j + 8 <= n {
            a0 = _mm256_fmadd_ps(
                _mm256_loadu_ps(a.as_ptr().add(j)),
                _mm256_loadu_ps(b.as_ptr().add(j)),
                a0,
            );
            j += 8;
        }
        let mut acc = hsum256(_mm256_add_ps(a0, a1));
        while j < n {
            acc = a[j].mul_add(b[j], acc);
            j += 1;
        }
        acc
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn vmax_avx2(xs: &[f32]) -> f32 {
        let n = xs.len();
        let mut j = 0;
        let mut m = f32::NEG_INFINITY;
        if n >= 8 {
            let mut vm = _mm256_set1_ps(f32::NEG_INFINITY);
            while j + 8 <= n {
                vm = _mm256_max_ps(vm, _mm256_loadu_ps(xs.as_ptr().add(j)));
                j += 8;
            }
            let mut lanes = [0.0f32; 8];
            _mm256_storeu_ps(lanes.as_mut_ptr(), vm);
            for &l in &lanes {
                m = m.max(l);
            }
        }
        while j < n {
            m = m.max(xs[j]);
            j += 1;
        }
        m
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn div_scalar_avx2(inout: &mut [f32], denom: f32) {
        let n = inout.len();
        let vd = _mm256_set1_ps(denom);
        let mut j = 0;
        while j + 8 <= n {
            let x = _mm256_loadu_ps(inout.as_ptr().add(j));
            _mm256_storeu_ps(inout.as_mut_ptr().add(j), _mm256_div_ps(x, vd));
            j += 8;
        }
        while j < n {
            inout[j] /= denom;
            j += 1;
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn sub2_avx2(src: &[f32], s1: f32, s2: f32, out: &mut [f32]) {
        let n = out.len();
        let v1 = _mm256_set1_ps(s1);
        let v2 = _mm256_set1_ps(s2);
        let mut j = 0;
        while j + 8 <= n {
            let x = _mm256_loadu_ps(src.as_ptr().add(j));
            _mm256_storeu_ps(out.as_mut_ptr().add(j), _mm256_sub_ps(_mm256_sub_ps(x, v1), v2));
            j += 8;
        }
        while j < n {
            out[j] = src[j] - s1 - s2;
            j += 1;
        }
    }

    /// Horizontal sum of one 256-bit register in fixed lane order.
    #[inline]
    unsafe fn hsum256(v: __m256) -> f32 {
        let mut lanes = [0.0f32; 8];
        _mm256_storeu_ps(lanes.as_mut_ptr(), v);
        let lo = ((lanes[0] + lanes[1]) + lanes[2]) + lanes[3];
        let hi = ((lanes[4] + lanes[5]) + lanes[6]) + lanes[7];
        lo + hi
    }
}

// ---------------------------------------------------------------------------
// aarch64 NEON (baseline on aarch64; FMA via vfmaq).
// ---------------------------------------------------------------------------

#[cfg(target_arch = "aarch64")]
mod neon {
    #![allow(unsafe_op_in_unsafe_fn)]

    use super::{BinOp, UnOp};
    use std::arch::aarch64::*;

    pub fn binary_neon(op: BinOp, a: &[f32], b: &[f32], out: &mut [f32]) {
        let n = out.len();
        let mut j = 0;
        unsafe {
            macro_rules! lanes {
                ($combine:expr, $tail:expr) => {{
                    while j + 4 <= n {
                        let x = vld1q_f32(a.as_ptr().add(j));
                        let y = vld1q_f32(b.as_ptr().add(j));
                        vst1q_f32(out.as_mut_ptr().add(j), $combine(x, y));
                        j += 4;
                    }
                    while j < n {
                        out[j] = $tail(a[j], b[j]);
                        j += 1;
                    }
                }};
            }
            match op {
                BinOp::Add => lanes!(|x, y| vaddq_f32(x, y), |x: f32, y: f32| x + y),
                BinOp::Sub => lanes!(|x, y| vsubq_f32(x, y), |x: f32, y: f32| x - y),
                BinOp::Mul => lanes!(|x, y| vmulq_f32(x, y), |x: f32, y: f32| x * y),
                BinOp::Div => lanes!(|x, y| vdivq_f32(x, y), |x: f32, y: f32| x / y),
                BinOp::Max => lanes!(|x, y| vmaxq_f32(x, y), f32::max),
                BinOp::Axpy(alpha) => {
                    let va = vdupq_n_f32(alpha);
                    lanes!(
                        |x, y| vfmaq_f32(x, va, y),
                        |x: f32, y: f32| alpha.mul_add(y, x)
                    )
                }
                BinOp::MulScale(s) => {
                    let vs = vdupq_n_f32(s);
                    lanes!(
                        |x, y| vmulq_f32(vmulq_f32(x, y), vs),
                        |x: f32, y: f32| x * y * s
                    )
                }
            }
        }
    }

    pub fn unary_neon(op: UnOp, src: &[f32], out: &mut [f32]) {
        let n = out.len();
        let mut j = 0;
        unsafe {
            macro_rules! lanes {
                ($map:expr, $tail:expr) => {{
                    while j + 4 <= n {
                        let x = vld1q_f32(src.as_ptr().add(j));
                        vst1q_f32(out.as_mut_ptr().add(j), $map(x));
                        j += 4;
                    }
                    while j < n {
                        out[j] = $tail(src[j]);
                        j += 1;
                    }
                }};
            }
            match op {
                UnOp::Relu => {
                    let z = vdupq_n_f32(0.0);
                    lanes!(|x| vmaxq_f32(x, z), |x: f32| x.max(0.0))
                }
                UnOp::Neg => lanes!(|x| vnegq_f32(x), |x: f32| -x),
                UnOp::Square => lanes!(|x| vmulq_f32(x, x), |x: f32| x * x),
                UnOp::MulScalar(s) => {
                    let vs = vdupq_n_f32(s);
                    lanes!(|x| vmulq_f32(x, vs), |x: f32| x * s)
                }
                UnOp::AddScalar(s) => {
                    let vs = vdupq_n_f32(s);
                    lanes!(|x| vaddq_f32(x, vs), |x: f32| x + s)
                }
            }
        }
    }

    pub fn accumulate_neon(dst: &mut [f32], src: &[f32]) {
        let n = dst.len();
        let mut j = 0;
        unsafe {
            while j + 4 <= n {
                let d = vld1q_f32(dst.as_ptr().add(j));
                let s = vld1q_f32(src.as_ptr().add(j));
                vst1q_f32(dst.as_mut_ptr().add(j), vaddq_f32(d, s));
                j += 4;
            }
        }
        while j < n {
            dst[j] += src[j];
            j += 1;
        }
    }

    pub fn axpy_neon(dst: &mut [f32], alpha: f32, src: &[f32]) {
        let n = dst.len();
        let mut j = 0;
        unsafe {
            let va = vdupq_n_f32(alpha);
            while j + 4 <= n {
                let d = vld1q_f32(dst.as_ptr().add(j));
                let s = vld1q_f32(src.as_ptr().add(j));
                vst1q_f32(dst.as_mut_ptr().add(j), vfmaq_f32(d, va, s));
                j += 4;
            }
        }
        while j < n {
            dst[j] = alpha.mul_add(src[j], dst[j]);
            j += 1;
        }
    }

    pub fn axpy8_neon(dst: &mut [f32], a: &[f32; 8], b: &[f32], stride: usize) {
        let n = dst.len();
        let mut j = 0;
        unsafe {
            let va: [float32x4_t; 8] = std::array::from_fn(|r| vdupq_n_f32(a[r]));
            while j + 4 <= n {
                let mut c = vld1q_f32(dst.as_ptr().add(j));
                for r in 0..8 {
                    c = vfmaq_f32(c, va[r], vld1q_f32(b.as_ptr().add(r * stride + j)));
                }
                vst1q_f32(dst.as_mut_ptr().add(j), c);
                j += 4;
            }
        }
        while j < n {
            let mut c = dst[j];
            for r in 0..8 {
                c = a[r].mul_add(b[r * stride + j], c);
            }
            dst[j] = c;
            j += 1;
        }
    }

    pub fn vsum_neon(xs: &[f32]) -> f32 {
        let n = xs.len();
        let mut j = 0;
        let mut acc = unsafe {
            let mut a0 = vdupq_n_f32(0.0);
            let mut a1 = vdupq_n_f32(0.0);
            while j + 8 <= n {
                a0 = vaddq_f32(a0, vld1q_f32(xs.as_ptr().add(j)));
                a1 = vaddq_f32(a1, vld1q_f32(xs.as_ptr().add(j + 4)));
                j += 8;
            }
            hsum_neon(vaddq_f32(a0, a1))
        };
        while j < n {
            acc += xs[j];
            j += 1;
        }
        acc
    }

    pub fn vsumsq_neon(xs: &[f32]) -> f32 {
        let n = xs.len();
        let mut j = 0;
        let mut acc = unsafe {
            let mut a0 = vdupq_n_f32(0.0);
            while j + 4 <= n {
                let x = vld1q_f32(xs.as_ptr().add(j));
                a0 = vfmaq_f32(a0, x, x);
                j += 4;
            }
            hsum_neon(a0)
        };
        while j < n {
            acc = xs[j].mul_add(xs[j], acc);
            j += 1;
        }
        acc
    }

    pub fn vdot_neon(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len().min(b.len());
        let mut j = 0;
        let mut acc = unsafe {
            let mut a0 = vdupq_n_f32(0.0);
            while j + 4 <= n {
                a0 = vfmaq_f32(a0, vld1q_f32(a.as_ptr().add(j)), vld1q_f32(b.as_ptr().add(j)));
                j += 4;
            }
            hsum_neon(a0)
        };
        while j < n {
            acc = a[j].mul_add(b[j], acc);
            j += 1;
        }
        acc
    }

    pub fn vmax_neon(xs: &[f32]) -> f32 {
        let n = xs.len();
        let mut j = 0;
        let mut m = f32::NEG_INFINITY;
        unsafe {
            if n >= 4 {
                let mut vm = vdupq_n_f32(f32::NEG_INFINITY);
                while j + 4 <= n {
                    vm = vmaxq_f32(vm, vld1q_f32(xs.as_ptr().add(j)));
                    j += 4;
                }
                let mut lanes = [0.0f32; 4];
                vst1q_f32(lanes.as_mut_ptr(), vm);
                for &l in &lanes {
                    m = m.max(l);
                }
            }
        }
        while j < n {
            m = m.max(xs[j]);
            j += 1;
        }
        m
    }

    pub fn div_scalar_neon(inout: &mut [f32], denom: f32) {
        let n = inout.len();
        let mut j = 0;
        unsafe {
            let vd = vdupq_n_f32(denom);
            while j + 4 <= n {
                let x = vld1q_f32(inout.as_ptr().add(j));
                vst1q_f32(inout.as_mut_ptr().add(j), vdivq_f32(x, vd));
                j += 4;
            }
        }
        while j < n {
            inout[j] /= denom;
            j += 1;
        }
    }

    pub fn sub2_neon(src: &[f32], s1: f32, s2: f32, out: &mut [f32]) {
        let n = out.len();
        let mut j = 0;
        unsafe {
            let v1 = vdupq_n_f32(s1);
            let v2 = vdupq_n_f32(s2);
            while j + 4 <= n {
                let x = vld1q_f32(src.as_ptr().add(j));
                vst1q_f32(out.as_mut_ptr().add(j), vsubq_f32(vsubq_f32(x, v1), v2));
                j += 4;
            }
        }
        while j < n {
            out[j] = src[j] - s1 - s2;
            j += 1;
        }
    }

    /// Fixed-order horizontal sum of one 128-bit register.
    #[inline]
    unsafe fn hsum_neon(v: float32x4_t) -> f32 {
        let mut lanes = [0.0f32; 4];
        vst1q_f32(lanes.as_mut_ptr(), v);
        ((lanes[0] + lanes[1]) + lanes[2]) + lanes[3]
    }
}

// ---------------------------------------------------------------------------
// Public dispatchers. Callers resolve `level()` once on the requesting
// thread and pass it down, so pool workers inherit the caller's lane.
// ---------------------------------------------------------------------------

/// Element-wise `out[i] = op(a[i], b[i])`.
pub fn binary(lvl: SimdLevel, op: BinOp, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert!(a.len() >= out.len() && b.len() >= out.len());
    match lvl {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { x86::binary_avx2(op, a, b, out) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse2 => x86::binary_sse2(op, a, b, out),
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => neon::binary_neon(op, a, b, out),
        _ => scalar::binary(op, a, b, out),
    }
}

/// Element-wise `out[i] = op(src[i])`.
pub fn unary(lvl: SimdLevel, op: UnOp, src: &[f32], out: &mut [f32]) {
    debug_assert!(src.len() >= out.len());
    match lvl {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { x86::unary_avx2(op, src, out) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse2 => x86::unary_sse2(op, src, out),
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => neon::unary_neon(op, src, out),
        _ => scalar::unary(op, src, out),
    }
}

/// `dst[i] += src[i]`.
pub fn accumulate(lvl: SimdLevel, dst: &mut [f32], src: &[f32]) {
    debug_assert!(src.len() >= dst.len());
    match lvl {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { x86::accumulate_avx2(dst, src) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse2 => x86::accumulate_sse2(dst, src),
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => neon::accumulate_neon(dst, src),
        _ => scalar::accumulate(dst, src),
    }
}

/// `dst[i] += alpha * src[i]` (the SpMM row-accumulation inner loop).
pub fn axpy(lvl: SimdLevel, dst: &mut [f32], alpha: f32, src: &[f32]) {
    debug_assert!(src.len() >= dst.len());
    match lvl {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { x86::axpy_avx2(dst, alpha, src) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse2 => x86::axpy_sse2(dst, alpha, src),
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => neon::axpy_neon(dst, alpha, src),
        _ => scalar::axpy(dst, alpha, src),
    }
}

/// The 8-deep GEMM panel update: `dst[j] += Σ_{r<8} a[r] · b[r·stride + j]`.
///
/// `b` must hold at least `7*stride + dst.len()` elements. Per output
/// element the accumulation order depends only on `r`, never on how rows
/// were partitioned across threads.
pub fn axpy8(lvl: SimdLevel, dst: &mut [f32], a: &[f32; 8], b: &[f32], stride: usize) {
    debug_assert!(b.len() >= 7 * stride + dst.len());
    match lvl {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { x86::axpy8_avx2(dst, a, b, stride) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse2 => x86::axpy8_sse2(dst, a, b, stride),
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => neon::axpy8_neon(dst, a, b, stride),
        _ => scalar::axpy8(dst, a, b, stride),
    }
}

/// Two-row GEMM panel update: like two [`axpy8`] calls on independent
/// output rows, but the AVX2 lane loads each B lane once and FMAs it into
/// both rows. Results are element-for-element identical to the two
/// single-row calls within every lane.
#[allow(clippy::too_many_arguments)]
pub fn axpy8x2(
    lvl: SimdLevel,
    dst0: &mut [f32],
    dst1: &mut [f32],
    a0: &[f32; 8],
    a1: &[f32; 8],
    b: &[f32],
    stride: usize,
) {
    debug_assert!(b.len() >= 7 * stride + dst0.len().max(dst1.len()));
    match lvl {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { x86::axpy8x2_avx2(dst0, dst1, a0, a1, b, stride) },
        _ => {
            axpy8(lvl, dst0, a0, b, stride);
            axpy8(lvl, dst1, a1, b, stride);
        }
    }
}

/// Sum of all elements. Scalar lane: sequential left-to-right; SIMD lanes:
/// multi-accumulator (deterministic but reassociated).
pub fn vsum(lvl: SimdLevel, xs: &[f32]) -> f32 {
    match lvl {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { x86::vsum_avx2(xs) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse2 => x86::vsum_sse2(xs),
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => neon::vsum_neon(xs),
        _ => scalar::vsum(xs),
    }
}

/// Sum of squares (the L2-norm reduction).
pub fn vsumsq(lvl: SimdLevel, xs: &[f32]) -> f32 {
    match lvl {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { x86::vsumsq_avx2(xs) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse2 => x86::vsumsq_sse2(xs),
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => neon::vsumsq_neon(xs),
        _ => scalar::vsumsq(xs),
    }
}

/// Dot product over `min(a.len(), b.len())` elements (GEMV rows).
pub fn vdot(lvl: SimdLevel, a: &[f32], b: &[f32]) -> f32 {
    match lvl {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { x86::vdot_avx2(a, b) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse2 => x86::vdot_sse2(a, b),
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => neon::vdot_neon(a, b),
        _ => scalar::vdot(a, b),
    }
}

/// Maximum element (`-inf` when empty). Max is associative, so all lanes
/// agree on NaN-free inputs.
pub fn vmax(lvl: SimdLevel, xs: &[f32]) -> f32 {
    match lvl {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { x86::vmax_avx2(xs) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse2 => x86::vmax_sse2(xs),
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => neon::vmax_neon(xs),
        _ => scalar::vmax(xs),
    }
}

/// `inout[i] /= denom` (softmax normalization).
pub fn div_scalar(lvl: SimdLevel, inout: &mut [f32], denom: f32) {
    match lvl {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { x86::div_scalar_avx2(inout, denom) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse2 => x86::div_scalar_sse2(inout, denom),
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => neon::div_scalar_neon(inout, denom),
        _ => scalar::div_scalar(inout, denom),
    }
}

/// `out[i] = src[i] - s1 - s2` (the log-softmax shift).
pub fn sub2(lvl: SimdLevel, src: &[f32], s1: f32, s2: f32, out: &mut [f32]) {
    debug_assert!(src.len() >= out.len());
    match lvl {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { x86::sub2_avx2(src, s1, s2, out) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse2 => x86::sub2_sse2(src, s1, s2, out),
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => neon::sub2_neon(src, s1, s2, out),
        _ => scalar::sub2(src, s1, s2, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_levels() -> Vec<SimdLevel> {
        let mut v = vec![SimdLevel::Scalar];
        if cfg!(target_arch = "x86_64") {
            v.push(SimdLevel::Sse2);
        }
        if detect() == SimdLevel::Avx2 {
            v.push(SimdLevel::Avx2);
        }
        if cfg!(target_arch = "aarch64") {
            v.push(SimdLevel::Neon);
        }
        v
    }

    fn data(n: usize, salt: f32) -> Vec<f32> {
        (0..n).map(|i| ((i as f32) * 0.37 + salt).sin() * 3.0).collect()
    }

    #[test]
    fn binary_lanes_agree_with_scalar() {
        for n in [0usize, 1, 3, 7, 8, 9, 31, 100] {
            let a = data(n, 0.1);
            let b: Vec<f32> = data(n, 2.2).iter().map(|v| v + 1.5).collect();
            for op in [
                BinOp::Add,
                BinOp::Sub,
                BinOp::Mul,
                BinOp::Div,
                BinOp::Max,
                BinOp::Axpy(0.3),
                BinOp::MulScale(1.7),
            ] {
                let mut want = vec![0.0; n];
                binary(SimdLevel::Scalar, op, &a, &b, &mut want);
                for lvl in all_levels() {
                    let mut got = vec![0.0; n];
                    binary(lvl, op, &a, &b, &mut got);
                    for (g, w) in got.iter().zip(&want) {
                        assert!(
                            (g - w).abs() <= 1e-5 * w.abs().max(1.0),
                            "{op:?} {lvl:?} n={n}: {g} vs {w}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn reductions_agree_with_scalar() {
        for n in [0usize, 1, 5, 8, 33, 257] {
            let xs = data(n, 0.7);
            let ys = data(n, 1.3);
            for lvl in all_levels() {
                let tol = 1e-4 * (n as f32).max(1.0).sqrt();
                assert!((vsum(lvl, &xs) - vsum(SimdLevel::Scalar, &xs)).abs() <= tol);
                assert!((vsumsq(lvl, &xs) - vsumsq(SimdLevel::Scalar, &xs)).abs() <= tol * 10.0);
                assert!((vdot(lvl, &xs, &ys) - vdot(SimdLevel::Scalar, &xs, &ys)).abs() <= tol * 10.0);
                assert_eq!(vmax(lvl, &xs), vmax(SimdLevel::Scalar, &xs));
            }
        }
    }

    #[test]
    fn axpy8_handles_remainders() {
        for n in [0usize, 1, 4, 7, 8, 15, 16, 17, 40] {
            let stride = n.max(1);
            let b = data(8 * stride, 0.5);
            let a: [f32; 8] = std::array::from_fn(|i| (i as f32) * 0.25 - 1.0);
            let mut want = data(n, 9.0);
            scalar::axpy8(&mut want, &a, &b, stride);
            for lvl in all_levels() {
                let mut got = data(n, 9.0);
                axpy8(lvl, &mut got, &a, &b, stride);
                for (g, w) in got.iter().zip(&want) {
                    assert!((g - w).abs() <= 1e-4 * w.abs().max(1.0), "{lvl:?} n={n}: {g} vs {w}");
                }
            }
        }
    }

    #[test]
    fn with_level_overrides_and_restores() {
        let base = level();
        with_level(SimdLevel::Scalar, || {
            assert_eq!(level(), SimdLevel::Scalar);
        });
        assert_eq!(level(), base);
    }

    #[test]
    fn set_level_clamps_to_supported() {
        let prev = level();
        let got = set_level(SimdLevel::Avx2);
        if detect() != SimdLevel::Avx2 {
            assert_ne!(got, SimdLevel::Avx2);
        }
        set_level(prev);
    }

    #[test]
    fn env_spellings_round_trip() {
        assert_eq!(SimdLevel::Scalar.as_str(), "scalar");
        assert_eq!(SimdLevel::Avx2.as_str(), "avx2");
    }
}
