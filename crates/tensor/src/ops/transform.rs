//! Data-movement operations: transpose, concatenation, slicing, stacking.
//!
//! These kernels perform no floating-point work; their cost is coordinate
//! remapping (integer math) and memory traffic, contributing to the
//! integer-dominated instruction mix the paper observes.

use super::{emit_op, emit_sequential};
use crate::cost::INT_PER_DATAMOVE_ELEM;
use crate::instrument::{AccessDesc, OpClass};
use crate::{pool, Result, Tensor, TensorError};

impl Tensor {
    /// Transpose of a `[m, n]` matrix.
    ///
    /// # Errors
    /// Returns [`TensorError::RankMismatch`] unless `self` is rank 2.
    pub fn transpose2d(&self) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "transpose2d",
                expected: 2,
                actual: self.rank(),
            });
        }
        let (m, n) = (self.dim(0), self.dim(1));
        let src = self.as_slice();
        // Cache-blocked transpose (same kernel the NT/TN GEMMs pack with);
        // a pure permutation, so the result is exact.
        let mut data = pool::filled(m * n);
        super::gemm::transpose_pack(src, m, n, &mut data);
        let out = Tensor::from_vec(&[n, m], data)?;
        let total = (m * n) as u64;
        emit_op(
            OpClass::DataMovement,
            "transpose2d",
            0,
            total * INT_PER_DATAMOVE_ELEM,
            total * 4,
            total * 4,
            total,
            move || {
                vec![AccessDesc::Sequential { bytes: total * 4 }]
            },
            move || {
                // Column-major writes: strided at row length.
                vec![AccessDesc::Strided {
                    stride_bytes: (m * 4) as u64,
                    accesses: total,
                    access_bytes: 4,
                }]
            },
        );
        Ok(out)
    }

    /// Concatenates matrices along the row axis (`[n_i, d]` → `[Σn_i, d]`).
    ///
    /// # Errors
    /// Returns [`TensorError::InvalidArgument`] for an empty input list,
    /// [`TensorError::RankMismatch`] for non-rank-2 inputs, or
    /// [`TensorError::ShapeMismatch`] if widths differ.
    pub fn concat_rows(parts: &[&Tensor]) -> Result<Tensor> {
        if parts.is_empty() {
            return Err(TensorError::InvalidArgument {
                op: "concat_rows",
                reason: "empty input list".to_string(),
            });
        }
        let d = parts[0].dims().get(1).copied().ok_or(TensorError::RankMismatch {
            op: "concat_rows",
            expected: 2,
            actual: parts[0].rank(),
        })?;
        let mut data = Vec::new();
        let mut n = 0usize;
        for p in parts {
            if p.rank() != 2 {
                return Err(TensorError::RankMismatch {
                    op: "concat_rows",
                    expected: 2,
                    actual: p.rank(),
                });
            }
            if p.dim(1) != d {
                return Err(TensorError::ShapeMismatch {
                    op: "concat_rows",
                    lhs: parts[0].dims().to_vec(),
                    rhs: p.dims().to_vec(),
                });
            }
            n += p.dim(0);
            data.extend_from_slice(p.as_slice());
        }
        let out = Tensor::from_vec(&[n, d], data)?;
        let total = (n * d) as u64;
        emit_sequential(
            OpClass::DataMovement,
            "concat_rows",
            0,
            total * INT_PER_DATAMOVE_ELEM,
            total * 4,
            total * 4,
            total,
        );
        Ok(out)
    }

    /// Concatenates matrices along the column axis (`[n, d_i]` → `[n, Σd_i]`).
    ///
    /// # Errors
    /// Returns [`TensorError::InvalidArgument`] / [`TensorError::RankMismatch`]
    /// / [`TensorError::ShapeMismatch`] on malformed inputs.
    pub fn concat_cols(parts: &[&Tensor]) -> Result<Tensor> {
        if parts.is_empty() {
            return Err(TensorError::InvalidArgument {
                op: "concat_cols",
                reason: "empty input list".to_string(),
            });
        }
        let n = parts[0].dims().first().copied().unwrap_or(0);
        for p in parts {
            if p.rank() != 2 {
                return Err(TensorError::RankMismatch {
                    op: "concat_cols",
                    expected: 2,
                    actual: p.rank(),
                });
            }
            if p.dim(0) != n {
                return Err(TensorError::ShapeMismatch {
                    op: "concat_cols",
                    lhs: parts[0].dims().to_vec(),
                    rhs: p.dims().to_vec(),
                });
            }
        }
        let d_total: usize = parts.iter().map(|p| p.dim(1)).sum();
        let mut data = Vec::with_capacity(n * d_total);
        for r in 0..n {
            for p in parts {
                let d = p.dim(1);
                data.extend_from_slice(&p.as_slice()[r * d..(r + 1) * d]);
            }
        }
        let out = Tensor::from_vec(&[n, d_total], data)?;
        let total = (n * d_total) as u64;
        emit_sequential(
            OpClass::DataMovement,
            "concat_cols",
            0,
            total * INT_PER_DATAMOVE_ELEM,
            total * 4,
            total * 4,
            total,
        );
        Ok(out)
    }

    /// Copies rows `[start, end)` of a `[n, d]` matrix.
    ///
    /// # Errors
    /// Returns [`TensorError::RankMismatch`] unless rank 2, or
    /// [`TensorError::IndexOutOfBounds`] for an invalid range.
    pub fn slice_rows(&self, start: usize, end: usize) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "slice_rows",
                expected: 2,
                actual: self.rank(),
            });
        }
        let (n, d) = (self.dim(0), self.dim(1));
        if start > end || end > n {
            return Err(TensorError::IndexOutOfBounds {
                op: "slice_rows",
                index: end,
                bound: n,
            });
        }
        let data = self.as_slice()[start * d..end * d].to_vec();
        let rows = end - start;
        let out = Tensor::from_vec(&[rows, d], data)?;
        let total = (rows * d) as u64;
        emit_sequential(
            OpClass::DataMovement,
            "slice_rows",
            0,
            total * INT_PER_DATAMOVE_ELEM,
            total * 4,
            total * 4,
            total,
        );
        Ok(out)
    }

    /// Copies columns `[start, end)` of a `[n, d]` matrix.
    ///
    /// # Errors
    /// Returns [`TensorError::RankMismatch`] unless rank 2, or
    /// [`TensorError::IndexOutOfBounds`] for an invalid range.
    pub fn slice_cols(&self, start: usize, end: usize) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "slice_cols",
                expected: 2,
                actual: self.rank(),
            });
        }
        let (n, d) = (self.dim(0), self.dim(1));
        if start > end || end > d {
            return Err(TensorError::IndexOutOfBounds {
                op: "slice_cols",
                index: end,
                bound: d,
            });
        }
        let width = end - start;
        let mut data = Vec::with_capacity(n * width);
        for row in self.as_slice().chunks_exact(d) {
            data.extend_from_slice(&row[start..end]);
        }
        let out = Tensor::from_vec(&[n, width], data)?;
        let total = (n * width) as u64;
        emit_op(
            OpClass::DataMovement,
            "slice_cols",
            0,
            total * INT_PER_DATAMOVE_ELEM,
            total * 4,
            total * 4,
            total,
            move || {
                vec![AccessDesc::Strided {
                    stride_bytes: (d * 4) as u64,
                    accesses: n as u64,
                    access_bytes: (width * 4) as u64,
                }]
            },
            move || vec![AccessDesc::Sequential { bytes: total * 4 }],
        );
        Ok(out)
    }

    /// Stacks `k` equally-shaped rank-1 tensors into a `[k, d]` matrix.
    ///
    /// # Errors
    /// Returns [`TensorError::InvalidArgument`] for an empty list, or
    /// [`TensorError::ShapeMismatch`] if lengths differ.
    pub fn stack_rows(parts: &[&Tensor]) -> Result<Tensor> {
        if parts.is_empty() {
            return Err(TensorError::InvalidArgument {
                op: "stack_rows",
                reason: "empty input list".to_string(),
            });
        }
        let d = parts[0].numel();
        let mut data = Vec::with_capacity(parts.len() * d);
        for p in parts {
            if p.numel() != d {
                return Err(TensorError::ShapeMismatch {
                    op: "stack_rows",
                    lhs: parts[0].dims().to_vec(),
                    rhs: p.dims().to_vec(),
                });
            }
            data.extend_from_slice(p.as_slice());
        }
        let out = Tensor::from_vec(&[parts.len(), d], data)?;
        let total = (parts.len() * d) as u64;
        emit_sequential(
            OpClass::DataMovement,
            "stack_rows",
            0,
            total * INT_PER_DATAMOVE_ELEM,
            total * 4,
            total * 4,
            total,
        );
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record;

    #[test]
    fn transpose_roundtrip() {
        let t = Tensor::from_fn(&[2, 3], |i| i as f32);
        let tt = t.transpose2d().unwrap();
        assert_eq!(tt.dims(), &[3, 2]);
        assert_eq!(tt.get(&[2, 1]), t.get(&[1, 2]));
        assert_eq!(tt.transpose2d().unwrap().as_slice(), t.as_slice());
    }

    #[test]
    fn concat_rows_stacks() {
        let a = Tensor::ones(&[1, 2]);
        let b = Tensor::zeros(&[2, 2]);
        let c = Tensor::concat_rows(&[&a, &b]).unwrap();
        assert_eq!(c.dims(), &[3, 2]);
        assert_eq!(c.as_slice(), &[1.0, 1.0, 0.0, 0.0, 0.0, 0.0]);
        assert!(Tensor::concat_rows(&[]).is_err());
        assert!(Tensor::concat_rows(&[&a, &Tensor::zeros(&[1, 3])]).is_err());
    }

    #[test]
    fn concat_cols_widens() {
        let a = Tensor::from_vec(&[2, 1], vec![1.0, 2.0]).unwrap();
        let b = Tensor::from_vec(&[2, 2], vec![3.0, 4.0, 5.0, 6.0]).unwrap();
        let c = Tensor::concat_cols(&[&a, &b]).unwrap();
        assert_eq!(c.dims(), &[2, 3]);
        assert_eq!(c.as_slice(), &[1.0, 3.0, 4.0, 2.0, 5.0, 6.0]);
    }

    #[test]
    fn slice_rows_extracts_range() {
        let t = Tensor::from_fn(&[4, 2], |i| i as f32);
        let s = t.slice_rows(1, 3).unwrap();
        assert_eq!(s.dims(), &[2, 2]);
        assert_eq!(s.as_slice(), &[2.0, 3.0, 4.0, 5.0]);
        assert!(t.slice_rows(3, 5).is_err());
    }

    #[test]
    fn slice_cols_extracts_range() {
        let t = Tensor::from_fn(&[2, 4], |i| i as f32);
        let s = t.slice_cols(1, 3).unwrap();
        assert_eq!(s.dims(), &[2, 2]);
        assert_eq!(s.as_slice(), &[1.0, 2.0, 5.0, 6.0]);
        assert!(t.slice_cols(3, 5).is_err());
    }

    #[test]
    fn stack_rows_builds_matrix() {
        let a = Tensor::from_vec(&[2], vec![1.0, 2.0]).unwrap();
        let b = Tensor::from_vec(&[2], vec![3.0, 4.0]).unwrap();
        let s = Tensor::stack_rows(&[&a, &b]).unwrap();
        assert_eq!(s.dims(), &[2, 2]);
        assert_eq!(s.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn datamove_events_have_no_flops() {
        record::start_recording();
        let _ = Tensor::ones(&[4, 4]).transpose2d().unwrap();
        let events = record::stop_recording();
        assert_eq!(events[0].class, OpClass::DataMovement);
        assert_eq!(events[0].flops, 0);
        assert!(events[0].iops > 0);
    }
}
