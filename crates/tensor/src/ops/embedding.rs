//! Embedding-table lookups.
//!
//! Heterogeneous-graph models (PinSAGE, GraphWriter) learn embeddings per
//! node/token id; the forward lookup is a wide gather over a large table
//! and the backward is a scatter-add of gradients into it.

use std::sync::Arc;

use super::emit_op;
use crate::cost::INT_PER_EMBED_ELEM;
use crate::instrument::{AccessDesc, OpClass};
use crate::{IntTensor, Result, Tensor, TensorError};

impl Tensor {
    /// Looks up rows of an embedding table (`self`, `[vocab, d]`) by id.
    ///
    /// Semantically identical to [`Tensor::gather_rows`] but emitted as the
    /// embedding op class, which profiles like the dedicated embedding
    /// kernels of DL frameworks.
    ///
    /// # Errors
    /// Returns [`TensorError::RankMismatch`] unless `self` is rank 2, or
    /// [`TensorError::IndexOutOfBounds`] for out-of-vocabulary ids.
    pub fn embedding_lookup(&self, ids: &IntTensor) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "embedding_lookup",
                expected: 2,
                actual: self.rank(),
            });
        }
        let (vocab, d) = (self.dim(0), self.dim(1));
        ids.check_bounds(vocab, "embedding_lookup")?;
        let n = ids.numel();
        let mut data = Vec::with_capacity(n * d);
        let table = self.as_slice();
        for &i in ids.as_slice() {
            let r = i as usize;
            data.extend_from_slice(&table[r * d..(r + 1) * d]);
        }
        let out = Tensor::from_vec(&[n, d], data)?;

        let total = (n * d) as u64;
        let idx = ids.to_u32_vec();
        let row_bytes = (d * 4) as u64;
        let table_bytes = self.byte_len();
        emit_op(
            OpClass::Embedding,
            "embedding_lookup",
            0,
            total * INT_PER_EMBED_ELEM,
            total * 4 + n as u64 * 8,
            total * 4,
            total,
            move || {
                vec![AccessDesc::Indexed {
                    indices: Arc::new(idx),
                    row_bytes,
                    table_bytes,
                }]
            },
            move || vec![AccessDesc::Sequential { bytes: total * 4 }],
        );
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record;

    #[test]
    fn lookup_extracts_rows() {
        let table = Tensor::from_fn(&[4, 2], |i| i as f32);
        let ids = IntTensor::from_vec(&[3], vec![1, 1, 3]).unwrap();
        let e = table.embedding_lookup(&ids).unwrap();
        assert_eq!(e.dims(), &[3, 2]);
        assert_eq!(e.as_slice(), &[2.0, 3.0, 2.0, 3.0, 6.0, 7.0]);
    }

    #[test]
    fn out_of_vocab_rejected() {
        let table = Tensor::zeros(&[2, 2]);
        let ids = IntTensor::from_vec(&[1], vec![2]).unwrap();
        assert!(table.embedding_lookup(&ids).is_err());
    }

    #[test]
    fn embedding_event_class() {
        record::start_recording();
        let table = Tensor::zeros(&[8, 4]);
        let ids = IntTensor::from_vec(&[2], vec![0, 7]).unwrap();
        let _ = table.embedding_lookup(&ids).unwrap();
        let events = record::stop_recording();
        assert_eq!(events[0].class, OpClass::Embedding);
        assert_eq!(events[0].flops, 0);
    }
}
