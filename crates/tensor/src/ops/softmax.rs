//! Row-wise softmax and log-softmax.
//!
//! Softmax kernels combine a row reduction (max, sum) with element-wise
//! exponentiation; they appear in every classification head and in
//! GraphWriter's attention layers.

use super::emit_sequential;
use crate::cost::INT_PER_SOFTMAX_ELEM;
use crate::instrument::OpClass;
use crate::simd;
use crate::{par, pool, Result, Tensor, TensorError};

impl Tensor {
    fn softmax_impl(&self, log: bool, kernel: &'static str) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: kernel,
                expected: 2,
                actual: self.rank(),
            });
        }
        let (n, d) = (self.dim(0), self.dim(1));
        let src = self.as_slice();
        let lvl = simd::level();
        let mut out = pool::filled(n * d);
        let ranges = par::even_ranges(n, par::chunk_count(n * d, par::PAR_MIN_ELEMS).min(n.max(1)));
        par::for_row_ranges_mut(&mut out, d, &ranges, |_, rows, chunk| {
            let rows_src = &src[rows.start * d..rows.end * d];
            for (row, out_row) in rows_src.chunks_exact(d).zip(chunk.chunks_exact_mut(d)) {
                let max = simd::vmax(lvl, row);
                // The exps land in the output row; no per-row temporary.
                // exp stays scalar: no SFU lanes in the portable layer.
                for (o, &v) in out_row.iter_mut().zip(row) {
                    *o = (v - max).exp();
                }
                let sum = simd::vsum(lvl, out_row);
                if log {
                    let lsum = sum.ln();
                    simd::sub2(lvl, row, max, lsum, out_row);
                } else {
                    simd::div_scalar(lvl, out_row, sum);
                }
            }
        });
        let total = (n * d) as u64;
        // 3 passes: max-reduce, exp+sum, normalize. ~12 flops/elem with SFU.
        emit_sequential(
            OpClass::Softmax,
            kernel,
            total * 12,
            total * INT_PER_SOFTMAX_ELEM,
            total * 4 * 2,
            total * 4,
            total,
        );
        Tensor::from_vec(&[n, d], out)
    }

    /// Row-wise softmax of a `[n, d]` matrix.
    ///
    /// # Errors
    /// Returns [`TensorError::RankMismatch`] unless `self` is rank 2.
    pub fn softmax_rows(&self) -> Result<Tensor> {
        self.softmax_impl(false, "softmax")
    }

    /// Row-wise log-softmax of a `[n, d]` matrix (numerically stable).
    ///
    /// # Errors
    /// Returns [`TensorError::RankMismatch`] unless `self` is rank 2.
    pub fn log_softmax_rows(&self) -> Result<Tensor> {
        self.softmax_impl(true, "log_softmax")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record;

    #[test]
    fn rows_sum_to_one() {
        let t = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]).unwrap();
        let s = t.softmax_rows().unwrap();
        for row in s.as_slice().chunks_exact(3) {
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
            assert!(row.iter().all(|&v| v > 0.0));
        }
    }

    #[test]
    fn log_softmax_is_log_of_softmax() {
        let t = Tensor::from_vec(&[1, 4], vec![0.5, 1.5, -0.5, 2.0]).unwrap();
        let s = t.softmax_rows().unwrap();
        let ls = t.log_softmax_rows().unwrap();
        for (a, b) in s.as_slice().iter().zip(ls.as_slice()) {
            assert!((a.ln() - b).abs() < 1e-5);
        }
    }

    #[test]
    fn numerically_stable_for_large_inputs() {
        let t = Tensor::from_vec(&[1, 2], vec![1000.0, 1000.0]).unwrap();
        let s = t.softmax_rows().unwrap();
        assert!((s.as_slice()[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn softmax_event_class() {
        record::start_recording();
        let _ = Tensor::ones(&[2, 2]).softmax_rows().unwrap();
        let events = record::stop_recording();
        assert_eq!(events[0].class, OpClass::Softmax);
    }
}
