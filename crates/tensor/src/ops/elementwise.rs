//! Element-wise operations: binary arithmetic, scalar arithmetic,
//! activations and masking.
//!
//! Element-wise kernels are a headline finding of the GNNMark paper: for
//! DeepGCN they consume ~31 % of execution time, and for PinSAGE on the
//! Nowplaying dataset (10× wider features than MovieLens) they reach 78 %.

use super::{emit_sequential, emit_op};
use crate::instrument::{AccessDesc, OpClass};
use crate::cost::INT_PER_ELEMWISE_ELEM;
use crate::simd::{self, BinOp, UnOp};
use crate::{par, pool, Result, Tensor, TensorError};

/// Cost (in modeled fp32 ops) of special-function-unit transcendentals.
const SFU_FLOPS: u64 = 8;

impl Tensor {
    /// Shape-checked element-wise binary op dispatched through the
    /// [`crate::simd`] kernel table. The level is resolved once on the
    /// calling thread and captured into the pool closure.
    fn binary_simd(&self, other: &Tensor, op: &'static str, kop: BinOp) -> Result<Tensor> {
        self.shape().require_same(other.shape(), op)?;
        let a = self.as_slice();
        let b = other.as_slice();
        let lvl = simd::level();
        let mut data = pool::filled(a.len());
        par::fill_chunks(&mut data, par::PAR_MIN_ELEMS, |r, chunk| {
            simd::binary(lvl, kop, &a[r.clone()], &b[r], chunk);
        });
        let out = Tensor::from_vec(self.dims(), data)?;
        let n = self.numel() as u64;
        emit_sequential(
            OpClass::ElementWise,
            op,
            n,
            n * INT_PER_ELEMWISE_ELEM,
            2 * n * 4,
            n * 4,
            n,
        );
        Ok(out)
    }

    fn unary(&self, op: &'static str, flops_per_elem: u64, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
        let src = self.as_slice();
        let mut data = pool::filled(src.len());
        par::fill_chunks(&mut data, par::PAR_MIN_ELEMS, |r, chunk| {
            for (o, &x) in chunk.iter_mut().zip(&src[r]) {
                *o = f(x);
            }
        });
        let out = Tensor::from_vec(self.dims(), data).expect("same shape");
        let n = self.numel() as u64;
        emit_sequential(
            OpClass::ElementWise,
            op,
            n * flops_per_elem,
            n * INT_PER_ELEMWISE_ELEM,
            n * 4,
            n * 4,
            n,
        );
        out
    }

    /// Like [`Tensor::unary`] but dispatched through the [`crate::simd`]
    /// kernel table.
    fn unary_simd(&self, op: &'static str, flops_per_elem: u64, kop: UnOp) -> Tensor {
        let src = self.as_slice();
        let lvl = simd::level();
        let mut data = pool::filled(src.len());
        par::fill_chunks(&mut data, par::PAR_MIN_ELEMS, |r, chunk| {
            simd::unary(lvl, kop, &src[r], chunk);
        });
        let out = Tensor::from_vec(self.dims(), data).expect("same shape");
        let n = self.numel() as u64;
        emit_sequential(
            OpClass::ElementWise,
            op,
            n * flops_per_elem,
            n * INT_PER_ELEMWISE_ELEM,
            n * 4,
            n * 4,
            n,
        );
        out
    }

    /// Element-wise addition.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.binary_simd(other, "add", BinOp::Add)
    }

    /// Element-wise subtraction.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.binary_simd(other, "sub", BinOp::Sub)
    }

    /// Element-wise (Hadamard) multiplication.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        self.binary_simd(other, "mul", BinOp::Mul)
    }

    /// Element-wise division.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn div(&self, other: &Tensor) -> Result<Tensor> {
        self.binary_simd(other, "div", BinOp::Div)
    }

    /// Element-wise maximum of two tensors.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn maximum(&self, other: &Tensor) -> Result<Tensor> {
        self.binary_simd(other, "maximum", BinOp::Max)
    }

    /// Adds a scalar to every element.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        self.unary_simd("add_scalar", 1, UnOp::AddScalar(s))
    }

    /// Multiplies every element by a scalar.
    pub fn mul_scalar(&self, s: f32) -> Tensor {
        self.unary_simd("mul_scalar", 1, UnOp::MulScalar(s))
    }

    /// Element-wise negation.
    pub fn neg(&self) -> Tensor {
        self.unary_simd("neg", 1, UnOp::Neg)
    }

    /// Element-wise exponential.
    pub fn exp(&self) -> Tensor {
        self.unary("exp", SFU_FLOPS, f32::exp)
    }

    /// Element-wise natural logarithm.
    pub fn ln(&self) -> Tensor {
        self.unary("log", SFU_FLOPS, f32::ln)
    }

    /// Element-wise square root.
    pub fn sqrt(&self) -> Tensor {
        self.unary("sqrt", SFU_FLOPS, f32::sqrt)
    }

    /// Element-wise absolute value.
    pub fn abs(&self) -> Tensor {
        self.unary("abs", 1, f32::abs)
    }

    /// Element-wise square.
    pub fn square(&self) -> Tensor {
        self.unary_simd("square", 1, UnOp::Square)
    }

    /// Element-wise reciprocal.
    pub fn recip(&self) -> Tensor {
        self.unary("recip", 4, |a| 1.0 / a)
    }

    /// Rectified linear unit, `max(x, 0)`.
    ///
    /// ReLU produces exact zeros and is the main source of the activation
    /// sparsity the paper reports in Figure 7.
    pub fn relu(&self) -> Tensor {
        self.unary_simd("relu", 1, UnOp::Relu)
    }

    /// Leaky ReLU with negative slope `alpha`.
    pub fn leaky_relu(&self, alpha: f32) -> Tensor {
        self.unary("leaky_relu", 2, move |a| if a > 0.0 { a } else { alpha * a })
    }

    /// Parametric ReLU with a single learned slope `alpha` (used by ARGA).
    pub fn prelu(&self, alpha: f32) -> Tensor {
        self.unary("prelu", 2, move |a| if a > 0.0 { a } else { alpha * a })
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self) -> Tensor {
        self.unary("sigmoid", SFU_FLOPS + 2, |a| 1.0 / (1.0 + (-a).exp()))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> Tensor {
        self.unary("tanh", SFU_FLOPS + 2, f32::tanh)
    }

    /// Clamps all elements into `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.unary("clamp", 2, move |a| a.clamp(lo, hi))
    }

    /// Element-wise power.
    pub fn powf(&self, p: f32) -> Tensor {
        self.unary("pow", SFU_FLOPS * 2, move |a| a.powf(p))
    }

    /// Mask of elements strictly greater than zero (1.0 / 0.0).
    pub fn gt_zero_mask(&self) -> Tensor {
        self.unary("gt_zero_mask", 1, |a| if a > 0.0 { 1.0 } else { 0.0 })
    }

    /// `self + alpha * other`, a fused AXPY-style update.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn axpy(&self, alpha: f32, other: &Tensor) -> Result<Tensor> {
        self.binary_simd(other, "axpy", BinOp::Axpy(alpha))
    }

    /// Adds a length-`d` bias row-vector to each row of a `[n, d]` matrix.
    ///
    /// # Errors
    /// Returns [`TensorError::RankMismatch`] unless `self` is rank 2 and
    /// `bias` rank 1, or [`TensorError::ShapeMismatch`] if widths differ.
    pub fn add_bias(&self, bias: &Tensor) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "add_bias",
                expected: 2,
                actual: self.rank(),
            });
        }
        if bias.rank() != 1 || bias.dim(0) != self.dim(1) {
            return Err(TensorError::ShapeMismatch {
                op: "add_bias",
                lhs: self.dims().to_vec(),
                rhs: bias.dims().to_vec(),
            });
        }
        let (n, d) = (self.dim(0), self.dim(1));
        let b = bias.as_slice();
        let src = self.as_slice();
        let lvl = simd::level();
        let mut data = pool::filled(n * d);
        let ranges = par::even_ranges(n, par::chunk_count(n * d, par::PAR_MIN_ELEMS).min(n.max(1)));
        par::for_row_ranges_mut(&mut data, d, &ranges, |_, rows, chunk| {
            let rows_src = &src[rows.start * d..rows.end * d];
            for (row, out_row) in rows_src.chunks_exact(d).zip(chunk.chunks_exact_mut(d)) {
                simd::binary(lvl, BinOp::Add, row, b, out_row);
            }
        });
        let out = Tensor::from_vec(&[n, d], data)?;
        let total = (n * d) as u64;
        emit_op(
            OpClass::ElementWise,
            "add_bias",
            total,
            total * INT_PER_ELEMWISE_ELEM,
            total * 4 + d as u64 * 4,
            total * 4,
            total,
            || {
                vec![
                    AccessDesc::Sequential { bytes: total * 4 },
                    AccessDesc::Strided {
                        stride_bytes: 4,
                        accesses: d as u64,
                        access_bytes: 4,
                    },
                ]
            },
            || vec![AccessDesc::Sequential { bytes: total * 4 }],
        );
        Ok(out)
    }

    /// Scales each row of a `[n, d]` matrix by the matching entry of a
    /// length-`n` vector (used for degree normalization).
    ///
    /// # Errors
    /// Returns [`TensorError::RankMismatch`] / [`TensorError::ShapeMismatch`]
    /// on malformed inputs.
    pub fn scale_rows(&self, scales: &Tensor) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "scale_rows",
                expected: 2,
                actual: self.rank(),
            });
        }
        if scales.rank() != 1 || scales.dim(0) != self.dim(0) {
            return Err(TensorError::ShapeMismatch {
                op: "scale_rows",
                lhs: self.dims().to_vec(),
                rhs: scales.dims().to_vec(),
            });
        }
        let (n, d) = (self.dim(0), self.dim(1));
        let s = scales.as_slice();
        let src = self.as_slice();
        let lvl = simd::level();
        let mut data = pool::filled(n * d);
        let ranges = par::even_ranges(n, par::chunk_count(n * d, par::PAR_MIN_ELEMS).min(n.max(1)));
        par::for_row_ranges_mut(&mut data, d, &ranges, |_, rows, chunk| {
            let rows_src = &src[rows.start * d..rows.end * d];
            for ((r, row), out_row) in rows
                .zip(rows_src.chunks_exact(d))
                .zip(chunk.chunks_exact_mut(d))
            {
                simd::unary(lvl, UnOp::MulScalar(s[r]), row, out_row);
            }
        });
        let out = Tensor::from_vec(&[n, d], data)?;
        let total = (n * d) as u64;
        emit_sequential(
            OpClass::ElementWise,
            "scale_rows",
            total,
            total * INT_PER_ELEMWISE_ELEM,
            total * 4 + n as u64 * 4,
            total * 4,
            total,
        );
        Ok(out)
    }

    /// Scales each column of a `[n, d]` matrix by the matching entry of a
    /// length-`d` vector (learned per-feature scales).
    ///
    /// # Errors
    /// Returns [`TensorError::RankMismatch`] / [`TensorError::ShapeMismatch`]
    /// on malformed inputs.
    pub fn scale_cols(&self, scales: &Tensor) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "scale_cols",
                expected: 2,
                actual: self.rank(),
            });
        }
        if scales.rank() != 1 || scales.dim(0) != self.dim(1) {
            return Err(TensorError::ShapeMismatch {
                op: "scale_cols",
                lhs: self.dims().to_vec(),
                rhs: scales.dims().to_vec(),
            });
        }
        let (n, d) = (self.dim(0), self.dim(1));
        let s = scales.as_slice();
        let src = self.as_slice();
        let lvl = simd::level();
        let mut data = pool::filled(n * d);
        let ranges = par::even_ranges(n, par::chunk_count(n * d, par::PAR_MIN_ELEMS).min(n.max(1)));
        par::for_row_ranges_mut(&mut data, d, &ranges, |_, rows, chunk| {
            let rows_src = &src[rows.start * d..rows.end * d];
            for (row, out_row) in rows_src.chunks_exact(d).zip(chunk.chunks_exact_mut(d)) {
                simd::binary(lvl, BinOp::Mul, row, s, out_row);
            }
        });
        let out = Tensor::from_vec(&[n, d], data)?;
        let total = (n * d) as u64;
        emit_sequential(
            OpClass::ElementWise,
            "scale_cols",
            total,
            total * INT_PER_ELEMWISE_ELEM,
            total * 4 + d as u64 * 4,
            total * 4,
            total,
        );
        Ok(out)
    }

    /// Applies a pre-computed 0/1 dropout mask and rescales by `1/(1-p)`.
    ///
    /// The mask is generated by the caller (the `nn` crate) so that dropout
    /// is reproducible under a seeded RNG.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn apply_dropout_mask(&self, mask: &Tensor, p: f32) -> Result<Tensor> {
        let scale = 1.0 / (1.0 - p);
        self.binary_simd(mask, "dropout", BinOp::MulScale(scale))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record;

    #[test]
    fn binary_ops() {
        let a = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Tensor::from_vec(&[2, 2], vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        assert_eq!(a.add(&b).unwrap().as_slice(), &[6.0, 8.0, 10.0, 12.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[4.0, 4.0, 4.0, 4.0]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[5.0, 12.0, 21.0, 32.0]);
        assert_eq!(b.div(&a).unwrap().as_slice(), &[5.0, 3.0, 7.0 / 3.0, 2.0]);
        assert_eq!(a.maximum(&b).unwrap().as_slice(), b.as_slice());
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let a = Tensor::zeros(&[2, 2]);
        let b = Tensor::zeros(&[4]);
        assert!(a.add(&b).is_err());
    }

    #[test]
    fn activations() {
        let t = Tensor::from_vec(&[4], vec![-2.0, -0.5, 0.5, 2.0]).unwrap();
        assert_eq!(t.relu().as_slice(), &[0.0, 0.0, 0.5, 2.0]);
        let lr = t.leaky_relu(0.1);
        assert!((lr.as_slice()[0] + 0.2).abs() < 1e-6);
        let s = t.sigmoid();
        assert!((s.as_slice()[3] - 0.880797).abs() < 1e-5);
        let th = t.tanh();
        assert!((th.as_slice()[3] - 0.964027).abs() < 1e-5);
        assert_eq!(t.gt_zero_mask().as_slice(), &[0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn scalar_ops() {
        let t = Tensor::from_vec(&[2], vec![1.0, -2.0]).unwrap();
        assert_eq!(t.add_scalar(1.0).as_slice(), &[2.0, -1.0]);
        assert_eq!(t.mul_scalar(-3.0).as_slice(), &[-3.0, 6.0]);
        assert_eq!(t.neg().as_slice(), &[-1.0, 2.0]);
        assert_eq!(t.abs().as_slice(), &[1.0, 2.0]);
        assert_eq!(t.square().as_slice(), &[1.0, 4.0]);
        assert_eq!(t.clamp(-1.0, 0.5).as_slice(), &[0.5, -1.0]);
    }

    #[test]
    fn add_bias_broadcasts() {
        let x = Tensor::from_vec(&[2, 3], vec![0.0; 6]).unwrap();
        let b = Tensor::from_vec(&[3], vec![1.0, 2.0, 3.0]).unwrap();
        let y = x.add_bias(&b).unwrap();
        assert_eq!(y.as_slice(), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
        assert!(x.add_bias(&Tensor::zeros(&[2])).is_err());
    }

    #[test]
    fn scale_rows_works() {
        let x = Tensor::ones(&[2, 2]);
        let s = Tensor::from_vec(&[2], vec![2.0, 3.0]).unwrap();
        let y = x.scale_rows(&s).unwrap();
        assert_eq!(y.as_slice(), &[2.0, 2.0, 3.0, 3.0]);
    }

    #[test]
    fn powf_and_recip() {
        let t = Tensor::from_vec(&[3], vec![1.0, 2.0, 4.0]).unwrap();
        let sq = t.powf(2.0);
        assert_eq!(sq.as_slice(), &[1.0, 4.0, 16.0]);
        let r = t.recip();
        assert_eq!(r.as_slice(), &[1.0, 0.5, 0.25]);
    }

    #[test]
    fn scale_cols_works() {
        let x = Tensor::ones(&[2, 3]);
        let s = Tensor::from_vec(&[3], vec![1.0, 2.0, 3.0]).unwrap();
        let y = x.scale_cols(&s).unwrap();
        assert_eq!(y.as_slice(), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
        assert!(x.scale_cols(&Tensor::zeros(&[2])).is_err());
    }

    #[test]
    fn axpy_fuses() {
        let a = Tensor::ones(&[2]);
        let b = Tensor::from_vec(&[2], vec![10.0, 20.0]).unwrap();
        assert_eq!(a.axpy(0.1, &b).unwrap().as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn dropout_mask_scales() {
        let x = Tensor::from_vec(&[4], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let m = Tensor::from_vec(&[4], vec![1.0, 0.0, 1.0, 0.0]).unwrap();
        let y = x.apply_dropout_mask(&m, 0.5).unwrap();
        assert_eq!(y.as_slice(), &[2.0, 0.0, 6.0, 0.0]);
    }

    #[test]
    fn events_are_emitted_with_correct_class() {
        record::start_recording();
        let a = Tensor::ones(&[8]);
        let _ = a.relu();
        let _ = a.add(&a).unwrap();
        let events = record::stop_recording();
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(|e| e.class == OpClass::ElementWise));
        assert_eq!(events[0].threads, 8);
        assert_eq!(events[1].bytes_read, 64);
    }

    use crate::instrument::OpClass;
}
