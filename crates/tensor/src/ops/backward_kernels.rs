//! Backward kernels that do not decompose cleanly into forward primitives:
//! conv2d input/weight gradients and batch-norm gradients, plus transposed
//! batched GEMM variants and per-row selection used by loss functions.
//!
//! Training-time profiles in the paper include these backward kernels; they
//! carry the same op classes as their forward counterparts (cuDNN's
//! `dgrad`/`wgrad` kernels profile as convolutions, etc.).

use std::sync::Arc;

use super::conv::{valid_taps, Conv2dSpec};
use super::gemm::{bmm_into, transpose_pack};
use super::{emit_op, emit_sequential};
use crate::cost;
use crate::instrument::{AccessDesc, OpClass};
use crate::{par, pool, IntTensor, Result, Tensor, TensorError};

/// Minimum modeled MACs per chunk before a conv gradient splits across
/// threads (same budget as the forward convolution).
const MIN_CONV_MACS_PER_CHUNK: usize = 16 * 1024;

impl Tensor {
    /// Batched product with a transposed right operand:
    /// `self` (`[b, m, k]`) × `otherᵀ` where `other` is `[b, n, k]`,
    /// yielding `[b, m, n]`.
    ///
    /// # Errors
    /// Returns [`TensorError::RankMismatch`] / [`TensorError::ShapeMismatch`]
    /// on malformed operands.
    pub fn bmm_nt(&self, other: &Tensor) -> Result<Tensor> {
        if self.rank() != 3 || other.rank() != 3 {
            return Err(TensorError::RankMismatch {
                op: "bmm_nt",
                expected: 3,
                actual: if self.rank() != 3 { self.rank() } else { other.rank() },
            });
        }
        if self.dim(0) != other.dim(0) || self.dim(2) != other.dim(2) {
            return Err(TensorError::ShapeMismatch {
                op: "bmm_nt",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        let (b, m, k) = (self.dim(0), self.dim(1), self.dim(2));
        let n = other.dim(1);
        let a = self.as_slice();
        let bt = other.as_slice();
        // Pack each batch of `other` ([n, k] → [k, n]), then reuse the
        // shared blocked kernel — same path as the forward bmm.
        let mut packed = pool::filled(b * n * k);
        for bi in 0..b {
            transpose_pack(
                &bt[bi * n * k..(bi + 1) * n * k],
                n,
                k,
                &mut packed[bi * k * n..(bi + 1) * k * n],
            );
        }
        let mut out = pool::zeroed(b * m * n);
        bmm_into(a, &packed, &mut out, b, m, k, n);
        pool::recycle_vec(packed);
        let result = Tensor::from_vec(&[b, m, n], out)?;
        let macs = (b * m * k * n) as u64;
        emit_sequential(
            OpClass::Gemm,
            "sgemm_nt_batched",
            2 * macs,
            cost::gemm_iops(b * m, k, n),
            (b * (m * k + n * k)) as u64 * 4,
            (b * m * n) as u64 * 4,
            (b * m * n) as u64,
        );
        Ok(result)
    }

    /// Batched product with a transposed left operand:
    /// `selfᵀ` (`self` is `[b, k, m]`) × `other` (`[b, k, n]`),
    /// yielding `[b, m, n]`.
    ///
    /// # Errors
    /// Returns [`TensorError::RankMismatch`] / [`TensorError::ShapeMismatch`]
    /// on malformed operands.
    pub fn bmm_tn(&self, other: &Tensor) -> Result<Tensor> {
        if self.rank() != 3 || other.rank() != 3 {
            return Err(TensorError::RankMismatch {
                op: "bmm_tn",
                expected: 3,
                actual: if self.rank() != 3 { self.rank() } else { other.rank() },
            });
        }
        if self.dim(0) != other.dim(0) || self.dim(1) != other.dim(1) {
            return Err(TensorError::ShapeMismatch {
                op: "bmm_tn",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        let (b, k, m) = (self.dim(0), self.dim(1), self.dim(2));
        let n = other.dim(2);
        let at = self.as_slice();
        let bb = other.as_slice();
        // Pack each batch of `self` ([k, m] → [m, k]), then reuse the
        // shared blocked kernel.
        let mut packed = pool::filled(b * k * m);
        for bi in 0..b {
            transpose_pack(
                &at[bi * k * m..(bi + 1) * k * m],
                k,
                m,
                &mut packed[bi * m * k..(bi + 1) * m * k],
            );
        }
        let mut out = pool::zeroed(b * m * n);
        bmm_into(&packed, bb, &mut out, b, m, k, n);
        pool::recycle_vec(packed);
        let result = Tensor::from_vec(&[b, m, n], out)?;
        let macs = (b * m * k * n) as u64;
        emit_sequential(
            OpClass::Gemm,
            "sgemm_tn_batched",
            2 * macs,
            cost::gemm_iops(b * m, k, n),
            (b * (k * m + k * n)) as u64 * 4,
            (b * m * n) as u64 * 4,
            (b * m * n) as u64,
        );
        Ok(result)
    }

    /// Selects one element per row of a `[n, d]` matrix:
    /// `out[i] = self[i, index[i]]`. Used by NLL-style losses.
    ///
    /// # Errors
    /// Returns [`TensorError::RankMismatch`] / [`TensorError::ShapeMismatch`]
    /// / [`TensorError::IndexOutOfBounds`] on malformed inputs.
    pub fn select_per_row(&self, index: &IntTensor) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "select_per_row",
                expected: 2,
                actual: self.rank(),
            });
        }
        let (n, d) = (self.dim(0), self.dim(1));
        if index.numel() != n {
            return Err(TensorError::ShapeMismatch {
                op: "select_per_row",
                lhs: vec![n, d],
                rhs: index.dims().to_vec(),
            });
        }
        index.check_bounds(d, "select_per_row")?;
        let src = self.as_slice();
        let out: Vec<f32> = index
            .as_slice()
            .iter()
            .enumerate()
            .map(|(i, &c)| src[i * d + c as usize])
            .collect();
        let result = Tensor::from_vec(&[n], out)?;
        // Flat element indices for the access descriptor.
        let flat: Vec<u32> = index
            .as_slice()
            .iter()
            .enumerate()
            .map(|(i, &c)| (i * d) as u32 + c as u32)
            .collect();
        let table_bytes = self.byte_len();
        emit_op(
            OpClass::Gather,
            "select_per_row",
            0,
            n as u64 * cost::INT_PER_GATHER_ELEM,
            n as u64 * 12,
            n as u64 * 4,
            n as u64,
            move || {
                vec![AccessDesc::Indexed {
                    indices: Arc::new(flat),
                    row_bytes: 4,
                    table_bytes,
                }]
            },
            move || {
                vec![AccessDesc::Sequential {
                    bytes: n as u64 * 4,
                }]
            },
        );
        Ok(result)
    }

    /// Inverse of [`Tensor::select_per_row`]: scatters a length-`n` vector
    /// into a fresh `[n, d]` matrix at one column per row.
    ///
    /// # Errors
    /// Returns [`TensorError::RankMismatch`] / [`TensorError::ShapeMismatch`]
    /// / [`TensorError::IndexOutOfBounds`] on malformed inputs.
    pub fn scatter_per_row(&self, index: &IntTensor, d: usize) -> Result<Tensor> {
        if self.rank() != 1 {
            return Err(TensorError::RankMismatch {
                op: "scatter_per_row",
                expected: 1,
                actual: self.rank(),
            });
        }
        let n = self.dim(0);
        if index.numel() != n {
            return Err(TensorError::ShapeMismatch {
                op: "scatter_per_row",
                lhs: vec![n],
                rhs: index.dims().to_vec(),
            });
        }
        index.check_bounds(d, "scatter_per_row")?;
        let mut out = Tensor::zeros(&[n, d]);
        {
            let dst = out.as_mut_slice();
            for (i, (&v, &c)) in self.as_slice().iter().zip(index.as_slice()).enumerate() {
                dst[i * d + c as usize] = v;
            }
        }
        let flat: Vec<u32> = index
            .as_slice()
            .iter()
            .enumerate()
            .map(|(i, &c)| (i * d) as u32 + c as u32)
            .collect();
        emit_op(
            OpClass::Scatter,
            "scatter_per_row",
            0,
            n as u64 * cost::INT_PER_GATHER_ELEM,
            n as u64 * 12,
            n as u64 * 4,
            n as u64,
            move || {
                vec![AccessDesc::Sequential {
                    bytes: n as u64 * 12,
                }]
            },
            move || {
                vec![AccessDesc::Indexed {
                    indices: Arc::new(flat),
                    row_bytes: 4,
                    table_bytes: (n * d * 4) as u64,
                }]
            },
        );
        Ok(out)
    }

    /// Gradient of [`Tensor::conv2d`] with respect to input and weight.
    ///
    /// `self` is the forward input `[n, c_in, h, w]`, `weight` the forward
    /// filter `[c_out, c_in, kh, kw]` and `dout` the upstream gradient
    /// `[n, c_out, h', w']`. Returns `(dx, dw)`.
    ///
    /// # Errors
    /// Returns the same errors as the forward convolution for malformed
    /// shapes.
    pub fn conv2d_backward(
        &self,
        weight: &Tensor,
        spec: Conv2dSpec,
        dout: &Tensor,
    ) -> Result<(Tensor, Tensor)> {
        if self.rank() != 4 || weight.rank() != 4 || dout.rank() != 4 {
            return Err(TensorError::RankMismatch {
                op: "conv2d_backward",
                expected: 4,
                actual: self.rank().min(weight.rank()).min(dout.rank()),
            });
        }
        let (n, c_in, h, w) = (self.dim(0), self.dim(1), self.dim(2), self.dim(3));
        let (c_out, _, kh, kw) = (weight.dim(0), weight.dim(1), weight.dim(2), weight.dim(3));
        let (oh, ow) = spec.output_size(h, w, kh, kw)?;
        if dout.dims() != [n, c_out, oh, ow] {
            return Err(TensorError::ShapeMismatch {
                op: "conv2d_backward",
                lhs: vec![n, c_out, oh, ow],
                rhs: dout.dims().to_vec(),
            });
        }
        let x = self.as_slice();
        let k = weight.as_slice();
        let g = dout.as_slice();
        let in_img = c_in * h * w;
        let in_ch = h * w;
        let out_img = c_out * oh * ow;
        let out_ch = oh * ow;
        let k_oc = c_in * kh * kw;
        let k_ic = kh * kw;
        let macs_total = n
            .saturating_mul(out_img)
            .saturating_mul(c_in)
            .saturating_mul(k_ic);
        let chunks = par::chunk_count(macs_total, MIN_CONV_MACS_PER_CHUNK);

        // dgrad: one task row per (image, input channel). Every dx element
        // is summed by exactly one task, in (oc, ky, kx, oy, ox) tap order
        // regardless of thread count; the inner loop is a contiguous axpy
        // over input columns when the stride is 1.
        let mut dx = pool::zeroed(x.len());
        let dx_ranges = par::even_ranges(n * c_in, chunks.min((n * c_in).max(1)));
        par::for_row_ranges_mut(&mut dx, in_ch, &dx_ranges, |_, task_rows, chunk| {
            for (row, dx_img) in task_rows.zip(chunk.chunks_exact_mut(in_ch)) {
                let (ni, ic) = (row / c_in, row % c_in);
                for oc in 0..c_out {
                    let g_img = &g[ni * out_img + oc * out_ch..][..out_ch];
                    let k_ch = &k[oc * k_oc + ic * k_ic..][..k_ic];
                    for ky in 0..kh {
                        let oys = valid_taps(spec.stride_h, spec.pad_h, ky, h, oh);
                        for kx in 0..kw {
                            let kval = k_ch[ky * kw + kx];
                            let oxs = valid_taps(spec.stride_w, spec.pad_w, kx, w, ow);
                            for oy in oys.clone() {
                                let sy = oy * spec.stride_h + ky - spec.pad_h;
                                let dx_row = &mut dx_img[sy * w..][..w];
                                let g_row = &g_img[oy * ow..][..ow];
                                if spec.stride_w == 1 {
                                    let sx0 = oxs.start + kx - spec.pad_w;
                                    for (d, &gv) in
                                        dx_row[sx0..].iter_mut().zip(&g_row[oxs.clone()])
                                    {
                                        *d += gv * kval;
                                    }
                                } else {
                                    for ox in oxs.clone() {
                                        dx_row[ox * spec.stride_w + kx - spec.pad_w] +=
                                            g_row[ox] * kval;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        });

        // wgrad: one task row per output channel; every dw element is a
        // fixed-order reduction over (image, oy, ox), so it too is
        // thread-count invariant.
        let mut dw = pool::zeroed(k.len());
        let dw_ranges = par::even_ranges(c_out, chunks.min(c_out.max(1)));
        par::for_row_ranges_mut(&mut dw, k_oc, &dw_ranges, |_, task_rows, chunk| {
            for (oc, dw_oc) in task_rows.zip(chunk.chunks_exact_mut(k_oc)) {
                for ni in 0..n {
                    let g_img = &g[ni * out_img + oc * out_ch..][..out_ch];
                    for ic in 0..c_in {
                        let x_ch = &x[ni * in_img + ic * in_ch..][..in_ch];
                        let dw_ch = &mut dw_oc[ic * k_ic..][..k_ic];
                        for ky in 0..kh {
                            let oys = valid_taps(spec.stride_h, spec.pad_h, ky, h, oh);
                            for kx in 0..kw {
                                let oxs = valid_taps(spec.stride_w, spec.pad_w, kx, w, ow);
                                let mut acc = 0.0f32;
                                for oy in oys.clone() {
                                    let sy = oy * spec.stride_h + ky - spec.pad_h;
                                    let x_row = &x_ch[sy * w..][..w];
                                    let g_row = &g_img[oy * ow..][..ow];
                                    if spec.stride_w == 1 {
                                        let sx0 = oxs.start + kx - spec.pad_w;
                                        for (&gv, &xv) in
                                            g_row[oxs.clone()].iter().zip(&x_row[sx0..])
                                        {
                                            acc += gv * xv;
                                        }
                                    } else {
                                        for ox in oxs.clone() {
                                            acc += g_row[ox]
                                                * x_row[ox * spec.stride_w + kx - spec.pad_w];
                                        }
                                    }
                                }
                                dw_ch[ky * kw + kx] += acc;
                            }
                        }
                    }
                }
            }
        });
        let macs = (n * c_out * oh * ow * c_in * kh * kw) as u64;
        // dgrad and wgrad each redo the MAC volume of the forward pass.
        emit_sequential(
            OpClass::Conv2d,
            "conv2d_dgrad",
            2 * macs,
            cost::conv2d_iops(macs),
            (dout.numel() + weight.numel()) as u64 * 4,
            self.numel() as u64 * 4,
            self.numel() as u64,
        );
        emit_sequential(
            OpClass::Conv2d,
            "conv2d_wgrad",
            2 * macs,
            cost::conv2d_iops(macs),
            (dout.numel() + self.numel()) as u64 * 4,
            weight.numel() as u64 * 4,
            weight.numel() as u64,
        );
        Ok((
            Tensor::from_vec(self.dims(), dx)?,
            Tensor::from_vec(weight.dims(), dw)?,
        ))
    }

    /// Gradient of [`Tensor::batch_norm`].
    ///
    /// `self` is the forward input `[n, d]`; `mean`/`var` are the saved
    /// batch statistics. Returns `(dx, dgamma, dbeta)`.
    ///
    /// # Errors
    /// Returns [`TensorError::RankMismatch`] / [`TensorError::ShapeMismatch`]
    /// on malformed inputs.
    pub fn batch_norm_backward(
        &self,
        gamma: &Tensor,
        mean: &Tensor,
        var: &Tensor,
        eps: f32,
        dout: &Tensor,
    ) -> Result<(Tensor, Tensor, Tensor)> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "batch_norm_backward",
                expected: 2,
                actual: self.rank(),
            });
        }
        self.shape().require_same(dout.shape(), "batch_norm_backward")?;
        let (n, d) = (self.dim(0), self.dim(1));
        if gamma.dims() != [d] || mean.dims() != [d] || var.dims() != [d] {
            return Err(TensorError::ShapeMismatch {
                op: "batch_norm_backward",
                lhs: vec![d],
                rhs: gamma.dims().to_vec(),
            });
        }
        let x = self.as_slice();
        let g = dout.as_slice();
        let gm = gamma.as_slice();
        let mu = mean.as_slice();
        let vr = var.as_slice();
        let inv_std: Vec<f32> = vr.iter().map(|&v| 1.0 / (v + eps).sqrt()).collect();

        let mut dgamma = vec![0.0f32; d];
        let mut dbeta = vec![0.0f32; d];
        let mut sum_g = vec![0.0f32; d];
        let mut sum_gx = vec![0.0f32; d];
        for i in 0..n {
            for j in 0..d {
                let xh = (x[i * d + j] - mu[j]) * inv_std[j];
                let gi = g[i * d + j];
                dgamma[j] += gi * xh;
                dbeta[j] += gi;
                sum_g[j] += gi;
                sum_gx[j] += gi * xh;
            }
        }
        let mut dx = vec![0.0f32; n * d];
        let nf = n as f32;
        for i in 0..n {
            for j in 0..d {
                let xh = (x[i * d + j] - mu[j]) * inv_std[j];
                dx[i * d + j] = gm[j] * inv_std[j] / nf
                    * (nf * g[i * d + j] - sum_g[j] - xh * sum_gx[j]);
            }
        }
        let total = (n * d) as u64;
        emit_sequential(
            OpClass::BatchNorm,
            "batch_norm_backward",
            total * 12,
            total * cost::INT_PER_BATCHNORM_ELEM,
            total * 4 * 3,
            total * 4,
            total,
        );
        Ok((
            Tensor::from_vec(&[n, d], dx)?,
            Tensor::from_vec(&[d], dgamma)?,
            Tensor::from_vec(&[d], dbeta)?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn bmm_nt_matches_explicit_transpose() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let a = Tensor::from_fn(&[2, 3, 4], |_| rng.gen_range(-1.0..1.0));
        let b = Tensor::from_fn(&[2, 5, 4], |_| rng.gen_range(-1.0..1.0));
        let c = a.bmm_nt(&b).unwrap();
        assert_eq!(c.dims(), &[2, 3, 5]);
        // Verify one element by hand.
        let mut acc = 0.0f32;
        for kk in 0..4 {
            acc += a.get(&[1, 2, kk]) * b.get(&[1, 4, kk]);
        }
        assert!((c.get(&[1, 2, 4]) - acc).abs() < 1e-5);
    }

    #[test]
    fn bmm_tn_matches_explicit_transpose() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let a = Tensor::from_fn(&[2, 4, 3], |_| rng.gen_range(-1.0..1.0));
        let b = Tensor::from_fn(&[2, 4, 5], |_| rng.gen_range(-1.0..1.0));
        let c = a.bmm_tn(&b).unwrap();
        assert_eq!(c.dims(), &[2, 3, 5]);
        let mut acc = 0.0f32;
        for kk in 0..4 {
            acc += a.get(&[0, kk, 1]) * b.get(&[0, kk, 3]);
        }
        assert!((c.get(&[0, 1, 3]) - acc).abs() < 1e-5);
    }

    #[test]
    fn select_scatter_per_row_roundtrip() {
        let x = Tensor::from_fn(&[3, 4], |i| i as f32);
        let idx = IntTensor::from_vec(&[3], vec![1, 0, 3]).unwrap();
        let sel = x.select_per_row(&idx).unwrap();
        assert_eq!(sel.as_slice(), &[1.0, 4.0, 11.0]);
        let back = sel.scatter_per_row(&idx, 4).unwrap();
        assert_eq!(back.get(&[0, 1]), 1.0);
        assert_eq!(back.get(&[2, 3]), 11.0);
        assert_eq!(back.get(&[0, 0]), 0.0);
    }

    #[test]
    fn conv2d_backward_matches_finite_difference() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let x = Tensor::from_fn(&[1, 2, 4, 4], |_| rng.gen_range(-1.0..1.0));
        let w = Tensor::from_fn(&[2, 2, 3, 3], |_| rng.gen_range(-1.0..1.0));
        let spec = Conv2dSpec {
            stride_h: 1,
            stride_w: 1,
            pad_h: 1,
            pad_w: 1,
        };
        let y = x.conv2d(&w, spec).unwrap();
        // Loss = sum(y); upstream gradient is all ones.
        let dout = Tensor::ones(y.dims());
        let (dx, dw) = x.conv2d_backward(&w, spec, &dout).unwrap();

        let eps = 1e-2f32;
        // Check a few dx entries by central differences.
        for &flat in &[0usize, 7, 13, 21] {
            let mut xp = x.clone();
            xp.as_mut_slice()[flat] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[flat] -= eps;
            let lp: f32 = xp.conv2d(&w, spec).unwrap().as_slice().iter().sum();
            let lm: f32 = xm.conv2d(&w, spec).unwrap().as_slice().iter().sum();
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (dx.as_slice()[flat] - fd).abs() < 1e-2,
                "dx[{flat}] {} vs fd {fd}",
                dx.as_slice()[flat]
            );
        }
        for &flat in &[0usize, 5, 17] {
            let mut wp = w.clone();
            wp.as_mut_slice()[flat] += eps;
            let mut wm = w.clone();
            wm.as_mut_slice()[flat] -= eps;
            let lp: f32 = x.conv2d(&wp, spec).unwrap().as_slice().iter().sum();
            let lm: f32 = x.conv2d(&wm, spec).unwrap().as_slice().iter().sum();
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (dw.as_slice()[flat] - fd).abs() < 1e-2,
                "dw[{flat}] {} vs fd {fd}",
                dw.as_slice()[flat]
            );
        }
    }

    #[test]
    fn batch_norm_backward_matches_finite_difference() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let x = Tensor::from_fn(&[6, 3], |_| rng.gen_range(-1.0..1.0));
        let gamma = Tensor::from_fn(&[3], |_| rng.gen_range(0.5..1.5));
        let beta = Tensor::from_fn(&[3], |_| rng.gen_range(-0.5..0.5));
        let eps = 1e-5f32;
        let (_, mean, var) = x.batch_norm(&gamma, &beta, eps).unwrap();
        let dout = Tensor::from_fn(&[6, 3], |i| ((i % 5) as f32 - 2.0) * 0.3);
        let (dx, dgamma, dbeta) = x
            .batch_norm_backward(&gamma, &mean, &var, eps, &dout)
            .unwrap();

        let loss = |xt: &Tensor, g: &Tensor, b: &Tensor| -> f32 {
            let (y, _, _) = xt.batch_norm(g, b, eps).unwrap();
            y.as_slice()
                .iter()
                .zip(dout.as_slice())
                .map(|(&a, &w)| a * w)
                .sum()
        };
        let h = 1e-2f32;
        for &flat in &[0usize, 4, 11, 17] {
            let mut xp = x.clone();
            xp.as_mut_slice()[flat] += h;
            let mut xm = x.clone();
            xm.as_mut_slice()[flat] -= h;
            let fd = (loss(&xp, &gamma, &beta) - loss(&xm, &gamma, &beta)) / (2.0 * h);
            assert!(
                (dx.as_slice()[flat] - fd).abs() < 2e-2,
                "dx[{flat}] {} vs fd {fd}",
                dx.as_slice()[flat]
            );
        }
        for j in 0..3 {
            let mut gp = gamma.clone();
            gp.as_mut_slice()[j] += h;
            let mut gm = gamma.clone();
            gm.as_mut_slice()[j] -= h;
            let fd = (loss(&x, &gp, &beta) - loss(&x, &gm, &beta)) / (2.0 * h);
            assert!((dgamma.as_slice()[j] - fd).abs() < 2e-2);

            let mut bp = beta.clone();
            bp.as_mut_slice()[j] += h;
            let mut bm = beta.clone();
            bm.as_mut_slice()[j] -= h;
            let fd = (loss(&x, &gamma, &bp) - loss(&x, &gamma, &bm)) / (2.0 * h);
            assert!((dbeta.as_slice()[j] - fd).abs() < 2e-2);
        }
    }
}
