//! Scatter operations: index-driven writes with accumulation.
//!
//! `scatter_add` is the backward of `gather` and the message-delivery step
//! of message-passing GNNs. On a GPU it is implemented with atomics over
//! data-dependent addresses, which the paper identifies as a major source
//! of memory-dependency stalls.

use std::sync::Arc;

use super::emit_op;
use crate::cost::INT_PER_GATHER_ELEM;
use crate::instrument::{AccessDesc, OpClass};
use crate::{par, pool, IntTensor, Result, Tensor, TensorError};

/// Minimum scattered elements per parallel chunk.
const MIN_ELEMS_PER_CHUNK: usize = 16 * 1024;

/// Output-row partition for scatter kernels. Each task owns a disjoint
/// range of *output* rows and scans the whole index array in order, so
/// every output element accumulates in exactly the sequential order —
/// the deterministic alternative to GPU-style atomics.
fn scatter_ranges(n: usize, d: usize, out_rows: usize) -> Vec<std::ops::Range<usize>> {
    let chunks = par::chunk_count(n * d, MIN_ELEMS_PER_CHUNK).min(out_rows.max(1));
    par::even_ranges(out_rows, chunks)
}

impl Tensor {
    /// Scatter-adds rows of `self` (`[n, d]`) into a fresh `[out_rows, d]`
    /// tensor: `out[index[i]] += self[i]`.
    ///
    /// # Errors
    /// Returns [`TensorError::RankMismatch`] unless `self` is rank 2,
    /// [`TensorError::ShapeMismatch`] if `index` length ≠ `n`, or
    /// [`TensorError::IndexOutOfBounds`] for invalid indices.
    pub fn scatter_add_rows(&self, index: &IntTensor, out_rows: usize) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "scatter_add_rows",
                expected: 2,
                actual: self.rank(),
            });
        }
        let (n, d) = (self.dim(0), self.dim(1));
        if index.numel() != n {
            return Err(TensorError::ShapeMismatch {
                op: "scatter_add_rows",
                lhs: vec![n, d],
                rhs: index.dims().to_vec(),
            });
        }
        index.check_bounds(out_rows, "scatter_add_rows")?;
        let mut buf = pool::zeroed(out_rows * d);
        {
            let src = self.as_slice();
            let idx = index.as_slice();
            let ranges = scatter_ranges(n, d, out_rows);
            par::for_row_ranges_mut(&mut buf, d, &ranges, |_, rows, chunk| {
                for (i, &target) in idx.iter().enumerate() {
                    let t = target as usize;
                    if !rows.contains(&t) {
                        continue;
                    }
                    let src_row = &src[i * d..(i + 1) * d];
                    let dst_row = &mut chunk[(t - rows.start) * d..][..d];
                    for (o, &s) in dst_row.iter_mut().zip(src_row) {
                        *o += s;
                    }
                }
            });
        }
        let out = Tensor::from_vec(&[out_rows, d], buf)?;
        let total = (n * d) as u64;
        let idx = index.to_u32_vec();
        let row_bytes = (d * 4) as u64;
        let table_bytes = (out_rows * d * 4) as u64;
        emit_op(
            OpClass::Scatter,
            "scatter_add",
            total, // one fp add per scattered element
            total * INT_PER_GATHER_ELEM + n as u64 * 2,
            total * 4 + n as u64 * 8,
            total * 4,
            total,
            move || {
                vec![AccessDesc::Sequential {
                    bytes: total * 4 + idx.len() as u64 * 8,
                }]
            },
            {
                let idx2 = index.to_u32_vec();
                move || {
                    vec![AccessDesc::Indexed {
                        indices: Arc::new(idx2),
                        row_bytes,
                        table_bytes,
                    }]
                }
            },
        );
        Ok(out)
    }

    /// Scatter-max of rows: `out[index[i]] = max(out[index[i]], self[i])`,
    /// with untouched rows left at `f32::NEG_INFINITY` replaced by 0.
    ///
    /// Used by max-pooling aggregators.
    ///
    /// # Errors
    /// Same conditions as [`Tensor::scatter_add_rows`].
    pub fn scatter_max_rows(&self, index: &IntTensor, out_rows: usize) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "scatter_max_rows",
                expected: 2,
                actual: self.rank(),
            });
        }
        let (n, d) = (self.dim(0), self.dim(1));
        if index.numel() != n {
            return Err(TensorError::ShapeMismatch {
                op: "scatter_max_rows",
                lhs: vec![n, d],
                rhs: index.dims().to_vec(),
            });
        }
        index.check_bounds(out_rows, "scatter_max_rows")?;
        let mut buf = pool::filled(out_rows * d);
        {
            let src = self.as_slice();
            let idx = index.as_slice();
            let ranges = scatter_ranges(n, d, out_rows);
            par::for_row_ranges_mut(&mut buf, d, &ranges, |_, rows, chunk| {
                chunk.fill(f32::NEG_INFINITY);
                for (i, &target) in idx.iter().enumerate() {
                    let t = target as usize;
                    if !rows.contains(&t) {
                        continue;
                    }
                    let base = (t - rows.start) * d;
                    for j in 0..d {
                        let v = src[i * d + j];
                        if v > chunk[base + j] {
                            chunk[base + j] = v;
                        }
                    }
                }
                for v in chunk.iter_mut() {
                    if *v == f32::NEG_INFINITY {
                        *v = 0.0;
                    }
                }
            });
        }
        let out = Tensor::from_vec(&[out_rows, d], buf)?;
        let total = (n * d) as u64;
        let idx = index.to_u32_vec();
        let row_bytes = (d * 4) as u64;
        let table_bytes = (out_rows * d * 4) as u64;
        emit_op(
            OpClass::Scatter,
            "scatter_max",
            total,
            total * INT_PER_GATHER_ELEM + n as u64 * 2,
            total * 4 + n as u64 * 8,
            total * 4,
            total,
            move || {
                vec![AccessDesc::Sequential {
                    bytes: total * 4 + idx.len() as u64 * 8,
                }]
            },
            {
                let idx2 = index.to_u32_vec();
                move || {
                    vec![AccessDesc::Indexed {
                        indices: Arc::new(idx2),
                        row_bytes,
                        table_bytes,
                    }]
                }
            },
        );
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record;

    #[test]
    fn scatter_add_accumulates() {
        let src = Tensor::from_vec(&[3, 2], vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0]).unwrap();
        let idx = IntTensor::from_vec(&[3], vec![0, 1, 0]).unwrap();
        let out = src.scatter_add_rows(&idx, 2).unwrap();
        assert_eq!(out.as_slice(), &[4.0, 4.0, 2.0, 2.0]);
    }

    #[test]
    fn scatter_is_inverse_of_gather_for_permutation() {
        let t = Tensor::from_fn(&[4, 3], |i| i as f32);
        let perm = IntTensor::from_vec(&[4], vec![2, 0, 3, 1]).unwrap();
        let gathered = t.gather_rows(&perm).unwrap();
        let restored = gathered.scatter_add_rows(&perm, 4).unwrap();
        assert_eq!(restored.as_slice(), t.as_slice());
    }

    #[test]
    fn scatter_max_takes_maximum() {
        let src = Tensor::from_vec(&[3, 1], vec![5.0, -1.0, 3.0]).unwrap();
        let idx = IntTensor::from_vec(&[3], vec![0, 0, 0]).unwrap();
        let out = src.scatter_max_rows(&idx, 2).unwrap();
        assert_eq!(out.as_slice(), &[5.0, 0.0]); // untouched row zeroed
    }

    #[test]
    fn scatter_bounds_and_shape_checks() {
        let src = Tensor::zeros(&[2, 2]);
        let bad_idx = IntTensor::from_vec(&[2], vec![0, 5]).unwrap();
        assert!(src.scatter_add_rows(&bad_idx, 3).is_err());
        let wrong_len = IntTensor::from_vec(&[3], vec![0, 1, 0]).unwrap();
        assert!(src.scatter_add_rows(&wrong_len, 3).is_err());
    }

    #[test]
    fn scatter_event_writes_are_indexed() {
        let src = Tensor::ones(&[4, 2]);
        let idx = IntTensor::from_vec(&[4], vec![1, 1, 0, 3]).unwrap();
        record::start_recording();
        let _ = src.scatter_add_rows(&idx, 4).unwrap();
        let events = record::stop_recording();
        assert_eq!(events[0].class, OpClass::Scatter);
        assert!(matches!(events[0].writes[0], AccessDesc::Indexed { .. }));
    }
}
