//! Dense matrix multiplication: GEMM, GEMV and batched GEMM.
//!
//! GEMM feeds the *update* phase of every GNN layer. The paper finds that
//! GEMM + SpMM together account for only ~25 % of GNN training time — far
//! below their share in DNN training — but GEMM still posts the highest
//! per-kernel GFLOPS (mid-300s on the V100).
//!
//! All variants (NN, NT, TN, batched) execute through one cache-blocked,
//! unroll-by-8 micro-kernel ([`gemm_kernel`]); the transposed layouts pack
//! their transposed operand into a row-major panel first, exactly like a
//! BLAS `?gemm` pack step. Row blocks run on the [`crate::par`] pool; each
//! output row is accumulated in a fixed k-order by exactly one task, so
//! results are bit-identical at every thread count.

use std::ops::Range;

use super::emit_sequential;
use crate::cost;
use crate::instrument::OpClass;
use crate::simd::{self, SimdLevel};
use crate::{par, pool, Result, Tensor, TensorError};

/// k-panel depth of the blocked micro-kernel: one panel of B (`KC` rows of
/// `n` floats) stays L1/L2-resident while it is swept over a row block.
const KC: usize = 256;

/// Minimum multiply-accumulate count per parallel chunk; below this the
/// fork/join handshake dominates and the kernel stays inline.
const MIN_MACS_PER_CHUNK: usize = 16 * 1024;

/// Validates a GEMM operand pair: both `rank`-dimensional, contracted
/// dimensions equal, and (for rank 3) equal batch counts. One shared
/// helper instead of the per-variant copies this file used to carry.
fn check_pair(
    op: &'static str,
    a: &Tensor,
    b: &Tensor,
    rank: usize,
    a_axis: usize,
    b_axis: usize,
) -> Result<()> {
    if a.rank() != rank || b.rank() != rank {
        return Err(TensorError::RankMismatch {
            op,
            expected: rank,
            actual: if a.rank() != rank { a.rank() } else { b.rank() },
        });
    }
    let batch_ok = rank < 3 || a.dim(0) == b.dim(0);
    if a.dim(a_axis) != b.dim(b_axis) || !batch_ok {
        return Err(TensorError::ShapeMismatch {
            op,
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    Ok(())
}

/// The shared micro-kernel: `C += A·B` for a block of `rows` rows.
///
/// `a` is the row block (`rows × k`), `b` the full right operand
/// (`k × n`), `c` the matching output block (`rows × n`), all row-major.
/// k advances through fixed `KC` panels with an 8-deep unrolled update, so
/// the accumulation order of every output element depends only on `k` —
/// never on how rows were partitioned across threads. The 8-deep panel
/// update and the scalar k-tail both dispatch through [`crate::simd`] at
/// `lvl` — the caller resolves the level once on the requesting thread so
/// pool workers inherit it.
pub(crate) fn gemm_kernel(
    lvl: SimdLevel,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    rows: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(a.len(), rows * k);
    debug_assert!(b.len() >= k * n);
    debug_assert_eq!(c.len(), rows * n);
    for k0 in (0..k).step_by(KC) {
        let k1 = (k0 + KC).min(k);
        // Pair output rows so the AVX2 lane reuses each loaded B lane for
        // two C rows; rows never mix, so every output element still
        // accumulates in pure k-order.
        let mut i = 0;
        while i + 2 <= rows {
            let (head, tail) = c.split_at_mut((i + 1) * n);
            let c_row0 = &mut head[i * n..];
            let c_row1 = &mut tail[..n];
            let a_row0 = &a[i * k..(i + 1) * k];
            let a_row1 = &a[(i + 1) * k..(i + 2) * k];
            let mut kk = k0;
            while kk + 8 <= k1 {
                let al0: &[f32; 8] = a_row0[kk..kk + 8].try_into().unwrap();
                let al1: &[f32; 8] = a_row1[kk..kk + 8].try_into().unwrap();
                // Skip fully-zero a-panels (ReLU activations are sparse);
                // data-dependent, so identical at every thread count.
                let z0 = al0 == &[0.0; 8];
                let z1 = al1 == &[0.0; 8];
                let panel = &b[kk * n..(kk + 8) * n];
                match (z0, z1) {
                    (true, true) => {}
                    (false, true) => simd::axpy8(lvl, c_row0, al0, panel, n),
                    (true, false) => simd::axpy8(lvl, c_row1, al1, panel, n),
                    (false, false) => simd::axpy8x2(lvl, c_row0, c_row1, al0, al1, panel, n),
                }
                kk += 8;
            }
            while kk < k1 {
                let b_row = &b[kk * n..][..n];
                let a0 = a_row0[kk];
                if a0 != 0.0 {
                    simd::axpy(lvl, c_row0, a0, b_row);
                }
                let a1 = a_row1[kk];
                if a1 != 0.0 {
                    simd::axpy(lvl, c_row1, a1, b_row);
                }
                kk += 1;
            }
            i += 2;
        }
        if i < rows {
            let a_row = &a[i * k..(i + 1) * k];
            let c_row = &mut c[i * n..i * n + n];
            let mut kk = k0;
            while kk + 8 <= k1 {
                let al: &[f32; 8] = a_row[kk..kk + 8].try_into().unwrap();
                if al == &[0.0; 8] {
                    kk += 8;
                    continue;
                }
                simd::axpy8(lvl, c_row, al, &b[kk * n..(kk + 8) * n], n);
                kk += 8;
            }
            while kk < k1 {
                let aik = a_row[kk];
                if aik != 0.0 {
                    simd::axpy(lvl, c_row, aik, &b[kk * n..][..n]);
                }
                kk += 1;
            }
        }
    }
}

/// Row-range partition for an `m × k × n` GEMM, sized so each chunk carries
/// at least [`MIN_MACS_PER_CHUNK`] multiply-accumulates.
fn gemm_row_ranges(m: usize, k: usize, n: usize) -> Vec<Range<usize>> {
    let per_row = k.saturating_mul(n).max(1);
    let min_rows = (MIN_MACS_PER_CHUNK / per_row).max(1);
    par::even_ranges(m, par::chunk_count(m, min_rows))
}

/// `out = A·B` over the pool, row-block parallel. `out` must be zeroed.
pub(crate) fn matmul_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    let lvl = simd::level();
    let ranges = gemm_row_ranges(m, k, n);
    par::for_row_ranges_mut(out, n, &ranges, |_, r, chunk| {
        gemm_kernel(lvl, &a[r.start * k..r.end * k], b, chunk, r.len(), k, n);
    });
}

/// Cache-blocked transpose of a row-major `rows × cols` slice into `dst`
/// (`cols × rows`): the pack step for the NT/TN layouts.
pub(crate) fn transpose_pack(src: &[f32], rows: usize, cols: usize, dst: &mut [f32]) {
    debug_assert_eq!(src.len(), rows * cols);
    debug_assert_eq!(dst.len(), rows * cols);
    const T: usize = 32;
    let ranges = par::even_ranges(cols, par::chunk_count(cols, (T * 4).max(1)));
    // Partition destination rows (= source columns): disjoint writes.
    par::for_row_ranges_mut(dst, rows, &ranges, |_, cr, chunk| {
        for c0 in (cr.start..cr.end).step_by(T) {
            let c1 = (c0 + T).min(cr.end);
            for r0 in (0..rows).step_by(T) {
                let r1 = (r0 + T).min(rows);
                for c in c0..c1 {
                    let drow = &mut chunk[(c - cr.start) * rows..(c - cr.start) * rows + rows];
                    for r in r0..r1 {
                        drow[r] = src[r * cols + c];
                    }
                }
            }
        }
    });
}

impl Tensor {
    /// Matrix product of `self` (`[m, k]`) with `other` (`[k, n]`).
    ///
    /// # Errors
    /// Returns [`TensorError::RankMismatch`] unless both operands are rank 2,
    /// or [`TensorError::ShapeMismatch`] if the inner dimensions differ.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        check_pair("matmul", self, other, 2, 1, 0)?;
        let (m, k) = (self.dim(0), self.dim(1));
        let n = other.dim(1);
        let mut out = pool::zeroed(m * n);
        matmul_into(self.as_slice(), other.as_slice(), &mut out, m, k, n);
        let result = Tensor::from_vec(&[m, n], out)?;

        let macs = (m * k * n) as u64;
        emit_sequential(
            OpClass::Gemm,
            "sgemm",
            2 * macs,
            cost::gemm_iops(m, k, n),
            ((m * k) + (k * n)) as u64 * 4,
            (m * n) as u64 * 4,
            (m * n) as u64,
        );
        Ok(result)
    }

    /// Matrix-vector product of `self` (`[m, k]`) with `v` (`[k]`).
    ///
    /// # Errors
    /// Returns [`TensorError::RankMismatch`] / [`TensorError::ShapeMismatch`]
    /// on malformed operands.
    pub fn gemv(&self, v: &Tensor) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "gemv",
                expected: 2,
                actual: self.rank(),
            });
        }
        if v.rank() != 1 || v.dim(0) != self.dim(1) {
            return Err(TensorError::ShapeMismatch {
                op: "gemv",
                lhs: self.dims().to_vec(),
                rhs: v.dims().to_vec(),
            });
        }
        let (m, k) = (self.dim(0), self.dim(1));
        let vv = v.as_slice();
        let a = self.as_slice();
        let lvl = simd::level();
        let mut out = pool::filled(m);
        let min_rows = (MIN_MACS_PER_CHUNK / k.max(1)).max(1);
        let ranges = par::even_ranges(m, par::chunk_count(m, min_rows));
        par::for_row_ranges_mut(&mut out, 1, &ranges, |_, r, chunk| {
            for (o, row) in chunk.iter_mut().zip(a[r.start * k..r.end * k].chunks_exact(k)) {
                *o = simd::vdot(lvl, row, vv);
            }
        });
        let result = Tensor::from_vec(&[m], out)?;
        emit_sequential(
            OpClass::Gemv,
            "sgemv",
            2 * (m * k) as u64,
            cost::gemv_iops(m, k),
            ((m * k) + k) as u64 * 4,
            m as u64 * 4,
            m as u64,
        );
        Ok(result)
    }

    /// Matrix product with a transposed right operand:
    /// `self` (`[m, k]`) × `otherᵀ` where `other` is `[n, k]`.
    ///
    /// Real BLAS libraries provide this as a layout flag (`gemm_nt`), so no
    /// transpose kernel runs — backward passes and attention use it. Here
    /// `other` is packed (transposed) once and the product runs through the
    /// same blocked micro-kernel as [`Tensor::matmul`], so NT results are
    /// bit-identical to `matmul` against an explicitly transposed operand.
    ///
    /// # Errors
    /// Returns [`TensorError::RankMismatch`] / [`TensorError::ShapeMismatch`]
    /// on malformed operands.
    pub fn matmul_nt(&self, other: &Tensor) -> Result<Tensor> {
        check_pair("matmul_nt", self, other, 2, 1, 1)?;
        let (m, k) = (self.dim(0), self.dim(1));
        let n = other.dim(0);
        let mut packed = pool::filled(n * k);
        transpose_pack(other.as_slice(), n, k, &mut packed); // [n,k] → [k,n]
        let mut out = pool::zeroed(m * n);
        matmul_into(self.as_slice(), &packed, &mut out, m, k, n);
        pool::recycle_vec(packed);
        let result = Tensor::from_vec(&[m, n], out)?;
        let macs = (m * k * n) as u64;
        emit_sequential(
            OpClass::Gemm,
            "sgemm_nt",
            2 * macs,
            cost::gemm_iops(m, k, n),
            ((m * k) + (n * k)) as u64 * 4,
            (m * n) as u64 * 4,
            (m * n) as u64,
        );
        Ok(result)
    }

    /// Matrix product with a transposed left operand:
    /// `selfᵀ` (`self` is `[k, m]`) × `other` (`[k, n]`).
    ///
    /// Packs `self` and runs the shared blocked micro-kernel (see
    /// [`Tensor::matmul_nt`]).
    ///
    /// # Errors
    /// Returns [`TensorError::RankMismatch`] / [`TensorError::ShapeMismatch`]
    /// on malformed operands.
    pub fn matmul_tn(&self, other: &Tensor) -> Result<Tensor> {
        check_pair("matmul_tn", self, other, 2, 0, 0)?;
        let (k, m) = (self.dim(0), self.dim(1));
        let n = other.dim(1);
        let mut packed = pool::filled(k * m);
        transpose_pack(self.as_slice(), k, m, &mut packed); // [k,m] → [m,k]
        let mut out = pool::zeroed(m * n);
        matmul_into(&packed, other.as_slice(), &mut out, m, k, n);
        pool::recycle_vec(packed);
        let result = Tensor::from_vec(&[m, n], out)?;
        let macs = (m * k * n) as u64;
        emit_sequential(
            OpClass::Gemm,
            "sgemm_tn",
            2 * macs,
            cost::gemm_iops(m, k, n),
            ((k * m) + (k * n)) as u64 * 4,
            (m * n) as u64 * 4,
            (m * n) as u64,
        );
        Ok(result)
    }

    /// Batched matrix product: `self` (`[b, m, k]`) × `other` (`[b, k, n]`).
    ///
    /// Emits a single GEMM event covering the whole batch, mirroring how
    /// cuBLAS batches these launches.
    ///
    /// # Errors
    /// Returns [`TensorError::RankMismatch`] / [`TensorError::ShapeMismatch`]
    /// on malformed operands.
    pub fn bmm(&self, other: &Tensor) -> Result<Tensor> {
        check_pair("bmm", self, other, 3, 2, 1)?;
        let (b, m, k) = (self.dim(0), self.dim(1), self.dim(2));
        let n = other.dim(2);
        let mut out = pool::zeroed(b * m * n);
        bmm_into(self.as_slice(), other.as_slice(), &mut out, b, m, k, n);
        let result = Tensor::from_vec(&[b, m, n], out)?;
        let macs = (b * m * k * n) as u64;
        emit_sequential(
            OpClass::Gemm,
            "sgemm_batched",
            2 * macs,
            cost::gemm_iops(b * m, k, n),
            (b * (m * k + k * n)) as u64 * 4,
            (b * m * n) as u64 * 4,
            (b * m * n) as u64,
        );
        Ok(result)
    }
}

/// Batched `out += A·B`: the flattened `b*m` output rows are partitioned
/// across the pool; each task dispatches per-batch segments to
/// [`gemm_kernel`]. `out` must be zeroed.
pub(crate) fn bmm_into(
    a: &[f32],
    bmat: &[f32],
    out: &mut [f32],
    batches: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    let lvl = simd::level();
    let per_row = k.saturating_mul(n).max(1);
    let min_rows = (MIN_MACS_PER_CHUNK / per_row).max(1);
    let ranges = par::even_ranges(batches * m, par::chunk_count(batches * m, min_rows));
    par::for_row_ranges_mut(out, n, &ranges, |_, r, chunk| {
        let mut row = r.start;
        while row < r.end {
            let bi = row / m;
            let seg_end = r.end.min((bi + 1) * m);
            let (r0, rows) = (row - bi * m, seg_end - row);
            gemm_kernel(
                lvl,
                &a[bi * m * k + r0 * k..bi * m * k + (r0 + rows) * k],
                &bmat[bi * k * n..(bi + 1) * k * n],
                &mut chunk[(row - r.start) * n..(seg_end - r.start) * n],
                rows,
                k,
                n,
            );
            row = seg_end;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record;

    fn naive_matmul(a: &Tensor, b: &Tensor) -> Vec<f32> {
        let (m, k) = (a.dim(0), a.dim(1));
        let n = b.dim(1);
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for kk in 0..k {
                    c[i * n + j] += a.as_slice()[i * k + kk] * b.as_slice()[kk * n + j];
                }
            }
        }
        c
    }

    #[test]
    fn matmul_matches_naive() {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
        let a = Tensor::randn(&[67, 129], 1.0, &mut rng);
        let b = Tensor::randn(&[129, 43], 1.0, &mut rng);
        let c = a.matmul(&b).unwrap();
        let expect = naive_matmul(&a, &b);
        for (x, y) in c.as_slice().iter().zip(&expect) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let i = Tensor::from_vec(&[2, 2], vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        assert_eq!(a.matmul(&i).unwrap().as_slice(), a.as_slice());
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(a.matmul(&b).is_err());
        assert!(a.matmul(&Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn matmul_nt_and_tn_match_explicit_transpose() {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(9);
        let a = Tensor::randn(&[5, 7], 1.0, &mut rng);
        let b = Tensor::randn(&[4, 7], 1.0, &mut rng);
        let nt = a.matmul_nt(&b).unwrap();
        let explicit = a.matmul(&b.transpose2d().unwrap()).unwrap();
        // NT routes through the same packed kernel as matmul-of-transpose,
        // so the match is exact, not approximate.
        assert_eq!(nt.as_slice(), explicit.as_slice());
        let c = Tensor::randn(&[7, 5], 1.0, &mut rng);
        let d = Tensor::randn(&[7, 3], 1.0, &mut rng);
        let tn = c.matmul_tn(&d).unwrap();
        let explicit = c.transpose2d().unwrap().matmul(&d).unwrap();
        assert_eq!(tn.as_slice(), explicit.as_slice());
        assert!(a.matmul_nt(&c).is_err());
        assert!(a.matmul_tn(&b).is_err());
    }

    #[test]
    fn transpose_pack_matches_transpose2d() {
        let t = Tensor::from_fn(&[37, 23], |i| i as f32 * 0.25);
        let mut packed = vec![0.0; 37 * 23];
        transpose_pack(t.as_slice(), 37, 23, &mut packed);
        assert_eq!(packed, t.transpose2d().unwrap().into_vec());
    }

    #[test]
    fn gemm_kernel_handles_ragged_k() {
        // k not a multiple of 8 exercises both the unrolled and scalar tails.
        for k in [1usize, 7, 8, 9, 17, 300] {
            let a = Tensor::from_fn(&[3, k], |i| (i % 11) as f32 - 5.0);
            let b = Tensor::from_fn(&[k, 5], |i| (i % 7) as f32 - 3.0);
            let c = a.matmul(&b).unwrap();
            let expect = naive_matmul(&a, &b);
            for (x, y) in c.as_slice().iter().zip(&expect) {
                assert!((x - y).abs() < 1e-3, "k={k}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn gemv_matches_matmul() {
        let a = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let v = Tensor::from_vec(&[3], vec![1.0, 0.0, -1.0]).unwrap();
        let y = a.gemv(&v).unwrap();
        assert_eq!(y.as_slice(), &[-2.0, -2.0]);
    }

    #[test]
    fn bmm_per_batch() {
        let a = Tensor::from_vec(&[2, 1, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Tensor::from_vec(&[2, 2, 1], vec![1.0, 1.0, 1.0, 1.0]).unwrap();
        let c = a.bmm(&b).unwrap();
        assert_eq!(c.dims(), &[2, 1, 1]);
        assert_eq!(c.as_slice(), &[3.0, 7.0]);
    }

    #[test]
    fn gemm_event_flop_count() {
        record::start_recording();
        let a = Tensor::ones(&[4, 8]);
        let b = Tensor::ones(&[8, 2]);
        let _ = a.matmul(&b).unwrap();
        let events = record::stop_recording();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].class, OpClass::Gemm);
        assert_eq!(events[0].flops, 2 * 4 * 8 * 2);
        assert!(events[0].flops > events[0].iops, "GEMM must be fp-dominant");
    }

    use crate::instrument::OpClass;
}
