//! Dense matrix multiplication: GEMM, GEMV and batched GEMM.
//!
//! GEMM feeds the *update* phase of every GNN layer. The paper finds that
//! GEMM + SpMM together account for only ~25 % of GNN training time — far
//! below their share in DNN training — but GEMM still posts the highest
//! per-kernel GFLOPS (mid-300s on the V100).

use super::emit_sequential;
use crate::cost;
use crate::instrument::OpClass;
use crate::{Result, Tensor, TensorError};

/// Cache-blocking tile edge for the CPU GEMM implementation.
const TILE: usize = 64;

impl Tensor {
    /// Matrix product of `self` (`[m, k]`) with `other` (`[k, n]`).
    ///
    /// # Errors
    /// Returns [`TensorError::RankMismatch`] unless both operands are rank 2,
    /// or [`TensorError::ShapeMismatch`] if the inner dimensions differ.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        if self.rank() != 2 || other.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "matmul",
                expected: 2,
                actual: if self.rank() != 2 { self.rank() } else { other.rank() },
            });
        }
        if self.dim(1) != other.dim(0) {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        let (m, k) = (self.dim(0), self.dim(1));
        let n = other.dim(1);
        let mut out = vec![0.0f32; m * n];
        gemm_blocked(self.as_slice(), other.as_slice(), &mut out, m, k, n);
        let result = Tensor::from_vec(&[m, n], out)?;

        let macs = (m * k * n) as u64;
        emit_sequential(
            OpClass::Gemm,
            "sgemm",
            2 * macs,
            cost::gemm_iops(m, k, n),
            ((m * k) + (k * n)) as u64 * 4,
            (m * n) as u64 * 4,
            (m * n) as u64,
        );
        Ok(result)
    }

    /// Matrix-vector product of `self` (`[m, k]`) with `v` (`[k]`).
    ///
    /// # Errors
    /// Returns [`TensorError::RankMismatch`] / [`TensorError::ShapeMismatch`]
    /// on malformed operands.
    pub fn gemv(&self, v: &Tensor) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "gemv",
                expected: 2,
                actual: self.rank(),
            });
        }
        if v.rank() != 1 || v.dim(0) != self.dim(1) {
            return Err(TensorError::ShapeMismatch {
                op: "gemv",
                lhs: self.dims().to_vec(),
                rhs: v.dims().to_vec(),
            });
        }
        let (m, k) = (self.dim(0), self.dim(1));
        let vv = v.as_slice();
        let mut out = Vec::with_capacity(m);
        for row in self.as_slice().chunks_exact(k) {
            out.push(row.iter().zip(vv).map(|(&a, &b)| a * b).sum());
        }
        let result = Tensor::from_vec(&[m], out)?;
        emit_sequential(
            OpClass::Gemv,
            "sgemv",
            2 * (m * k) as u64,
            cost::gemv_iops(m, k),
            ((m * k) + k) as u64 * 4,
            m as u64 * 4,
            m as u64,
        );
        Ok(result)
    }

    /// Matrix product with a transposed right operand:
    /// `self` (`[m, k]`) × `otherᵀ` where `other` is `[n, k]`.
    ///
    /// Real BLAS libraries provide this as a layout flag (`gemm_nt`), so no
    /// transpose kernel runs — backward passes and attention use it.
    ///
    /// # Errors
    /// Returns [`TensorError::RankMismatch`] / [`TensorError::ShapeMismatch`]
    /// on malformed operands.
    pub fn matmul_nt(&self, other: &Tensor) -> Result<Tensor> {
        if self.rank() != 2 || other.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "matmul_nt",
                expected: 2,
                actual: if self.rank() != 2 { self.rank() } else { other.rank() },
            });
        }
        if self.dim(1) != other.dim(1) {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_nt",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        let (m, k) = (self.dim(0), self.dim(1));
        let n = other.dim(0);
        let a = self.as_slice();
        let bt = other.as_slice();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            for j in 0..n {
                let b_row = &bt[j * k..(j + 1) * k];
                out[i * n + j] = a_row.iter().zip(b_row).map(|(&x, &y)| x * y).sum();
            }
        }
        let result = Tensor::from_vec(&[m, n], out)?;
        let macs = (m * k * n) as u64;
        emit_sequential(
            OpClass::Gemm,
            "sgemm_nt",
            2 * macs,
            cost::gemm_iops(m, k, n),
            ((m * k) + (n * k)) as u64 * 4,
            (m * n) as u64 * 4,
            (m * n) as u64,
        );
        Ok(result)
    }

    /// Matrix product with a transposed left operand:
    /// `selfᵀ` (`self` is `[k, m]`) × `other` (`[k, n]`).
    ///
    /// # Errors
    /// Returns [`TensorError::RankMismatch`] / [`TensorError::ShapeMismatch`]
    /// on malformed operands.
    pub fn matmul_tn(&self, other: &Tensor) -> Result<Tensor> {
        if self.rank() != 2 || other.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "matmul_tn",
                expected: 2,
                actual: if self.rank() != 2 { self.rank() } else { other.rank() },
            });
        }
        if self.dim(0) != other.dim(0) {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_tn",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        let (k, m) = (self.dim(0), self.dim(1));
        let n = other.dim(1);
        let at = self.as_slice();
        let b = other.as_slice();
        let mut out = vec![0.0f32; m * n];
        for kk in 0..k {
            let a_row = &at[kk * m..(kk + 1) * m];
            let b_row = &b[kk * n..(kk + 1) * n];
            for i in 0..m {
                let aik = a_row[i];
                if aik == 0.0 {
                    continue;
                }
                let o = &mut out[i * n..(i + 1) * n];
                for (oj, &bj) in o.iter_mut().zip(b_row) {
                    *oj += aik * bj;
                }
            }
        }
        let result = Tensor::from_vec(&[m, n], out)?;
        let macs = (m * k * n) as u64;
        emit_sequential(
            OpClass::Gemm,
            "sgemm_tn",
            2 * macs,
            cost::gemm_iops(m, k, n),
            ((k * m) + (k * n)) as u64 * 4,
            (m * n) as u64 * 4,
            (m * n) as u64,
        );
        Ok(result)
    }

    /// Batched matrix product: `self` (`[b, m, k]`) × `other` (`[b, k, n]`).
    ///
    /// Emits a single GEMM event covering the whole batch, mirroring how
    /// cuBLAS batches these launches.
    ///
    /// # Errors
    /// Returns [`TensorError::RankMismatch`] / [`TensorError::ShapeMismatch`]
    /// on malformed operands.
    pub fn bmm(&self, other: &Tensor) -> Result<Tensor> {
        if self.rank() != 3 || other.rank() != 3 {
            return Err(TensorError::RankMismatch {
                op: "bmm",
                expected: 3,
                actual: if self.rank() != 3 { self.rank() } else { other.rank() },
            });
        }
        if self.dim(0) != other.dim(0) || self.dim(2) != other.dim(1) {
            return Err(TensorError::ShapeMismatch {
                op: "bmm",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        let (b, m, k) = (self.dim(0), self.dim(1), self.dim(2));
        let n = other.dim(2);
        let mut out = vec![0.0f32; b * m * n];
        for i in 0..b {
            gemm_blocked(
                &self.as_slice()[i * m * k..(i + 1) * m * k],
                &other.as_slice()[i * k * n..(i + 1) * k * n],
                &mut out[i * m * n..(i + 1) * m * n],
                m,
                k,
                n,
            );
        }
        let result = Tensor::from_vec(&[b, m, n], out)?;
        let macs = (b * m * k * n) as u64;
        emit_sequential(
            OpClass::Gemm,
            "sgemm_batched",
            2 * macs,
            cost::gemm_iops(b * m, k, n),
            (b * (m * k + k * n)) as u64 * 4,
            (b * m * n) as u64 * 4,
            (b * m * n) as u64,
        );
        Ok(result)
    }
}

/// Cache-blocked `C += A·B` over row-major slices.
fn gemm_blocked(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for i0 in (0..m).step_by(TILE) {
        let i1 = (i0 + TILE).min(m);
        for k0 in (0..k).step_by(TILE) {
            let k1 = (k0 + TILE).min(k);
            for i in i0..i1 {
                let c_row = &mut c[i * n..(i + 1) * n];
                for kk in k0..k1 {
                    let aik = a[i * k + kk];
                    if aik == 0.0 {
                        continue;
                    }
                    let b_row = &b[kk * n..(kk + 1) * n];
                    for (cj, &bj) in c_row.iter_mut().zip(b_row) {
                        *cj += aik * bj;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record;

    fn naive_matmul(a: &Tensor, b: &Tensor) -> Vec<f32> {
        let (m, k) = (a.dim(0), a.dim(1));
        let n = b.dim(1);
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for kk in 0..k {
                    c[i * n + j] += a.as_slice()[i * k + kk] * b.as_slice()[kk * n + j];
                }
            }
        }
        c
    }

    #[test]
    fn matmul_matches_naive() {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
        let a = Tensor::randn(&[67, 129], 1.0, &mut rng);
        let b = Tensor::randn(&[129, 43], 1.0, &mut rng);
        let c = a.matmul(&b).unwrap();
        let expect = naive_matmul(&a, &b);
        for (x, y) in c.as_slice().iter().zip(&expect) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let i = Tensor::from_vec(&[2, 2], vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        assert_eq!(a.matmul(&i).unwrap().as_slice(), a.as_slice());
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(a.matmul(&b).is_err());
        assert!(a.matmul(&Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn matmul_nt_and_tn_match_explicit_transpose() {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(9);
        let a = Tensor::randn(&[5, 7], 1.0, &mut rng);
        let b = Tensor::randn(&[4, 7], 1.0, &mut rng);
        let nt = a.matmul_nt(&b).unwrap();
        let explicit = a.matmul(&b.transpose2d().unwrap()).unwrap();
        for (x, y) in nt.as_slice().iter().zip(explicit.as_slice()) {
            assert!((x - y).abs() < 1e-4);
        }
        let c = Tensor::randn(&[7, 5], 1.0, &mut rng);
        let d = Tensor::randn(&[7, 3], 1.0, &mut rng);
        let tn = c.matmul_tn(&d).unwrap();
        let explicit = c.transpose2d().unwrap().matmul(&d).unwrap();
        for (x, y) in tn.as_slice().iter().zip(explicit.as_slice()) {
            assert!((x - y).abs() < 1e-4);
        }
        assert!(a.matmul_nt(&c).is_err());
        assert!(a.matmul_tn(&b).is_err());
    }

    #[test]
    fn gemv_matches_matmul() {
        let a = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let v = Tensor::from_vec(&[3], vec![1.0, 0.0, -1.0]).unwrap();
        let y = a.gemv(&v).unwrap();
        assert_eq!(y.as_slice(), &[-2.0, -2.0]);
    }

    #[test]
    fn bmm_per_batch() {
        let a = Tensor::from_vec(&[2, 1, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Tensor::from_vec(&[2, 2, 1], vec![1.0, 1.0, 1.0, 1.0]).unwrap();
        let c = a.bmm(&b).unwrap();
        assert_eq!(c.dims(), &[2, 1, 1]);
        assert_eq!(c.as_slice(), &[3.0, 7.0]);
    }

    #[test]
    fn gemm_event_flop_count() {
        record::start_recording();
        let a = Tensor::ones(&[4, 8]);
        let b = Tensor::ones(&[8, 2]);
        let _ = a.matmul(&b).unwrap();
        let events = record::stop_recording();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].class, OpClass::Gemm);
        assert_eq!(events[0].flops, 2 * 4 * 8 * 2);
        assert!(events[0].flops > events[0].iops, "GEMM must be fp-dominant");
    }

    use crate::instrument::OpClass;
}
