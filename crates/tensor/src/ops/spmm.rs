//! Sparse × dense matrix multiplication (SpMM / SpMV).
//!
//! SpMM implements the neighbor-aggregation step of GCN-style layers:
//! `H' = Â · H` with `Â` the (normalized) adjacency in CSR. Its column
//! accesses follow the *actual* graph structure, so the emitted access
//! descriptor carries the real column-index array — this is what gives the
//! GPU model its low L1 hit rates and high divergence for aggregation.

use std::sync::Arc;

use super::emit_op;
use crate::cost;
use crate::instrument::{AccessDesc, OpClass};
use crate::simd;
use crate::{par, pool, CsrMatrix, Result, Tensor, TensorError};

/// Minimum nnz·n work per parallel chunk (see [`par::PAR_MIN_ELEMS`]).
const MIN_WORK_PER_CHUNK: usize = 16 * 1024;

/// Row-range partition of a CSR matrix balanced by per-row nnz, so one
/// hub row doesn't serialize a whole chunk on power-law graphs.
fn nnz_balanced_ranges(csr: &CsrMatrix, n: usize) -> Vec<std::ops::Range<usize>> {
    let m = csr.rows();
    let work = csr.nnz().saturating_mul(n.max(1));
    let chunks = par::chunk_count(work, MIN_WORK_PER_CHUNK).min(m.max(1));
    if chunks <= 1 {
        return par::even_ranges(m, 1);
    }
    let weights: Vec<usize> = (0..m).map(|r| csr.row(r).0.len()).collect();
    par::weighted_ranges(&weights, chunks)
}

impl CsrMatrix {
    /// Sparse-dense product `self · dense`, where `self` is `[m, k]` CSR and
    /// `dense` is `[k, n]`.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] if `dense` is not rank 2 with
    /// `k` rows.
    pub fn spmm(&self, dense: &Tensor) -> Result<Tensor> {
        if dense.rank() != 2 || dense.dim(0) != self.cols() {
            return Err(TensorError::ShapeMismatch {
                op: "spmm",
                lhs: vec![self.rows(), self.cols()],
                rhs: dense.dims().to_vec(),
            });
        }
        let n = dense.dim(1);
        let m = self.rows();
        let d = dense.as_slice();
        let lvl = simd::level();
        let mut out = pool::zeroed(m * n);
        let ranges = nnz_balanced_ranges(self, n);
        par::for_row_ranges_mut(&mut out, n, &ranges, |_, rows, chunk| {
            for (r, out_row) in rows.zip(chunk.chunks_exact_mut(n)) {
                let (cols, vals) = self.row(r);
                // Per output row the neighbor rows accumulate in nnz order
                // regardless of partitioning — bit-identical at any thread
                // count within a lane.
                for (&c, &v) in cols.iter().zip(vals) {
                    simd::axpy(lvl, out_row, v, &d[c * n..(c + 1) * n]);
                }
            }
        });
        let result = Tensor::from_vec(&[m, n], out)?;

        let nnz = self.nnz();
        let row_bytes = (n * 4) as u64;
        let table_bytes = dense.byte_len();
        let col_idx: Vec<u32> = self.col_idx().iter().map(|&c| c as u32).collect();
        emit_op(
            OpClass::Spmm,
            "csr_spmm",
            2 * (nnz * n) as u64,
            cost::spmm_iops(nnz, n),
            (nnz * n * 4 + nnz * 8 + (m + 1) * 4) as u64,
            (m * n * 4) as u64,
            (m * n) as u64,
            move || {
                vec![
                    // Row-pointer + column-index walk: sequential.
                    AccessDesc::Sequential {
                        bytes: (nnz * 8 + (m + 1) * 4) as u64,
                    },
                    // Dense-row gathers driven by real graph structure.
                    AccessDesc::Indexed {
                        indices: Arc::new(col_idx),
                        row_bytes,
                        table_bytes,
                    },
                ]
            },
            || {
                vec![AccessDesc::Sequential {
                    bytes: (m * n * 4) as u64,
                }]
            },
        );
        Ok(result)
    }

    /// Sparse matrix-vector product `self · v`.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] if `v` is not a length-`k`
    /// vector.
    pub fn spmv(&self, v: &Tensor) -> Result<Tensor> {
        if v.rank() != 1 || v.dim(0) != self.cols() {
            return Err(TensorError::ShapeMismatch {
                op: "spmv",
                lhs: vec![self.rows(), self.cols()],
                rhs: v.dims().to_vec(),
            });
        }
        let vv = v.as_slice();
        let mut out = pool::filled(self.rows());
        let ranges = nnz_balanced_ranges(self, 1);
        par::for_row_ranges_mut(&mut out, 1, &ranges, |_, rows, chunk| {
            for (r, o) in rows.zip(chunk.iter_mut()) {
                let (cols, vals) = self.row(r);
                *o = cols.iter().zip(vals).map(|(&c, &x)| x * vv[c]).sum();
            }
        });
        let result = Tensor::from_vec(&[self.rows()], out)?;
        let nnz = self.nnz();
        let col_idx: Vec<u32> = self.col_idx().iter().map(|&c| c as u32).collect();
        let table_bytes = v.byte_len();
        emit_op(
            OpClass::Spmm,
            "csr_spmv",
            2 * nnz as u64,
            cost::spmm_iops(nnz, 1),
            (nnz * 12 + (self.rows() + 1) * 4) as u64,
            self.rows() as u64 * 4,
            self.rows() as u64,
            move || {
                vec![
                    AccessDesc::Sequential {
                        bytes: (nnz * 8) as u64,
                    },
                    AccessDesc::Indexed {
                        indices: Arc::new(col_idx),
                        row_bytes: 4,
                        table_bytes,
                    },
                ]
            },
            {
                let rows = self.rows();
                move || {
                    vec![AccessDesc::Sequential {
                        bytes: rows as u64 * 4,
                    }]
                }
            },
        );
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record;

    #[test]
    fn spmm_matches_dense_matmul() {
        let m = CsrMatrix::from_coo(
            3,
            3,
            &[(0, 1, 2.0), (1, 0, 1.0), (1, 2, -1.0), (2, 2, 0.5)],
        )
        .unwrap();
        let x = Tensor::from_fn(&[3, 2], |i| i as f32 + 1.0);
        let sparse = m.spmm(&x).unwrap();
        let dense = m.to_dense().matmul(&x).unwrap();
        for (a, b) in sparse.as_slice().iter().zip(dense.as_slice()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn spmm_rejects_mismatch() {
        let m = CsrMatrix::identity(3);
        assert!(m.spmm(&Tensor::zeros(&[4, 2])).is_err());
        assert!(m.spmm(&Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn spmv_matches_spmm() {
        let m = CsrMatrix::from_coo(2, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)]).unwrap();
        let v = Tensor::from_vec(&[3], vec![1.0, 2.0, 3.0]).unwrap();
        let y = m.spmv(&v).unwrap();
        assert_eq!(y.as_slice(), &[7.0, 6.0]);
    }

    #[test]
    fn spmm_event_carries_real_indices() {
        let m = CsrMatrix::from_coo(2, 4, &[(0, 3, 1.0), (1, 1, 1.0)]).unwrap();
        let x = Tensor::ones(&[4, 8]);
        record::start_recording();
        let _ = m.spmm(&x).unwrap();
        let events = record::stop_recording();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].class, OpClass::Spmm);
        let indexed = events[0].reads.iter().find_map(|d| match d {
            AccessDesc::Indexed { indices, .. } => Some(indices.clone()),
            _ => None,
        });
        assert_eq!(indexed.unwrap().as_slice(), &[3, 1]);
    }
}
