//! Gather and index-select: row extraction driven by index arrays.
//!
//! These are the canonical irregular operations of GNN aggregation — the
//! paper reports L1 hit rates below 15 % and heavy memory-dependency stalls
//! for them. Events carry the real index arrays so the cache model sees the
//! true locality (e.g. power-law-skewed neighbor ids hit more than uniform
//! ones).

use std::sync::Arc;

use super::emit_op;
use crate::cost::{INT_PER_GATHER_ELEM, INT_PER_INDEX_SELECT_ELEM};
use crate::instrument::{AccessDesc, OpClass};
use crate::{par, pool, IntTensor, Result, Tensor, TensorError};

impl Tensor {
    fn select_rows(
        &self,
        index: &IntTensor,
        op: &'static str,
        class: OpClass,
        int_per_elem: u64,
    ) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op,
                expected: 2,
                actual: self.rank(),
            });
        }
        let (rows, d) = (self.dim(0), self.dim(1));
        index.check_bounds(rows, op)?;
        let n = index.numel();
        let mut data = pool::filled(n * d);
        let src = self.as_slice();
        let idx_s = index.as_slice();
        let out_ranges = par::even_ranges(n, par::chunk_count(n * d, par::PAR_MIN_ELEMS).min(n.max(1)));
        par::for_row_ranges_mut(&mut data, d, &out_ranges, |_, out_rows, chunk| {
            for (&i, dst_row) in idx_s[out_rows].iter().zip(chunk.chunks_exact_mut(d)) {
                let r = i as usize;
                dst_row.copy_from_slice(&src[r * d..(r + 1) * d]);
            }
        });
        let out = Tensor::from_vec(&[n, d], data)?;

        let total = (n * d) as u64;
        let table_bytes = self.byte_len();
        let row_bytes = (d * 4) as u64;
        let idx = index.to_u32_vec();
        let kernel = op;
        emit_op(
            class,
            kernel,
            0,
            total * int_per_elem + n as u64 * 2,
            total * 4 + n as u64 * 8,
            total * 4,
            total,
            move || {
                vec![
                    AccessDesc::Sequential {
                        bytes: idx.len() as u64 * 8,
                    },
                    AccessDesc::Indexed {
                        indices: Arc::new(idx),
                        row_bytes,
                        table_bytes,
                    },
                ]
            },
            move || vec![AccessDesc::Sequential { bytes: total * 4 }],
        );
        Ok(out)
    }

    /// Gathers rows of a `[rows, d]` matrix: `out[i] = self[index[i]]`.
    ///
    /// # Errors
    /// Returns [`TensorError::RankMismatch`] unless `self` is rank 2, or
    /// [`TensorError::IndexOutOfBounds`] for invalid indices.
    pub fn gather_rows(&self, index: &IntTensor) -> Result<Tensor> {
        self.select_rows(index, "gather_rows", OpClass::Gather, INT_PER_GATHER_ELEM)
    }

    /// Index-select along the row axis (semantically identical to
    /// [`Tensor::gather_rows`] but classified as index-selection, mirroring
    /// PyTorch's distinct `index_select` kernels which the paper tracks as
    /// their own operation class).
    ///
    /// # Errors
    /// Same as [`Tensor::gather_rows`].
    pub fn index_select(&self, index: &IntTensor) -> Result<Tensor> {
        self.select_rows(
            index,
            "index_select",
            OpClass::IndexSelect,
            INT_PER_INDEX_SELECT_ELEM,
        )
    }

    /// Element-granular gather on a 1-D tensor: `out[i] = self[index[i]]`.
    ///
    /// # Errors
    /// Returns [`TensorError::RankMismatch`] unless `self` is rank 1, or
    /// [`TensorError::IndexOutOfBounds`] for invalid indices.
    pub fn gather_elems(&self, index: &IntTensor) -> Result<Tensor> {
        if self.rank() != 1 {
            return Err(TensorError::RankMismatch {
                op: "gather_elems",
                expected: 1,
                actual: self.rank(),
            });
        }
        index.check_bounds(self.dim(0), "gather_elems")?;
        let src = self.as_slice();
        let data: Vec<f32> = index.as_slice().iter().map(|&i| src[i as usize]).collect();
        let n = index.numel();
        let out = Tensor::from_vec(&[n], data)?;
        let idx = index.to_u32_vec();
        let table_bytes = self.byte_len();
        emit_op(
            OpClass::Gather,
            "gather_elems",
            0,
            n as u64 * INT_PER_GATHER_ELEM,
            n as u64 * 12,
            n as u64 * 4,
            n as u64,
            move || {
                vec![AccessDesc::Indexed {
                    indices: Arc::new(idx),
                    row_bytes: 4,
                    table_bytes,
                }]
            },
            move || {
                vec![AccessDesc::Sequential {
                    bytes: n as u64 * 4,
                }]
            },
        );
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record;

    #[test]
    fn gather_rows_extracts() {
        let t = Tensor::from_fn(&[3, 2], |i| i as f32);
        let idx = IntTensor::from_vec(&[2], vec![2, 0]).unwrap();
        let g = t.gather_rows(&idx).unwrap();
        assert_eq!(g.dims(), &[2, 2]);
        assert_eq!(g.as_slice(), &[4.0, 5.0, 0.0, 1.0]);
    }

    #[test]
    fn gather_rows_bounds_checked() {
        let t = Tensor::zeros(&[2, 2]);
        let idx = IntTensor::from_vec(&[1], vec![2]).unwrap();
        assert!(t.gather_rows(&idx).is_err());
    }

    #[test]
    fn index_select_same_semantics_different_class() {
        let t = Tensor::from_fn(&[4, 1], |i| i as f32);
        let idx = IntTensor::from_vec(&[2], vec![3, 1]).unwrap();
        record::start_recording();
        let a = t.gather_rows(&idx).unwrap();
        let b = t.index_select(&idx).unwrap();
        let events = record::stop_recording();
        assert_eq!(a.as_slice(), b.as_slice());
        assert_eq!(events[0].class, OpClass::Gather);
        assert_eq!(events[1].class, OpClass::IndexSelect);
        assert!(events.iter().all(|e| e.flops == 0), "gathers do no fp work");
    }

    #[test]
    fn gather_elems_1d() {
        let t = Tensor::from_vec(&[4], vec![10.0, 11.0, 12.0, 13.0]).unwrap();
        let idx = IntTensor::from_vec(&[3], vec![3, 3, 0]).unwrap();
        let g = t.gather_elems(&idx).unwrap();
        assert_eq!(g.as_slice(), &[13.0, 13.0, 10.0]);
        assert!(Tensor::zeros(&[2, 2]).gather_elems(&idx).is_err());
    }
}
