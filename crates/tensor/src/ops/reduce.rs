//! Reductions: full and per-axis sums, means and maxima.
//!
//! Tree reductions have long dependency chains and little data reuse — the
//! paper reports ~100 GFLOPS-class throughput and high execution-dependency
//! stalls for them.

use super::emit_sequential;
use crate::cost::INT_PER_REDUCE_ELEM;
use crate::instrument::OpClass;
use crate::simd;
use crate::{par, pool, IntTensor, Result, Tensor, TensorError};

impl Tensor {
    fn emit_reduce(&self, kernel: &'static str, out_elems: u64) {
        let n = self.numel() as u64;
        emit_sequential(
            OpClass::Reduction,
            kernel,
            n,
            n * INT_PER_REDUCE_ELEM,
            n * 4,
            out_elems * 4,
            n,
        );
    }

    /// Sum of all elements, as a scalar tensor.
    pub fn sum_all(&self) -> Tensor {
        let s = simd::vsum(simd::level(), self.as_slice());
        self.emit_reduce("reduce_sum", 1);
        Tensor::scalar(s)
    }

    /// Mean of all elements, as a scalar tensor.
    pub fn mean_all(&self) -> Tensor {
        let s = simd::vsum(simd::level(), self.as_slice());
        self.emit_reduce("reduce_mean", 1);
        Tensor::scalar(s / self.numel() as f32)
    }

    /// Maximum element, as a scalar tensor.
    pub fn max_all(&self) -> Tensor {
        let m = simd::vmax(simd::level(), self.as_slice());
        self.emit_reduce("reduce_max", 1);
        Tensor::scalar(m)
    }

    /// Row-wise sum of a `[n, d]` matrix, yielding `[n]`.
    ///
    /// # Errors
    /// Returns [`TensorError::RankMismatch`] unless `self` is rank 2.
    pub fn sum_rows(&self) -> Result<Tensor> {
        let lvl = simd::level();
        self.reduce_rows("reduce_sum_rows", move |row| simd::vsum(lvl, row))
    }

    /// Row-wise mean of a `[n, d]` matrix, yielding `[n]`.
    ///
    /// # Errors
    /// Returns [`TensorError::RankMismatch`] unless `self` is rank 2.
    pub fn mean_rows(&self) -> Result<Tensor> {
        let d = if self.rank() == 2 { self.dim(1) as f32 } else { 1.0 };
        let lvl = simd::level();
        self.reduce_rows("reduce_mean_rows", move |row| simd::vsum(lvl, row) / d)
    }

    /// Row-wise maximum of a `[n, d]` matrix, yielding `[n]`.
    ///
    /// # Errors
    /// Returns [`TensorError::RankMismatch`] unless `self` is rank 2.
    pub fn max_rows(&self) -> Result<Tensor> {
        let lvl = simd::level();
        self.reduce_rows("reduce_max_rows", move |row| simd::vmax(lvl, row))
    }

    fn reduce_rows(&self, kernel: &'static str, f: impl Fn(&[f32]) -> f32 + Sync) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: kernel,
                expected: 2,
                actual: self.rank(),
            });
        }
        let (n, d) = (self.dim(0), self.dim(1));
        let src = self.as_slice();
        let mut out = pool::filled(n);
        let ranges = par::even_ranges(n, par::chunk_count(n * d, par::PAR_MIN_ELEMS).min(n.max(1)));
        par::for_row_ranges_mut(&mut out, 1, &ranges, |_, rows, chunk| {
            let rows_src = &src[rows.start * d..rows.end * d];
            for (row, o) in rows_src.chunks_exact(d).zip(chunk.iter_mut()) {
                *o = f(row);
            }
        });
        self.emit_reduce(kernel, n as u64);
        Tensor::from_vec(&[n], out)
    }

    /// Column-wise sum of a `[n, d]` matrix, yielding `[d]`.
    ///
    /// This is the backward of bias broadcast and of row-broadcasting ops.
    ///
    /// # Errors
    /// Returns [`TensorError::RankMismatch`] unless `self` is rank 2.
    pub fn sum_cols(&self) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "reduce_sum_cols",
                expected: 2,
                actual: self.rank(),
            });
        }
        let (n, d) = (self.dim(0), self.dim(1));
        let src = self.as_slice();
        let lvl = simd::level();
        let mut out = pool::zeroed(d);
        // Partition *output columns*; every task walks all rows in order, so
        // each column accumulates exactly as in the sequential loop.
        let col_ranges = par::even_ranges(d, par::chunk_count(n * d, par::PAR_MIN_ELEMS).min(d.max(1)));
        par::for_row_ranges_mut(&mut out, 1, &col_ranges, |_, cols, chunk| {
            for row in src.chunks_exact(d) {
                simd::accumulate(lvl, chunk, &row[cols.clone()]);
            }
        });
        self.emit_reduce("reduce_sum_cols", d as u64);
        Tensor::from_vec(&[d], out)
    }

    /// Row-wise argmax of a `[n, d]` matrix, yielding `[n]` indices.
    ///
    /// # Errors
    /// Returns [`TensorError::RankMismatch`] unless `self` is rank 2.
    pub fn argmax_rows(&self) -> Result<IntTensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "argmax_rows",
                expected: 2,
                actual: self.rank(),
            });
        }
        let (n, d) = (self.dim(0), self.dim(1));
        let src = self.as_slice();
        let mut out = vec![0i64; n];
        let ranges = par::even_ranges(n, par::chunk_count(n * d, par::PAR_MIN_ELEMS).min(n.max(1)));
        par::for_row_ranges_mut(&mut out, 1, &ranges, |_, rows, chunk| {
            let rows_src = &src[rows.start * d..rows.end * d];
            for (row, o) in rows_src.chunks_exact(d).zip(chunk.iter_mut()) {
                let mut best = 0usize;
                for (j, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = j;
                    }
                }
                *o = best as i64;
            }
        });
        self.emit_reduce("argmax_rows", n as u64);
        IntTensor::from_vec(&[n], out)
    }

    /// Euclidean (L2) norm of all elements, as a scalar tensor.
    pub fn norm_l2(&self) -> Tensor {
        let s = simd::vsumsq(simd::level(), self.as_slice());
        let n = self.numel() as u64;
        emit_sequential(
            OpClass::Reduction,
            "reduce_l2norm",
            2 * n,
            n * INT_PER_REDUCE_ELEM,
            n * 4,
            4,
            n,
        );
        Tensor::scalar(s.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record;

    #[test]
    fn full_reductions() {
        let t = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(t.sum_all().item().unwrap(), 10.0);
        assert_eq!(t.mean_all().item().unwrap(), 2.5);
        assert_eq!(t.max_all().item().unwrap(), 4.0);
        assert!((t.norm_l2().item().unwrap() - 30.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn axis_reductions() {
        let t = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(t.sum_rows().unwrap().as_slice(), &[6.0, 15.0]);
        assert_eq!(t.mean_rows().unwrap().as_slice(), &[2.0, 5.0]);
        assert_eq!(t.max_rows().unwrap().as_slice(), &[3.0, 6.0]);
        assert_eq!(t.sum_cols().unwrap().as_slice(), &[5.0, 7.0, 9.0]);
    }

    #[test]
    fn argmax() {
        let t = Tensor::from_vec(&[2, 3], vec![0.1, 0.9, 0.0, 0.3, 0.2, 0.5]).unwrap();
        assert_eq!(t.argmax_rows().unwrap().as_slice(), &[1, 2]);
        assert!(Tensor::zeros(&[3]).argmax_rows().is_err());
    }

    #[test]
    fn reduction_events() {
        record::start_recording();
        let t = Tensor::ones(&[100]);
        let _ = t.sum_all();
        let events = record::stop_recording();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].class, OpClass::Reduction);
        assert_eq!(events[0].flops, 100);
    }
}
