//! Tensor operations, organized by the GNNMark operator taxonomy.
//!
//! Each submodule implements one family of operations as inherent methods on
//! [`Tensor`](crate::Tensor) / [`CsrMatrix`](crate::CsrMatrix) (plus a few
//! free functions). Every operation:
//!
//! 1. validates its arguments and returns a [`TensorError`](crate::TensorError)
//!    on misuse,
//! 2. computes its result exactly on CPU, and
//! 3. emits an [`crate::OpEvent`] describing the equivalent GPU
//!    kernel when recording is enabled.

pub mod backward_kernels;
pub mod conv;
pub mod elementwise;
pub mod embedding;
pub mod fused;
pub mod gather;
pub mod gemm;
pub mod reduce;
pub mod scatter;
pub mod softmax;
pub mod sort;
pub mod spmm;
pub mod transform;

use crate::instrument::{AccessDesc, OpClass, OpEvent};
use crate::record;

/// Emits an op event lazily (no cost when recording is disabled).
#[allow(clippy::too_many_arguments)] // mirrors the OpEvent field list
pub(crate) fn emit_op(
    class: OpClass,
    kernel: &'static str,
    flops: u64,
    iops: u64,
    bytes_read: u64,
    bytes_written: u64,
    threads: u64,
    reads: impl FnOnce() -> Vec<AccessDesc>,
    writes: impl FnOnce() -> Vec<AccessDesc>,
) {
    record::emit_with(|| OpEvent {
        class,
        kernel,
        flops,
        iops,
        bytes_read,
        bytes_written,
        threads,
        reads: reads(),
        writes: writes(),
    });
}

/// Emits an op event whose access streams are simple sequential sweeps.
pub(crate) fn emit_sequential(
    class: OpClass,
    kernel: &'static str,
    flops: u64,
    iops: u64,
    bytes_read: u64,
    bytes_written: u64,
    threads: u64,
) {
    emit_op(
        class,
        kernel,
        flops,
        iops,
        bytes_read,
        bytes_written,
        threads,
        || vec![AccessDesc::Sequential { bytes: bytes_read }],
        || vec![AccessDesc::Sequential { bytes: bytes_written }],
    );
}
