//! Sorting kernels (argsort, key-value sort).
//!
//! GNN frameworks sort constantly — neighbor lists, random-walk visit
//! counts, batching by graph size. PinSAGE on MovieLens spends 20.7 % of its
//! training time sorting. Sorting is pure integer/comparison work with
//! data-dependent access patterns.

use std::sync::Arc;

use super::emit_op;
use crate::cost;
use crate::instrument::{AccessDesc, OpClass};
use crate::{IntTensor, Result, Tensor, TensorError};

fn emit_sort(n: usize, bytes_per_key: u64, kernel: &'static str, perm: &[i64]) {
    let levels = if n > 1 {
        (usize::BITS - (n - 1).leading_zeros()) as u64
    } else {
        1
    };
    let moved = n as u64 * bytes_per_key * levels;
    let perm_u32: Vec<u32> = perm.iter().map(|&v| v.max(0) as u32).collect();
    let region = n as u64 * bytes_per_key;
    emit_op(
        OpClass::Sort,
        kernel,
        0,
        cost::sort_iops(n),
        moved,
        moved,
        n as u64,
        {
            let perm_u32 = perm_u32.clone();
            move || {
                vec![
                    AccessDesc::Random {
                        accesses: n as u64 * levels,
                        access_bytes: bytes_per_key,
                        region_bytes: region.max(1),
                    },
                    // Final permutation application uses the real ordering.
                    AccessDesc::Indexed {
                        indices: Arc::new(perm_u32),
                        row_bytes: bytes_per_key,
                        table_bytes: region.max(1),
                    },
                ]
            }
        },
        move || {
            vec![AccessDesc::Sequential {
                bytes: region,
            }]
        },
    );
}

impl Tensor {
    /// Returns the permutation that sorts a 1-D tensor ascending.
    ///
    /// # Errors
    /// Returns [`TensorError::RankMismatch`] unless `self` is rank 1.
    pub fn argsort(&self) -> Result<IntTensor> {
        if self.rank() != 1 {
            return Err(TensorError::RankMismatch {
                op: "argsort",
                expected: 1,
                actual: self.rank(),
            });
        }
        let n = self.dim(0);
        let mut perm: Vec<i64> = (0..n as i64).collect();
        let data = self.as_slice();
        perm.sort_by(|&a, &b| {
            data[a as usize]
                .partial_cmp(&data[b as usize])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        emit_sort(n, 8, "argsort_f32", &perm);
        IntTensor::from_vec(&[n], perm)
    }

    /// Sorts a 1-D tensor ascending, returning values and the permutation.
    ///
    /// # Errors
    /// Returns [`TensorError::RankMismatch`] unless `self` is rank 1.
    pub fn sort_with_indices(&self) -> Result<(Tensor, IntTensor)> {
        let perm = self.argsort()?;
        let data = self.as_slice();
        let sorted: Vec<f32> = perm.as_slice().iter().map(|&i| data[i as usize]).collect();
        let values = Tensor::from_vec(&[self.dim(0)], sorted)?;
        Ok((values, perm))
    }
}

impl IntTensor {
    /// Returns the permutation that sorts a 1-D integer tensor ascending.
    ///
    /// # Errors
    /// Returns [`TensorError::RankMismatch`] unless `self` is rank 1.
    pub fn argsort(&self) -> Result<IntTensor> {
        if self.shape().rank() != 1 {
            return Err(TensorError::RankMismatch {
                op: "argsort_i64",
                expected: 1,
                actual: self.shape().rank(),
            });
        }
        let n = self.numel();
        let mut perm: Vec<i64> = (0..n as i64).collect();
        let data = self.as_slice();
        perm.sort_by_key(|&i| data[i as usize]);
        emit_sort(n, 8, "argsort_i64", &perm);
        IntTensor::from_vec(&[n], perm)
    }

    /// Sorts ascending, returning sorted values and the permutation.
    ///
    /// # Errors
    /// Returns [`TensorError::RankMismatch`] unless `self` is rank 1.
    pub fn sort_with_indices(&self) -> Result<(IntTensor, IntTensor)> {
        let perm = self.argsort()?;
        let data = self.as_slice();
        let sorted: Vec<i64> = perm.as_slice().iter().map(|&i| data[i as usize]).collect();
        let values = IntTensor::from_vec(&[self.numel()], sorted)?;
        Ok((values, perm))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record;

    #[test]
    fn argsort_orders_ascending() {
        let t = Tensor::from_vec(&[4], vec![3.0, 1.0, 2.0, 0.5]).unwrap();
        let perm = t.argsort().unwrap();
        assert_eq!(perm.as_slice(), &[3, 1, 2, 0]);
    }

    #[test]
    fn sort_with_indices_consistent() {
        let t = Tensor::from_vec(&[5], vec![5.0, -1.0, 3.0, 3.0, 0.0]).unwrap();
        let (vals, perm) = t.sort_with_indices().unwrap();
        assert_eq!(vals.as_slice(), &[-1.0, 0.0, 3.0, 3.0, 5.0]);
        // perm is a valid permutation
        let mut seen = perm.as_slice().to_vec();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn int_sort() {
        let t = IntTensor::from_vec(&[4], vec![9, 2, 7, 2]).unwrap();
        let (vals, _) = t.sort_with_indices().unwrap();
        assert_eq!(vals.as_slice(), &[2, 2, 7, 9]);
    }

    #[test]
    fn sort_emits_integer_only_event() {
        record::start_recording();
        let t = Tensor::from_vec(&[8], vec![1.0; 8]).unwrap();
        let _ = t.argsort().unwrap();
        let events = record::stop_recording();
        assert_eq!(events[0].class, OpClass::Sort);
        assert_eq!(events[0].flops, 0);
        assert!(events[0].iops > 0);
    }

    #[test]
    fn sort_rejects_matrices() {
        assert!(Tensor::zeros(&[2, 2]).argsort().is_err());
    }
}
