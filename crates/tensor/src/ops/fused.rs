//! Fused kernels matching the coarse-grained ops DL frameworks launch.
//!
//! PyTorch does not launch ten small element-wise kernels for a BCE loss
//! or an Adam step — `binary_cross_entropy_with_logits` is one fused
//! reduction kernel and `optim.Adam` uses fused/foreach multi-tensor
//! kernels. Modeling these as single events keeps the execution-time
//! breakdown comparable to the paper's nvprof measurements.

use super::emit_sequential;
use crate::cost::{INT_PER_ELEMWISE_ELEM, INT_PER_REDUCE_ELEM};
use crate::instrument::OpClass;
use crate::{Result, Tensor, TensorError};

impl Tensor {
    /// Fused mean binary-cross-entropy-with-logits:
    /// `mean((1−y)·z + ln(1+e^{−z}))`, numerically stable for either sign.
    ///
    /// One kernel: element-wise math fused into a tree reduction, like
    /// `torch.nn.functional.binary_cross_entropy_with_logits`.
    ///
    /// # Errors
    /// Returns a shape error if `self` and `target` differ.
    pub fn bce_with_logits_mean(&self, target: &Tensor) -> Result<Tensor> {
        self.shape().require_same(target.shape(), "bce_with_logits_mean")?;
        let n = self.numel();
        let mut acc = 0.0f64;
        for (&z, &y) in self.as_slice().iter().zip(target.as_slice()) {
            // (1−y)z + softplus(−z), stable: softplus(−z) = max(−z,0) + ln(1+e^{−|z|})
            let softplus_neg = (-z).max(0.0) + (-(z.abs())).exp().ln_1p();
            acc += ((1.0 - y) * z + softplus_neg) as f64;
        }
        let out = Tensor::scalar((acc / n as f64) as f32);
        let n = n as u64;
        emit_sequential(
            OpClass::Reduction,
            "bce_with_logits_fused",
            n * 12, // exp/log + fma per element + reduction tree
            n * INT_PER_REDUCE_ELEM,
            2 * n * 4,
            4,
            n,
        );
        Ok(out)
    }

    /// Gradient of [`Tensor::bce_with_logits_mean`] w.r.t. the logits:
    /// `(σ(z) − y) / n`, one fused element-wise kernel.
    ///
    /// # Errors
    /// Returns a shape error if `self` and `target` differ.
    pub fn bce_with_logits_backward(&self, target: &Tensor) -> Result<Tensor> {
        self.shape()
            .require_same(target.shape(), "bce_with_logits_backward")?;
        let n = self.numel() as f32;
        let data = self
            .as_slice()
            .iter()
            .zip(target.as_slice())
            .map(|(&z, &y)| (1.0 / (1.0 + (-z).exp()) - y) / n)
            .collect();
        let out = Tensor::from_vec(self.dims(), data)?;
        let n = self.numel() as u64;
        emit_sequential(
            OpClass::ElementWise,
            "bce_backward_fused",
            n * 10,
            n * INT_PER_ELEMWISE_ELEM,
            2 * n * 4,
            n * 4,
            n,
        );
        Ok(out)
    }

    /// One fused Adam update over a parameter tensor, matching PyTorch's
    /// `fused=True` / foreach Adam kernels: updates `m` and `v` in place
    /// and returns the new parameter value.
    ///
    /// # Errors
    /// Returns a shape error if the tensors' shapes differ.
    #[allow(clippy::too_many_arguments)]
    pub fn adam_step_fused(
        &self, // current parameter value
        grad: &Tensor,
        m: &mut Tensor,
        v: &mut Tensor,
        lr: f32,
        beta1: f32,
        beta2: f32,
        eps: f32,
        bias_correction1: f32,
        bias_correction2: f32,
    ) -> Result<Tensor> {
        self.shape().require_same(grad.shape(), "adam_step_fused")?;
        self.shape().require_same(m.shape(), "adam_step_fused")?;
        self.shape().require_same(v.shape(), "adam_step_fused")?;
        if bias_correction1 <= 0.0 || bias_correction2 <= 0.0 {
            return Err(TensorError::InvalidArgument {
                op: "adam_step_fused",
                reason: "bias corrections must be positive".to_string(),
            });
        }
        let mut out = Vec::with_capacity(self.numel());
        {
            let ms = m.as_mut_slice();
            let vs = v.as_mut_slice();
            for (((&p, &g), m_i), v_i) in self
                .as_slice()
                .iter()
                .zip(grad.as_slice())
                .zip(ms.iter_mut())
                .zip(vs.iter_mut())
            {
                *m_i = beta1 * *m_i + (1.0 - beta1) * g;
                *v_i = beta2 * *v_i + (1.0 - beta2) * g * g;
                let m_hat = *m_i / bias_correction1;
                let v_hat = *v_i / bias_correction2;
                out.push(p - lr * m_hat / (v_hat.sqrt() + eps));
            }
        }
        let result = Tensor::from_vec(self.dims(), out)?;
        let n = self.numel() as u64;
        emit_sequential(
            OpClass::ElementWise,
            "adam_fused",
            n * 13, // 2 lerps + sqrt + div + fma
            n * INT_PER_ELEMWISE_ELEM,
            4 * n * 4, // p, g, m, v reads
            3 * n * 4, // p, m, v writes
            n,
        );
        Ok(result)
    }

    /// One fused SGD(+momentum, +weight-decay) update; updates `velocity`
    /// in place (pass `None` for plain SGD) and returns the new value.
    ///
    /// # Errors
    /// Returns a shape error if tensor shapes differ.
    pub fn sgd_step_fused(
        &self,
        grad: &Tensor,
        velocity: Option<&mut Tensor>,
        lr: f32,
        momentum: f32,
        weight_decay: f32,
    ) -> Result<Tensor> {
        self.shape().require_same(grad.shape(), "sgd_step_fused")?;
        let mut out = Vec::with_capacity(self.numel());
        match velocity {
            Some(vel) => {
                self.shape().require_same(vel.shape(), "sgd_step_fused")?;
                let vs = vel.as_mut_slice();
                for ((&p, &g), v_i) in
                    self.as_slice().iter().zip(grad.as_slice()).zip(vs.iter_mut())
                {
                    let g = g + weight_decay * p;
                    *v_i = momentum * *v_i + g;
                    out.push(p - lr * *v_i);
                }
            }
            None => {
                for (&p, &g) in self.as_slice().iter().zip(grad.as_slice()) {
                    let g = g + weight_decay * p;
                    out.push(p - lr * g);
                }
            }
        }
        let result = Tensor::from_vec(self.dims(), out)?;
        let n = self.numel() as u64;
        emit_sequential(
            OpClass::ElementWise,
            "sgd_fused",
            n * 6,
            n * INT_PER_ELEMWISE_ELEM,
            3 * n * 4,
            2 * n * 4,
            n,
        );
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record;

    #[test]
    fn bce_fused_matches_reference_formula() {
        let z = Tensor::from_vec(&[2], vec![0.0, 2.0]).unwrap();
        let y = Tensor::from_vec(&[2], vec![1.0, 0.0]).unwrap();
        let loss = z.bce_with_logits_mean(&y).unwrap().item().unwrap();
        let expect = ((2.0f32 + (1.0 + (-2.0f32).exp()).ln()) + std::f32::consts::LN_2) / 2.0;
        assert!((loss - expect).abs() < 1e-6, "{loss} vs {expect}");
    }

    #[test]
    fn bce_fused_is_stable_for_large_logits() {
        let z = Tensor::from_vec(&[2], vec![100.0, -100.0]).unwrap();
        let y = Tensor::from_vec(&[2], vec![1.0, 0.0]).unwrap();
        let loss = z.bce_with_logits_mean(&y).unwrap().item().unwrap();
        assert!(loss.is_finite());
        assert!(loss.abs() < 1e-3, "near-perfect predictions: {loss}");
    }

    #[test]
    fn bce_backward_matches_finite_difference() {
        let z = Tensor::from_vec(&[3], vec![0.5, -1.0, 2.0]).unwrap();
        let y = Tensor::from_vec(&[3], vec![1.0, 0.0, 1.0]).unwrap();
        let g = z.bce_with_logits_backward(&y).unwrap();
        let eps = 1e-2f32;
        for i in 0..3 {
            let mut zp = z.clone();
            zp.as_mut_slice()[i] += eps;
            let mut zm = z.clone();
            zm.as_mut_slice()[i] -= eps;
            let fd = (zp.bce_with_logits_mean(&y).unwrap().item().unwrap()
                - zm.bce_with_logits_mean(&y).unwrap().item().unwrap())
                / (2.0 * eps);
            assert!((g.as_slice()[i] - fd).abs() < 1e-3);
        }
    }

    #[test]
    fn adam_fused_emits_one_event_and_converges() {
        let mut p = Tensor::from_vec(&[1], vec![0.0]).unwrap();
        let mut m = Tensor::zeros(&[1]);
        let mut v = Tensor::zeros(&[1]);
        record::start_recording();
        for t in 1..=200 {
            let g = Tensor::from_vec(&[1], vec![2.0 * (p.as_slice()[0] - 3.0)]).unwrap();
            let bc1 = 1.0 - 0.9f32.powi(t);
            let bc2 = 1.0 - 0.999f32.powi(t);
            p = p
                .adam_step_fused(&g, &mut m, &mut v, 0.1, 0.9, 0.999, 1e-8, bc1, bc2)
                .unwrap();
        }
        let events = record::stop_recording();
        assert_eq!(events.len(), 200); // exactly one kernel per step
        assert!((p.as_slice()[0] - 3.0).abs() < 1e-2);
    }

    #[test]
    fn sgd_fused_with_momentum() {
        let p = Tensor::from_vec(&[2], vec![1.0, -1.0]).unwrap();
        let g = Tensor::from_vec(&[2], vec![0.5, 0.5]).unwrap();
        let mut vel = Tensor::zeros(&[2]);
        let p2 = p
            .sgd_step_fused(&g, Some(&mut vel), 0.1, 0.9, 0.0)
            .unwrap();
        assert!((p2.as_slice()[0] - 0.95).abs() < 1e-6);
        assert_eq!(vel.as_slice(), &[0.5, 0.5]);
        // Plain SGD with weight decay.
        let p3 = p.sgd_step_fused(&g, None, 0.1, 0.0, 0.1).unwrap();
        assert!((p3.as_slice()[0] - (1.0 - 0.1 * 0.6)).abs() < 1e-6);
    }

    #[test]
    fn fused_ops_validate_shapes() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        assert!(a.bce_with_logits_mean(&b).is_err());
        let mut m = Tensor::zeros(&[3]);
        let mut v = Tensor::zeros(&[2]);
        assert!(a
            .adam_step_fused(&a.clone(), &mut m, &mut v, 0.1, 0.9, 0.999, 1e-8, 0.1, 0.1)
            .is_err());
    }
}
