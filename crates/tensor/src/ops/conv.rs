//! 2-D convolution and batch normalization.
//!
//! STGCN's temporal blocks run 2-D convolutions over `[batch, channel,
//! time, node]` tensors — the paper finds Conv2D consumes ~60 % of STGCN's
//! training time. DeepGCN uses batch normalization in every residual block.

use super::emit_sequential;
use crate::cost;
use crate::instrument::OpClass;
use crate::{par, pool, Result, Tensor, TensorError};

/// Minimum modeled MACs per chunk before a conv splits across threads.
const MIN_MACS_PER_CHUNK: usize = 16 * 1024;

/// Padding/stride configuration for [`Tensor::conv2d`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dSpec {
    /// Vertical stride.
    pub stride_h: usize,
    /// Horizontal stride.
    pub stride_w: usize,
    /// Zero-padding rows added on each vertical side.
    pub pad_h: usize,
    /// Zero-padding columns added on each horizontal side.
    pub pad_w: usize,
}

impl Default for Conv2dSpec {
    fn default() -> Self {
        Conv2dSpec {
            stride_h: 1,
            stride_w: 1,
            pad_h: 0,
            pad_w: 0,
        }
    }
}

impl Conv2dSpec {
    /// Output spatial size for an input of `(h, w)` with kernel `(kh, kw)`.
    ///
    /// # Errors
    /// Returns [`TensorError::InvalidArgument`] if the kernel does not fit.
    pub fn output_size(
        &self,
        h: usize,
        w: usize,
        kh: usize,
        kw: usize,
    ) -> Result<(usize, usize)> {
        let h_eff = h + 2 * self.pad_h;
        let w_eff = w + 2 * self.pad_w;
        if kh > h_eff || kw > w_eff || self.stride_h == 0 || self.stride_w == 0 {
            return Err(TensorError::InvalidArgument {
                op: "conv2d",
                reason: format!("kernel {kh}×{kw} does not fit input {h}×{w} with {self:?}"),
            });
        }
        Ok((
            (h_eff - kh) / self.stride_h + 1,
            (w_eff - kw) / self.stride_w + 1,
        ))
    }
}

/// Output positions whose tap `o*stride + k` hits a real input element
/// (`pad <= o*stride + k < len + pad`), clamped to `0..out_len`.
pub(crate) fn valid_taps(
    stride: usize,
    pad: usize,
    k: usize,
    len: usize,
    out_len: usize,
) -> std::ops::Range<usize> {
    let lo = pad.saturating_sub(k).div_ceil(stride).min(out_len);
    let hi = if len + pad > k {
        ((len + pad - k - 1) / stride + 1).min(out_len)
    } else {
        0
    };
    lo..hi.max(lo)
}

impl Tensor {
    /// Direct 2-D convolution.
    ///
    /// `self` is `[n, c_in, h, w]` (NCHW); `weight` is
    /// `[c_out, c_in, kh, kw]`. Returns `[n, c_out, h', w']`.
    ///
    /// # Errors
    /// Returns [`TensorError::RankMismatch`] / [`TensorError::ShapeMismatch`]
    /// / [`TensorError::InvalidArgument`] on malformed inputs.
    pub fn conv2d(&self, weight: &Tensor, spec: Conv2dSpec) -> Result<Tensor> {
        if self.rank() != 4 || weight.rank() != 4 {
            return Err(TensorError::RankMismatch {
                op: "conv2d",
                expected: 4,
                actual: if self.rank() != 4 { self.rank() } else { weight.rank() },
            });
        }
        let (n, c_in, h, w) = (self.dim(0), self.dim(1), self.dim(2), self.dim(3));
        let (c_out, wc_in, kh, kw) = (weight.dim(0), weight.dim(1), weight.dim(2), weight.dim(3));
        if wc_in != c_in {
            return Err(TensorError::ShapeMismatch {
                op: "conv2d",
                lhs: self.dims().to_vec(),
                rhs: weight.dims().to_vec(),
            });
        }
        let (oh, ow) = spec.output_size(h, w, kh, kw)?;
        let x = self.as_slice();
        let k = weight.as_slice();
        let in_img = c_in * h * w;
        let in_ch = h * w;
        let out_ch = oh * ow;
        let k_oc = c_in * kh * kw;
        let k_ic = kh * kw;
        // One task row per (image, output channel). Within a row, taps fold
        // into each output element in (ic, ky, kw) order — the same order at
        // every thread count — while the innermost loop runs contiguously
        // over output columns so it vectorizes instead of branching on
        // padding per tap.
        let mut out = pool::zeroed(n * c_out * out_ch);
        let rows = n * c_out;
        let macs_total = rows.saturating_mul(out_ch).saturating_mul(k_ic);
        let ranges = par::even_ranges(
            rows,
            par::chunk_count(macs_total, MIN_MACS_PER_CHUNK).min(rows.max(1)),
        );
        par::for_row_ranges_mut(&mut out, out_ch, &ranges, |_, task_rows, chunk| {
            for (row, out_row) in task_rows.zip(chunk.chunks_exact_mut(out_ch)) {
                let (ni, oc) = (row / c_out, row % c_out);
                for ic in 0..c_in {
                    let x_ch = &x[ni * in_img + ic * in_ch..][..in_ch];
                    let k_ch = &k[oc * k_oc + ic * k_ic..][..k_ic];
                    for ky in 0..kh {
                        let oys = valid_taps(spec.stride_h, spec.pad_h, ky, h, oh);
                        for kx in 0..kw {
                            let kval = k_ch[ky * kw + kx];
                            let oxs = valid_taps(spec.stride_w, spec.pad_w, kx, w, ow);
                            for oy in oys.clone() {
                                let sy = oy * spec.stride_h + ky - spec.pad_h;
                                let x_row = &x_ch[sy * w..][..w];
                                let o_row = &mut out_row[oy * ow..][..ow];
                                if spec.stride_w == 1 {
                                    let sx0 = oxs.start + kx - spec.pad_w;
                                    for (o, &xv) in
                                        o_row[oxs.clone()].iter_mut().zip(&x_row[sx0..])
                                    {
                                        *o += kval * xv;
                                    }
                                } else {
                                    for ox in oxs.clone() {
                                        o_row[ox] +=
                                            kval * x_row[ox * spec.stride_w + kx - spec.pad_w];
                                    }
                                }
                            }
                        }
                    }
                }
            }
        });
        let result = Tensor::from_vec(&[n, c_out, oh, ow], out)?;
        let macs = (n * c_out * oh * ow * c_in * kh * kw) as u64;
        emit_sequential(
            OpClass::Conv2d,
            "conv2d_direct",
            2 * macs,
            cost::conv2d_iops(macs),
            (self.numel() + weight.numel()) as u64 * 4,
            (n * c_out * oh * ow) as u64 * 4,
            (n * c_out * oh * ow) as u64,
        );
        Ok(result)
    }

    /// Batch normalization over a `[n, d]` matrix: per-column standardization
    /// followed by a learned affine transform.
    ///
    /// Returns `(normalized, mean, var)` so callers can reuse the statistics
    /// in the backward pass.
    ///
    /// # Errors
    /// Returns [`TensorError::RankMismatch`] / [`TensorError::ShapeMismatch`]
    /// on malformed inputs.
    pub fn batch_norm(
        &self,
        gamma: &Tensor,
        beta: &Tensor,
        eps: f32,
    ) -> Result<(Tensor, Tensor, Tensor)> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "batch_norm",
                expected: 2,
                actual: self.rank(),
            });
        }
        let (n, d) = (self.dim(0), self.dim(1));
        if gamma.dims() != [d] || beta.dims() != [d] {
            return Err(TensorError::ShapeMismatch {
                op: "batch_norm",
                lhs: vec![d],
                rhs: gamma.dims().to_vec(),
            });
        }
        let x = self.as_slice();
        let mut mean = vec![0.0f32; d];
        for row in x.chunks_exact(d) {
            for (m, &v) in mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n as f32;
        }
        let mut var = vec![0.0f32; d];
        for row in x.chunks_exact(d) {
            for (j, &v) in row.iter().enumerate() {
                let dv = v - mean[j];
                var[j] += dv * dv;
            }
        }
        for v in &mut var {
            *v /= n as f32;
        }
        let g = gamma.as_slice();
        let b = beta.as_slice();
        let mut out = Vec::with_capacity(n * d);
        for row in x.chunks_exact(d) {
            for (j, &v) in row.iter().enumerate() {
                out.push(g[j] * (v - mean[j]) / (var[j] + eps).sqrt() + b[j]);
            }
        }
        let total = (n * d) as u64;
        // Two reduction passes + one normalize pass, ~7 flops/elem.
        emit_sequential(
            OpClass::BatchNorm,
            "batch_norm",
            total * 7,
            total * cost::INT_PER_BATCHNORM_ELEM,
            total * 4 * 3,
            total * 4,
            total,
        );
        Ok((
            Tensor::from_vec(&[n, d], out)?,
            Tensor::from_vec(&[d], mean)?,
            Tensor::from_vec(&[d], var)?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record;

    #[test]
    fn conv2d_identity_kernel() {
        let x = Tensor::from_fn(&[1, 1, 3, 3], |i| i as f32);
        let k = Tensor::from_vec(&[1, 1, 1, 1], vec![1.0]).unwrap();
        let y = x.conv2d(&k, Conv2dSpec::default()).unwrap();
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn conv2d_box_filter() {
        let x = Tensor::ones(&[1, 1, 3, 3]);
        let k = Tensor::ones(&[1, 1, 2, 2]);
        let y = x.conv2d(&k, Conv2dSpec::default()).unwrap();
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert!(y.as_slice().iter().all(|&v| v == 4.0));
    }

    #[test]
    fn conv2d_padding_and_stride() {
        let x = Tensor::ones(&[1, 1, 4, 4]);
        let k = Tensor::ones(&[1, 1, 3, 3]);
        let spec = Conv2dSpec {
            stride_h: 2,
            stride_w: 2,
            pad_h: 1,
            pad_w: 1,
        };
        let y = x.conv2d(&k, spec).unwrap();
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        // Corner output sees a 2×2 patch of ones.
        assert_eq!(y.get(&[0, 0, 0, 0]), 4.0);
        // Interior sees full 3×3.
        assert_eq!(y.get(&[0, 0, 1, 1]), 9.0);
    }

    #[test]
    fn conv2d_multi_channel() {
        // 2 input channels, kernel sums both.
        let x = Tensor::from_vec(&[1, 2, 1, 2], vec![1.0, 2.0, 10.0, 20.0]).unwrap();
        let k = Tensor::from_vec(&[1, 2, 1, 1], vec![1.0, 1.0]).unwrap();
        let y = x.conv2d(&k, Conv2dSpec::default()).unwrap();
        assert_eq!(y.as_slice(), &[11.0, 22.0]);
    }

    #[test]
    fn conv2d_validates() {
        let x = Tensor::zeros(&[1, 1, 2, 2]);
        let k = Tensor::zeros(&[1, 2, 1, 1]); // c_in mismatch
        assert!(x.conv2d(&k, Conv2dSpec::default()).is_err());
        let too_big = Tensor::zeros(&[1, 1, 5, 5]);
        assert!(x.conv2d(&too_big, Conv2dSpec::default()).is_err());
    }

    #[test]
    fn batch_norm_standardizes() {
        let x = Tensor::from_vec(&[4, 1], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let gamma = Tensor::ones(&[1]);
        let beta = Tensor::zeros(&[1]);
        let (y, mean, var) = x.batch_norm(&gamma, &beta, 1e-5).unwrap();
        assert!((mean.as_slice()[0] - 2.5).abs() < 1e-6);
        assert!((var.as_slice()[0] - 1.25).abs() < 1e-6);
        let m: f32 = y.as_slice().iter().sum::<f32>() / 4.0;
        assert!(m.abs() < 1e-6);
    }

    #[test]
    fn conv_event_flops() {
        record::start_recording();
        let x = Tensor::ones(&[1, 1, 4, 4]);
        let k = Tensor::ones(&[1, 1, 3, 3]);
        let _ = x.conv2d(&k, Conv2dSpec::default()).unwrap();
        let events = record::stop_recording();
        assert_eq!(events[0].class, OpClass::Conv2d);
        assert_eq!(events[0].flops, 2 * 4 * 9); // 2×2 outputs × 9 taps × 2
    }
}
