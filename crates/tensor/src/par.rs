//! Parallel execution layer for the tensor kernels.
//!
//! A small, hand-rolled, persistent thread pool (the containers build
//! offline, so no rayon/crossbeam) plus deterministic work-partitioning
//! helpers. Every parallel kernel in this crate is written so that its
//! result is **bit-identical for every thread count**: output regions are
//! disjoint per task and each output element is accumulated in exactly the
//! same floating-point order as the sequential implementation. Partitioning
//! therefore only changes *who* computes an element, never *how*.
//!
//! The global degree of parallelism is configured once per process:
//!
//! * environment: `GNNMARK_THREADS=N` (read lazily on first use),
//! * programmatically: [`set_threads`] (the `gnnmark` CLI's `--threads`),
//! * default: [`std::thread::available_parallelism`].
//!
//! With one thread everything runs inline on the caller — no pool threads
//! are spawned and no synchronization is paid. Instrumentation events are
//! always emitted by the *calling* thread after the parallel region joins,
//! so the thread-local op recorder (see [`crate::record`]) observes exactly
//! the same event stream at every thread count.

use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

/// Hard upper bound on the configurable thread count.
pub const MAX_THREADS: usize = 64;

/// Minimum per-task element count before a kernel bothers going parallel.
/// Small ops stay inline: the fork/join handshake costs more than the work.
pub const PAR_MIN_ELEMS: usize = 4096;

static THREADS: AtomicUsize = AtomicUsize::new(0);

fn default_threads() -> usize {
    if let Ok(v) = std::env::var("GNNMARK_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n.min(MAX_THREADS);
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(MAX_THREADS)
}

/// The configured degree of parallelism (≥ 1).
pub fn threads() -> usize {
    let t = THREADS.load(Ordering::Relaxed);
    if t != 0 {
        return t;
    }
    let d = default_threads();
    // Racing initializers compute the same default; last store wins.
    let _ = THREADS.compare_exchange(0, d, Ordering::Relaxed, Ordering::Relaxed);
    THREADS.load(Ordering::Relaxed)
}

/// Sets the degree of parallelism for all subsequent kernels
/// (clamped to `1..=MAX_THREADS`). Results are bit-identical across
/// settings; only wall-clock changes.
pub fn set_threads(n: usize) {
    THREADS.store(n.clamp(1, MAX_THREADS), Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Per-worker busy-time accounting (off by default).
//
// When enabled (the telemetry layer's `--trace`/`--metrics` runs), each
// participant of a fork/join batch accumulates the wall-clock time it spent
// draining tasks into its slot: slot 0 is the submitting thread, slot
// `id + 1` is pool worker `gnnmark-par-{id}`. Two clock reads per batch per
// thread — nothing is touched per task, and nothing at all when disabled.
// ---------------------------------------------------------------------------

static TRACK_BUSY: AtomicBool = AtomicBool::new(false);

static BUSY_NS: [AtomicU64; MAX_THREADS + 1] = {
    #[allow(clippy::declare_interior_mutable_const)]
    const ZERO: AtomicU64 = AtomicU64::new(0);
    [ZERO; MAX_THREADS + 1]
};

thread_local! {
    /// This thread's busy-time slot: workers set `id + 1`; everyone else
    /// (submitters, inline fallbacks) shares slot 0.
    static SLOT: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// Enables or disables per-worker busy-time accounting. Off by default;
/// results are unaffected either way.
pub fn set_worker_tracking(on: bool) {
    TRACK_BUSY.store(on, Ordering::Relaxed);
}

/// Busy nanoseconds per slot (`[0]` = submitter thread, `[i + 1]` = pool
/// worker `i`), trimmed after the last active slot. All zeros until
/// [`set_worker_tracking`] is turned on and a parallel kernel runs.
pub fn worker_busy_ns() -> Vec<u64> {
    let vals: Vec<u64> = BUSY_NS.iter().map(|a| a.load(Ordering::Relaxed)).collect();
    let last = vals.iter().rposition(|&v| v != 0).map_or(0, |i| i + 1);
    vals[..last.max(1)].to_vec()
}

/// Zeroes every busy-time slot (per-run accounting).
pub fn reset_worker_busy() {
    for slot in &BUSY_NS {
        slot.store(0, Ordering::Relaxed);
    }
}

#[inline]
fn busy_start() -> Option<Instant> {
    if TRACK_BUSY.load(Ordering::Relaxed) {
        Some(Instant::now())
    } else {
        None
    }
}

#[inline]
fn busy_end(t0: Option<Instant>) {
    if let Some(t0) = t0 {
        let slot = SLOT.with(std::cell::Cell::get);
        BUSY_NS[slot].fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// The pool.
// ---------------------------------------------------------------------------

/// One fork/join batch: `total` tasks pulled off an atomic counter.
struct Job {
    /// Lifetime-erased task body; valid until `done == total` because the
    /// submitter blocks in [`run`] until then.
    f: *const (dyn Fn(usize) + Sync),
    next: AtomicUsize,
    done: AtomicUsize,
    total: usize,
    /// Workers that may participate besides the submitter; extras spawned
    /// for earlier, wider jobs sit this one out so `--threads` is honored.
    max_helpers: usize,
    helpers: AtomicUsize,
    panicked: AtomicBool,
}

// SAFETY: `f` points at a `Sync` closure that outlives the job (the
// submitter keeps it alive on its stack until every task completed).
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

struct PoolState {
    job: Option<Arc<Job>>,
    epoch: u64,
    spawned: usize,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Workers park here between jobs.
    work_cv: Condvar,
    /// The submitter parks here until its job drains.
    done_cv: Condvar,
}

/// Serializes submitters: one fork/join batch at a time. Concurrent
/// submitters (e.g. `--parallel` suite workers) fall back to inline
/// execution instead of queueing, which keeps the pool trivially deadlock-
/// free and never changes results.
static SUBMIT: Mutex<()> = Mutex::new(());

static POOL: OnceLock<Arc<Shared>> = OnceLock::new();

thread_local! {
    /// Set on pool workers; nested parallel calls run inline.
    static IN_POOL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn pool() -> &'static Arc<Shared> {
    POOL.get_or_init(|| {
        Arc::new(Shared {
            state: Mutex::new(PoolState {
                job: None,
                epoch: 0,
                spawned: 0,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        })
    })
}

/// Pulls tasks off `job` until its counter is exhausted; whoever finishes
/// the last task clears the pool's current job and wakes the submitter.
fn drain(job: &Arc<Job>, shared: &Shared) {
    let t0 = busy_start();
    loop {
        let i = job.next.fetch_add(1, Ordering::Relaxed);
        if i >= job.total {
            break;
        }
        // SAFETY: the submitter keeps the closure alive until `done == total`.
        let f = unsafe { &*job.f };
        if catch_unwind(AssertUnwindSafe(|| f(i))).is_err() {
            job.panicked.store(true, Ordering::SeqCst);
        }
        if job.done.fetch_add(1, Ordering::SeqCst) + 1 == job.total {
            let mut st = shared.state.lock().unwrap();
            if st
                .job
                .as_ref()
                .is_some_and(|j| Arc::ptr_eq(j, job))
            {
                st.job = None;
            }
            shared.done_cv.notify_all();
        }
    }
    busy_end(t0);
}

fn worker_loop(shared: Arc<Shared>, id: usize) {
    IN_POOL.with(|f| f.set(true));
    SLOT.with(|s| s.set(id + 1));
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.epoch != seen {
                    if let Some(job) = st.job.clone() {
                        seen = st.epoch;
                        if job.helpers.fetch_add(1, Ordering::SeqCst) >= job.max_helpers {
                            continue;
                        }
                        break job;
                    }
                    seen = st.epoch;
                }
                st = shared.work_cv.wait(st).unwrap();
            }
        };
        drain(&job, &shared);
    }
}

fn ensure_workers(st: &mut PoolState, shared: &Arc<Shared>, wanted: usize) {
    while st.spawned < wanted {
        let shared = Arc::clone(shared);
        let id = st.spawned;
        std::thread::Builder::new()
            .name(format!("gnnmark-par-{id}"))
            .spawn(move || worker_loop(shared, id))
            .expect("spawn pool worker");
        st.spawned += 1;
    }
}

/// Runs `f(0..total)` across the pool, blocking until every task finished.
///
/// Falls back to an inline sequential loop when parallelism is 1, the call
/// is nested inside another parallel region, the pool is busy with another
/// submitter, or `total == 1`. All paths produce identical results.
///
/// # Panics
/// Re-raises (as a single panic) if any task panicked.
pub fn run(total: usize, f: &(dyn Fn(usize) + Sync)) {
    if total == 0 {
        return;
    }
    let t = threads().min(total);
    if t <= 1 || total == 1 || IN_POOL.with(|g| g.get()) {
        // Nested calls (IN_POOL) skip busy accounting: the enclosing
        // `drain` is already timing this thread.
        let t0 = if IN_POOL.with(|g| g.get()) { None } else { busy_start() };
        for i in 0..total {
            f(i);
        }
        busy_end(t0);
        return;
    }
    // One fork/join at a time; a busy pool means another workload thread is
    // mid-kernel — run inline rather than wait (results are identical).
    let Ok(_submit) = SUBMIT.try_lock() else {
        let t0 = busy_start();
        for i in 0..total {
            f(i);
        }
        busy_end(t0);
        return;
    };
    let shared = pool();
    // SAFETY: lifetime erasure only; `run` does not return until every task
    // completed, so the closure outlives all uses.
    let f_static: *const (dyn Fn(usize) + Sync) =
        unsafe { std::mem::transmute::<*const (dyn Fn(usize) + Sync), _>(f as *const _) };
    let job = Arc::new(Job {
        f: f_static,
        next: AtomicUsize::new(0),
        done: AtomicUsize::new(0),
        total,
        max_helpers: t - 1,
        helpers: AtomicUsize::new(0),
        panicked: AtomicBool::new(false),
    });
    {
        let mut st = shared.state.lock().unwrap();
        ensure_workers(&mut st, shared, t - 1);
        st.epoch += 1;
        st.job = Some(Arc::clone(&job));
        shared.work_cv.notify_all();
    }
    // The submitter is a full participant.
    drain(&job, shared);
    let mut st = shared.state.lock().unwrap();
    while job.done.load(Ordering::SeqCst) < job.total {
        st = shared.done_cv.wait(st).unwrap();
    }
    drop(st);
    if job.panicked.load(Ordering::SeqCst) {
        panic!("parallel kernel task panicked");
    }
}

// ---------------------------------------------------------------------------
// Deterministic partition helpers.
// ---------------------------------------------------------------------------

/// Splits `0..n` into `chunks` contiguous ranges of near-equal length
/// (remainder spread over the leading chunks). Deterministic in `n` and
/// `chunks` only.
pub fn even_ranges(n: usize, chunks: usize) -> Vec<Range<usize>> {
    let chunks = chunks.clamp(1, n.max(1));
    let base = n / chunks;
    let rem = n % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0;
    for c in 0..chunks {
        let len = base + usize::from(c < rem);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Splits `0..weights.len()` into at most `chunks` contiguous ranges of
/// near-equal total weight (used by SpMM to balance CSR rows by nnz).
/// Deterministic in the weights and `chunks` only.
pub fn weighted_ranges(weights: &[usize], chunks: usize) -> Vec<Range<usize>> {
    let n = weights.len();
    if n == 0 {
        return vec![];
    }
    let chunks = chunks.clamp(1, n);
    let total: usize = weights.iter().sum();
    let target = total / chunks + 1;
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0;
    let mut acc = 0usize;
    for (i, &w) in weights.iter().enumerate() {
        acc += w;
        if acc >= target && out.len() + 1 < chunks {
            out.push(start..i + 1);
            start = i + 1;
            acc = 0;
        }
    }
    out.push(start..n);
    out
}

/// How many chunks to cut `items` units of work into, given a minimum
/// sensible chunk size. Returns 1 (inline) for small inputs.
pub fn chunk_count(items: usize, min_per_chunk: usize) -> usize {
    let t = threads();
    if t <= 1 || items < 2 * min_per_chunk.max(1) {
        return 1;
    }
    t.min(items / min_per_chunk.max(1)).max(1)
}

/// Wrapper making a raw pointer `Send + Sync` for disjoint-range writes.
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

/// Runs `f(chunk_idx, row_range, out_chunk)` over disjoint row ranges of a
/// mutable `[rows, row_len]` buffer, in parallel. `ranges` must be the
/// ascending, non-overlapping partition of `0..rows` (as produced by
/// [`even_ranges`] / [`weighted_ranges`]); each task receives exactly the
/// sub-slice `out[r.start * row_len .. r.end * row_len]`.
///
/// # Panics
/// Panics if the ranges overlap or exceed the buffer.
pub fn for_row_ranges_mut<T: Send>(
    out: &mut [T],
    row_len: usize,
    ranges: &[Range<usize>],
    f: impl Fn(usize, Range<usize>, &mut [T]) + Sync,
) {
    // Validate the partition up front so the unsafe below stays local.
    let mut prev_end = 0usize;
    for r in ranges {
        assert!(r.start == prev_end, "row ranges must tile contiguously");
        prev_end = r.end;
    }
    assert!(
        prev_end * row_len <= out.len(),
        "row ranges exceed the output buffer"
    );
    if ranges.len() == 1 {
        let r = ranges[0].clone();
        let chunk = &mut out[r.start * row_len..r.end * row_len];
        f(0, r, chunk);
        return;
    }
    let base = SendPtr(out.as_mut_ptr());
    let base_ref = &base;
    run(ranges.len(), &|ci| {
        let r = ranges[ci].clone();
        // SAFETY: ranges are validated disjoint and in-bounds above, so each
        // task gets an exclusive sub-slice.
        let chunk = unsafe {
            std::slice::from_raw_parts_mut(
                base_ref.0.add(r.start * row_len),
                (r.end - r.start) * row_len,
            )
        };
        f(ci, r, chunk);
    });
}

/// Element-chunked parallel fill of `out`: `f(range, chunk)` writes every
/// element of its chunk. Inline when the buffer is small.
pub fn fill_chunks<T: Send>(
    out: &mut [T],
    min_per_chunk: usize,
    f: impl Fn(Range<usize>, &mut [T]) + Sync,
) {
    let n = out.len();
    let ranges = even_ranges(n, chunk_count(n, min_per_chunk));
    for_row_ranges_mut(out, 1, &ranges, |_, r, chunk| f(r, chunk));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_ranges_tile() {
        let rs = even_ranges(10, 3);
        assert_eq!(rs, vec![0..4, 4..7, 7..10]);
        assert_eq!(even_ranges(2, 8).len(), 2);
        assert_eq!(even_ranges(0, 3), vec![0..0]);
    }

    #[test]
    fn weighted_ranges_balance() {
        // One heavy row then light rows: the heavy row gets its own chunk.
        let w = [100, 1, 1, 1, 1, 1];
        let rs = weighted_ranges(&w, 3);
        assert_eq!(rs[0], 0..1);
        assert_eq!(rs.last().unwrap().end, 6);
        let covered: usize = rs.iter().map(|r| r.len()).sum();
        assert_eq!(covered, 6);
        assert!(weighted_ranges(&[], 4).is_empty());
    }

    #[test]
    fn run_executes_every_task_once() {
        let prev = threads();
        set_threads(4);
        let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        run(64, &|i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
        set_threads(prev);
    }

    #[test]
    fn fill_chunks_is_complete_and_disjoint() {
        let prev = threads();
        set_threads(3);
        let mut out = vec![0u32; 10_000];
        fill_chunks(&mut out, 8, |r, chunk| {
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = (r.start + k) as u32;
            }
        });
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u32));
        set_threads(prev);
    }

    #[test]
    fn nested_run_is_inline_and_panics_propagate() {
        let prev = threads();
        set_threads(2);
        // Nested: inner run must not deadlock.
        run(4, &|_| {
            run(4, &|_| {});
        });
        let caught = std::panic::catch_unwind(|| {
            run(8, &|i| {
                if i == 3 {
                    panic!("boom");
                }
            });
        });
        assert!(caught.is_err());
        set_threads(prev);
    }

    #[test]
    fn worker_busy_tracking_accumulates_when_enabled() {
        // The pool and the busy counters are process-global and other tests
        // run concurrently, so assert deltas with slack, never exact values.
        let prev = threads();
        set_threads(4);
        // This test is the only one that ever enables tracking, so before
        // the enable the counters must stay flat through a parallel run.
        let base: u64 = worker_busy_ns().iter().sum();
        run(8, &|_| {
            std::hint::black_box((0..20_000u64).sum::<u64>());
        });
        assert_eq!(
            worker_busy_ns().iter().sum::<u64>(),
            base,
            "disabled tracking must not accumulate"
        );
        set_worker_tracking(true);
        run(64, &|_| {
            // Enough work per task that at least one participant's batch
            // registers a nonzero duration.
            std::hint::black_box((0..20_000u64).sum::<u64>());
        });
        set_worker_tracking(false);
        let after: u64 = worker_busy_ns().iter().sum();
        assert!(after > base, "busy time accumulated: {base} -> {after}");
        set_threads(prev);
    }

    #[test]
    fn set_threads_clamps() {
        let prev = threads();
        set_threads(0);
        assert_eq!(threads(), 1);
        set_threads(10_000);
        assert_eq!(threads(), MAX_THREADS);
        set_threads(prev);
    }
}
