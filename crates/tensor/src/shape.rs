use std::fmt;

use crate::{Result, TensorError};

/// The dimensions of a tensor, row-major.
///
/// `Shape` is a thin, validated wrapper around a `Vec<usize>` of dimension
/// extents. A rank-0 shape (`&[]`) denotes a scalar with one element.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a slice of dimension extents.
    pub fn new(dims: &[usize]) -> Self {
        Shape { dims: dims.to_vec() }
    }

    /// The dimension extents.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions (rank). A scalar has rank 0.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements (product of extents; 1 for scalars).
    pub fn numel(&self) -> usize {
        self.dims.iter().product()
    }

    /// Extent of dimension `axis`.
    ///
    /// # Panics
    /// Panics if `axis >= rank`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// Row-major strides, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index to a flat row-major offset.
    ///
    /// # Errors
    /// Returns [`TensorError::RankMismatch`] if `index.len() != rank`, or
    /// [`TensorError::IndexOutOfBounds`] if any coordinate exceeds its extent.
    pub fn offset(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.dims.len() {
            return Err(TensorError::RankMismatch {
                op: "offset",
                expected: self.dims.len(),
                actual: index.len(),
            });
        }
        let mut off = 0usize;
        let strides = self.strides();
        for (axis, (&i, &d)) in index.iter().zip(self.dims.iter()).enumerate() {
            if i >= d {
                return Err(TensorError::IndexOutOfBounds {
                    op: "offset",
                    index: i,
                    bound: d,
                });
            }
            off += i * strides[axis];
        }
        Ok(off)
    }

    /// Checks element-wise compatibility with another shape.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] tagged with `op` when the
    /// shapes differ.
    pub fn require_same(&self, other: &Shape, op: &'static str) -> Result<()> {
        if self.dims != other.dims {
            return Err(TensorError::ShapeMismatch {
                op,
                lhs: self.dims.clone(),
                rhs: other.dims.clone(),
            });
        }
        Ok(())
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.dim(1), 3);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::new(&[]);
        assert_eq!(s.numel(), 1);
        assert_eq!(s.rank(), 0);
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn offset_roundtrip() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.offset(&[1, 2, 3]).unwrap(), 23);
        assert_eq!(s.offset(&[0, 0, 0]).unwrap(), 0);
    }

    #[test]
    fn offset_bounds_check() {
        let s = Shape::new(&[2, 3]);
        assert!(matches!(
            s.offset(&[2, 0]),
            Err(TensorError::IndexOutOfBounds { .. })
        ));
        assert!(matches!(
            s.offset(&[0]),
            Err(TensorError::RankMismatch { .. })
        ));
    }

    #[test]
    fn require_same_detects_mismatch() {
        let a = Shape::new(&[2, 3]);
        let b = Shape::new(&[3, 2]);
        assert!(a.require_same(&a.clone(), "t").is_ok());
        assert!(a.require_same(&b, "t").is_err());
    }
}
