//! Operation-level instrumentation types.
//!
//! Each tensor operation emits one [`OpEvent`] describing the work a GPU
//! kernel implementing that operation would perform. Events capture *what
//! happened* (exact arithmetic-op counts, bytes, real index arrays); the
//! `gnnmark-gpusim` crate decides *how long it takes* on a modeled V100.

use std::sync::Arc;

/// The GNNMark operator taxonomy (paper §V-A, Figure 2).
///
/// These classes are the unit of the paper's execution-time breakdown,
/// per-operation cache analysis and stall analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpClass {
    /// Dense general matrix-matrix multiply.
    Gemm,
    /// Dense matrix-vector multiply.
    Gemv,
    /// Sparse (CSR) × dense matrix multiply.
    Spmm,
    /// 2-D convolution (used by STGCN's temporal blocks).
    Conv2d,
    /// Batch normalization (used by DeepGCN).
    BatchNorm,
    /// Scatter / scatter-add of rows into a destination by index.
    Scatter,
    /// Gather of rows from a source by index.
    Gather,
    /// Reductions (sum / mean / max, full or per-axis).
    Reduction,
    /// Index-select style row selection (also covers masked selection).
    IndexSelect,
    /// Sorting / argsort.
    Sort,
    /// Element-wise arithmetic, activations and comparisons.
    ElementWise,
    /// Softmax (row-wise normalization; reduction + element-wise hybrid).
    Softmax,
    /// Embedding-table lookup.
    Embedding,
    /// Pure data movement: transpose, concat, split, copies.
    DataMovement,
}

impl OpClass {
    /// All operation classes, in a stable display order.
    pub const ALL: [OpClass; 14] = [
        OpClass::Gemm,
        OpClass::Gemv,
        OpClass::Spmm,
        OpClass::Conv2d,
        OpClass::BatchNorm,
        OpClass::Scatter,
        OpClass::Gather,
        OpClass::Reduction,
        OpClass::IndexSelect,
        OpClass::Sort,
        OpClass::ElementWise,
        OpClass::Softmax,
        OpClass::Embedding,
        OpClass::DataMovement,
    ];

    /// Short label used in reports (matches the paper's figure legends).
    pub fn label(self) -> &'static str {
        match self {
            OpClass::Gemm => "GEMM",
            OpClass::Gemv => "GEMV",
            OpClass::Spmm => "SpMM",
            OpClass::Conv2d => "Conv2D",
            OpClass::BatchNorm => "BatchNorm",
            OpClass::Scatter => "Scatter",
            OpClass::Gather => "Gather",
            OpClass::Reduction => "Reduction",
            OpClass::IndexSelect => "IndexSel",
            OpClass::Sort => "Sort",
            OpClass::ElementWise => "ElemWise",
            OpClass::Softmax => "Softmax",
            OpClass::Embedding => "Embedding",
            OpClass::DataMovement => "DataMove",
        }
    }

    /// Whether the class belongs to the graph *aggregation* phase
    /// (irregular, index-driven work) as opposed to the *update* phase.
    pub fn is_aggregation(self) -> bool {
        matches!(
            self,
            OpClass::Scatter
                | OpClass::Gather
                | OpClass::Reduction
                | OpClass::IndexSelect
                | OpClass::Sort
                | OpClass::Spmm
                | OpClass::Embedding
        )
    }
}

impl std::fmt::Display for OpClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A description of one logical memory-access stream of a kernel.
///
/// Irregular patterns carry the *actual* index arrays used by the op, so the
/// GPU model can measure true locality and warp divergence rather than
/// assuming a distribution.
#[derive(Debug, Clone)]
pub enum AccessDesc {
    /// A fully coalesced sequential sweep over `bytes` bytes.
    Sequential {
        /// Total bytes touched by the sweep.
        bytes: u64,
    },
    /// A strided sweep: `accesses` accesses of `access_bytes` each,
    /// consecutive accesses `stride_bytes` apart.
    Strided {
        /// Distance between consecutive accesses, in bytes.
        stride_bytes: u64,
        /// Number of accesses.
        accesses: u64,
        /// Bytes per access.
        access_bytes: u64,
    },
    /// Row accesses into a table driven by an explicit index array
    /// (gather/scatter/embedding/SpMM column accesses).
    Indexed {
        /// The actual indices used by the operation, in issue order.
        indices: Arc<Vec<u32>>,
        /// Bytes read or written per indexed row.
        row_bytes: u64,
        /// Total size of the indexed table, in bytes.
        table_bytes: u64,
    },
    /// Data-dependent accesses with no reusable structure (sorting network
    /// traffic, hash-style probing).
    Random {
        /// Number of accesses.
        accesses: u64,
        /// Bytes per access.
        access_bytes: u64,
        /// Size of the region the accesses fall in, in bytes.
        region_bytes: u64,
    },
}

impl AccessDesc {
    /// Total bytes moved by this access stream.
    pub fn bytes(&self) -> u64 {
        match self {
            AccessDesc::Sequential { bytes } => *bytes,
            AccessDesc::Strided {
                accesses,
                access_bytes,
                ..
            } => accesses * access_bytes,
            AccessDesc::Indexed {
                indices, row_bytes, ..
            } => indices.len() as u64 * row_bytes,
            AccessDesc::Random {
                accesses,
                access_bytes,
                ..
            } => accesses * access_bytes,
        }
    }
}

/// One operation executed by the tensor engine — the unit of profiling.
///
/// `flops` counts executed fp32 arithmetic operations (an FMA counts as 2),
/// `iops` counts executed int32 arithmetic operations (index math,
/// comparisons on integer data, loop bookkeeping attributable to data
/// indexing). Load/store instruction counts are derived downstream from
/// `bytes_read`/`bytes_written`.
#[derive(Debug, Clone)]
pub struct OpEvent {
    /// Operation class (the paper's taxonomy).
    pub class: OpClass,
    /// Kernel-style name for per-kernel reports, e.g. `"sgemm"`.
    pub kernel: &'static str,
    /// Executed fp32 arithmetic operations.
    pub flops: u64,
    /// Executed int32 arithmetic operations.
    pub iops: u64,
    /// Bytes read from device memory (logical; pre-cache).
    pub bytes_read: u64,
    /// Bytes written to device memory (logical; pre-cache).
    pub bytes_written: u64,
    /// Logical parallel work-items (CUDA threads) the kernel would launch.
    pub threads: u64,
    /// Read access streams.
    pub reads: Vec<AccessDesc>,
    /// Write access streams.
    pub writes: Vec<AccessDesc>,
}

impl OpEvent {
    /// Total bytes moved (read + written).
    pub fn total_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Total arithmetic operations (fp32 + int32).
    pub fn total_arith(&self) -> u64 {
        self.flops + self.iops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<&str> = OpClass::ALL.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), OpClass::ALL.len());
    }

    #[test]
    fn aggregation_classification() {
        assert!(OpClass::Gather.is_aggregation());
        assert!(OpClass::Sort.is_aggregation());
        assert!(!OpClass::Gemm.is_aggregation());
        assert!(!OpClass::Conv2d.is_aggregation());
    }

    #[test]
    fn access_desc_bytes() {
        let d = AccessDesc::Indexed {
            indices: Arc::new(vec![0, 1, 2, 3]),
            row_bytes: 16,
            table_bytes: 1024,
        };
        assert_eq!(d.bytes(), 64);
        let s = AccessDesc::Sequential { bytes: 100 };
        assert_eq!(s.bytes(), 100);
        let st = AccessDesc::Strided {
            stride_bytes: 128,
            accesses: 10,
            access_bytes: 4,
        };
        assert_eq!(st.bytes(), 40);
    }
}
