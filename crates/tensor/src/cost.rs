//! Integer-instruction cost models for each operation class.
//!
//! The GNNMark paper reports the *dynamic instruction mix* of GNN training
//! (Figure 3): on a V100, 64 % of executed instructions are int32 and only
//! 28.7 % fp32 on average, because graph aggregation is dominated by index
//! arithmetic. Floating-point counts are exact (they follow from the op's
//! arithmetic definition); integer counts depend on how a CUDA kernel is
//! written, so we model them here with per-class formulas.
//!
//! The constants encode well-known kernel structures:
//!
//! * Tiled GEMM/conv kernels amortize address math across register tiles, so
//!   they execute far fewer int ops than flops.
//! * Element-wise kernels execute a handful of int ops per element (global
//!   thread-id computation, bounds check, pointer arithmetic).
//! * Irregular ops (gather/scatter/index-select/sort/SpMM row traversal)
//!   are almost entirely integer work.
//!
//! All formulas are pure and deterministic so the instruction mix is
//! reproducible run-to-run.

/// Integer ops executed per element by an element-wise kernel.
///
/// thread-id computation (~2), bounds compare (1), pointer math (~2).
pub const INT_PER_ELEMWISE_ELEM: u64 = 5;

/// Integer ops per output element of a tiled GEMM (amortized address math).
///
/// Register-tiled kernels amortize address math, but nvprof still counts
/// pointer updates, predicate math and shared-memory addressing: measured
/// `inst_integer / inst_fp32` on V100 sgemm is ≈ 0.4–0.7 for GNN shapes.
pub const INT_PER_GEMM_MAC_X1000: u64 = 550; // 0.55 int ops per MAC

/// Integer ops per MAC for GEMV (no register tiling; per-element addressing).
pub const INT_PER_GEMV_MAC_X1000: u64 = 2000;

/// Integer ops per nonzero processed by an SpMM kernel
/// (row-pointer walk, column-index load/decode, output address math).
pub const INT_PER_SPMM_NNZ: u64 = 10;

/// Integer ops per MAC in a direct 2-D convolution kernel.
///
/// Convolutions recompute (n,c,h,w) coordinates per tap but amortize over
/// unrolled filter loops.
pub const INT_PER_CONV_MAC_X1000: u64 = 1100;

/// Integer ops per element gathered or scattered (index load, address
/// computation, bounds checks).
pub const INT_PER_GATHER_ELEM: u64 = 14;

/// Integer ops per element for index-select (row-granular gather; slightly
/// cheaper per element than arbitrary gather since the row offset is shared).
pub const INT_PER_INDEX_SELECT_ELEM: u64 = 12;

/// Integer ops per key-comparison step of a GPU radix/bitonic sort.
pub const INT_PER_SORT_STEP: u64 = 20;

/// Integer ops per element of a reduction tree (index halving, lane math).
pub const INT_PER_REDUCE_ELEM: u64 = 6;

/// Integer ops per element of a softmax (thread indexing across 3 passes).
pub const INT_PER_SOFTMAX_ELEM: u64 = 6;

/// Integer ops per element copied by embedding lookup.
pub const INT_PER_EMBED_ELEM: u64 = 12;

/// Integer ops per element moved by transpose/concat/copy kernels
/// (coordinate remapping dominates — these kernels do no fp work).
pub const INT_PER_DATAMOVE_ELEM: u64 = 10;

/// Integer ops per element for batch-norm (indexing across N for each C).
pub const INT_PER_BATCHNORM_ELEM: u64 = 6;

/// Integer cost of a GEMM with `m`×`k` times `k`×`n` operands.
pub fn gemm_iops(m: usize, k: usize, n: usize) -> u64 {
    let macs = (m * k * n) as u64;
    macs * INT_PER_GEMM_MAC_X1000 / 1000
}

/// Integer cost of a GEMV with an `m`×`k` matrix.
pub fn gemv_iops(m: usize, k: usize) -> u64 {
    let macs = (m * k) as u64;
    macs * INT_PER_GEMV_MAC_X1000 / 1000
}

/// Integer cost of an SpMM with `nnz` nonzeros and dense width `n`.
pub fn spmm_iops(nnz: usize, n: usize) -> u64 {
    // Row walk + column decode per nonzero, plus per-output-element math.
    (nnz as u64) * INT_PER_SPMM_NNZ + (nnz * n) as u64 * 2
}

/// Integer cost of a direct conv2d with `macs` multiply-accumulates.
pub fn conv2d_iops(macs: u64) -> u64 {
    macs * INT_PER_CONV_MAC_X1000 / 1000
}

/// Integer cost of sorting `n` keys (n log2 n comparison steps).
pub fn sort_iops(n: usize) -> u64 {
    if n <= 1 {
        return 1;
    }
    let steps = (n as u64) * (usize::BITS - (n - 1).leading_zeros()) as u64;
    steps * INT_PER_SORT_STEP
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_is_fp_dominant() {
        // 2*macs flops vs gemm_iops must leave fp share > 70 %.
        let m = 256;
        let k = 256;
        let n = 256;
        let flops = 2 * (m * k * n) as u64;
        let iops = gemm_iops(m, k, n);
        let fp_share = flops as f64 / (flops + iops) as f64;
        assert!(fp_share > 0.7, "fp share {fp_share}");
    }

    #[test]
    fn sort_is_loglinear() {
        assert!(sort_iops(1024) > sort_iops(512) * 2 - sort_iops(512) / 2);
        assert_eq!(sort_iops(1), 1);
        assert_eq!(sort_iops(0), 1);
    }

    #[test]
    fn spmm_iops_scale_with_nnz() {
        assert!(spmm_iops(1000, 16) > spmm_iops(100, 16) * 9);
    }
}
