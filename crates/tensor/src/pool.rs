//! `TensorPool`: thread-local reuse of tensor data buffers.
//!
//! Training steps allocate and free the same output shapes thousands of
//! times (every op's forward output, every backward kernel's gradient).
//! `vec![0.0; n]` pays an allocator round-trip plus first-touch page
//! faults on each call; the pool keeps recently dropped buffers bucketed by
//! exact length so the next same-shaped op reuses warm memory.
//!
//! Two acquisition modes keep determinism airtight:
//!
//! * [`zeroed`] — the buffer is memset to 0.0 (for accumulation kernels:
//!   GEMM, SpMM, scatter);
//! * [`filled`] — the buffer's contents are unspecified and the caller
//!   must overwrite every element (map-style kernels: element-wise, gather,
//!   softmax).
//!
//! Buffers come back via [`recycle`] / [`recycle_vec`] — the autograd tape
//! feeds consumed gradient temporaries here during the backward pass. The
//! pool is strictly thread-local: parallel kernel workers never touch it
//! (they write into a caller-provided buffer), so no locks are paid.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::Tensor;

/// Max buffers retained per distinct length.
const PER_BUCKET: usize = 16;
/// Max total f32 elements retained per thread (64 MiB).
const MAX_RETAINED_ELEMS: usize = 16 << 20;

#[derive(Default)]
struct PoolInner {
    buckets: HashMap<usize, Vec<Vec<f32>>>,
    retained_elems: usize,
    hits: u64,
    misses: u64,
    recycled: u64,
}

thread_local! {
    static POOL: RefCell<PoolInner> = RefCell::default();
}

// Cross-thread aggregates, bumped alongside the thread-local counters with
// relaxed ordering (one uncontended atomic add next to a HashMap probe).
// These let run-level consumers (the telemetry metrics registry) see pool
// effectiveness across every worker thread, not just the caller's.
static GLOBAL_HITS: AtomicU64 = AtomicU64::new(0);
static GLOBAL_MISSES: AtomicU64 = AtomicU64::new(0);
static GLOBAL_RECYCLED: AtomicU64 = AtomicU64::new(0);

/// Counters describing pool effectiveness (per thread, or aggregated
/// across threads via [`global_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Acquisitions served from a recycled buffer.
    pub hits: u64,
    /// Acquisitions that had to allocate.
    pub misses: u64,
    /// Buffers returned to the pool.
    pub recycled: u64,
}

impl PoolStats {
    /// Zeroes every counter in place.
    pub fn reset(&mut self) {
        *self = PoolStats::default();
    }

    /// Hits as a fraction of all acquisitions, or 0.0 before any traffic.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter-wise difference against an earlier snapshot (saturating, so
    /// a reset between snapshots can't underflow).
    pub fn since(&self, earlier: &PoolStats) -> PoolStats {
        PoolStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            recycled: self.recycled.saturating_sub(earlier.recycled),
        }
    }
}

fn take(len: usize) -> Option<Vec<f32>> {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        let buf = p.buckets.get_mut(&len).and_then(Vec::pop);
        if buf.is_some() {
            p.retained_elems -= len;
            p.hits += 1;
            GLOBAL_HITS.fetch_add(1, Ordering::Relaxed);
        } else {
            p.misses += 1;
            GLOBAL_MISSES.fetch_add(1, Ordering::Relaxed);
        }
        buf
    })
}

/// A length-`len` buffer of zeros, reusing a recycled allocation when one
/// of the exact length is available.
pub fn zeroed(len: usize) -> Vec<f32> {
    match take(len) {
        Some(mut buf) => {
            buf.fill(0.0);
            buf
        }
        None => vec![0.0f32; len],
    }
}

/// A length-`len` buffer with **unspecified contents** (a recycled buffer
/// is returned as-is). Callers must write every element before the buffer
/// becomes observable; all in-crate users are full-overwrite kernels.
pub fn filled(len: usize) -> Vec<f32> {
    take(len).unwrap_or_else(|| vec![0.0f32; len])
}

/// Returns a tensor's data buffer to the pool.
pub fn recycle(t: Tensor) {
    recycle_vec(t.into_vec());
}

/// Returns a raw buffer to the pool. Buffers whose capacity differs from
/// their length (or that would exceed retention caps) are dropped.
pub fn recycle_vec(v: Vec<f32>) {
    let len = v.len();
    if len == 0 || v.capacity() != len {
        return;
    }
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        if p.retained_elems + len > MAX_RETAINED_ELEMS {
            return;
        }
        let bucket = p.buckets.entry(len).or_default();
        if bucket.len() >= PER_BUCKET {
            return;
        }
        bucket.push(v);
        p.retained_elems += len;
        p.recycled += 1;
        GLOBAL_RECYCLED.fetch_add(1, Ordering::Relaxed);
    });
}

/// This thread's pool counters.
pub fn stats() -> PoolStats {
    POOL.with(|p| {
        let p = p.borrow();
        PoolStats {
            hits: p.hits,
            misses: p.misses,
            recycled: p.recycled,
        }
    })
}

/// Pool counters aggregated across **every** thread that has touched a
/// pool since process start (or since [`reset_global_stats`]).
pub fn global_stats() -> PoolStats {
    PoolStats {
        hits: GLOBAL_HITS.load(Ordering::Relaxed),
        misses: GLOBAL_MISSES.load(Ordering::Relaxed),
        recycled: GLOBAL_RECYCLED.load(Ordering::Relaxed),
    }
}

/// Zeroes the cross-thread aggregate counters so the next read reflects
/// one run instead of the process lifetime. Thread-local counters and
/// retained buffers are untouched.
pub fn reset_global_stats() {
    GLOBAL_HITS.store(0, Ordering::Relaxed);
    GLOBAL_MISSES.store(0, Ordering::Relaxed);
    GLOBAL_RECYCLED.store(0, Ordering::Relaxed);
}

/// Zeroes this thread's counters while keeping its retained buffers warm
/// (per-run accounting without giving up reuse).
pub fn reset_stats() {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        p.hits = 0;
        p.misses = 0;
        p.recycled = 0;
    });
}

/// Drops every retained buffer and zeroes the counters (tests, and
/// long-lived processes between workloads).
pub fn clear() {
    POOL.with(|p| *p.borrow_mut() = PoolInner::default());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_reuses_and_rezeros() {
        clear();
        let mut a = zeroed(128);
        a.iter_mut().for_each(|v| *v = 7.0);
        recycle_vec(a);
        let b = zeroed(128);
        assert!(b.iter().all(|&v| v == 0.0));
        let s = stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.recycled, 1);
        clear();
    }

    #[test]
    fn filled_keeps_contents_and_length_buckets_are_exact() {
        clear();
        let mut a = zeroed(64);
        a[0] = 3.5;
        recycle_vec(a);
        // Different length: miss.
        let b = filled(65);
        assert_eq!(b.len(), 65);
        // Same length: the recycled buffer comes back verbatim.
        let c = filled(64);
        assert_eq!(c[0], 3.5);
        clear();
    }

    #[test]
    fn bucket_cap_is_enforced() {
        clear();
        for _ in 0..(PER_BUCKET + 4) {
            recycle_vec(vec![0.0; 8]);
        }
        assert_eq!(stats().recycled, PER_BUCKET as u64);
        clear();
    }

    #[test]
    fn recycling_tensor_roundtrips() {
        clear();
        recycle(Tensor::ones(&[4, 4]));
        assert_eq!(stats().recycled, 1);
        let v = filled(16);
        assert!(v.iter().all(|&x| x == 1.0));
        clear();
    }

    #[test]
    fn reset_stats_keeps_warm_buffers() {
        clear();
        recycle_vec(vec![0.0; 32]);
        reset_stats();
        assert_eq!(stats(), PoolStats::default());
        // The retained buffer survives the counter reset: next take hits.
        let _ = filled(32);
        assert_eq!(stats().hits, 1);
        clear();
    }

    #[test]
    fn stats_reset_and_hit_rate_and_since() {
        let mut s = PoolStats { hits: 3, misses: 1, recycled: 2 };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        let earlier = PoolStats { hits: 1, misses: 1, recycled: 0 };
        assert_eq!(
            s.since(&earlier),
            PoolStats { hits: 2, misses: 0, recycled: 2 }
        );
        s.reset();
        assert_eq!(s, PoolStats::default());
        assert_eq!(s.hit_rate(), 0.0, "no traffic yet");
    }

    // Other tests in this process also drive the pool concurrently, so the
    // global counters are asserted as *deltas with slack* (>=), never
    // exactly.
    #[test]
    fn global_stats_aggregate_across_threads() {
        let before = global_stats();
        let worker = std::thread::spawn(|| {
            // Fresh thread → fresh thread-local pool: miss, recycle, hit.
            let buf = filled(48);
            recycle_vec(buf);
            let _ = filled(48);
        });
        worker.join().unwrap();
        // This thread contributes a miss on a length no other test uses.
        let _ = filled(49);
        let delta = global_stats().since(&before);
        assert!(delta.hits >= 1, "worker hit visible globally: {delta:?}");
        assert!(delta.misses >= 2, "both threads' misses visible: {delta:?}");
        assert!(delta.recycled >= 1, "worker recycle visible: {delta:?}");
    }
}
