//! `TensorPool`: thread-local reuse of tensor data buffers.
//!
//! Training steps allocate and free the same output shapes thousands of
//! times (every op's forward output, every backward kernel's gradient).
//! `vec![0.0; n]` pays an allocator round-trip plus first-touch page
//! faults on each call; the pool keeps recently dropped buffers bucketed by
//! exact length so the next same-shaped op reuses warm memory.
//!
//! Two acquisition modes keep determinism airtight:
//!
//! * [`zeroed`] — the buffer is memset to 0.0 (for accumulation kernels:
//!   GEMM, SpMM, scatter);
//! * [`filled`] — the buffer's contents are unspecified and the caller
//!   must overwrite every element (map-style kernels: element-wise, gather,
//!   softmax).
//!
//! Buffers come back via [`recycle`] / [`recycle_vec`] — the autograd tape
//! feeds consumed gradient temporaries here during the backward pass. The
//! pool is strictly thread-local: parallel kernel workers never touch it
//! (they write into a caller-provided buffer), so no locks are paid.

use std::cell::RefCell;
use std::collections::HashMap;

use crate::Tensor;

/// Max buffers retained per distinct length.
const PER_BUCKET: usize = 16;
/// Max total f32 elements retained per thread (64 MiB).
const MAX_RETAINED_ELEMS: usize = 16 << 20;

#[derive(Default)]
struct PoolInner {
    buckets: HashMap<usize, Vec<Vec<f32>>>,
    retained_elems: usize,
    hits: u64,
    misses: u64,
    recycled: u64,
}

thread_local! {
    static POOL: RefCell<PoolInner> = RefCell::default();
}

/// Counters describing pool effectiveness (per thread).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Acquisitions served from a recycled buffer.
    pub hits: u64,
    /// Acquisitions that had to allocate.
    pub misses: u64,
    /// Buffers returned to the pool.
    pub recycled: u64,
}

fn take(len: usize) -> Option<Vec<f32>> {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        let buf = p.buckets.get_mut(&len).and_then(Vec::pop);
        if buf.is_some() {
            p.retained_elems -= len;
            p.hits += 1;
        } else {
            p.misses += 1;
        }
        buf
    })
}

/// A length-`len` buffer of zeros, reusing a recycled allocation when one
/// of the exact length is available.
pub fn zeroed(len: usize) -> Vec<f32> {
    match take(len) {
        Some(mut buf) => {
            buf.fill(0.0);
            buf
        }
        None => vec![0.0f32; len],
    }
}

/// A length-`len` buffer with **unspecified contents** (a recycled buffer
/// is returned as-is). Callers must write every element before the buffer
/// becomes observable; all in-crate users are full-overwrite kernels.
pub fn filled(len: usize) -> Vec<f32> {
    take(len).unwrap_or_else(|| vec![0.0f32; len])
}

/// Returns a tensor's data buffer to the pool.
pub fn recycle(t: Tensor) {
    recycle_vec(t.into_vec());
}

/// Returns a raw buffer to the pool. Buffers whose capacity differs from
/// their length (or that would exceed retention caps) are dropped.
pub fn recycle_vec(v: Vec<f32>) {
    let len = v.len();
    if len == 0 || v.capacity() != len {
        return;
    }
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        if p.retained_elems + len > MAX_RETAINED_ELEMS {
            return;
        }
        let bucket = p.buckets.entry(len).or_default();
        if bucket.len() >= PER_BUCKET {
            return;
        }
        bucket.push(v);
        p.retained_elems += len;
        p.recycled += 1;
    });
}

/// This thread's pool counters.
pub fn stats() -> PoolStats {
    POOL.with(|p| {
        let p = p.borrow();
        PoolStats {
            hits: p.hits,
            misses: p.misses,
            recycled: p.recycled,
        }
    })
}

/// Drops every retained buffer and zeroes the counters (tests, and
/// long-lived processes between workloads).
pub fn clear() {
    POOL.with(|p| *p.borrow_mut() = PoolInner::default());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_reuses_and_rezeros() {
        clear();
        let mut a = zeroed(128);
        a.iter_mut().for_each(|v| *v = 7.0);
        recycle_vec(a);
        let b = zeroed(128);
        assert!(b.iter().all(|&v| v == 0.0));
        let s = stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.recycled, 1);
        clear();
    }

    #[test]
    fn filled_keeps_contents_and_length_buckets_are_exact() {
        clear();
        let mut a = zeroed(64);
        a[0] = 3.5;
        recycle_vec(a);
        // Different length: miss.
        let b = filled(65);
        assert_eq!(b.len(), 65);
        // Same length: the recycled buffer comes back verbatim.
        let c = filled(64);
        assert_eq!(c[0], 3.5);
        clear();
    }

    #[test]
    fn bucket_cap_is_enforced() {
        clear();
        for _ in 0..(PER_BUCKET + 4) {
            recycle_vec(vec![0.0; 8]);
        }
        assert_eq!(stats().recycled, PER_BUCKET as u64);
        clear();
    }

    #[test]
    fn recycling_tensor_roundtrips() {
        clear();
        recycle(Tensor::ones(&[4, 4]));
        assert_eq!(stats().recycled, 1);
        let v = filled(16);
        assert!(v.iter().all(|&x| x == 1.0));
        clear();
    }
}
