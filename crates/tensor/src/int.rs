use std::fmt;

use crate::{Result, Shape, TensorError};

/// A dense, row-major tensor of `i64` values.
///
/// Integer tensors hold indices (node ids, edge endpoints, class labels,
/// permutations) and are the inputs to the irregular operations — gather,
/// scatter, index-select, sort — whose integer-heavy behavior the GNNMark
/// paper highlights.
///
/// # Example
///
/// ```
/// use gnnmark_tensor::IntTensor;
///
/// let idx = IntTensor::from_vec(&[3], vec![2, 0, 1])?;
/// assert_eq!(idx.get(&[0]), 2);
/// # Ok::<(), gnnmark_tensor::TensorError>(())
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct IntTensor {
    data: Vec<i64>,
    shape: Shape,
}

impl IntTensor {
    /// Creates an integer tensor of zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        IntTensor {
            data: vec![0; shape.numel()],
            shape,
        }
    }

    /// Creates an integer tensor from existing data.
    ///
    /// # Errors
    /// Returns [`TensorError::InvalidArgument`] if the data length does not
    /// match the shape.
    pub fn from_vec(dims: &[usize], data: Vec<i64>) -> Result<Self> {
        let shape = Shape::new(dims);
        if shape.numel() != data.len() {
            return Err(TensorError::InvalidArgument {
                op: "IntTensor::from_vec",
                reason: format!(
                    "shape {shape} implies {} elements, data has {}",
                    shape.numel(),
                    data.len()
                ),
            });
        }
        Ok(IntTensor { data, shape })
    }

    /// Creates a 1-D tensor holding `0..n`.
    pub fn arange(n: usize) -> Self {
        IntTensor {
            data: (0..n as i64).collect(),
            shape: Shape::new(&[n]),
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension extents as a slice.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Number of elements.
    pub fn numel(&self) -> usize {
        self.shape.numel()
    }

    /// Read-only view of the underlying data.
    pub fn as_slice(&self) -> &[i64] {
        &self.data
    }

    /// Mutable view of the underlying data.
    pub fn as_mut_slice(&mut self) -> &mut [i64] {
        &mut self.data
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    /// Panics if the index is out of bounds.
    pub fn get(&self, index: &[usize]) -> i64 {
        let off = self.shape.offset(index).expect("index out of bounds");
        self.data[off]
    }

    /// Validates that all values lie in `[0, bound)`, e.g. before using the
    /// tensor as a gather index.
    ///
    /// # Errors
    /// Returns [`TensorError::IndexOutOfBounds`] for the first offender.
    pub fn check_bounds(&self, bound: usize, op: &'static str) -> Result<()> {
        for &v in &self.data {
            if v < 0 || v as usize >= bound {
                return Err(TensorError::IndexOutOfBounds {
                    op,
                    index: v.max(0) as usize,
                    bound,
                });
            }
        }
        Ok(())
    }

    /// Converts values to `u32` for instrumentation access descriptors.
    ///
    /// Values are clamped into `u32` range; callers validate bounds first
    /// via [`IntTensor::check_bounds`].
    pub fn to_u32_vec(&self) -> Vec<u32> {
        self.data.iter().map(|&v| v.max(0) as u32).collect()
    }
}

impl fmt::Debug for IntTensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IntTensor{} ", self.shape)?;
        if self.numel() <= 8 {
            write!(f, "{:?}", self.data)
        } else {
            write!(f, "[{}, {}, … ; {} elems]", self.data[0], self.data[1], self.numel())
        }
    }
}

impl Default for IntTensor {
    fn default() -> Self {
        IntTensor::zeros(&[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arange_contents() {
        let t = IntTensor::arange(4);
        assert_eq!(t.as_slice(), &[0, 1, 2, 3]);
        assert_eq!(t.dims(), &[4]);
    }

    #[test]
    fn bounds_checking() {
        let t = IntTensor::from_vec(&[3], vec![0, 2, 1]).unwrap();
        assert!(t.check_bounds(3, "t").is_ok());
        assert!(t.check_bounds(2, "t").is_err());
        let neg = IntTensor::from_vec(&[1], vec![-1]).unwrap();
        assert!(neg.check_bounds(10, "t").is_err());
    }

    #[test]
    fn from_vec_validates() {
        assert!(IntTensor::from_vec(&[2], vec![1]).is_err());
    }
}
