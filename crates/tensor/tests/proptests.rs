//! Property-based tests for the tensor engine's algebraic invariants.

use gnnmark_tensor::{CsrMatrix, IntTensor, Tensor};
use proptest::prelude::*;

fn small_dims() -> impl Strategy<Value = (usize, usize)> {
    (1usize..12, 1usize..12)
}

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |v| Tensor::from_vec(&[rows, cols], v).unwrap())
}

proptest! {
    #[test]
    fn gemm_matches_naive((m, k) in small_dims(), n in 1usize..12, seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Tensor::from_fn(&[m, k], |_| rng.gen_range(-2.0..2.0));
        let b = Tensor::from_fn(&[k, n], |_| rng.gen_range(-2.0..2.0));
        let c = a.matmul(&b).unwrap();
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a.get(&[i, kk]) * b.get(&[kk, j]);
                }
                prop_assert!((c.get(&[i, j]) - acc).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn add_is_commutative((m, n) in small_dims(), seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Tensor::from_fn(&[m, n], |_| rng.gen_range(-5.0..5.0));
        let b = Tensor::from_fn(&[m, n], |_| rng.gen_range(-5.0..5.0));
        let ab = a.add(&b).unwrap();
        let ba = b.add(&a).unwrap();
        prop_assert_eq!(ab.as_slice(), ba.as_slice());
    }

    #[test]
    fn relu_is_idempotent_and_nonnegative(v in proptest::collection::vec(-100.0f32..100.0, 1..64)) {
        let n = v.len();
        let t = Tensor::from_vec(&[n], v).unwrap();
        let r = t.relu();
        prop_assert!(r.as_slice().iter().all(|&x| x >= 0.0));
        let rr = r.relu();
        prop_assert_eq!(rr.as_slice(), r.as_slice());
    }

    #[test]
    fn spmm_equals_dense_matmul(
        rows in 1usize..10,
        cols in 1usize..10,
        n in 1usize..8,
        entries in proptest::collection::vec((0usize..10, 0usize..10, -3.0f32..3.0), 0..30),
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let triplets: Vec<(usize, usize, f32)> = entries
            .into_iter()
            .map(|(r, c, v)| (r % rows, c % cols, v))
            .collect();
        let sp = CsrMatrix::from_coo(rows, cols, &triplets).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x = Tensor::from_fn(&[cols, n], |_| rng.gen_range(-2.0..2.0));
        let sparse = sp.spmm(&x).unwrap();
        let dense = sp.to_dense().matmul(&x).unwrap();
        for (a, b) in sparse.as_slice().iter().zip(dense.as_slice()) {
            prop_assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn gather_scatter_roundtrip_for_permutations(n in 1usize..32, d in 1usize..8, seed in any::<u64>()) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let t = Tensor::from_fn(&[n, d], |i| i as f32);
        let mut perm: Vec<i64> = (0..n as i64).collect();
        perm.shuffle(&mut rng);
        let idx = IntTensor::from_vec(&[n], perm).unwrap();
        let gathered = t.gather_rows(&idx).unwrap();
        let restored = gathered.scatter_add_rows(&idx, n).unwrap();
        prop_assert_eq!(restored.as_slice(), t.as_slice());
    }

    #[test]
    fn argsort_yields_sorted_permutation(v in proptest::collection::vec(-100.0f32..100.0, 1..64)) {
        let n = v.len();
        let t = Tensor::from_vec(&[n], v.clone()).unwrap();
        let perm = t.argsort().unwrap();
        // valid permutation
        let mut sorted_perm = perm.as_slice().to_vec();
        sorted_perm.sort_unstable();
        prop_assert_eq!(sorted_perm, (0..n as i64).collect::<Vec<_>>());
        // actually sorted
        let vals: Vec<f32> = perm.as_slice().iter().map(|&i| v[i as usize]).collect();
        prop_assert!(vals.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn softmax_rows_are_distributions((m, n) in small_dims(), seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let t = Tensor::from_fn(&[m, n], |_| rng.gen_range(-10.0..10.0));
        let s = t.softmax_rows().unwrap();
        for row in s.as_slice().chunks_exact(n) {
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn transpose_is_involutive(t in small_dims().prop_flat_map(|(m, n)| matrix(m, n))) {
        let tt = t.transpose2d().unwrap().transpose2d().unwrap();
        prop_assert_eq!(tt.as_slice(), t.as_slice());
        prop_assert_eq!(tt.dims(), t.dims());
    }

    #[test]
    fn csr_transpose_is_involutive(
        rows in 1usize..10,
        cols in 1usize..10,
        entries in proptest::collection::vec((0usize..10, 0usize..10, 0.5f32..3.0), 0..30),
    ) {
        let triplets: Vec<(usize, usize, f32)> = entries
            .into_iter()
            .map(|(r, c, v)| (r % rows, c % cols, v))
            .collect();
        let sp = CsrMatrix::from_coo(rows, cols, &triplets).unwrap();
        let back = sp.transpose().transpose();
        prop_assert_eq!(back, sp);
    }

    #[test]
    fn sum_rows_plus_sum_cols_agree_on_total((m, n) in small_dims(), seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let t = Tensor::from_fn(&[m, n], |_| rng.gen_range(-5.0..5.0));
        let by_rows: f32 = t.sum_rows().unwrap().as_slice().iter().sum();
        let by_cols: f32 = t.sum_cols().unwrap().as_slice().iter().sum();
        let total = t.sum_all().item().unwrap();
        prop_assert!((by_rows - total).abs() < 1e-2 * (1.0 + total.abs()));
        prop_assert!((by_cols - total).abs() < 1e-2 * (1.0 + total.abs()));
    }

    #[test]
    fn sparsity_in_unit_interval(v in proptest::collection::vec(prop_oneof![Just(0.0f32), -5.0f32..5.0], 1..64)) {
        let n = v.len();
        let t = Tensor::from_vec(&[n], v.clone()).unwrap();
        let s = t.sparsity();
        prop_assert!((0.0..=1.0).contains(&s));
        let zeros = v.iter().filter(|x| **x == 0.0).count();
        prop_assert!((s - zeros as f64 / n as f64).abs() < 1e-12);
    }

    #[test]
    fn embedding_lookup_matches_gather(n in 1usize..16, d in 1usize..8, ids in proptest::collection::vec(0i64..16, 1..20)) {
        let ids: Vec<i64> = ids.into_iter().map(|i| i % n as i64).collect();
        let len = ids.len();
        let table = Tensor::from_fn(&[n, d], |i| (i * 3) as f32);
        let idx = IntTensor::from_vec(&[len], ids).unwrap();
        let e = table.embedding_lookup(&idx).unwrap();
        let g = table.gather_rows(&idx).unwrap();
        prop_assert_eq!(e.as_slice(), g.as_slice());
    }
}
