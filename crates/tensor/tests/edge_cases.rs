//! Edge-case and failure-injection tests for the tensor engine:
//! degenerate shapes, empty tensors, extreme values, and every public
//! error path.

use gnnmark_tensor::{record, CsrMatrix, IntTensor, Tensor, TensorError};

#[test]
fn empty_tensors_are_usable() {
    let e = Tensor::zeros(&[0, 4]);
    assert_eq!(e.numel(), 0);
    assert_eq!(e.sparsity(), 0.0);
    let s = e.sum_all();
    assert_eq!(s.item().unwrap(), 0.0);
    let m = e.matmul(&Tensor::zeros(&[4, 2])).unwrap();
    assert_eq!(m.dims(), &[0, 2]);
    let cat = Tensor::concat_rows(&[&e, &Tensor::ones(&[2, 4])]).unwrap();
    assert_eq!(cat.dims(), &[2, 4]);
}

#[test]
fn single_element_everything() {
    let t = Tensor::from_vec(&[1, 1], vec![3.0]).unwrap();
    assert_eq!(t.matmul(&t).unwrap().get(&[0, 0]), 9.0);
    assert_eq!(t.transpose2d().unwrap().get(&[0, 0]), 3.0);
    assert_eq!(t.softmax_rows().unwrap().get(&[0, 0]), 1.0);
    assert_eq!(t.sum_rows().unwrap().as_slice(), &[3.0]);
    let v = t.reshape(&[1]).unwrap();
    assert_eq!(v.argsort().unwrap().as_slice(), &[0]);
}

#[test]
fn extreme_values_do_not_poison_softmax_or_bce() {
    let t = Tensor::from_vec(&[1, 3], vec![1e30, -1e30, 0.0]).unwrap();
    let s = t.softmax_rows().unwrap();
    assert!(s.as_slice().iter().all(|v| v.is_finite()));
    assert!((s.get(&[0, 0]) - 1.0).abs() < 1e-6);

    let z = Tensor::from_vec(&[2], vec![1e4, -1e4]).unwrap();
    let y = Tensor::from_vec(&[2], vec![1.0, 0.0]).unwrap();
    let loss = z.bce_with_logits_mean(&y).unwrap().item().unwrap();
    assert!(loss.is_finite());
    assert!(loss.abs() < 1e-3);
}

#[test]
fn nan_propagates_but_argsort_survives() {
    let t = Tensor::from_vec(&[3], vec![1.0, f32::NAN, 0.0]).unwrap();
    // Total order is unspecified around NaN but the permutation is valid.
    let perm = t.argsort().unwrap();
    let mut p = perm.as_slice().to_vec();
    p.sort_unstable();
    assert_eq!(p, vec![0, 1, 2]);
}

#[test]
fn error_paths_are_typed() {
    let a = Tensor::zeros(&[2, 3]);
    assert!(matches!(
        a.matmul(&Tensor::zeros(&[2, 3])),
        Err(TensorError::ShapeMismatch { op: "matmul", .. })
    ));
    assert!(matches!(
        a.argsort(),
        Err(TensorError::RankMismatch { op: "argsort", .. })
    ));
    assert!(matches!(
        a.slice_rows(1, 5),
        Err(TensorError::IndexOutOfBounds { .. })
    ));
    assert!(matches!(
        Tensor::from_vec(&[2], vec![1.0]),
        Err(TensorError::InvalidArgument { .. })
    ));
    assert!(matches!(
        CsrMatrix::new(1, 1, vec![0], vec![], vec![]),
        Err(TensorError::InvalidSparse { .. })
    ));
}

#[test]
fn gather_of_empty_index_is_empty() {
    let t = Tensor::ones(&[4, 2]);
    let idx = IntTensor::from_vec(&[0], vec![]).unwrap();
    let g = t.gather_rows(&idx).unwrap();
    assert_eq!(g.dims(), &[0, 2]);
    let s = g.scatter_add_rows(&idx, 4).unwrap();
    assert_eq!(s.as_slice(), Tensor::zeros(&[4, 2]).as_slice());
}

#[test]
fn spmm_with_empty_matrix() {
    let m = CsrMatrix::from_coo(3, 3, &[]).unwrap();
    let x = Tensor::ones(&[3, 2]);
    let y = m.spmm(&x).unwrap();
    assert!(y.as_slice().iter().all(|&v| v == 0.0));
    assert_eq!(m.nnz(), 0);
    assert_eq!(m.transpose().nnz(), 0);
}

#[test]
fn recording_survives_errors() {
    record::start_recording();
    let a = Tensor::zeros(&[2, 3]);
    let _ = a.matmul(&Tensor::zeros(&[5, 5])); // fails before any event
    let _ = a.relu(); // succeeds
    let events = record::stop_recording();
    assert_eq!(events.len(), 1, "failed ops must not emit events");
}

#[test]
fn conv2d_one_pixel() {
    use gnnmark_tensor::ops::conv::Conv2dSpec;
    let x = Tensor::from_vec(&[1, 1, 1, 1], vec![2.0]).unwrap();
    let k = Tensor::from_vec(&[1, 1, 1, 1], vec![3.0]).unwrap();
    let y = x.conv2d(&k, Conv2dSpec::default()).unwrap();
    assert_eq!(y.as_slice(), &[6.0]);
    // Kernel larger than image errors.
    let big = Tensor::zeros(&[1, 1, 2, 2]);
    assert!(x.conv2d(&big, Conv2dSpec::default()).is_err());
}

#[test]
fn batched_ops_with_batch_of_one() {
    let a = Tensor::from_vec(&[1, 2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
    let b = Tensor::from_vec(&[1, 3, 2], vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]).unwrap();
    let c = a.bmm(&b).unwrap();
    assert_eq!(c.dims(), &[1, 2, 2]);
    // Matches plain 2-D matmul on the squeezed operands.
    let a2 = a.reshape(&[2, 3]).unwrap();
    let b2 = b.reshape(&[3, 2]).unwrap();
    let c2 = a2.matmul(&b2).unwrap();
    assert_eq!(c.as_slice(), c2.as_slice());
}

#[test]
fn sort_already_sorted_and_reverse_sorted() {
    let asc = Tensor::from_vec(&[5], (0..5).map(|i| i as f32).collect()).unwrap();
    assert_eq!(asc.argsort().unwrap().as_slice(), &[0, 1, 2, 3, 4]);
    let desc = Tensor::from_vec(&[5], (0..5).rev().map(|i| i as f32).collect()).unwrap();
    assert_eq!(desc.argsort().unwrap().as_slice(), &[4, 3, 2, 1, 0]);
}

#[test]
fn clamp_and_maximum_edge_semantics() {
    let t = Tensor::from_vec(&[3], vec![-1.0, 0.5, 2.0]).unwrap();
    let c = t.clamp(0.0, 1.0);
    assert_eq!(c.as_slice(), &[0.0, 0.5, 1.0]);
    let m = t.maximum(&Tensor::zeros(&[3])).unwrap();
    assert_eq!(m.as_slice(), &[0.0, 0.5, 2.0]);
}
