//! Property tests for the parallel execution layer's core guarantee:
//! every kernel is **bit-identical** at 1, 2, 4 and 8 threads.
//!
//! The parallel kernels partition *output* regions and keep each output
//! element's floating-point accumulation order fixed, so the thread count
//! may only change wall-clock, never a single bit of any result. The sizes
//! below straddle the `PAR_MIN_ELEMS`-style thresholds, covering both the
//! inline and the pooled execution paths.

use std::sync::Mutex;

use gnnmark_tensor::{par, CsrMatrix, IntTensor, Tensor};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

/// Serializes tests that flip the process-wide thread setting (results are
/// thread-count-invariant, but the 1-thread leg should really run inline).
static THREADS_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` at 1, 2, 4 and 8 threads and returns the raw outputs.
fn at_thread_counts(f: impl Fn() -> Vec<f32>) -> Vec<Vec<f32>> {
    let _guard = THREADS_LOCK.lock().unwrap();
    let prev = par::threads();
    let outs = [1usize, 2, 4, 8]
        .iter()
        .map(|&t| {
            par::set_threads(t);
            f()
        })
        .collect();
    par::set_threads(prev);
    outs
}

fn assert_bit_identical(outs: &[Vec<f32>], what: &str) {
    let base = &outs[0];
    for (i, o) in outs.iter().enumerate().skip(1) {
        assert_eq!(o.len(), base.len(), "{what}: length diverged");
        for (j, (a, b)) in o.iter().zip(base).enumerate() {
            assert!(
                a.to_bits() == b.to_bits(),
                "{what}: element {j} diverged at thread setting #{i}: {a} vs {b}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn gemm_bit_identical_across_thread_counts(
        m in 1usize..96,
        k in 1usize..48,
        n in 1usize..64,
        seed in any::<u64>(),
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Tensor::from_fn(&[m, k], |_| rng.gen_range(-2.0..2.0));
        let b = Tensor::from_fn(&[k, n], |_| rng.gen_range(-2.0..2.0));
        let outs = at_thread_counts(|| a.matmul(&b).unwrap().into_vec());
        assert_bit_identical(&outs, "matmul");
    }

    #[test]
    fn gemm_nt_and_tn_match_explicit_transpose_at_any_thread_count(
        m in 1usize..48,
        k in 1usize..32,
        n in 1usize..48,
        seed in any::<u64>(),
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Tensor::from_fn(&[m, k], |_| rng.gen_range(-2.0..2.0));
        let bt = Tensor::from_fn(&[n, k], |_| rng.gen_range(-2.0..2.0));
        let at = Tensor::from_fn(&[k, m], |_| rng.gen_range(-2.0..2.0));
        let b = Tensor::from_fn(&[k, n], |_| rng.gen_range(-2.0..2.0));

        // NT/TN go through the same transpose-pack + blocked kernel as
        // plain matmul, so they match matmul-of-explicit-transpose exactly.
        let reference_nt = a.matmul(&bt.transpose2d().unwrap()).unwrap();
        let reference_tn = at.transpose2d().unwrap().matmul(&b).unwrap();
        let nt = at_thread_counts(|| a.matmul_nt(&bt).unwrap().into_vec());
        let tn = at_thread_counts(|| at.matmul_tn(&b).unwrap().into_vec());
        assert_bit_identical(&nt, "matmul_nt");
        assert_bit_identical(&tn, "matmul_tn");
        prop_assert_eq!(nt[0].as_slice(), reference_nt.as_slice());
        prop_assert_eq!(tn[0].as_slice(), reference_tn.as_slice());
    }

    #[test]
    fn spmm_bit_identical_across_thread_counts(
        rows in 1usize..200,
        cols in 1usize..40,
        n in 1usize..48,
        entries in proptest::collection::vec(
            (0usize..1000, 0usize..1000, -3.0f32..3.0), 0..1500),
        seed in any::<u64>(),
    ) {
        let triplets: Vec<(usize, usize, f32)> = entries
            .into_iter()
            .map(|(r, c, v)| (r % rows, c % cols, v))
            .collect();
        let sp = CsrMatrix::from_coo(rows, cols, &triplets).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x = Tensor::from_fn(&[cols, n], |_| rng.gen_range(-2.0..2.0));
        let outs = at_thread_counts(|| sp.spmm(&x).unwrap().into_vec());
        assert_bit_identical(&outs, "spmm");
    }

    #[test]
    fn scatter_bit_identical_across_thread_counts(
        n in 1usize..2048,
        d in 1usize..48,
        out_rows in 1usize..96,
        seed in any::<u64>(),
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let src = Tensor::from_fn(&[n, d], |_| rng.gen_range(-2.0..2.0));
        let idx = IntTensor::from_vec(
            &[n],
            (0..n).map(|_| rng.gen_range(0..out_rows) as i64).collect(),
        )
        .unwrap();
        let add = at_thread_counts(|| src.scatter_add_rows(&idx, out_rows).unwrap().into_vec());
        let max = at_thread_counts(|| src.scatter_max_rows(&idx, out_rows).unwrap().into_vec());
        let gather = at_thread_counts(|| {
            let big = Tensor::from_fn(&[out_rows, d], |i| i as f32 * 0.25);
            big.gather_rows(&idx).unwrap().into_vec()
        });
        assert_bit_identical(&add, "scatter_add_rows");
        assert_bit_identical(&max, "scatter_max_rows");
        assert_bit_identical(&gather, "gather_rows");
    }

    #[test]
    fn conv2d_forward_and_backward_bit_identical(
        n in 1usize..4,
        c_in in 1usize..5,
        c_out in 1usize..5,
        h in 3usize..12,
        w in 3usize..24,
        pad in 0usize..2,
        seed in any::<u64>(),
    ) {
        use gnnmark_tensor::ops::conv::Conv2dSpec;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x = Tensor::from_fn(&[n, c_in, h, w], |_| rng.gen_range(-2.0..2.0));
        let k = Tensor::from_fn(&[c_out, c_in, 3, 3], |_| rng.gen_range(-1.0..1.0));
        let spec = Conv2dSpec { stride_h: 1, stride_w: 1, pad_h: pad, pad_w: pad };
        let (oh, ow) = spec.output_size(h, w, 3, 3).unwrap();
        let dout = Tensor::from_fn(&[n, c_out, oh, ow], |_| rng.gen_range(-1.0..1.0));
        let fwd = at_thread_counts(|| x.conv2d(&k, spec).unwrap().into_vec());
        let bwd = at_thread_counts(|| {
            let (dx, dw) = x.conv2d_backward(&k, spec, &dout).unwrap();
            let mut out = dx.into_vec();
            out.extend(dw.into_vec());
            out
        });
        assert_bit_identical(&fwd, "conv2d");
        assert_bit_identical(&bwd, "conv2d_backward");
    }

    #[test]
    fn elementwise_softmax_and_reductions_bit_identical(
        rows in 1usize..400,
        d in 1usize..64,
        seed in any::<u64>(),
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x = Tensor::from_fn(&[rows, d], |_| rng.gen_range(-4.0..4.0));
        let y = Tensor::from_fn(&[rows, d], |_| rng.gen_range(-4.0..4.0));
        let combined = at_thread_counts(|| {
            let mut out = x.add(&y).unwrap().relu().into_vec();
            out.extend(x.softmax_rows().unwrap().into_vec());
            out.extend(x.sum_rows().unwrap().into_vec());
            out.extend(x.sum_cols().unwrap().into_vec());
            out
        });
        assert_bit_identical(&combined, "elementwise/softmax/reduce");
    }
}

/// Oversubscription: more worker threads than partitionable items. Every
/// kernel must still produce the single-thread result bit-for-bit when the
/// output has fewer rows/elements than the thread count (the partitioner
/// hands some workers empty ranges).
#[test]
fn oversubscribed_threads_exceed_items() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x0515);
    let a = Tensor::from_fn(&[2, 3], |_| rng.gen_range(-2.0..2.0));
    let b = Tensor::from_fn(&[3, 2], |_| rng.gen_range(-2.0..2.0));
    let sp = CsrMatrix::from_coo(3, 2, &[(0, 1, 0.5), (2, 0, -1.5), (2, 1, 0.25)]).unwrap();
    let x = Tensor::from_fn(&[2, 2], |_| rng.gen_range(-2.0..2.0));
    let src = Tensor::from_fn(&[2, 3], |_| rng.gen_range(-2.0..2.0));
    let idx = IntTensor::from_vec(&[2], vec![1, 1]).unwrap();
    let outs = at_thread_counts(|| {
        // 8 threads vs 2-3 output rows: most workers get empty ranges.
        let mut out = a.matmul(&b).unwrap().into_vec();
        out.extend(sp.spmm(&x).unwrap().into_vec());
        out.extend(src.scatter_add_rows(&idx, 2).unwrap().into_vec());
        out.extend(src.softmax_rows().unwrap().into_vec());
        out.extend(src.sum_cols().unwrap().into_vec());
        out
    });
    assert_bit_identical(&outs, "oversubscribed kernels");
}
