//! SIMD-lane parity: every vectorized kernel must agree with the scalar
//! reference lane within an ULP-aware tolerance, and the scalar lane
//! itself must stay byte-stable (it is the golden determinism contract
//! that `results/golden/` op-stream checks and the historic loss
//! fingerprints were recorded against).
//!
//! On hosts without SIMD support `detect()` returns `Scalar` and the
//! parity tests degrade to exact self-comparison — still valid, just
//! vacuous.

use gnnmark_tensor::simd::{self, BinOp, SimdLevel, UnOp};
use gnnmark_tensor::Tensor;
use proptest::prelude::*;

/// Relative-ish tolerance: SIMD lanes reassociate reductions and contract
/// mul+add into FMA, so results may differ by a few ULPs that scale with
/// the magnitude of the value. 1e-5 relative (floored at 1e-5 absolute)
/// comfortably covers both while still catching genuinely wrong lanes.
fn close(a: f32, b: f32) -> bool {
    if a == b {
        return true; // covers ±0 and exact agreement
    }
    if a.is_nan() && b.is_nan() {
        return true;
    }
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= 1e-5 * scale
}

fn assert_close(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
        assert!(close(x, y), "{what}[{i}]: scalar={x} simd={y}");
    }
}

/// Lengths that exercise full vector bodies, remainder lanes, and the
/// empty input.
fn lens() -> impl Strategy<Value = usize> {
    prop_oneof![Just(0usize), 1usize..9, 15usize..18, 31usize..34, 63usize..67]
}

fn vecs(n: usize) -> impl Strategy<Value = (Vec<f32>, Vec<f32>)> {
    (
        proptest::collection::vec(-100.0f32..100.0, n),
        proptest::collection::vec(-100.0f32..100.0, n),
    )
}

proptest! {
    #[test]
    fn binary_ops_match_scalar((a, b) in lens().prop_flat_map(vecs), alpha in -2.0f32..2.0) {
        let auto = simd::detect();
        for op in [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Max,
            BinOp::Axpy(alpha),
            BinOp::MulScale(alpha),
        ] {
            let mut scalar_out = vec![0.0f32; a.len()];
            let mut simd_out = vec![0.0f32; a.len()];
            simd::binary(SimdLevel::Scalar, op, &a, &b, &mut scalar_out);
            simd::binary(auto, op, &a, &b, &mut simd_out);
            assert_close(&scalar_out, &simd_out, &format!("{op:?}"));
        }
    }

    #[test]
    fn div_matches_scalar((a, b) in lens().prop_flat_map(vecs)) {
        // Keep denominators away from zero so both lanes stay finite.
        let b: Vec<f32> = b.iter().map(|v| if v.abs() < 0.5 { 1.0 } else { *v }).collect();
        let mut scalar_out = vec![0.0f32; a.len()];
        let mut simd_out = vec![0.0f32; a.len()];
        simd::binary(SimdLevel::Scalar, BinOp::Div, &a, &b, &mut scalar_out);
        simd::binary(simd::detect(), BinOp::Div, &a, &b, &mut simd_out);
        assert_close(&scalar_out, &simd_out, "Div");
    }

    #[test]
    fn unary_ops_match_scalar((a, _) in lens().prop_flat_map(vecs), s in -3.0f32..3.0) {
        let auto = simd::detect();
        for op in [
            UnOp::Relu,
            UnOp::Neg,
            UnOp::Square,
            UnOp::MulScalar(s),
            UnOp::AddScalar(s),
        ] {
            let mut scalar_out = vec![0.0f32; a.len()];
            let mut simd_out = vec![0.0f32; a.len()];
            simd::unary(SimdLevel::Scalar, op, &a, &mut scalar_out);
            simd::unary(auto, op, &a, &mut simd_out);
            assert_close(&scalar_out, &simd_out, &format!("{op:?}"));
        }
    }

    #[test]
    fn reductions_match_scalar((a, b) in lens().prop_flat_map(vecs)) {
        let auto = simd::detect();
        assert!(close(simd::vsum(SimdLevel::Scalar, &a), simd::vsum(auto, &a)), "vsum");
        assert!(close(simd::vsumsq(SimdLevel::Scalar, &a), simd::vsumsq(auto, &a)), "vsumsq");
        assert!(close(simd::vdot(SimdLevel::Scalar, &a, &b), simd::vdot(auto, &a, &b)), "vdot");
        // Max is associative: the lanes must agree exactly.
        assert_eq!(
            simd::vmax(SimdLevel::Scalar, &a).to_bits(),
            simd::vmax(auto, &a).to_bits(),
            "vmax"
        );
    }

    #[test]
    fn accumulate_axpy_sub2_div_match_scalar((a, b) in lens().prop_flat_map(vecs), alpha in -2.0f32..2.0) {
        let auto = simd::detect();

        let mut d0 = a.clone();
        let mut d1 = a.clone();
        simd::accumulate(SimdLevel::Scalar, &mut d0, &b);
        simd::accumulate(auto, &mut d1, &b);
        assert_close(&d0, &d1, "accumulate");

        let mut d0 = a.clone();
        let mut d1 = a.clone();
        simd::axpy(SimdLevel::Scalar, &mut d0, alpha, &b);
        simd::axpy(auto, &mut d1, alpha, &b);
        assert_close(&d0, &d1, "axpy");

        let mut o0 = vec![0.0f32; a.len()];
        let mut o1 = vec![0.0f32; a.len()];
        simd::sub2(SimdLevel::Scalar, &a, alpha, 0.75, &mut o0);
        simd::sub2(auto, &a, alpha, 0.75, &mut o1);
        assert_close(&o0, &o1, "sub2");

        let mut d0 = a.clone();
        let mut d1 = a.clone();
        simd::div_scalar(SimdLevel::Scalar, &mut d0, 3.5);
        simd::div_scalar(auto, &mut d1, 3.5);
        assert_close(&d0, &d1, "div_scalar");
    }

    #[test]
    fn gemm_panel_kernels_match_scalar(cols in 1usize..40, seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let auto = simd::detect();
        let a0: [f32; 8] = std::array::from_fn(|_| rng.gen_range(-2.0f32..2.0));
        let a1: [f32; 8] = std::array::from_fn(|_| rng.gen_range(-2.0f32..2.0));
        let stride = cols + rng.gen_range(0usize..3); // padded row stride
        let b: Vec<f32> = (0..8 * stride).map(|_| rng.gen_range(-2.0f32..2.0)).collect();

        let mut s = vec![0.5f32; cols];
        let mut v = vec![0.5f32; cols];
        simd::axpy8(SimdLevel::Scalar, &mut s, &a0, &b, stride);
        simd::axpy8(auto, &mut v, &a0, &b, stride);
        assert_close(&s, &v, "axpy8");

        let (mut s0, mut s1) = (vec![0.5f32; cols], vec![0.25f32; cols]);
        let (mut v0, mut v1) = (vec![0.5f32; cols], vec![0.25f32; cols]);
        simd::axpy8x2(SimdLevel::Scalar, &mut s0, &mut s1, &a0, &a1, &b, stride);
        simd::axpy8x2(auto, &mut v0, &mut v1, &a0, &a1, &b, stride);
        assert_close(&s0, &v0, "axpy8x2 row0");
        assert_close(&s1, &v1, "axpy8x2 row1");
    }

    #[test]
    fn tensor_ops_match_across_lanes(m in 1usize..12, k in 1usize..12, n in 1usize..12, seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Tensor::from_fn(&[m, k], |_| rng.gen_range(-2.0f32..2.0));
        let b = Tensor::from_fn(&[k, n], |_| rng.gen_range(-2.0f32..2.0));

        let scalar = simd::with_level(SimdLevel::Scalar, || {
            (a.matmul(&b).unwrap(), a.softmax_rows().unwrap(), a.relu())
        });
        let auto = simd::with_level(simd::detect(), || {
            (a.matmul(&b).unwrap(), a.softmax_rows().unwrap(), a.relu())
        });
        assert_close(scalar.0.as_slice(), auto.0.as_slice(), "matmul");
        assert_close(scalar.1.as_slice(), auto.1.as_slice(), "softmax_rows");
        // Relu is a pure comparison: lanes must agree bit-for-bit.
        assert_eq!(scalar.2.as_slice(), auto.2.as_slice(), "relu");
    }
}

/// FNV-1a over the little-endian byte rendering, matching the digest the
/// check crate uses for figure goldens.
fn fnv1a_bytes(xs: &[f32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for x in xs {
        for b in x.to_le_bits_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

trait LeBytes {
    fn to_le_bits_bytes(&self) -> [u8; 4];
}
impl LeBytes for f32 {
    fn to_le_bits_bytes(&self) -> [u8; 4] {
        self.to_bits().to_le_bytes()
    }
}

/// The scalar lane IS the historic kernel, expression for expression, so
/// a deterministic input must keep producing byte-identical output on
/// every platform and every future refactor. These digests were recorded
/// from the pre-SIMD kernels; a mismatch means the golden determinism
/// lane drifted and `results/golden/` / checkpoint fingerprints are no
/// longer comparable across versions.
#[test]
fn forced_scalar_lane_is_bit_stable() {
    simd::with_level(SimdLevel::Scalar, || {
        let a = Tensor::from_fn(&[32, 48], |i| ((i * 2654435761) % 1000) as f32 * 0.003 - 1.5);
        let b = Tensor::from_fn(&[48, 24], |i| ((i * 40503) % 997) as f32 * 0.002 - 1.0);

        let gemm = a.matmul(&b).unwrap();
        let softmax = a.softmax_rows().unwrap();
        let sum = Tensor::from_vec(&[1], vec![a.as_slice().iter().sum()]).unwrap();

        // Same inputs, run twice: the lane must be deterministic.
        assert_eq!(gemm.as_slice(), a.matmul(&b).unwrap().as_slice());

        let digest = fnv1a_bytes(gemm.as_slice())
            ^ fnv1a_bytes(softmax.as_slice()).rotate_left(1)
            ^ fnv1a_bytes(sum.as_slice()).rotate_left(2);
        assert_eq!(
            digest, GOLDEN_SCALAR_DIGEST,
            "scalar-lane output drifted from the recorded golden digest"
        );
    });
}

/// Recorded from the scalar reference loops. Update ONLY when the scalar
/// lane changes on purpose (which also invalidates `results/golden/`).
const GOLDEN_SCALAR_DIGEST: u64 = 6_522_836_538_623_809_907;
