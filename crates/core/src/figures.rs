//! Generators for every table and figure of the GNNMark paper.
//!
//! Each function renders the corresponding result as a [`Table`] (pretty
//! text via `Display`, CSV via [`Table::to_csv`]). Shape targets from the
//! paper are documented per function and checked by the integration suite.

use gnnmark_gpusim::{DdpModel, StallReason};
use gnnmark_profiler::{FigureCategory, Table, WorkloadProfile};

use crate::suite::RunArtifacts;

fn pct(v: f64) -> String {
    format!("{:.1}", v * 100.0)
}

/// Table I: the benchmark suite inventory.
pub fn table1() -> Table {
    let mut t = Table::new("Table I — GNNMark benchmark suite");
    t.header(["Abbrev", "Model", "Framework", "Domain", "Dataset", "Graph type"]);
    for r in gnnmark_workloads::table_one() {
        t.row([r.abbrev, r.model, r.framework, r.domain, r.dataset, r.graph_type]);
    }
    t
}

/// Figure 2: execution-time breakdown by operation class (% of kernel
/// time), one row per workload plus the suite mean.
///
/// Paper shape targets: STGCN dominated by Conv2D (~60 %); DGCN
/// element-wise heavy (~31 %); GEMM+SpMM only ~25 % of suite time;
/// PSAGE's element-wise share far higher on NWP than MVL.
pub fn fig2_time_breakdown(profiles: &[WorkloadProfile]) -> Table {
    let mut t = Table::new("Figure 2 — Execution-time breakdown by operation (%)");
    let mut header = vec!["Workload".to_string()];
    header.extend(FigureCategory::ALL.iter().map(|c| c.label().to_string()));
    t.header(header);
    let mut sums = vec![0.0f64; FigureCategory::ALL.len()];
    for p in profiles {
        let mut row = vec![p.name.clone()];
        for (i, &cat) in FigureCategory::ALL.iter().enumerate() {
            let share = p.time_share(cat);
            sums[i] += share;
            row.push(pct(share));
        }
        t.row(row);
    }
    if !profiles.is_empty() {
        let mut row = vec!["MEAN".to_string()];
        for s in &sums {
            row.push(pct(s / profiles.len() as f64));
        }
        t.row(row);
    }
    t
}

/// Figure 3: dynamic instruction mix (% of arithmetic instructions).
///
/// Paper shape targets: int32 ≈ 64 % / fp32 ≈ 28.7 % on average, with GW
/// the only fp32-dominant workload.
pub fn fig3_instruction_mix(profiles: &[WorkloadProfile]) -> Table {
    let mut t = Table::new("Figure 3 — Dynamic instruction mix (%)");
    t.header(["Workload", "int32", "fp32", "other", "ld/st per arith"]);
    let (mut int_sum, mut fp_sum) = (0.0, 0.0);
    for p in profiles {
        let int = p.instr.int_share();
        let fp = p.instr.fp_share();
        int_sum += int;
        fp_sum += fp;
        let arith = (p.instr.fp32 + p.instr.int32 + p.instr.control).max(1);
        t.row([
            p.name.clone(),
            pct(int),
            pct(fp),
            pct(1.0 - int - fp),
            format!("{:.2}", p.instr.ldst as f64 / arith as f64),
        ]);
    }
    if !profiles.is_empty() {
        let n = profiles.len() as f64;
        t.row([
            "MEAN".to_string(),
            pct(int_sum / n),
            pct(fp_sum / n),
            pct(1.0 - int_sum / n - fp_sum / n),
            String::new(),
        ]);
    }
    t
}

/// Figure 4: achieved GFLOPS / GIOPS and IPC per workload.
///
/// Paper shape targets: suite mean ≈ 214 GFLOPS / 705 GIOPS; GW the
/// clear GFLOPS leader; TLSTM near the bottom; mean IPC ≈ 0.55 — all far
/// below the V100's 14 TFLOPS peak.
pub fn fig4_throughput(profiles: &[WorkloadProfile]) -> Table {
    let mut t = Table::new("Figure 4 — Achieved throughput");
    t.header(["Workload", "GFLOPS", "GIOPS", "IPC"]);
    let (mut gf, mut gi, mut ipc) = (0.0, 0.0, 0.0);
    for p in profiles {
        gf += p.gflops();
        gi += p.giops();
        ipc += p.ipc();
        t.row([
            p.name.clone(),
            format!("{:.0}", p.gflops()),
            format!("{:.0}", p.giops()),
            format!("{:.2}", p.ipc()),
        ]);
    }
    if !profiles.is_empty() {
        let n = profiles.len() as f64;
        t.row([
            "MEAN".to_string(),
            format!("{:.0}", gf / n),
            format!("{:.0}", gi / n),
            format!("{:.2}", ipc / n),
        ]);
    }
    t
}

/// Per-operation throughput across the suite (the paper's §V-B per-op
/// comparison: GEMM fastest, reductions/scatters/gathers ~100).
pub fn fig4_per_op_throughput(profiles: &[WorkloadProfile]) -> Table {
    let mut t = Table::new("Figure 4 (per-op) — Throughput by operation class");
    t.header(["Operation", "GFLOPS", "GIOPS", "Time share (%)", "Launches"]);
    let mut total_time = 0.0;
    for p in profiles {
        total_time += p.total_kernel_time_ns();
    }
    for cat in FigureCategory::ALL {
        let (mut flops, mut iops, mut time, mut launches) = (0u64, 0u64, 0.0f64, 0u64);
        for p in profiles {
            if let Some(s) = p.per_class.get(&cat) {
                flops += s.flops;
                iops += s.iops;
                time += s.time_ns;
                launches += s.launches;
            }
        }
        if launches == 0 {
            continue;
        }
        t.row([
            cat.label().to_string(),
            format!("{:.0}", flops as f64 / time.max(1.0)),
            format!("{:.0}", iops as f64 / time.max(1.0)),
            pct(time / total_time.max(1.0)),
            launches.to_string(),
        ]);
    }
    t
}

/// Figure 5: issue-stall breakdown per workload (%).
///
/// Paper shape targets: memory dependency ≈ 34.3 %, execution dependency
/// ≈ 29.5 %, instruction fetch ≈ 21.6 % on average.
pub fn fig5_stalls(profiles: &[WorkloadProfile]) -> Table {
    let mut t = Table::new("Figure 5 — Stall breakdown (%)");
    let mut header = vec!["Workload".to_string()];
    header.extend(StallReason::ALL.iter().map(|r| r.label().to_string()));
    t.header(header);
    let mut sums = vec![0.0f64; StallReason::ALL.len()];
    for p in profiles {
        let stalls = p.stalls();
        let mut row = vec![p.name.clone()];
        for (i, &r) in StallReason::ALL.iter().enumerate() {
            let share = stalls.share(r);
            sums[i] += share;
            row.push(pct(share));
        }
        t.row(row);
    }
    if !profiles.is_empty() {
        let mut row = vec!["MEAN".to_string()];
        for s in &sums {
            row.push(pct(s / profiles.len() as f64));
        }
        t.row(row);
    }
    t
}

/// Figure 5 (per-op view): stall breakdown by operation class across the
/// suite; scatter/gather/index-selection stall more on memory than GEMM.
pub fn fig5_per_op_stalls(profiles: &[WorkloadProfile]) -> Table {
    let mut t = Table::new("Figure 5 (per-op) — Stalls by operation class (%)");
    let mut header = vec!["Operation".to_string()];
    header.extend(StallReason::ALL.iter().map(|r| r.label().to_string()));
    t.header(header);
    for cat in FigureCategory::ALL {
        let mut acc = Vec::new();
        for p in profiles {
            if let Some(s) = p.per_class.get(&cat) {
                acc.push((s.stalls(), s.cycles));
            }
        }
        if acc.is_empty() {
            continue;
        }
        let merged = gnnmark_gpusim::StallBreakdown::weighted_merge(&acc);
        let mut row = vec![cat.label().to_string()];
        for &r in &StallReason::ALL {
            row.push(pct(merged.share(r)));
        }
        t.row(row);
    }
    t
}

/// Figure 6: cache hit rates and divergence per workload.
///
/// Paper shape targets: L1 ≈ 15 % on average (GEMM/SpMM below 10 %),
/// L2 ≈ 70 %, divergent loads ≈ 32.5 %.
pub fn fig6_caches(profiles: &[WorkloadProfile]) -> Table {
    let mut t = Table::new("Figure 6 — Cache hit rates and memory divergence (%)");
    t.header(["Workload", "L1 hit", "L2 hit", "Divergent loads"]);
    let (mut l1, mut l2, mut div) = (0.0, 0.0, 0.0);
    for p in profiles {
        l1 += p.l1_hit_rate();
        l2 += p.l2_hit_rate();
        div += p.divergence();
        t.row([
            p.name.clone(),
            pct(p.l1_hit_rate()),
            pct(p.l2_hit_rate()),
            pct(p.divergence()),
        ]);
    }
    if !profiles.is_empty() {
        let n = profiles.len() as f64;
        t.row(["MEAN".to_string(), pct(l1 / n), pct(l2 / n), pct(div / n)]);
    }
    t
}

/// Figure 6 (per-op view): locality by operation class.
pub fn fig6_per_op_caches(profiles: &[WorkloadProfile]) -> Table {
    let mut t = Table::new("Figure 6 (per-op) — Locality by operation class (%)");
    t.header(["Operation", "L1 hit", "L2 hit", "Divergence"]);
    for cat in FigureCategory::ALL {
        let (mut l1h, mut l1a, mut l2h, mut l2a, mut dw, mut w) = (0u64, 0u64, 0u64, 0u64, 0u64, 0u64);
        for p in profiles {
            if let Some(s) = p.per_class.get(&cat) {
                l1h += s.l1_hits;
                l1a += s.l1_accesses;
                l2h += s.l2_hits;
                l2a += s.l2_accesses;
                dw += s.divergent_warp_ops;
                w += s.warp_ops;
            }
        }
        if l1a == 0 {
            continue;
        }
        t.row([
            cat.label().to_string(),
            pct(l1h as f64 / l1a as f64),
            pct(l2h as f64 / l2a.max(1) as f64),
            pct(dw as f64 / w.max(1) as f64),
        ]);
    }
    t
}

/// Figure 7: mean CPU→GPU transfer sparsity per workload.
///
/// Paper shape targets: suite mean ≈ 43.2 %; PSAGE MVL sparser than NWP;
/// ReLU/PReLU models (GW, DGCN, ARGA) highly sparse.
pub fn fig7_sparsity(profiles: &[WorkloadProfile]) -> Table {
    let mut t = Table::new("Figure 7 — Mean H2D transfer sparsity (%)");
    t.header(["Workload", "Sparsity", "Transfers"]);
    let mut sum = 0.0;
    for p in profiles {
        sum += p.mean_sparsity;
        t.row([
            p.name.clone(),
            pct(p.mean_sparsity),
            p.sparsity_series.len().to_string(),
        ]);
    }
    if !profiles.is_empty() {
        t.row([
            "MEAN".to_string(),
            pct(sum / profiles.len() as f64),
            String::new(),
        ]);
    }
    t
}

/// Figure 8: per-transfer sparsity over training order for one workload
/// (the paper shows a clear periodic pattern).
pub fn fig8_sparsity_series(profile: &WorkloadProfile, max_points: usize) -> Table {
    let mut t = Table::new(format!(
        "Figure 8 — H2D sparsity over training ({})",
        profile.name
    ));
    t.header(["Transfer #", "Sparsity (%)", ""]);
    let series = &profile.sparsity_series;
    let step = (series.len() / max_points.max(1)).max(1);
    for (i, s) in series.iter().enumerate().step_by(step) {
        let bar_len = (s * 40.0).round() as usize;
        t.row([
            i.to_string(),
            pct(*s),
            "#".repeat(bar_len),
        ]);
    }
    t
}

/// Figure 9: strong scaling of time-per-epoch on 1/2/4 modeled V100s.
///
/// Paper shape targets: DGCN/STGCN/GW speed up; TLSTM stays flat; PSAGE
/// *degrades*; ARGA is excluded.
pub fn fig9_scaling(runs: &[RunArtifacts]) -> Table {
    let mut t = Table::new("Figure 9 — Multi-GPU strong scaling (time per epoch, speedup vs 1 GPU)");
    t.header(["Workload", "1 GPU (ms)", "2 GPUs (×)", "4 GPUs (×)"]);
    for art in runs {
        let Some(behavior) = art.scaling else {
            t.row([
                art.profile.name.clone(),
                "excluded".to_string(),
                "-".to_string(),
                "-".to_string(),
            ]);
            continue;
        };
        let ddp = DdpModel::new(art.profile.spec.clone());
        let epochs = art.losses.len().max(1) as f64;
        let epoch_ns = art.profile.total_time_ns() / epochs;
        let steps = art.steps_per_epoch;
        let t1 = ddp.epoch_time_ns(epoch_ns, steps, art.grad_bytes, behavior, 1);
        let s2 = ddp.speedup(epoch_ns, steps, art.grad_bytes, behavior, 2);
        let s4 = ddp.speedup(epoch_ns, steps, art.grad_bytes, behavior, 4);
        t.row([
            art.profile.name.clone(),
            format!("{:.2}", t1 / 1e6),
            format!("{s2:.2}"),
            format!("{s4:.2}"),
        ]);
    }
    t
}

/// Extra analysis: roofline classification per workload (time-weighted
/// shares of memory-/compute-/overhead-bound kernels). The paper's
/// memory-boundedness finding (§V-B) in roofline terms.
pub fn fig_roofline(profiles: &[WorkloadProfile]) -> Table {
    let mut t = Table::new("Roofline — time share by binding roof (%)");
    t.header(["Workload", "Memory-bound", "Compute-bound", "Overhead-bound"]);
    for p in profiles {
        let (m, c, o) = gnnmark_gpusim::roofline::bound_shares(&p.spec, &p.kernels);
        t.row([p.name.clone(), pct(m), pct(c), pct(o)]);
    }
    t
}

/// Extra analysis: per-epoch training losses (TBD/MLPerf-style
/// convergence view of the profiled runs).
pub fn fig_convergence(runs: &[RunArtifacts]) -> Table {
    let mut t = Table::new("Convergence — mean training loss per epoch");
    let max_epochs = runs.iter().map(|r| r.losses.len()).max().unwrap_or(0);
    let mut header = vec!["Workload".to_string()];
    header.extend((0..max_epochs).map(|e| format!("epoch {e}")));
    t.header(header);
    for r in runs {
        let mut row = vec![r.profile.name.clone()];
        for e in 0..max_epochs {
            row.push(
                r.losses
                    .get(e)
                    .map_or(String::new(), |l| format!("{l:.4}")),
            );
        }
        t.row(row);
    }
    t
}

/// Summary of the profiled runs: kernel counts, modeled times and model
/// sizes — the bookkeeping table characterization reports lead with.
pub fn suite_summary(runs: &[RunArtifacts]) -> Table {
    let mut t = Table::new("Suite summary (per profiled run)");
    t.header([
        "Workload",
        "Epochs",
        "Steps/epoch",
        "Kernels",
        "Kernel time (ms)",
        "Transfer time (ms)",
        "Params (KB)",
        "Final loss",
        "Quality",
    ]);
    for r in runs {
        let p = &r.profile;
        t.row([
            p.name.clone(),
            r.losses.len().to_string(),
            r.steps_per_epoch.to_string(),
            p.kernels.len().to_string(),
            format!("{:.2}", p.total_kernel_time_ns() / 1e6),
            format!("{:.2}", p.transfer_time_ns / 1e6),
            format!("{:.0}", r.grad_bytes as f64 / 1024.0),
            r.losses
                .last()
                .map_or(String::new(), |l| format!("{l:.4}")),
            r.quality
                .map_or(String::new(), |(name, v)| format!("{name} = {v:.3}")),
        ]);
    }
    t
}

/// Full-graph vs mini-batch characterization: per workload, how the
/// operation mix and transfer behavior shift when training moves from
/// whole-graph epochs to fanout-sampled minibatches — the suite-level
/// summary of the neighbor-sampling mode. Sampled paths shed dense
/// decoder work and gain gather/index traffic; the H2D sparsity column
/// shows how much of each mode's feature payload is zeros.
pub fn fig_mode_comparison(fullgraph: &[RunArtifacts], minibatch: &[RunArtifacts]) -> Table {
    let mut t = Table::new("Mode comparison — full-graph vs mini-batch sampling");
    t.header([
        "Workload",
        "Kernel ms (full)",
        "Kernel ms (mb)",
        "Gather+Index % (full)",
        "Gather+Index % (mb)",
        "Top op (full)",
        "Top op (mb)",
        "H2D sparsity % (full)",
        "H2D sparsity % (mb)",
    ]);
    let gather_share = |p: &WorkloadProfile| {
        p.time_share(FigureCategory::Gather) + p.time_share(FigureCategory::IndexSelect)
    };
    let top_op = |p: &WorkloadProfile| {
        FigureCategory::ALL
            .iter()
            .max_by(|a, b| {
                p.time_share(**a)
                    .partial_cmp(&p.time_share(**b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map_or_else(String::new, |c| c.label().to_string())
    };
    for full in fullgraph {
        let name = &full.profile.name;
        let Some(mb) = minibatch.iter().find(|r| &r.profile.name == name) else {
            continue;
        };
        t.row([
            name.clone(),
            format!("{:.2}", full.profile.total_kernel_time_ns() / 1e6),
            format!("{:.2}", mb.profile.total_kernel_time_ns() / 1e6),
            pct(gather_share(&full.profile)),
            pct(gather_share(&mb.profile)),
            top_op(&full.profile),
            top_op(&mb.profile),
            pct(full.profile.mean_sparsity),
            pct(mb.profile.mean_sparsity),
        ]);
    }
    t
}

/// Marker used for workloads absent from a figure (failed, timed out, or
/// restored from checkpoint without a profile).
pub const MISSING_MARKER: &str = "—";

/// Appends one explicit `—` row per missing workload to a workload-keyed
/// table (first header cell `"Workload"`), so degraded suite runs render
/// every workload rather than silently dropping rows. Tables keyed by
/// anything else (per-operation breakdowns, sparsity series) are left
/// untouched.
pub fn append_missing_rows(t: &mut Table, missing: &[gnnmark_workloads::WorkloadKind]) {
    if t.header_cells().first().map(String::as_str) != Some("Workload") {
        return;
    }
    let cols = t.num_cols();
    for kind in missing {
        let mut row = vec![kind.label().to_string()];
        row.extend(std::iter::repeat_n(
            MISSING_MARKER.to_string(),
            cols.saturating_sub(1),
        ));
        t.row(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{run_workload_full, SuiteConfig};
    use gnnmark_workloads::WorkloadKind;

    fn sample_profiles() -> Vec<RunArtifacts> {
        let cfg = SuiteConfig::test();
        vec![
            run_workload_full(WorkloadKind::Tlstm, &cfg).unwrap(),
            run_workload_full(WorkloadKind::ArgaCora, &cfg).unwrap(),
        ]
    }

    #[test]
    fn missing_rows_are_explicit_dashes() {
        let runs = sample_profiles();
        let profiles: Vec<_> = runs.iter().map(|r| r.profile.clone()).collect();
        let mut t = fig4_throughput(&profiles);
        let before = t.num_rows();
        append_missing_rows(&mut t, &[WorkloadKind::Gw, WorkloadKind::Dgcn]);
        assert_eq!(t.num_rows(), before + 2);
        let s = t.to_string();
        assert!(s.contains("GW") && s.contains(MISSING_MARKER), "{s}");
        // Non-workload-keyed tables are untouched.
        let mut per_op = fig4_per_op_throughput(&profiles);
        let before = per_op.num_rows();
        append_missing_rows(&mut per_op, &[WorkloadKind::Gw]);
        assert_eq!(per_op.num_rows(), before);
    }

    #[test]
    fn missing_rows_edge_cases() {
        let runs = sample_profiles();
        let profiles: Vec<_> = runs.iter().map(|r| r.profile.clone()).collect();

        // Empty `missing` is a no-op.
        let mut t = fig4_throughput(&profiles);
        let before = t.num_rows();
        append_missing_rows(&mut t, &[]);
        assert_eq!(t.num_rows(), before);

        // Appended rows are full-width: the label plus a marker for every
        // remaining column, so CSV field counts stay rectangular.
        append_missing_rows(&mut t, &[WorkloadKind::Stgcn]);
        let csv = t.to_csv();
        let header_fields = csv.lines().next().unwrap().split(',').count();
        let last = csv.lines().last().unwrap();
        assert_eq!(last.split(',').count(), header_fields, "{csv}");
        assert!(last.starts_with("STGCN"), "{csv}");
        for field in last.split(',').skip(1) {
            assert_eq!(field, MISSING_MARKER, "{csv}");
        }

        // A headerless table (no "Workload" first column) is untouched.
        let mut bare = Table::new("bare");
        bare.row(["a", "b"]);
        append_missing_rows(&mut bare, &[WorkloadKind::Gw]);
        assert_eq!(bare.num_rows(), 1);
    }

    #[test]
    fn table1_has_all_rows() {
        let t = table1();
        assert_eq!(t.num_rows(), 8);
        assert!(t.to_string().contains("PinSAGE"));
        assert!(t.to_csv().contains("Tree-LSTM"));
    }

    #[test]
    fn figures_render_for_profiles() {
        let runs = sample_profiles();
        let profiles: Vec<_> = runs.iter().map(|r| r.profile.clone()).collect();
        let figs = [
            fig2_time_breakdown(&profiles),
            fig3_instruction_mix(&profiles),
            fig4_throughput(&profiles),
            fig4_per_op_throughput(&profiles),
            fig5_stalls(&profiles),
            fig5_per_op_stalls(&profiles),
            fig6_caches(&profiles),
            fig7_sparsity(&profiles),
            fig6_per_op_caches(&profiles),
        ];
        for f in &figs {
            assert!(f.num_rows() > 0, "{} empty", f.title());
            assert!(!f.to_string().is_empty());
        }
        // Fig 2 rows include the MEAN row.
        assert_eq!(figs[0].num_rows(), profiles.len() + 1);
    }

    #[test]
    fn fig8_renders_series() {
        let runs = sample_profiles();
        let t = fig8_sparsity_series(&runs[1].profile, 16);
        assert!(t.num_rows() > 0);
        assert!(t.title().contains("ARGA"));
    }

    #[test]
    fn fig8_truncates_long_series_to_max_points() {
        let runs = sample_profiles();
        let mut profile = runs[1].profile.clone();
        profile.sparsity_series = (0..1000).map(|i| (i % 100) as f64 / 100.0).collect();

        // A long series is strided down: at most 2·max_points rows (the
        // stride is the floor of len/max_points), and the stride keeps the
        // original transfer indices.
        let t = fig8_sparsity_series(&profile, 24);
        assert!(
            t.num_rows() <= 48 && t.num_rows() >= 24,
            "rows {}",
            t.num_rows()
        );
        let csv = t.to_csv();
        let first_indices: Vec<&str> = csv
            .lines()
            .skip(1)
            .take(3)
            .map(|l| l.split(',').next().unwrap())
            .collect();
        assert_eq!(first_indices, ["0", "41", "82"], "{csv}");

        // A series already within budget is rendered in full.
        profile.sparsity_series = (0..10).map(|i| i as f64 / 10.0).collect();
        assert_eq!(fig8_sparsity_series(&profile, 24).num_rows(), 10);

        // Degenerate budgets must not panic or divide by zero: a zero
        // budget is clamped to one point.
        profile.sparsity_series = (0..5).map(|i| i as f64 / 5.0).collect();
        assert_eq!(fig8_sparsity_series(&profile, 0).num_rows(), 1);
        profile.sparsity_series.clear();
        assert_eq!(fig8_sparsity_series(&profile, 24).num_rows(), 0);
    }

    #[test]
    fn fig9_excludes_arga_and_ranks_scaling() {
        let runs = sample_profiles();
        let t = fig9_scaling(&runs);
        let text = t.to_string();
        assert!(text.contains("excluded")); // ARGA row
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn roofline_and_convergence_render() {
        let runs = sample_profiles();
        let profiles: Vec<_> = runs.iter().map(|r| r.profile.clone()).collect();
        let roof = fig_roofline(&profiles);
        assert_eq!(roof.num_rows(), 2);
        // Shares per row form a distribution.
        for line in roof.to_csv().lines().skip(1) {
            let total: f64 = line
                .split(',')
                .skip(1)
                .map(|v| v.parse::<f64>().unwrap())
                .sum();
            assert!((total - 100.0).abs() < 0.3, "{line}");
        }
        let conv = fig_convergence(&runs);
        assert_eq!(conv.num_rows(), 2);
        assert!(conv.to_string().contains("epoch 0"));
    }

    #[test]
    fn suite_summary_renders() {
        let runs = sample_profiles();
        let t = suite_summary(&runs);
        assert_eq!(t.num_rows(), 2);
        let txt = t.to_string();
        assert!(txt.contains("TLSTM"));
        assert!(txt.contains("Kernel time"));
    }
}
