//! Cooperative graceful shutdown on SIGINT/SIGTERM.
//!
//! Long runs (`gnnmark suite`, `gnnmark serve`) should not lose in-flight
//! artifacts when the user hits Ctrl-C or the scheduler sends SIGTERM.
//! [`install`] registers a minimal async-signal-safe handler that only
//! flips a process-wide [`AtomicBool`]; execution loops poll
//! [`requested`] at safe points (between workloads, between jobs, between
//! accepted connections) and wind down: flush the resilience checkpoint,
//! the telemetry metrics snapshot and the run manifest, then exit.
//!
//! The handler is installed at most once; a second signal while shutdown
//! is already in progress terminates the process immediately (so a double
//! Ctrl-C still kills a wedged process).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

static SHUTDOWN: AtomicBool = AtomicBool::new(false);
static INSTALLED: AtomicBool = AtomicBool::new(false);
static DRAIN_HOOKS: Mutex<Vec<Box<dyn FnOnce() + Send>>> = Mutex::new(Vec::new());

/// Conventional exit code for "terminated by SIGINT" (128 + 2).
pub const EXIT_INTERRUPTED: i32 = 130;

#[cfg(unix)]
mod imp {
    use super::SHUTDOWN;
    use std::sync::atomic::Ordering;

    // `std` already links libc; declaring the two calls we need directly
    // keeps the crate dependency-free.
    extern "C" {
        fn signal(
            signum: std::ffi::c_int,
            handler: extern "C" fn(std::ffi::c_int),
        ) -> usize;
        fn _exit(status: std::ffi::c_int) -> !;
    }

    const SIGINT: std::ffi::c_int = 2;
    const SIGTERM: std::ffi::c_int = 15;

    extern "C" fn on_signal(_signum: std::ffi::c_int) {
        // Async-signal-safe: one atomic swap; a second signal while
        // shutdown is already pending terminates immediately (so a double
        // Ctrl-C still kills a wedged process).
        if SHUTDOWN.swap(true, Ordering::SeqCst) {
            unsafe { _exit(super::EXIT_INTERRUPTED) }
        }
    }

    pub fn install_handlers() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install_handlers() {}
}

/// Installs the SIGINT/SIGTERM handler (idempotent). On non-Unix targets
/// this is a no-op; [`request`] still works for programmatic shutdown.
pub fn install() {
    if !INSTALLED.swap(true, Ordering::SeqCst) {
        imp::install_handlers();
    }
}

/// Whether shutdown has been requested (by signal or [`request`]).
pub fn requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Requests shutdown programmatically — same effect as receiving SIGINT.
/// Used by tests and by the serve daemon's drain path.
pub fn request() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Clears a pending shutdown request. Only for tests — real runs exit.
pub fn reset_for_tests() {
    SHUTDOWN.store(false, Ordering::SeqCst);
}

/// Registers a hook to run when the process drains (graceful shutdown).
///
/// Hooks are NOT run from the signal handler — they run when a draining
/// execution loop calls [`run_drain_hooks`] at a safe point, after
/// in-flight work has finished. The serve daemon uses this for the final
/// write-ahead-log flush and compaction, so a `SIGTERM`'d daemon leaves a
/// clean store behind.
pub fn on_drain(hook: impl FnOnce() + Send + 'static) {
    DRAIN_HOOKS.lock().unwrap().push(Box::new(hook));
}

/// Runs (and consumes) every registered drain hook, in registration
/// order. Idempotent: a second call is a no-op until new hooks register.
pub fn run_drain_hooks() {
    let hooks: Vec<_> = std::mem::take(&mut *DRAIN_HOOKS.lock().unwrap());
    for hook in hooks {
        hook();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_sets_and_reset_clears() {
        reset_for_tests();
        assert!(!requested());
        request();
        assert!(requested());
        reset_for_tests();
        assert!(!requested());
    }

    #[test]
    fn install_is_idempotent() {
        install();
        install();
    }

    #[test]
    fn drain_hooks_run_once_in_order() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Arc;
        let order = Arc::new(Mutex::new(Vec::new()));
        let runs = Arc::new(AtomicUsize::new(0));
        for tag in ["a", "b"] {
            let order = Arc::clone(&order);
            let runs = Arc::clone(&runs);
            on_drain(move || {
                order.lock().unwrap().push(tag);
                runs.fetch_add(1, Ordering::SeqCst);
            });
        }
        run_drain_hooks();
        run_drain_hooks(); // consumed: no double-run
        assert_eq!(*order.lock().unwrap(), vec!["a", "b"]);
        assert_eq!(runs.load(Ordering::SeqCst), 2);
    }
}
