//! Cooperative graceful shutdown on SIGINT/SIGTERM.
//!
//! Long runs (`gnnmark suite`, `gnnmark serve`) should not lose in-flight
//! artifacts when the user hits Ctrl-C or the scheduler sends SIGTERM.
//! [`install`] registers a minimal async-signal-safe handler that only
//! flips a process-wide [`AtomicBool`]; execution loops poll
//! [`requested`] at safe points (between workloads, between jobs, between
//! accepted connections) and wind down: flush the resilience checkpoint,
//! the telemetry metrics snapshot and the run manifest, then exit.
//!
//! The handler is installed at most once; a second signal while shutdown
//! is already in progress terminates the process immediately (so a double
//! Ctrl-C still kills a wedged process).

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);
static INSTALLED: AtomicBool = AtomicBool::new(false);

/// Conventional exit code for "terminated by SIGINT" (128 + 2).
pub const EXIT_INTERRUPTED: i32 = 130;

#[cfg(unix)]
mod imp {
    use super::SHUTDOWN;
    use std::sync::atomic::Ordering;

    // `std` already links libc; declaring the two calls we need directly
    // keeps the crate dependency-free.
    extern "C" {
        fn signal(
            signum: std::ffi::c_int,
            handler: extern "C" fn(std::ffi::c_int),
        ) -> usize;
        fn _exit(status: std::ffi::c_int) -> !;
    }

    const SIGINT: std::ffi::c_int = 2;
    const SIGTERM: std::ffi::c_int = 15;

    extern "C" fn on_signal(_signum: std::ffi::c_int) {
        // Async-signal-safe: one atomic swap; a second signal while
        // shutdown is already pending terminates immediately (so a double
        // Ctrl-C still kills a wedged process).
        if SHUTDOWN.swap(true, Ordering::SeqCst) {
            unsafe { _exit(super::EXIT_INTERRUPTED) }
        }
    }

    pub fn install_handlers() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install_handlers() {}
}

/// Installs the SIGINT/SIGTERM handler (idempotent). On non-Unix targets
/// this is a no-op; [`request`] still works for programmatic shutdown.
pub fn install() {
    if !INSTALLED.swap(true, Ordering::SeqCst) {
        imp::install_handlers();
    }
}

/// Whether shutdown has been requested (by signal or [`request`]).
pub fn requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Requests shutdown programmatically — same effect as receiving SIGINT.
/// Used by tests and by the serve daemon's drain path.
pub fn request() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Clears a pending shutdown request. Only for tests — real runs exit.
pub fn reset_for_tests() {
    SHUTDOWN.store(false, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_sets_and_reset_clears() {
        reset_for_tests();
        assert!(!requested());
        request();
        assert!(requested());
        reset_for_tests();
        assert!(!requested());
    }

    #[test]
    fn install_is_idempotent() {
        install();
        install();
    }
}
