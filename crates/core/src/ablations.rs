//! Ablation studies beyond the paper's figures, covering the design
//! discussions in its takeaways: L1 capacity (cache-bypass discussion),
//! feature width (the MVL→NWP 10× observation, swept continuously),
//! interconnect bandwidth (scaling), and half-precision training (the
//! paper's future-work proposal).


use gnnmark_autograd::{Adam, Optimizer, Tape};
use gnnmark_gpusim::{DdpModel, DeviceSpec, ScalingBehavior};
use gnnmark_graph::datasets::recommendation_with_width;
use gnnmark_nn::{Module, PinSageConv};
use gnnmark_profiler::{FigureCategory, ProfileSession, Table};
use gnnmark_tensor::IntTensor;
use gnnmark_workloads::WorkloadKind;

use crate::suite::{run_workload, run_workload_full, SuiteConfig};
use crate::Result;

fn pct(v: f64) -> String {
    format!("{:.1}", v * 100.0)
}

/// Sweeps L1 capacity for one workload, reporting hit rate and epoch time.
///
/// The paper's takeaway: GNN training's L1 hit rates are so low that
/// larger L1s (or bypassing) are worth exploring.
///
/// # Errors
/// Propagates workload failures.
pub fn ablation_l1_size(kind: WorkloadKind, cfg: &SuiteConfig) -> Result<Table> {
    let mut t = Table::new(format!("Ablation — L1 capacity sweep ({})", kind.label()));
    t.header(["L1 size (KB)", "L1 hit (%)", "L2 hit (%)", "Epoch time (ms)"]);
    for kb in [32u64, 64, 128, 256, 512] {
        let cfg = cfg
            .clone()
            .with_device(DeviceSpec::v100().with_l1_bytes(kb * 1024));
        let p = run_workload(kind, &cfg)?;
        t.row([
            kb.to_string(),
            pct(p.l1_hit_rate()),
            pct(p.l2_hit_rate()),
            format!("{:.2}", p.total_time_ns() / 1e6),
        ]);
    }
    Ok(t)
}

/// Sweeps PSAGE-style item feature width, reporting the element-wise time
/// share — the continuous version of the paper's MVL (36 %) → NWP (78 %)
/// observation.
///
/// # Errors
/// Propagates training failures.
pub fn ablation_feature_width(seed: u64) -> Result<Table> {
    let mut t = Table::new("Ablation — Element-wise share vs item feature width (PSAGE-style)");
    t.header(["Feature width", "ElemWise (%)", "GEMM (%)", "Sort (%)"]);
    for width in [32usize, 64, 128, 256, 640] {
        let data = recommendation_with_width(width, 0.5, seed)?;
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let conv = PinSageConv::new("ablate", width, 32, &mut rng)?;
        let sampler = gnnmark_graph::sampler::RandomWalkSampler::new(16, 3, 6);
        let mut opt = Adam::new(1e-3);
        let mut session = ProfileSession::new("psage-width", DeviceSpec::v100());
        let n_items = data.item_item.num_nodes();
        for _ in 0..4 {
            let seeds: Vec<i64> = (0..64).map(|i| (i * 5 % n_items) as i64).collect();
            let seeds = IntTensor::from_vec(&[64], seeds)?;
            let hoods = sampler.sample(&data.item_item, &seeds, &mut rng);
            let (agg, agg_t, idx) = PinSageConv::build_batch(&hoods, n_items)?;
            conv.params().zero_grad();
            session.begin_step();
            // Sampler bookkeeping sort, as in the full workload.
            let mut ids: Vec<i64> = hoods.iter().flat_map(|h| h.neighbors.clone()).collect();
            ids.extend(seeds.as_slice());
            let ids_len = ids.len();
            let _ = IntTensor::from_vec(&[ids_len], ids)?.argsort()?;
            let tape = Tape::new();
            let feats = tape.constant(data.item_item.features().clone());
            let feats = feats.dropout(0.1, &mut rng)?;
            let norm = feats.square().sum_rows()?.add_scalar(1e-12).sqrt().recip();
            let feats = feats.scale_rows(&norm)?;
            let emb = conv.forward(&tape, &feats, &agg, &agg_t, &idx)?;
            let loss = emb.square().mean_all();
            tape.backward(&loss)?;
            opt.step(&conv.params())?;
            session.end_step();
        }
        let p = session.finish();
        t.row([
            width.to_string(),
            pct(p.time_share(FigureCategory::ElementWise)),
            pct(p.time_share(FigureCategory::Gemm)),
            pct(p.time_share(FigureCategory::Sort)),
        ]);
    }
    Ok(t)
}

/// Sweeps NVLink bandwidth, reporting 4-GPU speedup of a data-parallel
/// workload — how much the paper's scaling results owe to the fast
/// interconnect.
///
/// # Errors
/// Propagates workload failures.
pub fn ablation_nvlink_bandwidth(cfg: &SuiteConfig) -> Result<Table> {
    let mut t = Table::new("Ablation — 4-GPU speedup vs interconnect bandwidth (DGCN)");
    t.header(["Link bandwidth (GB/s)", "4-GPU speedup (×)"]);
    let art = run_workload_full(WorkloadKind::Dgcn, cfg)?;
    let epochs = art.losses.len().max(1) as f64;
    let epoch_ns = art.profile.total_time_ns() / epochs;
    let behavior = art.scaling.unwrap_or(ScalingBehavior::DataParallel);
    for gbps in [12.0f64, 50.0, 100.0, 300.0, 600.0] {
        let ddp = DdpModel::new(DeviceSpec::v100().with_nvlink_gbps(gbps));
        let s = ddp.speedup(epoch_ns, art.steps_per_epoch, art.grad_bytes, behavior, 4);
        t.row([format!("{gbps:.0}"), format!("{s:.2}")]);
    }
    Ok(t)
}

/// Compares fp32 against *measured* f16/bf16 mixed-precision training (the
/// paper's future-work direction): parameters and activations stored at
/// 16 bits with dynamic loss scaling, the forward computed in f32. The
/// legacy modeled row (fp32 numerics on a 2-byte-element device) is kept
/// last for comparison against the measured runs.
///
/// # Errors
/// Propagates workload failures.
pub fn ablation_half_precision(kind: WorkloadKind, cfg: &SuiteConfig) -> Result<Table> {
    use gnnmark_tensor::half::Precision;

    let mut t = Table::new(format!(
        "Ablation — fp32 vs fp16/bf16 storage ({})",
        kind.label()
    ));
    t.header([
        "Precision",
        "Epoch time (ms)",
        "L1 hit (%)",
        "DRAM GB moved",
        "Param KB",
        "Final loss",
    ]);
    let mut measured = |name: &str, art: &crate::suite::RunArtifacts| {
        let p = &art.profile;
        let dram: u64 = p.kernels.iter().map(|k| k.memory.dram_bytes).sum();
        t.row([
            name.to_string(),
            format!("{:.2}", p.total_time_ns() / 1e6),
            pct(p.l1_hit_rate()),
            format!("{:.3}", dram as f64 / 1e9),
            format!("{:.1}", art.grad_bytes as f64 / 1024.0),
            format!("{:.4}", art.losses.last().copied().unwrap_or(f64::NAN)),
        ]);
    };
    for precision in [Precision::Fp32, Precision::Fp16, Precision::Bf16] {
        let cfg = cfg.clone().with_precision(precision);
        let art = run_workload_full(kind, &cfg)?;
        measured(precision.as_str(), &art);
    }
    // Modeled-only comparison row: fp32 numerics on a half-precision device.
    let modeled_cfg = cfg
        .clone()
        .with_device(DeviceSpec::v100().with_half_precision());
    let art = run_workload_full(kind, &modeled_cfg)?;
    measured("fp16 (modeled)", &art);
    Ok(t)
}

/// Compares GNN *inference* against *training* on the same GCN model —
/// the paper's §V-A observation that inference is GEMM-dominated (prior
/// work measured >50 %) while training is not, because backward passes
/// and optimizers add irregular and element-wise kernels.
///
/// The inference arm is *measured*, not modeled: it runs the tape-free
/// tensor-level forward ([`gnnmark_nn::GcnConv::infer`]) under a
/// [`gnnmark_autograd::NoGradGuard`], so it records exactly the kernels a
/// forward-only deployment executes and any autograd activity would be a
/// hard error.
///
/// # Errors
/// Propagates training failures.
pub fn ablation_inference_vs_training(seed: u64) -> Result<Table> {
    use gnnmark_graph::datasets::{citation, CitationKind};
    use gnnmark_nn::gcn::NormAdj;
    use gnnmark_nn::{losses, GcnConv};

    let graph = citation(CitationKind::Cora, 0.25, seed)?;
    let labels = graph.labels().expect("labels").clone();
    let adj = NormAdj::new_symmetric(graph.normalized_adjacency()?);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
    let conv1 = GcnConv::new("inf.gcn1", graph.feature_dim(), 32, &mut rng)?;
    let conv2 = GcnConv::new("inf.gcn2", 32, 7, &mut rng)?;
    let mut params = conv1.params();
    params.extend(&conv2.params());
    let mut opt = Adam::new(5e-3);

    let infer = {
        let _guard = gnnmark_autograd::NoGradGuard::new();
        let mut session = ProfileSession::new("gcn-infer", DeviceSpec::v100());
        for _ in 0..4 {
            session.begin_step();
            let h = conv1.infer(&adj, graph.features())?.relu();
            let logits = conv2.infer(&adj, &h)?;
            let _ = logits.argmax_rows()?;
            session.end_step();
        }
        session.finish()
    };
    let train = {
        let mut session = ProfileSession::new("gcn-train", DeviceSpec::v100());
        for _ in 0..4 {
            params.zero_grad();
            session.begin_step();
            let tape = Tape::new();
            let x = tape.constant(graph.features().clone());
            let h = conv1.forward(&tape, &adj, &x)?.relu();
            let logits = conv2.forward(&tape, &adj, &h)?;
            let loss = losses::cross_entropy(&logits, &labels)?;
            tape.backward(&loss)?;
            opt.step(&params)?;
            session.end_step();
        }
        session.finish()
    };
    let mut t = Table::new("Ablation — Inference vs training operation mix (2-layer GCN)");
    t.header(["Phase", "GEMM+SpMM (%)", "ElemWise (%)", "Irregular (%)", "Kernels"]);
    for p in [&infer, &train] {
        let matmul = p.time_share(FigureCategory::Gemm) + p.time_share(FigureCategory::Spmm);
        let irregular = p.time_share(FigureCategory::Scatter)
            + p.time_share(FigureCategory::Gather)
            + p.time_share(FigureCategory::Reduction)
            + p.time_share(FigureCategory::IndexSelect)
            + p.time_share(FigureCategory::Sort);
        t.row([
            p.name.clone(),
            pct(matmul),
            pct(p.time_share(FigureCategory::ElementWise)),
            pct(irregular),
            p.kernels.len().to_string(),
        ]);
    }
    Ok(t)
}

/// Weak-scaling projection (the paper's future-work direction): per-GPU
/// work held constant while GPUs are added; reports efficiency per
/// workload on 1/2/4 GPUs.
///
/// # Errors
/// Propagates workload failures.
pub fn ablation_weak_scaling(cfg: &SuiteConfig) -> Result<Table> {
    let mut t = Table::new("Ablation — Weak-scaling efficiency (constant per-GPU work)");
    t.header(["Workload", "2 GPUs", "4 GPUs"]);
    for kind in [
        WorkloadKind::Dgcn,
        WorkloadKind::Stgcn,
        WorkloadKind::Tlstm,
        WorkloadKind::PsageMvl,
    ] {
        let art = run_workload_full(kind, cfg)?;
        let Some(behavior) = art.scaling else { continue };
        let ddp = DdpModel::new(DeviceSpec::v100());
        let epoch_ns = art.profile.total_time_ns() / art.losses.len().max(1) as f64;
        let e2 = ddp.weak_efficiency(epoch_ns, art.steps_per_epoch, art.grad_bytes, behavior, 2);
        let e4 = ddp.weak_efficiency(epoch_ns, art.steps_per_epoch, art.grad_bytes, behavior, 4);
        t.row([
            kind.label().to_string(),
            format!("{:.0}%", e2 * 100.0),
            format!("{:.0}%", e4 * 100.0),
        ]);
    }
    Ok(t)
}

/// Profiles ARGA across its three citation datasets — the paper's
/// takeaway that *"a single GNN model can exhibit different
/// characteristics based on the input graph"*, and Table I's listing of
/// Cora/CiteSeer/PubMed for ARGA.
///
/// # Errors
/// Propagates training failures.
pub fn ablation_arga_datasets(cfg: &SuiteConfig) -> Result<Table> {
    use gnnmark_graph::datasets::CitationKind;
    use gnnmark_workloads::arga::Arga;
    use gnnmark_workloads::Workload;

    let mut t = Table::new("Ablation — ARGA across citation datasets");
    t.header([
        "Dataset",
        "Nodes",
        "Feat width",
        "GEMM (%)",
        "SpMM (%)",
        "Reduction (%)",
        "H2D sparsity (%)",
    ]);
    for kind in [CitationKind::Cora, CitationKind::CiteSeer, CitationKind::PubMed] {
        let mut w = Arga::new(kind, cfg.scale, cfg.seed)?;
        let nodes = w.graph().num_nodes();
        let width = w.graph().feature_dim();
        let mut session = ProfileSession::new(w.name(), cfg.device.clone());
        for _ in 0..cfg.epochs {
            w.run_epoch(&mut session)?;
        }
        let p = session.finish();
        t.row([
            kind.name().to_string(),
            nodes.to_string(),
            width.to_string(),
            pct(p.time_share(FigureCategory::Gemm)),
            pct(p.time_share(FigureCategory::Spmm)),
            pct(p.time_share(FigureCategory::Reduction)),
            pct(p.mean_sparsity),
        ]);
    }
    Ok(t)
}

/// Models the paper's headline proposal (§V-D and future work): compress
/// CPU→GPU transfers using the measured zero-value sparsity, and report
/// the payload reduction per workload.
///
/// # Errors
/// Propagates training failures.
pub fn ablation_sparsity_compression(cfg: &SuiteConfig) -> Result<Table> {
    let mut t = Table::new("Ablation — Zero-value compression of H2D transfers");
    t.header([
        "Workload",
        "Sparsity (%)",
        "H2D (KB)",
        "Compressed (KB)",
        "Saved (%)",
    ]);
    for kind in [
        WorkloadKind::PsageMvl,
        WorkloadKind::Stgcn,
        WorkloadKind::Dgcn,
        WorkloadKind::Gw,
        WorkloadKind::ArgaCora,
        WorkloadKind::Tlstm,
    ] {
        let art = run_workload_full(kind, cfg)?;
        let p = &art.profile;
        t.row([
            kind.label().to_string(),
            pct(p.mean_sparsity),
            format!("{:.0}", p.h2d_bytes as f64 / 1024.0),
            format!("{:.0}", p.h2d_compressed_bytes as f64 / 1024.0),
            pct(p.compression_savings()),
        ]);
    }
    Ok(t)
}

/// Cross-device study: the same workload on a modeled V100 vs A100 —
/// does a newer GPU's extra bandwidth, L2 and SM count move GNN training,
/// given the paper's finding that these workloads barely utilize the
/// V100?
///
/// # Errors
/// Propagates workload failures.
pub fn ablation_device_comparison(kind: WorkloadKind, cfg: &SuiteConfig) -> Result<Table> {
    let mut t = Table::new(format!("Ablation — V100 vs A100 ({})", kind.label()));
    t.header(["Device", "Epoch (ms)", "GFLOPS", "L1 hit (%)", "L2 hit (%)"]);
    for device in [DeviceSpec::v100(), DeviceSpec::a100()] {
        let cfg = cfg.clone().with_device(device);
        let art = run_workload_full(kind, &cfg)?;
        let p = &art.profile;
        t.row([
            p.spec.name.clone(),
            format!("{:.2}", p.total_time_ns() / art.losses.len().max(1) as f64 / 1e6),
            format!("{:.0}", p.gflops()),
            pct(p.l1_hit_rate()),
            pct(p.l2_hit_rate()),
        ]);
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1_sweep_produces_monotone_hit_rates() {
        let t = ablation_l1_size(WorkloadKind::Tlstm, &SuiteConfig::test()).unwrap();
        assert_eq!(t.num_rows(), 5);
    }

    #[test]
    fn feature_width_sweep_raises_elementwise_share() {
        let t = ablation_feature_width(3).unwrap();
        assert_eq!(t.num_rows(), 5);
        // Parse first and last ElemWise share from CSV.
        let csv = t.to_csv();
        let rows: Vec<&str> = csv.lines().skip(1).collect();
        let share = |row: &str| -> f64 {
            row.split(',').nth(1).unwrap().parse().unwrap()
        };
        // Compare the paper's MVL/NWP pair: width 64 vs width 640.
        assert!(
            share(rows[4]) > share(rows[1]),
            "wider features must raise element-wise share: {csv}"
        );
    }

    #[test]
    fn nvlink_sweep_is_monotone() {
        let t = ablation_nvlink_bandwidth(&SuiteConfig::test()).unwrap();
        let csv = t.to_csv();
        let speedups: Vec<f64> = csv
            .lines()
            .skip(1)
            .map(|r| r.split(',').nth(1).unwrap().parse().unwrap())
            .collect();
        assert!(speedups.windows(2).all(|w| w[1] >= w[0] - 1e-9), "{csv}");
    }

    #[test]
    fn half_precision_helps() {
        let t = ablation_half_precision(WorkloadKind::ArgaCora, &SuiteConfig::test()).unwrap();
        assert_eq!(t.num_rows(), 4, "fp32, fp16, bf16 measured + modeled row");
        let csv = t.to_csv();
        let col = |row: &str, i: usize| -> f64 { row.split(',').nth(i).unwrap().parse().unwrap() };
        let rows: Vec<&str> = csv.lines().skip(1).collect();
        // Modeled epoch time at the tiny scale is latency- rather than
        // bandwidth-dominated, so only guard against a real slowdown...
        let times: Vec<f64> = rows.iter().map(|r| col(r, 1)).collect();
        assert!(times[1] <= times[0] * 1.15, "fp16 markedly slower: {csv}");
        // ...but the DRAM traffic reduction is unconditional...
        let dram: Vec<f64> = rows.iter().map(|r| col(r, 3)).collect();
        assert!(dram[1] < dram[0], "fp16 must move less DRAM: {csv}");
        // ...and measured 16-bit storage must halve the parameter payload...
        let params: Vec<f64> = rows.iter().map(|r| col(r, 4)).collect();
        assert!(
            (params[1] - params[0] / 2.0).abs() < 1e-6,
            "fp16 params should be half of fp32: {csv}"
        );
        assert!((params[2] - params[1]).abs() < 1e-6, "bf16 == fp16 bytes");
        // ...while training still converges to a finite loss in every mode.
        for r in &rows {
            assert!(col(r, 5).is_finite(), "non-finite final loss: {csv}");
        }
    }

    #[test]
    fn inference_is_more_matmul_dominated_than_training() {
        let t = ablation_inference_vs_training(5).unwrap();
        let csv = t.to_csv();
        let rows: Vec<&str> = csv.lines().skip(1).collect();
        let matmul = |row: &str| -> f64 { row.split(',').nth(1).unwrap().parse().unwrap() };
        assert!(
            matmul(rows[0]) > matmul(rows[1]),
            "inference must be more GEMM/SpMM dominated: {csv}"
        );
    }

    #[test]
    fn weak_scaling_table_renders() {
        let t = ablation_weak_scaling(&SuiteConfig::test()).unwrap();
        assert!(t.num_rows() >= 3);
        assert!(t.to_string().contains("TLSTM"));
    }

    #[test]
    fn arga_dataset_ablation_covers_three_graphs() {
        let t = ablation_arga_datasets(&SuiteConfig::test()).unwrap();
        assert_eq!(t.num_rows(), 3);
        let txt = t.to_string();
        assert!(txt.contains("Cora") && txt.contains("CiteSeer") && txt.contains("PubMed"));
    }

    #[test]
    fn compression_savings_track_sparsity() {
        let cfg = SuiteConfig::test();
        let arga = crate::suite::run_workload_full(WorkloadKind::ArgaCora, &cfg).unwrap();
        let stgcn = crate::suite::run_workload_full(WorkloadKind::Stgcn, &cfg).unwrap();
        // ARGA ships near-empty bag-of-words features; STGCN ships dense
        // traffic signals — compression must separate them sharply.
        assert!(arga.profile.compression_savings() > 0.7,
            "ARGA savings {}", arga.profile.compression_savings());
        assert!(stgcn.profile.compression_savings() < 0.2,
            "STGCN savings {}", stgcn.profile.compression_savings());
        let t = ablation_sparsity_compression(&cfg).unwrap();
        assert_eq!(t.num_rows(), 6);
    }

    #[test]
    fn a100_is_not_slower_than_v100() {
        let t = ablation_device_comparison(WorkloadKind::ArgaCora, &SuiteConfig::test()).unwrap();
        let csv = t.to_csv();
        // Device names contain commas (quoted in CSV); index from the right.
        let times: Vec<f64> = csv
            .lines()
            .skip(1)
            .map(|r| r.rsplit(',').nth(3).unwrap().parse().unwrap())
            .collect();
        assert!(times[1] <= times[0] * 1.02, "A100 {} vs V100 {}", times[1], times[0]);
    }
}
