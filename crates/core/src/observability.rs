//! Run-level observability: metrics collection and artifact export.
//!
//! Bridges the suite layer to [`gnnmark_telemetry`]: after a resilient run,
//! [`collect_run_metrics`] folds the substrate's instrumentation (tensor
//! pool, worker pool, autograd tape, per-workload profiles, resilience
//! outcomes) into the process-wide metrics registry, and
//! [`export_artifacts`] writes whatever the CLI asked for:
//!
//! * a merged Chrome/Perfetto trace (host spans + modeled device lanes),
//! * a JSON metrics snapshot plus a Prometheus text dump beside it,
//! * a `manifest.json` describing the run (seed, scale, threads, device,
//!   per-workload status/wall/modeled time).
//!
//! Everything here is pull-based and runs *after* training, so it adds no
//! overhead to the measured region.

use std::path::{Path, PathBuf};

use gnnmark_telemetry::export::{
    metrics_json, metrics_prometheus, ManifestWorkload, RunManifest,
};
use gnnmark_telemetry::metrics;

use crate::resilience::{scale_name, SuiteReport, WorkloadStatus};
use crate::suite::SuiteConfig;

/// Where to write which artifacts. Every field is optional; the manifest
/// lands in `csv_dir`, else beside the metrics file, else beside the trace.
#[derive(Debug, Clone, Default)]
pub struct ExportPaths {
    /// Merged Chrome trace destination.
    pub trace: Option<PathBuf>,
    /// Metrics snapshot destination (a `.prom` dump is written beside it).
    pub metrics: Option<PathBuf>,
    /// CSV/artifact directory of the run, if any.
    pub csv_dir: Option<PathBuf>,
}

impl ExportPaths {
    /// `true` when nothing was requested.
    pub fn is_empty(&self) -> bool {
        self.trace.is_none() && self.metrics.is_none()
    }

    fn manifest_dir(&self) -> Option<&Path> {
        self.csv_dir
            .as_deref()
            .or_else(|| self.metrics.as_deref().and_then(Path::parent))
            .or_else(|| self.trace.as_deref().and_then(Path::parent))
    }
}

/// Folds every instrumented subsystem into the metrics registry.
///
/// Counters that the run also bumps live (resilience retries/failures) are
/// `counter_set` here from the report, so the registry ends authoritative
/// and re-collecting is idempotent.
pub fn collect_run_metrics(report: &SuiteReport) {
    let pool = gnnmark_tensor::pool::global_stats();
    metrics::counter_set("gnnmark_pool_hits_total", pool.hits);
    metrics::counter_set("gnnmark_pool_misses_total", pool.misses);
    metrics::counter_set("gnnmark_pool_recycled_total", pool.recycled);
    metrics::gauge_set("gnnmark_pool_hit_rate", pool.hit_rate());

    let busy = gnnmark_tensor::par::worker_busy_ns();
    let mut sum_ms = 0.0;
    let mut max_ms: f64 = 0.0;
    for (i, ns) in busy.iter().enumerate() {
        let ms = *ns as f64 / 1e6;
        metrics::gauge_set(&format!("gnnmark_par_worker_busy_ms{{worker=\"{i}\"}}"), ms);
        sum_ms += ms;
        max_ms = max_ms.max(ms);
    }
    // Load imbalance as max/mean busy time: 1.0 = perfectly even, higher =
    // one worker dominating (0.0 when tracking was off or nothing ran).
    let mean_ms = sum_ms / busy.len().max(1) as f64;
    let imbalance = if mean_ms > 0.0 { max_ms / mean_ms } else { 0.0 };
    metrics::gauge_set("gnnmark_par_load_imbalance", imbalance);

    metrics::counter_set(
        "gnnmark_autograd_tape_nodes_total",
        gnnmark_autograd::tape_nodes_recorded(),
    );
    metrics::gauge_set(
        "gnnmark_activation_bytes_peak",
        gnnmark_autograd::activation_bytes_peak() as f64,
    );
    metrics::counter_set(
        "gnnmark_amp_skipped_steps_total",
        gnnmark_autograd::amp::skipped_steps_total(),
    );
    metrics::counter_set(
        "gnnmark_amp_overflows_total",
        gnnmark_autograd::amp::overflows_total(),
    );
    metrics::gauge_set(
        "gnnmark_amp_loss_scale",
        f64::from(gnnmark_autograd::amp::last_loss_scale()),
    );

    let mut param_bytes = 0u64;
    for (_, art) in report.artifacts() {
        param_bytes += art.grad_bytes;
    }
    // Sum of per-workload parameter payloads at storage precision: under
    // `--precision fp16|bf16` this lands at half the fp32 figure.
    metrics::gauge_set("gnnmark_param_bytes_total", param_bytes as f64);

    let mut kernels = 0u64;
    let mut bytes = 0u64;
    let mut sparsity_weighted = 0.0;
    for (kind, art) in report.artifacts() {
        kernels += art.profile.kernels.len() as u64;
        bytes += art.profile.h2d_bytes;
        sparsity_weighted += art.profile.mean_sparsity * art.profile.h2d_bytes as f64;
        metrics::gauge_set(
            &format!("gnnmark_workload_modeled_ms{{workload=\"{}\"}}", kind.label()),
            art.profile.total_time_ns() / 1e6,
        );
    }
    metrics::counter_set("gnnmark_kernels_recorded_total", kernels);
    metrics::counter_set("gnnmark_kernels_simulated_total", kernels);
    metrics::counter_set("gnnmark_transfer_bytes_total", bytes);
    if bytes > 0 {
        metrics::gauge_set(
            "gnnmark_transfer_mean_sparsity",
            sparsity_weighted / bytes as f64,
        );
    }

    let mut retries = 0u64;
    let mut failures = 0u64;
    for o in &report.outcomes {
        retries += o.attempts.saturating_sub(1) as u64;
        if !o.succeeded() {
            failures += 1;
        }
        metrics::gauge_set(
            &format!("gnnmark_workload_wall_ms{{workload=\"{}\"}}", o.kind.label()),
            o.wall.as_secs_f64() * 1e3,
        );
    }
    metrics::counter_set("gnnmark_resilience_retries_total", retries);
    metrics::counter_set("gnnmark_resilience_failures_total", failures);
}

/// Builds the run manifest from a report.
pub fn run_manifest(target: &str, cfg: &SuiteConfig, report: &SuiteReport) -> RunManifest {
    let workloads = report
        .outcomes
        .iter()
        .map(|o| ManifestWorkload {
            name: o.kind.label().to_string(),
            status: o.status.label().to_string(),
            wall_ms: o.wall.as_secs_f64() * 1e3,
            modeled_ms: match &o.status {
                WorkloadStatus::Completed(a) => a.profile.total_time_ns() / 1e6,
                WorkloadStatus::Restored(s) => s.total_time_ns / 1e6,
                _ => 0.0,
            },
            attempts: o.attempts as u32,
        })
        .collect();
    RunManifest {
        target: target.to_string(),
        seed: cfg.seed,
        scale: scale_name(cfg.scale).to_string(),
        threads: cfg.threads.unwrap_or_else(gnnmark_tensor::par::threads),
        device: cfg.device.name.clone(),
        precision: cfg.precision.as_str().to_string(),
        mode: cfg.mode.key(),
        workloads,
        status: if report.all_succeeded() { "ok" } else { "partial" }.to_string(),
    }
}

/// Writes the requested artifacts and returns every path written.
///
/// Drains the host span sink ([`gnnmark_telemetry::take_host_trace`]) for
/// the merged trace, snapshots the metrics registry (after
/// [`collect_run_metrics`]), and drops a `manifest.json` whenever any
/// artifact was requested.
///
/// # Errors
/// Propagates filesystem errors from writing any artifact.
pub fn export_artifacts(
    target: &str,
    cfg: &SuiteConfig,
    report: &SuiteReport,
    paths: &ExportPaths,
) -> std::io::Result<Vec<PathBuf>> {
    let mut written = Vec::new();
    if paths.is_empty() {
        return Ok(written);
    }
    collect_run_metrics(report);
    if let Some(trace_path) = &paths.trace {
        let host = gnnmark_telemetry::take_host_trace();
        let profiles: Vec<_> = report
            .artifacts()
            .into_iter()
            .map(|(_, a)| a.profile.clone())
            .collect();
        let json = gnnmark_profiler::to_merged_chrome_trace(&host, &profiles);
        write_creating_dir(trace_path, &json)?;
        written.push(trace_path.clone());
    }
    if let Some(metrics_path) = &paths.metrics {
        let snap = metrics::snapshot();
        write_creating_dir(metrics_path, &metrics_json(&snap))?;
        written.push(metrics_path.clone());
        let prom_path = prom_path_for(metrics_path);
        write_creating_dir(&prom_path, &metrics_prometheus(&snap))?;
        written.push(prom_path);
    }
    if let Some(dir) = paths.manifest_dir() {
        let manifest_path = if dir.as_os_str().is_empty() {
            PathBuf::from("manifest.json")
        } else {
            dir.join("manifest.json")
        };
        let manifest = run_manifest(target, cfg, report);
        write_creating_dir(&manifest_path, &manifest.to_json())?;
        written.push(manifest_path);
    }
    Ok(written)
}

/// `metrics.json` → `metrics.json.prom` (appended, not replaced, so two
/// metrics files in one directory never collide on the dump name).
fn prom_path_for(metrics_path: &Path) -> PathBuf {
    let mut s = metrics_path.as_os_str().to_os_string();
    s.push(".prom");
    PathBuf::from(s)
}

fn write_creating_dir(path: &Path, contents: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, contents)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resilience::{run_workload_resilient, ResilienceConfig};
    use gnnmark_telemetry::export::validate_json;
    use gnnmark_workloads::WorkloadKind;

    fn tiny_report() -> SuiteReport {
        let cfg = SuiteConfig::test();
        let o = run_workload_resilient(WorkloadKind::Tlstm, &cfg, &ResilienceConfig::default());
        SuiteReport { outcomes: vec![o] }
    }

    #[test]
    fn collect_run_metrics_populates_registry() {
        let report = tiny_report();
        collect_run_metrics(&report);
        let snap = metrics::snapshot();
        let has = |name: &str| snap.iter().any(|(k, _)| k == name);
        for name in [
            "gnnmark_pool_hit_rate",
            "gnnmark_kernels_recorded_total",
            "gnnmark_transfer_bytes_total",
            "gnnmark_resilience_retries_total",
            "gnnmark_workload_wall_ms{workload=\"TLSTM\"}",
            "gnnmark_workload_modeled_ms{workload=\"TLSTM\"}",
        ] {
            assert!(has(name), "missing metric {name}");
        }
        // Idempotent: collecting twice leaves the counters unchanged.
        let before = metrics::get("gnnmark_kernels_recorded_total");
        collect_run_metrics(&report);
        assert_eq!(metrics::get("gnnmark_kernels_recorded_total"), before);
    }

    #[test]
    fn export_artifacts_writes_trace_metrics_and_manifest() {
        let dir = std::env::temp_dir().join(format!("gnnmark_obs_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let report = tiny_report();
        let cfg = SuiteConfig::test();
        let paths = ExportPaths {
            trace: Some(dir.join("trace.json")),
            metrics: Some(dir.join("metrics.json")),
            csv_dir: None,
        };
        let written = export_artifacts("tlstm", &cfg, &report, &paths).unwrap();
        assert_eq!(written.len(), 4, "{written:?}"); // trace, metrics, prom, manifest
        for p in &written {
            assert!(p.exists(), "{p:?} not written");
        }
        let trace = std::fs::read_to_string(dir.join("trace.json")).unwrap();
        validate_json(&trace).expect("trace is valid JSON");
        let metrics_text = std::fs::read_to_string(dir.join("metrics.json")).unwrap();
        validate_json(&metrics_text).expect("metrics snapshot is valid JSON");
        assert!(metrics_text.contains("gnnmark_pool_hit_rate"), "{metrics_text}");
        let prom = std::fs::read_to_string(dir.join("metrics.json.prom")).unwrap();
        assert!(prom.contains("# TYPE gnnmark_pool_hits_total counter"), "{prom}");
        let manifest = std::fs::read_to_string(dir.join("manifest.json")).unwrap();
        validate_json(&manifest).expect("manifest is valid JSON");
        for field in ["\"target\": \"tlstm\"", "\"scale\": \"test\"", "\"workloads\": ["] {
            assert!(manifest.contains(field), "missing {field} in {manifest}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn export_artifacts_noop_when_nothing_requested() {
        let report = tiny_report();
        let cfg = SuiteConfig::test();
        let written =
            export_artifacts("tlstm", &cfg, &report, &ExportPaths::default()).unwrap();
        assert!(written.is_empty());
    }
}
