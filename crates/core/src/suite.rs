//! Suite execution: build workloads, train them under profiling sessions.

use gnnmark_gpusim::stream::{CapturedRun, CapturedStream, ReplayMeta};
use gnnmark_gpusim::DeviceSpec;
use gnnmark_profiler::{ProfileSession, WorkloadProfile};
use gnnmark_tensor::half::{Precision, PrecisionGuard};
use gnnmark_workloads::{Scale, TrainMode, WorkloadKind};

use crate::Result;

/// Configuration of a suite run.
#[derive(Debug, Clone)]
pub struct SuiteConfig {
    /// Problem size.
    pub scale: Scale,
    /// Training epochs profiled per workload.
    pub epochs: usize,
    /// Dataset / initialization seed.
    pub seed: u64,
    /// The modeled device.
    pub device: DeviceSpec,
    /// CPU threads for the tensor kernels (`None` = keep the process-wide
    /// setting: `GNNMARK_THREADS` or the detected core count). Results are
    /// bit-identical at every thread count; only wall-clock changes.
    pub threads: Option<usize>,
    /// Storage precision for parameters and activations (the CLI's
    /// `--precision`). f16/bf16 runs train with real quantized storage and
    /// dynamic loss scaling, and model the device at 2-byte elements.
    pub precision: Precision,
    /// Training mode (the CLI's `--mode`): full-graph or mini-batch
    /// neighbor sampling with a configurable batch size and fanouts.
    pub mode: TrainMode,
}

impl SuiteConfig {
    /// Tiny configuration for unit tests.
    pub fn test() -> Self {
        SuiteConfig {
            scale: Scale::Test,
            epochs: 1,
            seed: 42,
            device: DeviceSpec::v100(),
            threads: None,
            precision: Precision::Fp32,
            mode: TrainMode::FullGraph,
        }
    }

    /// Default figure-generation configuration (matches the paper's
    /// methodology of profiling a bounded window of training).
    pub fn small() -> Self {
        SuiteConfig {
            scale: Scale::Small,
            epochs: 2,
            seed: 42,
            device: DeviceSpec::v100(),
            threads: None,
            precision: Precision::Fp32,
            mode: TrainMode::FullGraph,
        }
    }

    /// The largest configuration the CPU substrate sustains.
    pub fn paper() -> Self {
        SuiteConfig {
            scale: Scale::Paper,
            epochs: 1,
            seed: 42,
            device: DeviceSpec::v100(),
            threads: None,
            precision: Precision::Fp32,
            mode: TrainMode::FullGraph,
        }
    }

    /// Replaces the device (ablations).
    pub fn with_device(mut self, device: DeviceSpec) -> Self {
        self.device = device;
        self
    }

    /// Sets the kernel thread count (the CLI's `--threads`).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Sets the storage precision (the CLI's `--precision`).
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Sets the training mode (the CLI's `--mode` / `--batch-size` /
    /// `--fanout`).
    pub fn with_mode(mut self, mode: TrainMode) -> Self {
        self.mode = mode;
        self
    }
}

/// Extra results captured alongside a profile.
#[derive(Debug, Clone)]
pub struct RunArtifacts {
    /// The profile itself.
    pub profile: WorkloadProfile,
    /// Per-epoch mean training losses.
    pub losses: Vec<f64>,
    /// Optimizer steps per epoch (DDP all-reduces).
    pub steps_per_epoch: u64,
    /// Gradient payload per step, bytes.
    pub grad_bytes: u64,
    /// How the workload scales under DDP (`None` = excluded).
    pub scaling: Option<gnnmark_gpusim::ScalingBehavior>,
    /// Task-quality metric after training, if the workload defines one.
    pub quality: Option<(&'static str, f64)>,
}

/// Trains and profiles one workload, returning its profile.
///
/// # Errors
/// Propagates workload construction or training errors.
pub fn run_workload(kind: WorkloadKind, cfg: &SuiteConfig) -> Result<WorkloadProfile> {
    Ok(run_workload_full(kind, cfg)?.profile)
}

/// Trains and profiles one workload, returning the profile plus training
/// metadata needed by the scaling model.
///
/// # Errors
/// Propagates workload construction or training errors, annotated with the
/// workload label (see [`gnnmark_tensor::TensorError::InWorkload`]).
pub fn run_workload_full(kind: WorkloadKind, cfg: &SuiteConfig) -> Result<RunArtifacts> {
    run_workload_full_inner(kind, cfg, false)
        .map(|(art, _)| art)
        .map_err(|e| e.in_workload(kind.label()))
}

/// Trains and profiles one workload with op-stream capture enabled,
/// returning the artifacts plus a serializable [`CapturedRun`] that can be
/// replayed under other device configs without retraining (the unit stored
/// by the `gnnmark-serve` replay cache).
///
/// # Errors
/// Propagates workload construction or training errors, annotated with the
/// workload label.
pub fn run_workload_captured(
    kind: WorkloadKind,
    cfg: &SuiteConfig,
) -> Result<(RunArtifacts, CapturedRun)> {
    let (artifacts, stream) = run_workload_full_inner(kind, cfg, true)
        .map_err(|e| e.in_workload(kind.label()))?;
    let stream = stream.expect("capture was requested");
    let run = CapturedRun {
        meta: ReplayMeta {
            workload: kind.label().to_string(),
            scale: cfg.scale.label().to_string(),
            mode: cfg.mode.key(),
            phase: "train".to_string(),
            seed: cfg.seed,
            epochs: cfg.epochs as u32,
            steps_per_epoch: artifacts.steps_per_epoch,
            grad_bytes: artifacts.grad_bytes,
            losses: artifacts.losses.clone(),
            scaling: artifacts.scaling,
            quality: artifacts.quality,
        },
        stream,
    };
    Ok((artifacts, run))
}

/// Rebuilds [`RunArtifacts`] from a captured run replayed on `device` —
/// the profile a live training run on that device would have produced,
/// without retraining. Training metadata (losses, quality, scaling) is
/// device-independent and comes straight from the capture.
pub fn artifacts_from_replay(run: &CapturedRun, device: &DeviceSpec) -> RunArtifacts {
    let profile = gnnmark_profiler::replay_profile(
        run.meta.workload.clone(),
        device.clone(),
        &run.stream,
    );
    RunArtifacts {
        profile,
        losses: run.meta.losses.clone(),
        steps_per_epoch: run.meta.steps_per_epoch,
        grad_bytes: run.meta.grad_bytes,
        scaling: run.meta.scaling,
        quality: run.meta.quality,
    }
}

/// Disables thread-local loss scaling on drop (panic-safe, like
/// [`PrecisionGuard`]) so a pooled worker thread never leaks AMP state into
/// the next workload it runs.
struct AmpOff;

impl Drop for AmpOff {
    fn drop(&mut self) {
        gnnmark_autograd::amp::disable();
    }
}

/// Thread-local mixed-precision state for one workload run, installed
/// *before* the workload builds so its parameters get 16-bit master
/// storage and every tape activation rounds on store. Holds the RAII
/// guards until dropped; both the direct [`run_workload_full`] path and
/// the resilient suite's per-attempt worker threads install one.
pub(crate) struct PrecisionSetup {
    _precision: PrecisionGuard,
    _amp: AmpOff,
    /// The modeled device, switched to 2-byte elements under a reduced
    /// precision (halved memory traffic, doubled effective cache
    /// capacity) unless the caller already chose a half-precision device.
    pub device: gnnmark_gpusim::DeviceSpec,
}

impl PrecisionSetup {
    pub fn install(cfg: &SuiteConfig) -> Self {
        let precision = PrecisionGuard::new(cfg.precision);
        gnnmark_autograd::amp::enable(cfg.precision);
        let device = if cfg.precision != Precision::Fp32 && cfg.device.elem_bytes == 4 {
            cfg.device.clone().with_half_precision()
        } else {
            cfg.device.clone()
        };
        PrecisionSetup {
            _precision: precision,
            _amp: AmpOff,
            device,
        }
    }
}

fn run_workload_full_inner(
    kind: WorkloadKind,
    cfg: &SuiteConfig,
    capture: bool,
) -> Result<(RunArtifacts, Option<CapturedStream>)> {
    if let Some(t) = cfg.threads {
        gnnmark_tensor::par::set_threads(t);
    }
    // Loss scaling rides along with the precision; both are thread-local
    // and the guards restore fp32 even if training panics on a pooled
    // thread.
    let setup = PrecisionSetup::install(cfg);
    let device = setup.device.clone();
    let _wl = gnnmark_telemetry::span!(format!("workload:{}", kind.label()));
    let mut w = {
        let _build = gnnmark_telemetry::span!("build");
        kind.build_mode(cfg.scale, cfg.seed, &cfg.mode)?
    };
    let mut session = ProfileSession::new(kind.label(), device);
    if capture {
        session.enable_capture();
    }
    let mut losses = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        let _ep = gnnmark_telemetry::span!("epoch");
        // Progress wants per-epoch wall/modeled deltas; only read clocks
        // when it is on (training math never observes them either way).
        let t0 = gnnmark_telemetry::progress_enabled().then(std::time::Instant::now);
        let modeled_before = session.modeled_time_ns();
        let loss = w.run_epoch(&mut session)?;
        losses.push(loss);
        if let Some(t0) = t0 {
            let pool = gnnmark_tensor::pool::global_stats();
            eprintln!(
                "[{}] epoch {}/{}: loss {:.4}  wall {:.1} ms  modeled {:.1} ms  pool hit {:.1}%",
                kind.label(),
                epoch + 1,
                cfg.epochs,
                loss,
                t0.elapsed().as_secs_f64() * 1e3,
                (session.modeled_time_ns() - modeled_before) / 1e6,
                pool.hit_rate() * 100.0,
            );
        }
    }
    let quality = w.quality()?;
    let (profile, stream) = if capture {
        let (p, s) = session.finish_captured();
        (p, Some(s))
    } else {
        (session.finish(), None)
    };
    Ok((
        RunArtifacts {
            profile,
            losses,
            steps_per_epoch: w.steps_per_epoch(),
            grad_bytes: w.params().total_bytes(),
            scaling: w.scaling_behavior(),
            quality,
        },
        stream,
    ))
}

/// Runs the whole suite (every workload of the paper's figures) and
/// returns the artifacts in [`WorkloadKind::ALL`] order.
///
/// # Errors
/// Propagates the first workload failure.
pub fn run_suite(cfg: &SuiteConfig) -> Result<Vec<RunArtifacts>> {
    WorkloadKind::ALL
        .iter()
        .map(|&k| run_workload_full(k, cfg))
        .collect()
}

/// Renders a panic payload (the `Box<dyn Any>` from a joined thread) as the
/// panic message when it is a string, or a placeholder otherwise.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs the whole suite with one OS thread per workload (op recording is
/// thread-local, so runs are fully independent); results come back in
/// [`WorkloadKind::ALL`] order and are bit-identical to [`run_suite`].
///
/// # Errors
/// Propagates the first workload failure. A panicking worker becomes an
/// `Err` naming the panicking workload — it never takes down the caller.
/// For a run that *always* completes and reports per-workload status
/// instead, see [`crate::resilience::run_suite_resilient`].
pub fn run_suite_parallel(cfg: &SuiteConfig) -> Result<Vec<RunArtifacts>> {
    let results: Vec<Result<RunArtifacts>> = std::thread::scope(|scope| {
        let handles: Vec<_> = WorkloadKind::ALL
            .iter()
            .map(|&kind| {
                let cfg = cfg.clone();
                scope.spawn(move || run_workload_full(kind, &cfg))
            })
            .collect();
        WorkloadKind::ALL
            .iter()
            .zip(handles)
            .map(|(&kind, h)| {
                h.join().unwrap_or_else(|payload| {
                    Err(gnnmark_tensor::TensorError::InvalidArgument {
                        op: "run_suite_parallel",
                        reason: format!("worker panicked: {}", panic_message(payload.as_ref())),
                    }
                    .in_workload(kind.label()))
                })
            })
            .collect()
    });
    results.into_iter().collect()
}

/// Result of a time-to-train measurement (the MLPerf-style metric the
/// paper plans to adopt in its future work, §VII).
#[derive(Debug, Clone, PartialEq)]
pub struct TimeToTrain {
    /// Epochs needed to reach the target (`None` if never reached).
    pub epochs: Option<usize>,
    /// Modeled GPU time spent, nanoseconds (up to the reaching epoch, or
    /// all of `max_epochs` when the target was missed).
    pub modeled_ns: f64,
    /// The loss trajectory that was observed.
    pub losses: Vec<f64>,
}

/// Trains a workload until its epoch loss falls below `target_loss` (or
/// `max_epochs` elapse) and reports the modeled time to get there — the
/// "time-to-train" metric of MLPerf that the paper lists as future work.
///
/// # Errors
/// Propagates workload failures.
pub fn time_to_target(
    kind: WorkloadKind,
    cfg: &SuiteConfig,
    target_loss: f64,
    max_epochs: usize,
) -> Result<TimeToTrain> {
    let mut w = kind.build_mode(cfg.scale, cfg.seed, &cfg.mode)?;
    let mut session = ProfileSession::new(kind.label(), cfg.device.clone());
    let mut losses = Vec::new();
    let mut reached = None;
    for epoch in 0..max_epochs {
        let loss = w.run_epoch(&mut session)?;
        losses.push(loss);
        if loss <= target_loss {
            reached = Some(epoch + 1);
            break;
        }
    }
    let profile = session.finish();
    Ok(TimeToTrain {
        epochs: reached,
        modeled_ns: profile.total_time_ns(),
        losses,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_workload_produces_profile() {
        let cfg = SuiteConfig::test();
        let art = run_workload_full(WorkloadKind::Tlstm, &cfg).unwrap();
        assert_eq!(art.losses.len(), 1);
        assert!(art.profile.kernels.len() > 10);
        assert!(art.grad_bytes > 0);
        assert!(art.steps_per_epoch > 0);
        assert!(art.scaling.is_some());
    }

    #[test]
    fn time_to_target_reports_epochs_or_miss() {
        let cfg = SuiteConfig::test();
        // An absurdly high target is hit on epoch 1.
        let easy = time_to_target(WorkloadKind::Tlstm, &cfg, 1e9, 4).unwrap();
        assert_eq!(easy.epochs, Some(1));
        assert_eq!(easy.losses.len(), 1);
        assert!(easy.modeled_ns > 0.0);
        // An impossible target runs out the budget.
        let hard = time_to_target(WorkloadKind::Tlstm, &cfg, -1.0, 2).unwrap();
        assert_eq!(hard.epochs, None);
        assert_eq!(hard.losses.len(), 2);
        assert!(hard.modeled_ns > easy.modeled_ns);
    }

    #[test]
    fn captured_run_replays_to_identical_artifacts() {
        let cfg = SuiteConfig::test();
        let (live, run) = run_workload_captured(WorkloadKind::Tlstm, &cfg).unwrap();
        assert_eq!(run.meta.workload, "TLSTM");
        assert_eq!(run.meta.scale, "test");
        assert_eq!(run.meta.losses, live.losses);
        // Roundtrip through the serialized form, then replay on the same
        // device: profile must match the live run bit-for-bit.
        let back = CapturedRun::from_bytes(&run.to_bytes()).unwrap();
        let replayed = artifacts_from_replay(&back, &cfg.device);
        assert_eq!(replayed.profile.kernels.len(), live.profile.kernels.len());
        assert_eq!(
            replayed.profile.total_time_ns().to_bits(),
            live.profile.total_time_ns().to_bits()
        );
        assert_eq!(replayed.losses, live.losses);
        assert_eq!(replayed.grad_bytes, live.grad_bytes);
        // Replaying under a different device yields different timing from
        // the very same capture — the point of the cache.
        let ablated = artifacts_from_replay(&back, &DeviceSpec::a100());
        assert!(
            ablated.profile.total_kernel_time_ns() < live.profile.total_kernel_time_ns()
        );
    }

    #[test]
    fn configs_differ_in_scale() {
        assert_eq!(SuiteConfig::test().scale, Scale::Test);
        assert_eq!(SuiteConfig::small().scale, Scale::Small);
        assert_eq!(SuiteConfig::paper().scale, Scale::Paper);
        let custom = SuiteConfig::test().with_device(DeviceSpec::v100().with_half_precision());
        assert_eq!(custom.device.elem_bytes, 2);
    }
}
