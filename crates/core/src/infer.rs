//! Forward-only inference characterization (`gnnmark infer`).
//!
//! Training characterization is the paper's subject, but its §V-A framing
//! leans on a contrast: prior GPU studies of GNN *inference* measured
//! GEMM-dominated execution (>50 %), while training adds backward passes
//! and optimizers full of irregular and element-wise kernels. This module
//! measures that contrast instead of modeling it: every workload runs a
//! tape-free, optimizer-free forward pass ([`gnnmark_workloads::Workload::infer`])
//! under a [`NoGradGuard`], so any stray autograd activity is a hard error
//! and the zero-tape-allocation accounting below is enforced, not assumed.
//!
//! Two batch shapes are measured through the gpusim timing model:
//!
//! * **batch-1 latency** — repeated [`InferBatch::Single`] steps; each
//!   step's modeled nanoseconds is one latency sample.
//! * **batched throughput** — repeated [`InferBatch::Full`] steps at the
//!   workload's training batch size; items per modeled second.
//!
//! Runs can be captured ([`run_infer_captured`]) into the same replay
//! format training uses, with [`ReplayMeta::phase`] set to `"infer"` so
//! the serve cache never conflates the two stream populations.

use gnnmark_autograd::{tape_nodes_recorded, NoGradGuard};
use gnnmark_gpusim::stream::{CapturedRun, CapturedStream, ReplayMeta};
use gnnmark_profiler::{FigureCategory, Table, WorkloadProfile};
use gnnmark_profiler::ProfileSession;
use gnnmark_workloads::{InferBatch, WorkloadKind};

use crate::suite::{PrecisionSetup, SuiteConfig};
use crate::Result;

/// Execution phase of a captured op stream: the training loop (forward +
/// backward + optimizer) or the forward-only inference path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecPhase {
    /// Full training steps.
    Train,
    /// Tape-free forward-only inference steps.
    Infer,
}

impl ExecPhase {
    /// Stable string key (serialized into [`ReplayMeta::phase`] and cache
    /// key digests).
    pub fn as_str(self) -> &'static str {
        match self {
            ExecPhase::Train => "train",
            ExecPhase::Infer => "infer",
        }
    }

    /// Parses [`ExecPhase::as_str`] output (case-insensitive).
    pub fn parse(s: &str) -> Option<ExecPhase> {
        match s.to_ascii_lowercase().as_str() {
            "train" => Some(ExecPhase::Train),
            "infer" => Some(ExecPhase::Infer),
            _ => None,
        }
    }
}

impl std::fmt::Display for ExecPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Configuration of one inference characterization run.
#[derive(Debug, Clone)]
pub struct InferConfig {
    /// Scale / seed / device / threads / precision / mode, shared with the
    /// training suite so inference measures the same models and datasets.
    pub suite: SuiteConfig,
    /// Batch-1 latency samples ([`InferBatch::Single`] steps).
    pub batch1_steps: usize,
    /// Batched-throughput steps ([`InferBatch::Full`]).
    pub batched_steps: usize,
}

impl InferConfig {
    /// Wraps a suite config with the default step counts.
    pub fn new(suite: SuiteConfig) -> Self {
        InferConfig {
            suite,
            batch1_steps: 8,
            batched_steps: 4,
        }
    }

    /// Tiny configuration for unit tests.
    pub fn test() -> Self {
        InferConfig {
            suite: SuiteConfig::test(),
            batch1_steps: 2,
            batched_steps: 1,
        }
    }
}

/// Results of one forward-only inference run.
#[derive(Debug, Clone)]
pub struct InferArtifacts {
    /// Aggregate profile over every inference step (both batch shapes).
    pub profile: WorkloadProfile,
    /// Per-step modeled latency of the batch-1 steps, nanoseconds.
    pub batch1_latency_ns: Vec<f64>,
    /// Per-step modeled time of the batched steps, nanoseconds.
    pub batched_step_ns: Vec<f64>,
    /// Items scored per batched step ([`gnnmark_workloads::Workload::infer_items`]).
    pub batched_items: u64,
    /// Per-step forward losses, batch-1 steps first then batched steps.
    /// Device-independent; the batched loss bit-equals training-eval
    /// (`probe`) forward loss at fp32.
    pub losses: Vec<f64>,
    /// Autodiff tape nodes recorded process-wide during the run. Always 0
    /// in a pure-inference process; the thread-level guarantee is stronger
    /// still (any tape push under the [`NoGradGuard`] panics).
    pub tape_nodes: u64,
}

impl InferArtifacts {
    /// Mean batch-1 latency, nanoseconds.
    pub fn batch1_mean_ns(&self) -> f64 {
        if self.batch1_latency_ns.is_empty() {
            return 0.0;
        }
        self.batch1_latency_ns.iter().sum::<f64>() / self.batch1_latency_ns.len() as f64
    }

    /// Nearest-rank percentile of the batch-1 latency samples, `q` in 0–1.
    pub fn batch1_percentile_ns(&self, q: f64) -> f64 {
        percentile(&self.batch1_latency_ns, q)
    }

    /// Batched throughput in items per modeled second.
    pub fn batched_throughput(&self) -> f64 {
        let total_ns: f64 = self.batched_step_ns.iter().sum();
        if total_ns <= 0.0 {
            return 0.0;
        }
        (self.batched_items * self.batched_step_ns.len() as u64) as f64 / (total_ns / 1e9)
    }
}

/// Nearest-rank percentile over unsorted samples, `q` in 0–1.
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank.min(sorted.len()) - 1]
}

/// Runs one workload forward-only and returns its inference metrics.
///
/// # Errors
/// Propagates workload construction or forward errors, annotated with the
/// workload label; any autograd tape activity panics (see [`NoGradGuard`]).
pub fn run_infer_workload(kind: WorkloadKind, cfg: &InferConfig) -> Result<InferArtifacts> {
    run_infer_inner(kind, cfg, false)
        .map(|(art, _)| art)
        .map_err(|e| e.in_workload(kind.label()))
}

/// Runs one workload forward-only with op-stream capture, returning the
/// metrics plus a serializable [`CapturedRun`] whose metadata carries
/// `phase = "infer"` — the unit the serve replay cache stores for
/// inference jobs.
///
/// # Errors
/// Propagates workload construction or forward errors.
pub fn run_infer_captured(
    kind: WorkloadKind,
    cfg: &InferConfig,
) -> Result<(InferArtifacts, CapturedRun)> {
    let (artifacts, stream) =
        run_infer_inner(kind, cfg, true).map_err(|e| e.in_workload(kind.label()))?;
    let stream = stream.expect("capture was requested");
    let run = CapturedRun {
        meta: ReplayMeta {
            workload: kind.label().to_string(),
            scale: cfg.suite.scale.label().to_string(),
            mode: cfg.suite.mode.key(),
            phase: ExecPhase::Infer.as_str().to_string(),
            seed: cfg.suite.seed,
            // There is no epoch loop in inference; the field carries the
            // batched-step count so cache keys (whose `epochs` doubles as
            // that count for infer jobs) cross-check cleanly on load.
            epochs: cfg.batched_steps as u32,
            steps_per_epoch: (cfg.batch1_steps + cfg.batched_steps) as u64,
            grad_bytes: 0,
            losses: artifacts.losses.clone(),
            scaling: None,
            quality: None,
        },
        stream,
    };
    Ok((artifacts, run))
}

fn run_infer_inner(
    kind: WorkloadKind,
    cfg: &InferConfig,
    capture: bool,
) -> Result<(InferArtifacts, Option<CapturedStream>)> {
    if let Some(t) = cfg.suite.threads {
        gnnmark_tensor::par::set_threads(t);
    }
    let setup = PrecisionSetup::install(&cfg.suite);
    let device = setup.device.clone();
    let _wl = gnnmark_telemetry::span!(format!("infer:{}", kind.label()));
    let mut w = {
        let _build = gnnmark_telemetry::span!("build");
        kind.build_mode(cfg.suite.scale, cfg.suite.seed, &cfg.suite.mode)?
    };
    let mut session = ProfileSession::new(kind.label(), device);
    if capture {
        session.enable_capture();
    }
    let nodes_before = tape_nodes_recorded();
    // Everything below runs in inference mode: a single tape push anywhere
    // in the forward path is a panic, not a silent allocation.
    let _guard = NoGradGuard::new();
    let mut batch1_latency_ns = Vec::with_capacity(cfg.batch1_steps);
    let mut batched_step_ns = Vec::with_capacity(cfg.batched_steps);
    let mut losses = Vec::with_capacity(cfg.batch1_steps + cfg.batched_steps);
    for _ in 0..cfg.batch1_steps {
        let before = session.modeled_time_ns();
        session.begin_step();
        let loss = w.infer(InferBatch::Single)?;
        session.end_step();
        batch1_latency_ns.push(session.modeled_time_ns() - before);
        losses.push(loss);
    }
    for _ in 0..cfg.batched_steps {
        let before = session.modeled_time_ns();
        session.begin_step();
        let loss = w.infer(InferBatch::Full)?;
        session.end_step();
        batched_step_ns.push(session.modeled_time_ns() - before);
        losses.push(loss);
    }
    let tape_nodes = tape_nodes_recorded().saturating_sub(nodes_before);
    let batched_items = w.infer_items(InferBatch::Full);
    let (profile, stream) = if capture {
        let (p, s) = session.finish_captured();
        (p, Some(s))
    } else {
        (session.finish(), None)
    };
    Ok((
        InferArtifacts {
            profile,
            batch1_latency_ns,
            batched_step_ns,
            batched_items,
            losses,
            tape_nodes,
        },
        stream,
    ))
}

/// Runs the whole suite forward-only, in [`WorkloadKind::ALL`] order.
///
/// # Errors
/// Propagates the first workload failure.
pub fn run_infer_suite(cfg: &InferConfig) -> Result<Vec<InferArtifacts>> {
    WorkloadKind::ALL
        .iter()
        .map(|&k| run_infer_workload(k, cfg))
        .collect()
}

fn pct(x: f64) -> String {
    format!("{:.1}", x * 100.0)
}

/// Measured inference-vs-training *operation mix*: for each workload, the
/// time share of dense math, element-wise and irregular kernel classes in
/// the forward-only stream next to the training stream. The measured
/// counterpart of the paper's §V-A inference contrast.
pub fn infer_vs_train_op_mix(
    infer: &[WorkloadProfile],
    train: &[WorkloadProfile],
) -> Table {
    let mut t = Table::new("Inference vs training — operation mix (measured)");
    t.header([
        "Workload",
        "Phase",
        "GEMM+SpMM (%)",
        "Conv+BN (%)",
        "ElemWise (%)",
        "Irregular (%)",
        "Kernels",
    ]);
    for (ip, tp) in infer.iter().zip(train) {
        for (phase, p) in [("infer", ip), ("train", tp)] {
            let dense = p.time_share(FigureCategory::Gemm) + p.time_share(FigureCategory::Spmm);
            let conv = p.time_share(FigureCategory::Conv2d)
                + p.time_share(FigureCategory::BatchNorm);
            let irregular = p.time_share(FigureCategory::Scatter)
                + p.time_share(FigureCategory::Gather)
                + p.time_share(FigureCategory::Reduction)
                + p.time_share(FigureCategory::IndexSelect)
                + p.time_share(FigureCategory::Sort);
            t.row([
                p.name.clone(),
                phase.to_string(),
                pct(dense),
                pct(conv),
                pct(p.time_share(FigureCategory::ElementWise)),
                pct(irregular),
                p.kernels.len().to_string(),
            ]);
        }
    }
    t
}

/// Measured inference-vs-training *instruction mix* (the paper's Figure 3
/// axis): fp32 vs int32 shares of arithmetic instructions, plus IPC.
pub fn infer_vs_train_instruction_mix(
    infer: &[WorkloadProfile],
    train: &[WorkloadProfile],
) -> Table {
    let mut t = Table::new("Inference vs training — instruction mix (measured)");
    t.header(["Workload", "Phase", "FP32 (%)", "INT32 (%)", "IPC"]);
    for (ip, tp) in infer.iter().zip(train) {
        for (phase, p) in [("infer", ip), ("train", tp)] {
            t.row([
                p.name.clone(),
                phase.to_string(),
                pct(p.instr.fp_share()),
                pct(p.instr.int_share()),
                format!("{:.2}", p.ipc()),
            ]);
        }
    }
    t
}

/// Measured inference-vs-training *cache behavior*: L1/L2 hit rates and
/// achieved GFLOPS of each phase's stream on the modeled device.
pub fn infer_vs_train_cache_behavior(
    infer: &[WorkloadProfile],
    train: &[WorkloadProfile],
) -> Table {
    let mut t = Table::new("Inference vs training — cache behavior (measured)");
    t.header(["Workload", "Phase", "L1 hit (%)", "L2 hit (%)", "GFLOPS"]);
    for (ip, tp) in infer.iter().zip(train) {
        for (phase, p) in [("infer", ip), ("train", tp)] {
            t.row([
                p.name.clone(),
                phase.to_string(),
                pct(p.l1_hit_rate()),
                pct(p.l2_hit_rate()),
                format!("{:.1}", p.gflops()),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnmark_workloads::{Scale, TrainMode};

    #[test]
    fn infer_runs_forward_only_and_measures_latency() {
        let cfg = InferConfig::test();
        let art = run_infer_workload(WorkloadKind::Tlstm, &cfg).unwrap();
        assert_eq!(art.batch1_latency_ns.len(), 2);
        assert_eq!(art.batched_step_ns.len(), 1);
        assert!(art.batch1_latency_ns.iter().all(|&ns| ns > 0.0));
        assert!(art.batched_throughput() > 0.0);
        assert!(art.batched_items >= 1);
        assert!(art.profile.kernels.len() > 4);
        assert_eq!(art.losses.len(), 3);
        assert!(art.losses.iter().all(|l| l.is_finite()));
        // Batch-1 repeats the same deterministic item: identical samples.
        assert_eq!(art.losses[0].to_bits(), art.losses[1].to_bits());
    }

    #[test]
    fn batched_infer_loss_bit_equals_probe_forward() {
        let cfg = InferConfig::test();
        let art = run_infer_workload(WorkloadKind::Dgcn, &cfg).unwrap();
        let mut w = WorkloadKind::Dgcn
            .build_mode(cfg.suite.scale, cfg.suite.seed, &cfg.suite.mode)
            .unwrap();
        let probe_loss = w.probe().unwrap();
        let batched_loss = *art.losses.last().unwrap();
        assert_eq!(
            batched_loss.to_bits(),
            probe_loss.to_bits(),
            "infer(Full) {batched_loss} != probe {probe_loss}"
        );
    }

    #[test]
    fn captured_infer_run_carries_the_infer_phase() {
        let cfg = InferConfig::test();
        let (art, run) = run_infer_captured(WorkloadKind::Tlstm, &cfg).unwrap();
        assert_eq!(run.meta.phase, "infer");
        assert_eq!(run.meta.grad_bytes, 0);
        assert_eq!(run.stream.steps(), 3);
        assert_eq!(run.meta.losses, art.losses);
        let back = CapturedRun::from_bytes(&run.to_bytes()).unwrap();
        assert_eq!(back.meta.phase, "infer");
        // Replaying the inference stream reproduces the profile timing.
        let replayed = gnnmark_profiler::replay_profile(
            "TLSTM",
            cfg.suite.device.clone(),
            &back.stream,
        );
        assert_eq!(
            replayed.total_kernel_time_ns().to_bits(),
            art.profile.total_kernel_time_ns().to_bits()
        );
    }

    #[test]
    fn minibatch_mode_infers_too() {
        let mut cfg = InferConfig::test();
        cfg.suite.mode = TrainMode::Minibatch(gnnmark_workloads::MinibatchConfig::default());
        let art = run_infer_workload(WorkloadKind::ArgaCora, &cfg).unwrap();
        assert!(art.batched_throughput() > 0.0);
        assert!(art.losses.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn exec_phase_round_trips() {
        for phase in [ExecPhase::Train, ExecPhase::Infer] {
            assert_eq!(ExecPhase::parse(phase.as_str()), Some(phase));
        }
        assert_eq!(ExecPhase::parse("INFER"), Some(ExecPhase::Infer));
        assert_eq!(ExecPhase::parse("eval"), None);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let samples = [40.0, 10.0, 20.0, 30.0];
        assert_eq!(percentile(&samples, 0.5), 20.0);
        assert_eq!(percentile(&samples, 0.95), 40.0);
        assert_eq!(percentile(&samples, 0.0), 10.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn figures_render_for_infer_and_train() {
        let cfg = InferConfig::test();
        let infer = run_infer_workload(WorkloadKind::Tlstm, &cfg).unwrap();
        let train = crate::suite::run_workload(
            WorkloadKind::Tlstm,
            &SuiteConfig {
                scale: Scale::Test,
                ..SuiteConfig::test()
            },
        )
        .unwrap();
        let infer_profiles = [infer.profile];
        let train_profiles = [train];
        let t1 = infer_vs_train_op_mix(&infer_profiles, &train_profiles);
        let t2 = infer_vs_train_instruction_mix(&infer_profiles, &train_profiles);
        let t3 = infer_vs_train_cache_behavior(&infer_profiles, &train_profiles);
        for t in [&t1, &t2, &t3] {
            let s = t.to_string();
            assert!(s.contains("TLSTM"), "missing workload row: {s}");
            assert!(s.contains("infer") && s.contains("train"));
        }
    }
}
