//! # gnnmark
//!
//! The facade crate of the GNNMark reproduction: run the full benchmark
//! suite on the modeled V100, and regenerate every table and figure of
//! the paper (Baruah et al., *GNNMark: A Benchmark Suite to Characterize
//! Graph Neural Network Training on GPUs*, ISPASS 2021).
//!
//! * [`suite`] — run workloads under a profiling session.
//! * [`resilience`] — fault-isolated suite execution: deadlines, retries,
//!   numeric-anomaly guards, fault injection, and checkpoint/resume.
//! * [`observability`] — post-run metrics collection and artifact export
//!   (merged Chrome trace, metrics snapshot, Prometheus dump, manifest).
//! * [`figures`] — Table I and Figures 2–9 as text tables / CSV.
//! * [`ablations`] — the design-space sweeps DESIGN.md calls out
//!   (L1 capacity, feature width, NVLink bandwidth, half precision).
//! * [`infer`] — forward-only inference characterization: batch-1 latency,
//!   batched throughput, and measured inference-vs-training contrasts.
//! * [`shutdown`] — cooperative SIGINT/SIGTERM handling so long runs
//!   flush checkpoints, metrics and manifests instead of losing them.
//!
//! ## Quick start
//!
//! ```
//! use gnnmark::suite::{run_workload, SuiteConfig};
//! use gnnmark::WorkloadKind;
//!
//! let cfg = SuiteConfig::test();
//! let profile = run_workload(WorkloadKind::ArgaCora, &cfg).unwrap();
//! assert!(profile.kernels.len() > 10);
//! println!("{}", gnnmark::figures::fig4_throughput(&[profile]));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ablations;
pub mod figures;
pub mod infer;
pub mod observability;
pub mod resilience;
pub mod shutdown;
pub mod suite;

pub use gnnmark_gpusim::DeviceSpec;
pub use gnnmark_profiler::{ProfileSession, Table, WorkloadProfile};
pub use gnnmark_workloads::{MinibatchConfig, Scale, TrainMode, Workload, WorkloadKind};

/// Result alias re-used from the tensor crate.
pub type Result<T> = gnnmark_tensor::Result<T>;
