//! Resilient suite execution: fault isolation, deadlines, retries,
//! numeric-anomaly guards, deterministic fault injection, and
//! checkpoint/resume.
//!
//! [`crate::suite::run_suite`] propagates the first failure, which is the
//! right default for unit tests but wrong for a multi-hour characterization
//! run: one diverging workload must not discard eight finished ones. The
//! entry points here never abort the suite:
//!
//! * [`run_workload_resilient`] executes one workload on a dedicated worker
//!   thread under `catch_unwind`, an optional wall-clock deadline, and a
//!   bounded retry policy with exponential backoff and per-attempt seed
//!   perturbation, classifying the result as a [`WorkloadStatus`].
//! * [`run_suite_resilient`] drives every workload (serially or one thread
//!   per workload), checkpoints completed runs as JSON summaries, skips
//!   workloads a previous interrupted run already finished, and returns a
//!   [`SuiteReport`] carrying per-workload status plus whatever artifacts
//!   succeeded — figure rendering then degrades gracefully instead of
//!   silently dropping rows.
//! * [`FaultPlan`] injects deterministic faults (panic, transient error,
//!   NaN loss, stall) into named workloads so every recovery path is
//!   provable in tests, mirroring how the paper characterizes behavior
//!   under controlled perturbation.
//! * [`NumericGuard`] aborts a workload whose losses or gradient norms go
//!   NaN/Inf or diverge, as a structured
//!   [`TensorError::NumericAnomaly`] instead of training garbage; the
//!   runner can retry once with gradient clipping enabled
//!   (see [`gnnmark_autograd::optim::set_thread_grad_clip`]).

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use gnnmark_profiler::{ProfileSession, Table};
use gnnmark_tensor::TensorError;
use gnnmark_workloads::{Scale, WorkloadKind};

use crate::suite::{panic_message, RunArtifacts, SuiteConfig};
use crate::Result;

/// Bounded retry policy for one workload.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Extra attempts after the first (0 = no retries).
    pub max_retries: usize,
    /// Backoff before retry `n` is `base · 2ⁿ⁻¹` (capped at 2 s).
    pub backoff_base: Duration,
    /// Retrain retries with `seed + attempt - 1`, so a seed-sensitive
    /// failure (bad initialization draw) does not repeat verbatim.
    pub perturb_seed: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 0,
            backoff_base: Duration::from_millis(50),
            perturb_seed: true,
        }
    }
}

impl RetryPolicy {
    fn backoff(&self, attempt: usize) -> Duration {
        let factor = 1u32 << (attempt.saturating_sub(1)).min(5) as u32;
        (self.backoff_base * factor).min(Duration::from_secs(2))
    }
}

/// Configuration of the resilience layer around a suite run.
#[derive(Debug, Clone, Default)]
pub struct ResilienceConfig {
    /// Per-workload wall-clock deadline (`None` = unbounded).
    pub timeout: Option<Duration>,
    /// Retry policy per workload.
    pub retry: RetryPolicy,
    /// When set, a workload failing with a numeric anomaly is retried one
    /// extra time with gradients clipped to this global L2 norm.
    pub grad_clip_fallback: Option<f64>,
    /// Directory for completed-run summaries; reruns skip workloads whose
    /// checkpoint matches the current configuration.
    pub checkpoint_dir: Option<PathBuf>,
    /// Run one worker thread per workload instead of serially.
    pub parallel: bool,
    /// Deterministic fault injection (tests and chaos drills).
    pub faults: FaultPlan,
}

impl ResilienceConfig {
    /// Sets the per-workload deadline.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Sets the retry budget (extra attempts after the first).
    #[must_use]
    pub fn with_retries(mut self, retries: usize) -> Self {
        self.retry.max_retries = retries;
        self
    }

    /// Enables the gradient-clipping fallback for diverged workloads.
    #[must_use]
    pub fn with_grad_clip_fallback(mut self, max_norm: f64) -> Self {
        self.grad_clip_fallback = Some(max_norm);
        self
    }

    /// Sets the checkpoint directory.
    #[must_use]
    pub fn with_checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// Installs a fault plan.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }
}

/// A deterministic fault to inject into a named workload.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// Panic at the start of every attempt.
    Panic,
    /// Return a transient error on the first `failures` attempts, then
    /// succeed (exercises the retry path).
    TransientError {
        /// Number of leading attempts that fail.
        failures: usize,
    },
    /// Force the training loss to NaN at a given epoch on the first
    /// `failures` attempts (exercises the numeric guard and the clipped
    /// retry).
    NanLoss {
        /// Epoch (0-based) whose loss is replaced with NaN.
        epoch: usize,
        /// Number of leading attempts that inject (later attempts run
        /// clean, so retries can be observed to succeed).
        failures: usize,
    },
    /// Sleep this long at the start of every attempt (exercises the
    /// deadline path).
    Stall {
        /// Injected stall duration.
        duration: Duration,
    },
}

/// Maps workload labels to injected faults.
///
/// The `GNNMARK_FAULT` environment hook (see [`FaultPlan::from_env`])
/// exposes the same injection to CLI-level tests:
///
/// ```text
/// GNNMARK_FAULT=panic:TLSTM            # panic every attempt
/// GNNMARK_FAULT=transient:TLSTM@2      # error on the first 2 attempts
/// GNNMARK_FAULT=nan:TLSTM@1            # NaN loss at epoch 1 (first attempt)
/// GNNMARK_FAULT=stall:TLSTM@750ms      # sleep 750 ms every attempt
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    by_workload: HashMap<String, Fault>,
}

impl FaultPlan {
    /// A plan injecting nothing.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Adds a fault for a workload label (e.g. `"TLSTM"`).
    #[must_use]
    pub fn inject(mut self, label: &str, fault: Fault) -> Self {
        self.by_workload.insert(label.to_string(), fault);
        self
    }

    /// Parses the `GNNMARK_FAULT` environment variable (see type docs);
    /// unset or malformed values yield an empty plan.
    pub fn from_env() -> Self {
        match std::env::var("GNNMARK_FAULT") {
            Ok(spec) => Self::parse(&spec).unwrap_or_default(),
            Err(_) => FaultPlan::default(),
        }
    }

    /// Parses a `kind:WORKLOAD[@param]` spec; `None` when malformed.
    pub fn parse(spec: &str) -> Option<Self> {
        let (kind, rest) = spec.split_once(':')?;
        let (label, param) = match rest.split_once('@') {
            Some((l, p)) => (l, Some(p)),
            None => (rest, None),
        };
        let fault = match kind {
            "panic" => Fault::Panic,
            "transient" => Fault::TransientError {
                failures: param.map_or(Some(1), |p| p.parse().ok())?,
            },
            "nan" => Fault::NanLoss {
                epoch: param.map_or(Some(0), |p| p.parse().ok())?,
                failures: 1,
            },
            "stall" => {
                let ms: u64 = param?.strip_suffix("ms")?.parse().ok()?;
                Fault::Stall {
                    duration: Duration::from_millis(ms),
                }
            }
            _ => return None,
        };
        Some(FaultPlan::default().inject(label, fault))
    }

    fn get(&self, label: &str) -> Option<&Fault> {
        self.fault_for(label)
    }

    /// The fault registered for a workload label, if any. Public so other
    /// execution paths (e.g. the serve daemon's job workers) can honor
    /// the same plan outside `run_workload_resilient`.
    pub fn fault_for(&self, label: &str) -> Option<&Fault> {
        self.by_workload.get(label)
    }

    /// `true` when no faults are registered.
    pub fn is_empty(&self) -> bool {
        self.by_workload.is_empty()
    }
}

/// Monitors a training run for numeric anomalies.
///
/// Flags NaN/Inf losses, NaN/Inf gradient norms, and divergence (a loss
/// exceeding `divergence_factor ×` the magnitude of the first epoch's
/// loss), returning a structured [`TensorError::NumericAnomaly`].
#[derive(Debug, Clone)]
pub struct NumericGuard {
    first_loss: Option<f64>,
    divergence_factor: f64,
}

impl Default for NumericGuard {
    fn default() -> Self {
        NumericGuard {
            first_loss: None,
            divergence_factor: 1e4,
        }
    }
}

impl NumericGuard {
    /// A guard with a custom divergence factor.
    pub fn with_divergence_factor(factor: f64) -> Self {
        NumericGuard {
            first_loss: None,
            divergence_factor: factor,
        }
    }

    /// Checks one epoch's mean loss.
    ///
    /// # Errors
    /// [`TensorError::NumericAnomaly`] on NaN/Inf or divergence.
    pub fn observe_loss(&mut self, epoch: usize, loss: f64) -> Result<()> {
        if !loss.is_finite() {
            return Err(TensorError::NumericAnomaly {
                what: "epoch loss",
                epoch,
                value: format!("{loss}"),
            });
        }
        match self.first_loss {
            None => self.first_loss = Some(loss),
            Some(first) => {
                let bound = self.divergence_factor * first.abs().max(1.0);
                if loss.abs() > bound {
                    return Err(TensorError::NumericAnomaly {
                        what: "epoch loss",
                        epoch,
                        value: format!("{loss} diverged beyond {bound:.3e}"),
                    });
                }
            }
        }
        Ok(())
    }

    /// Checks the post-epoch global gradient norm.
    ///
    /// # Errors
    /// [`TensorError::NumericAnomaly`] on NaN/Inf.
    pub fn observe_grad_norm(&self, epoch: usize, norm: f64) -> Result<()> {
        if !norm.is_finite() {
            return Err(TensorError::NumericAnomaly {
                what: "grad norm",
                epoch,
                value: format!("{norm}"),
            });
        }
        Ok(())
    }
}

/// Terminal state of one workload under the resilient runner.
#[derive(Debug)]
pub enum WorkloadStatus {
    /// Training finished; artifacts are attached.
    Completed(Box<RunArtifacts>),
    /// Skipped: a checkpoint from a previous run matched this
    /// configuration. Carries the checkpointed summary (no profile, so
    /// figures needing one render this workload as a `—` row).
    Restored(RunSummary),
    /// Every attempt failed with an error (workload-annotated).
    Failed {
        /// The final attempt's error.
        error: TensorError,
    },
    /// The final attempt exceeded the wall-clock deadline.
    TimedOut {
        /// The deadline that was exceeded.
        after: Duration,
    },
    /// The final attempt panicked (isolated on its worker thread).
    Panicked {
        /// The panic message.
        message: String,
    },
    /// Not attempted: a graceful shutdown (SIGINT/SIGTERM, see
    /// [`crate::shutdown`]) was requested before this workload started.
    /// Finished workloads keep their checkpoints; a resumed run picks up
    /// from here.
    Interrupted,
}

impl WorkloadStatus {
    /// Short machine-friendly label (`completed`/`restored`/…).
    pub fn label(&self) -> &'static str {
        match self {
            WorkloadStatus::Completed(_) => "completed",
            WorkloadStatus::Restored(_) => "restored",
            WorkloadStatus::Failed { .. } => "failed",
            WorkloadStatus::TimedOut { .. } => "timed_out",
            WorkloadStatus::Panicked { .. } => "panicked",
            WorkloadStatus::Interrupted => "interrupted",
        }
    }

    /// One-line human detail (empty for successful runs).
    pub fn detail(&self) -> String {
        match self {
            WorkloadStatus::Completed(_) => String::new(),
            WorkloadStatus::Restored(s) => format!("from checkpoint ({} epochs)", s.epochs),
            WorkloadStatus::Failed { error } => error.to_string(),
            WorkloadStatus::TimedOut { after } => {
                format!("exceeded {:.3}s deadline", after.as_secs_f64())
            }
            WorkloadStatus::Panicked { message } => format!("panic: {message}"),
            WorkloadStatus::Interrupted => "skipped: shutdown requested".to_string(),
        }
    }
}

/// One attempt's timing and result, as recorded by the resilient runner.
///
/// Offsets are measured against the workload's first attempt, so the log
/// doubles as a retry timeline: gaps between `start_ms + dur_ms` of one
/// attempt and `start_ms` of the next are the backoff sleeps.
#[derive(Debug, Clone, PartialEq)]
pub struct AttemptEvent {
    /// 1-based attempt index.
    pub attempt: usize,
    /// Offset of this attempt's start from the first attempt, ms.
    pub start_ms: f64,
    /// Attempt duration, ms.
    pub dur_ms: f64,
    /// Result label: `ok` / `error` / `panicked` / `timed_out`.
    pub result: &'static str,
}

impl AttemptEvent {
    fn to_json(&self) -> String {
        format!(
            "{{\"attempt\":{},\"start_ms\":{:.3},\"dur_ms\":{:.3},\"result\":{}}}",
            self.attempt,
            self.start_ms,
            self.dur_ms,
            json_string(self.result),
        )
    }
}

/// Outcome of one workload: status plus attempt accounting.
#[derive(Debug)]
pub struct WorkloadOutcome {
    /// Which workload.
    pub kind: WorkloadKind,
    /// Terminal status.
    pub status: WorkloadStatus,
    /// Attempts consumed (including the clipped fallback retry).
    pub attempts: usize,
    /// Wall-clock time spent across all attempts.
    pub wall: Duration,
    /// Per-attempt timeline (empty for restored-from-checkpoint outcomes).
    pub attempt_log: Vec<AttemptEvent>,
}

impl WorkloadOutcome {
    /// The artifacts, when training completed in this run.
    pub fn artifacts(&self) -> Option<&RunArtifacts> {
        match &self.status {
            WorkloadStatus::Completed(a) => Some(a),
            _ => None,
        }
    }

    /// `true` for `Completed` or `Restored`.
    pub fn succeeded(&self) -> bool {
        matches!(
            self.status,
            WorkloadStatus::Completed(_) | WorkloadStatus::Restored(_)
        )
    }
}

/// The always-produced result of a resilient suite run.
#[derive(Debug)]
pub struct SuiteReport {
    /// One outcome per workload, in [`WorkloadKind::ALL`] order.
    pub outcomes: Vec<WorkloadOutcome>,
}

impl SuiteReport {
    /// Artifacts of every workload that completed in this run, with kinds.
    pub fn artifacts(&self) -> Vec<(&WorkloadKind, &RunArtifacts)> {
        self.outcomes
            .iter()
            .filter_map(|o| o.artifacts().map(|a| (&o.kind, a)))
            .collect()
    }

    /// Workloads with no artifacts this run (failed, timed out, panicked,
    /// or restored from checkpoint) — figures render these as `—` rows.
    pub fn missing(&self) -> Vec<WorkloadKind> {
        self.outcomes
            .iter()
            .filter(|o| o.artifacts().is_none())
            .map(|o| o.kind)
            .collect()
    }

    /// `true` when every workload completed or was restored.
    pub fn all_succeeded(&self) -> bool {
        self.outcomes.iter().all(WorkloadOutcome::succeeded)
    }

    /// The first non-successful outcome's error, for callers that want
    /// fail-fast semantics (`--keep-going` off).
    pub fn first_failure(&self) -> Option<TensorError> {
        self.outcomes.iter().find_map(|o| match &o.status {
            WorkloadStatus::Failed { error } => Some(error.clone()),
            WorkloadStatus::TimedOut { after } => Some(
                TensorError::InvalidArgument {
                    op: "run_suite_resilient",
                    reason: format!(
                        "workload exceeded {:.3}s deadline",
                        after.as_secs_f64()
                    ),
                }
                .in_workload(o.kind.label()),
            ),
            WorkloadStatus::Panicked { message } => Some(
                TensorError::InvalidArgument {
                    op: "run_suite_resilient",
                    reason: format!("worker panicked: {message}"),
                }
                .in_workload(o.kind.label()),
            ),
            _ => None,
        })
    }

    /// Per-workload status as a renderable table.
    pub fn status_table(&self) -> Table {
        let mut t = Table::new("Suite status — per-workload resilience report");
        t.header(["Workload", "Status", "Attempts", "Wall s", "Detail"]);
        for o in &self.outcomes {
            t.row([
                o.kind.label().to_string(),
                o.status.label().to_string(),
                o.attempts.to_string(),
                format!("{:.2}", o.wall.as_secs_f64()),
                o.status.detail(),
            ]);
        }
        t
    }

    /// Machine-readable status summary (stable JSON).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"workloads\":[");
        for (i, o) in self.outcomes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let log = o
                .attempt_log
                .iter()
                .map(AttemptEvent::to_json)
                .collect::<Vec<_>>()
                .join(",");
            out.push_str(&format!(
                "{{\"workload\":{},\"status\":{},\"attempts\":{},\"wall_ms\":{:.3},\
                 \"detail\":{},\"attempt_log\":[{}]}}",
                json_string(o.kind.label()),
                json_string(o.status.label()),
                o.attempts,
                o.wall.as_secs_f64() * 1e3,
                json_string(&o.status.detail()),
                log,
            ));
        }
        out.push_str(&format!(
            "],\"completed\":{},\"restored\":{},\"failed\":{}}}",
            self.outcomes
                .iter()
                .filter(|o| matches!(o.status, WorkloadStatus::Completed(_)))
                .count(),
            self.outcomes
                .iter()
                .filter(|o| matches!(o.status, WorkloadStatus::Restored(_)))
                .count(),
            self.outcomes.iter().filter(|o| !o.succeeded()).count(),
        ));
        gnnmark_telemetry::export::debug_validated("SuiteReport::to_json", out)
    }

    /// Count of workloads skipped by a graceful-shutdown request.
    pub fn interrupted(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o.status, WorkloadStatus::Interrupted))
            .count()
    }
}

/// What one attempt on the worker thread produced.
enum AttemptOutcome {
    Done(Box<Result<RunArtifacts>>),
    Panicked(String),
    TimedOut,
}

/// Runs one workload to a terminal [`WorkloadStatus`]: panic isolation,
/// optional deadline, bounded retries with exponential backoff and seed
/// perturbation, and one extra clipped retry after a numeric anomaly when
/// [`ResilienceConfig::grad_clip_fallback`] is set.
///
/// Never panics and never blocks past `timeout × attempts`; a timed-out
/// worker thread is detached (it finishes in the background and its result
/// is discarded).
pub fn run_workload_resilient(
    kind: WorkloadKind,
    cfg: &SuiteConfig,
    rcfg: &ResilienceConfig,
) -> WorkloadOutcome {
    let started = Instant::now();
    let max_attempts = rcfg.retry.max_retries + 1;
    let mut attempts = 0;
    let mut clip_retry_spent = false;
    let mut attempt_log: Vec<AttemptEvent> = Vec::new();
    let log_attempt = |attempts: usize, t0: Duration, result: &'static str| AttemptEvent {
        attempt: attempts,
        start_ms: t0.as_secs_f64() * 1e3,
        dur_ms: (started.elapsed() - t0).as_secs_f64() * 1e3,
        result,
    };
    loop {
        attempts += 1;
        let clip = clip_retry_spent; // set on the attempt *after* an anomaly
        let attempt_t0 = started.elapsed();
        let span = gnnmark_telemetry::Span::enter_cat(
            format!("attempt:{}#{}", kind.label(), attempts),
            "resilience",
        );
        let outcome = run_attempt(kind, cfg, rcfg, attempts, clip);
        drop(span);
        let status = match outcome {
            AttemptOutcome::Done(res) => match *res {
                Ok(art) => {
                    attempt_log.push(log_attempt(attempts, attempt_t0, "ok"));
                    return WorkloadOutcome {
                        kind,
                        status: WorkloadStatus::Completed(Box::new(art)),
                        attempts,
                        wall: started.elapsed(),
                        attempt_log,
                    };
                }
                Err(error) => {
                    attempt_log.push(log_attempt(attempts, attempt_t0, "error"));
                    let is_numeric =
                        matches!(error.root_cause(), TensorError::NumericAnomaly { .. });
                    if is_numeric && rcfg.grad_clip_fallback.is_some() && !clip_retry_spent {
                        // One bonus retry with clipping, outside the normal
                        // retry budget: divergence is the failure clipping
                        // exists to fix.
                        clip_retry_spent = true;
                        gnnmark_telemetry::mark("retry:clipped", "resilience");
                        gnnmark_telemetry::metrics::counter_add(
                            "gnnmark_resilience_retries_total",
                            1,
                        );
                        std::thread::sleep(rcfg.retry.backoff(attempts));
                        continue;
                    }
                    WorkloadStatus::Failed { error }
                }
            },
            AttemptOutcome::Panicked(message) => {
                attempt_log.push(log_attempt(attempts, attempt_t0, "panicked"));
                WorkloadStatus::Panicked { message }
            }
            AttemptOutcome::TimedOut => {
                attempt_log.push(log_attempt(attempts, attempt_t0, "timed_out"));
                gnnmark_telemetry::mark("timeout", "resilience");
                WorkloadStatus::TimedOut {
                    after: rcfg.timeout.unwrap_or_default(),
                }
            }
        };
        if attempts >= max_attempts {
            gnnmark_telemetry::metrics::counter_add("gnnmark_resilience_failures_total", 1);
            return WorkloadOutcome {
                kind,
                status,
                attempts,
                wall: started.elapsed(),
                attempt_log,
            };
        }
        gnnmark_telemetry::mark("retry:scheduled", "resilience");
        gnnmark_telemetry::metrics::counter_add("gnnmark_resilience_retries_total", 1);
        std::thread::sleep(rcfg.retry.backoff(attempts));
    }
}

/// Terminal state of a generic resilient task (see [`run_task_resilient`]).
#[derive(Debug)]
pub enum TaskStatus<T> {
    /// The task returned `Ok`.
    Completed(T),
    /// Every attempt failed with an error.
    Failed {
        /// The final attempt's error.
        error: TensorError,
    },
    /// The final attempt exceeded the wall-clock deadline.
    TimedOut {
        /// The deadline that was exceeded.
        after: Duration,
    },
    /// The final attempt panicked (isolated on its worker thread).
    Panicked {
        /// The panic message.
        message: String,
    },
}

/// Outcome of a generic resilient task: status plus attempt accounting.
#[derive(Debug)]
pub struct TaskOutcome<T> {
    /// Terminal status.
    pub status: TaskStatus<T>,
    /// Attempts consumed.
    pub attempts: usize,
    /// Wall-clock time across all attempts (including backoff sleeps).
    pub wall: Duration,
}

impl<T> TaskOutcome<T> {
    /// The value, when the task completed.
    pub fn value(self) -> Option<T> {
        match self.status {
            TaskStatus::Completed(v) => Some(v),
            _ => None,
        }
    }

    /// One-line failure description (`None` when completed).
    pub fn failure(&self) -> Option<String> {
        match &self.status {
            TaskStatus::Completed(_) => None,
            TaskStatus::Failed { error } => Some(error.to_string()),
            TaskStatus::TimedOut { after } => Some(format!(
                "exceeded {:.3}s deadline",
                after.as_secs_f64()
            )),
            TaskStatus::Panicked { message } => Some(format!("panic: {message}")),
        }
    }
}

enum TaskAttempt<T> {
    Done(Box<Result<T>>),
    Panicked(String),
    TimedOut,
}

/// Runs an arbitrary fallible task under the same resilience machinery as
/// [`run_workload_resilient`]: a dedicated worker thread per attempt with
/// panic isolation, an optional wall-clock deadline, and bounded retries
/// with exponential backoff. The closure receives the 1-based attempt
/// index. Used by the `gnnmark-serve` campaign engine for per-job
/// retries/timeouts.
///
/// A timed-out worker thread is detached — it finishes in the background
/// and its result is discarded, exactly like a timed-out workload attempt.
pub fn run_task_resilient<T: Send + 'static>(
    name: &str,
    rcfg: &ResilienceConfig,
    task: std::sync::Arc<dyn Fn(usize) -> Result<T> + Send + Sync>,
) -> TaskOutcome<T> {
    let started = Instant::now();
    let max_attempts = rcfg.retry.max_retries + 1;
    let mut attempts = 0;
    loop {
        attempts += 1;
        let attempt = attempts;
        let t = std::sync::Arc::clone(&task);
        let (tx, rx) = mpsc::channel();
        let spawned = std::thread::Builder::new()
            .name(format!("gnnmark-task-{name}"))
            .spawn(move || {
                let result = catch_unwind(AssertUnwindSafe(|| t(attempt)));
                let msg = match result {
                    Ok(run) => TaskAttempt::Done(Box::new(run)),
                    Err(payload) => TaskAttempt::Panicked(panic_message(payload.as_ref())),
                };
                // The receiver may have timed out and gone away; fine.
                let _ = tx.send(msg);
            });
        let outcome = if spawned.is_err() {
            TaskAttempt::Panicked("failed to spawn worker thread".to_string())
        } else {
            match rcfg.timeout {
                Some(deadline) => rx.recv_timeout(deadline).unwrap_or(TaskAttempt::TimedOut),
                None => rx
                    .recv()
                    .unwrap_or_else(|_| TaskAttempt::Panicked("worker vanished".to_string())),
            }
        };
        let status = match outcome {
            TaskAttempt::Done(res) => match *res {
                Ok(value) => {
                    return TaskOutcome {
                        status: TaskStatus::Completed(value),
                        attempts,
                        wall: started.elapsed(),
                    };
                }
                Err(error) => TaskStatus::Failed { error },
            },
            TaskAttempt::Panicked(message) => TaskStatus::Panicked { message },
            TaskAttempt::TimedOut => TaskStatus::TimedOut {
                after: rcfg.timeout.unwrap_or_default(),
            },
        };
        if attempts >= max_attempts {
            gnnmark_telemetry::metrics::counter_add("gnnmark_resilience_failures_total", 1);
            return TaskOutcome {
                status,
                attempts,
                wall: started.elapsed(),
            };
        }
        gnnmark_telemetry::mark("retry:scheduled", "resilience");
        gnnmark_telemetry::metrics::counter_add("gnnmark_resilience_retries_total", 1);
        std::thread::sleep(rcfg.retry.backoff(attempts));
    }
}

/// One isolated attempt on a dedicated worker thread.
fn run_attempt(
    kind: WorkloadKind,
    cfg: &SuiteConfig,
    rcfg: &ResilienceConfig,
    attempt: usize,
    clip: bool,
) -> AttemptOutcome {
    let mut attempt_cfg = cfg.clone();
    if rcfg.retry.perturb_seed && attempt > 1 {
        attempt_cfg.seed = cfg.seed.wrapping_add(attempt as u64 - 1);
    }
    let fault = rcfg.faults.get(kind.label()).cloned();
    let clip_norm = rcfg.grad_clip_fallback;
    let (tx, rx) = mpsc::channel();
    let spawned = std::thread::Builder::new()
        .name(format!("gnnmark-{}", kind.label()))
        .spawn(move || {
            if clip {
                if let Some(norm) = clip_norm {
                    gnnmark_autograd::set_thread_grad_clip(Some(norm));
                }
            }
            let result = catch_unwind(AssertUnwindSafe(|| {
                train_guarded(kind, &attempt_cfg, fault.as_ref(), attempt)
            }));
            let msg = match result {
                Ok(run) => AttemptOutcome::Done(Box::new(run)),
                Err(payload) => AttemptOutcome::Panicked(panic_message(payload.as_ref())),
            };
            // The receiver may have timed out and gone away; that is fine.
            let _ = tx.send(msg);
        });
    let Ok(_handle) = spawned else {
        return AttemptOutcome::Panicked("failed to spawn worker thread".to_string());
    };
    match rcfg.timeout {
        Some(deadline) => rx.recv_timeout(deadline).unwrap_or(AttemptOutcome::TimedOut),
        None => rx
            .recv()
            .unwrap_or_else(|_| AttemptOutcome::Panicked("worker vanished".to_string())),
    }
}

/// The guarded training loop: runs epochs under the numeric guard, applying
/// any injected fault deterministically.
fn train_guarded(
    kind: WorkloadKind,
    cfg: &SuiteConfig,
    fault: Option<&Fault>,
    attempt: usize,
) -> Result<RunArtifacts> {
    train_guarded_inner(kind, cfg, fault, attempt).map_err(|e| e.in_workload(kind.label()))
}

fn train_guarded_inner(
    kind: WorkloadKind,
    cfg: &SuiteConfig,
    fault: Option<&Fault>,
    attempt: usize,
) -> Result<RunArtifacts> {
    if fault.is_some() {
        gnnmark_telemetry::mark("fault:injected", "resilience");
    }
    match fault {
        Some(Fault::Panic) => panic!("injected panic in {}", kind.label()),
        Some(Fault::TransientError { failures }) if attempt <= *failures => {
            return Err(TensorError::InvalidArgument {
                op: "fault_injection",
                reason: format!("injected transient error (attempt {attempt})"),
            });
        }
        Some(Fault::Stall { duration }) => std::thread::sleep(*duration),
        _ => {}
    }
    let _wl = gnnmark_telemetry::span!(format!("workload:{}", kind.label()));
    // Same thread-local mixed-precision install as the direct path: this
    // attempt runs on its own worker thread, so it must set up (and tear
    // down) precision + loss scaling itself.
    let setup = crate::suite::PrecisionSetup::install(cfg);
    let mut w = {
        let _build = gnnmark_telemetry::span!("build");
        kind.build_mode(cfg.scale, cfg.seed, &cfg.mode)?
    };
    let mut session = ProfileSession::new(kind.label(), setup.device.clone());
    let mut guard = NumericGuard::default();
    let mut losses = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        let _ep = gnnmark_telemetry::span!("epoch");
        let t0 = gnnmark_telemetry::progress_enabled().then(Instant::now);
        let modeled_before = session.modeled_time_ns();
        let mut loss = w.run_epoch(&mut session)?;
        if let Some(Fault::NanLoss {
            epoch: at,
            failures,
        }) = fault
        {
            if epoch == *at && attempt <= *failures {
                loss = f64::NAN;
            }
        }
        guard.observe_loss(epoch, loss)?;
        guard.observe_grad_norm(epoch, w.params().grad_norm())?;
        losses.push(loss);
        if let Some(t0) = t0 {
            let pool = gnnmark_tensor::pool::global_stats();
            eprintln!(
                "[{}] epoch {}/{}: loss {:.4}  wall {:.1} ms  modeled {:.1} ms  pool hit {:.1}%",
                kind.label(),
                epoch + 1,
                cfg.epochs,
                loss,
                t0.elapsed().as_secs_f64() * 1e3,
                (session.modeled_time_ns() - modeled_before) / 1e6,
                pool.hit_rate() * 100.0,
            );
        }
    }
    let quality = w.quality()?;
    Ok(RunArtifacts {
        profile: session.finish(),
        losses,
        steps_per_epoch: w.steps_per_epoch(),
        grad_bytes: w.params().total_bytes(),
        scaling: w.scaling_behavior(),
        quality,
    })
}

/// Runs the full suite under the resilience layer; always returns a
/// complete [`SuiteReport`] (one outcome per workload, in
/// [`WorkloadKind::ALL`] order).
///
/// With a checkpoint directory configured, workloads whose stored summary
/// matches the current configuration are skipped as
/// [`WorkloadStatus::Restored`], and each newly completed workload is
/// checkpointed immediately — an interrupted `gnnmark all --scale paper`
/// resumes without re-training finished workloads.
pub fn run_suite_resilient(cfg: &SuiteConfig, rcfg: &ResilienceConfig) -> SuiteReport {
    let checkpoint = rcfg
        .checkpoint_dir
        .as_ref()
        .map(|dir| Checkpoint::new(dir.clone()));
    let run_one = |kind: WorkloadKind| -> WorkloadOutcome {
        if crate::shutdown::requested() {
            gnnmark_telemetry::mark("shutdown:workload-skipped", "resilience");
            return WorkloadOutcome {
                kind,
                status: WorkloadStatus::Interrupted,
                attempts: 0,
                wall: Duration::ZERO,
                attempt_log: Vec::new(),
            };
        }
        if let Some(cp) = &checkpoint {
            if let Some(summary) = cp.load_matching(kind, cfg) {
                gnnmark_telemetry::mark("checkpoint:restored", "resilience");
                return WorkloadOutcome {
                    kind,
                    status: WorkloadStatus::Restored(summary),
                    attempts: 0,
                    wall: Duration::ZERO,
                    attempt_log: Vec::new(),
                };
            }
        }
        let outcome = run_workload_resilient(kind, cfg, rcfg);
        if let (Some(cp), Some(art)) = (&checkpoint, outcome.artifacts()) {
            // Checkpoint write failures must not fail the run; the next
            // resume simply re-trains this workload.
            if cp.save(&RunSummary::of(kind, cfg, art)).is_ok() {
                gnnmark_telemetry::mark("checkpoint:written", "resilience");
            }
        }
        outcome
    };
    let outcomes: Vec<WorkloadOutcome> = if rcfg.parallel {
        let run_one = &run_one;
        std::thread::scope(|scope| {
            let handles: Vec<_> = WorkloadKind::ALL
                .iter()
                .map(|&kind| scope.spawn(move || run_one(kind)))
                .collect();
            WorkloadKind::ALL
                .iter()
                .zip(handles)
                .map(|(&kind, h)| {
                    h.join().unwrap_or_else(|payload| WorkloadOutcome {
                        kind,
                        status: WorkloadStatus::Panicked {
                            message: panic_message(payload.as_ref()),
                        },
                        attempts: 1,
                        wall: Duration::ZERO,
                        attempt_log: Vec::new(),
                    })
                })
                .collect()
        })
    } else {
        WorkloadKind::ALL.iter().map(|&k| run_one(k)).collect()
    };
    SuiteReport { outcomes }
}

/// The checkpointed summary of one completed workload run: everything a
/// resume needs to prove the workload is done for this configuration, plus
/// headline metrics. Deliberately *not* the full profile — checkpoints stay
/// a few hundred bytes per workload.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Workload label (e.g. `"PSAGE-MVL"`).
    pub workload: String,
    /// Scale name the run used (`test`/`small`/`paper`).
    pub scale: String,
    /// Epochs trained.
    pub epochs: usize,
    /// Base dataset/init seed.
    pub seed: u64,
    /// Storage precision the run trained under (`fp32`/`fp16`/`bf16`).
    pub precision: String,
    /// Per-epoch mean losses.
    pub losses: Vec<f64>,
    /// Optimizer steps per epoch.
    pub steps_per_epoch: u64,
    /// DDP gradient payload bytes.
    pub grad_bytes: u64,
    /// Modeled kernel + transfer time, ns.
    pub total_time_ns: f64,
    /// Kernel launches profiled.
    pub kernel_launches: u64,
}

/// Display name of a scale (stable across releases; used as the checkpoint
/// fingerprint component).
pub fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Test => "test",
        Scale::Small => "small",
        Scale::Paper => "paper",
    }
}

impl RunSummary {
    /// Summarizes one completed run.
    pub fn of(kind: WorkloadKind, cfg: &SuiteConfig, art: &RunArtifacts) -> Self {
        RunSummary {
            workload: kind.label().to_string(),
            scale: scale_name(cfg.scale).to_string(),
            epochs: cfg.epochs,
            seed: cfg.seed,
            precision: cfg.precision.as_str().to_string(),
            losses: art.losses.clone(),
            steps_per_epoch: art.steps_per_epoch,
            grad_bytes: art.grad_bytes,
            total_time_ns: art.profile.total_time_ns(),
            kernel_launches: art.profile.kernels.len() as u64,
        }
    }

    /// `true` when this summary was produced by the given configuration.
    pub fn matches(&self, kind: WorkloadKind, cfg: &SuiteConfig) -> bool {
        self.workload == kind.label()
            && self.scale == scale_name(cfg.scale)
            && self.epochs == cfg.epochs
            && self.seed == cfg.seed
            && self.precision == cfg.precision.as_str()
    }

    /// Serializes to one JSON object.
    pub fn to_json(&self) -> String {
        let losses = self
            .losses
            .iter()
            .map(|l| format!("{l:?}"))
            .collect::<Vec<_>>()
            .join(",");
        let out = format!(
            "{{\"workload\":{},\"scale\":{},\"epochs\":{},\"seed\":{},\
             \"precision\":{},\"losses\":[{}],\
             \"steps_per_epoch\":{},\"grad_bytes\":{},\"total_time_ns\":{:?},\
             \"kernel_launches\":{}}}",
            json_string(&self.workload),
            json_string(&self.scale),
            self.epochs,
            self.seed,
            json_string(&self.precision),
            losses,
            self.steps_per_epoch,
            self.grad_bytes,
            self.total_time_ns,
            self.kernel_launches,
        );
        gnnmark_telemetry::export::debug_validated("RunSummary::to_json", out)
    }

    /// Parses a summary written by [`RunSummary::to_json`]; `None` on any
    /// structural mismatch (corrupted checkpoints are treated as absent).
    pub fn from_json(json: &str) -> Option<Self> {
        Some(RunSummary {
            workload: json_get_string(json, "workload")?,
            scale: json_get_string(json, "scale")?,
            epochs: json_get_number(json, "epochs")? as usize,
            seed: json_get_number(json, "seed")? as u64,
            // Checkpoints written before mixed precision lack the field;
            // they were fp32 runs by construction.
            precision: json_get_string(json, "precision")
                .unwrap_or_else(|| "fp32".to_string()),
            losses: json_get_array(json, "losses")?,
            steps_per_epoch: json_get_number(json, "steps_per_epoch")? as u64,
            grad_bytes: json_get_number(json, "grad_bytes")? as u64,
            total_time_ns: json_get_number(json, "total_time_ns")?,
            kernel_launches: json_get_number(json, "kernel_launches")? as u64,
        })
    }
}

/// Directory of per-workload completion summaries.
struct Checkpoint {
    dir: PathBuf,
}

impl Checkpoint {
    fn new(dir: PathBuf) -> Self {
        Checkpoint { dir }
    }

    fn path_for(&self, kind: WorkloadKind) -> PathBuf {
        self.dir.join(format!("{}.json", kind.label()))
    }

    /// Loads a summary for `kind` if present, parseable, and produced by
    /// the same configuration.
    fn load_matching(&self, kind: WorkloadKind, cfg: &SuiteConfig) -> Option<RunSummary> {
        let text = std::fs::read_to_string(self.path_for(kind)).ok()?;
        let summary = RunSummary::from_json(&text)?;
        summary.matches(kind, cfg).then_some(summary)
    }

    fn save(&self, summary: &RunSummary) -> std::io::Result<()> {
        std::fs::create_dir_all(&self.dir)?;
        let path = self.dir.join(format!("{}.json", summary.workload));
        // Write-then-rename keeps a torn write from corrupting a resume.
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, summary.to_json())?;
        std::fs::rename(&tmp, &path)
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Finds the raw value text after `"key":` in a flat JSON object.
fn json_raw_value<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let start = json.find(&needle)? + needle.len();
    let rest = json[start..].trim_start();
    Some(rest)
}

fn json_get_string(json: &str, key: &str) -> Option<String> {
    let rest = json_raw_value(json, key)?;
    let rest = rest.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                't' => out.push('\t'),
                'r' => out.push('\r'),
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    None
}

fn json_get_number(json: &str, key: &str) -> Option<f64> {
    let rest = json_raw_value(json, key)?;
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn json_get_array(json: &str, key: &str) -> Option<Vec<f64>> {
    let rest = json_raw_value(json, key)?;
    let rest = rest.strip_prefix('[')?;
    let end = rest.find(']')?;
    let body = &rest[..end];
    if body.trim().is_empty() {
        return Some(Vec::new());
    }
    body.split(',')
        .map(|s| s.trim().parse().ok())
        .collect::<Option<Vec<f64>>>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnmark_gpusim::DeviceSpec;

    fn fast_rcfg() -> ResilienceConfig {
        let mut r = ResilienceConfig::default();
        r.retry.backoff_base = Duration::ZERO;
        r
    }

    #[test]
    fn completes_without_faults() {
        let cfg = SuiteConfig::test();
        let o = run_workload_resilient(WorkloadKind::Tlstm, &cfg, &fast_rcfg());
        assert!(matches!(o.status, WorkloadStatus::Completed(_)));
        assert_eq!(o.attempts, 1);
        assert_eq!(o.artifacts().unwrap().losses.len(), cfg.epochs);
    }

    #[test]
    fn injected_panic_is_isolated() {
        let cfg = SuiteConfig::test();
        let rcfg =
            fast_rcfg().with_faults(FaultPlan::none().inject("TLSTM", Fault::Panic));
        let o = run_workload_resilient(WorkloadKind::Tlstm, &cfg, &rcfg);
        match &o.status {
            WorkloadStatus::Panicked { message } => {
                assert!(message.contains("injected panic"), "{message}")
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
    }

    #[test]
    fn transient_error_is_retried_to_success() {
        let cfg = SuiteConfig::test();
        let rcfg = fast_rcfg()
            .with_retries(2)
            .with_faults(FaultPlan::none().inject(
                "TLSTM",
                Fault::TransientError { failures: 2 },
            ));
        let o = run_workload_resilient(WorkloadKind::Tlstm, &cfg, &rcfg);
        assert!(matches!(o.status, WorkloadStatus::Completed(_)), "{:?}", o.status);
        assert_eq!(o.attempts, 3);
    }

    #[test]
    fn transient_error_exhausts_bounded_retries() {
        let cfg = SuiteConfig::test();
        let rcfg = fast_rcfg()
            .with_retries(1)
            .with_faults(FaultPlan::none().inject(
                "TLSTM",
                Fault::TransientError { failures: 5 },
            ));
        let o = run_workload_resilient(WorkloadKind::Tlstm, &cfg, &rcfg);
        match &o.status {
            WorkloadStatus::Failed { error } => {
                let s = error.to_string();
                assert!(s.starts_with("TLSTM: "), "{s}");
                assert!(s.contains("transient"), "{s}");
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        assert_eq!(o.attempts, 2);
    }

    #[test]
    fn nan_loss_trips_the_numeric_guard() {
        let cfg = SuiteConfig::test();
        let rcfg = fast_rcfg().with_faults(FaultPlan::none().inject(
            "TLSTM",
            Fault::NanLoss {
                epoch: 0,
                failures: usize::MAX,
            },
        ));
        let o = run_workload_resilient(WorkloadKind::Tlstm, &cfg, &rcfg);
        match &o.status {
            WorkloadStatus::Failed { error } => {
                assert!(
                    matches!(error.root_cause(), TensorError::NumericAnomaly { .. }),
                    "{error}"
                );
            }
            other => panic!("expected Failed, got {other:?}"),
        }
    }

    #[test]
    fn clip_fallback_rescues_a_diverged_workload() {
        let cfg = SuiteConfig::test();
        let rcfg = fast_rcfg()
            .with_grad_clip_fallback(1.0)
            .with_faults(FaultPlan::none().inject(
                "TLSTM",
                Fault::NanLoss {
                    epoch: 0,
                    failures: 1,
                },
            ));
        let o = run_workload_resilient(WorkloadKind::Tlstm, &cfg, &rcfg);
        assert!(matches!(o.status, WorkloadStatus::Completed(_)), "{:?}", o.status);
        assert_eq!(o.attempts, 2, "one clean attempt after the clipped retry");
    }

    #[test]
    fn stall_exceeds_deadline_and_times_out() {
        let cfg = SuiteConfig::test();
        let rcfg = fast_rcfg()
            .with_timeout(Duration::from_millis(40))
            .with_faults(FaultPlan::none().inject(
                "TLSTM",
                Fault::Stall {
                    duration: Duration::from_millis(400),
                },
            ));
        let started = Instant::now();
        let o = run_workload_resilient(WorkloadKind::Tlstm, &cfg, &rcfg);
        assert!(matches!(o.status, WorkloadStatus::TimedOut { .. }), "{:?}", o.status);
        assert!(started.elapsed() < Duration::from_millis(350), "did not detach");
    }

    #[test]
    fn numeric_guard_flags_nan_inf_and_divergence() {
        let mut g = NumericGuard::default();
        assert!(g.observe_loss(0, 1.0).is_ok());
        assert!(g.observe_loss(1, f64::NAN).is_err());
        assert!(g.observe_loss(1, f64::INFINITY).is_err());
        assert!(g.observe_loss(1, 2.0).is_ok());
        assert!(g.observe_loss(2, 1e9).is_err(), "diverged loss accepted");
        assert!(g.observe_grad_norm(0, 5.0).is_ok());
        assert!(g.observe_grad_norm(0, f64::NAN).is_err());
        let mut tight = NumericGuard::with_divergence_factor(2.0);
        assert!(tight.observe_loss(0, 1.0).is_ok());
        assert!(tight.observe_loss(1, 3.0).is_err());
    }

    #[test]
    fn fault_plan_env_grammar() {
        let p = FaultPlan::parse("panic:TLSTM").unwrap();
        assert_eq!(p.get("TLSTM"), Some(&Fault::Panic));
        let p = FaultPlan::parse("transient:GW@3").unwrap();
        assert_eq!(p.get("GW"), Some(&Fault::TransientError { failures: 3 }));
        let p = FaultPlan::parse("nan:DGCN@2").unwrap();
        assert_eq!(
            p.get("DGCN"),
            Some(&Fault::NanLoss {
                epoch: 2,
                failures: 1
            })
        );
        let p = FaultPlan::parse("stall:ARGA@250ms").unwrap();
        assert_eq!(
            p.get("ARGA"),
            Some(&Fault::Stall {
                duration: Duration::from_millis(250)
            })
        );
        assert!(FaultPlan::parse("bogus:TLSTM").is_none());
        assert!(FaultPlan::parse("no-colon").is_none());
        assert!(FaultPlan::parse("stall:X@raisins").is_none());
    }

    #[test]
    fn run_summary_json_round_trips() {
        let s = RunSummary {
            workload: "PSAGE-MVL".to_string(),
            scale: "test".to_string(),
            epochs: 2,
            seed: 42,
            precision: "bf16".to_string(),
            losses: vec![1.25, 0.75],
            steps_per_epoch: 10,
            grad_bytes: 4096,
            total_time_ns: 1.5e9,
            kernel_launches: 321,
        };
        let json = s.to_json();
        let back = RunSummary::from_json(&json).expect("parses");
        assert_eq!(back, s);
        assert!(RunSummary::from_json("{\"workload\":3}").is_none());
        assert!(RunSummary::from_json("not json at all").is_none());
    }

    #[test]
    fn suite_report_json_and_tables() {
        let cfg = SuiteConfig::test();
        let art = crate::suite::run_workload_full(WorkloadKind::Tlstm, &cfg).unwrap();
        let report = SuiteReport {
            outcomes: vec![
                WorkloadOutcome {
                    kind: WorkloadKind::Tlstm,
                    status: WorkloadStatus::Completed(Box::new(art)),
                    attempts: 1,
                    wall: Duration::from_millis(10),
                    attempt_log: vec![AttemptEvent {
                        attempt: 1,
                        start_ms: 0.0,
                        dur_ms: 10.0,
                        result: "ok",
                    }],
                },
                WorkloadOutcome {
                    kind: WorkloadKind::Gw,
                    status: WorkloadStatus::Panicked {
                        message: "boom".to_string(),
                    },
                    attempts: 2,
                    wall: Duration::from_millis(20),
                    attempt_log: Vec::new(),
                },
            ],
        };
        assert!(!report.all_succeeded());
        assert_eq!(report.missing(), vec![WorkloadKind::Gw]);
        assert_eq!(report.artifacts().len(), 1);
        let json = report.to_json();
        assert!(json.contains("\"workload\":\"TLSTM\""), "{json}");
        assert!(json.contains("\"status\":\"panicked\""), "{json}");
        assert!(json.contains("\"completed\":1"), "{json}");
        assert!(json.contains("\"failed\":1"), "{json}");
        let table = report.status_table().to_string();
        assert!(table.contains("TLSTM") && table.contains("boom"), "{table}");
        let err = report.first_failure().expect("has a failure");
        assert!(err.to_string().starts_with("GW: "), "{err}");
    }

    #[test]
    fn attempt_log_pins_retry_timeline_fields() {
        let cfg = SuiteConfig::test();
        let rcfg = fast_rcfg()
            .with_retries(2)
            .with_faults(FaultPlan::none().inject(
                "TLSTM",
                Fault::TransientError { failures: 1 },
            ));
        let o = run_workload_resilient(WorkloadKind::Tlstm, &cfg, &rcfg);
        assert!(matches!(o.status, WorkloadStatus::Completed(_)), "{:?}", o.status);
        assert_eq!(o.attempt_log.len(), 2, "{:?}", o.attempt_log);
        let first = &o.attempt_log[0];
        let second = &o.attempt_log[1];
        assert_eq!((first.attempt, first.result), (1, "error"));
        assert_eq!((second.attempt, second.result), (2, "ok"));
        // The timeline is monotone and bounded by the measured wall time.
        assert!(second.start_ms >= first.start_ms + first.dur_ms);
        let wall_ms = o.wall.as_secs_f64() * 1e3;
        assert!(second.start_ms + second.dur_ms <= wall_ms + 1.0);
        // JSON carries the log with its pinned field names.
        let report = SuiteReport { outcomes: vec![o] };
        let json = report.to_json();
        for field in [
            "\"attempt_log\":[",
            "\"attempt\":1",
            "\"start_ms\":",
            "\"dur_ms\":",
            "\"result\":\"error\"",
            "\"result\":\"ok\"",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
        gnnmark_telemetry::export::validate_json(&json).expect("report JSON is valid");
    }

    #[test]
    fn checkpoint_save_load_respects_fingerprint() {
        let dir = std::env::temp_dir().join(format!("gnnmark_ckpt_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = SuiteConfig::test();
        let cp = Checkpoint::new(dir.clone());
        let art = crate::suite::run_workload_full(WorkloadKind::Tlstm, &cfg).unwrap();
        cp.save(&RunSummary::of(WorkloadKind::Tlstm, &cfg, &art)).unwrap();
        assert!(cp.load_matching(WorkloadKind::Tlstm, &cfg).is_some());
        // A different seed invalidates the checkpoint.
        let other = SuiteConfig {
            seed: cfg.seed + 1,
            ..cfg.clone()
        };
        assert!(cp.load_matching(WorkloadKind::Tlstm, &other).is_none());
        // A corrupted file is treated as absent.
        std::fs::write(cp.path_for(WorkloadKind::Tlstm), "garbage").unwrap();
        assert!(cp.load_matching(WorkloadKind::Tlstm, &cfg).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn generic_task_retries_then_succeeds() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let calls = Arc::new(AtomicUsize::new(0));
        let calls2 = Arc::clone(&calls);
        let mut rcfg = fast_rcfg().with_retries(2);
        rcfg.retry.backoff_base = Duration::ZERO;
        let task: Arc<dyn Fn(usize) -> Result<u32> + Send + Sync> =
            Arc::new(move |attempt| {
                calls2.fetch_add(1, Ordering::SeqCst);
                if attempt < 3 {
                    Err(TensorError::InvalidArgument {
                        op: "test_task",
                        reason: format!("transient (attempt {attempt})"),
                    })
                } else {
                    Ok(7)
                }
            });
        let o = run_task_resilient("test", &rcfg, task);
        assert!(matches!(o.status, TaskStatus::Completed(7)), "{:?}", o.status);
        assert_eq!(o.attempts, 3);
        assert_eq!(calls.load(Ordering::SeqCst), 3);
        assert!(o.failure().is_none());
    }

    #[test]
    fn generic_task_isolates_panics_and_deadlines() {
        use std::sync::Arc;
        let rcfg = fast_rcfg();
        let panicker: Arc<dyn Fn(usize) -> Result<u32> + Send + Sync> =
            Arc::new(|_| panic!("task exploded"));
        let o = run_task_resilient("panicker", &rcfg, panicker);
        assert!(matches!(o.status, TaskStatus::Panicked { .. }), "{:?}", o.status);
        assert!(o.failure().unwrap().contains("task exploded"));

        let rcfg = fast_rcfg().with_timeout(Duration::from_millis(20));
        let staller: Arc<dyn Fn(usize) -> Result<u32> + Send + Sync> = Arc::new(|_| {
            std::thread::sleep(Duration::from_secs(5));
            Ok(0)
        });
        let o = run_task_resilient("staller", &rcfg, staller);
        assert!(matches!(o.status, TaskStatus::TimedOut { .. }), "{:?}", o.status);
        assert!(o.failure().unwrap().contains("deadline"));
    }

    #[test]
    fn shutdown_request_interrupts_remaining_workloads() {
        // With shutdown already requested, every workload is skipped as
        // Interrupted and nothing trains.
        crate::shutdown::request();
        let report = run_suite_resilient(&SuiteConfig::test(), &fast_rcfg());
        crate::shutdown::reset_for_tests();
        assert_eq!(report.interrupted(), WorkloadKind::ALL.len());
        assert!(!report.all_succeeded());
        let o = &report.outcomes[0];
        assert!(matches!(o.status, WorkloadStatus::Interrupted));
        assert_eq!(o.status.label(), "interrupted");
        assert!(o.status.detail().contains("shutdown"));
        assert_eq!(o.attempts, 0);
        gnnmark_telemetry::export::validate_json(&report.to_json()).unwrap();
    }

    #[test]
    fn device_spec_is_cloneable_for_attempts() {
        // Attempt threads move a cloned SuiteConfig; make sure the device
        // spec stays equal across the clone (guards accidental `Copy`
        // regressions in gpusim).
        let cfg = SuiteConfig::test();
        let c2 = cfg.clone();
        assert_eq!(cfg.device.elem_bytes, c2.device.elem_bytes);
        let _ = DeviceSpec::v100();
    }
}
