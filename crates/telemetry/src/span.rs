//! Hierarchical wall-clock spans.
//!
//! A [`Span`] is an RAII guard: entering it stamps a monotonic start time,
//! dropping it records a finished [`SpanEvent`] into a global sink. Spans
//! nest naturally — the Chrome trace renderer stacks overlapping events on
//! the same thread lane, so `epoch ⊃ step ⊃ forward` needs no explicit
//! parent ids.
//!
//! Telemetry is **off by default** and the entire span machinery compiles
//! down to one relaxed load of a static flag per [`span!`](crate::span)
//! site when disabled: no clock reads, no allocation, no locks. Spans never
//! touch tensor data, RNG state, or the op recorder, so enabling them
//! cannot perturb training determinism — only wall-clock observations are
//! added.
//!
//! Threads are first-class: each thread gets a stable *lane* id on its
//! first span, and the lane → thread-name mapping is kept so trace
//! exporters can name one timeline row per thread (the resilient suite
//! runner trains workloads on dedicated threads).

use std::borrow::Cow;
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static PROGRESS: AtomicBool = AtomicBool::new(false);
static NEXT_LANE: AtomicUsize = AtomicUsize::new(0);

static SINK: Mutex<Vec<SpanEvent>> = Mutex::new(Vec::new());
static LANES: Mutex<Vec<LaneInfo>> = Mutex::new(Vec::new());

/// Process-wide monotonic epoch; every span timestamp is relative to this.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process-wide telemetry epoch.
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Turns span collection on or off (process-wide). Off by default.
pub fn set_enabled(on: bool) {
    if on {
        // Pin the epoch before the first span so timestamps start near 0.
        let _ = epoch();
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// `true` when spans are being collected.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns the live per-epoch progress line on or off (the CLI's
/// `--progress`). Independent of span collection.
pub fn set_progress(on: bool) {
    PROGRESS.store(on, Ordering::Relaxed);
}

/// `true` when progress reporting is requested.
#[inline]
pub fn progress_enabled() -> bool {
    PROGRESS.load(Ordering::Relaxed)
}

/// One finished span (or instant mark) on some thread's lane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name (`"epoch"`, `"forward"`, `"attempt:TLSTM"`, …).
    pub name: Cow<'static, str>,
    /// Category, used as the Chrome-trace `cat` field (`"host"`,
    /// `"resilience"`, `"gpu-model"`, …).
    pub cat: &'static str,
    /// Lane (stable per-thread id) the event happened on.
    pub lane: usize,
    /// Start, nanoseconds since the telemetry epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds; 0 for instant marks.
    pub dur_ns: u64,
    /// `true` for zero-duration instant marks (retry scheduled, fault
    /// injected, checkpoint written, …).
    pub instant: bool,
}

/// Lane id → thread name, captured when the thread's first span opened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneInfo {
    /// The lane id used by this thread's events.
    pub lane: usize,
    /// The OS thread name at registration (or `thread-N`).
    pub thread: String,
}

thread_local! {
    static LANE: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// This thread's lane id, assigning and registering one on first use.
pub fn lane() -> usize {
    LANE.with(|l| {
        let v = l.get();
        if v != usize::MAX {
            return v;
        }
        let id = NEXT_LANE.fetch_add(1, Ordering::Relaxed);
        l.set(id);
        let name = std::thread::current()
            .name()
            .map_or_else(|| format!("thread-{id}"), str::to_string);
        LANES.lock().unwrap().push(LaneInfo { lane: id, thread: name });
        id
    })
}

/// An RAII span guard; see the module docs. `None` inside means telemetry
/// was disabled at entry and the drop is a no-op.
#[must_use = "a span measures the region it is alive for; bind it to a named local"]
pub struct Span(Option<OpenSpan>);

struct OpenSpan {
    name: Cow<'static, str>,
    cat: &'static str,
    start_ns: u64,
}

impl Span {
    /// Opens a span in the default `"host"` category.
    #[inline]
    pub fn enter(name: impl Into<Cow<'static, str>>) -> Span {
        Self::enter_cat(name, "host")
    }

    /// Opens a span in an explicit category.
    #[inline]
    pub fn enter_cat(name: impl Into<Cow<'static, str>>, cat: &'static str) -> Span {
        if !enabled() {
            return Span(None);
        }
        Span(Some(OpenSpan {
            name: name.into(),
            cat,
            start_ns: now_ns(),
        }))
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(open) = self.0.take() {
            let end = now_ns();
            let event = SpanEvent {
                name: open.name,
                cat: open.cat,
                lane: lane(),
                start_ns: open.start_ns,
                dur_ns: end.saturating_sub(open.start_ns),
                instant: false,
            };
            SINK.lock().unwrap().push(event);
        }
    }
}

/// Records a zero-duration instant mark (visible as an arrow/tick in the
/// trace). No-op when telemetry is disabled.
pub fn mark(name: impl Into<Cow<'static, str>>, cat: &'static str) {
    if !enabled() {
        return;
    }
    let event = SpanEvent {
        name: name.into(),
        cat,
        lane: lane(),
        start_ns: now_ns(),
        dur_ns: 0,
        instant: true,
    };
    SINK.lock().unwrap().push(event);
}

/// Everything the host-side timeline collected: finished events plus the
/// lane → thread-name mapping trace exporters need.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HostTrace {
    /// Finished spans and marks, sorted by start time.
    pub events: Vec<SpanEvent>,
    /// Lane naming metadata, sorted by lane id.
    pub lanes: Vec<LaneInfo>,
}

impl HostTrace {
    /// Events whose name matches, in start order.
    pub fn named(&self, name: &str) -> Vec<&SpanEvent> {
        self.events.iter().filter(|e| e.name == name).collect()
    }
}

/// Drains every buffered span into a [`HostTrace`] snapshot. Lane
/// registrations are *not* cleared (thread lane ids stay stable for the
/// process lifetime).
pub fn take_host_trace() -> HostTrace {
    let mut events = std::mem::take(&mut *SINK.lock().unwrap());
    events.sort_by_key(|e| (e.start_ns, e.lane));
    let mut lanes = LANES.lock().unwrap().clone();
    lanes.sort_by_key(|l| l.lane);
    HostTrace { events, lanes }
}

/// Number of events currently buffered (without draining).
pub fn pending_spans() -> usize {
    SINK.lock().unwrap().len()
}

/// Opens an RAII wall-clock span: `span!("forward")`, or with an explicit
/// category `span!("attempt", "resilience")`. Expands to a single branch on
/// a static flag when telemetry is disabled. Bind the guard to a named
/// local (`let _sp = span!(...)`) — binding to `_` drops it immediately.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::Span::enter($name)
    };
    ($name:expr, $cat:expr) => {
        $crate::Span::enter_cat($name, $cat)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // Span tests share process-global state with each other; serialize them.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _l = lock();
        set_enabled(false);
        let _ = take_host_trace();
        {
            let _sp = crate::span!("quiet");
            crate::mark("quiet-mark", "host");
        }
        assert_eq!(pending_spans(), 0);
    }

    #[test]
    fn enabled_spans_capture_name_cat_and_duration() {
        let _l = lock();
        let _ = take_host_trace();
        set_enabled(true);
        {
            let _outer = crate::span!("outer");
            let _inner = crate::span!("inner", "resilience");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        crate::mark("tick", "resilience");
        set_enabled(false);
        let trace = take_host_trace();
        assert_eq!(trace.events.len(), 3);
        let inner = trace.named("inner")[0];
        assert_eq!(inner.cat, "resilience");
        assert!(inner.dur_ns >= 1_000_000, "slept 2ms, got {}", inner.dur_ns);
        let outer = trace.named("outer")[0];
        assert!(outer.start_ns <= inner.start_ns);
        assert!(outer.dur_ns >= inner.dur_ns);
        let tick = trace.named("tick")[0];
        assert!(tick.instant && tick.dur_ns == 0);
        assert!(!trace.lanes.is_empty());
    }

    #[test]
    fn lanes_are_stable_per_thread_and_distinct_across_threads() {
        let _l = lock();
        let here = lane();
        assert_eq!(here, lane(), "lane is stable");
        let other = std::thread::spawn(lane).join().unwrap();
        assert_ne!(here, other);
    }

    #[test]
    fn spans_from_worker_threads_land_on_their_own_lane() {
        let _l = lock();
        let _ = take_host_trace();
        set_enabled(true);
        let main_lane = lane();
        std::thread::Builder::new()
            .name("telemetry-test-worker".into())
            .spawn(|| {
                let _sp = crate::span!("worker-span");
            })
            .unwrap()
            .join()
            .unwrap();
        set_enabled(false);
        let trace = take_host_trace();
        let ev = trace.named("worker-span")[0];
        assert_ne!(ev.lane, main_lane);
        assert!(trace
            .lanes
            .iter()
            .any(|l| l.lane == ev.lane && l.thread == "telemetry-test-worker"));
    }
}
