//! A small process-wide metrics registry: counters, gauges and summary
//! histograms keyed by name.
//!
//! The registry is deliberately simple — a mutex around a sorted map —
//! because GNNMark updates metrics at *run* granularity (once per epoch,
//! per workload, or per export), never inside kernel hot loops. Hot-path
//! signals (pool hits, worker busy time, tape nodes) are accumulated in
//! their owning crates with relaxed atomics and only *read into* the
//! registry when a snapshot is taken.
//!
//! Label sets are encoded into the key itself, Prometheus-style:
//! `gnnmark_workload_wall_ms{workload="STGCN"}`. The exporters in
//! [`crate::export`] understand that convention.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// One metric's current value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricValue {
    /// Monotonically increasing count.
    Counter(u64),
    /// Last-write-wins instantaneous value.
    Gauge(f64),
    /// Summary of observed samples.
    Histogram {
        /// Number of samples observed.
        count: u64,
        /// Sum of all samples.
        sum: f64,
        /// Smallest sample.
        min: f64,
        /// Largest sample.
        max: f64,
    },
}

impl MetricValue {
    /// The counter value, or 0 for non-counter metrics — convenient for
    /// "did this counter move" assertions in tests.
    pub fn as_counter(&self) -> u64 {
        match self {
            MetricValue::Counter(v) => *v,
            _ => 0,
        }
    }

    /// The gauge value, or 0.0 for non-gauge metrics.
    pub fn as_gauge(&self) -> f64 {
        match self {
            MetricValue::Gauge(v) => *v,
            _ => 0.0,
        }
    }

    /// Histogram summary as `(count, sum, min, max)`, or `None` for
    /// non-histogram metrics.
    pub fn as_histogram(&self) -> Option<(u64, f64, f64, f64)> {
        match self {
            MetricValue::Histogram { count, sum, min, max } => {
                Some((*count, *sum, *min, *max))
            }
            _ => None,
        }
    }
}

static REGISTRY: Mutex<BTreeMap<String, MetricValue>> = Mutex::new(BTreeMap::new());

/// Adds `delta` to the named counter, creating it at zero first.
pub fn counter_add(name: &str, delta: u64) {
    let mut reg = REGISTRY.lock().unwrap();
    match reg.get_mut(name) {
        Some(MetricValue::Counter(v)) => *v += delta,
        _ => {
            reg.insert(name.to_string(), MetricValue::Counter(delta));
        }
    }
}

/// Sets the named counter to an absolute value (for sources that already
/// aggregate, e.g. the pool's global hit count).
pub fn counter_set(name: &str, value: u64) {
    REGISTRY
        .lock()
        .unwrap()
        .insert(name.to_string(), MetricValue::Counter(value));
}

/// Sets the named gauge.
pub fn gauge_set(name: &str, value: f64) {
    REGISTRY
        .lock()
        .unwrap()
        .insert(name.to_string(), MetricValue::Gauge(value));
}

/// Folds one sample into the named histogram.
pub fn observe(name: &str, sample: f64) {
    let mut reg = REGISTRY.lock().unwrap();
    match reg.get_mut(name) {
        Some(MetricValue::Histogram { count, sum, min, max }) => {
            *count += 1;
            *sum += sample;
            *min = min.min(sample);
            *max = max.max(sample);
        }
        _ => {
            reg.insert(
                name.to_string(),
                MetricValue::Histogram { count: 1, sum: sample, min: sample, max: sample },
            );
        }
    }
}

/// A sorted copy of every registered metric.
pub fn snapshot() -> Vec<(String, MetricValue)> {
    REGISTRY
        .lock()
        .unwrap()
        .iter()
        .map(|(k, v)| (k.clone(), *v))
        .collect()
}

/// Reads one metric by exact name.
pub fn get(name: &str) -> Option<MetricValue> {
    REGISTRY.lock().unwrap().get(name).copied()
}

/// Clears the registry (tests, or between independent runs).
pub fn reset() {
    REGISTRY.lock().unwrap().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global; give each test its own key prefix so
    // they can run concurrently.

    #[test]
    fn counters_accumulate_and_set_overrides() {
        counter_add("t1_requests", 2);
        counter_add("t1_requests", 3);
        assert_eq!(get("t1_requests"), Some(MetricValue::Counter(5)));
        counter_set("t1_requests", 7);
        assert_eq!(get("t1_requests"), Some(MetricValue::Counter(7)));
    }

    #[test]
    fn gauges_are_last_write_wins() {
        gauge_set("t2_rate", 0.25);
        gauge_set("t2_rate", 0.75);
        assert_eq!(get("t2_rate"), Some(MetricValue::Gauge(0.75)));
    }

    #[test]
    fn histograms_track_count_sum_min_max() {
        observe("t3_lat", 4.0);
        observe("t3_lat", 1.0);
        observe("t3_lat", 10.0);
        match get("t3_lat") {
            Some(MetricValue::Histogram { count, sum, min, max }) => {
                assert_eq!(count, 3);
                assert!((sum - 15.0).abs() < 1e-12);
                assert!((min - 1.0).abs() < 1e-12);
                assert!((max - 10.0).abs() < 1e-12);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn typed_accessors_match_variants() {
        counter_add("t5_c", 3);
        gauge_set("t5_g", 2.5);
        observe("t5_h", 4.0);
        observe("t5_h", 6.0);
        assert_eq!(get("t5_c").unwrap().as_counter(), 3);
        assert!((get("t5_g").unwrap().as_gauge() - 2.5).abs() < 1e-12);
        let (count, sum, min, max) = get("t5_h").unwrap().as_histogram().unwrap();
        assert_eq!(count, 2);
        assert!((sum - 10.0).abs() < 1e-12);
        assert!((min - 4.0).abs() < 1e-12 && (max - 6.0).abs() < 1e-12);
        // Accessors on the wrong variant degrade to defaults, not panics.
        assert_eq!(get("t5_g").unwrap().as_counter(), 0);
        assert!(get("t5_c").unwrap().as_histogram().is_none());
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        counter_add("t4_b", 1);
        counter_add("t4_a", 1);
        let names: Vec<_> = snapshot()
            .into_iter()
            .map(|(k, _)| k)
            .filter(|k| k.starts_with("t4_"))
            .collect();
        assert_eq!(names, ["t4_a", "t4_b"]);
    }
}
