//! A small process-wide metrics registry: counters, gauges and summary
//! histograms keyed by name.
//!
//! The registry is deliberately simple — a mutex around a sorted map —
//! because GNNMark updates metrics at *run* granularity (once per epoch,
//! per workload, or per export), never inside kernel hot loops. Hot-path
//! signals (pool hits, worker busy time, tape nodes) are accumulated in
//! their owning crates with relaxed atomics and only *read into* the
//! registry when a snapshot is taken.
//!
//! Label sets are encoded into the key itself, Prometheus-style:
//! `gnnmark_workload_wall_ms{workload="STGCN"}`. The exporters in
//! [`crate::export`] understand that convention.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Maximum number of *finite* bucket bounds a bucketed histogram holds
/// (the implicit `+Inf` bucket rides in one extra slot). Fixed so
/// [`MetricValue`] stays `Copy`.
pub const MAX_BUCKETS: usize = 16;

/// The shared request-latency bucket boundaries, seconds. Both the serve
/// daemon's per-route histograms and `gnnmark loadtest` observe into
/// these, so dashboard and SLO-harness quantiles come from one counter
/// family.
pub const LATENCY_BUCKETS_S: &[f64] = &[
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
];

/// One metric's current value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricValue {
    /// Monotonically increasing count.
    Counter(u64),
    /// Last-write-wins instantaneous value.
    Gauge(f64),
    /// Summary of observed samples.
    Histogram {
        /// Number of samples observed.
        count: u64,
        /// Sum of all samples.
        sum: f64,
        /// Smallest sample.
        min: f64,
        /// Largest sample.
        max: f64,
    },
    /// Fixed-boundary bucketed histogram (Prometheus `histogram` type).
    Buckets {
        /// Ascending finite upper bounds; samples ≤ `bounds[i]` land in
        /// bucket `i`, the rest in the implicit `+Inf` bucket at
        /// `counts[bounds.len()]`.
        bounds: &'static [f64],
        /// Per-bucket (non-cumulative) sample counts; only the first
        /// `bounds.len() + 1` slots are meaningful.
        counts: [u64; MAX_BUCKETS + 1],
        /// Number of samples observed.
        count: u64,
        /// Sum of all samples.
        sum: f64,
    },
}

impl MetricValue {
    /// The counter value, or 0 for non-counter metrics — convenient for
    /// "did this counter move" assertions in tests.
    pub fn as_counter(&self) -> u64 {
        match self {
            MetricValue::Counter(v) => *v,
            _ => 0,
        }
    }

    /// The gauge value, or 0.0 for non-gauge metrics.
    pub fn as_gauge(&self) -> f64 {
        match self {
            MetricValue::Gauge(v) => *v,
            _ => 0.0,
        }
    }

    /// Histogram summary as `(count, sum, min, max)`, or `None` for
    /// non-histogram metrics.
    pub fn as_histogram(&self) -> Option<(u64, f64, f64, f64)> {
        match self {
            MetricValue::Histogram { count, sum, min, max } => {
                Some((*count, *sum, *min, *max))
            }
            _ => None,
        }
    }

    /// Bucketed histogram as `(bounds, per-bucket counts, count, sum)`
    /// where `counts.len() == bounds.len() + 1` (last slot is `+Inf`), or
    /// `None` for other variants.
    pub fn as_buckets(&self) -> Option<(&'static [f64], &[u64], u64, f64)> {
        match self {
            MetricValue::Buckets { bounds, counts, count, sum } => {
                Some((bounds, &counts[..bounds.len() + 1], *count, *sum))
            }
            _ => None,
        }
    }

    /// Estimated `q`-quantile (`q` in `[0, 1]`) of a bucketed histogram:
    /// nearest-rank bucket selection with linear interpolation inside the
    /// bucket, the same estimate Prometheus' `histogram_quantile` makes.
    /// Samples in the `+Inf` bucket clamp to the largest finite bound.
    /// `None` for non-bucketed variants or when no samples were observed.
    pub fn bucket_quantile(&self, q: f64) -> Option<f64> {
        let (bounds, counts, count, _) = self.as_buckets()?;
        if count == 0 || bounds.is_empty() {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            let prev_seen = seen;
            seen += c;
            if seen >= rank {
                let upper = if i < bounds.len() {
                    bounds[i]
                } else {
                    return Some(bounds[bounds.len() - 1]);
                };
                let lower = if i == 0 { 0.0 } else { bounds[i - 1] };
                let into = (rank - prev_seen) as f64 / c as f64;
                return Some(lower + (upper - lower) * into);
            }
        }
        Some(bounds[bounds.len() - 1])
    }
}

static REGISTRY: Mutex<BTreeMap<String, MetricValue>> = Mutex::new(BTreeMap::new());

/// Adds `delta` to the named counter, creating it at zero first.
pub fn counter_add(name: &str, delta: u64) {
    let mut reg = REGISTRY.lock().unwrap();
    match reg.get_mut(name) {
        Some(MetricValue::Counter(v)) => *v += delta,
        _ => {
            reg.insert(name.to_string(), MetricValue::Counter(delta));
        }
    }
}

/// Sets the named counter to an absolute value (for sources that already
/// aggregate, e.g. the pool's global hit count).
pub fn counter_set(name: &str, value: u64) {
    REGISTRY
        .lock()
        .unwrap()
        .insert(name.to_string(), MetricValue::Counter(value));
}

/// Sets the named gauge.
pub fn gauge_set(name: &str, value: f64) {
    REGISTRY
        .lock()
        .unwrap()
        .insert(name.to_string(), MetricValue::Gauge(value));
}

/// Folds one sample into the named histogram.
pub fn observe(name: &str, sample: f64) {
    let mut reg = REGISTRY.lock().unwrap();
    match reg.get_mut(name) {
        Some(MetricValue::Histogram { count, sum, min, max }) => {
            *count += 1;
            *sum += sample;
            *min = min.min(sample);
            *max = max.max(sample);
        }
        _ => {
            reg.insert(
                name.to_string(),
                MetricValue::Histogram { count: 1, sum: sample, min: sample, max: sample },
            );
        }
    }
}

/// Folds one sample into the named fixed-bucket histogram. `bounds` must
/// be ascending, non-empty, and at most [`MAX_BUCKETS`] long (the shared
/// [`LATENCY_BUCKETS_S`] set satisfies all three); the first observation
/// pins the bucket layout and later calls reuse it.
pub fn observe_bucketed(name: &str, sample: f64, bounds: &'static [f64]) {
    assert!(
        !bounds.is_empty() && bounds.len() <= MAX_BUCKETS,
        "observe_bucketed: 1..={MAX_BUCKETS} bounds required"
    );
    let mut reg = REGISTRY.lock().unwrap();
    match reg.get_mut(name) {
        Some(MetricValue::Buckets { bounds, counts, count, sum }) => {
            let idx = bounds
                .iter()
                .position(|&b| sample <= b)
                .unwrap_or(bounds.len());
            counts[idx] += 1;
            *count += 1;
            *sum += sample;
        }
        _ => {
            let mut counts = [0u64; MAX_BUCKETS + 1];
            let idx = bounds
                .iter()
                .position(|&b| sample <= b)
                .unwrap_or(bounds.len());
            counts[idx] = 1;
            reg.insert(
                name.to_string(),
                MetricValue::Buckets { bounds, counts, count: 1, sum: sample },
            );
        }
    }
}

/// A sorted copy of every registered metric.
pub fn snapshot() -> Vec<(String, MetricValue)> {
    REGISTRY
        .lock()
        .unwrap()
        .iter()
        .map(|(k, v)| (k.clone(), *v))
        .collect()
}

/// Reads one metric by exact name.
pub fn get(name: &str) -> Option<MetricValue> {
    REGISTRY.lock().unwrap().get(name).copied()
}

/// Clears the registry (tests, or between independent runs).
pub fn reset() {
    REGISTRY.lock().unwrap().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global; give each test its own key prefix so
    // they can run concurrently.

    #[test]
    fn counters_accumulate_and_set_overrides() {
        counter_add("t1_requests", 2);
        counter_add("t1_requests", 3);
        assert_eq!(get("t1_requests"), Some(MetricValue::Counter(5)));
        counter_set("t1_requests", 7);
        assert_eq!(get("t1_requests"), Some(MetricValue::Counter(7)));
    }

    #[test]
    fn gauges_are_last_write_wins() {
        gauge_set("t2_rate", 0.25);
        gauge_set("t2_rate", 0.75);
        assert_eq!(get("t2_rate"), Some(MetricValue::Gauge(0.75)));
    }

    #[test]
    fn histograms_track_count_sum_min_max() {
        observe("t3_lat", 4.0);
        observe("t3_lat", 1.0);
        observe("t3_lat", 10.0);
        match get("t3_lat") {
            Some(MetricValue::Histogram { count, sum, min, max }) => {
                assert_eq!(count, 3);
                assert!((sum - 15.0).abs() < 1e-12);
                assert!((min - 1.0).abs() < 1e-12);
                assert!((max - 10.0).abs() < 1e-12);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn typed_accessors_match_variants() {
        counter_add("t5_c", 3);
        gauge_set("t5_g", 2.5);
        observe("t5_h", 4.0);
        observe("t5_h", 6.0);
        assert_eq!(get("t5_c").unwrap().as_counter(), 3);
        assert!((get("t5_g").unwrap().as_gauge() - 2.5).abs() < 1e-12);
        let (count, sum, min, max) = get("t5_h").unwrap().as_histogram().unwrap();
        assert_eq!(count, 2);
        assert!((sum - 10.0).abs() < 1e-12);
        assert!((min - 4.0).abs() < 1e-12 && (max - 6.0).abs() < 1e-12);
        // Accessors on the wrong variant degrade to defaults, not panics.
        assert_eq!(get("t5_g").unwrap().as_counter(), 0);
        assert!(get("t5_c").unwrap().as_histogram().is_none());
    }

    #[test]
    fn bucketed_histograms_count_per_bucket() {
        let bounds: &[f64] = &[0.1, 1.0, 10.0];
        observe_bucketed("t6_lat", 0.05, bounds);
        observe_bucketed("t6_lat", 0.5, bounds);
        observe_bucketed("t6_lat", 0.7, bounds);
        observe_bucketed("t6_lat", 99.0, bounds);
        let v = get("t6_lat").unwrap();
        let (b, counts, count, sum) = v.as_buckets().unwrap();
        assert_eq!(b, bounds);
        assert_eq!(counts, [1, 2, 0, 1]);
        assert_eq!(count, 4);
        assert!((sum - 100.25).abs() < 1e-9);
        // Non-bucket variants return None.
        observe("t6_plain", 1.0);
        assert!(get("t6_plain").unwrap().as_buckets().is_none());
    }

    #[test]
    fn bucket_quantiles_interpolate() {
        let bounds: &[f64] = &[0.1, 1.0];
        for _ in 0..9 {
            observe_bucketed("t7_lat", 0.05, bounds);
        }
        observe_bucketed("t7_lat", 0.5, bounds);
        let v = get("t7_lat").unwrap();
        // p50 lands mid-way through the first bucket (rank 5 of 9 samples).
        let p50 = v.bucket_quantile(0.5).unwrap();
        assert!(p50 > 0.0 && p50 <= 0.1, "p50 {p50}");
        // p99 → rank 10, the lone sample in (0.1, 1.0].
        let p99 = v.bucket_quantile(0.99).unwrap();
        assert!(p99 > 0.1 && p99 <= 1.0, "p99 {p99}");
        // +Inf samples clamp to the top finite bound.
        observe_bucketed("t7_inf", 5.0, bounds);
        assert_eq!(get("t7_inf").unwrap().bucket_quantile(0.5), Some(1.0));
        // Empty / wrong-variant → None.
        observe("t7_plain", 1.0);
        assert!(get("t7_plain").unwrap().bucket_quantile(0.5).is_none());
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        counter_add("t4_b", 1);
        counter_add("t4_a", 1);
        let names: Vec<_> = snapshot()
            .into_iter()
            .map(|(k, _)| k)
            .filter(|k| k.starts_with("t4_"))
            .collect();
        assert_eq!(names, ["t4_a", "t4_b"]);
    }
}
