//! Exporters: JSON metrics snapshot, Prometheus text format, the run
//! manifest, and a dependency-free JSON validator shared by tests and the
//! CI smoke checks.
//!
//! The merged Chrome/Perfetto trace exporter lives in `gnnmark-profiler`
//! (it needs [`WorkloadProfile`]'s kernel records); this module covers the
//! purely host-side artifacts.

use std::fmt::Write as _;

use crate::metrics::MetricValue;

/// Escapes a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON-safe number (JSON has no NaN/Infinity).
fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Renders a metrics snapshot as a pretty-printed JSON object keyed by
/// metric name. Counters become integers, gauges numbers, histograms
/// `{count, sum, min, max}` objects.
pub fn metrics_json(snapshot: &[(String, MetricValue)]) -> String {
    let mut out = String::from("{\n");
    for (i, (name, value)) in snapshot.iter().enumerate() {
        let _ = write!(out, "  \"{}\": ", json_escape(name));
        match value {
            MetricValue::Counter(v) => {
                let _ = write!(out, "{v}");
            }
            MetricValue::Gauge(v) => out.push_str(&json_number(*v)),
            MetricValue::Histogram { count, sum, min, max } => {
                let _ = write!(
                    out,
                    "{{\"count\": {count}, \"sum\": {}, \"min\": {}, \"max\": {}}}",
                    json_number(*sum),
                    json_number(*min),
                    json_number(*max)
                );
            }
            MetricValue::Buckets { .. } => {
                let (bounds, counts, count, sum) = value.as_buckets().expect("buckets variant");
                let _ = write!(out, "{{\"count\": {count}, \"sum\": {}, \"le\": [", json_number(sum));
                for (i, b) in bounds.iter().enumerate() {
                    let _ = write!(out, "{}{}", if i > 0 { ", " } else { "" }, json_number(*b));
                }
                out.push_str("], \"buckets\": [");
                for (i, c) in counts.iter().enumerate() {
                    let _ = write!(out, "{}{c}", if i > 0 { ", " } else { "" });
                }
                out.push_str("]}");
            }
        }
        out.push_str(if i + 1 < snapshot.len() { ",\n" } else { "\n" });
    }
    out.push_str("}\n");
    out
}

/// Splits `gnnmark_foo{label="x"}` into its base name and the braced
/// label suffix (empty when unlabelled).
fn split_labels(name: &str) -> (&str, &str) {
    match name.find('{') {
        Some(i) => (&name[..i], &name[i..]),
        None => (name, ""),
    }
}

/// Renders a metrics snapshot in the Prometheus text exposition format.
/// Labelled series (`name{worker="3"}`) share one `# TYPE` line per base
/// name; histograms expand to `_count`/`_sum`/`_min`/`_max` series.
pub fn metrics_prometheus(snapshot: &[(String, MetricValue)]) -> String {
    let mut out = String::new();
    let mut last_typed = String::new();
    for (name, value) in snapshot {
        let (base, labels) = split_labels(name);
        match value {
            MetricValue::Counter(v) => {
                if base != last_typed {
                    let _ = writeln!(out, "# TYPE {base} counter");
                    last_typed = base.to_string();
                }
                let _ = writeln!(out, "{base}{labels} {v}");
            }
            MetricValue::Gauge(v) => {
                if base != last_typed {
                    let _ = writeln!(out, "# TYPE {base} gauge");
                    last_typed = base.to_string();
                }
                let _ = writeln!(out, "{base}{labels} {v}");
            }
            MetricValue::Histogram { count, sum, min, max } => {
                if base != last_typed {
                    let _ = writeln!(out, "# TYPE {base} summary");
                    last_typed = base.to_string();
                }
                let _ = writeln!(out, "{base}_count{labels} {count}");
                let _ = writeln!(out, "{base}_sum{labels} {sum}");
                let _ = writeln!(out, "{base}_min{labels} {min}");
                let _ = writeln!(out, "{base}_max{labels} {max}");
            }
            MetricValue::Buckets { .. } => {
                let (bounds, counts, count, sum) = value.as_buckets().expect("buckets variant");
                if base != last_typed {
                    let _ = writeln!(out, "# TYPE {base} histogram");
                    last_typed = base.to_string();
                }
                let mut cumulative = 0u64;
                for (i, c) in counts.iter().enumerate() {
                    cumulative += c;
                    let le = if i < bounds.len() {
                        format!("{}", bounds[i])
                    } else {
                        "+Inf".to_string()
                    };
                    let le_labels = merge_le_label(labels, &le);
                    let _ = writeln!(out, "{base}_bucket{le_labels} {cumulative}");
                }
                let _ = writeln!(out, "{base}_sum{labels} {sum}");
                let _ = writeln!(out, "{base}_count{labels} {count}");
            }
        }
    }
    out
}

/// Splices an `le="…"` label into an existing (possibly empty) label set:
/// `` + `0.5` → `{le="0.5"}`, `{route="/jobs"}` + `0.5` →
/// `{route="/jobs",le="0.5"}`.
fn merge_le_label(labels: &str, le: &str) -> String {
    if labels.is_empty() {
        format!("{{le=\"{le}\"}}")
    } else {
        format!("{},le=\"{le}\"}}", &labels[..labels.len() - 1])
    }
}

/// One workload's row in the run manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestWorkload {
    /// Workload label (`"STGCN"`, `"PSAGE-MVL"`, …).
    pub name: String,
    /// Terminal status string (`"completed"`, `"failed"`, …).
    pub status: String,
    /// Host wall-clock time, milliseconds.
    pub wall_ms: f64,
    /// Modeled-GPU time, milliseconds (0 when the run produced no profile).
    pub modeled_ms: f64,
    /// Attempts consumed (1 = first try succeeded).
    pub attempts: u32,
}

/// The run manifest written next to the CSVs: enough provenance to
/// reproduce or compare a run without parsing its logs.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// CLI target that produced this run (`"stgcn"`, `"all"`, …).
    pub target: String,
    /// RNG seed the suite ran with.
    pub seed: u64,
    /// Scale name (`"test"`, `"small"`, `"paper"`).
    pub scale: String,
    /// Tensor-kernel thread count in effect.
    pub threads: usize,
    /// Modeled device name (e.g. `"V100"`).
    pub device: String,
    /// Parameter/activation storage precision (`"fp32"`, `"fp16"`, `"bf16"`).
    pub precision: String,
    /// Training-mode key (`"fullgraph"` or `"minibatch-b<batch>-f<fanouts>"`).
    pub mode: String,
    /// Per-workload outcomes.
    pub workloads: Vec<ManifestWorkload>,
    /// Overall status: `"ok"` when every workload completed.
    pub status: String,
}

impl RunManifest {
    /// Serializes the manifest as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"target\": \"{}\",", json_escape(&self.target));
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"scale\": \"{}\",", json_escape(&self.scale));
        let _ = writeln!(out, "  \"threads\": {},", self.threads);
        let _ = writeln!(out, "  \"device\": \"{}\",", json_escape(&self.device));
        let _ = writeln!(
            out,
            "  \"precision\": \"{}\",",
            json_escape(&self.precision)
        );
        let _ = writeln!(out, "  \"mode\": \"{}\",", json_escape(&self.mode));
        out.push_str("  \"workloads\": [");
        for (i, w) in self.workloads.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                out,
                "    {{\"name\": \"{}\", \"status\": \"{}\", \"wall_ms\": {}, \
                 \"modeled_ms\": {}, \"attempts\": {}}}",
                json_escape(&w.name),
                json_escape(&w.status),
                json_number(w.wall_ms),
                json_number(w.modeled_ms),
                w.attempts
            );
        }
        if !self.workloads.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        let _ = writeln!(out, "  \"status\": \"{}\"", json_escape(&self.status));
        out.push_str("}\n");
        out
    }
}

/// Validates that `s` is one complete, well-formed JSON value (a full
/// recursive-descent parse, not just brace balancing). Returns a
/// position-annotated message on the first error. Shared by the trace
/// regression tests and the CI smoke check so "the artifact parses" means
/// the same thing everywhere.
pub fn validate_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.i != b.len() {
        return Err(format!("trailing data at byte {}", p.i));
    }
    Ok(())
}

/// Routes a hand-built JSON document through [`validate_json`] before it
/// leaves the producer: in debug/test builds a malformed document panics
/// with `context` naming the writer (the trailing-comma class of bug the
/// trace exporter once shipped); release builds pass the string through
/// untouched. Writers return the validated string, so call sites read as
/// `debug_validated("suite status", out)`.
#[must_use]
pub fn debug_validated(context: &str, json: String) -> String {
    debug_assert!(
        validate_json(&json).is_ok(),
        "{context} produced invalid JSON ({}): {json}",
        validate_json(&json).unwrap_err(),
    );
    json
}

/// A parsed JSON value — the read side of the dependency-free JSON
/// toolkit (the write side being the exporters above). Used by the serve
/// subsystem to parse campaign specs and job submissions with the same
/// grammar [`validate_json`] enforces.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string (escapes resolved).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source order (duplicate keys keep the last value on
    /// lookup, like every mainstream parser).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup (last occurrence wins); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => {
                fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a `u64` (rejects negatives and fractions).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        (n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64).then_some(n as u64)
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one complete JSON document into a [`JsonValue`] tree using the
/// same recursive-descent grammar as [`validate_json`]. Returns a
/// position-annotated message on the first error.
pub fn parse_json(s: &str) -> Result<JsonValue, String> {
    let b = s.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.i != b.len() {
        return Err(format!("trailing data at byte {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.i)
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(())
        } else {
            Err(self.err("bad literal"))
        }
    }

    fn number(&mut self) -> Result<(), String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let digits = |p: &mut Self| {
            let s = p.i;
            while p.peek().is_some_and(|c| c.is_ascii_digit()) {
                p.i += 1;
            }
            p.i > s
        };
        if !digits(self) {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            if !digits(self) {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            if !digits(self) {
                return Err(self.err("expected exponent digits"));
            }
        }
        debug_assert!(self.i > start);
        Ok(())
    }

    fn string(&mut self) -> Result<(), String> {
        self.i += 1; // opening quote
        while let Some(c) = self.peek() {
            match c {
                b'"' => {
                    self.i += 1;
                    return Ok(());
                }
                b'\\' => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.i += 1;
                        }
                        Some(b'u') => {
                            self.i += 1;
                            for _ in 0..4 {
                                if !self.peek().is_some_and(|h| h.is_ascii_hexdigit()) {
                                    return Err(self.err("bad \\u escape"));
                                }
                                self.i += 1;
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                0x00..=0x1f => return Err(self.err("raw control character in string")),
                _ => self.i += 1,
            }
        }
        Err(self.err("unterminated string"))
    }

    fn array(&mut self) -> Result<(), String> {
        self.i += 1; // '['
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.i += 1;
                    self.skip_ws();
                }
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(JsonValue::String(self.parse_string()?)),
            Some(b't') => {
                self.literal("true")?;
                Ok(JsonValue::Bool(true))
            }
            Some(b'f') => {
                self.literal("false")?;
                Ok(JsonValue::Bool(false))
            }
            Some(b'n') => {
                self.literal("null")?;
                Ok(JsonValue::Null)
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => {
                let start = self.i;
                self.number()?;
                std::str::from_utf8(&self.b[start..self.i])
                    .ok()
                    .and_then(|t| t.parse().ok())
                    .map(JsonValue::Number)
                    .ok_or_else(|| self.err("unparseable number"))
            }
            _ => Err(self.err("expected a JSON value")),
        }
    }

    /// Like [`Parser::string`] but decodes the content (escapes resolved).
    fn parse_string(&mut self) -> Result<String, String> {
        let start = self.i;
        self.string()?;
        // The validated span includes both quotes; decode the body.
        let body = &self.b[start + 1..self.i - 1];
        let mut out = String::with_capacity(body.len());
        let mut k = 0;
        while k < body.len() {
            if body[k] == b'\\' {
                k += 1;
                match body[k] {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = std::str::from_utf8(&body[k + 1..k + 5])
                            .map_err(|_| self.err("bad \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| self.err("bad \\u escape"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        k += 4;
                    }
                    _ => unreachable!("validator rejected unknown escapes"),
                }
                k += 1;
            } else {
                // Copy a raw (already UTF-8-valid) run up to the next escape.
                let run_end = body[k..]
                    .iter()
                    .position(|&c| c == b'\\')
                    .map_or(body.len(), |p| k + p);
                out.push_str(
                    std::str::from_utf8(&body[k..run_end])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?,
                );
                k = run_end;
            }
        }
        Ok(out)
    }

    fn parse_array(&mut self) -> Result<JsonValue, String> {
        self.i += 1; // '['
        self.skip_ws();
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.i += 1;
                    self.skip_ws();
                }
                Some(b']') => {
                    self.i += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, String> {
        self.i += 1; // '{'
        self.skip_ws();
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            if self.peek() != Some(b'"') {
                return Err(self.err("expected object key"));
            }
            let key = self.parse_string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected `:`"));
            }
            self.i += 1;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.i += 1;
                    self.skip_ws();
                }
                Some(b'}') => {
                    self.i += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.i += 1; // '{'
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            if self.peek() != Some(b'"') {
                return Err(self.err("expected object key"));
            }
            self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected `:`"));
            }
            self.i += 1;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.i += 1;
                    self.skip_ws();
                }
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> Vec<(String, MetricValue)> {
        vec![
            ("gnnmark_pool_hit_rate".into(), MetricValue::Gauge(0.5)),
            ("gnnmark_pool_hits_total".into(), MetricValue::Counter(42)),
            (
                "gnnmark_epoch_wall_ms".into(),
                MetricValue::Histogram { count: 2, sum: 30.0, min: 10.0, max: 20.0 },
            ),
            (
                "gnnmark_par_worker_busy_ms{worker=\"0\"}".into(),
                MetricValue::Gauge(12.5),
            ),
            (
                "gnnmark_par_worker_busy_ms{worker=\"1\"}".into(),
                MetricValue::Gauge(11.0),
            ),
        ]
    }

    #[test]
    fn metrics_json_is_valid_and_complete() {
        let json = metrics_json(&sample_snapshot());
        validate_json(&json).expect("snapshot JSON parses");
        assert!(json.contains("\"gnnmark_pool_hits_total\": 42"));
        assert!(json.contains("\"count\": 2"));
    }

    #[test]
    fn empty_snapshot_is_valid_json() {
        validate_json(&metrics_json(&[])).expect("empty snapshot parses");
    }

    #[test]
    fn prometheus_dump_has_one_type_line_per_base_name() {
        let text = metrics_prometheus(&sample_snapshot());
        let type_lines: Vec<_> = text
            .lines()
            .filter(|l| l.contains("gnnmark_par_worker_busy_ms") && l.starts_with("# TYPE"))
            .collect();
        assert_eq!(type_lines, ["# TYPE gnnmark_par_worker_busy_ms gauge"]);
        assert!(text.contains("gnnmark_par_worker_busy_ms{worker=\"0\"} 12.5"));
        assert!(text.contains("gnnmark_epoch_wall_ms_count 2"));
        assert!(text.contains("gnnmark_epoch_wall_ms_sum 30"));
    }

    fn bucket_value() -> MetricValue {
        static BOUNDS: &[f64] = &[0.1, 0.5];
        let mut counts = [0u64; crate::metrics::MAX_BUCKETS + 1];
        counts[0] = 3;
        counts[1] = 1;
        counts[2] = 2;
        MetricValue::Buckets { bounds: BOUNDS, counts, count: 6, sum: 11.0 }
    }

    #[test]
    fn prometheus_renders_cumulative_buckets() {
        let snap = vec![(
            "gnnmark_serve_route_seconds{route=\"/jobs\"}".to_string(),
            bucket_value(),
        )];
        let text = metrics_prometheus(&snap);
        assert!(text.contains("# TYPE gnnmark_serve_route_seconds histogram"));
        assert!(
            text.contains("gnnmark_serve_route_seconds_bucket{route=\"/jobs\",le=\"0.1\"} 3"),
            "{text}"
        );
        assert!(text.contains("gnnmark_serve_route_seconds_bucket{route=\"/jobs\",le=\"0.5\"} 4"));
        assert!(text.contains("gnnmark_serve_route_seconds_bucket{route=\"/jobs\",le=\"+Inf\"} 6"));
        assert!(text.contains("gnnmark_serve_route_seconds_sum{route=\"/jobs\"} 11"));
        assert!(text.contains("gnnmark_serve_route_seconds_count{route=\"/jobs\"} 6"));
        // Unlabelled series get a bare {le="…"} set.
        let text = metrics_prometheus(&[("plain_seconds".to_string(), bucket_value())]);
        assert!(text.contains("plain_seconds_bucket{le=\"+Inf\"} 6"), "{text}");
    }

    #[test]
    fn json_renders_buckets_validly() {
        let snap = vec![("plain_seconds".to_string(), bucket_value())];
        let json = metrics_json(&snap);
        validate_json(&json).expect("bucket JSON parses");
        assert!(json.contains("\"le\": [0.1, 0.5]"), "{json}");
        assert!(json.contains("\"buckets\": [3, 1, 2"), "{json}");
    }

    #[test]
    fn manifest_serializes_to_valid_json() {
        let m = RunManifest {
            target: "stgcn".into(),
            seed: 42,
            scale: "test".into(),
            threads: 4,
            device: "V100".into(),
            precision: "fp32".into(),
            mode: "fullgraph".into(),
            workloads: vec![ManifestWorkload {
                name: "STGCN".into(),
                status: "completed".into(),
                wall_ms: 123.4,
                modeled_ms: 56.7,
                attempts: 1,
            }],
            status: "ok".into(),
        };
        let json = m.to_json();
        validate_json(&json).expect("manifest parses");
        assert!(json.contains("\"seed\": 42"));
        assert!(json.contains("\"scale\": \"test\""));
        assert!(json.contains("\"attempts\": 1"));
    }

    #[test]
    fn manifest_with_no_workloads_is_valid() {
        let m = RunManifest {
            target: "table1".into(),
            seed: 0,
            scale: "test".into(),
            threads: 1,
            device: "V100".into(),
            precision: "fp16".into(),
            mode: "minibatch-b32-f10x5".into(),
            workloads: vec![],
            status: "ok".into(),
        };
        validate_json(&m.to_json()).expect("empty-workloads manifest parses");
    }

    #[test]
    fn parse_json_builds_values() {
        let v = parse_json(
            "{\"name\": \"gcn\\n\", \"seed\": 42, \"ratio\": 2.5, \"ok\": true, \
             \"none\": null, \"xs\": [1, 2, 3], \"nested\": {\"k\": \"v\"}}",
        )
        .expect("parses");
        assert_eq!(v.get("name").and_then(JsonValue::as_str), Some("gcn\n"));
        assert_eq!(v.get("seed").and_then(JsonValue::as_u64), Some(42));
        assert_eq!(v.get("ratio").and_then(JsonValue::as_f64), Some(2.5));
        assert_eq!(v.get("ok").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(v.get("none"), Some(&JsonValue::Null));
        let xs = v.get("xs").and_then(JsonValue::as_array).unwrap();
        assert_eq!(xs.len(), 3);
        assert_eq!(xs[0].as_u64(), Some(1));
        let nested = v.get("nested").unwrap();
        assert_eq!(nested.get("k").and_then(JsonValue::as_str), Some("v"));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parse_json_handles_escapes_and_rejects_bad_input() {
        let v = parse_json("\"a\\u0041\\t\\\\b\"").unwrap();
        assert_eq!(v.as_str(), Some("aA\t\\b"));
        assert!(parse_json("{\"a\": 1,}").is_err());
        assert!(parse_json("[1 2]").is_err());
        assert!(parse_json("").is_err());
        assert!(parse_json("{\"a\": 1} x").is_err());
        // as_u64 rejects negatives and fractions.
        assert_eq!(parse_json("-3").unwrap().as_u64(), None);
        assert_eq!(parse_json("1.5").unwrap().as_u64(), None);
        assert_eq!(parse_json("7").unwrap().as_u64(), Some(7));
    }

    #[test]
    fn debug_validated_passes_through_valid_json() {
        let s = debug_validated("test", "{\"a\": 1}".to_string());
        assert_eq!(s, "{\"a\": 1}");
    }

    #[test]
    fn validator_accepts_good_and_rejects_bad_json() {
        validate_json("{\"a\": [1, 2.5, -3e2, \"x\\n\", true, null]}").unwrap();
        assert!(validate_json("").is_err());
        assert!(validate_json("{\"a\": 1,}").is_err(), "trailing comma in object");
        assert!(validate_json("[1, 2,]").is_err(), "trailing comma in array");
        assert!(validate_json("[1, 2, ,]").is_err());
        assert!(validate_json("{\"a\" 1}").is_err());
        assert!(validate_json("[1] junk").is_err());
        assert!(validate_json("\"unterminated").is_err());
    }
}
