//! # gnnmark-telemetry
//!
//! Host-side observability for the GNNMark reproduction. The modeled GPU
//! already has a profiler (`gnnmark-profiler`); this crate observes the
//! *real* Rust training run — the host time spent generating batches,
//! running forward/backward, stepping optimizers, simulating kernels, and
//! retrying faulted workloads.
//!
//! Three layers, all off by default and dependency-free:
//!
//! * **Spans** ([`span!`], [`Span`], [`mark`]) — hierarchical RAII
//!   wall-clock regions on per-thread lanes. Disabled spans cost one
//!   relaxed atomic load.
//! * **Metrics** ([`metrics`]) — a named registry of counters, gauges and
//!   summary histograms fed from counters that already exist in the stack
//!   (tensor pool, `par` workers, autograd tape, gpusim, resilience).
//! * **Exporters** ([`export`]) — JSON metrics snapshot, Prometheus text
//!   dump, and the run manifest. The merged host + modeled-GPU Chrome
//!   trace is assembled by `gnnmark-profiler::to_merged_chrome_trace`,
//!   which consumes this crate's [`HostTrace`].
//!
//! See `docs/OBSERVABILITY.md` for the span taxonomy and metric names.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod export;
pub mod metrics;
mod span;

pub use span::{
    enabled, lane, mark, now_ns, pending_spans, progress_enabled, set_enabled, set_progress,
    take_host_trace, HostTrace, LaneInfo, Span, SpanEvent,
};
