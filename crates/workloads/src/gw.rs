//! GW: GraphWriter, knowledge-graph-to-text generation
//! (Koncel-Kedziorski et al., NAACL 2019).
//!
//! A graph-transformer encoder (multi-head attention masked to the
//! knowledge graph) encodes entity nodes per document; a batched,
//! attention-equipped LSTM decoder generates the target abstracts with
//! teacher forcing across a padded document batch — like the reference
//! implementation, which batches sequences so the per-step projections
//! are real GEMMs. The heavy vocabulary projections make GW the only
//! workload in the suite whose instruction mix is fp32-dominated, and it
//! posts the suite's highest GFLOPS (~2 TFLOPS in the paper).

use gnnmark_autograd::{Adam, Optimizer, Param, ParamSet, Tape, Var};
use gnnmark_gpusim::ScalingBehavior;
use gnnmark_graph::datasets::{agenda_like, KnowledgeDoc};
use gnnmark_nn::{GraphAttention, Linear, LstmCell, Module};
use gnnmark_profiler::ProfileSession;
use gnnmark_tensor::{IntTensor, Tensor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::{Result, Scale, Workload, WorkloadInfo};

/// The GraphWriter workload.
pub struct GraphWriter {
    docs: Vec<KnowledgeDoc>,
    token_embed: Param,
    entity_proj: Linear,
    encoder: Vec<GraphAttention>,
    decoder: LstmCell,
    attn_proj: Linear,
    vocab_proj: Linear,
    opt: Adam,
    rng: StdRng,
    dim: usize,
    vocab: usize,
    batch_size: usize,
    batches_per_epoch: usize,
}

impl GraphWriter {
    /// Builds GraphWriter on AGENDA-like documents.
    ///
    /// # Errors
    /// Propagates dataset/model construction errors.
    pub fn new(scale: Scale, seed: u64) -> Result<Self> {
        Self::new_with_mode(scale, seed, &crate::TrainMode::FullGraph)
    }

    /// Builds GraphWriter in an explicit [`crate::TrainMode`]. Minibatch
    /// mode overrides the document batch size; fanouts don't apply to
    /// knowledge-graph documents and are ignored.
    ///
    /// # Errors
    /// Propagates dataset/model construction errors.
    pub fn new_with_mode(scale: Scale, seed: u64, mode: &crate::TrainMode) -> Result<Self> {
        let (n_docs, dim, heads, vocab, layers, mut batch, batches) = match scale {
            Scale::Test => (4, 16, 2, 64, 1, 2, 2),
            Scale::Small => (24, 128, 4, 512, 2, 8, 3),
            Scale::Paper => (64, 256, 4, 2000, 2, 32, 2),
        };
        if let Some(cfg) = mode.minibatch() {
            batch = cfg.batch_size.clamp(1, n_docs);
        }
        let docs = agenda_like(n_docs, vocab, seed)?;
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9a11);
        let token_embed = Param::new(
            "gw.embed",
            gnnmark_nn::init::small_normal(&[vocab + 1, dim], 10.0, &mut rng),
        );
        let entity_proj = Linear::new("gw.entity", 16, dim, &mut rng)?;
        let encoder = (0..layers)
            .map(|i| GraphAttention::new(&format!("gw.enc{i}"), dim, heads, &mut rng))
            .collect::<Result<Vec<_>>>()?;
        let decoder = LstmCell::new("gw.dec", 2 * dim, dim, &mut rng)?;
        let attn_proj = Linear::new("gw.attn", dim, dim, &mut rng)?;
        let vocab_proj = Linear::new("gw.vocab", 2 * dim, vocab, &mut rng)?;
        Ok(GraphWriter {
            docs,
            token_embed,
            entity_proj,
            encoder,
            decoder,
            attn_proj,
            vocab_proj,
            opt: Adam::new(1e-3),
            rng,
            dim,
            vocab,
            batch_size: batch,
            batches_per_epoch: batches,
        })
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Encodes one document's knowledge graph into node states.
    fn encode_doc(&self, tape: &Tape, doc: &KnowledgeDoc) -> Result<Var> {
        let feats = tape.constant(doc.graph.features().clone());
        let table = tape.read(&self.token_embed);
        let ent_tok = table.embedding_lookup(&doc.entity_ids)?;
        let mut h = self.entity_proj.forward(tape, &feats)?.add(&ent_tok)?;
        let mask = GraphAttention::edge_mask(&doc.graph);
        for layer in &self.encoder {
            h = layer.forward(tape, &h, &mask)?;
        }
        Ok(h)
    }

    /// Encode + batched teacher-forced decode of one padded document
    /// batch, returning the mean token loss. Deterministic for fixed
    /// parameters — no RNG, no session, no optimizer.
    fn batch_loss(&self, tape: &Tape, docs: &[KnowledgeDoc]) -> Result<Var> {
        let b = docs.len();
        let d = self.dim;
        let max_n = docs.iter().map(|x| x.graph.num_nodes()).max().unwrap_or(1);
        let max_t = docs.iter().map(|x| x.target.numel()).max().unwrap_or(1);
        let table = tape.read(&self.token_embed);

        // ---- encode every document, padded to [b, max_n, d] ----
        let mut padded = Vec::with_capacity(b);
        for doc in docs {
            let enc = self.encode_doc(tape, doc)?;
            let n = doc.graph.num_nodes();
            if n < max_n {
                let pad = tape.constant(Tensor::zeros(&[max_n - n, d]));
                padded.push(Var::concat_rows(&[enc, pad])?);
            } else {
                padded.push(enc);
            }
        }
        let enc_stack = Var::concat_rows(&padded)?.reshape(&[b, max_n, d])?;
        // Additive padding mask for cross-attention: 0 on real nodes.
        let attn_mask = Tensor::from_fn(&[b, max_n], |flat| {
            let (bi, ni) = (flat / max_n, flat % max_n);
            if ni < docs[bi].graph.num_nodes() {
                0.0
            } else {
                -1e9
            }
        });
        let attn_mask = tape.constant(attn_mask);

        // ---- batched teacher-forced decoding ----
        let mut dec_h = tape.constant(Tensor::zeros(&[b, d]));
        let mut dec_c = tape.constant(Tensor::zeros(&[b, d]));
        let bos = self.vocab as i64; // padding/BOS row of the table
        let mut prev: Vec<i64> = vec![bos; b];
        let mut total_loss: Option<Var> = None;
        let mut valid_tokens = 0u64;
        for t in 0..max_t {
            let ids = IntTensor::from_vec(&[b], prev.clone())?;
            let tok = table.embedding_lookup(&ids)?; // [b, d]

            // Cross-attention over padded node encodings.
            let q = self.attn_proj.forward(tape, &dec_h)?.reshape(&[b, 1, d])?;
            let scores = q.bmm_nt(&enc_stack)?.reshape(&[b, max_n])?;
            let attn = scores.add(&attn_mask)?.softmax_rows()?;
            let ctx = attn
                .reshape(&[b, 1, max_n])?
                .bmm(&enc_stack)?
                .reshape(&[b, d])?;

            let x = Var::concat_cols(&[tok, ctx.clone()])?;
            let (h2, c2) = self.decoder.step(tape, &x, &dec_h, &dec_c)?;
            dec_h = h2;
            dec_c = c2;

            let out = Var::concat_cols(&[dec_h.clone(), ctx])?;
            let logits = self.vocab_proj.forward(tape, &out)?; // [b, vocab]
            let logp = logits.log_softmax_rows()?;

            // Masked NLL: padded documents contribute zero.
            let mut targets = Vec::with_capacity(b);
            let mut mask = Vec::with_capacity(b);
            for (bi, doc) in docs.iter().enumerate() {
                if t < doc.target.numel() {
                    targets.push(doc.target.as_slice()[t]);
                    mask.push(1.0f32);
                    valid_tokens += 1;
                    prev[bi] = doc.target.as_slice()[t];
                } else {
                    targets.push(0);
                    mask.push(0.0);
                    prev[bi] = bos;
                }
            }
            let targets = IntTensor::from_vec(&[b], targets)?;
            let mask = tape.constant(Tensor::from_vec(&[b], mask)?);
            let picked = logp.select_per_row(&targets)?.mul(&mask)?;
            let step_loss = picked.sum_all().neg();
            total_loss = Some(match total_loss {
                None => step_loss,
                Some(prev_loss) => prev_loss.add(&step_loss)?,
            });
        }
        Ok(total_loss
            .expect("at least one decode step")
            .mul_scalar(1.0 / valid_tokens.max(1) as f32))
    }

    /// Tape-free mirror of [`GraphWriter::encode_doc`].
    fn encode_doc_infer(&self, doc: &KnowledgeDoc) -> Result<Tensor> {
        let table = self.token_embed.value();
        let ent_tok = table.embedding_lookup(&doc.entity_ids)?;
        let mut h = self.entity_proj.infer(doc.graph.features())?.add(&ent_tok)?;
        let mask = GraphAttention::edge_mask(&doc.graph);
        for layer in &self.encoder {
            h = layer.infer(&h, &mask)?;
        }
        Ok(h)
    }

    /// Tape-free mirror of [`GraphWriter::batch_loss`] op-for-op.
    fn batch_loss_infer(&self, docs: &[KnowledgeDoc]) -> Result<Tensor> {
        let b = docs.len();
        let d = self.dim;
        let max_n = docs.iter().map(|x| x.graph.num_nodes()).max().unwrap_or(1);
        let max_t = docs.iter().map(|x| x.target.numel()).max().unwrap_or(1);
        let table = self.token_embed.value().clone();

        let mut padded = Vec::with_capacity(b);
        for doc in docs {
            let enc = self.encode_doc_infer(doc)?;
            let n = doc.graph.num_nodes();
            if n < max_n {
                let pad = Tensor::zeros(&[max_n - n, d]);
                padded.push(Tensor::concat_rows(&[&enc, &pad])?);
            } else {
                padded.push(enc);
            }
        }
        let refs: Vec<&Tensor> = padded.iter().collect();
        let enc_stack = Tensor::concat_rows(&refs)?.reshape(&[b, max_n, d])?;
        let attn_mask = Tensor::from_fn(&[b, max_n], |flat| {
            let (bi, ni) = (flat / max_n, flat % max_n);
            if ni < docs[bi].graph.num_nodes() {
                0.0
            } else {
                -1e9
            }
        });

        let mut dec_h = Tensor::zeros(&[b, d]);
        let mut dec_c = Tensor::zeros(&[b, d]);
        let bos = self.vocab as i64;
        let mut prev: Vec<i64> = vec![bos; b];
        let mut total_loss: Option<Tensor> = None;
        let mut valid_tokens = 0u64;
        for t in 0..max_t {
            let ids = IntTensor::from_vec(&[b], prev.clone())?;
            let tok = table.embedding_lookup(&ids)?; // [b, d]

            let q = self.attn_proj.infer(&dec_h)?.reshape(&[b, 1, d])?;
            let scores = q.bmm_nt(&enc_stack)?.reshape(&[b, max_n])?;
            let attn = scores.add(&attn_mask)?.softmax_rows()?;
            let ctx = attn
                .reshape(&[b, 1, max_n])?
                .bmm(&enc_stack)?
                .reshape(&[b, d])?;

            let x = Tensor::concat_cols(&[&tok, &ctx])?;
            let (h2, c2) = self.decoder.step_infer(&x, &dec_h, &dec_c)?;
            dec_h = h2;
            dec_c = c2;

            let out = Tensor::concat_cols(&[&dec_h, &ctx])?;
            let logits = self.vocab_proj.infer(&out)?; // [b, vocab]
            let logp = logits.log_softmax_rows()?;

            let mut targets = Vec::with_capacity(b);
            let mut mask = Vec::with_capacity(b);
            for (bi, doc) in docs.iter().enumerate() {
                if t < doc.target.numel() {
                    targets.push(doc.target.as_slice()[t]);
                    mask.push(1.0f32);
                    valid_tokens += 1;
                    prev[bi] = doc.target.as_slice()[t];
                } else {
                    targets.push(0);
                    mask.push(0.0);
                    prev[bi] = bos;
                }
            }
            let targets = IntTensor::from_vec(&[b], targets)?;
            let mask = Tensor::from_vec(&[b], mask)?;
            let picked = logp.select_per_row(&targets)?.mul(&mask)?;
            let step_loss = picked.sum_all().neg();
            total_loss = Some(match total_loss {
                None => step_loss,
                Some(prev_loss) => prev_loss.add(&step_loss)?,
            });
        }
        Ok(total_loss
            .expect("at least one decode step")
            .mul_scalar(1.0 / valid_tokens.max(1) as f32))
    }

    /// Trains one padded batch of documents; returns the mean token loss.
    fn train_batch(&mut self, session: &mut ProfileSession, docs: &[KnowledgeDoc]) -> Result<f64> {
        let _step = gnnmark_telemetry::span!("step");
        for doc in docs {
            session.upload(doc.graph.features());
            session.upload_int(&doc.target);
            session.upload_int(&doc.entity_ids);
        }
        self.params().zero_grad();
        session.begin_step();
        let tape = Tape::new();
        let loss = {
            let _fwd = gnnmark_telemetry::span!("forward");
            self.batch_loss(&tape, docs)?
        };
        {
            let _bwd = gnnmark_telemetry::span!("backward");
            tape.backward(&loss)?;
        }
        {
            let _opt = gnnmark_telemetry::span!("optimizer");
            self.opt.step(&self.params())?;
        }
        session.end_step();
        Ok(loss.value().item()? as f64)
    }
}

impl Workload for GraphWriter {
    fn name(&self) -> String {
        "GW".to_string()
    }

    fn info(&self) -> WorkloadInfo {
        crate::table_one()
            .into_iter()
            .find(|r| r.abbrev == "GW")
            .expect("GW row present")
    }

    fn params(&self) -> ParamSet {
        let mut set = ParamSet::new();
        set.register(self.token_embed.clone());
        set.extend(&self.entity_proj.params());
        for l in &self.encoder {
            set.extend(&l.params());
        }
        set.extend(&self.decoder.params());
        set.extend(&self.attn_proj.params());
        set.extend(&self.vocab_proj.params());
        set
    }

    fn steps_per_epoch(&self) -> u64 {
        self.batches_per_epoch as u64
    }

    fn scaling_behavior(&self) -> Option<ScalingBehavior> {
        Some(ScalingBehavior::DataParallel)
    }

    fn probe(&mut self) -> Result<f64> {
        // First documents in dataset order — no shuffle, no session.
        let docs: Vec<KnowledgeDoc> = self
            .docs
            .iter()
            .take(self.batch_size)
            .cloned()
            .collect();
        let tape = Tape::new();
        let loss = self.batch_loss(&tape, &docs)?;
        tape.backward(&loss)?;
        Ok(loss.value().item()? as f64)
    }

    fn infer(&mut self, batch: crate::InferBatch) -> Result<f64> {
        let count = match batch {
            crate::InferBatch::Single => 1,
            crate::InferBatch::Full => self.batch_size,
        };
        let docs: Vec<KnowledgeDoc> = self.docs.iter().take(count).cloned().collect();
        let loss = self.batch_loss_infer(&docs)?;
        Ok(loss.item()? as f64)
    }

    fn infer_items(&self, batch: crate::InferBatch) -> u64 {
        match batch {
            crate::InferBatch::Single => 1,
            crate::InferBatch::Full => self.batch_size.min(self.docs.len()) as u64,
        }
    }

    fn run_epoch(&mut self, session: &mut ProfileSession) -> Result<f64> {
        let mut order: Vec<usize> = (0..self.docs.len()).collect();
        order.shuffle(&mut self.rng);
        let mut total = 0.0f64;
        let mut batches = 0usize;
        for chunk in order.chunks(self.batch_size).take(self.batches_per_epoch) {
            let docs: Vec<KnowledgeDoc> =
                chunk.iter().map(|&i| self.docs[i].clone()).collect();
            total += self.train_batch(session, &docs)?;
            batches += 1;
        }
        Ok(total / batches.max(1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnmark_gpusim::DeviceSpec;

    #[test]
    fn gw_trains() {
        let mut w = GraphWriter::new(Scale::Test, 11).unwrap();
        let mut session = ProfileSession::new("gw", DeviceSpec::v100());
        let first = w.run_epoch(&mut session).unwrap();
        let mut last = first;
        for _ in 0..4 {
            last = w.run_epoch(&mut session).unwrap();
        }
        assert!(last < first, "loss {first} → {last}");
    }

    #[test]
    fn gw_is_fp_dominant_at_realistic_width() {
        // At Test width (dim 16) launch overheads swamp the math; the
        // paper's fp32 > int32 observation needs realistic widths.
        let mut w = GraphWriter::new(Scale::Small, 11).unwrap();
        let mut session = ProfileSession::new("gw", DeviceSpec::v100());
        let _ = w.run_epoch(&mut session).unwrap();
        let p = session.finish();
        assert!(
            p.instr.fp_share() > p.instr.int_share(),
            "fp {} vs int {}",
            p.instr.fp_share(),
            p.instr.int_share()
        );
    }

    #[test]
    fn gw_metadata() {
        let w = GraphWriter::new(Scale::Test, 11).unwrap();
        assert_eq!(w.name(), "GW");
        assert_eq!(w.vocab(), 64);
        assert!(w.params().total_scalars() > 1000);
        assert!(matches!(
            w.scaling_behavior(),
            Some(ScalingBehavior::DataParallel)
        ));
    }
}
