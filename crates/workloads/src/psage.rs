//! PSAGE: the PinSAGE recommendation workload (Ying et al., KDD 2018).
//!
//! Trains item embeddings on a bipartite user–item interaction graph with
//! random-walk importance sampling and a max-margin triplet loss, as in
//! the DGL reference implementation the paper profiles. Each step
//! follows DGL's minibatch pipeline: random walks sampled on the host,
//! walk traces and node ids sorted/compacted on the device, features of
//! the *sampled* nodes gathered and normalized, then aggregation,
//! projection and the triplet loss.
//!
//! The two datasets (MovieLens-like and Nowplaying-like) differ mainly in
//! item feature width — 10× wider for NWP — which flips the workload's
//! operation mix from sort-heavy (MVL) toward element-wise kernels (NWP),
//! the paper's headline data-dependence observation.

use std::collections::HashMap;

use gnnmark_autograd::{Adam, Optimizer, ParamSet, Tape, Var};
use gnnmark_gpusim::ScalingBehavior;
use gnnmark_graph::datasets::{movielens_like, nowplaying_like, Recommendation};
use gnnmark_graph::sampler::{ImportanceNeighborhood, RandomWalkSampler};
use gnnmark_graph::FanoutSampler;
use gnnmark_nn::{Module, PinSageConv};
use gnnmark_profiler::ProfileSession;
use gnnmark_tensor::IntTensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Result, Scale, Workload, WorkloadInfo};

/// Which recommendation dataset PSAGE trains on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PsageDataset {
    /// MovieLens-like (60-wide item features).
    MovieLens,
    /// Nowplaying-like (600-wide item features).
    Nowplaying,
}

impl PsageDataset {
    /// Short label used in figures.
    pub fn label(self) -> &'static str {
        match self {
            PsageDataset::MovieLens => "MVL",
            PsageDataset::Nowplaying => "NWP",
        }
    }
}

/// One sampled triplet minibatch, with the global ids of every node it
/// touches plus the raw walk traces the device-side sampler sorts.
struct Minibatch {
    touched: IntTensor,
    walk_trace: IntTensor,
    seeds: Vec<ImportanceNeighborhood>,
    positives: Vec<ImportanceNeighborhood>,
    negatives: Vec<ImportanceNeighborhood>,
}

/// Reserved batch id for the deterministic probe batch; never produced by
/// the epoch counter, so probe sampling can't collide with a training
/// batch's RNG stream.
const PROBE_BATCH_ID: u64 = u64::MAX;

/// The PSAGE workload.
pub struct Psage {
    dataset: PsageDataset,
    data: Recommendation,
    conv: PinSageConv,
    sampler: RandomWalkSampler,
    /// In minibatch mode, the layer-wise fanout engine replaces the
    /// random-walk importance sampler for neighborhood construction.
    fanout: Option<FanoutSampler>,
    batch_counter: u64,
    opt: Adam,
    rng: StdRng,
    batch_size: usize,
    batches_per_epoch: usize,
    margin: f32,
}

impl Psage {
    /// Builds PSAGE on one of its two datasets.
    ///
    /// # Errors
    /// Propagates dataset/model construction errors.
    pub fn new(dataset: PsageDataset, scale: Scale, seed: u64) -> Result<Self> {
        Self::new_with_mode(dataset, scale, seed, &crate::TrainMode::FullGraph)
    }

    /// Builds PSAGE in an explicit [`crate::TrainMode`]. In minibatch mode
    /// the configured batch size replaces the scale default and item
    /// neighborhoods come from the layer-wise [`FanoutSampler`] (first
    /// fanout level) instead of random-walk importance sampling.
    ///
    /// # Errors
    /// Propagates dataset/model construction errors.
    pub fn new_with_mode(
        dataset: PsageDataset,
        scale: Scale,
        seed: u64,
        mode: &crate::TrainMode,
    ) -> Result<Self> {
        let (data_scale, mut batch_size, batches) = match scale {
            Scale::Test => (0.01, 8, 2),
            Scale::Small => (0.20, 64, 6),
            Scale::Paper => (0.50, 128, 10),
        };
        let mut fanout = None;
        if let Some(cfg) = mode.minibatch() {
            batch_size = cfg.batch_size.max(1);
            let hop = cfg.fanouts.first().copied().unwrap_or(10);
            fanout = Some(FanoutSampler::new(&[hop], seed ^ 0x9a5e)?);
        }
        let data = match dataset {
            PsageDataset::MovieLens => movielens_like(data_scale, seed)?,
            PsageDataset::Nowplaying => nowplaying_like(data_scale, seed)?,
        };
        let mut rng = StdRng::seed_from_u64(seed ^ 0x95a6e);
        let feat_dim = data.graph.features(data.items).dim(1);
        let conv = PinSageConv::new("psage.conv", feat_dim, 60, &mut rng)?;
        Ok(Psage {
            dataset,
            data,
            conv,
            sampler: RandomWalkSampler::new(16, 3, 6),
            fanout,
            batch_counter: 0,
            opt: Adam::new(1e-3),
            rng,
            batch_size,
            batches_per_epoch: batches,
            margin: 0.4,
        })
    }

    /// Converts one fanout-sampled block row per seed into an importance
    /// neighborhood: self-loops are dropped, neighbors ordered by
    /// descending sampled weight (ties by id), and weights renormalized to
    /// sum to one. Seeds with no surviving neighbors fall back to
    /// themselves with weight one, matching the walk sampler's behavior on
    /// isolated nodes.
    fn fanout_neighborhoods(
        sampler: &FanoutSampler,
        adj: &gnnmark_tensor::CsrMatrix,
        ids: &IntTensor,
        batch_id: u64,
    ) -> Result<Vec<ImportanceNeighborhood>> {
        let batch = sampler.sample(adj, ids.as_slice(), batch_id)?;
        let block = &batch.blocks[0];
        let mut out = Vec::with_capacity(ids.numel());
        for (row, &seed) in ids.as_slice().iter().enumerate() {
            let (cols, vals) = block.adj.row(row);
            let mut pairs: Vec<(i64, f32)> = cols
                .iter()
                .zip(vals)
                .map(|(&c, &v)| (block.src_nodes[c], v))
                .filter(|&(g, _)| g != seed)
                .collect();
            pairs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0)));
            let total: f32 = pairs.iter().map(|p| p.1).sum();
            let (neighbors, weights) = if pairs.is_empty() || total <= 0.0 {
                (vec![seed], vec![1.0])
            } else {
                (
                    pairs.iter().map(|p| p.0).collect(),
                    pairs.iter().map(|p| p.1 / total).collect(),
                )
            };
            out.push(ImportanceNeighborhood {
                seed,
                neighbors,
                weights,
            });
        }
        Ok(out)
    }

    fn num_items(&self) -> usize {
        self.data.item_item.num_nodes()
    }

    /// Samples one minibatch on the host (walks, positives, negatives) and
    /// compacts it, mirroring DGL's `PinSAGESampler`.
    fn sample_minibatch(&mut self, deterministic: Option<u64>) -> Result<Minibatch> {
        let n_items = self.num_items();
        let b = self.batch_size.min(n_items);
        let mut local_rng;
        let rng: &mut StdRng = match deterministic {
            Some(seed) => {
                local_rng = StdRng::seed_from_u64(seed);
                &mut local_rng
            }
            None => &mut self.rng,
        };
        let seed_ids: Vec<i64> = match deterministic {
            Some(_) => (0..b).map(|i| (i * 3 % n_items) as i64).collect(),
            None => (0..b).map(|_| rng.gen_range(0..n_items as i64)).collect(),
        };
        let seed_ids = IntTensor::from_vec(&[b], seed_ids)?;
        let batch_id = match deterministic {
            Some(_) => PROBE_BATCH_ID,
            None => {
                let id = self.batch_counter;
                self.batch_counter += 1;
                id
            }
        };
        let adj = self.data.item_item.adjacency();
        let seeds = match &self.fanout {
            Some(fs) => Self::fanout_neighborhoods(fs, adj, &seed_ids, batch_id)?,
            None => self.sampler.sample(&self.data.item_item, &seed_ids, rng),
        };
        let pos_ids: Vec<i64> = seeds.iter().map(|h| h.neighbors[0]).collect();
        let neg_ids: Vec<i64> = match deterministic {
            Some(_) => (0..b).map(|i| ((i * 7 + 5) % n_items) as i64).collect(),
            None => (0..b).map(|_| rng.gen_range(0..n_items as i64)).collect(),
        };
        let pos_ids = IntTensor::from_vec(&[b], pos_ids)?;
        let neg_ids = IntTensor::from_vec(&[b], neg_ids)?;
        let (positives, negatives) = match &self.fanout {
            Some(fs) => (
                Self::fanout_neighborhoods(fs, adj, &pos_ids, batch_id)?,
                Self::fanout_neighborhoods(fs, adj, &neg_ids, batch_id)?,
            ),
            None => (
                self.sampler.sample(&self.data.item_item, &pos_ids, rng),
                self.sampler.sample(&self.data.item_item, &neg_ids, rng),
            ),
        };

        // Walk traces: the raw visit stream the device-side sampler sorts
        // to build importance neighborhoods (DGL sorts these per batch).
        let mut trace = Vec::new();
        for h in seeds.iter().chain(&positives).chain(&negatives) {
            trace.push(h.seed);
            for (rank, &nb) in h.neighbors.iter().enumerate() {
                // Visit counts across the whole walk set (walks × length).
                let visits = (h.weights[rank]
                    * (self.sampler.num_walks * self.sampler.walk_length) as f32)
                    .ceil() as usize;
                for _ in 0..visits.max(1) {
                    trace.push(nb);
                }
            }
        }
        let trace_len = trace.len();
        let walk_trace = IntTensor::from_vec(&[trace_len], trace)?;

        let mut touched: Vec<i64> = Vec::new();
        touched.extend_from_slice(seed_ids.as_slice());
        touched.extend_from_slice(pos_ids.as_slice());
        touched.extend_from_slice(neg_ids.as_slice());
        for h in seeds.iter().chain(&positives).chain(&negatives) {
            touched.extend_from_slice(&h.neighbors);
        }
        touched.sort_unstable();
        touched.dedup();
        let m = touched.len();
        Ok(Minibatch {
            touched: IntTensor::from_vec(&[m], touched)?,
            walk_trace,
            seeds,
            positives,
            negatives,
        })
    }

    /// Remaps a neighborhood list into the batch-local id space.
    fn localize(
        hoods: &[ImportanceNeighborhood],
        remap: &HashMap<i64, i64>,
    ) -> Vec<ImportanceNeighborhood> {
        hoods
            .iter()
            .map(|h| ImportanceNeighborhood {
                seed: remap[&h.seed],
                neighbors: h.neighbors.iter().map(|n| remap[n]).collect(),
                weights: h.weights.clone(),
            })
            .collect()
    }

    /// Device-side computation of one minibatch, returning the loss.
    fn batch_forward(&mut self, batch: &Minibatch, tape: &Tape, train: bool) -> Result<Var> {
        let m = batch.touched.numel();
        let remap: HashMap<i64, i64> = batch
            .touched
            .as_slice()
            .iter()
            .enumerate()
            .map(|(local, &global)| (global, local as i64))
            .collect();
        let seeds_l = Self::localize(&batch.seeds, &remap);
        let pos_l = Self::localize(&batch.positives, &remap);
        let neg_l = Self::localize(&batch.negatives, &remap);

        // Device-side sampler compaction, as DGL's PinSAGESampler does:
        // sort the visit stream by node id, re-sort the compacted counts
        // by frequency, and sort the batch's unique node ids.
        let (sorted_trace, _) = batch.walk_trace.sort_with_indices()?;
        let (_, _) = sorted_trace.sort_with_indices()?;
        let (_, _) = batch.touched.sort_with_indices()?;

        // Gather the sampled nodes' features and normalize them — the
        // element-wise stage whose cost scales with feature width.
        let all_feats = tape.constant(self.data.item_item.features().clone());
        let feats = all_feats.gather_rows(&batch.touched)?;
        let feats = if train {
            feats.dropout(0.1, &mut self.rng)?
        } else {
            feats
        };
        let norm = feats.square().sum_rows()?.add_scalar(1e-12).sqrt().recip();
        let feats = feats.scale_rows(&norm)?;

        let (a_s, a_s_t, i_s) = PinSageConv::build_batch(&seeds_l, m)?;
        let (a_p, a_p_t, i_p) = PinSageConv::build_batch(&pos_l, m)?;
        let (a_n, a_n_t, i_n) = PinSageConv::build_batch(&neg_l, m)?;
        let emb_s = self.conv.forward(tape, &feats, &a_s, &a_s_t, &i_s)?;
        let emb_p = self.conv.forward(tape, &feats, &a_p, &a_p_t, &i_p)?;
        let emb_n = self.conv.forward(tape, &feats, &a_n, &a_n_t, &i_n)?;

        let pos_score = emb_s.mul(&emb_p)?.sum_rows()?;
        let neg_score = emb_s.mul(&emb_n)?.sum_rows()?;
        let hinge = neg_score.sub(&pos_score)?.add_scalar(self.margin).relu();
        Ok(hinge.mean_all())
    }

    /// Tape-free mirror of [`Psage::batch_forward`] with `train = false`
    /// (no dropout), op-for-op.
    fn batch_forward_infer(&self, batch: &Minibatch) -> Result<gnnmark_tensor::Tensor> {
        let m = batch.touched.numel();
        let remap: HashMap<i64, i64> = batch
            .touched
            .as_slice()
            .iter()
            .enumerate()
            .map(|(local, &global)| (global, local as i64))
            .collect();
        let seeds_l = Self::localize(&batch.seeds, &remap);
        let pos_l = Self::localize(&batch.positives, &remap);
        let neg_l = Self::localize(&batch.negatives, &remap);

        let (sorted_trace, _) = batch.walk_trace.sort_with_indices()?;
        let (_, _) = sorted_trace.sort_with_indices()?;
        let (_, _) = batch.touched.sort_with_indices()?;

        let feats = self
            .data
            .item_item
            .features()
            .gather_rows(&batch.touched)?;
        let norm = feats.square().sum_rows()?.add_scalar(1e-12).sqrt().recip();
        let feats = feats.scale_rows(&norm)?;

        let (a_s, _a_s_t, i_s) = PinSageConv::build_batch(&seeds_l, m)?;
        let (a_p, _a_p_t, i_p) = PinSageConv::build_batch(&pos_l, m)?;
        let (a_n, _a_n_t, i_n) = PinSageConv::build_batch(&neg_l, m)?;
        let emb_s = self.conv.infer(&feats, &a_s, &i_s)?;
        let emb_p = self.conv.infer(&feats, &a_p, &i_p)?;
        let emb_n = self.conv.infer(&feats, &a_n, &i_n)?;

        let pos_score = emb_s.mul(&emb_p)?.sum_rows()?;
        let neg_score = emb_s.mul(&emb_n)?.sum_rows()?;
        let hinge = neg_score.sub(&pos_score)?.add_scalar(self.margin).relu();
        Ok(hinge.mean_all())
    }

    /// Margin loss on a fixed, deterministic probe batch — a noise-free
    /// progress measure for tests and convergence tracking.
    ///
    /// # Errors
    /// Propagates tensor-engine errors.
    pub fn eval_loss(&mut self) -> Result<f64> {
        let batch = self.sample_minibatch(Some(0xea71))?;
        let tape = Tape::new();
        let loss = self.batch_forward(&batch, &tape, false)?;
        Ok(loss.value().item()? as f64)
    }
}

impl Workload for Psage {
    fn name(&self) -> String {
        format!("PSAGE-{}", self.dataset.label())
    }

    fn info(&self) -> WorkloadInfo {
        crate::table_one()
            .into_iter()
            .find(|r| r.abbrev == "PSAGE")
            .expect("PSAGE row present")
    }

    fn params(&self) -> ParamSet {
        self.conv.params()
    }

    fn steps_per_epoch(&self) -> u64 {
        self.batches_per_epoch as u64
    }

    fn scaling_behavior(&self) -> Option<ScalingBehavior> {
        // DGL's PinSAGE batch sampler is incompatible with DDP: training
        // data replicates across devices, so multi-GPU runs *degrade*.
        Some(ScalingBehavior::ReplicatedSampling { redundancy: 0.18 })
    }

    fn quality(&mut self) -> Result<Option<(&'static str, f64)>> {
        Ok(Some(("probe margin loss", self.eval_loss()?)))
    }

    fn probe(&mut self) -> Result<f64> {
        let batch = self.sample_minibatch(Some(0xea71))?;
        let tape = Tape::new();
        let loss = self.batch_forward(&batch, &tape, false)?;
        tape.backward(&loss)?;
        Ok(loss.value().item()? as f64)
    }

    fn infer(&mut self, batch: crate::InferBatch) -> Result<f64> {
        // Same deterministic probe sampling (reserved batch id, local RNG
        // stream — no state advances); `Single` shrinks the seed set to one
        // item for the batch-1 latency case.
        let saved = self.batch_size;
        if batch == crate::InferBatch::Single {
            self.batch_size = 1;
        }
        let sampled = self.sample_minibatch(Some(0xea71));
        self.batch_size = saved;
        let loss = self.batch_forward_infer(&sampled?)?;
        Ok(loss.item()? as f64)
    }

    fn infer_items(&self, batch: crate::InferBatch) -> u64 {
        match batch {
            crate::InferBatch::Single => 1,
            crate::InferBatch::Full => self.batch_size.min(self.num_items()) as u64,
        }
    }

    fn run_epoch(&mut self, session: &mut ProfileSession) -> Result<f64> {
        let features = self.data.item_item.features().clone();
        let mut epoch_loss = 0.0f64;
        for _ in 0..self.batches_per_epoch {
            let _step = gnnmark_telemetry::span!("step");
            let batch = self.sample_minibatch(None)?;
            // The minibatch's features ship to the device (the paper's
            // sparsity instrumentation hooks exactly this copy).
            let batch_feats = features.gather_rows(&batch.touched)?;
            session.upload(&batch_feats);
            session.upload_int(&batch.touched);
            session.upload_int(&batch.walk_trace);

            self.params().zero_grad();
            session.begin_step();
            let tape = Tape::new();
            let loss = {
                let _fwd = gnnmark_telemetry::span!("forward");
                self.batch_forward(&batch, &tape, true)?
            };
            {
                let _bwd = gnnmark_telemetry::span!("backward");
                tape.backward(&loss)?;
            }
            {
                let _opt = gnnmark_telemetry::span!("optimizer");
                self.opt.step(&self.conv.params())?;
            }
            session.end_step();
            epoch_loss += loss.value().item()? as f64;
        }
        Ok(epoch_loss / self.batches_per_epoch as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnmark_gpusim::DeviceSpec;

    #[test]
    fn psage_mvl_trains() {
        let mut w = Psage::new(PsageDataset::MovieLens, Scale::Test, 1).unwrap();
        let mut session = ProfileSession::new("psage", DeviceSpec::v100());
        let before = w.eval_loss().unwrap();
        for _ in 0..8 {
            let _ = w.run_epoch(&mut session).unwrap();
        }
        let after = w.eval_loss().unwrap();
        assert!(after < before, "probe loss {before} → {after}");
        let p = session.finish();
        // Sorting kernels present (walk bookkeeping).
        assert!(p
            .per_class
            .contains_key(&gnnmark_profiler::FigureCategory::Sort));
        assert!(p.mean_sparsity > 0.0);
    }

    #[test]
    fn psage_minibatch_mode_trains_with_fanout_sampling() {
        let mode = crate::TrainMode::Minibatch(crate::MinibatchConfig {
            batch_size: 6,
            fanouts: vec![4, 3],
        });
        let mut w = Psage::new_with_mode(PsageDataset::MovieLens, Scale::Test, 1, &mode).unwrap();
        assert!(w.fanout.is_some());
        assert_eq!(w.batch_size, 6);
        // Probe is deterministic under the reserved batch id.
        let a = w.eval_loss().unwrap();
        let b = w.eval_loss().unwrap();
        assert_eq!(a, b);
        let mut session = ProfileSession::new("psage", DeviceSpec::v100());
        let loss = w.run_epoch(&mut session).unwrap();
        assert!(loss.is_finite());
        let after = w.eval_loss().unwrap();
        assert!(after.is_finite());
    }

    #[test]
    fn nwp_features_are_10x_wider_than_mvl() {
        let mvl = Psage::new(PsageDataset::MovieLens, Scale::Test, 1).unwrap();
        let nwp = Psage::new(PsageDataset::Nowplaying, Scale::Test, 3).unwrap();
        assert_eq!(
            nwp.data.item_item.feature_dim(),
            10 * mvl.data.item_item.feature_dim()
        );
        assert!(matches!(
            mvl.scaling_behavior(),
            Some(ScalingBehavior::ReplicatedSampling { .. })
        ));
        assert_eq!(mvl.name(), "PSAGE-MVL");
        assert_eq!(nwp.name(), "PSAGE-NWP");
    }

    #[test]
    fn nwp_spends_relatively_more_time_elementwise_than_mvl() {
        use gnnmark_profiler::FigureCategory;
        // Needs realistic tensor sizes — tiny Test tensors are launch-bound
        // and hide the width effect.
        let run = |ds| {
            let mut w = Psage::new(ds, Scale::Small, 3).unwrap();
            let mut s = ProfileSession::new("psage", DeviceSpec::v100());
            let _ = w.run_epoch(&mut s).unwrap();
            s.finish()
        };
        let mvl = run(PsageDataset::MovieLens);
        let nwp = run(PsageDataset::Nowplaying);
        assert!(
            nwp.time_share(FigureCategory::ElementWise)
                > mvl.time_share(FigureCategory::ElementWise),
            "NWP {} vs MVL {}",
            nwp.time_share(FigureCategory::ElementWise),
            mvl.time_share(FigureCategory::ElementWise)
        );
    }
}
