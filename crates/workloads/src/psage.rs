//! PSAGE: the PinSAGE recommendation workload (Ying et al., KDD 2018).
//!
//! Trains item embeddings on a bipartite user–item interaction graph with
//! random-walk importance sampling and a max-margin triplet loss, as in
//! the DGL reference implementation the paper profiles. Each step
//! follows DGL's minibatch pipeline: random walks sampled on the host,
//! walk traces and node ids sorted/compacted on the device, features of
//! the *sampled* nodes gathered and normalized, then aggregation,
//! projection and the triplet loss.
//!
//! The two datasets (MovieLens-like and Nowplaying-like) differ mainly in
//! item feature width — 10× wider for NWP — which flips the workload's
//! operation mix from sort-heavy (MVL) toward element-wise kernels (NWP),
//! the paper's headline data-dependence observation.

use std::collections::HashMap;

use gnnmark_autograd::{Adam, Optimizer, ParamSet, Tape, Var};
use gnnmark_gpusim::ScalingBehavior;
use gnnmark_graph::datasets::{movielens_like, nowplaying_like, Recommendation};
use gnnmark_graph::sampler::{ImportanceNeighborhood, RandomWalkSampler};
use gnnmark_nn::{Module, PinSageConv};
use gnnmark_profiler::ProfileSession;
use gnnmark_tensor::IntTensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Result, Scale, Workload, WorkloadInfo};

/// Which recommendation dataset PSAGE trains on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PsageDataset {
    /// MovieLens-like (60-wide item features).
    MovieLens,
    /// Nowplaying-like (600-wide item features).
    Nowplaying,
}

impl PsageDataset {
    /// Short label used in figures.
    pub fn label(self) -> &'static str {
        match self {
            PsageDataset::MovieLens => "MVL",
            PsageDataset::Nowplaying => "NWP",
        }
    }
}

/// One sampled triplet minibatch, with the global ids of every node it
/// touches plus the raw walk traces the device-side sampler sorts.
struct Minibatch {
    touched: IntTensor,
    walk_trace: IntTensor,
    seeds: Vec<ImportanceNeighborhood>,
    positives: Vec<ImportanceNeighborhood>,
    negatives: Vec<ImportanceNeighborhood>,
}

/// The PSAGE workload.
pub struct Psage {
    dataset: PsageDataset,
    data: Recommendation,
    conv: PinSageConv,
    sampler: RandomWalkSampler,
    opt: Adam,
    rng: StdRng,
    batch_size: usize,
    batches_per_epoch: usize,
    margin: f32,
}

impl Psage {
    /// Builds PSAGE on one of its two datasets.
    ///
    /// # Errors
    /// Propagates dataset/model construction errors.
    pub fn new(dataset: PsageDataset, scale: Scale, seed: u64) -> Result<Self> {
        let (data_scale, batch_size, batches) = match scale {
            Scale::Test => (0.01, 8, 2),
            Scale::Small => (0.20, 64, 6),
            Scale::Paper => (0.50, 128, 10),
        };
        let data = match dataset {
            PsageDataset::MovieLens => movielens_like(data_scale, seed)?,
            PsageDataset::Nowplaying => nowplaying_like(data_scale, seed)?,
        };
        let mut rng = StdRng::seed_from_u64(seed ^ 0x95a6e);
        let feat_dim = data.graph.features(data.items).dim(1);
        let conv = PinSageConv::new("psage.conv", feat_dim, 60, &mut rng)?;
        Ok(Psage {
            dataset,
            data,
            conv,
            sampler: RandomWalkSampler::new(16, 3, 6),
            opt: Adam::new(1e-3),
            rng,
            batch_size,
            batches_per_epoch: batches,
            margin: 0.4,
        })
    }

    fn num_items(&self) -> usize {
        self.data.item_item.num_nodes()
    }

    /// Samples one minibatch on the host (walks, positives, negatives) and
    /// compacts it, mirroring DGL's `PinSAGESampler`.
    fn sample_minibatch(&mut self, deterministic: Option<u64>) -> Result<Minibatch> {
        let n_items = self.num_items();
        let b = self.batch_size.min(n_items);
        let mut local_rng;
        let rng: &mut StdRng = match deterministic {
            Some(seed) => {
                local_rng = StdRng::seed_from_u64(seed);
                &mut local_rng
            }
            None => &mut self.rng,
        };
        let seed_ids: Vec<i64> = match deterministic {
            Some(_) => (0..b).map(|i| (i * 3 % n_items) as i64).collect(),
            None => (0..b).map(|_| rng.gen_range(0..n_items as i64)).collect(),
        };
        let seed_ids = IntTensor::from_vec(&[b], seed_ids)?;
        let seeds = self.sampler.sample(&self.data.item_item, &seed_ids, rng);
        let pos_ids: Vec<i64> = seeds.iter().map(|h| h.neighbors[0]).collect();
        let neg_ids: Vec<i64> = match deterministic {
            Some(_) => (0..b).map(|i| ((i * 7 + 5) % n_items) as i64).collect(),
            None => (0..b).map(|_| rng.gen_range(0..n_items as i64)).collect(),
        };
        let pos_ids = IntTensor::from_vec(&[b], pos_ids)?;
        let neg_ids = IntTensor::from_vec(&[b], neg_ids)?;
        let positives = self.sampler.sample(&self.data.item_item, &pos_ids, rng);
        let negatives = self.sampler.sample(&self.data.item_item, &neg_ids, rng);

        // Walk traces: the raw visit stream the device-side sampler sorts
        // to build importance neighborhoods (DGL sorts these per batch).
        let mut trace = Vec::new();
        for h in seeds.iter().chain(&positives).chain(&negatives) {
            trace.push(h.seed);
            for (rank, &nb) in h.neighbors.iter().enumerate() {
                // Visit counts across the whole walk set (walks × length).
                let visits = (h.weights[rank]
                    * (self.sampler.num_walks * self.sampler.walk_length) as f32)
                    .ceil() as usize;
                for _ in 0..visits.max(1) {
                    trace.push(nb);
                }
            }
        }
        let trace_len = trace.len();
        let walk_trace = IntTensor::from_vec(&[trace_len], trace)?;

        let mut touched: Vec<i64> = Vec::new();
        touched.extend_from_slice(seed_ids.as_slice());
        touched.extend_from_slice(pos_ids.as_slice());
        touched.extend_from_slice(neg_ids.as_slice());
        for h in seeds.iter().chain(&positives).chain(&negatives) {
            touched.extend_from_slice(&h.neighbors);
        }
        touched.sort_unstable();
        touched.dedup();
        let m = touched.len();
        Ok(Minibatch {
            touched: IntTensor::from_vec(&[m], touched)?,
            walk_trace,
            seeds,
            positives,
            negatives,
        })
    }

    /// Remaps a neighborhood list into the batch-local id space.
    fn localize(
        hoods: &[ImportanceNeighborhood],
        remap: &HashMap<i64, i64>,
    ) -> Vec<ImportanceNeighborhood> {
        hoods
            .iter()
            .map(|h| ImportanceNeighborhood {
                seed: remap[&h.seed],
                neighbors: h.neighbors.iter().map(|n| remap[n]).collect(),
                weights: h.weights.clone(),
            })
            .collect()
    }

    /// Device-side computation of one minibatch, returning the loss.
    fn batch_forward(&mut self, batch: &Minibatch, tape: &Tape, train: bool) -> Result<Var> {
        let m = batch.touched.numel();
        let remap: HashMap<i64, i64> = batch
            .touched
            .as_slice()
            .iter()
            .enumerate()
            .map(|(local, &global)| (global, local as i64))
            .collect();
        let seeds_l = Self::localize(&batch.seeds, &remap);
        let pos_l = Self::localize(&batch.positives, &remap);
        let neg_l = Self::localize(&batch.negatives, &remap);

        // Device-side sampler compaction, as DGL's PinSAGESampler does:
        // sort the visit stream by node id, re-sort the compacted counts
        // by frequency, and sort the batch's unique node ids.
        let (sorted_trace, _) = batch.walk_trace.sort_with_indices()?;
        let (_, _) = sorted_trace.sort_with_indices()?;
        let (_, _) = batch.touched.sort_with_indices()?;

        // Gather the sampled nodes' features and normalize them — the
        // element-wise stage whose cost scales with feature width.
        let all_feats = tape.constant(self.data.item_item.features().clone());
        let feats = all_feats.gather_rows(&batch.touched)?;
        let feats = if train {
            feats.dropout(0.1, &mut self.rng)?
        } else {
            feats
        };
        let norm = feats.square().sum_rows()?.add_scalar(1e-12).sqrt().recip();
        let feats = feats.scale_rows(&norm)?;

        let (a_s, a_s_t, i_s) = PinSageConv::build_batch(&seeds_l, m)?;
        let (a_p, a_p_t, i_p) = PinSageConv::build_batch(&pos_l, m)?;
        let (a_n, a_n_t, i_n) = PinSageConv::build_batch(&neg_l, m)?;
        let emb_s = self.conv.forward(tape, &feats, &a_s, &a_s_t, &i_s)?;
        let emb_p = self.conv.forward(tape, &feats, &a_p, &a_p_t, &i_p)?;
        let emb_n = self.conv.forward(tape, &feats, &a_n, &a_n_t, &i_n)?;

        let pos_score = emb_s.mul(&emb_p)?.sum_rows()?;
        let neg_score = emb_s.mul(&emb_n)?.sum_rows()?;
        let hinge = neg_score.sub(&pos_score)?.add_scalar(self.margin).relu();
        Ok(hinge.mean_all())
    }

    /// Margin loss on a fixed, deterministic probe batch — a noise-free
    /// progress measure for tests and convergence tracking.
    ///
    /// # Errors
    /// Propagates tensor-engine errors.
    pub fn eval_loss(&mut self) -> Result<f64> {
        let batch = self.sample_minibatch(Some(0xea71))?;
        let tape = Tape::new();
        let loss = self.batch_forward(&batch, &tape, false)?;
        Ok(loss.value().item()? as f64)
    }
}

impl Workload for Psage {
    fn name(&self) -> String {
        format!("PSAGE-{}", self.dataset.label())
    }

    fn info(&self) -> WorkloadInfo {
        crate::table_one()
            .into_iter()
            .find(|r| r.abbrev == "PSAGE")
            .expect("PSAGE row present")
    }

    fn params(&self) -> ParamSet {
        self.conv.params()
    }

    fn steps_per_epoch(&self) -> u64 {
        self.batches_per_epoch as u64
    }

    fn scaling_behavior(&self) -> Option<ScalingBehavior> {
        // DGL's PinSAGE batch sampler is incompatible with DDP: training
        // data replicates across devices, so multi-GPU runs *degrade*.
        Some(ScalingBehavior::ReplicatedSampling { redundancy: 0.18 })
    }

    fn quality(&mut self) -> Result<Option<(&'static str, f64)>> {
        Ok(Some(("probe margin loss", self.eval_loss()?)))
    }

    fn probe(&mut self) -> Result<f64> {
        let batch = self.sample_minibatch(Some(0xea71))?;
        let tape = Tape::new();
        let loss = self.batch_forward(&batch, &tape, false)?;
        tape.backward(&loss)?;
        Ok(loss.value().item()? as f64)
    }

    fn run_epoch(&mut self, session: &mut ProfileSession) -> Result<f64> {
        let features = self.data.item_item.features().clone();
        let mut epoch_loss = 0.0f64;
        for _ in 0..self.batches_per_epoch {
            let _step = gnnmark_telemetry::span!("step");
            let batch = self.sample_minibatch(None)?;
            // The minibatch's features ship to the device (the paper's
            // sparsity instrumentation hooks exactly this copy).
            let batch_feats = features.gather_rows(&batch.touched)?;
            session.upload(&batch_feats);
            session.upload_int(&batch.touched);
            session.upload_int(&batch.walk_trace);

            self.params().zero_grad();
            session.begin_step();
            let tape = Tape::new();
            let loss = {
                let _fwd = gnnmark_telemetry::span!("forward");
                self.batch_forward(&batch, &tape, true)?
            };
            {
                let _bwd = gnnmark_telemetry::span!("backward");
                tape.backward(&loss)?;
            }
            {
                let _opt = gnnmark_telemetry::span!("optimizer");
                self.opt.step(&self.conv.params())?;
            }
            session.end_step();
            epoch_loss += loss.value().item()? as f64;
        }
        Ok(epoch_loss / self.batches_per_epoch as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnmark_gpusim::DeviceSpec;

    #[test]
    fn psage_mvl_trains() {
        let mut w = Psage::new(PsageDataset::MovieLens, Scale::Test, 1).unwrap();
        let mut session = ProfileSession::new("psage", DeviceSpec::v100());
        let before = w.eval_loss().unwrap();
        for _ in 0..8 {
            let _ = w.run_epoch(&mut session).unwrap();
        }
        let after = w.eval_loss().unwrap();
        assert!(after < before, "probe loss {before} → {after}");
        let p = session.finish();
        // Sorting kernels present (walk bookkeeping).
        assert!(p
            .per_class
            .contains_key(&gnnmark_profiler::FigureCategory::Sort));
        assert!(p.mean_sparsity > 0.0);
    }

    #[test]
    fn nwp_features_are_10x_wider_than_mvl() {
        let mvl = Psage::new(PsageDataset::MovieLens, Scale::Test, 1).unwrap();
        let nwp = Psage::new(PsageDataset::Nowplaying, Scale::Test, 3).unwrap();
        assert_eq!(
            nwp.data.item_item.feature_dim(),
            10 * mvl.data.item_item.feature_dim()
        );
        assert!(matches!(
            mvl.scaling_behavior(),
            Some(ScalingBehavior::ReplicatedSampling { .. })
        ));
        assert_eq!(mvl.name(), "PSAGE-MVL");
        assert_eq!(nwp.name(), "PSAGE-NWP");
    }

    #[test]
    fn nwp_spends_relatively_more_time_elementwise_than_mvl() {
        use gnnmark_profiler::FigureCategory;
        // Needs realistic tensor sizes — tiny Test tensors are launch-bound
        // and hide the width effect.
        let run = |ds| {
            let mut w = Psage::new(ds, Scale::Small, 3).unwrap();
            let mut s = ProfileSession::new("psage", DeviceSpec::v100());
            let _ = w.run_epoch(&mut s).unwrap();
            s.finish()
        };
        let mvl = run(PsageDataset::MovieLens);
        let nwp = run(PsageDataset::Nowplaying);
        assert!(
            nwp.time_share(FigureCategory::ElementWise)
                > mvl.time_share(FigureCategory::ElementWise),
            "NWP {} vs MVL {}",
            nwp.time_share(FigureCategory::ElementWise),
            mvl.time_share(FigureCategory::ElementWise)
        );
    }
}
