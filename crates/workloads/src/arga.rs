//! ARGA: Adversarially Regularized Graph Autoencoder (Pan et al., 2018).
//!
//! Encoder: two GCN layers with a PReLU in between (the PReLU is one of
//! the activation functions the paper credits for ARGA's high transfer
//! sparsity). Decoder: inner-product reconstruction of the adjacency.
//! A small MLP discriminator adversarially regularizes the embedding
//! toward a Gaussian prior. Training alternates discriminator and
//! encoder/generator steps with two optimizers, exactly like a GAN.
//!
//! ARGA sends the *entire graph* to the GPU every epoch, which is why the
//! paper excludes it from multi-GPU scaling (Figure 9).

use std::collections::HashMap;

use gnnmark_autograd::{Adam, Optimizer, Param, ParamSet, Tape, Var};
use gnnmark_gpusim::ScalingBehavior;
use gnnmark_graph::datasets::{citation, CitationKind};
use gnnmark_graph::sampler::MinibatchSampler;
use gnnmark_graph::{FanoutSampler, Graph, SampledBatch};
use gnnmark_nn::gcn::NormAdj;
use gnnmark_nn::linear::Activation;
use gnnmark_nn::{losses, GcnConv, Mlp, Module};
use gnnmark_profiler::ProfileSession;
use gnnmark_tensor::{IntTensor, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Result, Scale, TrainMode, Workload, WorkloadInfo};

/// Reserved batch id for [`Workload::probe`] in minibatch mode, far above
/// any counter a real run reaches.
const PROBE_BATCH_ID: u64 = u64::MAX;

/// The ARGA workload.
pub struct Arga {
    kind: CitationKind,
    graph: Graph,
    adj: NormAdj,
    /// Dense reconstruction target — only materialized in full-graph mode
    /// (minibatch mode builds per-batch `[b × b]` sub-targets instead,
    /// which is what frees ARGA from the O(n²) decoder footprint).
    adj_dense: Option<Tensor>,
    enc1: GcnConv,
    enc2: GcnConv,
    prelu_alpha: Param,
    discriminator: Mlp,
    gen_opt: Adam,
    disc_opt: Adam,
    rng: StdRng,
    embed: usize,
    mode: TrainMode,
    /// Fanout engine + seed batcher, minibatch mode only.
    sampler: Option<(FanoutSampler, MinibatchSampler)>,
    batch_counter: u64,
}

impl Arga {
    /// Builds ARGA on a citation-style graph (full-graph mode).
    ///
    /// # Errors
    /// Propagates dataset/model construction errors.
    pub fn new(kind: CitationKind, scale: Scale, seed: u64) -> Result<Self> {
        Self::new_with_mode(kind, scale, seed, &TrainMode::FullGraph)
    }

    /// Builds ARGA in an explicit [`TrainMode`]. In minibatch mode the
    /// encoder runs over fanout-sampled blocks (`fanouts[0]` feeds the
    /// first GCN layer) and the inner-product decoder reconstructs only
    /// the seed-by-seed sub-adjacency.
    ///
    /// # Errors
    /// Propagates dataset/model construction errors.
    pub fn new_with_mode(kind: CitationKind, scale: Scale, seed: u64, mode: &TrainMode) -> Result<Self> {
        let (graph_scale, hidden, embed) = match scale {
            Scale::Test => (0.05, 16, 8),
            Scale::Small => (0.25, 32, 16),
            Scale::Paper => (1.0, 32, 16),
        };
        let graph = citation(kind, graph_scale, seed)?;
        let adj = NormAdj::new_symmetric(graph.normalized_adjacency()?);
        let n = graph.num_nodes();
        // Binary dense adjacency (with self-loops) as reconstruction target.
        let adj_dense = if mode.minibatch().is_none() {
            let mut t = Tensor::zeros(&[n, n]);
            {
                let d = t.as_mut_slice();
                for r in 0..n {
                    d[r * n + r] = 1.0;
                    for &c in graph.neighbors(r) {
                        d[r * n + c] = 1.0;
                    }
                }
            }
            Some(t)
        } else {
            None
        };
        let mut rng = StdRng::seed_from_u64(seed ^ 0xa27a);
        let enc1 = GcnConv::new("arga.enc1", graph.feature_dim(), hidden, &mut rng)?;
        let enc2 = GcnConv::new("arga.enc2", hidden, embed, &mut rng)?;
        let prelu_alpha = Param::new("arga.prelu", Tensor::from_vec(&[1], vec![0.25])?);
        let discriminator = Mlp::new(
            "arga.disc",
            &[embed, 2 * embed, 1],
            Activation::Relu,
            &mut rng,
        )?;
        let sampler = match mode.minibatch() {
            None => None,
            Some(cfg) => {
                // Two encoder layers → exactly two fanout levels; a short
                // list repeats its last entry, a long one is truncated.
                let mut fanouts = if cfg.fanouts.is_empty() {
                    crate::MinibatchConfig::default().fanouts
                } else {
                    cfg.fanouts.clone()
                };
                let last = *fanouts.last().expect("non-empty by construction");
                fanouts.resize(2, last);
                let batch = cfg.batch_size.min(n).max(1);
                Some((
                    FanoutSampler::new(&fanouts, seed ^ 0x5a3b)?,
                    MinibatchSampler::new(n, batch, &mut rng)?,
                ))
            }
        };
        Ok(Arga {
            kind,
            graph,
            adj,
            adj_dense,
            enc1,
            enc2,
            prelu_alpha,
            discriminator,
            gen_opt: Adam::new(5e-3),
            disc_opt: Adam::new(5e-3),
            rng,
            embed,
            mode: mode.clone(),
            sampler,
            batch_counter: 0,
        })
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    fn encoder_params(&self) -> ParamSet {
        let mut set = self.enc1.params();
        set.extend(&self.enc2.params());
        set.register(self.prelu_alpha.clone());
        set
    }

    fn encode(&self, tape: &Tape, x: &Var) -> Result<Var> {
        let h = self.enc1.forward(tape, &self.adj, x)?;
        let alpha = tape.read(&self.prelu_alpha);
        let h = h.prelu(&alpha)?;
        self.enc2.forward(tape, &self.adj, &h)
    }

    /// Encoder over sampled blocks: the same two GCN layers + PReLU, but
    /// aggregating through the batch's `[dst × src]` slices.
    fn encode_blocks(&self, tape: &Tape, batch: &SampledBatch, x: &Var) -> Result<Var> {
        let h = self.enc1.forward_block(tape, &batch.blocks[0], x)?;
        let alpha = tape.read(&self.prelu_alpha);
        let h = h.prelu(&alpha)?;
        self.enc2.forward_block(tape, &batch.blocks[1], &h)
    }

    /// Dense `[b × b]` reconstruction target over the seed set: self-loops
    /// plus the edges both of whose endpoints are seeds. With seeds
    /// `0..n` in order this equals the full-graph target exactly.
    fn dense_sub_target(&self, seeds: &[i64]) -> Tensor {
        let b = seeds.len();
        let pos: HashMap<usize, usize> = seeds
            .iter()
            .enumerate()
            .map(|(i, &s)| (s as usize, i))
            .collect();
        let mut t = Tensor::zeros(&[b, b]);
        let d = t.as_mut_slice();
        for (i, &s) in seeds.iter().enumerate() {
            d[i * b + i] = 1.0;
            for &c in self.graph.neighbors(s as usize) {
                if let Some(&j) = pos.get(&c) {
                    d[i * b + j] = 1.0;
                }
            }
        }
        t
    }

    /// One epoch of sampled mini-batches: per batch, a discriminator step
    /// and a generator step over the seed sub-problem. Returns the mean
    /// generator loss.
    fn run_epoch_minibatch(&mut self, session: &mut ProfileSession) -> Result<f64> {
        let (fanout, epoch) = {
            let (fanout, mb) = self.sampler.as_mut().expect("minibatch mode");
            let fanout = fanout.clone();
            let epoch = mb.epoch(&mut self.rng);
            (fanout, epoch)
        };
        let n = self.graph.num_nodes();
        let mut gen_losses = Vec::with_capacity(epoch.num_batches());
        for ids in epoch {
            let seeds: Vec<i64> = ids.as_slice().to_vec();
            let b = seeds.len();
            let batch = {
                let _sample = gnnmark_telemetry::span!("sample");
                let batch = fanout.sample(self.adj.matrix().as_ref(), &seeds, self.batch_counter)?;
                self.batch_counter += 1;
                batch
            };
            gnnmark_telemetry::metrics::counter_add("gnnmark_sampling_edges_total", batch.edges);
            gnnmark_telemetry::metrics::counter_add("gnnmark_sampling_batches_total", 1);
            // Only the touched slice ships to the device: gathered input
            // features plus the per-layer block structures.
            let feats = self.graph.features().gather_rows(&batch.input_index()?)?;
            session.upload(&feats);
            for blk in &batch.blocks {
                session.upload_csr(&blk.adj);
            }

            // ---- discriminator step ----
            let step_d = gnnmark_telemetry::span!("step");
            self.params().zero_grad();
            session.begin_step();
            let tape = Tape::new();
            let d_loss = {
                let _fwd = gnnmark_telemetry::span!("forward");
                let x = tape.constant(feats.clone());
                let z_fake = self.encode_blocks(&tape, &batch, &x)?.detach();
                let z_real = tape.constant(Tensor::randn(&[b, self.embed], 1.0, &mut self.rng));
                let d_fake = self.discriminator.forward(&tape, &z_fake)?;
                let d_real = self.discriminator.forward(&tape, &z_real)?;
                let ones = Tensor::ones(&[b, 1]);
                let zeros_t = Tensor::zeros(&[b, 1]);
                losses::bce_with_logits(&d_real, &ones)?
                    .add(&losses::bce_with_logits(&d_fake, &zeros_t)?)?
            };
            {
                let _bwd = gnnmark_telemetry::span!("backward");
                tape.backward(&d_loss)?;
            }
            {
                let _opt = gnnmark_telemetry::span!("optimizer");
                self.disc_opt.step(&self.discriminator.params())?;
            }
            session.end_step();
            drop(step_d);

            // ---- generator / reconstruction step ----
            let _step_g = gnnmark_telemetry::span!("step");
            self.params().zero_grad();
            session.begin_step();
            let tape = Tape::new();
            let target = self.dense_sub_target(&seeds);
            let g_loss = {
                let _fwd = gnnmark_telemetry::span!("forward");
                let x = tape.constant(feats.clone());
                self.generator_loss_sampled(&tape, &batch, &x, &target)?
            };
            {
                let _bwd = gnnmark_telemetry::span!("backward");
                tape.backward(&g_loss)?;
            }
            {
                let _opt = gnnmark_telemetry::span!("optimizer");
                self.gen_opt.step(&self.encoder_params())?;
            }
            // Negative-edge bookkeeping, batch-sized (sort kernels).
            let neg: Vec<i64> = (0..b.min(512))
                .map(|_| self.rng.gen_range(0..n as i64))
                .collect();
            let neg_len = neg.len();
            let _ = IntTensor::from_vec(&[neg_len], neg)?.argsort()?;
            session.end_step();
            gen_losses.push(g_loss.value().item()? as f64);
        }
        Ok(gen_losses.iter().sum::<f64>() / gen_losses.len().max(1) as f64)
    }

    /// One sampled generator pass (forward only up to the loss): returns
    /// the loss `Var` so callers control backward/step.
    fn generator_loss_sampled(
        &self,
        tape: &Tape,
        batch: &SampledBatch,
        x: &Var,
        target: &Tensor,
    ) -> Result<Var> {
        let b = batch.seeds.len();
        let z = self.encode_blocks(tape, batch, x)?;
        let logits = z.matmul_nt(&z)?;
        let recon = losses::bce_with_logits(&logits, target)?;
        let d_on_fake = self.discriminator.forward(tape, &z)?;
        let ones = Tensor::ones(&[b, 1]);
        let adv = losses::bce_with_logits(&d_on_fake, &ones)?;
        recon.add(&adv.mul_scalar(0.1))
    }

    /// Tape-free mirror of [`Arga::encode`].
    fn encode_infer(&self, x: &Tensor) -> Result<Tensor> {
        let h = self.enc1.infer(&self.adj, x)?;
        let h = h.prelu(self.prelu_alpha.value().item()?);
        self.enc2.infer(&self.adj, &h)
    }

    /// Tape-free mirror of [`Arga::encode_blocks`].
    fn encode_blocks_infer(&self, batch: &SampledBatch, x: &Tensor) -> Result<Tensor> {
        let h = self.enc1.infer_block(&batch.blocks[0], x)?;
        let h = h.prelu(self.prelu_alpha.value().item()?);
        self.enc2.infer_block(&batch.blocks[1], &h)
    }

    /// Tape-free mirror of [`Arga::generator_loss_sampled`].
    fn generator_loss_sampled_infer(
        &self,
        batch: &SampledBatch,
        x: &Tensor,
        target: &Tensor,
    ) -> Result<Tensor> {
        let b = batch.seeds.len();
        let z = self.encode_blocks_infer(batch, x)?;
        let logits = z.matmul_nt(&z)?;
        let recon = losses::bce_with_logits_infer(&logits, target)?;
        let d_on_fake = self.discriminator.infer(&z)?;
        let ones = Tensor::ones(&[b, 1]);
        let adv = losses::bce_with_logits_infer(&d_on_fake, &ones)?;
        recon.add(&adv.mul_scalar(0.1))
    }
}

impl Workload for Arga {
    fn name(&self) -> String {
        format!("ARGA-{}", self.kind.name())
    }

    fn info(&self) -> WorkloadInfo {
        crate::table_one()
            .into_iter()
            .find(|r| r.abbrev == "ARGA")
            .expect("ARGA row present")
    }

    fn params(&self) -> ParamSet {
        let mut set = self.encoder_params();
        set.extend(&self.discriminator.params());
        set
    }

    fn steps_per_epoch(&self) -> u64 {
        // Discriminator step + generator step, per batch (full-graph mode
        // is one batch covering everything).
        match &self.sampler {
            None => 2,
            Some((_, mb)) => 2 * mb.num_batches() as u64,
        }
    }

    fn scaling_behavior(&self) -> Option<ScalingBehavior> {
        None // full-graph training; excluded from Figure 9, as in the paper
    }

    fn quality(&mut self) -> Result<Option<(&'static str, f64)>> {
        // Mean reconstruction score on edges minus on random non-edges —
        // positive once the embedding has learned the structure.
        let n = self.graph.num_nodes();
        let tape = Tape::new();
        let x = tape.constant(self.graph.features().clone());
        let z = self.encode(&tape, &x)?.value();
        let d = z.dim(1);
        let dot = |a: usize, b: usize| -> f64 {
            let (ra, rb) = (&z.as_slice()[a * d..(a + 1) * d], &z.as_slice()[b * d..(b + 1) * d]);
            ra.iter().zip(rb).map(|(x, y)| (x * y) as f64).sum()
        };
        let mut pos = 0.0;
        let mut pos_n = 0usize;
        for a in 0..n {
            for &b in self.graph.neighbors(a) {
                if a < b && pos_n < 512 {
                    pos += dot(a, b);
                    pos_n += 1;
                }
            }
        }
        let mut neg = 0.0;
        for i in 0..pos_n {
            neg += dot((i * 37) % n, (i * 101 + 13) % n);
        }
        if pos_n == 0 {
            return Ok(None);
        }
        Ok(Some(("edge-score margin", (pos - neg) / pos_n as f64)))
    }

    fn probe(&mut self) -> Result<f64> {
        // Generator/reconstruction path only — it is the RNG-free part of
        // the GAN loop (the discriminator step draws a fresh Gaussian
        // prior sample every call), and it exercises every parameter:
        // encoder + PReLU through the reconstruction, discriminator
        // through the adversarial term.
        let n = self.graph.num_nodes();
        if let Some((fanout, _)) = &self.sampler {
            // Deterministic probe batch: the first `batch_size` nodes in id
            // order with a reserved batch id — fanout sampling is a pure
            // function of (seed, batch id, level, node), so no RNG state
            // advances. When batch_size ≥ n this covers the whole graph,
            // which is what the parity layer exploits.
            let batch_size = match self.mode.minibatch() {
                Some(cfg) => cfg.batch_size.min(n).max(1),
                None => n,
            };
            let seeds: Vec<i64> = (0..batch_size as i64).collect();
            let batch = fanout.sample(self.adj.matrix().as_ref(), &seeds, PROBE_BATCH_ID)?;
            let target = self.dense_sub_target(&seeds);
            let tape = Tape::new();
            let feats = {
                let idx = batch.input_index()?;
                self.graph.features().gather_rows(&idx)?
            };
            let x = tape.constant(feats);
            let g_loss = self.generator_loss_sampled(&tape, &batch, &x, &target)?;
            tape.backward(&g_loss)?;
            return Ok(g_loss.value().item()? as f64);
        }
        let tape = Tape::new();
        let x = tape.constant(self.graph.features().clone());
        let z = self.encode(&tape, &x)?;
        let logits = z.matmul_nt(&z)?;
        let target = self.adj_dense.as_ref().expect("full-graph mode has dense target");
        let recon = losses::bce_with_logits(&logits, target)?;
        let d_on_fake = self.discriminator.forward(&tape, &z)?;
        let ones = Tensor::ones(&[n, 1]);
        let adv = losses::bce_with_logits(&d_on_fake, &ones)?;
        let g_loss = recon.add(&adv.mul_scalar(0.1))?;
        tape.backward(&g_loss)?;
        Ok(g_loss.value().item()? as f64)
    }

    fn infer(&mut self, batch: crate::InferBatch) -> Result<f64> {
        let n = self.graph.num_nodes();
        if let Some((fanout, _)) = &self.sampler {
            // Same deterministic sampling as `probe` (pure function of the
            // batch id, no RNG advance), over one seed or the probe batch.
            let batch_size = match batch {
                crate::InferBatch::Single => 1,
                crate::InferBatch::Full => match self.mode.minibatch() {
                    Some(cfg) => cfg.batch_size.min(n).max(1),
                    None => n,
                },
            };
            let seeds: Vec<i64> = (0..batch_size as i64).collect();
            let sampled = fanout.sample(self.adj.matrix().as_ref(), &seeds, PROBE_BATCH_ID)?;
            let target = self.dense_sub_target(&seeds);
            let feats = {
                let idx = sampled.input_index()?;
                self.graph.features().gather_rows(&idx)?
            };
            let g_loss = self.generator_loss_sampled_infer(&sampled, &feats, &target)?;
            return Ok(g_loss.item()? as f64);
        }
        // Full-graph mode: the forward is inherently whole-graph, so
        // `Single` scores the same graph-sized batch as `Full`.
        let z = self.encode_infer(self.graph.features())?;
        let logits = z.matmul_nt(&z)?;
        let target = self.adj_dense.as_ref().expect("full-graph mode has dense target");
        let recon = losses::bce_with_logits_infer(&logits, target)?;
        let d_on_fake = self.discriminator.infer(&z)?;
        let ones = Tensor::ones(&[n, 1]);
        let adv = losses::bce_with_logits_infer(&d_on_fake, &ones)?;
        let g_loss = recon.add(&adv.mul_scalar(0.1))?;
        Ok(g_loss.item()? as f64)
    }

    fn infer_items(&self, batch: crate::InferBatch) -> u64 {
        let n = self.graph.num_nodes();
        match batch {
            crate::InferBatch::Single => 1,
            crate::InferBatch::Full => match self.mode.minibatch() {
                Some(cfg) => cfg.batch_size.min(n).max(1) as u64,
                None => n as u64,
            },
        }
    }

    fn run_epoch(&mut self, session: &mut ProfileSession) -> Result<f64> {
        if self.sampler.is_some() {
            return self.run_epoch_minibatch(session);
        }
        let n = self.graph.num_nodes();
        // The entire graph ships to the device every epoch.
        session.upload(self.graph.features());
        session.upload_csr(self.adj.matrix());

        // ---- discriminator step ----
        let step_d = gnnmark_telemetry::span!("step");
        self.params().zero_grad();
        session.begin_step();
        let tape = Tape::new();
        let d_loss = {
            let _fwd = gnnmark_telemetry::span!("forward");
            let x = tape.constant(self.graph.features().clone());
            let z_fake = self.encode(&tape, &x)?.detach();
            let z_real = tape.constant(Tensor::randn(&[n, self.embed], 1.0, &mut self.rng));
            let d_fake = self.discriminator.forward(&tape, &z_fake)?;
            let d_real = self.discriminator.forward(&tape, &z_real)?;
            let ones = Tensor::ones(&[n, 1]);
            let zeros_t = Tensor::zeros(&[n, 1]);
            losses::bce_with_logits(&d_real, &ones)?
                .add(&losses::bce_with_logits(&d_fake, &zeros_t)?)?
        };
        {
            let _bwd = gnnmark_telemetry::span!("backward");
            tape.backward(&d_loss)?;
        }
        {
            let _opt = gnnmark_telemetry::span!("optimizer");
            self.disc_opt.step(&self.discriminator.params())?;
        }
        session.end_step();
        drop(step_d);

        // ---- generator / reconstruction step ----
        let _step_g = gnnmark_telemetry::span!("step");
        self.params().zero_grad();
        session.begin_step();
        let tape = Tape::new();
        let g_loss = {
            let _fwd = gnnmark_telemetry::span!("forward");
            let x = tape.constant(self.graph.features().clone());
            let z = self.encode(&tape, &x)?;
            // Inner-product decoder over the whole graph.
            let logits = z.matmul_nt(&z)?;
            let target = self
                .adj_dense
                .as_ref()
                .expect("full-graph epoch requires dense target");
            let recon = losses::bce_with_logits(&logits, target)?;
            // Adversarial term: fool the discriminator.
            let d_on_fake = self.discriminator.forward(&tape, &z)?;
            let ones = Tensor::ones(&[n, 1]);
            let adv = losses::bce_with_logits(&d_on_fake, &ones)?;
            recon.add(&adv.mul_scalar(0.1))?
        };
        {
            let _bwd = gnnmark_telemetry::span!("backward");
            tape.backward(&g_loss)?;
        }
        {
            let _opt = gnnmark_telemetry::span!("optimizer");
            self.gen_opt.step(&self.encoder_params())?;
        }

        // Negative-edge bookkeeping: sample node pairs and sort their ids
        // (DGL/PyG edge bookkeeping launches sort kernels here).
        let neg: Vec<i64> = (0..n.min(512))
            .map(|_| self.rng.gen_range(0..n as i64))
            .collect();
        let neg_len = neg.len();
        let _ = IntTensor::from_vec(&[neg_len], neg)?.argsort()?;
        session.end_step();

        Ok(g_loss.value().item()? as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnmark_gpusim::DeviceSpec;

    #[test]
    fn arga_loss_decreases() {
        let mut w = Arga::new(CitationKind::Cora, Scale::Test, 3).unwrap();
        let mut session = ProfileSession::new("arga", DeviceSpec::v100());
        let mut losses = Vec::new();
        for _ in 0..6 {
            losses.push(w.run_epoch(&mut session).unwrap());
        }
        assert!(
            losses.last().unwrap() < losses.first().unwrap(),
            "losses {losses:?}"
        );
        let p = session.finish();
        assert!(p.kernels.len() > 50);
        // PReLU+BCE over a mostly-empty adjacency → sparse-ish transfers.
        assert!(p.mean_sparsity > 0.5, "sparsity {}", p.mean_sparsity);
    }

    #[test]
    fn arga_minibatch_trains_with_finite_losses() {
        let mode = crate::TrainMode::Minibatch(crate::MinibatchConfig {
            batch_size: 16,
            fanouts: vec![4, 3],
        });
        let mut w = Arga::new_with_mode(CitationKind::Cora, Scale::Test, 3, &mode).unwrap();
        assert!(w.steps_per_epoch() > 2, "several batches per epoch");
        let mut session = ProfileSession::new("arga-mb", DeviceSpec::v100());
        let mut losses = Vec::new();
        for _ in 0..4 {
            losses.push(w.run_epoch(&mut session).unwrap());
        }
        assert!(losses.iter().all(|l| l.is_finite()), "losses {losses:?}");
        assert!(
            losses.last().unwrap() < losses.first().unwrap(),
            "losses {losses:?}"
        );
        let p = session.finish();
        assert!(p.kernels.len() > 50);
    }

    #[test]
    fn arga_full_coverage_minibatch_probe_matches_fullgraph() {
        let mut full = Arga::new(CitationKind::Cora, Scale::Test, 3).unwrap();
        let n = full.graph().num_nodes();
        let cover = crate::TrainMode::Minibatch(crate::MinibatchConfig {
            batch_size: n,
            fanouts: vec![0, 0],
        });
        let mut mb = Arga::new_with_mode(CitationKind::Cora, Scale::Test, 3, &cover).unwrap();
        let lf = full.probe().unwrap();
        let lm = mb.probe().unwrap();
        assert_eq!(lf, lm, "full-coverage unlimited-fanout probe is bit-identical");
    }

    #[test]
    fn arga_is_excluded_from_scaling() {
        let w = Arga::new(CitationKind::Cora, Scale::Test, 3).unwrap();
        assert!(w.scaling_behavior().is_none());
        assert_eq!(w.steps_per_epoch(), 2);
        assert!(w.name().contains("Cora"));
        assert!(w.params().total_scalars() > 0);
    }
}
