//! DGCN: DeepGCN for molecular property prediction (Li et al., ICCV 2019).
//!
//! A stack of GENConv-style residual blocks (pre-activation batch norm +
//! message aggregation + MLP + residual) over batched molecule graphs,
//! with a mean-pool readout and a binary classification head — the model
//! whose execution the paper finds dominated by *element-wise* kernels
//! (~31 %), driven by the residual adds, batch-norm math and Adam updates.

use gnnmark_autograd::{Adam, Optimizer, ParamSet, Tape};
use gnnmark_gpusim::ScalingBehavior;
use gnnmark_graph::datasets::molhiv_like;
use gnnmark_graph::{BatchedGraph, Graph};
use gnnmark_nn::gcn::EdgeList;
use gnnmark_nn::{losses, GenConv, Linear, Module};
use gnnmark_profiler::ProfileSession;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::{Result, Scale, Workload, WorkloadInfo};

/// The DeepGCN workload.
pub struct Dgcn {
    molecules: Vec<Graph>,
    embed: Linear,
    blocks: Vec<GenConv>,
    head: Linear,
    opt: Adam,
    rng: StdRng,
    batch_size: usize,
    hidden: usize,
}

impl Dgcn {
    /// Builds DeepGCN on molhiv-like molecules.
    ///
    /// # Errors
    /// Propagates dataset/model construction errors.
    pub fn new(scale: Scale, seed: u64) -> Result<Self> {
        Self::new_with_mode(scale, seed, &crate::TrainMode::FullGraph)
    }

    /// Builds DeepGCN in an explicit [`crate::TrainMode`]. Minibatch mode
    /// overrides the molecule batch size; fanouts don't apply to batched
    /// small graphs and are ignored.
    ///
    /// # Errors
    /// Propagates dataset/model construction errors.
    pub fn new_with_mode(scale: Scale, seed: u64, mode: &crate::TrainMode) -> Result<Self> {
        let (n_mols, mut batch, hidden, depth) = match scale {
            Scale::Test => (8, 4, 16, 3),
            Scale::Small => (64, 16, 72, 7),
            Scale::Paper => (192, 32, 72, 14),
        };
        if let Some(cfg) = mode.minibatch() {
            batch = cfg.batch_size.clamp(1, n_mols);
        }
        let molecules = molhiv_like(n_mols, seed)?;
        let mut rng = StdRng::seed_from_u64(seed ^ 0xd9c2);
        let embed = Linear::new("dgcn.embed", 9, hidden, &mut rng)?;
        let blocks = (0..depth)
            .map(|i| GenConv::new(&format!("dgcn.block{i}"), hidden, &mut rng))
            .collect::<Result<Vec<_>>>()?;
        let head = Linear::new("dgcn.head", hidden, 2, &mut rng)?;
        Ok(Dgcn {
            molecules,
            embed,
            blocks,
            head,
            opt: Adam::new(1e-3),
            rng,
            batch_size: batch,
            hidden,
        })
    }

    /// Number of residual blocks (model depth).
    pub fn depth(&self) -> usize {
        self.blocks.len()
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }
}

impl Workload for Dgcn {
    fn name(&self) -> String {
        "DGCN".to_string()
    }

    fn info(&self) -> WorkloadInfo {
        crate::table_one()
            .into_iter()
            .find(|r| r.abbrev == "DGCN")
            .expect("DGCN row present")
    }

    fn params(&self) -> ParamSet {
        let mut set = self.embed.params();
        for b in &self.blocks {
            set.extend(&b.params());
        }
        set.extend(&self.head.params());
        set
    }

    fn steps_per_epoch(&self) -> u64 {
        self.molecules.len().div_ceil(self.batch_size) as u64
    }

    fn scaling_behavior(&self) -> Option<ScalingBehavior> {
        Some(ScalingBehavior::DataParallel)
    }

    fn quality(&mut self) -> Result<Option<(&'static str, f64)>> {
        // Accuracy over the full training set, one batched forward pass.
        let batch = BatchedGraph::from_graphs(&self.molecules)?;
        let edges = EdgeList::from_graph(batch.graph())?;
        let labels = batch.graph_labels().expect("labels").clone();
        let tape = Tape::new();
        let x = tape.constant(batch.graph().features().clone());
        let mut h = self.embed.forward(&tape, &x)?.relu();
        for block in &self.blocks {
            h = block.forward(&tape, &edges, &h)?;
        }
        let sums = h.scatter_add_rows(batch.graph_ids(), batch.num_graphs())?;
        let inv: Vec<f32> = (0..batch.num_graphs())
            .map(|i| {
                let (s, e) = batch.node_range(i);
                1.0 / (e - s).max(1) as f32
            })
            .collect();
        let n_graphs = batch.num_graphs();
        let inv = tape.constant(gnnmark_tensor::Tensor::from_vec(&[n_graphs], inv)?);
        let logits = self.head.forward(&tape, &sums.scale_rows(&inv)?)?;
        let acc = losses::accuracy(&logits.value(), &labels)?;
        Ok(Some(("train accuracy", acc)))
    }

    fn probe(&mut self) -> Result<f64> {
        // Full-batch forward (as in `quality`) with a cross-entropy loss
        // and backward; no shuffling, no optimizer step.
        let batch = BatchedGraph::from_graphs(&self.molecules)?;
        let edges = EdgeList::from_graph(batch.graph())?;
        let labels = batch.graph_labels().expect("labels").clone();
        let tape = Tape::new();
        let x = tape.constant(batch.graph().features().clone());
        let mut h = self.embed.forward(&tape, &x)?.relu();
        for block in &self.blocks {
            h = block.forward(&tape, &edges, &h)?;
        }
        let sums = h.scatter_add_rows(batch.graph_ids(), batch.num_graphs())?;
        let inv: Vec<f32> = (0..batch.num_graphs())
            .map(|i| {
                let (s, e) = batch.node_range(i);
                1.0 / (e - s).max(1) as f32
            })
            .collect();
        let n_graphs = batch.num_graphs();
        let inv = tape.constant(gnnmark_tensor::Tensor::from_vec(&[n_graphs], inv)?);
        let logits = self.head.forward(&tape, &sums.scale_rows(&inv)?)?;
        let loss = losses::cross_entropy(&logits, &labels)?;
        tape.backward(&loss)?;
        Ok(loss.value().item()? as f64)
    }

    fn infer(&mut self, batch: crate::InferBatch) -> Result<f64> {
        // Tensor-level mirror of `probe`'s forward: full molecule set for
        // `Full`, the first molecule alone for `Single`.
        let graphs: Vec<Graph> = match batch {
            crate::InferBatch::Single => vec![self.molecules[0].clone()],
            crate::InferBatch::Full => self.molecules.clone(),
        };
        let batched = BatchedGraph::from_graphs(&graphs)?;
        let edges = EdgeList::from_graph(batched.graph())?;
        let labels = batched.graph_labels().expect("labels").clone();
        let mut h = self.embed.infer(batched.graph().features())?.relu();
        for block in &self.blocks {
            h = block.infer(&edges, &h)?;
        }
        let sums = h.scatter_add_rows(batched.graph_ids(), batched.num_graphs())?;
        let inv: Vec<f32> = (0..batched.num_graphs())
            .map(|i| {
                let (s, e) = batched.node_range(i);
                1.0 / (e - s).max(1) as f32
            })
            .collect();
        let n_graphs = batched.num_graphs();
        let inv = gnnmark_tensor::Tensor::from_vec(&[n_graphs], inv)?;
        let logits = self.head.infer(&sums.scale_rows(&inv)?)?;
        let loss = losses::cross_entropy_infer(&logits, &labels)?;
        Ok(loss.item()? as f64)
    }

    fn infer_items(&self, batch: crate::InferBatch) -> u64 {
        match batch {
            crate::InferBatch::Single => 1,
            crate::InferBatch::Full => self.molecules.len() as u64,
        }
    }

    fn run_epoch(&mut self, session: &mut ProfileSession) -> Result<f64> {
        let mut order: Vec<usize> = (0..self.molecules.len()).collect();
        order.shuffle(&mut self.rng);
        let mut epoch_loss = 0.0f64;
        let mut batches = 0usize;
        for chunk in order.chunks(self.batch_size) {
            let _step = gnnmark_telemetry::span!("step");
            let graphs: Vec<Graph> = chunk.iter().map(|&i| self.molecules[i].clone()).collect();
            let batch = BatchedGraph::from_graphs(&graphs)?;
            let edges = EdgeList::from_graph(batch.graph())?;
            let labels = batch.graph_labels().expect("molecules carry labels").clone();
            // Per-batch device copies: features + structure.
            session.upload(batch.graph().features());
            session.upload_int(&edges.src);
            session.upload_int(&edges.dst);
            session.upload_int(batch.graph_ids());

            self.params().zero_grad();
            session.begin_step();
            let tape = Tape::new();
            let loss = {
                let _fwd = gnnmark_telemetry::span!("forward");
                let x = tape.constant(batch.graph().features().clone());
                let mut h = self.embed.forward(&tape, &x)?.relu();
                for block in &self.blocks {
                    h = block.forward(&tape, &edges, &h)?;
                }
                // Mean-pool readout via scatter + per-graph rescale.
                let sums = h.scatter_add_rows(batch.graph_ids(), batch.num_graphs())?;
                let inv_counts: Vec<f32> = (0..batch.num_graphs())
                    .map(|i| {
                        let (s, e) = batch.node_range(i);
                        1.0 / (e - s).max(1) as f32
                    })
                    .collect();
                let n_graphs = batch.num_graphs();
                let inv =
                    tape.constant(gnnmark_tensor::Tensor::from_vec(&[n_graphs], inv_counts)?);
                let pooled = sums.scale_rows(&inv)?;
                let logits = self.head.forward(&tape, &pooled)?;
                losses::cross_entropy(&logits, &labels)?
            };
            {
                let _bwd = gnnmark_telemetry::span!("backward");
                tape.backward(&loss)?;
            }
            {
                let _opt = gnnmark_telemetry::span!("optimizer");
                self.opt.step(&self.params())?;
            }
            session.end_step();
            epoch_loss += loss.value().item()? as f64;
            batches += 1;
        }
        Ok(epoch_loss / batches.max(1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnmark_gpusim::DeviceSpec;
    use gnnmark_profiler::FigureCategory;

    #[test]
    fn dgcn_trains_and_is_elementwise_heavy() {
        let mut w = Dgcn::new(Scale::Test, 9).unwrap();
        let mut session = ProfileSession::new("dgcn", DeviceSpec::v100());
        let first = w.run_epoch(&mut session).unwrap();
        let mut last = first;
        for _ in 0..7 {
            last = w.run_epoch(&mut session).unwrap();
        }
        assert!(last < first, "loss {first} → {last}");
        let p = session.finish();
        // Element-wise work must be a major category for DeepGCN.
        assert!(
            p.time_share(FigureCategory::ElementWise) > 0.10,
            "elementwise share {}",
            p.time_share(FigureCategory::ElementWise)
        );
        assert!(p.time_share(FigureCategory::BatchNorm) > 0.0);
    }

    #[test]
    fn dgcn_depth_and_scaling() {
        let w = Dgcn::new(Scale::Test, 9).unwrap();
        assert_eq!(w.depth(), 3);
        assert_eq!(w.hidden(), 16);
        assert!(matches!(
            w.scaling_behavior(),
            Some(ScalingBehavior::DataParallel)
        ));
        assert_eq!(w.steps_per_epoch(), 2);
    }
}
