//! TLSTM: child-sum Tree-LSTM sentiment classification (Tai et al., 2015),
//! implemented with DGL-style batching: many trees merge into one batch and
//! evaluation proceeds level-by-level, so each tree level is a single set
//! of batched kernels. The node-state bookkeeping is gather/scatter heavy
//! and the arithmetic intensity is low — the paper measures only
//! ~74 GFLOPS for TLSTM and finds it gains nothing from multi-GPU DDP.

use gnnmark_autograd::{Adam, Optimizer, Param, ParamSet, Tape};
use gnnmark_gpusim::ScalingBehavior;
use gnnmark_graph::datasets::sst_like;
use gnnmark_graph::{Tree, TreeBatch};
use gnnmark_nn::{losses, Linear, Module, TreeLstmCell};
use gnnmark_profiler::ProfileSession;
use gnnmark_tensor::{IntTensor, Tensor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::{Result, Scale, Workload, WorkloadInfo};

/// The Tree-LSTM workload.
pub struct TreeLstm {
    trees: Vec<Tree>,
    embed: Param,
    cell: TreeLstmCell,
    head: Linear,
    opt: Adam,
    rng: StdRng,
    vocab: usize,
    hidden: usize,
    batch_size: usize,
}

impl TreeLstm {
    /// Builds TLSTM on SST-like sentiment trees.
    ///
    /// # Errors
    /// Propagates dataset/model construction errors.
    pub fn new(scale: Scale, seed: u64) -> Result<Self> {
        Self::new_with_mode(scale, seed, &crate::TrainMode::FullGraph)
    }

    /// Builds TLSTM in an explicit [`crate::TrainMode`]. Minibatch mode
    /// overrides the tree batch size; fanouts don't apply to trees and are
    /// ignored.
    ///
    /// # Errors
    /// Propagates dataset/model construction errors.
    pub fn new_with_mode(scale: Scale, seed: u64, mode: &crate::TrainMode) -> Result<Self> {
        let (n_trees, vocab, hidden, mut batch) = match scale {
            Scale::Test => (6, 64, 16, 3),
            Scale::Small => (48, 512, 60, 12),
            Scale::Paper => (160, 2048, 120, 24),
        };
        if let Some(cfg) = mode.minibatch() {
            batch = cfg.batch_size.clamp(1, n_trees);
        }
        let trees = sst_like(n_trees, vocab, seed)?;
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7157);
        // Extra row = padding embedding for internal (wordless) nodes.
        let embed = Param::new(
            "tlstm.embed",
            gnnmark_nn::init::small_normal(&[vocab + 1, hidden], 20.0, &mut rng),
        );
        let cell = TreeLstmCell::new("tlstm.cell", hidden, hidden, &mut rng)?;
        let head = Linear::new("tlstm.head", hidden, 5, &mut rng)?;
        Ok(TreeLstm {
            trees,
            embed,
            cell,
            head,
            opt: Adam::new(2e-3),
            rng,
            vocab,
            hidden,
            batch_size: batch,
        })
    }

    /// Vocabulary size (excluding the padding row).
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    fn train_batch(
        &mut self,
        session: &mut ProfileSession,
        batch: &TreeBatch,
    ) -> Result<f64> {
        let _step = gnnmark_telemetry::span!("step");
        let total = batch.total_nodes();
        let hdim = self.hidden;
        session.upload_int(batch.words());
        session.upload_int(batch.labels());

        self.params().zero_grad();
        session.begin_step();
        let tape = Tape::new();
        let fwd = gnnmark_telemetry::span!("forward");
        let table = tape.read(&self.embed);

        // Node embedding input: word id, or the padding row for internal
        // nodes (id -1 → vocab).
        let word_ids: Vec<i64> = batch
            .words()
            .as_slice()
            .iter()
            .map(|&w| if w < 0 { self.vocab as i64 } else { w })
            .collect();
        let word_ids = IntTensor::from_vec(&[total], word_ids)?;
        let x_all = table.embedding_lookup(&word_ids)?; // [total, h]

        // Running state tables with a zero row at index `total` so padded
        // child slots (-1) gather zeros.
        let mut h_all = tape.constant(Tensor::zeros(&[total + 1, hdim]));
        let mut c_all = tape.constant(Tensor::zeros(&[total + 1, hdim]));

        for level in batch.levels() {
            let n_level = level.nodes.numel();
            // DGL's frontier construction sorts each level's node and
            // child-id arrays before batching the cell kernels.
            let (_, _) = level.nodes.sort_with_indices()?;
            let (_, _) = level.child_ids.sort_with_indices()?;
            let x = x_all.gather_rows(&level.nodes)?;
            // Gather per-child states (pad → zero row).
            let mut child_h = Vec::with_capacity(level.max_children);
            let mut child_c = Vec::with_capacity(level.max_children);
            for k in 0..level.max_children {
                let ids: Vec<i64> = (0..n_level)
                    .map(|i| {
                        let v = level.child_ids.as_slice()[i * level.max_children + k];
                        if v < 0 {
                            total as i64
                        } else {
                            v
                        }
                    })
                    .collect();
                let ids = IntTensor::from_vec(&[n_level], ids)?;
                child_h.push(h_all.gather_rows(&ids)?);
                child_c.push(c_all.gather_rows(&ids)?);
            }
            let (h, c) = self.cell.step(&tape, &x, &child_h, &child_c)?;
            // Scatter level results back into the state tables.
            h_all = h_all.add(&h.scatter_add_rows(&level.nodes, total + 1)?)?;
            c_all = c_all.add(&c.scatter_add_rows(&level.nodes, total + 1)?)?;
        }

        // Classify every node's sentiment (SST trains on all subtrees).
        let all_states = h_all.slice_rows(0, total)?;
        let logits = self.head.forward(&tape, &all_states)?;
        let loss = losses::cross_entropy(&logits, batch.labels())?;
        drop(fwd);
        {
            let _bwd = gnnmark_telemetry::span!("backward");
            tape.backward(&loss)?;
        }
        {
            let _opt = gnnmark_telemetry::span!("optimizer");
            self.opt.step(&self.params())?;
        }
        session.end_step();
        Ok(loss.value().item()? as f64)
    }
}

impl Workload for TreeLstm {
    fn name(&self) -> String {
        "TLSTM".to_string()
    }

    fn info(&self) -> WorkloadInfo {
        crate::table_one()
            .into_iter()
            .find(|r| r.abbrev == "TLSTM")
            .expect("TLSTM row present")
    }

    fn params(&self) -> ParamSet {
        let mut set = ParamSet::new();
        set.register(self.embed.clone());
        set.extend(&self.cell.params());
        set.extend(&self.head.params());
        set
    }

    fn steps_per_epoch(&self) -> u64 {
        self.trees.len().div_ceil(self.batch_size) as u64
    }

    fn scaling_behavior(&self) -> Option<ScalingBehavior> {
        // CPU-side tree batching dominates; GPUs add little (paper: flat).
        Some(ScalingBehavior::HostBound { host_fraction: 0.70 })
    }

    fn quality(&mut self) -> Result<Option<(&'static str, f64)>> {
        // Node-level sentiment accuracy over the first few trees.
        let subset: Vec<Tree> = self.trees.iter().take(8).cloned().collect();
        let batch = TreeBatch::from_trees(&subset)?;
        let total = batch.total_nodes();
        let hdim = self.hidden;
        let tape = Tape::new();
        let table = tape.read(&self.embed);
        let word_ids: Vec<i64> = batch
            .words()
            .as_slice()
            .iter()
            .map(|&w| if w < 0 { self.vocab as i64 } else { w })
            .collect();
        let word_ids = IntTensor::from_vec(&[total], word_ids)?;
        let x_all = table.embedding_lookup(&word_ids)?;
        let mut h_all = tape.constant(Tensor::zeros(&[total + 1, hdim]));
        let mut c_all = tape.constant(Tensor::zeros(&[total + 1, hdim]));
        for level in batch.levels() {
            let n_level = level.nodes.numel();
            let x = x_all.gather_rows(&level.nodes)?;
            let mut child_h = Vec::new();
            let mut child_c = Vec::new();
            for k in 0..level.max_children {
                let ids: Vec<i64> = (0..n_level)
                    .map(|i| {
                        let v = level.child_ids.as_slice()[i * level.max_children + k];
                        if v < 0 { total as i64 } else { v }
                    })
                    .collect();
                let ids = IntTensor::from_vec(&[n_level], ids)?;
                child_h.push(h_all.gather_rows(&ids)?);
                child_c.push(c_all.gather_rows(&ids)?);
            }
            let (h, c) = self.cell.step(&tape, &x, &child_h, &child_c)?;
            h_all = h_all.add(&h.scatter_add_rows(&level.nodes, total + 1)?)?;
            c_all = c_all.add(&c.scatter_add_rows(&level.nodes, total + 1)?)?;
        }
        let logits = self.head.forward(&tape, &h_all.slice_rows(0, total)?)?;
        let acc = losses::accuracy(&logits.value(), batch.labels())?;
        Ok(Some(("node sentiment accuracy", acc)))
    }

    fn probe(&mut self) -> Result<f64> {
        // Quality-style level-by-level forward over the first trees in
        // dataset order, with a cross-entropy loss and backward.
        let subset: Vec<Tree> = self.trees.iter().take(self.batch_size).cloned().collect();
        let batch = TreeBatch::from_trees(&subset)?;
        let total = batch.total_nodes();
        let hdim = self.hidden;
        let tape = Tape::new();
        let table = tape.read(&self.embed);
        let word_ids: Vec<i64> = batch
            .words()
            .as_slice()
            .iter()
            .map(|&w| if w < 0 { self.vocab as i64 } else { w })
            .collect();
        let word_ids = IntTensor::from_vec(&[total], word_ids)?;
        let x_all = table.embedding_lookup(&word_ids)?;
        let mut h_all = tape.constant(Tensor::zeros(&[total + 1, hdim]));
        let mut c_all = tape.constant(Tensor::zeros(&[total + 1, hdim]));
        for level in batch.levels() {
            let n_level = level.nodes.numel();
            let x = x_all.gather_rows(&level.nodes)?;
            let mut child_h = Vec::new();
            let mut child_c = Vec::new();
            for k in 0..level.max_children {
                let ids: Vec<i64> = (0..n_level)
                    .map(|i| {
                        let v = level.child_ids.as_slice()[i * level.max_children + k];
                        if v < 0 { total as i64 } else { v }
                    })
                    .collect();
                let ids = IntTensor::from_vec(&[n_level], ids)?;
                child_h.push(h_all.gather_rows(&ids)?);
                child_c.push(c_all.gather_rows(&ids)?);
            }
            let (h, c) = self.cell.step(&tape, &x, &child_h, &child_c)?;
            h_all = h_all.add(&h.scatter_add_rows(&level.nodes, total + 1)?)?;
            c_all = c_all.add(&c.scatter_add_rows(&level.nodes, total + 1)?)?;
        }
        let logits = self.head.forward(&tape, &h_all.slice_rows(0, total)?)?;
        let loss = losses::cross_entropy(&logits, batch.labels())?;
        tape.backward(&loss)?;
        Ok(loss.value().item()? as f64)
    }

    fn infer(&mut self, batch: crate::InferBatch) -> Result<f64> {
        // Tensor-level mirror of `probe`'s forward: the first tree alone
        // for `Single`, the first `batch_size` trees for `Full`.
        let count = match batch {
            crate::InferBatch::Single => 1,
            crate::InferBatch::Full => self.batch_size,
        };
        let subset: Vec<Tree> = self.trees.iter().take(count).cloned().collect();
        let batch = TreeBatch::from_trees(&subset)?;
        let total = batch.total_nodes();
        let hdim = self.hidden;
        let table = self.embed.value().clone();
        let word_ids: Vec<i64> = batch
            .words()
            .as_slice()
            .iter()
            .map(|&w| if w < 0 { self.vocab as i64 } else { w })
            .collect();
        let word_ids = IntTensor::from_vec(&[total], word_ids)?;
        let x_all = table.embedding_lookup(&word_ids)?;
        let mut h_all = Tensor::zeros(&[total + 1, hdim]);
        let mut c_all = Tensor::zeros(&[total + 1, hdim]);
        for level in batch.levels() {
            let n_level = level.nodes.numel();
            let x = x_all.gather_rows(&level.nodes)?;
            let mut child_h = Vec::new();
            let mut child_c = Vec::new();
            for k in 0..level.max_children {
                let ids: Vec<i64> = (0..n_level)
                    .map(|i| {
                        let v = level.child_ids.as_slice()[i * level.max_children + k];
                        if v < 0 { total as i64 } else { v }
                    })
                    .collect();
                let ids = IntTensor::from_vec(&[n_level], ids)?;
                child_h.push(h_all.gather_rows(&ids)?);
                child_c.push(c_all.gather_rows(&ids)?);
            }
            let (h, c) = self.cell.step_infer(&x, &child_h, &child_c)?;
            h_all = h_all.add(&h.scatter_add_rows(&level.nodes, total + 1)?)?;
            c_all = c_all.add(&c.scatter_add_rows(&level.nodes, total + 1)?)?;
        }
        let logits = self.head.infer(&h_all.slice_rows(0, total)?)?;
        let loss = losses::cross_entropy_infer(&logits, batch.labels())?;
        Ok(loss.item()? as f64)
    }

    fn infer_items(&self, batch: crate::InferBatch) -> u64 {
        match batch {
            crate::InferBatch::Single => 1,
            crate::InferBatch::Full => self.batch_size.min(self.trees.len()) as u64,
        }
    }

    fn run_epoch(&mut self, session: &mut ProfileSession) -> Result<f64> {
        let mut order: Vec<usize> = (0..self.trees.len()).collect();
        order.shuffle(&mut self.rng);
        let mut epoch_loss = 0.0f64;
        let mut batches = 0usize;
        for chunk in order.chunks(self.batch_size) {
            let picked: Vec<Tree> = chunk.iter().map(|&i| self.trees[i].clone()).collect();
            let batch = TreeBatch::from_trees(&picked)?;
            epoch_loss += self.train_batch(session, &batch)?;
            batches += 1;
        }
        Ok(epoch_loss / batches.max(1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnmark_gpusim::DeviceSpec;
    use gnnmark_profiler::FigureCategory;

    #[test]
    fn tlstm_trains_and_is_gather_scatter_heavy() {
        let mut w = TreeLstm::new(Scale::Test, 17).unwrap();
        let mut session = ProfileSession::new("tlstm", DeviceSpec::v100());
        let first = w.run_epoch(&mut session).unwrap();
        let mut last = first;
        for _ in 0..6 {
            last = w.run_epoch(&mut session).unwrap();
        }
        assert!(last < first, "loss {first} → {last}");
        let p = session.finish();
        let irregular = p.time_share(FigureCategory::Gather)
            + p.time_share(FigureCategory::Scatter);
        assert!(irregular > 0.05, "gather+scatter share {irregular}");
    }

    #[test]
    fn tlstm_is_host_bound_for_scaling() {
        let w = TreeLstm::new(Scale::Test, 17).unwrap();
        assert!(matches!(
            w.scaling_behavior(),
            Some(ScalingBehavior::HostBound { .. })
        ));
        assert_eq!(w.name(), "TLSTM");
        assert_eq!(w.vocab(), 64);
        assert_eq!(w.steps_per_epoch(), 2);
    }
}
