//! STGCN: spatio-temporal graph convolutional network for traffic
//! forecasting (Yu et al., IJCAI 2018).
//!
//! Two ST-Conv blocks (temporal GLU → spatial GCN → temporal GLU) followed
//! by an output temporal convolution and a linear head, trained with MSE
//! on sliding windows of a METR-LA-like sensor signal. The 2-D
//! convolutions of the temporal stages dominate — ~60 % of STGCN's
//! execution time in the paper's Figure 2.

use std::rc::Rc;

use gnnmark_autograd::{Adam, Optimizer, ParamSet, Tape, Var};
use gnnmark_gpusim::ScalingBehavior;
use gnnmark_graph::datasets::metr_la_like;
use gnnmark_graph::SpatioTemporal;
use gnnmark_nn::{losses, Linear, Module, StConvBlock, TemporalConv};
use gnnmark_profiler::ProfileSession;
use gnnmark_tensor::{CsrMatrix, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Result, Scale, Workload, WorkloadInfo};

/// The STGCN workload.
pub struct Stgcn {
    data: SpatioTemporal,
    adj: Rc<CsrMatrix>,
    block1: StConvBlock,
    block2: StConvBlock,
    out_conv: TemporalConv,
    head: Linear,
    opt: Adam,
    rng: StdRng,
    history: usize,
    batch_size: usize,
    batches_per_epoch: usize,
}

impl Stgcn {
    /// Builds STGCN on a METR-LA-like dataset.
    ///
    /// # Errors
    /// Propagates dataset/model construction errors.
    pub fn new(scale: Scale, seed: u64) -> Result<Self> {
        Self::new_with_mode(scale, seed, &crate::TrainMode::FullGraph)
    }

    /// Builds STGCN in an explicit [`crate::TrainMode`]. Minibatch mode
    /// overrides the window batch size; fanouts don't apply to the dense
    /// sensor graph and are ignored.
    ///
    /// # Errors
    /// Propagates dataset/model construction errors.
    pub fn new_with_mode(scale: Scale, seed: u64, mode: &crate::TrainMode) -> Result<Self> {
        let (graph_scale, steps, c1, c2, mut batch, batches) = match scale {
            Scale::Test => (0.06, 48, 4, 4, 2, 2),
            Scale::Small => (0.25, 160, 32, 32, 4, 6),
            Scale::Paper => (1.0, 288, 64, 64, 8, 10),
        };
        if let Some(cfg) = mode.minibatch() {
            batch = cfg.batch_size.max(1);
        }
        let data = metr_la_like(graph_scale, steps, seed)?;
        let adj = Rc::new(data.graph().normalized_adjacency()?);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5709c);
        let history = 12usize;
        // Each ST block consumes 4 timesteps (two kt=3 convolutions); the
        // output conv consumes the remaining 4 exactly: 12 → 8 → 4 → 1.
        let block1 = StConvBlock::new("stgcn.b1", 1, c1, c1, 3, &mut rng)?;
        let block2 = StConvBlock::new("stgcn.b2", c1, c2, c2, 3, &mut rng)?;
        let out_conv = TemporalConv::new("stgcn.out", c2, c2, 4, &mut rng)?;
        let head = Linear::new("stgcn.head", c2, 1, &mut rng)?;
        Ok(Stgcn {
            data,
            adj,
            block1,
            block2,
            out_conv,
            head,
            opt: Adam::new(1e-3),
            rng,
            history,
            batch_size: batch,
            batches_per_epoch: batches,
        })
    }

    /// Nodes in the sensor graph.
    pub fn num_nodes(&self) -> usize {
        self.data.graph().num_nodes()
    }
}

impl Workload for Stgcn {
    fn name(&self) -> String {
        "STGCN".to_string()
    }

    fn info(&self) -> WorkloadInfo {
        crate::table_one()
            .into_iter()
            .find(|r| r.abbrev == "STGCN")
            .expect("STGCN row present")
    }

    fn params(&self) -> ParamSet {
        let mut set = self.block1.params();
        set.extend(&self.block2.params());
        set.extend(&self.out_conv.params());
        set.extend(&self.head.params());
        set
    }

    fn steps_per_epoch(&self) -> u64 {
        self.batches_per_epoch as u64
    }

    fn scaling_behavior(&self) -> Option<ScalingBehavior> {
        Some(ScalingBehavior::DataParallel)
    }

    fn quality(&mut self) -> Result<Option<(&'static str, f64)>> {
        // RMSE (in standardized speed units) over fixed evaluation windows.
        let n = self.num_nodes();
        let horizon = 1usize;
        let max_start = self.data.num_windows(self.history, horizon);
        let eval_windows: Vec<usize> = (0..4).map(|i| i * max_start / 4).collect();
        let b = eval_windows.len();
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for &start in &eval_windows {
            let (x, y) = self.data.window(start, self.history, horizon)?;
            xs.extend_from_slice(x.as_slice());
            ys.extend_from_slice(y.as_slice());
        }
        let x = Tensor::from_vec(&[b, 1, self.history, n], xs)?
            .add_scalar(-50.0)
            .mul_scalar(1.0 / 20.0);
        let y = Tensor::from_vec(&[b, n], ys)?
            .add_scalar(-50.0)
            .mul_scalar(1.0 / 20.0);
        let tape = Tape::new();
        let xv = tape.constant(x);
        let h = self.block1.forward(&tape, &self.adj, &xv)?;
        let h = self.block2.forward(&tape, &self.adj, &h)?;
        let h = self.out_conv.forward(&tape, &h)?;
        let c2 = self.out_conv.c_out();
        let h2 = reorder_bc1n_to_bn_c(&h, b, c2, n)?;
        let pred = self.head.forward(&tape, &h2)?.reshape(&[b, n])?;
        let mse = losses::mse(&pred, &y)?.value().item()? as f64;
        Ok(Some(("forecast RMSE (std units)", mse.sqrt())))
    }

    fn probe(&mut self) -> Result<f64> {
        // Same fixed evaluation windows as `quality`, but with an MSE loss
        // and a backward pass so parameter gradients populate.
        let n = self.num_nodes();
        let horizon = 1usize;
        let max_start = self.data.num_windows(self.history, horizon);
        let probe_windows: Vec<usize> = (0..2).map(|i| i * max_start / 2).collect();
        let b = probe_windows.len();
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for &start in &probe_windows {
            let (x, y) = self.data.window(start, self.history, horizon)?;
            xs.extend_from_slice(x.as_slice());
            ys.extend_from_slice(y.as_slice());
        }
        let x = Tensor::from_vec(&[b, 1, self.history, n], xs)?
            .add_scalar(-50.0)
            .mul_scalar(1.0 / 20.0);
        let y = Tensor::from_vec(&[b, n], ys)?
            .add_scalar(-50.0)
            .mul_scalar(1.0 / 20.0);
        let tape = Tape::new();
        let xv = tape.constant(x);
        let h = self.block1.forward(&tape, &self.adj, &xv)?;
        let h = self.block2.forward(&tape, &self.adj, &h)?;
        let h = self.out_conv.forward(&tape, &h)?;
        let c2 = self.out_conv.c_out();
        let h2 = reorder_bc1n_to_bn_c(&h, b, c2, n)?;
        let pred = self.head.forward(&tape, &h2)?.reshape(&[b, n])?;
        let loss = losses::mse(&pred, &y)?;
        tape.backward(&loss)?;
        Ok(loss.value().item()? as f64)
    }

    fn infer(&mut self, batch: crate::InferBatch) -> Result<f64> {
        // Same fixed windows as `probe` (`Full` = both probe windows,
        // `Single` = the first), mirrored through the tensor-level path.
        let n = self.num_nodes();
        let horizon = 1usize;
        let max_start = self.data.num_windows(self.history, horizon);
        let count = match batch {
            crate::InferBatch::Single => 1,
            crate::InferBatch::Full => 2,
        };
        let probe_windows: Vec<usize> = (0..count).map(|i| i * max_start / 2).collect();
        let b = probe_windows.len();
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for &start in &probe_windows {
            let (x, y) = self.data.window(start, self.history, horizon)?;
            xs.extend_from_slice(x.as_slice());
            ys.extend_from_slice(y.as_slice());
        }
        let x = Tensor::from_vec(&[b, 1, self.history, n], xs)?
            .add_scalar(-50.0)
            .mul_scalar(1.0 / 20.0);
        let y = Tensor::from_vec(&[b, n], ys)?
            .add_scalar(-50.0)
            .mul_scalar(1.0 / 20.0);
        let h = self.block1.infer(&self.adj, &x)?;
        let h = self.block2.infer(&self.adj, &h)?;
        let h = self.out_conv.infer(&h)?;
        let c2 = self.out_conv.c_out();
        let h2 = reorder_bc1n_to_bn_c_infer(&h, b, c2, n)?;
        let pred = self.head.infer(&h2)?.reshape(&[b, n])?;
        let loss = losses::mse_infer(&pred, &y)?;
        Ok(loss.item()? as f64)
    }

    fn infer_items(&self, batch: crate::InferBatch) -> u64 {
        match batch {
            crate::InferBatch::Single => 1,
            crate::InferBatch::Full => 2,
        }
    }

    fn run_epoch(&mut self, session: &mut ProfileSession) -> Result<f64> {
        let n = self.num_nodes();
        let horizon = 1usize;
        let max_start = self.data.num_windows(self.history, horizon);
        let mut epoch_loss = 0.0f64;
        for _ in 0..self.batches_per_epoch {
            let _step = gnnmark_telemetry::span!("step");
            // Assemble a batch of windows: [b, 1, history, n] plus targets.
            let mut xs = Vec::with_capacity(self.batch_size * self.history * n);
            let mut ys = Vec::with_capacity(self.batch_size * n);
            for _ in 0..self.batch_size {
                let start = self.rng.gen_range(0..max_start);
                let (x, y) = self.data.window(start, self.history, horizon)?;
                xs.extend_from_slice(x.as_slice());
                ys.extend_from_slice(y.as_slice());
            }
            // Standardize speeds so the regression is well-conditioned.
            let x_batch = Tensor::from_vec(&[self.batch_size, 1, self.history, n], xs)?
                .add_scalar(-50.0)
                .mul_scalar(1.0 / 20.0);
            let y_batch = Tensor::from_vec(&[self.batch_size, n], ys)?
                .add_scalar(-50.0)
                .mul_scalar(1.0 / 20.0);
            session.upload(&x_batch);
            session.upload(&y_batch);

            self.params().zero_grad();
            session.begin_step();
            let tape = Tape::new();
            let loss = {
                let _fwd = gnnmark_telemetry::span!("forward");
                let x = tape.constant(x_batch);
                let h = self.block1.forward(&tape, &self.adj, &x)?;
                let h = self.block2.forward(&tape, &self.adj, &h)?;
                let h = self.out_conv.forward(&tape, &h)?; // [b, c2, 1, n]
                // Head: per (batch, node) channel vector → predicted speed.
                let c2 = self.out_conv.c_out();
                let h2 = reorder_bc1n_to_bn_c(&h, self.batch_size, c2, n)?;
                let pred = self.head.forward(&tape, &h2)?; // [b·n, 1]
                let pred = pred.reshape(&[self.batch_size, n])?;
                losses::mse(&pred, &y_batch)?
            };
            {
                let _bwd = gnnmark_telemetry::span!("backward");
                tape.backward(&loss)?;
            }
            {
                let _opt = gnnmark_telemetry::span!("optimizer");
                self.opt.step(&self.params())?;
            }
            session.end_step();
            epoch_loss += loss.value().item()? as f64;
        }
        Ok(epoch_loss / self.batches_per_epoch as f64)
    }
}

/// Rearranges `[b, c, 1, n]` activations into `[b·n, c]` rows for the
/// linear head (an explicit permute-gather, like a real NCHW→NHWC kernel).
fn reorder_bc1n_to_bn_c(h: &Var, b: usize, c: usize, n: usize) -> Result<Var> {
    let mut idx = Vec::with_capacity(b * n * c);
    for bi in 0..b {
        for ni in 0..n {
            for ci in 0..c {
                idx.push(((bi * c + ci) * n + ni) as i64);
            }
        }
    }
    let len = idx.len();
    let idx = gnnmark_tensor::IntTensor::from_vec(&[len], idx)?;
    h.reshape(&[b * c * n, 1])?.gather_rows(&idx)?.reshape(&[b * n, c])
}

/// Tape-free mirror of [`reorder_bc1n_to_bn_c`].
fn reorder_bc1n_to_bn_c_infer(h: &Tensor, b: usize, c: usize, n: usize) -> Result<Tensor> {
    let mut idx = Vec::with_capacity(b * n * c);
    for bi in 0..b {
        for ni in 0..n {
            for ci in 0..c {
                idx.push(((bi * c + ci) * n + ni) as i64);
            }
        }
    }
    let len = idx.len();
    let idx = gnnmark_tensor::IntTensor::from_vec(&[len], idx)?;
    h.reshape(&[b * c * n, 1])?.gather_rows(&idx)?.reshape(&[b * n, c])
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnmark_gpusim::DeviceSpec;
    use gnnmark_profiler::FigureCategory;

    #[test]
    fn stgcn_trains_and_launches_convolutions() {
        let mut w = Stgcn::new(Scale::Test, 5).unwrap();
        let mut session = ProfileSession::new("stgcn", DeviceSpec::v100());
        let first = w.run_epoch(&mut session).unwrap();
        let mut last = first;
        for _ in 0..4 {
            last = w.run_epoch(&mut session).unwrap();
        }
        assert!(last < first, "loss {first} → {last}");
        let p = session.finish();
        // Conv2D kernels present in meaningful volume at every scale; the
        // ~60 % dominance check runs at Small scale in the integration
        // suite (tiny test tensors are launch-bound by design).
        assert!(p.time_share(FigureCategory::Conv2d) > 0.0);
        let conv_stats = &p.per_class[&FigureCategory::Conv2d];
        assert!(conv_stats.launches >= 30, "launches {}", conv_stats.launches);
    }

    #[test]
    fn stgcn_metadata() {
        let w = Stgcn::new(Scale::Test, 5).unwrap();
        assert_eq!(w.name(), "STGCN");
        assert!(matches!(
            w.scaling_behavior(),
            Some(ScalingBehavior::DataParallel)
        ));
        assert!(w.params().total_scalars() > 100);
        assert!(w.num_nodes() >= 8);
    }
}
