//! KGNN: k-dimensional GNNs for protein classification
//! (Morris et al., AAAI 2019).
//!
//! The low-order variant (`KGNNL`) runs a GCN on the original graphs plus
//! a GCN on the 2-set (k = 2) graph; the hierarchical higher-order variant
//! (`KGNNH`) adds a 3-set stage whose input pools the 2-set
//! representations — so cost grows combinatorially with k, the behavior
//! GNNMark includes the pair of variants to study.

use gnnmark_autograd::{Adam, Optimizer, ParamSet, Tape, Var};
use gnnmark_gpusim::ScalingBehavior;
use gnnmark_graph::datasets::proteins_like_sized;
use gnnmark_graph::kwl::{kwl_transform, KwlConnectivity};
use gnnmark_graph::{BatchedGraph, Graph};
use gnnmark_nn::gcn::NormAdj;
use gnnmark_nn::{losses, GcnConv, Linear, Module};
use gnnmark_profiler::ProfileSession;
use gnnmark_tensor::{IntTensor, Tensor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::{Result, Scale, Workload, WorkloadInfo};

/// Order of the k-GNN variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KgnnOrder {
    /// k = 2 (`KGNNL`).
    Low,
    /// k = 2 + 3 hierarchical (`KGNNH`).
    High,
}

/// One pre-transformed protein sample.
#[derive(Debug, Clone)]
struct Sample {
    base: Graph,
    two_set: Graph,
    three_set: Option<Graph>,
    label: i64,
}

/// The k-GNN workload.
pub struct Kgnn {
    order: KgnnOrder,
    samples: Vec<Sample>,
    conv1: GcnConv,
    conv2_set: GcnConv,
    conv3_set: Option<GcnConv>,
    head: Linear,
    opt: Adam,
    rng: StdRng,
    batch_size: usize,
    hidden: usize,
}

impl Kgnn {
    /// Builds a k-GNN of the given order.
    ///
    /// # Errors
    /// Propagates dataset/model/transform construction errors.
    pub fn new(order: KgnnOrder, scale: Scale, seed: u64) -> Result<Self> {
        Self::new_with_mode(order, scale, seed, &crate::TrainMode::FullGraph)
    }

    /// Builds a k-GNN in an explicit [`crate::TrainMode`]. Minibatch mode
    /// overrides the protein batch size; fanouts don't apply to batched
    /// small graphs and are ignored.
    ///
    /// # Errors
    /// Propagates dataset/model/transform construction errors.
    pub fn new_with_mode(
        order: KgnnOrder,
        scale: Scale,
        seed: u64,
        mode: &crate::TrainMode,
    ) -> Result<Self> {
        let (n_graphs, mut batch, hidden) = match scale {
            Scale::Test => (6, 3, 16),
            Scale::Small => (32, 8, 32),
            Scale::Paper => (96, 16, 64),
        };
        if let Some(cfg) = mode.minibatch() {
            batch = cfg.batch_size.clamp(1, n_graphs);
        }
        // Higher-order k-set graphs grow as C(n, 3): keep the raw graphs
        // smaller for KGNNH, exactly the trade-off real k-GNN code makes.
        let (min_n, max_n) = match order {
            KgnnOrder::Low => (8, 20),
            KgnnOrder::High => (7, 13),
        };
        let graphs = proteins_like_sized(n_graphs, min_n, max_n, seed)?;
        let samples = graphs
            .into_iter()
            .map(|g| {
                let two = kwl_transform(&g, 2, KwlConnectivity::Local)?;
                let three = match order {
                    KgnnOrder::Low => None,
                    KgnnOrder::High => {
                        Some(kwl_transform(&g, 3, KwlConnectivity::Local)?.graph().clone())
                    }
                };
                Ok(Sample {
                    label: g.graph_label().unwrap_or(0),
                    two_set: two.graph().clone(),
                    three_set: three,
                    base: g,
                })
            })
            .collect::<Result<Vec<_>>>()?;
        let mut rng = StdRng::seed_from_u64(seed ^ 0x169a);
        let conv1 = GcnConv::new("kgnn.base", 3, hidden, &mut rng)?;
        // 2-set features: 3 base dims + 1 isomorphism channel.
        let conv2_set = GcnConv::new("kgnn.two", 4, hidden, &mut rng)?;
        let conv3_set = match order {
            KgnnOrder::Low => None,
            KgnnOrder::High => Some(GcnConv::new("kgnn.three", 4, hidden, &mut rng)?),
        };
        let stages = match order {
            KgnnOrder::Low => 2,
            KgnnOrder::High => 3,
        };
        let head = Linear::new("kgnn.head", stages * hidden, 2, &mut rng)?;
        Ok(Kgnn {
            order,
            samples,
            conv1,
            conv2_set,
            conv3_set,
            head,
            opt: Adam::new(2e-3),
            rng,
            batch_size: batch,
            hidden,
        })
    }

    /// The k-GNN order of this instance.
    pub fn order(&self) -> KgnnOrder {
        self.order
    }

    /// Average number of 2-set vertices per sample (cost indicator).
    pub fn mean_two_set_size(&self) -> f64 {
        let total: usize = self.samples.iter().map(|s| s.two_set.num_nodes()).sum();
        total as f64 / self.samples.len().max(1) as f64
    }

    /// Runs one GCN stage over a batch of graphs and mean-pools per graph.
    fn stage(
        conv: &GcnConv,
        tape: &Tape,
        graphs: &[Graph],
        session: &mut ProfileSession,
    ) -> Result<Var> {
        let batch = BatchedGraph::from_graphs(graphs)?;
        let adj = NormAdj::new_symmetric(batch.graph().normalized_adjacency()?);
        session.upload(batch.graph().features());
        session.upload_csr(adj.matrix());
        let x = tape.constant(batch.graph().features().clone());
        let h = conv.forward(tape, &adj, &x)?.relu();
        let sums = h.scatter_add_rows(batch.graph_ids(), batch.num_graphs())?;
        let inv: Vec<f32> = (0..batch.num_graphs())
            .map(|i| {
                let (s, e) = batch.node_range(i);
                1.0 / (e - s).max(1) as f32
            })
            .collect();
        let n_graphs = batch.num_graphs();
        let inv = tape.constant(Tensor::from_vec(&[n_graphs], inv)?);
        sums.scale_rows(&inv)
    }

    /// Tape-free mirror of [`Kgnn::stage`] (no session: inference runs
    /// with weights and structure already resident).
    fn stage_infer(conv: &GcnConv, graphs: &[Graph]) -> Result<Tensor> {
        let batch = BatchedGraph::from_graphs(graphs)?;
        let adj = NormAdj::new_symmetric(batch.graph().normalized_adjacency()?);
        let h = conv.infer(&adj, batch.graph().features())?.relu();
        let sums = h.scatter_add_rows(batch.graph_ids(), batch.num_graphs())?;
        let inv: Vec<f32> = (0..batch.num_graphs())
            .map(|i| {
                let (s, e) = batch.node_range(i);
                1.0 / (e - s).max(1) as f32
            })
            .collect();
        let n_graphs = batch.num_graphs();
        let inv = Tensor::from_vec(&[n_graphs], inv)?;
        sums.scale_rows(&inv)
    }
}

impl Workload for Kgnn {
    fn name(&self) -> String {
        match self.order {
            KgnnOrder::Low => "KGNNL".to_string(),
            KgnnOrder::High => "KGNNH".to_string(),
        }
    }

    fn info(&self) -> WorkloadInfo {
        let abbrev = match self.order {
            KgnnOrder::Low => "KGNNL",
            KgnnOrder::High => "KGNNH",
        };
        crate::table_one()
            .into_iter()
            .find(|r| r.abbrev == abbrev)
            .expect("KGNN row present")
    }

    fn params(&self) -> ParamSet {
        let mut set = self.conv1.params();
        set.extend(&self.conv2_set.params());
        if let Some(c3) = &self.conv3_set {
            set.extend(&c3.params());
        }
        set.extend(&self.head.params());
        set
    }

    fn steps_per_epoch(&self) -> u64 {
        self.samples.len().div_ceil(self.batch_size) as u64
    }

    fn scaling_behavior(&self) -> Option<ScalingBehavior> {
        // Small graphs, cheap steps: DDP helps only modestly (host-side
        // k-set batching is serial).
        Some(ScalingBehavior::HostBound { host_fraction: 0.35 })
    }

    fn quality(&mut self) -> Result<Option<(&'static str, f64)>> {
        // Accuracy over the full training set (no optimizer step). The
        // stage helper needs a session; use a throwaway one.
        let mut session = ProfileSession::new(
            "kgnn-eval",
            gnnmark_gpusim::DeviceSpec::v100(),
        );
        let picked: Vec<Sample> = self.samples.clone();
        let labels: Vec<i64> = picked.iter().map(|s| s.label).collect();
        let n_labels = labels.len();
        let labels = IntTensor::from_vec(&[n_labels], labels)?;
        let tape = Tape::new();
        let base: Vec<Graph> = picked.iter().map(|s| s.base.clone()).collect();
        let two: Vec<Graph> = picked.iter().map(|s| s.two_set.clone()).collect();
        let mut pooled = vec![
            Self::stage(&self.conv1, &tape, &base, &mut session)?,
            Self::stage(&self.conv2_set, &tape, &two, &mut session)?,
        ];
        if let Some(conv3) = &self.conv3_set {
            let three: Vec<Graph> = picked
                .iter()
                .map(|s| s.three_set.clone().expect("high order has 3-sets"))
                .collect();
            pooled.push(Self::stage(conv3, &tape, &three, &mut session)?);
        }
        let cat = Var::concat_cols(&pooled)?;
        let logits = self.head.forward(&tape, &cat)?;
        let acc = losses::accuracy(&logits.value(), &labels)?;
        Ok(Some(("train accuracy", acc)))
    }

    fn probe(&mut self) -> Result<f64> {
        // First samples in dataset order with a cross-entropy loss and
        // backward. The stage helper wants a session for uploads; a
        // throwaway one keeps the run's profile untouched.
        let mut session =
            ProfileSession::new("kgnn-probe", gnnmark_gpusim::DeviceSpec::v100());
        let picked: Vec<Sample> = self.samples.iter().take(self.batch_size).cloned().collect();
        let labels: Vec<i64> = picked.iter().map(|s| s.label).collect();
        let n_labels = labels.len();
        let labels = IntTensor::from_vec(&[n_labels], labels)?;
        let tape = Tape::new();
        let base: Vec<Graph> = picked.iter().map(|s| s.base.clone()).collect();
        let two: Vec<Graph> = picked.iter().map(|s| s.two_set.clone()).collect();
        let mut pooled = vec![
            Self::stage(&self.conv1, &tape, &base, &mut session)?,
            Self::stage(&self.conv2_set, &tape, &two, &mut session)?,
        ];
        if let Some(conv3) = &self.conv3_set {
            let three: Vec<Graph> = picked
                .iter()
                .map(|s| s.three_set.clone().expect("high order has 3-sets"))
                .collect();
            pooled.push(Self::stage(conv3, &tape, &three, &mut session)?);
        }
        let cat = Var::concat_cols(&pooled)?;
        let logits = self.head.forward(&tape, &cat)?;
        let loss = losses::cross_entropy(&logits, &labels)?;
        tape.backward(&loss)?;
        Ok(loss.value().item()? as f64)
    }

    fn infer(&mut self, batch: crate::InferBatch) -> Result<f64> {
        let count = match batch {
            crate::InferBatch::Single => 1,
            crate::InferBatch::Full => self.batch_size,
        };
        let picked: Vec<Sample> = self.samples.iter().take(count).cloned().collect();
        let labels: Vec<i64> = picked.iter().map(|s| s.label).collect();
        let n_labels = labels.len();
        let labels = IntTensor::from_vec(&[n_labels], labels)?;
        let base: Vec<Graph> = picked.iter().map(|s| s.base.clone()).collect();
        let two: Vec<Graph> = picked.iter().map(|s| s.two_set.clone()).collect();
        let mut pooled = vec![
            Self::stage_infer(&self.conv1, &base)?,
            Self::stage_infer(&self.conv2_set, &two)?,
        ];
        if let Some(conv3) = &self.conv3_set {
            let three: Vec<Graph> = picked
                .iter()
                .map(|s| s.three_set.clone().expect("high order has 3-sets"))
                .collect();
            pooled.push(Self::stage_infer(conv3, &three)?);
        }
        let refs: Vec<&Tensor> = pooled.iter().collect();
        let cat = Tensor::concat_cols(&refs)?;
        let logits = self.head.infer(&cat)?;
        let loss = losses::cross_entropy_infer(&logits, &labels)?;
        Ok(loss.item()? as f64)
    }

    fn infer_items(&self, batch: crate::InferBatch) -> u64 {
        match batch {
            crate::InferBatch::Single => 1,
            crate::InferBatch::Full => self.batch_size as u64,
        }
    }

    fn run_epoch(&mut self, session: &mut ProfileSession) -> Result<f64> {
        let mut order: Vec<usize> = (0..self.samples.len()).collect();
        order.shuffle(&mut self.rng);
        let mut epoch_loss = 0.0f64;
        let mut batches = 0usize;
        for chunk in order.chunks(self.batch_size) {
            let _step = gnnmark_telemetry::span!("step");
            let picked: Vec<Sample> =
                chunk.iter().map(|&i| self.samples[i].clone()).collect();
            let labels: Vec<i64> = picked.iter().map(|s| s.label).collect();
            let n_labels = labels.len();
            let labels = IntTensor::from_vec(&[n_labels], labels)?;

            self.params().zero_grad();
            session.begin_step();
            let tape = Tape::new();
            let loss = {
                let _fwd = gnnmark_telemetry::span!("forward");
                let base_graphs: Vec<Graph> = picked.iter().map(|s| s.base.clone()).collect();
                let two_graphs: Vec<Graph> = picked.iter().map(|s| s.two_set.clone()).collect();
                let mut pooled = vec![
                    Self::stage(&self.conv1, &tape, &base_graphs, session)?,
                    Self::stage(&self.conv2_set, &tape, &two_graphs, session)?,
                ];
                if let Some(conv3) = &self.conv3_set {
                    let three_graphs: Vec<Graph> = picked
                        .iter()
                        .map(|s| s.three_set.clone().expect("high order has 3-sets"))
                        .collect();
                    pooled.push(Self::stage(conv3, &tape, &three_graphs, session)?);
                }
                let cat = Var::concat_cols(&pooled)?;
                let logits = self.head.forward(&tape, &cat)?;
                losses::cross_entropy(&logits, &labels)?
            };
            {
                let _bwd = gnnmark_telemetry::span!("backward");
                tape.backward(&loss)?;
            }
            {
                let _opt = gnnmark_telemetry::span!("optimizer");
                self.opt.step(&self.params())?;
            }
            session.end_step();
            epoch_loss += loss.value().item()? as f64;
            batches += 1;
        }
        let _ = self.hidden;
        Ok(epoch_loss / batches.max(1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnmark_gpusim::DeviceSpec;

    #[test]
    fn kgnn_low_trains() {
        let mut w = Kgnn::new(KgnnOrder::Low, Scale::Test, 13).unwrap();
        let mut session = ProfileSession::new("kgnnl", DeviceSpec::v100());
        let first = w.run_epoch(&mut session).unwrap();
        let mut last = first;
        for _ in 0..6 {
            last = w.run_epoch(&mut session).unwrap();
        }
        assert!(last < first, "loss {first} → {last}");
        assert_eq!(w.name(), "KGNNL");
    }

    #[test]
    fn kgnn_high_does_more_work_per_graph() {
        let low = Kgnn::new(KgnnOrder::Low, Scale::Test, 13).unwrap();
        let high = Kgnn::new(KgnnOrder::High, Scale::Test, 13).unwrap();
        assert_eq!(high.name(), "KGNNH");
        assert!(high.conv3_set.is_some());
        assert!(low.conv3_set.is_none());
        // The high-order variant has an extra stage → more parameters.
        assert!(high.params().total_scalars() > low.params().total_scalars());
        assert_eq!(high.order(), KgnnOrder::High);
        assert!(low.mean_two_set_size() > 0.0);
    }
}
