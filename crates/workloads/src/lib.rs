//! # gnnmark-workloads
//!
//! The eight GNN training workloads of the GNNMark suite (Table I of the
//! paper), built end-to-end on the instrumented tensor/autograd/graph
//! stack:
//!
//! | Abbrev | Model | Graph type | Task |
//! |---|---|---|---|
//! | `PSAGE` | PinSAGE | heterogeneous (bipartite) | recommendation (MVL & NWP datasets) |
//! | `STGCN` | Spatio-Temporal GCN | dynamic / spatio-temporal | traffic forecasting |
//! | `DGCN`  | DeepGCN (GENConv residual blocks) | batched molecules | graph property prediction |
//! | `GW`    | GraphWriter | knowledge graph | graph-to-text generation |
//! | `KGNNL` | k-GNN (k = 2) | batched proteins | graph classification |
//! | `KGNNH` | hierarchical k-GNN (k = 2 + 3) | batched proteins | graph classification |
//! | `ARGA`  | Adversarially Regularized Graph Autoencoder | homogeneous citation | node clustering / embedding |
//! | `TLSTM` | child-sum Tree-LSTM | batched trees | sentiment classification |
//!
//! Each workload implements [`Workload`]: it owns its dataset, model and
//! optimizer, and `run_epoch` drives real training through a
//! [`ProfileSession`] so every kernel and transfer is captured.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arga;
pub mod dgcn;
pub mod gw;
pub mod kgnn;
pub mod psage;
pub mod stgcn;
pub mod tlstm;

use gnnmark_autograd::ParamSet;
use gnnmark_gpusim::ScalingBehavior;
use gnnmark_profiler::ProfileSession;

/// Result alias re-used from the tensor crate.
pub type Result<T> = gnnmark_tensor::Result<T>;

/// Problem size of a workload instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny — for unit tests (sub-second epochs in debug builds).
    Test,
    /// Default figure-generation size (seconds per epoch in release).
    Small,
    /// Closest to the paper's dataset scales this CPU substrate sustains.
    Paper,
}

impl Scale {
    /// Lower-case label used in CLI flags, cache keys and campaign specs.
    pub fn label(self) -> &'static str {
        match self {
            Scale::Test => "test",
            Scale::Small => "small",
            Scale::Paper => "paper",
        }
    }

    /// Parses a [`Scale::label`] string (case-insensitive; `"tiny"` is an
    /// accepted alias for `test`).
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "test" | "tiny" => Some(Scale::Test),
            "small" => Some(Scale::Small),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }
}

/// Mini-batch sampling parameters: one fanout per GNN layer (input side
/// first, `0` = unlimited) and the seed-node batch size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinibatchConfig {
    /// Seed nodes (or items) per batch.
    pub batch_size: usize,
    /// Neighbors sampled per node per layer; `0` keeps every neighbor.
    pub fanouts: Vec<usize>,
}

impl Default for MinibatchConfig {
    fn default() -> Self {
        MinibatchConfig {
            batch_size: 32,
            fanouts: vec![10, 5],
        }
    }
}

/// Training execution mode: full-graph (the paper's setting) or
/// neighbor-sampled mini-batches (the scenario axis the paper left out).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum TrainMode {
    /// Every step sees the whole graph (all workloads' historic behavior).
    #[default]
    FullGraph,
    /// Layer-wise fanout neighbor sampling over seed-node minibatches.
    Minibatch(MinibatchConfig),
}

impl TrainMode {
    /// Short mode label for CLI flags and figures.
    pub fn label(&self) -> &'static str {
        match self {
            TrainMode::FullGraph => "fullgraph",
            TrainMode::Minibatch(_) => "minibatch",
        }
    }

    /// Canonical key naming the mode *and* its parameters — used in cache
    /// keys, checkpoint fingerprints and replay metadata (e.g.
    /// `"minibatch-b32-f10x5"`).
    pub fn key(&self) -> String {
        match self {
            TrainMode::FullGraph => "fullgraph".to_string(),
            TrainMode::Minibatch(cfg) => {
                let fans: Vec<String> = cfg.fanouts.iter().map(|f| f.to_string()).collect();
                format!("minibatch-b{}-f{}", cfg.batch_size, fans.join("x"))
            }
        }
    }

    /// Parses a [`TrainMode::key`] string back into a mode.
    pub fn parse_key(s: &str) -> Option<TrainMode> {
        if s == "fullgraph" {
            return Some(TrainMode::FullGraph);
        }
        let rest = s.strip_prefix("minibatch-b")?;
        let (batch, fans) = rest.split_once("-f")?;
        let batch_size: usize = batch.parse().ok()?;
        let fanouts: Vec<usize> = fans
            .split('x')
            .map(|f| f.parse().ok())
            .collect::<Option<Vec<usize>>>()?;
        if batch_size == 0 || fanouts.is_empty() {
            return None;
        }
        Some(TrainMode::Minibatch(MinibatchConfig { batch_size, fanouts }))
    }

    /// The minibatch parameters, if this is minibatch mode.
    pub fn minibatch(&self) -> Option<&MinibatchConfig> {
        match self {
            TrainMode::FullGraph => None,
            TrainMode::Minibatch(cfg) => Some(cfg),
        }
    }
}

/// Static description of a workload (one row of Table I).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadInfo {
    /// Paper abbreviation (e.g. `"PSAGE"`).
    pub abbrev: &'static str,
    /// Model name.
    pub model: &'static str,
    /// Framework the paper's implementation uses (`DGL` or `PyG`).
    pub framework: &'static str,
    /// Application domain.
    pub domain: &'static str,
    /// Dataset (synthetic equivalent in this reproduction).
    pub dataset: &'static str,
    /// Graph family (homogeneous / heterogeneous / dynamic / trees).
    pub graph_type: &'static str,
}

/// A trainable, profileable GNNMark workload.
pub trait Workload {
    /// Display name including the dataset (e.g. `"PSAGE-MVL"`).
    fn name(&self) -> String;

    /// Table I row for this workload.
    fn info(&self) -> WorkloadInfo;

    /// All trainable parameters (the DDP gradient payload).
    fn params(&self) -> ParamSet;

    /// Optimizer steps per epoch (each pays one DDP all-reduce).
    fn steps_per_epoch(&self) -> u64;

    /// How the workload's structure interacts with multi-GPU DDP
    /// (Figure 9); `None` means the workload is excluded, as ARGA is.
    fn scaling_behavior(&self) -> Option<ScalingBehavior>;

    /// Runs one training epoch through the session (uploads + kernels are
    /// captured) and returns the mean training loss of the epoch.
    ///
    /// # Errors
    /// Propagates tensor-engine errors (these indicate workload bugs).
    fn run_epoch(&mut self, session: &mut ProfileSession) -> Result<f64>;

    /// Evaluates a task-quality metric on held-aside/training data
    /// (accuracy, RMSE, score margin, …) without touching the optimizer.
    /// Returns `(metric name, value)`; `None` when the workload defines no
    /// quick metric.
    ///
    /// # Errors
    /// Propagates tensor-engine errors.
    fn quality(&mut self) -> Result<Option<(&'static str, f64)>> {
        Ok(None)
    }

    /// Runs one deterministic forward + backward pass over a fixed probe
    /// batch at the current parameters, accumulating gradients into
    /// [`Workload::params`] without stepping the optimizer or advancing
    /// any RNG. Repeated calls at the same parameter values must produce
    /// identical losses and gradients — the finite-difference gradient
    /// checker in `gnnmark-check` relies on this to compare analytic
    /// gradients against numerically perturbed re-evaluations. Returns
    /// the probe loss.
    ///
    /// # Errors
    /// Propagates tensor-engine errors.
    fn probe(&mut self) -> Result<f64>;

    /// Runs one forward-only inference pass over the same fixed batch as
    /// [`Workload::probe`] (for [`InferBatch::Full`]) or a single item
    /// ([`InferBatch::Single`]), built entirely from tensor-level ops: no
    /// autograd tape node is allocated and no RNG advances. Callers run
    /// this under a [`gnnmark_autograd::NoGradGuard`] so any stray tape
    /// activity is a hard error. For `InferBatch::Full` the returned loss
    /// must bit-equal the forward loss of [`Workload::probe`] at fp32 —
    /// the parity layer in `gnnmark-check` relies on this.
    ///
    /// # Errors
    /// Propagates tensor-engine errors.
    fn infer(&mut self, batch: InferBatch) -> Result<f64>;

    /// Number of items (seeds, molecules, windows, documents, trees…)
    /// scored by one [`Workload::infer`] call — the denominator for
    /// batched-throughput metrics. `Single` is always `1`.
    fn infer_items(&self, batch: InferBatch) -> u64;
}

/// Batch shape of one forward-only inference call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InferBatch {
    /// One item — the serving batch-1 latency case. Workloads whose
    /// forward is inherently whole-graph (ARGA in full-graph mode) score
    /// the full graph here too; their `infer_items` still reports `1`
    /// request.
    Single,
    /// The workload's full probe batch — the batched-throughput case.
    Full,
}

impl InferBatch {
    /// Lower-case label used in metrics JSON and figures.
    pub fn label(self) -> &'static str {
        match self {
            InferBatch::Single => "single",
            InferBatch::Full => "full",
        }
    }
}

/// Identifier of every workload instance used in the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// PinSAGE on the MovieLens-like dataset.
    PsageMvl,
    /// PinSAGE on the Nowplaying-like dataset (10× wider item features).
    PsageNwp,
    /// Spatio-temporal GCN on traffic data.
    Stgcn,
    /// DeepGCN on molecule batches.
    Dgcn,
    /// GraphWriter on knowledge graphs.
    Gw,
    /// k-GNN, low order (k = 2).
    KgnnL,
    /// k-GNN, hierarchical higher order (k = 2 + 3).
    KgnnH,
    /// ARGA on the Cora-like citation graph.
    ArgaCora,
    /// Tree-LSTM on sentiment trees.
    Tlstm,
}

impl WorkloadKind {
    /// The workload set the paper's figures iterate over.
    pub const ALL: [WorkloadKind; 9] = [
        WorkloadKind::PsageMvl,
        WorkloadKind::PsageNwp,
        WorkloadKind::Stgcn,
        WorkloadKind::Dgcn,
        WorkloadKind::Gw,
        WorkloadKind::KgnnL,
        WorkloadKind::KgnnH,
        WorkloadKind::ArgaCora,
        WorkloadKind::Tlstm,
    ];

    /// Display name used in figures.
    pub fn label(self) -> &'static str {
        match self {
            WorkloadKind::PsageMvl => "PSAGE-MVL",
            WorkloadKind::PsageNwp => "PSAGE-NWP",
            WorkloadKind::Stgcn => "STGCN",
            WorkloadKind::Dgcn => "DGCN",
            WorkloadKind::Gw => "GW",
            WorkloadKind::KgnnL => "KGNNL",
            WorkloadKind::KgnnH => "KGNNH",
            WorkloadKind::ArgaCora => "ARGA",
            WorkloadKind::Tlstm => "TLSTM",
        }
    }

    /// Parses a [`WorkloadKind::label`] string (case-insensitive).
    pub fn parse(s: &str) -> Option<WorkloadKind> {
        WorkloadKind::ALL
            .iter()
            .copied()
            .find(|k| k.label().eq_ignore_ascii_case(s))
    }

    /// Builds the workload at a scale with a deterministic seed, in
    /// full-graph mode (the historic default).
    ///
    /// # Errors
    /// Propagates dataset/model construction errors.
    pub fn build(self, scale: Scale, seed: u64) -> Result<Box<dyn Workload>> {
        self.build_mode(scale, seed, &TrainMode::FullGraph)
    }

    /// Builds the workload in an explicit [`TrainMode`].
    ///
    /// In minibatch mode, graph workloads (PSAGE, ARGA) sample their
    /// neighborhoods through the layer-wise fanout engine; the batched
    /// workloads (STGCN, DGCN, GW, KGNN, TLSTM) honor the configured
    /// batch size over their item sets (fanouts do not apply to batched
    /// small graphs/trees and are ignored there).
    ///
    /// # Errors
    /// Propagates dataset/model construction errors.
    pub fn build_mode(self, scale: Scale, seed: u64, mode: &TrainMode) -> Result<Box<dyn Workload>> {
        Ok(match self {
            WorkloadKind::PsageMvl => Box::new(psage::Psage::new_with_mode(
                psage::PsageDataset::MovieLens,
                scale,
                seed,
                mode,
            )?),
            WorkloadKind::PsageNwp => Box::new(psage::Psage::new_with_mode(
                psage::PsageDataset::Nowplaying,
                scale,
                seed,
                mode,
            )?),
            WorkloadKind::Stgcn => Box::new(stgcn::Stgcn::new_with_mode(scale, seed, mode)?),
            WorkloadKind::Dgcn => Box::new(dgcn::Dgcn::new_with_mode(scale, seed, mode)?),
            WorkloadKind::Gw => Box::new(gw::GraphWriter::new_with_mode(scale, seed, mode)?),
            WorkloadKind::KgnnL => {
                Box::new(kgnn::Kgnn::new_with_mode(kgnn::KgnnOrder::Low, scale, seed, mode)?)
            }
            WorkloadKind::KgnnH => {
                Box::new(kgnn::Kgnn::new_with_mode(kgnn::KgnnOrder::High, scale, seed, mode)?)
            }
            WorkloadKind::ArgaCora => Box::new(arga::Arga::new_with_mode(
                gnnmark_graph::datasets::CitationKind::Cora,
                scale,
                seed,
                mode,
            )?),
            WorkloadKind::Tlstm => Box::new(tlstm::TreeLstm::new_with_mode(scale, seed, mode)?),
        })
    }
}

/// The full Table I of the paper (one row per workload).
pub fn table_one() -> Vec<WorkloadInfo> {
    vec![
        WorkloadInfo {
            abbrev: "PSAGE",
            model: "PinSAGE",
            framework: "DGL",
            domain: "Recommendation systems",
            dataset: "MovieLens-like (MVL), Nowplaying-like (NWP)",
            graph_type: "Heterogeneous (bipartite user-item)",
        },
        WorkloadInfo {
            abbrev: "STGCN",
            model: "Spatio-Temporal GCN",
            framework: "PyG",
            domain: "Traffic forecasting",
            dataset: "METR-LA-like sensor network",
            graph_type: "Dynamic / spatio-temporal",
        },
        WorkloadInfo {
            abbrev: "DGCN",
            model: "DeepGCN (GENConv + residual)",
            framework: "PyG",
            domain: "Molecular property prediction",
            dataset: "ogbg-molhiv-like molecules",
            graph_type: "Homogeneous (batched small graphs)",
        },
        WorkloadInfo {
            abbrev: "GW",
            model: "GraphWriter (graph transformer)",
            framework: "PyG",
            domain: "Knowledge-graph-to-text generation",
            dataset: "AGENDA-like documents",
            graph_type: "Heterogeneous knowledge graph",
        },
        WorkloadInfo {
            abbrev: "KGNNL",
            model: "k-GNN (k = 2)",
            framework: "PyG",
            domain: "Protein classification",
            dataset: "PROTEINS-like",
            graph_type: "Homogeneous (batched small graphs)",
        },
        WorkloadInfo {
            abbrev: "KGNNH",
            model: "Hierarchical k-GNN (k = 2 + 3)",
            framework: "PyG",
            domain: "Protein classification",
            dataset: "PROTEINS-like",
            graph_type: "Homogeneous (batched small graphs)",
        },
        WorkloadInfo {
            abbrev: "ARGA",
            model: "Adversarially Regularized Graph Autoencoder",
            framework: "PyG",
            domain: "Node clustering / graph embedding",
            dataset: "Cora/CiteSeer/PubMed-like citation graphs",
            graph_type: "Homogeneous",
        },
        WorkloadInfo {
            abbrev: "TLSTM",
            model: "Child-sum Tree-LSTM",
            framework: "DGL",
            domain: "Sentiment classification (NLP)",
            dataset: "SST-like sentiment trees",
            graph_type: "Trees (batched)",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_has_eight_models() {
        let t = table_one();
        assert_eq!(t.len(), 8);
        let abbrevs: Vec<_> = t.iter().map(|r| r.abbrev).collect();
        assert!(abbrevs.contains(&"PSAGE"));
        assert!(abbrevs.contains(&"TLSTM"));
        // Both frameworks represented, as in the paper.
        assert!(t.iter().any(|r| r.framework == "DGL"));
        assert!(t.iter().any(|r| r.framework == "PyG"));
    }

    #[test]
    fn train_mode_key_roundtrips() {
        let full = TrainMode::FullGraph;
        assert_eq!(full.key(), "fullgraph");
        assert_eq!(TrainMode::parse_key("fullgraph"), Some(TrainMode::FullGraph));
        let mb = TrainMode::Minibatch(MinibatchConfig {
            batch_size: 48,
            fanouts: vec![10, 5, 0],
        });
        assert_eq!(mb.key(), "minibatch-b48-f10x5x0");
        assert_eq!(TrainMode::parse_key(&mb.key()), Some(mb.clone()));
        assert_eq!(
            TrainMode::parse_key(&TrainMode::Minibatch(MinibatchConfig::default()).key()),
            Some(TrainMode::Minibatch(MinibatchConfig::default()))
        );
        assert_eq!(TrainMode::parse_key("minibatch-b0-f5"), None);
        assert_eq!(TrainMode::parse_key("minibatch-b8-f"), None);
        assert_eq!(TrainMode::parse_key("warp"), None);
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<_> = WorkloadKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), WorkloadKind::ALL.len());
    }
}
