//! Crash-recovery drills against the real `gnnmark serve` binary.
//!
//! These tests SIGKILL a daemon mid-campaign and assert the durability
//! contract: a restarted daemon (or a peer sharing the `--store`
//! directory) finishes the interrupted job without retraining cached
//! workloads, exactly once, byte-identical to an uninterrupted run.

#![cfg(unix)]

use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use std::io::{Read, Write};

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gnnmark_crash_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn port(offset: u32) -> String {
    format!("127.0.0.1:{}", 40000 + std::process::id() % 10000 + offset)
}

fn gnnmark() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gnnmark"))
}

fn spawn_daemon(addr: &str, store: &Path, cache: &Path, worker_id: &str) -> Command {
    let mut cmd = gnnmark();
    cmd.args([
        "serve",
        "--addr",
        addr,
        "--store",
        &store.display().to_string(),
        "--cache",
        &cache.display().to_string(),
        "--out",
        &store.join("out").display().to_string(),
        "--worker-id",
        worker_id,
        "--lease-ttl",
        "2",
    ])
    .stdout(Stdio::null())
    .stderr(Stdio::null());
    cmd
}

fn http(addr: &str, request: &str) -> Option<(u16, String)> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .ok()?;
    stream.write_all(request.as_bytes()).ok()?;
    let mut buf = String::new();
    stream.read_to_string(&mut buf).ok()?;
    let status: u16 = buf.split_whitespace().nth(1)?.parse().ok()?;
    let body = buf
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Some((status, body))
}

fn get(addr: &str, path: &str) -> Option<(u16, String)> {
    http(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"),
    )
}

fn post(addr: &str, path: &str, body: &str) -> Option<(u16, String)> {
    http(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\
             Connection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn wait_healthy(addr: &str, child: &mut Child, secs: u64) {
    let deadline = Instant::now() + Duration::from_secs(secs);
    loop {
        if let Some((200, _)) = get(addr, "/healthz") {
            return;
        }
        if let Ok(Some(status)) = child.try_wait() {
            panic!("daemon on {addr} exited early: {status}");
        }
        assert!(Instant::now() < deadline, "daemon on {addr} never healthy");
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Reads a counter out of the Prometheus exposition; 0 when absent.
fn metric(addr: &str, name: &str) -> u64 {
    let Some((200, body)) = get(addr, "/metrics") else {
        return 0;
    };
    body.lines()
        .find(|l| l.starts_with(name) && !l.starts_with('#'))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse::<f64>().ok())
        .map_or(0, |v| v as u64)
}

fn collect_files(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).unwrap() {
        let p = entry.unwrap().path();
        if p.is_dir() {
            collect_files(&p, out);
        } else {
            out.push(p);
        }
    }
}

/// Relative path → bytes for every file under `root`.
fn snapshot(root: &Path) -> Vec<(PathBuf, Vec<u8>)> {
    let mut files = Vec::new();
    collect_files(root, &mut files);
    files.sort();
    files
        .into_iter()
        .map(|p| {
            let rel = p.strip_prefix(root).unwrap().to_path_buf();
            (rel, std::fs::read(&p).unwrap())
        })
        .collect()
}

const SPEC: &str = r#"{"name":"crashdrill","scale":"test","seed":7,"epochs":1,
    "workloads":["TLSTM","ARGA"],
    "configs":[{"name":"v100","device":"v100"},{"name":"a100","device":"a100"}]}"#;

/// SIGKILL a daemon mid-campaign, restart it on the same store, and
/// assert the job finishes with no retraining of already-captured
/// workloads and output byte-identical to an uninterrupted control run.
#[test]
fn killed_daemon_recovers_without_retraining() {
    let dir = tmp("recover");
    std::fs::create_dir_all(&dir).unwrap();

    // Control: the same campaign run uninterrupted, on its own cache.
    let spec_path = dir.join("spec.json");
    std::fs::write(&spec_path, SPEC).unwrap();
    let control = gnnmark()
        .args([
            "sweep",
            &spec_path.display().to_string(),
            "--cache",
            &dir.join("control-cache").display().to_string(),
            "--out",
            &dir.join("control").display().to_string(),
        ])
        .output()
        .expect("control sweep runs");
    assert!(
        control.status.success(),
        "control sweep failed: {}",
        String::from_utf8_lossy(&control.stderr)
    );
    let reference = snapshot(&dir.join("control").join("crashdrill"));
    assert!(!reference.is_empty(), "control produced no files");

    let addr = port(0);
    let store = dir.join("store");
    let cache = dir.join("cache");

    // Daemon 1 runs with an injected 8 s stall on the ARGA capture: a wide,
    // deterministic window in which TLSTM is already trained and cached but
    // the campaign is not finished.
    let mut d1 = spawn_daemon(&addr, &store, &cache, "crash-w1")
        .env("GNNMARK_FAULT", "stall:ARGA@8000ms")
        .spawn()
        .expect("daemon 1 spawns");
    wait_healthy(&addr, &mut d1, 30);

    let (st, body) = post(&addr, "/campaigns", SPEC).expect("submit reaches daemon");
    assert_eq!(st, 202, "{body}");

    // Kill as soon as the first workload has trained — ARGA is still inside
    // its stall, so its stream is not yet cached.
    let deadline = Instant::now() + Duration::from_secs(60);
    while metric(&addr, "gnnmark_serve_trainings_total") < 1 {
        assert!(
            Instant::now() < deadline,
            "daemon 1 never started training"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
    d1.kill().expect("SIGKILL daemon 1");
    let _ = d1.wait();

    // Daemon 2: same store and cache, no fault plan. The lease (2 s TTL)
    // expires, the job re-queues, and the cached TLSTM stream is reused.
    let mut d2 = spawn_daemon(&addr, &store, &cache, "crash-w2")
        .spawn()
        .expect("daemon 2 spawns");
    wait_healthy(&addr, &mut d2, 30);

    let deadline = Instant::now() + Duration::from_secs(180);
    loop {
        let (st, body) = get(&addr, "/jobs/0").expect("status poll");
        assert_eq!(st, 200, "{body}");
        if body.contains("\"state\":\"done\"") {
            assert!(
                body.contains("\"requeues\":1") || body.contains("\"requeues\":2"),
                "recovered job must record its requeue: {body}"
            );
            break;
        }
        assert!(!body.contains("\"state\":\"failed\""), "job failed: {body}");
        assert!(Instant::now() < deadline, "job never recovered: {body}");
        std::thread::sleep(Duration::from_millis(100));
    }

    // Daemon 2 trained at most the workload that was mid-capture when the
    // kill landed; the other came from daemon 1's cache entry.
    assert!(
        metric(&addr, "gnnmark_serve_trainings_total") <= 1,
        "daemon 2 retrained a cached workload"
    );
    assert!(
        metric(&addr, "gnnmark_serve_cache_hits_total") >= 1,
        "daemon 2 never hit the shared cache"
    );

    // The recovered output is byte-identical to the uninterrupted control.
    let recovered = snapshot(&store.join("jobs").join("job-0").join("crashdrill"));
    assert_eq!(
        reference, recovered,
        "recovered campaign output differs from the control run"
    );

    let _ = d2.kill();
    let _ = d2.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Two daemons sharing one `--store` split a batch of jobs between them,
/// and the WAL shows exactly one `done` record per job id.
#[test]
fn two_workers_share_a_store_with_exactly_once_completion() {
    let dir = tmp("pair");
    std::fs::create_dir_all(&dir).unwrap();
    let store = dir.join("store");
    let cache = dir.join("cache");
    let (addr_a, addr_b) = (port(1), port(2));

    let mut da = spawn_daemon(&addr_a, &store, &cache, "pair-a")
        .spawn()
        .expect("daemon A spawns");
    wait_healthy(&addr_a, &mut da, 30);
    let mut db = spawn_daemon(&addr_b, &store, &cache, "pair-b")
        .spawn()
        .expect("daemon B spawns");
    wait_healthy(&addr_b, &mut db, 30);

    // Three single jobs, submitted to A only; claims are arbitrated
    // through the shared store so either worker may take any of them.
    for device in ["v100", "a100", "v100"] {
        let body = format!(r#"{{"workload":"TLSTM","device":"{device}","seed":11}}"#);
        let (st, resp) = post(&addr_a, "/jobs", &body).expect("submit");
        assert_eq!(st, 202, "{resp}");
    }

    let deadline = Instant::now() + Duration::from_secs(180);
    'wait: loop {
        assert!(Instant::now() < deadline, "jobs never drained");
        // Either daemon's view works: both fold the same WAL.
        if let Some((200, body)) = get(&addr_b, "/jobs") {
            let done = body.matches("\"state\":\"done\"").count();
            let failed = body.matches("\"state\":\"failed\"").count();
            assert_eq!(failed, 0, "a job failed: {body}");
            if done == 3 {
                break 'wait;
            }
        }
        std::thread::sleep(Duration::from_millis(100));
    }

    let _ = da.kill();
    let _ = da.wait();
    let _ = db.kill();
    let _ = db.wait();

    // Exactly-once: one `done` record per id across the whole log, and
    // both submitted workers appear in claim records (the batch really
    // was shared, not serviced by a single daemon).
    let records = gnnmark_serve::JobStore::dump_raw_records(&store).unwrap();
    for id in 0..3u64 {
        let done = records
            .iter()
            .filter(|r| r.contains("\"type\":\"done\"") && r.contains(&format!("\"id\":{id},")))
            .count();
        assert_eq!(done, 1, "job {id} must complete exactly once:\n{records:#?}");
    }
    let claimed_by_a = records
        .iter()
        .any(|r| r.contains("\"type\":\"claim\"") && r.contains("pair-a"));
    let claimed_by_b = records
        .iter()
        .any(|r| r.contains("\"type\":\"claim\"") && r.contains("pair-b"));
    assert!(
        claimed_by_a || claimed_by_b,
        "no claim records in the WAL:\n{records:#?}"
    );

    let store_handle = gnnmark_serve::JobStore::open(&store).unwrap();
    for id in 0..3u64 {
        let job = store_handle.job(id).unwrap();
        assert_eq!(job.state, gnnmark_serve::JobState::Done, "{job:?}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
