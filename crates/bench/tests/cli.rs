//! End-to-end tests of the `gnnmark` CLI binary.

use std::process::Command;

fn gnnmark() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gnnmark"))
}

#[test]
fn list_prints_all_targets() {
    let out = gnnmark().arg("list").output().expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for target in gnnmark_bench::TARGETS {
        assert!(stdout.contains(target), "missing `{target}` in list output");
    }
}

#[test]
fn table1_renders_without_training() {
    let out = gnnmark().arg("table1").output().expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("PinSAGE"));
    assert!(stdout.contains("Tree-LSTM"));
    assert!(stdout.contains("DGL"));
}

#[test]
fn unknown_target_fails_cleanly() {
    let out = gnnmark().arg("fig99").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("fig99"));
    // The error names every valid target so the user can self-correct.
    for target in gnnmark_bench::TARGETS {
        assert!(stderr.contains(target), "missing `{target}` in {stderr}");
    }
}

#[test]
fn injected_fault_with_keep_going_degrades_gracefully() {
    let out = gnnmark()
        .args(["fig4", "--scale", "test", "--epochs", "1", "--keep-going"])
        .env("GNNMARK_FAULT", "panic:GW")
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    // The healthy workloads rendered; the faulted one is an explicit dash.
    assert!(stdout.contains("TLSTM"), "{stdout}");
    assert!(stdout.contains("—"), "no missing-row marker:\n{stdout}");
    // Per-workload status is reported, including the panic.
    assert!(stderr.contains("panicked"), "{stderr}");
    assert!(stderr.contains("\"workload\":\"GW\""), "{stderr}");
}

#[test]
fn injected_fault_without_keep_going_fails_naming_the_workload() {
    let out = gnnmark()
        .args(["fig4", "--scale", "test", "--epochs", "1"])
        .env("GNNMARK_FAULT", "panic:GW")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("GW"), "{stderr}");
    assert!(stderr.contains("panic"), "{stderr}");
}

#[test]
fn bad_flag_shows_usage() {
    let out = gnnmark()
        .args(["fig2", "--bogus"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage:"));
}

#[test]
fn fig9_runs_at_test_scale_and_writes_csv() {
    let dir = std::env::temp_dir().join(format!("gnnmark_cli_test_{}", std::process::id()));
    let out = gnnmark()
        .args([
            "fig9",
            "--scale",
            "test",
            "--epochs",
            "1",
            "--csv",
            dir.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("excluded"), "ARGA row missing");
    // CSV file landed.
    let entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("csv dir exists")
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    assert!(
        entries.iter().any(|f| f.contains("figure_9") && f.ends_with(".csv")),
        "{entries:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
