//! End-to-end tests of the `gnnmark` CLI binary.

use std::process::Command;

fn gnnmark() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gnnmark"))
}

#[test]
fn list_prints_all_targets() {
    let out = gnnmark().arg("list").output().expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for target in gnnmark_bench::TARGETS {
        assert!(stdout.contains(target), "missing `{target}` in list output");
    }
}

#[test]
fn table1_renders_without_training() {
    let out = gnnmark().arg("table1").output().expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("PinSAGE"));
    assert!(stdout.contains("Tree-LSTM"));
    assert!(stdout.contains("DGL"));
}

#[test]
fn unknown_target_fails_cleanly() {
    let out = gnnmark().arg("fig99").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("fig99"));
    // The error names every valid target so the user can self-correct.
    for target in gnnmark_bench::TARGETS {
        assert!(stderr.contains(target), "missing `{target}` in {stderr}");
    }
}

#[test]
fn injected_fault_with_keep_going_degrades_gracefully() {
    let out = gnnmark()
        .args(["fig4", "--scale", "test", "--epochs", "1", "--keep-going"])
        .env("GNNMARK_FAULT", "panic:GW")
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    // The healthy workloads rendered; the faulted one is an explicit dash.
    assert!(stdout.contains("TLSTM"), "{stdout}");
    assert!(stdout.contains("—"), "no missing-row marker:\n{stdout}");
    // Per-workload status is reported, including the panic.
    assert!(stderr.contains("panicked"), "{stderr}");
    assert!(stderr.contains("\"workload\":\"GW\""), "{stderr}");
}

#[test]
fn injected_fault_without_keep_going_fails_naming_the_workload() {
    let out = gnnmark()
        .args(["fig4", "--scale", "test", "--epochs", "1"])
        .env("GNNMARK_FAULT", "panic:GW")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("GW"), "{stderr}");
    assert!(stderr.contains("panic"), "{stderr}");
}

#[test]
fn bad_flag_shows_usage() {
    let out = gnnmark()
        .args(["fig2", "--bogus"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage:"));
}

#[test]
fn observability_flags_write_trace_metrics_and_manifest() {
    let dir = std::env::temp_dir().join(format!("gnnmark_cli_obs_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("t.json");
    let metrics = dir.join("m.json");
    let out = gnnmark()
        .args([
            "stgcn",
            "--scale",
            "tiny",
            "--epochs",
            "1",
            "--progress",
            "--trace",
            trace.to_str().unwrap(),
            "--metrics",
            metrics.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    // --progress printed a live per-epoch line.
    assert!(stderr.contains("[STGCN] epoch 1/1:"), "{stderr}");
    assert!(stderr.contains("pool hit"), "{stderr}");

    // Merged trace: valid JSON, host spans plus modeled device lanes.
    let trace_json = std::fs::read_to_string(&trace).expect("trace written");
    gnnmark_telemetry::export::validate_json(&trace_json).expect("trace is valid JSON");
    for needle in ["\"host\"", "\"forward\"", "\"backward\"", "(modeled "] {
        assert!(trace_json.contains(needle), "missing {needle} in trace");
    }

    // Metrics snapshot: valid JSON with the headline gauges/counters, and
    // a Prometheus dump beside it.
    let metrics_json = std::fs::read_to_string(&metrics).expect("metrics written");
    gnnmark_telemetry::export::validate_json(&metrics_json).expect("metrics are valid JSON");
    for needle in [
        "gnnmark_pool_hit_rate",
        "gnnmark_kernels_recorded_total",
        "gnnmark_resilience_retries_total",
    ] {
        assert!(metrics_json.contains(needle), "missing {needle} in metrics");
    }
    let prom = std::fs::read_to_string(dir.join("m.json.prom")).expect("prom written");
    assert!(prom.contains("# TYPE gnnmark_pool_hits_total counter"), "{prom}");

    // Manifest beside the metrics file.
    let manifest = std::fs::read_to_string(dir.join("manifest.json")).expect("manifest");
    gnnmark_telemetry::export::validate_json(&manifest).expect("manifest is valid JSON");
    for needle in ["\"target\": \"stgcn\"", "\"scale\": \"test\"", "\"STGCN\""] {
        assert!(manifest.contains(needle), "missing {needle} in {manifest}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fig9_runs_at_test_scale_and_writes_csv() {
    let dir = std::env::temp_dir().join(format!("gnnmark_cli_test_{}", std::process::id()));
    let out = gnnmark()
        .args([
            "fig9",
            "--scale",
            "test",
            "--epochs",
            "1",
            "--csv",
            dir.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("excluded"), "ARGA row missing");
    // CSV file landed.
    let entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("csv dir exists")
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    assert!(
        entries.iter().any(|f| f.contains("figure_9") && f.ends_with(".csv")),
        "{entries:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
