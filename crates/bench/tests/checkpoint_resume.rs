//! Checkpoint/resume drill: a suite interrupted by an injected fault must,
//! after a resume, end up with exactly the same per-workload results as an
//! uninterrupted run.
//!
//! Run 1 trains the suite with `GNNMARK_FAULT=panic:GW` and `--keep-going`,
//! so every workload except GW completes and is checkpointed. Run 2 resumes
//! from the same `--checkpoint` directory without the fault: the completed
//! workloads are restored (not re-trained) and only GW runs. A control run
//! in a fresh directory never sees a fault. Training is deterministic, so
//! the checkpoint summaries of the resumed suite must be byte-identical to
//! the control's.

use std::collections::BTreeMap;
use std::path::Path;
use std::process::Command;

fn gnnmark() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gnnmark"))
}

fn run_summary(checkpoint: &Path, fault: Option<&str>) -> std::process::Output {
    let mut cmd = gnnmark();
    cmd.args([
        "summary",
        "--scale",
        "test",
        "--epochs",
        "1",
        "--keep-going",
        "--checkpoint",
        checkpoint.to_str().unwrap(),
    ]);
    // The fault plan is inherited from this test runner's environment
    // otherwise; set or clear it explicitly.
    match fault {
        Some(f) => cmd.env("GNNMARK_FAULT", f),
        None => cmd.env_remove("GNNMARK_FAULT"),
    };
    cmd.output().expect("binary runs")
}

/// All checkpoint files in `dir`, keyed by file name.
fn snapshots(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    std::fs::read_dir(dir)
        .expect("checkpoint dir exists")
        .map(|e| {
            let e = e.unwrap();
            (
                e.file_name().into_string().unwrap(),
                std::fs::read(e.path()).unwrap(),
            )
        })
        .collect()
}

#[test]
fn resumed_suite_matches_uninterrupted_run() {
    let base = std::env::temp_dir().join(format!("gnnmark-ckpt-{}", std::process::id()));
    let interrupted = base.join("interrupted");
    let control = base.join("control");
    let _ = std::fs::remove_dir_all(&base);

    // Run 1: GW panics mid-suite; everything else completes + checkpoints.
    let out1 = run_summary(&interrupted, Some("panic:GW"));
    assert!(
        out1.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out1.stderr)
    );
    let after_fault = snapshots(&interrupted);
    assert!(
        !after_fault.contains_key("GW.json") && !after_fault.is_empty(),
        "faulted workload must not be checkpointed: {:?}",
        after_fault.keys().collect::<Vec<_>>()
    );

    // Run 2: resume without the fault — restores the finished workloads,
    // trains only GW.
    let out2 = run_summary(&interrupted, None);
    assert!(
        out2.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out2.stderr)
    );
    let stderr2 = String::from_utf8_lossy(&out2.stderr);
    assert!(
        stderr2.contains("checkpoint"),
        "resume must report restored workloads:\n{stderr2}"
    );

    // Control: one uninterrupted run in a fresh directory.
    let out3 = run_summary(&control, None);
    assert!(
        out3.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out3.stderr)
    );

    // The merged (resumed) suite state equals the uninterrupted one,
    // byte for byte, for every workload.
    let resumed = snapshots(&interrupted);
    let uninterrupted = snapshots(&control);
    assert_eq!(
        resumed.keys().collect::<Vec<_>>(),
        uninterrupted.keys().collect::<Vec<_>>(),
        "workload coverage diverged"
    );
    for (name, bytes) in &uninterrupted {
        assert_eq!(
            bytes, &resumed[name],
            "checkpoint `{name}` diverged between resumed and control runs"
        );
    }

    let _ = std::fs::remove_dir_all(&base);
}
