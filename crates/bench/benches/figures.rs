//! One Criterion bench per paper table/figure: each target measures the
//! end-to-end cost of regenerating that result (train + profile + render)
//! at Test scale, so regressions anywhere in the stack show up as bench
//! deltas. `fig8`/`fig9` reuse the `fig2` pipeline plus their own
//! rendering, so they are covered by the suite-wide target.

use criterion::{criterion_group, criterion_main, Criterion};
use gnnmark::suite::{run_suite, run_workload_full, SuiteConfig};
use gnnmark::{figures, WorkloadKind};

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_render", |b| {
        b.iter(|| std::hint::black_box(figures::table1().to_string()))
    });
}

fn bench_single_workload_figures(c: &mut Criterion) {
    let cfg = SuiteConfig::test();
    // Pre-train one workload; benchmark the figure rendering separately
    // from the training so both costs are visible.
    let art = run_workload_full(WorkloadKind::Tlstm, &cfg).expect("runs");
    let profiles = vec![art.profile.clone()];

    c.bench_function("fig2_time_breakdown_render", |b| {
        b.iter(|| std::hint::black_box(figures::fig2_time_breakdown(&profiles).to_csv()))
    });
    c.bench_function("fig3_instruction_mix_render", |b| {
        b.iter(|| std::hint::black_box(figures::fig3_instruction_mix(&profiles).to_csv()))
    });
    c.bench_function("fig4_throughput_render", |b| {
        b.iter(|| std::hint::black_box(figures::fig4_throughput(&profiles).to_csv()))
    });
    c.bench_function("fig5_stalls_render", |b| {
        b.iter(|| std::hint::black_box(figures::fig5_stalls(&profiles).to_csv()))
    });
    c.bench_function("fig6_caches_render", |b| {
        b.iter(|| std::hint::black_box(figures::fig6_caches(&profiles).to_csv()))
    });
    c.bench_function("fig7_sparsity_render", |b| {
        b.iter(|| std::hint::black_box(figures::fig7_sparsity(&profiles).to_csv()))
    });
    c.bench_function("fig8_sparsity_series_render", |b| {
        b.iter(|| {
            std::hint::black_box(figures::fig8_sparsity_series(&profiles[0], 24).to_csv())
        })
    });
    let arts = vec![art];
    c.bench_function("fig9_scaling_render", |b| {
        b.iter(|| std::hint::black_box(figures::fig9_scaling(&arts).to_csv()))
    });
}

fn bench_workload_profiling(c: &mut Criterion) {
    // The expensive half of every figure: train + profile one epoch.
    // One representative per graph family keeps `cargo bench` tractable.
    let mut group = c.benchmark_group("profile_epoch");
    group.sample_size(10);
    for kind in [
        WorkloadKind::PsageMvl,
        WorkloadKind::Stgcn,
        WorkloadKind::Dgcn,
        WorkloadKind::ArgaCora,
        WorkloadKind::Tlstm,
    ] {
        group.bench_function(kind.label(), |b| {
            b.iter(|| {
                let cfg = SuiteConfig::test();
                std::hint::black_box(run_workload_full(kind, &cfg).expect("runs"))
            })
        });
    }
    group.finish();
}

fn bench_full_suite(c: &mut Criterion) {
    let mut group = c.benchmark_group("suite");
    group.sample_size(10);
    group.bench_function("run_suite_test_scale", |b| {
        b.iter(|| std::hint::black_box(run_suite(&SuiteConfig::test()).expect("suite")))
    });
    group.finish();
}

criterion_group!(
    figures_benches,
    bench_table1,
    bench_single_workload_figures,
    bench_workload_profiling,
    bench_full_suite
);
criterion_main!(figures_benches);
