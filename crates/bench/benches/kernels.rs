//! Micro-benchmarks of the substrate: tensor kernels (sequential vs
//! parallel) and the GPU model's simulation cost per kernel class.
//!
//! With `CRITERION_JSON=BENCH_kernels.json` the run writes the perf
//! baseline that CI's `bench-smoke` job regresses against (see the
//! `bench-check` binary); `CRITERION_QUICK=1` clamps sample counts for
//! smoke runs.

use criterion::{criterion_group, criterion_main, Criterion};
use gnnmark_gpusim::{DeviceSpec, GpuModel};
use gnnmark_tensor::{par, record, CsrMatrix, IntTensor, Tensor};

fn bench_tensor_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("tensor_ops");
    let a = Tensor::from_fn(&[256, 256], |i| (i % 17) as f32 * 0.1);
    let b = Tensor::from_fn(&[256, 256], |i| (i % 13) as f32 * 0.1);
    group.bench_function("gemm_256", |bch| {
        bch.iter(|| std::hint::black_box(a.matmul(&b).unwrap()))
    });

    let triplets: Vec<(usize, usize, f32)> = (0..8192)
        .map(|i| ((i * 37) % 1024, (i * 101) % 1024, 1.0))
        .collect();
    let sp = CsrMatrix::from_coo(1024, 1024, &triplets).unwrap();
    let x = Tensor::ones(&[1024, 64]);
    group.bench_function("spmm_1k_8knnz", |bch| {
        bch.iter(|| std::hint::black_box(sp.spmm(&x).unwrap()))
    });

    let table = Tensor::ones(&[10_000, 64]);
    let idx = IntTensor::from_vec(&[4096], (0..4096).map(|i| (i * 7) % 10_000).collect())
        .unwrap();
    group.bench_function("gather_4k_rows", |bch| {
        bch.iter(|| std::hint::black_box(table.gather_rows(&idx).unwrap()))
    });

    let keys = Tensor::from_fn(&[16384], |i| ((i * 2654435761) % 1_000_003) as f32);
    group.bench_function("argsort_16k", |bch| {
        bch.iter(|| std::hint::black_box(keys.argsort().unwrap()))
    });

    let img = Tensor::ones(&[4, 16, 12, 64]);
    let filt = Tensor::ones(&[16, 16, 3, 1]);
    group.bench_function("conv2d_temporal", |bch| {
        bch.iter(|| {
            std::hint::black_box(
                img.conv2d(&filt, gnnmark_tensor::ops::conv::Conv2dSpec::default())
                    .unwrap(),
            )
        })
    });
    group.finish();
}

/// The same hot kernels at 1 vs 4 threads. Outputs are bit-identical at
/// every thread count; only wall-clock may change, and the `_t1`/`_t4`
/// pairs in `BENCH_kernels.json` record the measured ratio on the build
/// machine (single-core containers will show ~1×).
fn bench_parallel_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("par_kernels");
    group.sample_size(10);

    let a = Tensor::from_fn(&[384, 384], |i| (i % 17) as f32 * 0.1 - 0.5);
    let b = Tensor::from_fn(&[384, 384], |i| (i % 13) as f32 * 0.1 - 0.4);
    let triplets: Vec<(usize, usize, f32)> = (0..32_768)
        .map(|i| ((i * 37) % 4096, (i * 101) % 4096, 1.0))
        .collect();
    let sp = CsrMatrix::from_coo(4096, 4096, &triplets).unwrap();
    let x = Tensor::from_fn(&[4096, 64], |i| (i % 11) as f32 * 0.2);
    let src = Tensor::from_fn(&[32_768, 32], |i| (i % 23) as f32 * 0.1);
    let idx = IntTensor::from_vec(&[32_768], (0..32_768).map(|i| ((i * 97) % 2048) as i64).collect())
        .unwrap();
    let wide = Tensor::from_fn(&[1 << 20], |i| (i % 29) as f32 * 0.05 - 0.7);

    for t in [1usize, 4] {
        par::set_threads(t);
        group.bench_function(format!("gemm_384_t{t}"), |bch| {
            bch.iter(|| std::hint::black_box(a.matmul(&b).unwrap()))
        });
        group.bench_function(format!("gemm_nt_384_t{t}"), |bch| {
            bch.iter(|| std::hint::black_box(a.matmul_nt(&b).unwrap()))
        });
        group.bench_function(format!("spmm_4k_32knnz_t{t}"), |bch| {
            bch.iter(|| std::hint::black_box(sp.spmm(&x).unwrap()))
        });
        group.bench_function(format!("scatter_add_32k_t{t}"), |bch| {
            bch.iter(|| std::hint::black_box(src.scatter_add_rows(&idx, 2048).unwrap()))
        });
        group.bench_function(format!("relu_1m_t{t}"), |bch| {
            bch.iter(|| std::hint::black_box(wide.relu()))
        });
        group.bench_function(format!("softmax_32kx32_t{t}"), |bch| {
            bch.iter(|| std::hint::black_box(src.softmax_rows().unwrap()))
        });
    }
    par::set_threads(1);
    group.finish();
}

/// The same kernels forced onto the scalar reference lane vs the
/// auto-detected SIMD lane (`GNNMARK_SIMD` notwithstanding — the override
/// here is thread-local and explicit). The `_lane_scalar`/`_lane_auto`
/// pairs in `BENCH_kernels.json` record the measured vectorization win on
/// the build machine. gemm is compute-bound and shows the full win;
/// Tensor-level elementwise is memory-bound, so the elementwise figure is
/// taken at the microkernel level on an L1-resident buffer.
fn bench_simd_lanes(c: &mut Criterion) {
    use gnnmark_tensor::simd::{self, SimdLevel};
    let mut group = c.benchmark_group("simd_lanes");
    group.sample_size(10);

    let a = Tensor::from_fn(&[256, 256], |i| (i % 17) as f32 * 0.1);
    let b = Tensor::from_fn(&[256, 256], |i| (i % 13) as f32 * 0.1);
    // 4k f32 = 16 KiB: resident in L1, so compute (not DRAM bandwidth)
    // is the limit and the lane difference is visible.
    let src: Vec<f32> = (0..4096).map(|i| (i % 19) as f32 * 0.01).collect();
    let mut dst = vec![0.25f32; 4096];
    let wide = Tensor::from_fn(&[1 << 20], |i| (i % 29) as f32 * 0.05 - 0.7);

    for (tag, lvl) in [("scalar", SimdLevel::Scalar), ("auto", simd::detect())] {
        group.bench_function(format!("gemm_256_lane_{tag}"), |bch| {
            bch.iter(|| {
                simd::with_level(lvl, || std::hint::black_box(a.matmul(&b).unwrap()))
            })
        });
        group.bench_function(format!("axpy_4k_x16_lane_{tag}"), |bch| {
            bch.iter(|| {
                for _ in 0..16 {
                    simd::axpy(lvl, &mut dst, 1.0e-4, &src);
                }
                std::hint::black_box(dst[0])
            })
        });
        group.bench_function(format!("vsum_1m_lane_{tag}"), |bch| {
            bch.iter(|| std::hint::black_box(simd::vsum(lvl, wide.as_slice())))
        });
    }
    group.finish();
}

fn bench_gpu_model(c: &mut Criterion) {
    // The GPU model's own simulation throughput per kernel class.
    record::start_recording();
    let a = Tensor::ones(&[512, 512]);
    let _ = a.matmul(&a).unwrap();
    let table = Tensor::ones(&[50_000, 64]);
    let idx = IntTensor::from_vec(&[8192], (0..8192).map(|i| (i * 97) % 50_000).collect())
        .unwrap();
    let _ = table.gather_rows(&idx).unwrap();
    let big = Tensor::ones(&[4_000_000]);
    let _ = big.relu();
    let events = record::stop_recording();

    let mut group = c.benchmark_group("gpu_model_simulation");
    for (i, name) in ["gemm", "gather", "elementwise"].iter().enumerate() {
        let ev = events[i].clone();
        group.bench_function(format!("simulate_{name}"), |bch| {
            bch.iter(|| {
                let mut gpu = GpuModel::new(DeviceSpec::v100());
                std::hint::black_box(gpu.execute(&ev))
            })
        });
    }
    group.finish();
}

/// Cost of the telemetry layer itself: a disabled span must stay at
/// branch-on-a-static-flag cost (it is compiled into every workload's hot
/// loop), and an enabled span documents the price of `--trace`.
fn bench_telemetry_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(10);

    gnnmark_telemetry::set_enabled(false);
    group.bench_function("span_disabled", |bch| {
        bch.iter(|| {
            let s = gnnmark_telemetry::span!("bench");
            std::hint::black_box(&s);
        })
    });

    gnnmark_telemetry::set_enabled(true);
    group.bench_function("span_enabled", |bch| {
        bch.iter(|| {
            {
                let s = gnnmark_telemetry::span!("bench");
                std::hint::black_box(&s);
            }
            // Bound sink growth so long calibration runs stay flat.
            if gnnmark_telemetry::pending_spans() >= 65_536 {
                let _ = gnnmark_telemetry::take_host_trace();
            }
        })
    });
    gnnmark_telemetry::set_enabled(false);
    let _ = gnnmark_telemetry::take_host_trace();

    group.bench_function("counter_add", |bch| {
        bch.iter(|| gnnmark_telemetry::metrics::counter_add("bench_counter_total", 1))
    });
    group.finish();
}

criterion_group!(
    kernel_benches,
    bench_tensor_ops,
    bench_parallel_kernels,
    bench_simd_lanes,
    bench_gpu_model,
    bench_telemetry_overhead
);
criterion_main!(kernel_benches);
