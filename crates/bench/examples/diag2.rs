use gnnmark::suite::{run_workload, SuiteConfig};
use gnnmark::WorkloadKind;

fn main() {
    let mut c = SuiteConfig::paper();
    c.epochs = 1;
    let p = run_workload(WorkloadKind::ArgaCora, &c).unwrap();
    for k in &p.kernels {
        if k.time_ns > 20_000.0 {
            println!(
                "{:<22} {:>10.1}us flops={:>12} threads={:>9} sms={:>3} l1={:.2} dram={:.1}MB",
                k.kernel, k.time_ns / 1e3, k.flops, k.threads, k.sms_used,
                k.memory.l1_hit_rate(), k.memory.dram_bytes as f64 / 1e6
            );
        }
    }
}
